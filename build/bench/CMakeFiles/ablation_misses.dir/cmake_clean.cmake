file(REMOVE_RECURSE
  "CMakeFiles/ablation_misses.dir/ablation_misses.cpp.o"
  "CMakeFiles/ablation_misses.dir/ablation_misses.cpp.o.d"
  "ablation_misses"
  "ablation_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
