# Empty compiler generated dependencies file for ablation_misses.
# This may be replaced when dependencies are built.
