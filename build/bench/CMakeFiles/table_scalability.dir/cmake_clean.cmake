file(REMOVE_RECURSE
  "CMakeFiles/table_scalability.dir/table_scalability.cpp.o"
  "CMakeFiles/table_scalability.dir/table_scalability.cpp.o.d"
  "table_scalability"
  "table_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
