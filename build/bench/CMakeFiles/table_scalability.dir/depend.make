# Empty dependencies file for table_scalability.
# This may be replaced when dependencies are built.
