file(REMOVE_RECURSE
  "CMakeFiles/table_slopes.dir/table_slopes.cpp.o"
  "CMakeFiles/table_slopes.dir/table_slopes.cpp.o.d"
  "table_slopes"
  "table_slopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_slopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
