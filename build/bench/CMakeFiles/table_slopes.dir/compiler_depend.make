# Empty compiler generated dependencies file for table_slopes.
# This may be replaced when dependencies are built.
