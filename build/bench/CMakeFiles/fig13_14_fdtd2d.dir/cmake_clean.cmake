file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_fdtd2d.dir/fig13_14_fdtd2d.cpp.o"
  "CMakeFiles/fig13_14_fdtd2d.dir/fig13_14_fdtd2d.cpp.o.d"
  "fig13_14_fdtd2d"
  "fig13_14_fdtd2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_fdtd2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
