# Empty dependencies file for fig13_14_fdtd2d.
# This may be replaced when dependencies are built.
