file(REMOVE_RECURSE
  "CMakeFiles/baseline_families.dir/baseline_families.cpp.o"
  "CMakeFiles/baseline_families.dir/baseline_families.cpp.o.d"
  "baseline_families"
  "baseline_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
