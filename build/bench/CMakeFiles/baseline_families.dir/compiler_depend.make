# Empty compiler generated dependencies file for baseline_families.
# This may be replaced when dependencies are built.
