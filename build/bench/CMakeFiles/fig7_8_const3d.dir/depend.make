# Empty dependencies file for fig7_8_const3d.
# This may be replaced when dependencies are built.
