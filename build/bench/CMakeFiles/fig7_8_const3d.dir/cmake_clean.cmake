file(REMOVE_RECURSE
  "CMakeFiles/fig7_8_const3d.dir/fig7_8_const3d.cpp.o"
  "CMakeFiles/fig7_8_const3d.dir/fig7_8_const3d.cpp.o.d"
  "fig7_8_const3d"
  "fig7_8_const3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_const3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
