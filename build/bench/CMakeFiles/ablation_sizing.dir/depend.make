# Empty dependencies file for ablation_sizing.
# This may be replaced when dependencies are built.
