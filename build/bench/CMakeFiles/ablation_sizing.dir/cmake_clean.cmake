file(REMOVE_RECURSE
  "CMakeFiles/ablation_sizing.dir/ablation_sizing.cpp.o"
  "CMakeFiles/ablation_sizing.dir/ablation_sizing.cpp.o.d"
  "ablation_sizing"
  "ablation_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
