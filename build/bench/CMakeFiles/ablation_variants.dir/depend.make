# Empty dependencies file for ablation_variants.
# This may be replaced when dependencies are built.
