file(REMOVE_RECURSE
  "CMakeFiles/perf_model.dir/perf_model.cpp.o"
  "CMakeFiles/perf_model.dir/perf_model.cpp.o.d"
  "perf_model"
  "perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
