# Empty dependencies file for perf_model.
# This may be replaced when dependencies are built.
