file(REMOVE_RECURSE
  "CMakeFiles/fig9_10_banded2d.dir/fig9_10_banded2d.cpp.o"
  "CMakeFiles/fig9_10_banded2d.dir/fig9_10_banded2d.cpp.o.d"
  "fig9_10_banded2d"
  "fig9_10_banded2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_10_banded2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
