# Empty dependencies file for fig9_10_banded2d.
# This may be replaced when dependencies are built.
