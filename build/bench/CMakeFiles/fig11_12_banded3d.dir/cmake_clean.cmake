file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_banded3d.dir/fig11_12_banded3d.cpp.o"
  "CMakeFiles/fig11_12_banded3d.dir/fig11_12_banded3d.cpp.o.d"
  "fig11_12_banded3d"
  "fig11_12_banded3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_banded3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
