# Empty dependencies file for fig11_12_banded3d.
# This may be replaced when dependencies are built.
