file(REMOVE_RECURSE
  "CMakeFiles/table_literature.dir/table_literature.cpp.o"
  "CMakeFiles/table_literature.dir/table_literature.cpp.o.d"
  "table_literature"
  "table_literature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_literature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
