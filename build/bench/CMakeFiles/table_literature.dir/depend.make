# Empty dependencies file for table_literature.
# This may be replaced when dependencies are built.
