file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_const2d.dir/fig5_6_const2d.cpp.o"
  "CMakeFiles/fig5_6_const2d.dir/fig5_6_const2d.cpp.o.d"
  "fig5_6_const2d"
  "fig5_6_const2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_const2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
