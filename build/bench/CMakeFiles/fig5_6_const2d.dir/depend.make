# Empty dependencies file for fig5_6_const2d.
# This may be replaced when dependencies are built.
