file(REMOVE_RECURSE
  "libcats.a"
)
