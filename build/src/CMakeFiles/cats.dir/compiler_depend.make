# Empty compiler generated dependencies file for cats.
# This may be replaced when dependencies are built.
