file(REMOVE_RECURSE
  "CMakeFiles/cats.dir/baseline/pluto_params.cpp.o"
  "CMakeFiles/cats.dir/baseline/pluto_params.cpp.o.d"
  "CMakeFiles/cats.dir/bench_harness/ascii_plot.cpp.o"
  "CMakeFiles/cats.dir/bench_harness/ascii_plot.cpp.o.d"
  "CMakeFiles/cats.dir/bench_harness/machine.cpp.o"
  "CMakeFiles/cats.dir/bench_harness/machine.cpp.o.d"
  "CMakeFiles/cats.dir/bench_harness/report.cpp.o"
  "CMakeFiles/cats.dir/bench_harness/report.cpp.o.d"
  "CMakeFiles/cats.dir/bench_harness/timing.cpp.o"
  "CMakeFiles/cats.dir/bench_harness/timing.cpp.o.d"
  "CMakeFiles/cats.dir/cachesim/cache_model.cpp.o"
  "CMakeFiles/cats.dir/cachesim/cache_model.cpp.o.d"
  "CMakeFiles/cats.dir/core/selector.cpp.o"
  "CMakeFiles/cats.dir/core/selector.cpp.o.d"
  "CMakeFiles/cats.dir/simd/detect.cpp.o"
  "CMakeFiles/cats.dir/simd/detect.cpp.o.d"
  "CMakeFiles/cats.dir/sysinfo/cache_info.cpp.o"
  "CMakeFiles/cats.dir/sysinfo/cache_info.cpp.o.d"
  "CMakeFiles/cats.dir/threads/thread_pool.cpp.o"
  "CMakeFiles/cats.dir/threads/thread_pool.cpp.o.d"
  "libcats.a"
  "libcats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
