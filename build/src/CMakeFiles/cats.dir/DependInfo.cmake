
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pluto_params.cpp" "src/CMakeFiles/cats.dir/baseline/pluto_params.cpp.o" "gcc" "src/CMakeFiles/cats.dir/baseline/pluto_params.cpp.o.d"
  "/root/repo/src/bench_harness/ascii_plot.cpp" "src/CMakeFiles/cats.dir/bench_harness/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/cats.dir/bench_harness/ascii_plot.cpp.o.d"
  "/root/repo/src/bench_harness/machine.cpp" "src/CMakeFiles/cats.dir/bench_harness/machine.cpp.o" "gcc" "src/CMakeFiles/cats.dir/bench_harness/machine.cpp.o.d"
  "/root/repo/src/bench_harness/report.cpp" "src/CMakeFiles/cats.dir/bench_harness/report.cpp.o" "gcc" "src/CMakeFiles/cats.dir/bench_harness/report.cpp.o.d"
  "/root/repo/src/bench_harness/timing.cpp" "src/CMakeFiles/cats.dir/bench_harness/timing.cpp.o" "gcc" "src/CMakeFiles/cats.dir/bench_harness/timing.cpp.o.d"
  "/root/repo/src/cachesim/cache_model.cpp" "src/CMakeFiles/cats.dir/cachesim/cache_model.cpp.o" "gcc" "src/CMakeFiles/cats.dir/cachesim/cache_model.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/CMakeFiles/cats.dir/core/selector.cpp.o" "gcc" "src/CMakeFiles/cats.dir/core/selector.cpp.o.d"
  "/root/repo/src/simd/detect.cpp" "src/CMakeFiles/cats.dir/simd/detect.cpp.o" "gcc" "src/CMakeFiles/cats.dir/simd/detect.cpp.o.d"
  "/root/repo/src/sysinfo/cache_info.cpp" "src/CMakeFiles/cats.dir/sysinfo/cache_info.cpp.o" "gcc" "src/CMakeFiles/cats.dir/sysinfo/cache_info.cpp.o.d"
  "/root/repo/src/threads/thread_pool.cpp" "src/CMakeFiles/cats.dir/threads/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cats.dir/threads/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
