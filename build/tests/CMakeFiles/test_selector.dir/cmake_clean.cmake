file(REMOVE_RECURSE
  "CMakeFiles/test_selector.dir/test_selector.cpp.o"
  "CMakeFiles/test_selector.dir/test_selector.cpp.o.d"
  "test_selector"
  "test_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
