# Empty dependencies file for test_selector.
# This may be replaced when dependencies are built.
