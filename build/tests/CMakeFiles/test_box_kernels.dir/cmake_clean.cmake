file(REMOVE_RECURSE
  "CMakeFiles/test_box_kernels.dir/test_box_kernels.cpp.o"
  "CMakeFiles/test_box_kernels.dir/test_box_kernels.cpp.o.d"
  "test_box_kernels"
  "test_box_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_box_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
