# Empty dependencies file for test_box_kernels.
# This may be replaced when dependencies are built.
