file(REMOVE_RECURSE
  "CMakeFiles/test_simd.dir/test_simd.cpp.o"
  "CMakeFiles/test_simd.dir/test_simd.cpp.o.d"
  "test_simd"
  "test_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
