# Empty dependencies file for test_schemes_1d.
# This may be replaced when dependencies are built.
