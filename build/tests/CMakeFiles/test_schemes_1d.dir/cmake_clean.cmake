file(REMOVE_RECURSE
  "CMakeFiles/test_schemes_1d.dir/test_schemes_1d.cpp.o"
  "CMakeFiles/test_schemes_1d.dir/test_schemes_1d.cpp.o.d"
  "test_schemes_1d"
  "test_schemes_1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemes_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
