file(REMOVE_RECURSE
  "CMakeFiles/test_float32.dir/test_float32.cpp.o"
  "CMakeFiles/test_float32.dir/test_float32.cpp.o.d"
  "test_float32"
  "test_float32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
