# Empty compiler generated dependencies file for test_float32.
# This may be replaced when dependencies are built.
