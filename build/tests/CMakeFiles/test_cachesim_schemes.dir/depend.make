# Empty dependencies file for test_cachesim_schemes.
# This may be replaced when dependencies are built.
