file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim_schemes.dir/test_cachesim_schemes.cpp.o"
  "CMakeFiles/test_cachesim_schemes.dir/test_cachesim_schemes.cpp.o.d"
  "test_cachesim_schemes"
  "test_cachesim_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
