file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_model.dir/test_traffic_model.cpp.o"
  "CMakeFiles/test_traffic_model.dir/test_traffic_model.cpp.o.d"
  "test_traffic_model"
  "test_traffic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
