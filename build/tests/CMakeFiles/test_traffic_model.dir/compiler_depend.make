# Empty compiler generated dependencies file for test_traffic_model.
# This may be replaced when dependencies are built.
