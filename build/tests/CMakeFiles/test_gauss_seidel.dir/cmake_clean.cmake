file(REMOVE_RECURSE
  "CMakeFiles/test_gauss_seidel.dir/test_gauss_seidel.cpp.o"
  "CMakeFiles/test_gauss_seidel.dir/test_gauss_seidel.cpp.o.d"
  "test_gauss_seidel"
  "test_gauss_seidel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauss_seidel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
