# Empty compiler generated dependencies file for test_gauss_seidel.
# This may be replaced when dependencies are built.
