file(REMOVE_RECURSE
  "CMakeFiles/test_schemes_3d.dir/test_schemes_3d.cpp.o"
  "CMakeFiles/test_schemes_3d.dir/test_schemes_3d.cpp.o.d"
  "test_schemes_3d"
  "test_schemes_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemes_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
