# Empty dependencies file for test_schemes_3d.
# This may be replaced when dependencies are built.
