file(REMOVE_RECURSE
  "CMakeFiles/test_visit_order.dir/test_visit_order.cpp.o"
  "CMakeFiles/test_visit_order.dir/test_visit_order.cpp.o.d"
  "test_visit_order"
  "test_visit_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_visit_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
