# Empty dependencies file for test_visit_order.
# This may be replaced when dependencies are built.
