# Empty compiler generated dependencies file for test_schemes_2d.
# This may be replaced when dependencies are built.
