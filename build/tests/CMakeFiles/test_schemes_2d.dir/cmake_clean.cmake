file(REMOVE_RECURSE
  "CMakeFiles/test_schemes_2d.dir/test_schemes_2d.cpp.o"
  "CMakeFiles/test_schemes_2d.dir/test_schemes_2d.cpp.o.d"
  "test_schemes_2d"
  "test_schemes_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemes_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
