file(REMOVE_RECURSE
  "CMakeFiles/example_heat3d.dir/heat3d.cpp.o"
  "CMakeFiles/example_heat3d.dir/heat3d.cpp.o.d"
  "example_heat3d"
  "example_heat3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heat3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
