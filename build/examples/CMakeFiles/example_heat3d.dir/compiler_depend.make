# Empty compiler generated dependencies file for example_heat3d.
# This may be replaced when dependencies are built.
