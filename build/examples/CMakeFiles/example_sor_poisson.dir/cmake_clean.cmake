file(REMOVE_RECURSE
  "CMakeFiles/example_sor_poisson.dir/sor_poisson.cpp.o"
  "CMakeFiles/example_sor_poisson.dir/sor_poisson.cpp.o.d"
  "example_sor_poisson"
  "example_sor_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sor_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
