# Empty compiler generated dependencies file for example_sor_poisson.
# This may be replaced when dependencies are built.
