# Empty compiler generated dependencies file for example_fdtd_waveguide.
# This may be replaced when dependencies are built.
