file(REMOVE_RECURSE
  "CMakeFiles/example_fdtd_waveguide.dir/fdtd_waveguide.cpp.o"
  "CMakeFiles/example_fdtd_waveguide.dir/fdtd_waveguide.cpp.o.d"
  "example_fdtd_waveguide"
  "example_fdtd_waveguide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fdtd_waveguide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
