file(REMOVE_RECURSE
  "CMakeFiles/example_banded_jacobi.dir/banded_jacobi.cpp.o"
  "CMakeFiles/example_banded_jacobi.dir/banded_jacobi.cpp.o.d"
  "example_banded_jacobi"
  "example_banded_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_banded_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
