# Empty compiler generated dependencies file for example_banded_jacobi.
# This may be replaced when dependencies are built.
