#pragma once
// CATS1 (Alg. 2): one skewing dimension.
//
// Time is cut into chunks of TZ timesteps (Eq. 1). Within a chunk, the
// (traversal-dimension, time) plane is covered by parallelogram tiles — one
// interval of the tile coordinate v = p - s*tau per thread. Each thread
// sweeps its tile with ascending wavefronts u = p + s*tau; inside a wavefront
// tau ascends. All cross-tile dependencies (reads and the WAR hazard of the
// double-buffered field) point to the right neighbor in v at wavefronts <= u,
// so a single acquire-wait "right neighbor completed wavefront u" resolves
// them (split-tiling). Threads synchronize globally only between chunks.
//
// In 2D the wavefront holds TZ full x-rows; in 3D it holds TZ full (x,y)
// slices — which is why CATS1 in 3D falls back for large domains (Section
// II-B) and the selector then picks CATS2.
//
// The schedule — wavefront-column tiles, the split-tiling ProgressGE edges,
// the barrier/reset/barrier chunk boundary — is emitted as a TilePlan
// (plan/emit.cpp, emit_cats1) and walked; plan/verify.hpp checks the same
// plan statically.

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

template <RowKernel1D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  const plan_ir::TilePlan p =
      plan_ir::emit_cats1(1, k.width(), 1, 1, T, k.slope(), tz, opt.threads);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel2D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  const plan_ir::TilePlan p = plan_ir::emit_cats1(
      2, k.width(), k.height(), 1, T, k.slope(), tz, opt.threads);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel3D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  // Intra-tile teams (wave engine): m workers cooperate on each tile, so the
  // plan is emitted with threads/m owners; the executor re-derives m from
  // the same wave_team_width rule and backs each owner with a team.
  const int m = wave_team_width(3, Scheme::Cats1, opt);
  const int teams = m > 1 ? std::max(1, opt.threads / m) : opt.threads;
  const plan_ir::TilePlan p = plan_ir::emit_cats1(
      3, k.width(), k.height(), k.depth(), T, k.slope(), tz, teams);
  plan_ir::run_plan(k, p, opt);
}

}  // namespace cats
