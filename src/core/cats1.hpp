#pragma once
// CATS1 (Alg. 2): one skewing dimension.
//
// Time is cut into chunks of TZ timesteps (Eq. 1). Within a chunk, the
// (traversal-dimension, time) plane is covered by parallelogram tiles — one
// interval of the tile coordinate v = p - s*tau per thread. Each thread
// sweeps its tile with ascending wavefronts u = p + s*tau; inside a wavefront
// tau ascends. All cross-tile dependencies (reads and the WAR hazard of the
// double-buffered field) point to the right neighbor in v at wavefronts <= u,
// so a single acquire-wait "right neighbor completed wavefront u" resolves
// them (split-tiling). Threads synchronize globally only between chunks.
//
// In 2D the wavefront holds TZ full x-rows; in 3D it holds TZ full (x,y)
// slices — which is why CATS1 in 3D falls back for large domains (Section
// II-B) and the selector then picks CATS2.
//
// The schedule — wavefront-column tiles, the split-tiling ProgressGE edges,
// the barrier/reset/barrier chunk boundary — is emitted as a TilePlan
// (plan/emit.cpp, emit_cats1) and walked; plan/verify.hpp checks the same
// plan statically.

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

// Each overload fills the plan's cache-model fields (plan/emit.hpp
// apply_cache_model) so run()-path plans carry the same residency
// certificate the static emit_plan pipeline produces — without it,
// nt_store_eligible could never arm for direct run() calls.

template <RowKernel1D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  plan_ir::TilePlan p =
      plan_ir::emit_cats1(1, k.width(), 1, 1, T, k.slope(), tz, opt.threads);
  plan_ir::apply_cache_model(
      p, Scheme::Cats1, DomainShape{k.width(), k.width(), 0, 1},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel2D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  plan_ir::TilePlan p = plan_ir::emit_cats1(
      2, k.width(), k.height(), 1, T, k.slope(), tz, opt.threads);
  plan_ir::apply_cache_model(
      p, Scheme::Cats1,
      DomainShape{static_cast<std::int64_t>(k.width()) * k.height(),
                  k.height(), k.width(), 2},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel3D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  // Intra-tile teams (wave engine): m workers cooperate on each tile, so the
  // plan is emitted with threads/m owners; the executor re-derives m from
  // the same wave_team_width rule and backs each owner with a team.
  const int m = wave_team_width(3, Scheme::Cats1, opt);
  const int teams = m > 1 ? std::max(1, opt.threads / m) : opt.threads;
  plan_ir::TilePlan p = plan_ir::emit_cats1(
      3, k.width(), k.height(), k.depth(), T, k.slope(), tz, teams);
  plan_ir::apply_cache_model(
      p, Scheme::Cats1,
      DomainShape{
          static_cast<std::int64_t>(k.width()) * k.height() * k.depth(),
          k.depth(), k.height(), 3},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

}  // namespace cats
