#pragma once
// CATS1 (Alg. 2): one skewing dimension.
//
// Time is cut into chunks of TZ timesteps (Eq. 1). Within a chunk, the
// (traversal-dimension, time) plane is covered by parallelogram tiles — one
// interval of the tile coordinate v = p - s*tau per thread. Each thread
// sweeps its tile with ascending wavefronts u = p + s*tau; inside a wavefront
// tau ascends. All cross-tile dependencies (reads and the WAR hazard of the
// double-buffered field) point to the right neighbor in v at wavefronts <= u,
// so a single acquire-wait "right neighbor completed wavefront u" resolves
// them (split-tiling). Threads synchronize globally only between chunks.
//
// In 2D the wavefront holds TZ full x-rows; in 3D it holds TZ full (x,y)
// slices — which is why CATS1 in 3D falls back for large domains (Section
// II-B) and the selector then picks CATS2.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/oracle.hpp"
#include "core/geometry.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/stencil.hpp"
#include "threads/barrier.hpp"
#include "threads/progress.hpp"
#include "threads/thread_pool.hpp"

namespace cats {
namespace detail {

/// Shared CATS1 driver: Slice(t, p) computes the full wavefront slice at
/// traversal position p, timestep t (a row in 2D, a plane in 3D).
template <class Slice>
void cats1_sweep(std::int64_t extent, int slope, int T, int tz_param,
                 const RunOptions& opt, Slice&& slice) {
  const int threads = opt.threads;
  RunStats* stats = opt.stats;
  const int tz_cap = std::max(1, std::min(tz_param, T));
  // Tiles narrower than 2s would let dependencies skip over a tile; clamp.
  const std::int64_t span = extent + 2ll * slope * (tz_cap - 1);
  const int P = static_cast<int>(std::clamp<std::int64_t>(
      std::min<std::int64_t>(threads, span / std::max(1, 2 * slope)), 1,
      threads));

  ThreadPool pool(P, opt.affinity);
  SpinBarrier bar(P);
  std::vector<ProgressCell> progress(static_cast<std::size_t>(P));

  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    std::int64_t local_spins = 0, local_events = 0, local_ns = 0,
                 local_tiles = 0, local_barriers = 0;
    for (int t0 = 1; t0 <= T; t0 += tz_cap) {
      const int tz = std::min(tz_cap, T - t0 + 1);
      const Cats1Chunk chunk{slope, tz, extent, P};
      const Range ur = chunk.tile_u_range(tid);
      const Range ur_right =
          (tid + 1 < P) ? chunk.tile_u_range(tid + 1) : Range{};

      for (std::int64_t u = ur.lo; u <= ur.hi; ++u) {
        if (tid + 1 < P && u >= ur_right.lo) {
          const WaitResult w =
              progress[static_cast<std::size_t>(tid + 1)].wait_ge(
                  std::min(u, ur_right.hi));
          if (w.spins > 0) {
            ++local_events;
            local_spins += w.spins;
            local_ns += w.ns;
          }
        }
        // The leading edge of the wavefront (lowest tau) reads input the
        // chunk has never touched — that is where main-memory traffic
        // happens, so that is the slice worth prefetching ahead of.
        const Range taus = chunk.tau_range(tid, u);
        for (std::int64_t tau = taus.lo; tau <= taus.hi; ++tau) {
          slice(t0 + static_cast<int>(tau),
                static_cast<int>(u - slope * tau), /*front=*/tau == taus.lo);
        }
        progress[static_cast<std::size_t>(tid)].publish(u);
      }
      // Only tiles that held at least one wavefront column count as
      // processed; threads idled by the P clamp (empty u-range) do not.
      if (ur.lo <= ur.hi) ++local_tiles;

      // Chunk boundary: everyone finishes, progress counters reset, then the
      // next chunk starts (two barriers so no thread can observe a stale
      // counter from the previous chunk).
      bar.arrive_and_wait();
      progress[static_cast<std::size_t>(tid)].reset();
      bar.arrive_and_wait();
      local_barriers += 2;
    }
    if (stats) {
      stats->wait_events.fetch_add(local_events, std::memory_order_relaxed);
      stats->wait_spins.fetch_add(local_spins, std::memory_order_relaxed);
      stats->wait_ns.fetch_add(local_ns, std::memory_order_relaxed);
      stats->tiles_processed.fetch_add(local_tiles, std::memory_order_relaxed);
      stats->barriers.fetch_add(local_barriers, std::memory_order_relaxed);
    }
  });
}

}  // namespace detail

template <RowKernel1D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  detail::cats1_sweep(k.width(), k.slope(), T, tz, opt, [&](int t, int x, bool) {
    check::note_row(t, 0, 0, x, x + 1);
    k.process_row(t, x, x + 1);
  });
}

template <RowKernel2D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  const int W = k.width();
  detail::cats1_sweep(k.height(), k.slope(), T, tz, opt,
                      [&](int t, int y, bool front) {
                        // Leading wavefront edge: the row swept next (one
                        // position ahead at the same timestep) is cold; hint
                        // it into cache while this row computes.
                        if constexpr (kernel_has_prefetch_front<K>) {
                          if (front) k.prefetch_front(t, y + 1);
                        }
                        check::note_row(t, y, 0, 0, W);
                        k.process_row(t, y, 0, W);
                      });
}

template <RowKernel3D K>
void run_cats1(K& k, int T, const RunOptions& opt, int tz) {
  const int W = k.width(), H = k.height();
  detail::cats1_sweep(k.depth(), k.slope(), T, tz, opt,
                      [&](int t, int z, bool front) {
                        if constexpr (kernel_has_prefetch_front<K>) {
                          if (front) k.prefetch_front(t, z + 1);
                        }
                        for (int y = 0; y < H; ++y) {
                          check::note_row(t, y, z, 0, W);
                          k.process_row(t, y, z, 0, W);
                        }
                      });
}

}  // namespace cats
