#pragma once
// Performance model for iterative stencil schemes (the paper's stated future
// work: "we want to analyze and model the performance of CATS").
//
// A scheme's runtime is bounded below by three independent resources:
//   * DRAM:    traffic_bytes / sys_bandwidth        (the memory wall)
//   * cache:   cache_bytes   / l2_bandwidth         (wavefront streaming)
//   * compute: flops         / stencil_peak         (register throughput)
// A memory-bound scheme runs at max(DRAM, cache, compute); the model combines
// the machine characterization (bench_harness/machine.hpp) with the analytic
// traffic model (cachesim/traffic_model.hpp). Benches print predicted vs.
// measured so the model is continuously validated.

#include <algorithm>
#include <string>

#include "bench_harness/machine.hpp"
#include "cachesim/traffic_model.hpp"

namespace cats {

struct PerfPrediction {
  double dram_seconds = 0.0;
  double cache_seconds = 0.0;
  double compute_seconds = 0.0;

  double seconds() const {
    return std::max({dram_seconds, cache_seconds, compute_seconds});
  }
  const char* bound() const {
    const double s = seconds();
    if (s == dram_seconds) return "DRAM";
    if (s == cache_seconds) return "cache";
    return "compute";
  }
};

/// Predict a scheme's runtime from its DRAM traffic and total work.
///
/// `dram_bytes`: from the traffic model (scheme dependent).
/// `cache_bytes`: bytes the kernel streams through the last-level cache —
///   for a stencil every point's NS+1 values and 1 store pass the cache
///   once, i.e. roughly (reads + writes) * N * T * 8.
/// `flops`: N * T * flops_per_point.
inline PerfPrediction predict_runtime(const bench::MachineProfile& m,
                                      double dram_bytes, double cache_bytes,
                                      double flops) {
  PerfPrediction p;
  p.dram_seconds = dram_bytes / (m.sys_bw_gbps * 1e9);
  p.cache_seconds = cache_bytes / (m.l2_bw_gbps * 1e9);
  p.compute_seconds = flops / (m.stencil_dp_gflops * 1e9);
  return p;
}

/// Cache-side traffic of a star-stencil kernel: each computed point loads
/// its row's new cache line once per neighbor *row* (rows of the same
/// wavefront hit), stores once. A serviceable approximation for the model:
/// (state reads + coefficient reads + writes) per point.
inline double kernel_cache_bytes(const TrafficInput& in) {
  const double rows_touched = 2.0 * in.slope + 1.0;
  return (in.state * rows_touched + in.bands + in.state) * in.n * in.t_steps *
         8.0;
}

}  // namespace cats
