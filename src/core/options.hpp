#pragma once
// Run options for the CATS library.
//
// Mirrors the paper's parameter list (Section III): "CATS takes as parameters
// the size of the last cache level, the slope of the stencil s, the memory
// size of a data type and optionally additional cache requirements, e.g., the
// matrix coefficients." Slope and cache requirements come from the kernel;
// everything else lives here.

#include <cstddef>
#include <vector>

#include "sysinfo/topology.hpp"  // AffinityPolicy

namespace cats {

struct RunStats;  // core/stats.hpp

namespace check {
class DepOracle;  // check/oracle.hpp
}  // namespace check

enum class Scheme {
  Auto,      ///< general CATS: pick CATS1/CATS2/CATS3 by Eq. 1/2 + rule of thumb
  Naive,     ///< Alg. 1: sweep the whole domain once per timestep
  Cats1,     ///< Alg. 2: parallelogram split-tiling + wavefront traversal
  Cats2,     ///< Alg. 3: diamond tubes + wavefront traversal
  Cats3,     ///< Sec. II-D: diamond tubes + sequential x-parallelograms (3D)
  PlutoLike, ///< baseline: multi-dimensional time-skewed tiling (see src/baseline)
  Mwd,       ///< multicore wavefront-diamond: a thread *group* shares one
             ///< diamond tube, members pipeline consecutive wavefronts inside
             ///< it (Malas et al.), sizing BZ against the group-shared Z*group
};

/// Empirical-tuning policy (src/tune). The paper's Eq. 1/2 are analytic; on
/// real machines the usable cache share and the best slack drift, so tuned
/// parameters measured by `cats_tune` can be persisted and reused.
enum class Tuning {
  Off,    ///< pure analytic selection (bit-identical to the pre-tuning library)
  UseDb,  ///< Scheme::Auto consults the tuning DB first, falls back to Eq. 1/2
  Search, ///< like UseDb; harnesses with a kernel factory (bench/common.hpp,
          ///< tune::search) run a pilot neighborhood search on a DB miss and
          ///< persist the winner. Inside run() itself (no factory: pilots
          ///< would advance the caller's simulation state) it acts as UseDb.
};

struct RunOptions {
  /// Worker threads (the caller is one of them).
  int threads = 1;

  /// Usable last-private-cache bytes per thread (Z in Eqs. 1-2).
  /// 0 = detect (per-core L2 on this machine).
  std::size_t cache_bytes = 0;

  /// CS = 2s + cs_slack; the paper conservatively chooses 0.8 after a cache
  /// miss analysis (Wonnacott's pessimistic choice corresponds to 1.0).
  double cs_slack = 0.8;

  /// Rule of thumb (Section II-D): switch from CATS(k-1) to CATSk when the
  /// CATS(k-1) wavefront would extend over fewer than this many timesteps.
  int min_wavefront_timesteps = 10;

  Scheme scheme = Scheme::Auto;

  /// Optional synchronization counters (see core/stats.hpp); not reset by
  /// run() so several runs can accumulate.
  RunStats* stats = nullptr;

  /// Test/ablation overrides; 0 = use Eq. 1 / Eq. 2.
  int tz_override = 0;  ///< CATS1 temporal tile height TZ
  int bz_override = 0;  ///< CATS2/CATS3 diamond width BZ
  int bx_override = 0;  ///< CATS3 x-parallelogram width BX

  /// Thread-pinning policy (opt-in). Compact keeps threads on consecutive
  /// physical cores of one node (shared-L3 locality, matches the per-core
  /// private-cache budget of Eq. 1/2); Scatter spreads them across NUMA
  /// nodes (maximum aggregate bandwidth). Degrades to None, with a one-time
  /// warning, where sysfs topology or sched_setaffinity is unavailable.
  AffinityPolicy affinity = AffinityPolicy::None;

  /// Dependence-oracle validation (src/check): attach an oracle and every
  /// scheme reports each computed row plus every ProgressCell/DoneFlag/
  /// barrier crossing to it, so the full slope-s dependence rule — including
  /// cross-thread ordering through *recorded* happens-before edges — is
  /// checked per point. Inspect the oracle afterwards for violations.
  check::DepOracle* oracle = nullptr;

  /// Convenience validation mode: run() builds a temporary oracle sized to
  /// the kernel, validates the whole run (including completeness), and on
  /// any violation prints the diagnostics to stderr and aborts. Also forced
  /// for every run() by setting the CATS_VALIDATE environment variable.
  bool validate = false;

  /// Non-temporal (streaming) stores on the trailing wavefront (src/wave).
  /// Only honored when the plan's residency certificate shows the trailing
  /// wavefront's output leaves cache before its next reader (CATS1/2/3 with
  /// certified, unclamped Eq. 1/2 parameters); ignored — never unsafe —
  /// elsewhere. Off by default: profitable only when the write-back stream
  /// is DRAM-bound.
  bool nt_stores = false;

  /// Temporal unroll of the in-cache wavefront (src/wave): fuse this many
  /// consecutive timesteps of one tile's wavefront chain through a staggered
  /// sweep. 0 = auto (fuse up to 4 where legal), 1 = off, 2..4 = fixed.
  /// Values outside [0, 4] are clamped by run() with a one-time stderr
  /// diagnostic (core/selector.hpp sanitize_unroll_t). Bit-exact with the
  /// unfused walk; auto-disabled under an attached dependence oracle and for
  /// team-owned tiles.
  int unroll_t = 0;

  /// Temporal vectorization of the fused wavefront chain (src/wave,
  /// wave/temporal_vec.hpp): sweep each fused group's rows through a sliding
  /// register window, so every center-row x-neighborhood comes from one
  /// aligned load plus in-register shuffles instead of 2s+1 overlapping
  /// unaligned reloads. Opt-in; takes effect only where a
  /// fused chain forms (unroll_t resolves > 1 and the kernel implements the
  /// TV body). Kernels declare per-kernel bit-exactness vs. the plain walk
  /// via `tv_bit_exact` (core/stencil.hpp kernel_tv_bit_exact); all in-tree
  /// families preserve the identical operation tree, so results are
  /// bit-identical.
  bool temporal_vec = false;

  /// Threads cooperating on one 3D CATS1/CATS2 tile (intra-tile
  /// parallelization of the orthogonal y dimension). threads/team_size teams
  /// own tiles exactly as before; members split each slab's rows and meet at
  /// a team barrier per slab. 1 = off.
  int team_size = 1;

  /// Threads cooperating on one MWD diamond tube (Scheme::Mwd): the domain is
  /// tiled into threads/mwd_group diamond columns sized against the
  /// group-shared cache Z*mwd_group (Eq. 2 with the pooled budget), and the
  /// group's members pipeline consecutive wavefronts of the shared tube
  /// behind a team barrier. Clamped to the largest divisor of `threads` not
  /// exceeding the request (mwd_group_width below); 1 = one thread per
  /// diamond (CATS2-shaped schedule). Ignored by every other scheme.
  int mwd_group = 1;

  /// Cache lines software-prefetched at the wavefront's leading edge
  /// (kernel prefetch_front hint distance). 0 disables the hint.
  int prefetch_dist = 4;

  /// Tenants co-resident on this run's cache (stencil service, src/serve):
  /// Eq. 1/2 size tiles against the *partitioned* cache share Z/cache_tenants
  /// so concurrent jobs batched onto one shard do not evict each other's
  /// wavefronts. 1 (default) = the run owns the whole private cache. The
  /// emitted plan records the divisor and the verifier certifies residency
  /// at the reduced Z (plan/plan.hpp, plan/verify.hpp).
  int cache_tenants = 1;

  /// Explicit logical-CPU pin order for shard-constrained runs (src/serve):
  /// worker tid is bound to pin_cpus[tid % size]. Overrides `affinity` when
  /// non-null and non-empty; the pointee must outlive the run. Degrades to
  /// unpinned exactly like the policy path when sched_setaffinity fails.
  const std::vector<int>* pin_cpus = nullptr;

  /// Empirical-tuning policy; Off keeps selection purely analytic.
  Tuning tuning = Tuning::Off;

  /// Tuning DB location; nullptr = tune::TuneDb::default_path()
  /// ($CATS_TUNE_DB, else ~/.cache/cats/tune.json).
  const char* tuning_db_path = nullptr;
};

/// MWD group width: `group` clamped to [1, threads] and then reduced to the
/// largest divisor of `threads` not exceeding it, so threads/g groups of g
/// members tile the worker pool exactly (no idle remainder workers and no
/// group straddling the pool boundary). Pure; shared by the selector, plan
/// emission and the executor so all three always agree on the layout.
inline int mwd_group_width(int group, int threads) {
  const int cap = threads > 0 ? threads : 1;
  int g = group < 1 ? 1 : (group > cap ? cap : group);
  while (g > 1 && cap % g != 0) --g;
  return g;
}

/// Intra-tile team width m the wave engine uses for a plan of the given
/// dimensionality and scheme: team_size clamped to [1, threads], honored
/// only for 3D CATS1/CATS2 (the tiles with a full orthogonal y extent per
/// slab; everywhere else a slab is a single row and splitting it would
/// serialize on the team barrier). MWD reuses the same worker-pool shape —
/// its m is the mwd_group width (2D/3D; a 1D domain dispatches to CATS1
/// before this matters) — but members pipeline *wavefronts*, not slab rows.
/// The schemes emit plans with threads/m tile owners and the executor
/// re-derives m from this same rule, so the emitted plan and the worker
/// layout always agree.
inline int wave_team_width(int dims, Scheme scheme, const RunOptions& opt) {
  if (scheme == Scheme::Mwd) {
    return dims < 2 ? 1 : mwd_group_width(opt.mwd_group, opt.threads);
  }
  if (dims != 3) return 1;
  if (scheme != Scheme::Cats1 && scheme != Scheme::Cats2) return 1;
  const int cap = opt.threads > 0 ? opt.threads : 1;
  return opt.team_size < 1 ? 1 : (opt.team_size > cap ? cap : opt.team_size);
}

}  // namespace cats
