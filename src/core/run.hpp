#pragma once
// Public entry point.
//
//   cats::RunOptions opt;            // threads, cache size, scheme...
//   cats::run(kernel, T, opt);       // apply the stencil T times
//
// With Scheme::Auto this is the paper's "general CATS scheme": Eq. 1 picks
// the CATS1 chunk height; if the CATS1 wavefront would span fewer than 10
// timesteps the selector switches to CATS2 with the Eq. 2 diamond width.
// The returned SchemeChoice reports what actually ran.

#include <cstdio>
#include <cstdlib>

#include "baseline/pluto_like.hpp"
#include "check/oracle.hpp"
#include "core/cats1.hpp"
#include "core/cats2.hpp"
#include "core/cats3.hpp"
#include "core/mwd.hpp"
#include "core/naive.hpp"
#include "core/selector.hpp"
#include "core/stencil.hpp"

namespace cats {

template <RowKernel1D K>
DomainShape domain_shape(const K& k) {
  return {k.width(), k.width(), 0, 1};
}

template <RowKernel2D K>
DomainShape domain_shape(const K& k) {
  return {static_cast<std::int64_t>(k.width()) * k.height(), k.height(),
          k.width(), 2};
}

template <RowKernel3D K>
DomainShape domain_shape(const K& k) {
  return {static_cast<std::int64_t>(k.width()) * k.height() * k.depth(),
          k.depth(), k.height(), 3};
}

/// Scheme + parameters that run(k, T, opt) would use (without running).
/// With opt.tuning != Off and Scheme::Auto, the persistent tuning DB is
/// consulted first (apply_tuning); a miss falls back to Eq. 1/2 unchanged.
template <class K>
  requires RowKernel1D<K> || RowKernel2D<K> || RowKernel3D<K>
SchemeChoice plan(const K& k, int T, const RunOptions& opt) {
  const KernelCosts costs{k.slope(), effective_cs(k, opt.cs_slack),
                          kernel_element_bytes(k)};
  const DomainShape d = domain_shape(k);
  if (opt.tuning != Tuning::Off) {
    return select_scheme(d, costs, apply_tuning(opt, kernel_tuning_id(k), d), T);
  }
  return select_scheme(d, costs, opt, T);
}

namespace detail {

struct OracleDims {
  int w = 1, h = 1, d = 1;
};

template <class K>
OracleDims oracle_dims(const K& k) {
  if constexpr (RowKernel3D<K>) {
    return {k.width(), k.height(), k.depth()};
  } else if constexpr (RowKernel2D<K>) {
    return {k.width(), k.height(), 1};
  } else {
    return {k.width(), 1, 1};
  }
}

}  // namespace detail

/// Apply the kernel's stencil T times with the selected scheme.
template <class K>
  requires RowKernel1D<K> || RowKernel2D<K> || RowKernel3D<K>
SchemeChoice run(K& k, int T, const RunOptions& opt) {
  // Validation mode (opt.validate or CATS_VALIDATE in the environment):
  // attach a temporary dependence oracle for this run, then require a clean
  // report — any violated dependence prints its precise diagnostic and
  // aborts, so a schedule regression fails fast in any build type.
  if (T > 0 && opt.oracle == nullptr &&
      (opt.validate || check::validate_env_enabled())) {
    const detail::OracleDims dims = detail::oracle_dims(k);
    check::DepOracle oracle(dims.w, dims.h, dims.d, k.slope(), opt.threads);
    RunOptions vopt = opt;
    vopt.oracle = &oracle;
    vopt.validate = false;
    const SchemeChoice choice = run(k, T, vopt);
    oracle.check_complete(T);
    if (!oracle.ok()) {
      oracle.print_report(stderr);
      std::fprintf(stderr,
                   "cats: dependence-oracle validation failed (%lld "
                   "violations), aborting\n",
                   static_cast<long long>(oracle.violation_count()));
      std::abort();
    }
    return choice;
  }
  // Gauss-Seidel-style kernels (same-timestep spatial reads) admit no
  // split-tiling parallelism: force the serial CATS1 wavefront (which still
  // provides the full temporal-locality benefit) or the serial naive sweep.
  if constexpr (kernel_sequential_deps<K>()) {
    RunOptions serial = opt;
    serial.threads = 1;
    serial.unroll_t = sanitize_unroll_t(serial.unroll_t);
    if (opt.scheme != Scheme::Naive) serial.scheme = Scheme::Cats1;
    const SchemeChoice choice = plan(k, T, serial);
    if (T <= 0) return choice;
    if (choice.scheme == Scheme::Naive) {
      run_naive(k, T, serial);
    } else {
      run_cats1(k, T, serial, std::max(1, choice.tz));
    }
    return choice;
  }

  // Resolve tuning once so a DB entry's thread count (run_threads) also
  // reaches the executing scheme, not just the tile parameters. plan() on the
  // resolved options is a no-op second lookup: a hit made scheme explicit.
  RunOptions eff = opt;
  if (opt.tuning != Tuning::Off) {
    eff = apply_tuning(opt, kernel_tuning_id(k), domain_shape(k));
  }
  eff.unroll_t = sanitize_unroll_t(eff.unroll_t);
  eff.mwd_group = sanitize_mwd_group(eff.mwd_group, eff.threads, eff.scheme);
  const SchemeChoice choice = plan(k, T, eff);
  if (T <= 0) return choice;
  // Dimensional fallbacks (CATS2 in 1D -> CATS1, CATS3 below 3D -> CATS2/1)
  // are shared with plan emission via resolve_dispatch, so the statically
  // verifiable plan is always the schedule that executes here. The returned
  // choice stays unresolved: it reports what the selector picked.
  constexpr int dims = RowKernel3D<K> ? 3 : RowKernel2D<K> ? 2 : 1;
  const SchemeChoice exec = resolve_dispatch(choice, dims);
  switch (exec.scheme) {
    case Scheme::Naive:
      run_naive(k, T, eff);
      break;
    case Scheme::Cats1:
      run_cats1(k, T, eff, exec.tz);
      break;
    case Scheme::Cats2:
      if constexpr (!RowKernel1D<K>) {
        run_cats2(k, T, eff, exec.bz);
      }
      break;
    case Scheme::Cats3:
      if constexpr (RowKernel3D<K>) {
        run_cats3(k, T, eff, exec.bz, exec.bx);
      }
      break;
    case Scheme::Mwd:
      if constexpr (!RowKernel1D<K>) {  // 1D resolves to CATS1 above
        run_mwd(k, T, eff, exec.bz);
      }
      break;
    case Scheme::PlutoLike:
      run_pluto_like(k, T, eff);
      break;
    case Scheme::Auto:
      break;  // unreachable: select_scheme never returns Auto
  }
  return choice;
}

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::Auto: return "Auto";
    case Scheme::Naive: return "Naive";
    case Scheme::Cats1: return "CATS1";
    case Scheme::Cats2: return "CATS2";
    case Scheme::Cats3: return "CATS3";
    case Scheme::Mwd: return "MWD";
    case Scheme::PlutoLike: return "PluTo-like";
  }
  return "?";
}

}  // namespace cats
