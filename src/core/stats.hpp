#pragma once
// Optional synchronization statistics.
//
// The paper's minimalist-parallelization argument rests on two empirical
// claims: split-tiling waits almost never fire ("in practice the thread tid
// does not have to wait") and per-diamond waits are short. Passing a
// RunStats through RunOptions makes the schemes count every wait that
// actually spun, so the claim can be checked on any machine/workload.
// Collection is wait-path-only (one branch on an already-loaded value), so
// the fast path is unaffected.

#include <atomic>
#include <cstdint>

namespace cats {

struct RunStats {
  /// Waits that found their condition unsatisfied at least once.
  std::atomic<std::int64_t> wait_events{0};
  /// Total spin/yield iterations across those waits (rough wait cost).
  std::atomic<std::int64_t> wait_spins{0};
  /// Tiles (parallelogram wavefront-columns / diamonds) processed.
  std::atomic<std::int64_t> tiles_processed{0};
  /// Global barriers crossed (per participant).
  std::atomic<std::int64_t> barriers{0};

  void reset() {
    wait_events.store(0, std::memory_order_relaxed);
    wait_spins.store(0, std::memory_order_relaxed);
    tiles_processed.store(0, std::memory_order_relaxed);
    barriers.store(0, std::memory_order_relaxed);
  }

  void add_wait(std::int64_t spins) {
    if (spins > 0) {
      wait_events.fetch_add(1, std::memory_order_relaxed);
      wait_spins.fetch_add(spins, std::memory_order_relaxed);
    }
  }
};

}  // namespace cats
