#pragma once
// Optional synchronization statistics.
//
// The paper's minimalist-parallelization argument rests on two empirical
// claims: split-tiling waits almost never fire ("in practice the thread tid
// does not have to wait") and per-diamond waits are short. Passing a
// RunStats through RunOptions makes the schemes count every wait that
// actually spun, so the claim can be checked on any machine/workload.
// Collection is wait-path-only (one branch on an already-loaded value), so
// the fast path is unaffected.

#include <atomic>
#include <cstdint>

#include "threads/progress.hpp"

namespace cats {

/// Counter semantics (all relaxed atomics, accumulated across runs until
/// reset(); schemes add thread-local tallies once per pool job, so the
/// counters cost nothing inside the sweep loops):
///
/// - `wait_events`: point-to-point waits whose condition was NOT already
///   satisfied on the first probe — a CATS1 neighbor-progress wait
///   (ProgressCell::wait_ge) or a CATS2/CATS3 diamond-dependency wait
///   (DoneFlag::wait) that actually blocked. Waits that pass immediately are
///   not counted; the paper predicts this number stays near zero for CATS1.
/// - `wait_spins`: total probe iterations (PAUSE-backoff or yield rounds)
///   across those blocking waits. A coarse, frequency-independent cost proxy.
/// - `wait_ns`: total wall-clock nanoseconds spent inside blocking waits
///   (steady_clock, measured on the slow path only). This is the number to
///   compare against runtime: spins of different backoff depth have wildly
///   different durations.
/// - `tiles_processed`: tiles whose points this thread actually computed —
///   non-empty parallelogram tiles in CATS1 (one per chunk per thread that
///   owned a non-empty u-range; threads idled by the P clamp or an empty
///   tile contribute nothing) and non-empty diamond tubes in CATS2/CATS3.
/// - `barriers`: global barrier crossings, counted per participant (a
///   P-thread chunk boundary adds 2*P: two barriers guard the progress-cell
///   reset). Naive adds one per participant per timestep; CATS2/CATS3 use no
///   global barriers inside the sweep.
/// - `team_wait_events`/`team_wait_spins`/`team_wait_ns`: the TeamBarrier
///   idle-spin share of the wait_* totals above — intra-tile team/MWD-group
///   members stalled at a slab or wavefront-window barrier. Team crossings
///   that blocked are counted in BOTH the wait_* aggregates and this
///   breakdown, so wait_ns stays the single number to compare against
///   runtime and team_wait_ns attributes how much of it is intra-tile
///   (member imbalance) rather than tile-to-tile (schedule dependencies).
struct RunStats {
  std::atomic<std::int64_t> wait_events{0};
  std::atomic<std::int64_t> wait_spins{0};
  std::atomic<std::int64_t> wait_ns{0};
  std::atomic<std::int64_t> tiles_processed{0};
  std::atomic<std::int64_t> barriers{0};
  std::atomic<std::int64_t> team_wait_events{0};
  std::atomic<std::int64_t> team_wait_spins{0};
  std::atomic<std::int64_t> team_wait_ns{0};

  void reset() {
    // order: relaxed — counters are reset before workers start and read
    // after they join; the pool's fork/join provides the ordering.
    wait_events.store(0, std::memory_order_relaxed);
    wait_spins.store(0, std::memory_order_relaxed);
    wait_ns.store(0, std::memory_order_relaxed);
    tiles_processed.store(0, std::memory_order_relaxed);
    barriers.store(0, std::memory_order_relaxed);
    team_wait_events.store(0, std::memory_order_relaxed);
    team_wait_spins.store(0, std::memory_order_relaxed);
    team_wait_ns.store(0, std::memory_order_relaxed);
  }

  void add_wait(const WaitResult& w) {
    if (w.spins > 0) {
      // order: relaxed — independent counters; read only after the join.
      wait_events.fetch_add(1, std::memory_order_relaxed);
      wait_spins.fetch_add(w.spins, std::memory_order_relaxed);
      wait_ns.fetch_add(w.ns, std::memory_order_relaxed);
    }
  }

  /// Team-barrier crossing: counted in the wait_* aggregates AND the
  /// team_wait_* breakdown (see the field docs above).
  void add_team_wait(const WaitResult& w) {
    if (w.spins > 0) {
      add_wait(w);
      // order: relaxed — independent counters; read only after the join.
      team_wait_events.fetch_add(1, std::memory_order_relaxed);
      team_wait_spins.fetch_add(w.spins, std::memory_order_relaxed);
      team_wait_ns.fetch_add(w.ns, std::memory_order_relaxed);
    }
  }
};

}  // namespace cats
