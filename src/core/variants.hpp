#pragma once
// Design-choice variants used by the ablation benches. These implement the
// alternatives the paper argues AGAINST, so their cost can be measured:
//
// * run_diagonal_wavefront_2d: Wonnacott-style diagonal wavefronts
//   {x + y + t = const} instead of CATS's axis-aligned {y + t = const}.
//   The paper (Section II-B): "The reasons for choosing axis-aligned over
//   diagonal wavefronts are the much simpler indexing and more favorable
//   memory access pattern" — a diagonal wavefront visits one point per row,
//   so the unit-stride dimension cannot be vectorized and every access
//   changes the cache line.
//
// * run_cats2_dynamic: CATS2 with dynamic (work-stealing) diamond
//   assignment instead of the paper's a-priori compile-time thread->tile
//   mapping. The paper argues static assignment plus tile-to-tile waits is
//   enough because tiles are equal-sized; this variant measures what the
//   extra scheduling machinery costs/buys.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/geometry.hpp"
#include "core/options.hpp"
#include "core/stencil.hpp"
#include "threads/progress.hpp"
#include "threads/thread_pool.hpp"

namespace cats {

/// Diagonal-wavefront time skewing in 2D (single tile, serial traversal —
/// the ablation isolates the wavefront orientation, not parallelization).
/// Sweeps w = x + y + 2s*tau ascending; within a wavefront tau ascends; the
/// points of one (w, tau) level form an anti-diagonal x + y = const and are
/// processed point-by-point (there is no contiguous run to vectorize — that
/// is precisely the drawback being measured).
template <RowKernel2D K>
void run_diagonal_wavefront_2d(K& k, int T, int tz_param) {
  const int W = k.width(), H = k.height(), s = k.slope();
  const int tz_cap = std::max(1, std::min(tz_param, T));
  const std::int64_t s2 = 2ll * s;

  for (int t0 = 1; t0 <= T; t0 += tz_cap) {
    const int tz = std::min(tz_cap, T - t0 + 1);
    const std::int64_t w_hi = (W - 1) + (H - 1) + s2 * (tz - 1);
    for (std::int64_t w = 0; w <= w_hi; ++w) {
      const Range taus = intersect({ceil_div(w - (W - 1) - (H - 1), s2),
                                    floor_div(w, s2)},
                                   {0, tz - 1});
      for (std::int64_t tau = taus.lo; tau <= taus.hi; ++tau) {
        const std::int64_t c = w - s2 * tau;  // x + y on this level
        const std::int64_t x_lo = std::max<std::int64_t>(0, c - (H - 1));
        const std::int64_t x_hi = std::min<std::int64_t>(W - 1, c);
        for (std::int64_t x = x_lo; x <= x_hi; ++x) {
          k.process_row(t0 + static_cast<int>(tau),
                        static_cast<int>(c - x), static_cast<int>(x),
                        static_cast<int>(x) + 1);
        }
      }
    }
  }
}

/// CATS2 (2D) with dynamic diamond assignment: threads claim the next ready
/// diamond in the current row from a shared atomic cursor instead of the
/// static round-robin map. Synchronization cost: one fetch_add per diamond
/// plus the same two done-flag waits.
template <RowKernel2D K>
void run_cats2_dynamic(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  const int H = k.height();
  const int s = k.slope();
  const DiamondTiling dt{s, std::max<std::int64_t>(bz, 2ll * s), k.width(), 1, T};

  const Range ir = dt.i_range();
  const Range jr = dt.j_range();
  const Range rr = dt.r_range();
  const std::int64_t ni = ir.hi - ir.lo + 1;
  const std::int64_t nj = jr.hi - jr.lo + 1;
  const std::int64_t n_rows = rr.hi - rr.lo + 1;

  std::vector<DoneFlag> flags(static_cast<std::size_t>(ni * nj));
  auto flag = [&](std::int64_t i, std::int64_t j) -> DoneFlag& {
    return flags[static_cast<std::size_t>((i - ir.lo) * nj + (j - jr.lo))];
  };
  auto in_range = [&](std::int64_t i, std::int64_t j) {
    return i >= ir.lo && i <= ir.hi && j >= jr.lo && j <= jr.hi;
  };
  // One claim cursor per row; a thread may only move to row r+1 after row r
  // is fully claimed (it can still have to wait on done-flags, as in the
  // static scheme).
  std::vector<std::atomic<std::int64_t>> cursor(
      static_cast<std::size_t>(n_rows));
  for (auto& c : cursor) c.store(0);

  auto process_tube = [&](std::int64_t i, std::int64_t j) {
    const Range tr = dt.t_range(i, j);
    if (tr.empty()) return;
    const std::int64_t w_lo = s * tr.lo;
    const std::int64_t w_hi = H - 1 + s * tr.hi;
    for (std::int64_t w = w_lo; w <= w_hi; ++w) {
      const Range ts = intersect(tr, {ceil_div(w - H + 1, s), floor_div(w, s)});
      for (std::int64_t t = ts.lo; t <= ts.hi; ++t) {
        const Range px = dt.p_range(i, j, t);
        if (px.empty()) continue;
        k.process_row(static_cast<int>(t), static_cast<int>(w - s * t),
                      static_cast<int>(px.lo), static_cast<int>(px.hi + 1));
      }
    }
  };

  ThreadPool pool(std::max(1, opt.threads), opt.affinity);
  pool.run([&](int) {
    for (std::int64_t r = rr.lo; r <= rr.hi; ++r) {
      const std::int64_t ilo = std::max(ir.lo, jr.lo + r);
      const std::int64_t ihi = std::min(ir.hi, jr.hi + r);
      auto& cur = cursor[static_cast<std::size_t>(r - rr.lo)];
      for (;;) {
        // order: relaxed — work-stealing ticket; only atomicity matters, the
        // diamond's data ordering comes from its done-flag edges.
        const std::int64_t slot = cur.fetch_add(1, std::memory_order_relaxed);
        const std::int64_t i = ilo + slot;
        if (i > ihi) break;
        const std::int64_t j = i - r;
        if (dt.nonempty(i, j)) {
          if (in_range(i - 1, j) && dt.nonempty(i - 1, j)) flag(i - 1, j).wait();
          if (in_range(i, j + 1) && dt.nonempty(i, j + 1)) flag(i, j + 1).wait();
          process_tube(i, j);
        }
        flag(i, j).set();
      }
    }
  });
}

}  // namespace cats
