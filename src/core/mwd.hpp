#pragma once
// MWD: multicore wavefront-diamond blocking (Malas et al.; ROADMAP item).
//
// CATS2 with the one-tile-per-thread default sizes every diamond against a
// *per-thread* cache share Z, which starves high-CS kernels (banded
// matrices) and multiplies sync volume with the thread count. MWD instead
// tiles the domain into threads/m diamond tubes sized against the *pooled*
// share Z*m (Eq. 2 with Z*m: BZ grows by sqrt(m)) and backs each tube with
// an m-member thread group that pipelines the tube's interior wavefronts —
// member k computes wavefront w in window w + k, its share of the timestep
// range fixed by an equal-area band partition (wave/mwd.hpp has the
// schedule and its happens-before proof; plan/execute.hpp runs it behind a
// per-group TeamBarrier with lead-only Done waits/publishes).
//
// The plan itself (plan/emit.cpp emit_mwd) is group-agnostic — the same
// DiamondTube tiles and Done edges as CATS2 over threads/m owners — so the
// static verifier's dependence/residency/deadlock certificates apply
// verbatim, with residency granted at the pooled budget Z*m.

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

// Cache-model fields: see run_cats1's note (plan/emit.hpp apply_cache_model).

template <RowKernel2D K>
void run_mwd(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  const int m = wave_team_width(2, Scheme::Mwd, opt);
  const int groups = std::max(1, (opt.threads > 0 ? opt.threads : 1) / m);
  plan_ir::TilePlan p = plan_ir::emit_mwd(2, k.width(), k.height(), 1, T,
                                          k.slope(), bz, groups, m);
  plan_ir::apply_cache_model(
      p, Scheme::Mwd,
      DomainShape{static_cast<std::int64_t>(k.width()) * k.height(),
                  k.height(), k.width(), 2},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel3D K>
void run_mwd(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  const int m = wave_team_width(3, Scheme::Mwd, opt);
  const int groups = std::max(1, (opt.threads > 0 ? opt.threads : 1) / m);
  plan_ir::TilePlan p = plan_ir::emit_mwd(3, k.width(), k.height(), k.depth(),
                                          T, k.slope(), bz, groups, m);
  plan_ir::apply_cache_model(
      p, Scheme::Mwd,
      DomainShape{
          static_cast<std::int64_t>(k.width()) * k.height() * k.depth(),
          k.depth(), k.height(), 3},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

}  // namespace cats
