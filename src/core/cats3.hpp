#pragma once
// CATS3 (Section II-D, "Multiple Skewing"): one traversal dimension plus TWO
// tiled dimensions — for domains so large (or caches so small) that even a
// CATS2 diamond tube's wavefront cannot fit in cache.
//
// In 3D: the traversal dimension is z; y is tiled with diamonds (these are
// the parallelized tiles, as in CATS2); x is additionally tiled with
// *parallelograms* in the (x, t) plane — the paper: "the tiled and
// parallelized dimensions use the diamond shape, whereas the tiled-only
// dimensions may also use space dependent tiles like the parallelograms".
//
// Inside one diamond tube the x-parallelograms are processed sequentially
// from RIGHT to LEFT: slope-s dependencies in the (x, t) skew satisfy
// dv >= 0 (reads come from the same or the right parallelogram at earlier
// wavefronts), so finishing a whole right tile before starting its left
// neighbor discharges both the reads and the double-buffer WAR hazard with
// no extra synchronization. Cross-diamond dependencies are the usual two
// done-flags. The wavefront that must stay cached is then
// (diamond area) x BX instead of (diamond area) x W.

#include <algorithm>
#include <cstdint>

#include "check/oracle.hpp"
#include "core/cats2.hpp"
#include "core/geometry.hpp"
#include "core/options.hpp"
#include "core/stencil.hpp"

namespace cats {

template <RowKernel3D K>
void run_cats3(K& k, int T, const RunOptions& opt, std::int64_t bz,
               std::int64_t bx) {
  const int W = k.width(), D = k.depth();
  const int s = k.slope();
  const DiamondTiling dt{s, std::max<std::int64_t>(bz, 2ll * s), k.height(), 1, T};
  const std::int64_t bxw = std::max<std::int64_t>(bx, 2ll * s);

  detail::cats2_sweep(dt, opt,
      [&](const DiamondTiling& d, std::int64_t i, std::int64_t j) {
        const Range tr = d.t_range(i, j);
        if (tr.empty()) return;
        // x-parallelograms relevant to this diamond's time range:
        // vx = x - s*t with x in [0, W), t in [tr.lo, tr.hi].
        const std::int64_t q_lo = floor_div(0 - s * tr.hi, bxw);
        const std::int64_t q_hi = floor_div(W - 1 - s * tr.lo, bxw);
        const std::int64_t w_lo = s * tr.lo;
        const std::int64_t w_hi = D - 1 + s * tr.hi;
        // Right-to-left over x tiles; full wavefront sweep per tile.
        for (std::int64_t q = q_hi; q >= q_lo; --q) {
          for (std::int64_t w = w_lo; w <= w_hi; ++w) {
            const Range ts = intersect(
                tr, {ceil_div(w - D + 1, s), floor_div(w, s)});
            for (std::int64_t t = ts.lo; t <= ts.hi; ++t) {
              const std::int64_t st = static_cast<std::int64_t>(s) * t;
              const std::int64_t x0 = std::max<std::int64_t>(q * bxw + st, 0);
              const std::int64_t x1 = std::min<std::int64_t>((q + 1) * bxw + st,
                                                             W);
              if (x0 >= x1) continue;
              const Range py = d.p_range(i, j, t);
              const int z = static_cast<int>(w - st);
              for (std::int64_t y = py.lo; y <= py.hi; ++y) {
                check::note_row(static_cast<int>(t), static_cast<int>(y), z,
                                static_cast<int>(x0), static_cast<int>(x1));
                k.process_row(static_cast<int>(t), static_cast<int>(y), z,
                              static_cast<int>(x0), static_cast<int>(x1));
              }
            }
          }
        }
      });
}

}  // namespace cats
