#pragma once
// CATS3 (Section II-D, "Multiple Skewing"): one traversal dimension plus TWO
// tiled dimensions — for domains so large (or caches so small) that even a
// CATS2 diamond tube's wavefront cannot fit in cache.
//
// In 3D: the traversal dimension is z; y is tiled with diamonds (these are
// the parallelized tiles, as in CATS2); x is additionally tiled with
// *parallelograms* in the (x, t) plane — the paper: "the tiled and
// parallelized dimensions use the diamond shape, whereas the tiled-only
// dimensions may also use space dependent tiles like the parallelograms".
//
// Inside one diamond tube the x-parallelograms are processed sequentially
// from RIGHT to LEFT: slope-s dependencies in the (x, t) skew satisfy
// dv >= 0 (reads come from the same or the right parallelogram at earlier
// wavefronts), so finishing a whole right tile before starting its left
// neighbor discharges both the reads and the double-buffer WAR hazard with
// no extra synchronization. Cross-diamond dependencies are the usual two
// done-flags. The wavefront that must stay cached is then
// (diamond area) x BX instead of (diamond area) x W.
//
// Each (diamond, x-parallelogram) pair is one plan tile (plan/emit.cpp,
// emit_cats3): the done-waits attach to a diamond's first (rightmost)
// q-tile, the done-flag publish to its last, and the q-chain rides on the
// owner's program order.

#include <cstdint>

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

template <RowKernel3D K>
void run_cats3(K& k, int T, const RunOptions& opt, std::int64_t bz,
               std::int64_t bx) {
  plan_ir::TilePlan p = plan_ir::emit_cats3(
      k.width(), k.height(), k.depth(), T, k.slope(), bz, bx, opt.threads);
  // Cache-model fields: see run_cats1 (plan/emit.hpp apply_cache_model).
  plan_ir::apply_cache_model(
      p, Scheme::Cats3,
      DomainShape{
          static_cast<std::int64_t>(k.width()) * k.height() * k.depth(),
          k.depth(), k.height(), 3},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

}  // namespace cats
