#pragma once
// Naive scheme (Alg. 1): the entire domain advances one timestep at a time.
// The outermost spatial loop is split into equal tiles, one per thread; the
// inner loop is the kernel's hand-vectorized row. Threads synchronize with a
// barrier after each timestep.

#include <algorithm>

#include "check/oracle.hpp"
#include "core/stencil.hpp"
#include "core/options.hpp"
#include "threads/barrier.hpp"
#include "threads/thread_pool.hpp"

namespace cats {

template <RowKernel1D K>
void run_naive(K& k, int T, const RunOptions& opt) {
  const int W = k.width();
  const int P = std::clamp(opt.threads, 1, W);
  ThreadPool pool(P, opt.affinity);
  SpinBarrier bar(P);
  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    const int x0 = static_cast<int>(static_cast<std::int64_t>(W) * tid / P);
    const int x1 = static_cast<int>(static_cast<std::int64_t>(W) * (tid + 1) / P);
    for (int t = 1; t <= T; ++t) {
      check::note_row(t, 0, 0, x0, x1);
      k.process_row(t, x0, x1);
      bar.arrive_and_wait();
    }
  });
}

template <RowKernel2D K>
void run_naive(K& k, int T, const RunOptions& opt) {
  const int W = k.width(), H = k.height();
  const int P = std::clamp(opt.threads, 1, H);
  ThreadPool pool(P, opt.affinity);
  SpinBarrier bar(P);
  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    const int y0 = static_cast<int>(static_cast<std::int64_t>(H) * tid / P);
    const int y1 = static_cast<int>(static_cast<std::int64_t>(H) * (tid + 1) / P);
    for (int t = 1; t <= T; ++t) {
      for (int y = y0; y < y1; ++y) {
        check::note_row(t, y, 0, 0, W);
        k.process_row(t, y, 0, W);
      }
      bar.arrive_and_wait();
    }
  });
}

template <RowKernel3D K>
void run_naive(K& k, int T, const RunOptions& opt) {
  const int W = k.width(), H = k.height(), D = k.depth();
  const int P = std::clamp(opt.threads, 1, D);
  ThreadPool pool(P, opt.affinity);
  SpinBarrier bar(P);
  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    const int z0 = static_cast<int>(static_cast<std::int64_t>(D) * tid / P);
    const int z1 = static_cast<int>(static_cast<std::int64_t>(D) * (tid + 1) / P);
    for (int t = 1; t <= T; ++t) {
      for (int z = z0; z < z1; ++z)
        for (int y = 0; y < H; ++y) {
          check::note_row(t, y, z, 0, W);
          k.process_row(t, y, z, 0, W);
        }
      bar.arrive_and_wait();
    }
  });
}

}  // namespace cats
