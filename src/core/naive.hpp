#pragma once
// Naive scheme (Alg. 1): the entire domain advances one timestep at a time.
// The outermost spatial loop is split into equal tiles, one per thread; the
// inner loop is the kernel's hand-vectorized row. Threads synchronize with a
// barrier after each timestep.
//
// Like every scheme, the schedule is emitted as a TilePlan first and then
// walked (src/plan), so the same plan can be statically verified.

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

template <RowKernel1D K>
void run_naive(K& k, int T, const RunOptions& opt) {
  const plan_ir::TilePlan p =
      plan_ir::emit_naive(1, k.width(), 1, 1, T, k.slope(), opt.threads);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel2D K>
void run_naive(K& k, int T, const RunOptions& opt) {
  const plan_ir::TilePlan p = plan_ir::emit_naive(
      2, k.width(), k.height(), 1, T, k.slope(), opt.threads);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel3D K>
void run_naive(K& k, int T, const RunOptions& opt) {
  const plan_ir::TilePlan p = plan_ir::emit_naive(
      3, k.width(), k.height(), k.depth(), T, k.slope(), opt.threads);
  plan_ir::run_plan(k, p, opt);
}

}  // namespace cats
