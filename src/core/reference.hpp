#pragma once
// Serial reference executor: the plainest possible traversal (ascending t,
// then rows in order). Every scheme must reproduce its results bit-exactly
// for Jacobi-type kernels, because each output point evaluates the identical
// floating-point expression regardless of traversal order.

#include "core/stencil.hpp"

namespace cats {

template <RowKernel1D K>
void run_reference(K& k, int T) {
  for (int t = 1; t <= T; ++t) k.process_row_scalar(t, 0, k.width());
}

template <RowKernel2D K>
void run_reference(K& k, int T) {
  for (int t = 1; t <= T; ++t)
    for (int y = 0; y < k.height(); ++y) k.process_row_scalar(t, y, 0, k.width());
}

template <RowKernel3D K>
void run_reference(K& k, int T) {
  for (int t = 1; t <= T; ++t)
    for (int z = 0; z < k.depth(); ++z)
      for (int y = 0; y < k.height(); ++y)
        k.process_row_scalar(t, y, z, 0, k.width());
}

}  // namespace cats
