#pragma once
// Space-time geometry for skewed traversals.
//
// Conventions (one skewed spatial axis p, timestep t, slope s):
//   u = p + s*t   wavefront index   (dependencies have du <= 0)
//   v = p - s*t   tile index        (dependencies have dv >= 0)
// so u = v + 2*s*tau inside a time chunk with local time tau.
//
// * CATS1 covers the (p, t) plane of one time chunk with parallelogram tiles
//   that are intervals in v; each tile is swept by ascending u; within a
//   wavefront tau ascends. Cross-tile reads go to the *right* neighbor in v
//   at wavefronts <= u, so "right neighbor finished wavefront u" is the whole
//   synchronization condition (split-tiling).
// * CATS2 partitions the (p, t) plane into diamonds: in skewed coordinates
//   (a, b) = (p + s*t, p - s*t) the diamonds are axis-aligned squares of side
//   BZ, which makes point->diamond assignment and per-level bounds O(1).
//   Diamond (i, j) depends exactly on (i-1, j) and (i, j+1) (the two diamonds
//   below it in the t direction).

#include <cassert>
#include <cstdint>

namespace cats {

/// Floor division for possibly-negative numerators (b > 0).
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return -floor_div(-a, b);
}

struct Range {
  std::int64_t lo = 0;  // inclusive
  std::int64_t hi = -1; // inclusive; empty when hi < lo
  bool empty() const noexcept { return hi < lo; }
};

constexpr Range intersect(Range r1, Range r2) noexcept {
  return {r1.lo > r2.lo ? r1.lo : r2.lo, r1.hi < r2.hi ? r1.hi : r2.hi};
}

// ---------------------------------------------------------------------------
// CATS1 parallelogram tiles
// ---------------------------------------------------------------------------

/// One CATS1 time chunk over a traversal extent L with `tiles` parallelogram
/// tiles. Local time tau in [0, tz) maps to global timestep t0 + tau.
struct Cats1Chunk {
  int s = 1;       ///< stencil slope
  int tz = 1;      ///< timesteps in this chunk
  std::int64_t extent = 0;  ///< traversal-dimension size L
  int tiles = 1;

  /// v ranges over [v_min(), extent): every (p in [0,L), tau in [0,tz)).
  std::int64_t v_min() const noexcept {
    return -static_cast<std::int64_t>(s) * (tz - 1);
  }

  /// Tile i owns v in [tile_v_lo(i), tile_v_lo(i+1)). Tiles are equal-sized
  /// (the paper synchronizes cheaply because tiles are of equal size).
  std::int64_t tile_v_lo(int i) const noexcept {
    const std::int64_t lo = v_min();
    const std::int64_t span = extent - lo;
    return lo + span * i / tiles;
  }

  /// Wavefront range swept by tile i (ascending u).
  Range tile_u_range(int i) const noexcept {
    const std::int64_t vb = tile_v_lo(i);
    const std::int64_t ve = tile_v_lo(i + 1);
    if (ve <= vb) return {0, -1};
    // u = v + 2*s*tau, also p = u - s*tau in [0, L).
    Range r{vb > 0 ? vb : 0,
            (ve - 1) + 2ll * s * (tz - 1)};
    const std::int64_t u_domain_hi = extent - 1 + static_cast<std::int64_t>(s) * (tz - 1);
    if (r.hi > u_domain_hi) r.hi = u_domain_hi;
    return r;
  }

  /// For wavefront u within tile i: inclusive range of tau such that
  /// v = u - 2*s*tau lies in the tile and p = u - s*tau lies in [0, extent).
  Range tau_range(int i, std::int64_t u) const noexcept {
    const std::int64_t vb = tile_v_lo(i);
    const std::int64_t ve = tile_v_lo(i + 1);
    const std::int64_t s2 = 2ll * s;
    // vb <= u - 2*s*tau < ve
    Range r{ceil_div(u - ve + 1, s2), floor_div(u - vb, s2)};
    // 0 <= u - s*tau < extent
    r = intersect(r, {ceil_div(u - extent + 1, s), floor_div(u, s)});
    return intersect(r, {0, tz - 1});
  }
};

// ---------------------------------------------------------------------------
// CATS2 diamond tiling
// ---------------------------------------------------------------------------

/// Diamond partition of the (p, t) plane for p in [0, P), t in [1, T].
/// Diamond (i, j): a = p + s*t in [i*B, (i+1)*B), b = p - s*t in
/// [j*B, (j+1)*B). Width in p is B, height in t is B/s; area B^2/(2s) cells.
struct DiamondTiling {
  int s = 1;
  std::int64_t bz = 2;       ///< diamond width B (>= 2s recommended)
  std::int64_t extent = 0;   ///< tiling-dimension size P
  int t_begin = 1, t_end = 1;  ///< timesteps [t_begin, t_end] inclusive

  std::int64_t i_of(std::int64_t p, std::int64_t t) const noexcept {
    return floor_div(p + static_cast<std::int64_t>(s) * t, bz);
  }
  std::int64_t j_of(std::int64_t p, std::int64_t t) const noexcept {
    return floor_div(p - static_cast<std::int64_t>(s) * t, bz);
  }

  /// Diamond row index: constant-ish t band. r = i - j.
  static std::int64_t row_of(std::int64_t i, std::int64_t j) noexcept {
    return i - j;
  }

  Range i_range() const noexcept {
    // a = p + s*t over the whole domain/time window.
    return {floor_div(0 + static_cast<std::int64_t>(s) * t_begin, bz),
            floor_div(extent - 1 + static_cast<std::int64_t>(s) * t_end, bz)};
  }
  Range j_range() const noexcept {
    return {floor_div(0 - static_cast<std::int64_t>(s) * t_end, bz),
            floor_div(extent - 1 - static_cast<std::int64_t>(s) * t_begin, bz)};
  }
  Range r_range() const noexcept {
    const Range ir = i_range(), jr = j_range();
    return {ir.lo - jr.hi, ir.hi - jr.lo};
  }

  /// Inclusive t-range of diamond (i, j) clipped to the time window.
  Range t_range(std::int64_t i, std::int64_t j) const noexcept {
    const std::int64_t s2 = 2ll * s;
    // t = (a - b) / (2s) with a in [iB, (i+1)B), b in [jB, (j+1)B)
    Range r{ceil_div(i * bz - (j + 1) * bz + 1, s2),
            floor_div((i + 1) * bz - 1 - j * bz, s2)};
    return intersect(r, {t_begin, t_end});
  }

  /// Inclusive p-range of diamond (i, j) at time level t, clipped to domain.
  Range p_range(std::int64_t i, std::int64_t j, std::int64_t t) const noexcept {
    const std::int64_t st = static_cast<std::int64_t>(s) * t;
    Range r{i * bz - st, (i + 1) * bz - 1 - st};
    r = intersect(r, {j * bz + st, (j + 1) * bz - 1 + st});
    return intersect(r, {0, extent - 1});
  }

  /// True when diamond (i, j) contains at least one (p, t) cell.
  bool nonempty(std::int64_t i, std::int64_t j) const noexcept {
    const Range tr = t_range(i, j);
    for (std::int64_t t = tr.lo; t <= tr.hi; ++t)
      if (!p_range(i, j, t).empty()) return true;
    return false;
  }
};

}  // namespace cats
