#pragma once
// Kernel concepts: the contract between iteration schemes and stencil math.
//
// A *row kernel* owns its fields (grids, coefficient arrays, double buffers)
// and computes one contiguous unit-stride run of points at a given timestep:
//
//   k.process_row(t, y, x0, x1)        (2D)
//   k.process_row(t, y, z, x0, x1)     (3D)
//
// computes interior points (x in [x0,x1), y[, z]) at timestep t from values
// at t-1 (kernels select src/dst by parity of t). Schemes guarantee the call
// order respects slope-s Jacobi dependencies; any scheme can therefore drive
// any kernel. process_row is the hand-vectorized path; process_row_scalar is
// the plain-C path used by the PluTo-like baseline (the paper's PluTo code is
// auto-vectorized only).

#include <concepts>
#include <cstddef>
#include <string>
#include <vector>

namespace cats {

template <class K>
concept RowKernelCommon = requires(const K ck, K k, std::vector<double>& out,
                                   int T) {
  { ck.slope() } -> std::convertible_to<int>;
  { ck.flops_per_point() } -> std::convertible_to<double>;
  /// Field doubles per spatial point that a wavefront keeps live (1 for a
  /// scalar Jacobi field, 3 for FDTD's three fields). Scales CS in Eq. 1/2.
  { ck.state_doubles_per_point() } -> std::convertible_to<double>;
  /// Additional cache doubles per point, e.g. NS matrix bands; the paper
  /// replaces CS by CS + NS for banded matrices.
  { ck.extra_cache_doubles_per_point() } -> std::convertible_to<double>;
  /// Dump the timestep-T result (all fields) for verification; T selects the
  /// live double-buffer parity.
  k.copy_result_to(out, T);
};

template <class K>
concept RowKernel1D = RowKernelCommon<K> &&
    requires(const K ck, K k, int t, int x0, int x1) {
      { ck.width() } -> std::convertible_to<int>;
      k.process_row(t, x0, x1);
      k.process_row_scalar(t, x0, x1);
    } && !requires(const K ck) { ck.height(); };

template <class K>
concept RowKernel2D = RowKernelCommon<K> &&
    requires(const K ck, K k, int t, int y, int x0, int x1) {
      { ck.width() } -> std::convertible_to<int>;
      { ck.height() } -> std::convertible_to<int>;
      k.process_row(t, y, x0, x1);
      k.process_row_scalar(t, y, x0, x1);
    };

template <class K>
concept RowKernel3D = RowKernelCommon<K> &&
    requires(const K ck, K k, int t, int y, int z, int x0, int x1) {
      { ck.width() } -> std::convertible_to<int>;
      { ck.height() } -> std::convertible_to<int>;
      { ck.depth() } -> std::convertible_to<int>;
      k.process_row(t, y, z, x0, x1);
      k.process_row_scalar(t, y, z, x0, x1);
    };

/// Effective cache-share factor CS' (elements that must stay resident per
/// wavefront point): CS' = state * (2s + slack) + extra.
template <class K>
double effective_cs(const K& k, double cs_slack) {
  return k.state_doubles_per_point() * (2.0 * k.slope() + cs_slack) +
         k.extra_cache_doubles_per_point();
}

/// Kernels with same-timestep spatial dependencies (Gauss-Seidel-style
/// in-place updates) declare `static constexpr bool sequential_spatial_deps
/// = true`. Such kernels are legal only under traversals whose order
/// dominates row-major within each timestep — the serial CATS1 wavefront or
/// the serial naive sweep; run() enforces this (one thread, no split tiles).
template <class K>
constexpr bool kernel_sequential_deps() {
  if constexpr (requires { K::sequential_spatial_deps; }) {
    return K::sequential_spatial_deps;
  } else {
    return false;
  }
}

/// True when K exposes `prefetch_front(t, p, lines)` — a hint that the
/// wavefront's leading edge will sweep the row/plane at traversal position
/// p, timestep t shortly. Drivers (CATS1/CATS2) call it one position ahead
/// of the slice being computed with RunOptions::prefetch_dist as the number
/// of cache lines to start; kernels issue software prefetches clamped to
/// their ghost range. Optional: absent members simply skip the hint.
template <class K>
constexpr bool kernel_has_prefetch_front =
    requires(const K& k, int t, int p, int lines) {
      k.prefetch_front(t, p, lines);
    };

/// True when K exposes the non-temporal write-back path `process_row_nt`
/// (same arguments as process_row): identical arithmetic, but stores stream
/// past the cache. The wave engine uses it only for trailing-wavefront slabs
/// certified to leave cache (see plan/verify.hpp nt_store_eligible) and
/// fences before the owning tile publishes.
template <class K>
constexpr bool kernel_has_row_nt_2d =
    requires(K& k, int t, int y, int x0, int x1) {
      k.process_row_nt(t, y, x0, x1);
    };
template <class K>
constexpr bool kernel_has_row_nt_3d =
    requires(K& k, int t, int y, int z, int x0, int x1) {
      k.process_row_nt(t, y, z, x0, x1);
    };

/// Vectors per x-chunk of the fused 2D micro-kernel's diagonal schedule
/// (kernels/const2d.hpp, banded2d.hpp). Wider chunks amortize the
/// stage-switch overhead; narrower ones keep the group's live rows hotter in
/// L1. Overridable at build time for tuning experiments.
#ifndef CATS_WAVE_CHUNK_VECS
#define CATS_WAVE_CHUNK_VECS 64
#endif
inline constexpr int kWaveChunkVecs = CATS_WAVE_CHUNK_VECS;

/// One stage of a fused temporal micro-kernel group: the row at timestep t
/// (2D: row y; the engine builds stages from consecutive wavefront-chain
/// slabs, t ascending by 1). [x0, x1) half-open like process_row.
struct WaveStage {
  int t = 0;
  int y = 0;
  int x0 = 0, x1 = 0;
  bool nt = false;  ///< stream this stage's stores (trailing wavefront)
};

/// True when K implements the register-tiled 2D temporal micro-kernel
/// `process_stages(const WaveStage* st, int n)`: n x-staggered rows at
/// consecutive timesteps swept in lockstep with one weight/pointer setup
/// (src/wave/microkernel.hpp documents the dependence-legal stagger).
template <class K>
constexpr bool kernel_has_process_stages =
    requires(K& k, const WaveStage* st, int n) {
      k.process_stages(st, n);
    };

/// True when K implements the temporally-vectorized 2D chain body
/// `process_stages_tv(const WaveStage* st, int n)`: same contract and
/// schedule legality as process_stages, but each stage's interior is swept
/// with a sliding register window (shuffle-combined aligned loads) and the
/// ragged range ends with overlapping edge vectors
/// (src/wave/temporal_vec.hpp). Opt-in via RunOptions::temporal_vec.
template <class K>
constexpr bool kernel_has_process_stages_tv =
    requires(K& k, const WaveStage* st, int n) {
      k.process_stages_tv(st, n);
    };

/// True when K implements the temporally-vectorized 3D row body
/// `process_row_tv(t, y, z, x0, x1, nt)`: process_row arithmetic with the
/// sliding-window interior, `nt` selecting the streaming store. 3D chains
/// are row-staggered across planes, so cross-stage register forwarding does
/// not apply — the win is the eliminated unaligned x-neighborhood reloads.
template <class K>
constexpr bool kernel_has_row_tv_3d =
    requires(K& k, int t, int y, int z, int x0, int x1) {
      k.process_row_tv(t, y, z, x0, x1, true);
    };

/// Per-kernel accuracy contract of the temporal-vectorization path. Kernels
/// whose TV body evaluates the identical per-point operation tree as the
/// plain path (no reassociation — shuffles and register forwarding move
/// exact bits) declare `static constexpr bool tv_bit_exact = true`; their TV
/// results are bitwise equal to the serial reference. A kernel without the
/// flag (or a future TV variant that reassociates) is only ULP-bounded and
/// is tested accordingly.
template <class K>
constexpr bool kernel_tv_bit_exact() {
  if constexpr (requires { K::tv_bit_exact; }) {
    return K::tv_bit_exact;
  } else {
    return false;
  }
}

/// Bytes per stored element — the paper lists "the memory size of a data
/// type" among CATS's parameters. Kernels with non-double storage expose an
/// element_bytes() member; everything else defaults to sizeof(double).
template <class K>
double kernel_element_bytes(const K&) {
  return 8.0;
}

template <class K>
  requires requires(const K k) {
    { k.element_bytes() } -> std::convertible_to<double>;
  }
double kernel_element_bytes(const K& k) {
  return k.element_bytes();
}

/// Stable identity string keying the tuning database (src/tune). Kernels
/// expose a `tune_id()` member ("const2d/s1", "fdtd2d", ...); anything else
/// falls back to a structural id from dimensionality, slope, element size and
/// field count — kernels of the same family then share tuned parameters,
/// which is exactly the Eq. 1/2 equivalence class.
template <class K>
std::string kernel_tuning_id(const K& k) {
  if constexpr (requires { { k.tune_id() } -> std::convertible_to<std::string>; }) {
    return k.tune_id();
  } else {
    int dims = 0;
    if constexpr (RowKernel3D<K>) dims = 3;
    else if constexpr (RowKernel2D<K>) dims = 2;
    else if constexpr (RowKernel1D<K>) dims = 1;
    return "k" + std::to_string(dims) + "d/s" + std::to_string(k.slope()) +
           "/e" + std::to_string(static_cast<int>(kernel_element_bytes(k))) +
           "/f" + std::to_string(static_cast<int>(k.state_doubles_per_point()));
  }
}

}  // namespace cats
