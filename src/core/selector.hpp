#pragma once
// General CATS scheme selection (Section II-D).
//
// Eq. 1:  TZ = floor( Zd * Wmax / (CS' * N) )          (CATS1 chunk height)
// Eq. 2:  BZ = floor( sqrt( 2s * Zd * Wmax * Wmax2 / (CS' * N) ) )
//                                                      (CATS2 diamond width)
// where Zd = usable cache size in doubles, CS' the effective per-point cache
// share (2s + slack, scaled by field count, plus NS for banded matrices),
// N the domain size, Wmax the traversed extent and Wmax2 the tiled extent.
//
// Rule of thumb: use CATS(k-1) unless its wavefront would span fewer than
// `min_wavefront_timesteps` (default 10); then switch to CATSk.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/options.hpp"

namespace cats {

struct DomainShape {
  std::int64_t n = 0;      ///< total points N
  std::int64_t wmax = 0;   ///< traversal-dimension extent
  std::int64_t wmax2 = 0;  ///< tiling-dimension extent (CATS2); 0 in 1D
  int dims = 2;
};

struct KernelCosts {
  int slope = 1;
  double cs_eff = 2.8;     ///< effective CS' (see stencil.hpp effective_cs)
  double elem_bytes = 8.0; ///< storage bytes per element (4 for float)
};

struct SchemeChoice {
  Scheme scheme = Scheme::Naive;
  int tz = 0;           ///< CATS1 chunk height (when scheme == Cats1)
  std::int64_t bz = 0;  ///< CATS2/CATS3/MWD diamond width
  std::int64_t bx = 0;  ///< CATS3 x-parallelogram width
  int group = 0;        ///< MWD group width (0 when scheme != Mwd)
};

/// Eq. 1. Returns 0 when even one timestep does not fit; clamped to INT_MAX
/// for huge-cache/tiny-domain combinations (the untruncated double would
/// overflow the int conversion, which is UB).
int compute_tz(std::size_t cache_bytes, const DomainShape& d, const KernelCosts& k);

/// Eq. 2. Clamped below at 2s (minimum useful diamond).
std::int64_t compute_bz(std::size_t cache_bytes, const DomainShape& d,
                        const KernelCosts& k);

/// CATS3 sizing: with a diamond in (y,t) and a BX-wide x-parallelogram, the
/// wavefront holds CS' * BX * BZ^2/(2s) doubles; choosing BX = BZ (balanced)
/// gives BZ = cbrt(2s * Zd / CS'). Clamped below at 2s.
std::int64_t compute_bz3(std::size_t cache_bytes, const KernelCosts& k);

/// General CATS selection; honors opt.scheme / overrides / rule of thumb.
SchemeChoice select_scheme(const DomainShape& d, const KernelCosts& k,
                           const RunOptions& opt, int T);

/// Dimensional dispatch fallbacks applied after select_scheme: CATS2 in 1D
/// runs the CATS1 wavefront (CATS1 is CATS(d) there), CATS3 below 3D runs
/// CATS2/CATS1. run() and plan emission (src/plan/emit.cpp) share this so
/// the emitted plan is always the schedule that would actually execute.
SchemeChoice resolve_dispatch(const SchemeChoice& c, int dims);

/// Eq. 2 before the 2s floor, and the CATS3 (cube-root) analogue. The Auto
/// path uses the raw value to detect caches too small for any time skewing;
/// plan emission uses it to record that a selector output was clamp-inflated
/// past the cache bound (plan verification then downgrades the residency
/// violation to a warning).
double eq2_bz_raw(std::size_t cache_bytes, const DomainShape& d,
                  const KernelCosts& k);
double cats3_bz_raw(std::size_t cache_bytes, const KernelCosts& k);

/// opt.cache_bytes, or the detected per-core private L2 when 0.
std::size_t resolve_cache_bytes(const RunOptions& opt);

/// Empirical-tuning resolution (Section "Tuning" in DESIGN.md). When
/// opt.tuning != Off and opt.scheme == Auto, look the (machine fingerprint,
/// kernel_id, shape bucket, threads) key up in the persistent tuning DB and,
/// on a hit from THIS machine, return a copy of opt with the tuned scheme and
/// tile parameters applied as explicit settings. Misses — including a
/// missing/corrupt DB file or an entry recorded on another machine — return
/// opt unchanged, so Eq. 1/2 selection proceeds exactly as with tuning Off.
RunOptions apply_tuning(const RunOptions& opt, const std::string& kernel_id,
                        const DomainShape& d);

/// RunOptions::unroll_t sanitizer: values outside [0, 4] (4 = the wave
/// engine's kMaxUnroll) are clamped — negative to 0 (auto), larger to 4 —
/// with a one-time stderr diagnostic naming the original value. In-range
/// values pass through untouched.
int sanitize_unroll_t(int unroll_t);

/// RunOptions::mwd_group sanitizer: same math as mwd_group_width
/// (clamp to [1, threads], then the largest divisor of threads), but with a
/// one-time stderr diagnostic when the request had to be adjusted, and a
/// one-time note when a non-default group is set on a scheme that ignores it
/// (every scheme except Mwd/Auto). Returns the effective group width.
int sanitize_mwd_group(int mwd_group, int threads, Scheme scheme);

}  // namespace cats
