#pragma once
// CATS2 (Alg. 3): two skewing dimensions — one tiled with diamonds, one
// traversed by wavefronts.
//
// The (tiling-dimension, time) plane is partitioned into diamonds of width BZ
// (Eq. 2). Each diamond, extended along the traversal dimension, forms a
// diamond tube; a skewed wavefront (u = p_traversal + s*t) sweeps through the
// tube, keeping only CS wavefronts in cache although the tube is far larger
// than the cache. Diamonds arranged side by side are independent; a diamond
// starts once the two diamonds below it are done (per-diamond flags, no
// global synchronization — Fig. 3).
//
// Thread -> diamond assignment is a-priori round-robin within each diamond
// row, matching the paper's static diamondSet(tid).
//
// The diamond tubes and their done-flag edges are emitted as a TilePlan
// (plan/emit.cpp, emit_cats2) and walked; in 2D the tiling dimension is x
// and the traversal dimension y (per-level variable x bounds, handled by the
// kernel's unaligned SIMD path), in 3D the tiling dimension is y, the
// traversal dimension z, and rows span the full fixed-bounds x extent (the
// paper's CATS(d-1) default).

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

// Cache-model fields: see run_cats1's note (plan/emit.hpp apply_cache_model).

template <RowKernel2D K>
void run_cats2(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  plan_ir::TilePlan p = plan_ir::emit_cats2(
      2, k.width(), k.height(), 1, T, k.slope(), bz, opt.threads);
  plan_ir::apply_cache_model(
      p, Scheme::Cats2,
      DomainShape{static_cast<std::int64_t>(k.width()) * k.height(),
                  k.height(), k.width(), 2},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

template <RowKernel3D K>
void run_cats2(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  // Intra-tile teams: see run_cats1's 3D overload.
  const int m = wave_team_width(3, Scheme::Cats2, opt);
  const int teams = m > 1 ? std::max(1, opt.threads / m) : opt.threads;
  plan_ir::TilePlan p = plan_ir::emit_cats2(
      3, k.width(), k.height(), k.depth(), T, k.slope(), bz, teams);
  plan_ir::apply_cache_model(
      p, Scheme::Cats2,
      DomainShape{
          static_cast<std::int64_t>(k.width()) * k.height() * k.depth(),
          k.depth(), k.height(), 3},
      KernelCosts{k.slope(), effective_cs(k, opt.cs_slack),
                  kernel_element_bytes(k)},
      opt);
  plan_ir::run_plan(k, p, opt);
}

}  // namespace cats
