#pragma once
// CATS2 (Alg. 3): two skewing dimensions — one tiled with diamonds, one
// traversed by wavefronts.
//
// The (tiling-dimension, time) plane is partitioned into diamonds of width BZ
// (Eq. 2). Each diamond, extended along the traversal dimension, forms a
// diamond tube; a skewed wavefront (u = p_traversal + s*t) sweeps through the
// tube, keeping only CS wavefronts in cache although the tube is far larger
// than the cache. Diamonds arranged side by side are independent; a diamond
// starts once the two diamonds below it are done (per-diamond flags, no
// global synchronization — Fig. 3).
//
// Thread -> diamond assignment is a-priori round-robin within each diamond
// row, matching the paper's static diamondSet(tid).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/oracle.hpp"
#include "core/geometry.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/stencil.hpp"
#include "threads/progress.hpp"
#include "threads/thread_pool.hpp"

namespace cats {
namespace detail {

/// Shared CATS2 driver. TubeSweep(dt, i, j) processes one diamond tube.
template <class TubeSweep>
void cats2_sweep(const DiamondTiling& dt, const RunOptions& opt,
                 TubeSweep&& tube) {
  const int threads = opt.threads;
  RunStats* stats = opt.stats;
  const Range ir = dt.i_range();
  const Range jr = dt.j_range();
  const Range rr = dt.r_range();
  const std::int64_t ni = ir.hi - ir.lo + 1;
  const std::int64_t nj = jr.hi - jr.lo + 1;

  std::vector<DoneFlag> flags(static_cast<std::size_t>(ni * nj));
  auto flag = [&](std::int64_t i, std::int64_t j) -> DoneFlag& {
    return flags[static_cast<std::size_t>((i - ir.lo) * nj + (j - jr.lo))];
  };
  auto in_range = [&](std::int64_t i, std::int64_t j) {
    return i >= ir.lo && i <= ir.hi && j >= jr.lo && j <= jr.hi;
  };

  const int P = std::max(1, threads);
  ThreadPool pool(P, opt.affinity);
  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    std::int64_t local_spins = 0, local_events = 0, local_ns = 0,
                 local_tiles = 0;
    for (std::int64_t r = rr.lo; r <= rr.hi; ++r) {
      // Diamonds in row r: (i, j = i - r).
      const std::int64_t ilo = std::max(ir.lo, jr.lo + r);
      const std::int64_t ihi = std::min(ir.hi, jr.hi + r);
      for (std::int64_t i = ilo; i <= ihi; ++i) {
        if ((i - ilo) % P != tid) continue;
        const std::int64_t j = i - r;
        if (dt.nonempty(i, j)) {
          // Wait on the two diamonds below (Fig. 3); absent or empty
          // neighbors carry no dependency.
          WaitResult w;
          if (in_range(i - 1, j) && dt.nonempty(i - 1, j)) {
            const WaitResult a = flag(i - 1, j).wait();
            w.spins += a.spins;
            w.ns += a.ns;
          }
          if (in_range(i, j + 1) && dt.nonempty(i, j + 1)) {
            const WaitResult b = flag(i, j + 1).wait();
            w.spins += b.spins;
            w.ns += b.ns;
          }
          if (w.spins > 0) {
            ++local_events;
            local_spins += w.spins;
            local_ns += w.ns;
          }
          tube(dt, i, j);
          ++local_tiles;
        }
        flag(i, j).set();
      }
    }
    if (stats) {
      stats->wait_events.fetch_add(local_events, std::memory_order_relaxed);
      stats->wait_spins.fetch_add(local_spins, std::memory_order_relaxed);
      stats->wait_ns.fetch_add(local_ns, std::memory_order_relaxed);
      stats->tiles_processed.fetch_add(local_tiles, std::memory_order_relaxed);
    }
  });
}

}  // namespace detail

/// CATS2 in 2D: tiling dimension x, traversal dimension y. The x loop inside
/// the tube has per-level variable bounds (handled by the kernel's unaligned
/// SIMD path).
template <RowKernel2D K>
void run_cats2(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  const int H = k.height();
  const int s = k.slope();
  const DiamondTiling dt{s, std::max<std::int64_t>(bz, 2ll * s), k.width(), 1, T};

  detail::cats2_sweep(dt, opt,
      [&](const DiamondTiling& d, std::int64_t i, std::int64_t j) {
        const Range tr = d.t_range(i, j);
        if (tr.empty()) return;
        // Wavefront w = y + s*t sweeps the tube along y.
        const std::int64_t w_lo = s * tr.lo;
        const std::int64_t w_hi = H - 1 + s * tr.hi;
        for (std::int64_t w = w_lo; w <= w_hi; ++w) {
          const Range ts = intersect(
              tr, {ceil_div(w - H + 1, s), floor_div(w, s)});
          for (std::int64_t t = ts.lo; t <= ts.hi; ++t) {
            const Range px = d.p_range(i, j, t);
            if (px.empty()) continue;
            // Leading edge of the tube wavefront (lowest t) streams
            // never-touched rows from memory; hint the next one.
            if constexpr (kernel_has_prefetch_front<K>) {
              if (t == ts.lo) k.prefetch_front(static_cast<int>(t),
                                               static_cast<int>(w - s * t + 1));
            }
            check::note_row(static_cast<int>(t), static_cast<int>(w - s * t),
                            0, static_cast<int>(px.lo),
                            static_cast<int>(px.hi + 1));
            k.process_row(static_cast<int>(t), static_cast<int>(w - s * t),
                          static_cast<int>(px.lo), static_cast<int>(px.hi + 1));
          }
        }
      });
}

/// CATS2 in 3D: tiling dimension y, traversal dimension z, full x rows
/// (fixed unit-stride loop bounds — the paper's CATS(d-1) default).
template <RowKernel3D K>
void run_cats2(K& k, int T, const RunOptions& opt, std::int64_t bz) {
  const int W = k.width(), D = k.depth();
  const int s = k.slope();
  const DiamondTiling dt{s, std::max<std::int64_t>(bz, 2ll * s), k.height(), 1, T};

  detail::cats2_sweep(dt, opt,
      [&](const DiamondTiling& d, std::int64_t i, std::int64_t j) {
        const Range tr = d.t_range(i, j);
        if (tr.empty()) return;
        const std::int64_t w_lo = s * tr.lo;
        const std::int64_t w_hi = D - 1 + s * tr.hi;
        for (std::int64_t w = w_lo; w <= w_hi; ++w) {
          const Range ts = intersect(
              tr, {ceil_div(w - D + 1, s), floor_div(w, s)});
          for (std::int64_t t = ts.lo; t <= ts.hi; ++t) {
            const Range py = d.p_range(i, j, t);
            const int z = static_cast<int>(w - s * t);
            if constexpr (kernel_has_prefetch_front<K>) {
              if (t == ts.lo) k.prefetch_front(static_cast<int>(t), z + 1);
            }
            for (std::int64_t y = py.lo; y <= py.hi; ++y) {
              check::note_row(static_cast<int>(t), static_cast<int>(y), z, 0,
                              W);
              k.process_row(static_cast<int>(t), static_cast<int>(y), z, 0, W);
            }
          }
        }
      });
}

}  // namespace cats
