#include "core/selector.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_harness/machine.hpp"
#include "check/check.hpp"
#include "sysinfo/cache_info.hpp"
#include "tune/db.hpp"

namespace cats {

double eq2_bz_raw(std::size_t cache_bytes, const DomainShape& d,
                  const KernelCosts& k) {
  const double zd = static_cast<double>(cache_bytes) / k.elem_bytes;
  const double bz2 = 2.0 * k.slope * zd * static_cast<double>(d.wmax) *
                     static_cast<double>(d.wmax2) /
                     (k.cs_eff * static_cast<double>(d.n));
  return std::sqrt(std::max(bz2, 0.0));
}

double cats3_bz_raw(std::size_t cache_bytes, const KernelCosts& k) {
  const double zd = static_cast<double>(cache_bytes) / k.elem_bytes;
  return std::cbrt(std::max(2.0 * k.slope * zd / k.cs_eff, 0.0));
}

int compute_tz(std::size_t cache_bytes, const DomainShape& d, const KernelCosts& k) {
  CATS_CHECK(k.slope >= 1, "stencil slope must be >= 1, got %d", k.slope);
  CATS_CHECK(k.cs_eff > 0.0, "effective cache slices CS must be > 0, got %g",
             k.cs_eff);
  CATS_CHECK(d.n > 0, "domain must be non-empty, got n=%lld",
             static_cast<long long>(d.n));
  const double zd = static_cast<double>(cache_bytes) / k.elem_bytes;
  const double tz = zd * static_cast<double>(d.wmax) /
                    (k.cs_eff * static_cast<double>(d.n));
  if (tz < 1.0) return 0;
  // Huge Z with a tiny N overflows the double -> int conversion (UB); any
  // chunk this tall is clamped to T by the callers anyway.
  if (tz >= static_cast<double>(std::numeric_limits<int>::max())) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(tz);
}

std::int64_t compute_bz(std::size_t cache_bytes, const DomainShape& d,
                        const KernelCosts& k) {
  CATS_CHECK(k.slope >= 1, "stencil slope must be >= 1, got %d", k.slope);
  CATS_CHECK(k.cs_eff > 0.0, "effective cache slices CS must be > 0, got %g",
             k.cs_eff);
  CATS_CHECK(d.n > 0, "domain must be non-empty, got n=%lld",
             static_cast<long long>(d.n));
  const auto bz = static_cast<std::int64_t>(eq2_bz_raw(cache_bytes, d, k));
  return std::max<std::int64_t>(bz, 2ll * k.slope);
}

std::int64_t compute_bz3(std::size_t cache_bytes, const KernelCosts& k) {
  CATS_CHECK(k.slope >= 1, "stencil slope must be >= 1, got %d", k.slope);
  CATS_CHECK(k.cs_eff > 0.0, "effective cache slices CS must be > 0, got %g",
             k.cs_eff);
  const auto bz = static_cast<std::int64_t>(cats3_bz_raw(cache_bytes, k));
  return std::max<std::int64_t>(bz, 2ll * k.slope);
}

std::size_t resolve_cache_bytes(const RunOptions& opt) {
  const std::size_t z =
      opt.cache_bytes ? opt.cache_bytes : detect_cache_info().last_private_bytes();
  // Multi-tenant cache partitioning (src/serve): co-resident jobs batched
  // onto one shard size their tiles against an equal share of Z so their
  // wavefronts stay resident under contention. A share too small for even a
  // minimal diamond degrades to the naive fallback like any degenerate Z.
  const int tenants = opt.cache_tenants > 1 ? opt.cache_tenants : 1;
  return z / static_cast<std::size_t>(tenants);
}

SchemeChoice select_scheme(const DomainShape& d, const KernelCosts& k,
                           const RunOptions& opt, int T) {
  const std::size_t z = resolve_cache_bytes(opt);

  switch (opt.scheme) {
    case Scheme::Naive:
      return {Scheme::Naive, 0, 0, 0};
    case Scheme::Cats1: {
      int tz = opt.tz_override ? opt.tz_override
                               : std::max(1, compute_tz(z, d, k));
      return {Scheme::Cats1, std::min(tz, T), 0, 0};
    }
    case Scheme::Cats2: {
      std::int64_t bz = opt.bz_override ? opt.bz_override : compute_bz(z, d, k);
      return {Scheme::Cats2, 0, std::max<std::int64_t>(bz, 2ll * k.slope), 0};
    }
    case Scheme::Cats3: {
      // CATS-k requires k distinct skewed dimensions: clamp to CATS2 in 2D.
      if (d.dims < 3) {
        std::int64_t bz = opt.bz_override ? opt.bz_override : compute_bz(z, d, k);
        return {Scheme::Cats2, 0, std::max<std::int64_t>(bz, 2ll * k.slope), 0};
      }
      std::int64_t bz = opt.bz_override ? opt.bz_override : compute_bz3(z, k);
      std::int64_t bx = opt.bx_override ? opt.bx_override : bz;
      return {Scheme::Cats3, 0, std::max<std::int64_t>(bz, 2ll * k.slope),
              std::max<std::int64_t>(bx, 2ll * k.slope)};
    }
    case Scheme::Mwd: {
      // Group-shared diamond (Malas et al.): the g members of one group pool
      // their private-cache shares, so Eq. 2 sizes the diamond against Z*g.
      const int g = mwd_group_width(opt.mwd_group, opt.threads);
      std::int64_t bz =
          opt.bz_override
              ? opt.bz_override
              : compute_bz(z * static_cast<std::size_t>(g), d, k);
      return {Scheme::Mwd, 0, std::max<std::int64_t>(bz, 2ll * k.slope), 0, g};
    }
    case Scheme::PlutoLike:
      return {Scheme::PlutoLike, 0, 0, 0};
    case Scheme::Auto:
      break;
  }

  // General CATS (Section II-D). 1D domains always use CATS1 (CATS0 would be
  // the naive scheme). Otherwise: CATS(k-1) while its wavefront spans at
  // least min_wavefront_timesteps, else CATS(k).
  const int tz = opt.tz_override ? opt.tz_override : compute_tz(z, d, k);
  // MWD opt-in: a requested group width > 1 moves the diamond branch of the
  // Auto path onto the group-shared budget Z*g (per-thread Z too small for
  // the working set is exactly what grouping fixes).
  const int g = d.dims >= 2 ? mwd_group_width(opt.mwd_group, opt.threads) : 1;
  const std::size_t z_grp = z * static_cast<std::size_t>(g);
  // Degenerate cache (Z below even one 2s-wide diamond's working set, e.g. a
  // deliberately tiny Z parameter): no wavefront of any CATS scheme can stay
  // resident, so time skewing only adds tile overhead — stream naively.
  // Unless a group pools enough cache for a shared diamond: then MWD rescues
  // the run from the naive fallback.
  if (d.dims >= 2 && tz == 0 && !opt.tz_override && !opt.bz_override &&
      eq2_bz_raw(z, d, k) < 2.0 * k.slope) {
    if (g > 1 && eq2_bz_raw(z_grp, d, k) >= 2.0 * k.slope) {
      return {Scheme::Mwd, 0, compute_bz(z_grp, d, k), 0, g};
    }
    return {Scheme::Naive, 0, 0, 0};
  }
  if (d.dims == 1 || tz >= opt.min_wavefront_timesteps || tz >= T) {
    return {Scheme::Cats1, std::max(1, std::min(tz, T)), 0, 0};
  }
  const std::int64_t bz =
      opt.bz_override ? opt.bz_override : compute_bz(g > 1 ? z_grp : z, d, k);
  // A CATS2 diamond spans BZ/s timesteps; when even that drops below the
  // rule-of-thumb depth (enormous 3D domains / tiny caches), move to CATS3.
  if (d.dims >= 3 && bz / k.slope < opt.min_wavefront_timesteps &&
      bz / k.slope < T) {
    const std::int64_t bz3 = compute_bz3(z, k);
    const std::int64_t bx =
        opt.bx_override ? opt.bx_override : bz3;
    return {Scheme::Cats3, 0, std::max<std::int64_t>(bz3, 2ll * k.slope),
            std::max<std::int64_t>(bx, 2ll * k.slope)};
  }
  if (g > 1) return {Scheme::Mwd, 0, bz, 0, g};
  return {Scheme::Cats2, 0, bz, 0};
}

SchemeChoice resolve_dispatch(const SchemeChoice& c, int dims) {
  if (dims == 1 &&
      (c.scheme == Scheme::Cats2 || c.scheme == Scheme::Cats3 ||
       c.scheme == Scheme::Mwd)) {
    return {Scheme::Cats1, std::max(1, c.tz), 0, 0};
  }
  if (dims == 2 && c.scheme == Scheme::Cats3) {
    return {Scheme::Cats2, 0, c.bz, 0};
  }
  return c;
}

RunOptions apply_tuning(const RunOptions& opt, const std::string& kernel_id,
                        const DomainShape& d) {
  if (opt.tuning == Tuning::Off || opt.scheme != Scheme::Auto) return opt;

  tune::DbKey key;
  key.machine = bench::machine_fingerprint();
  key.kernel = kernel_id;
  key.scheme_key = "auto";
  key.shape = tune::shape_bucket(d);
  key.threads = opt.threads;

  const std::string path =
      opt.tuning_db_path ? opt.tuning_db_path : tune::TuneDb::default_path();
  const std::optional<tune::DbEntry> e = tune::cached_lookup(path, key);
  if (!e) return opt;

  RunOptions tuned = opt;
  if (e->run_threads > 0 && e->run_threads <= opt.threads)
    tuned.threads = e->run_threads;
  // Affinity is advisory like everything else here: an unrecognized name
  // (newer DB) keeps the caller's policy, and pinning still degrades
  // gracefully at the ThreadPool if the recorded policy can't be applied.
  if (e->affinity == "none") tuned.affinity = AffinityPolicy::None;
  else if (e->affinity == "compact") tuned.affinity = AffinityPolicy::Compact;
  else if (e->affinity == "scatter") tuned.affinity = AffinityPolicy::Scatter;
  // Wave-engine knobs (src/wave): advisory like the rest — untuned entries
  // (pre-wave DBs) keep the caller's values, and team_size is re-clamped by
  // wave_team_width at execution anyway.
  if (e->nt_stores >= 0) tuned.nt_stores = e->nt_stores != 0;
  if (e->unroll_t >= 0) tuned.unroll_t = e->unroll_t;
  if (e->temporal_vec >= 0) tuned.temporal_vec = e->temporal_vec != 0;
  if (e->team_size > 0 && e->team_size <= opt.threads)
    tuned.team_size = e->team_size;
  if (e->mwd_group > 0 && e->mwd_group <= opt.threads)
    tuned.mwd_group = e->mwd_group;
  if (e->prefetch_dist >= 0) tuned.prefetch_dist = e->prefetch_dist;
  if (e->scheme == "Naive") {
    tuned.scheme = Scheme::Naive;
  } else if (e->scheme == "CATS1" && e->tz > 0) {
    tuned.scheme = Scheme::Cats1;
    tuned.tz_override = e->tz;
  } else if (e->scheme == "CATS2" && e->bz > 0) {
    tuned.scheme = Scheme::Cats2;
    tuned.bz_override = static_cast<int>(e->bz);
  } else if (e->scheme == "CATS3" && e->bz > 0) {
    tuned.scheme = Scheme::Cats3;
    tuned.bz_override = static_cast<int>(e->bz);
    tuned.bx_override = static_cast<int>(e->bx > 0 ? e->bx : e->bz);
  } else if (e->scheme == "MWD") {
    // bz == 0 is valid here: the tuner's MWD probes record "re-derive via
    // Eq. 2 at the pooled budget", which select_scheme does for override 0.
    tuned.scheme = Scheme::Mwd;
    if (e->bz > 0) tuned.bz_override = static_cast<int>(e->bz);
  }
  // Unrecognized scheme names (newer DB version) leave opt untouched.
  return tuned;
}

int sanitize_unroll_t(int unroll_t) {
  // 4 = wave::kMaxUnroll; kept literal so the selector layer does not pull in
  // the wave engine (a static_assert in engine.hpp pins the two together).
  constexpr int kMax = 4;
  if (unroll_t >= 0 && unroll_t <= kMax) return unroll_t;
  const int clamped = unroll_t < 0 ? 0 : kMax;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "cats: unroll_t=%d outside [0, %d]; clamped to %d "
                 "(0 = auto, 1 = off, 2..%d = fixed fuse depth)\n",
                 unroll_t, kMax, clamped, kMax);
  }
  return clamped;
}

int sanitize_mwd_group(int mwd_group, int threads, Scheme scheme) {
  if (mwd_group > 1 && scheme != Scheme::Mwd && scheme != Scheme::Auto) {
    static std::atomic<bool> noted{false};
    if (!noted.exchange(true)) {
      std::fprintf(stderr,
                   "cats: mwd_group=%d ignored: only Scheme::Mwd (or Auto, "
                   "which may pick it) groups threads over a shared diamond\n",
                   mwd_group);
    }
    return 1;
  }
  const int g = mwd_group_width(mwd_group, threads);
  if (g != (mwd_group < 1 ? 1 : mwd_group)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "cats: mwd_group=%d does not tile threads=%d; clamped to "
                   "%d (largest divisor of the worker pool)\n",
                   mwd_group, threads, g);
    }
  }
  return g;
}

}  // namespace cats
