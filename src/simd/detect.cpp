#include "simd/detect.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace cats::simd {

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1;
    f.avx = (ecx >> 28) & 1;
    f.fma = (ecx >> 12) & 1;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1;
    f.avx512f = (ebx >> 16) & 1;
  }
#endif
  return f;
}

std::string cpu_features_string() {
  const CpuFeatures f = detect_cpu_features();
  std::string s;
  auto add = [&s](bool on, const char* name) {
    if (on) {
      if (!s.empty()) s += ' ';
      s += name;
    }
  };
  add(f.sse2, "sse2");
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  if (s.empty()) s = "none";
  return s;
}

}  // namespace cats::simd
