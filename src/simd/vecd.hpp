#pragma once
// Double-precision SIMD vector wrapper.
//
// The paper hand-vectorizes the inner stencil loop with SSE2 so that the
// kernel keeps up with L2 bandwidth ("the vectorization ensures that the
// kernel remains memory-bound but cannot accelerate the execution beyond
// that"). We wrap the widest vector the compile target offers (SSE2 is the
// guaranteed x86-64 baseline, AVX2/AVX-512 when -march allows) behind one
// type so kernels are written once.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__)
#include <immintrin.h>
#elif defined(__AVX2__) || defined(__AVX__)
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__)
#include <emmintrin.h>
#define CATS_SSE2_ONLY 1
#else
#define CATS_SCALAR_ONLY 1
#endif

namespace cats::simd {

/// Read-prefetch hint with low temporal locality (kernel prefetch_front
/// implementations use it on the leading wavefront edge); no-op where the
/// builtin is unavailable.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}

/// Order non-temporal (write-combining) stores before subsequent stores.
/// Streaming stores bypass the cache and are NOT ordered by an ordinary
/// release store, so every NT write-back path must fence before publishing
/// progress (wave engine: once per slab/tile boundary, never per row).
inline void store_fence() {
#if !defined(CATS_SCALAR_ONLY)
  _mm_sfence();
#else
  // order: seq_cst — scalar fallback has no WC stores; a full fence is the
  // conservative stand-in so the wave engine's contract holds everywhere.
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

#if defined(__AVX512F__)

inline constexpr int kWidth = 8;
struct VecD {
  static constexpr int width = 8;
  __m512d v;
  static VecD load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static VecD load_aligned(const double* p) { return {_mm512_load_pd(p)}; }
  static VecD broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static VecD zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm512_store_pd(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 64-byte aligned.
  void store_nt(double* p) const { _mm512_stream_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  double hsum() const { return _mm512_reduce_add_pd(v); }
};
inline constexpr const char* kIsaName = "AVX-512F";

#elif defined(__AVX2__) || defined(__AVX__)

inline constexpr int kWidth = 4;
struct VecD {
  static constexpr int width = 4;
  __m256d v;
  static VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecD load_aligned(const double* p) { return {_mm256_load_pd(p)}; }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm256_store_pd(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 32-byte aligned.
  void store_nt(double* p) const { _mm256_stream_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
#if defined(__FMA__)
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
    return a * b + c;
#endif
  }
  double hsum() const {
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  }
};
inline constexpr const char* kIsaName = "AVX2";

#elif defined(CATS_SSE2_ONLY)

inline constexpr int kWidth = 2;
struct VecD {
  static constexpr int width = 2;
  __m128d v;
  static VecD load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecD load_aligned(const double* p) { return {_mm_load_pd(p)}; }
  static VecD broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecD zero() { return {_mm_setzero_pd()}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm_store_pd(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 16-byte aligned.
  void store_nt(double* p) const { _mm_stream_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) { return a * b + c; }
  double hsum() const {
    return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
  }
};
inline constexpr const char* kIsaName = "SSE2";

#else  // portable fallback

inline constexpr int kWidth = 1;
struct VecD {
  static constexpr int width = 1;
  double v;
  static VecD load(const double* p) { return {*p}; }
  static VecD load_aligned(const double* p) { return {*p}; }
  static VecD broadcast(double x) { return {x}; }
  static VecD zero() { return {0.0}; }
  void store(double* p) const { *p = v; }
  void store_aligned(double* p) const { *p = v; }
  void store_nt(double* p) const { *p = v; }  ///< no NT stores without SIMD
  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  static VecD fma(VecD a, VecD b, VecD c) { return {a.v * b.v + c.v}; }
  double hsum() const { return v; }
};
inline constexpr const char* kIsaName = "scalar";

#endif

// Single-precision vector with the same interface (CATS takes "the memory
// size of a data type" as a parameter — float doubles every wavefront's
// reach, which Eq. 1/2 account for via the kernel's element_bytes()).
#if defined(__AVX512F__)

struct VecF {
  static constexpr int width = 16;
  __m512 v;
  static VecF load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static VecF broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static VecF zero() { return {_mm512_setzero_ps()}; }
  void store(float* p) const { _mm512_storeu_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm512_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
    return {_mm512_fmadd_ps(a.v, b.v, c.v)};
  }
};

#elif defined(__AVX2__) || defined(__AVX__)

struct VecF {
  static constexpr int width = 8;
  __m256 v;
  static VecF load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecF zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
#if defined(__FMA__)
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
    return a * b + c;
#endif
  }
};

#elif defined(CATS_SSE2_ONLY)

struct VecF {
  static constexpr int width = 4;
  __m128 v;
  static VecF load(const float* p) { return {_mm_loadu_ps(p)}; }
  static VecF broadcast(float x) { return {_mm_set1_ps(x)}; }
  static VecF zero() { return {_mm_setzero_ps()}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) { return a * b + c; }
};

#else

struct VecF {
  static constexpr int width = 1;
  float v;
  static VecF load(const float* p) { return {*p}; }
  static VecF broadcast(float x) { return {x}; }
  static VecF zero() { return {0.0f}; }
  void store(float* p) const { *p = v; }
  friend VecF operator+(VecF a, VecF b) { return {a.v + b.v}; }
  friend VecF operator-(VecF a, VecF b) { return {a.v - b.v}; }
  friend VecF operator*(VecF a, VecF b) { return {a.v * b.v}; }
  static VecF fma(VecF a, VecF b, VecF c) { return {a.v * b.v + c.v}; }
};

#endif

/// Scalar float twin of VecF (see ScalarD below for the rationale).
struct ScalarF {
  static constexpr int width = 1;
  float v;
  static ScalarF load(const float* p) { return {*p}; }
  static ScalarF broadcast(float x) { return {x}; }
  static ScalarF zero() { return {0.0f}; }
  void store(float* p) const { *p = v; }
  friend ScalarF operator+(ScalarF a, ScalarF b) { return {a.v + b.v}; }
  friend ScalarF operator-(ScalarF a, ScalarF b) { return {a.v - b.v}; }
  friend ScalarF operator*(ScalarF a, ScalarF b) { return {a.v * b.v}; }
  static ScalarF fma(ScalarF a, ScalarF b, ScalarF c) {
#if defined(__FMA__) || defined(__AVX512F__)
    return {std::fmaf(a.v, b.v, c.v)};
#else
    return {a.v * b.v + c.v};
#endif
  }
};

/// Scalar twin of VecD with the identical interface. Kernels implement their
/// inner loop once, templated on the vector type; instantiating with ScalarD
/// yields the scalar path. Because both instantiations execute the same
/// operation tree per lane (and the build disables FP contraction), the SIMD
/// and scalar paths produce bit-identical results — the basis of the
/// bit-exact verification tests.
///
/// fma() preserves that pairing: exactly when the active VecD fuses
/// (hardware FMA present: __FMA__ or AVX-512), ScalarD uses std::fma, whose
/// single correctly-rounded step is bitwise identical to each vfmadd lane.
/// Otherwise both sides fall back to the same unfused multiply-add. Either
/// way the two paths stay bit-identical in every build configuration.
struct ScalarD {
  static constexpr int width = 1;
  double v;
  static ScalarD load(const double* p) { return {*p}; }
  static ScalarD load_aligned(const double* p) { return {*p}; }
  static ScalarD broadcast(double x) { return {x}; }
  static ScalarD zero() { return {0.0}; }
  void store(double* p) const { *p = v; }
  void store_aligned(double* p) const { *p = v; }
  friend ScalarD operator+(ScalarD a, ScalarD b) { return {a.v + b.v}; }
  friend ScalarD operator-(ScalarD a, ScalarD b) { return {a.v - b.v}; }
  friend ScalarD operator*(ScalarD a, ScalarD b) { return {a.v * b.v}; }
  static ScalarD fma(ScalarD a, ScalarD b, ScalarD c) {
#if defined(__FMA__) || defined(__AVX512F__)
    return {std::fma(a.v, b.v, c.v)};
#else
    return {a.v * b.v + c.v};
#endif
  }
  double hsum() const { return v; }
};

/// Non-temporal twin of VecD: identical arithmetic, but store() streams past
/// the cache when the destination is naturally aligned (and falls back to a
/// plain unaligned store otherwise — x86 stream stores fault on misaligned
/// addresses). Kernels instantiate their one `span<V>` body with NtVecD to
/// get the cache-bypassing write-back path (process_row_nt) without a second
/// copy of the stencil math; the alignment test is loop-invariant in
/// practice (pointers advance by whole vectors), so the branch predicts
/// perfectly. Values written are bit-identical either way — NT only changes
/// *where* the line lands, never *what* is stored.
///
/// Callers MUST issue simd::store_fence() before any releasing publish that
/// makes NT-written data visible to another thread: WC stores are not
/// ordered by an ordinary release store.
struct NtVecD {
  static constexpr int width = VecD::width;
  VecD inner;
  static NtVecD load(const double* p) { return {VecD::load(p)}; }
  static NtVecD load_aligned(const double* p) { return {VecD::load_aligned(p)}; }
  static NtVecD broadcast(double x) { return {VecD::broadcast(x)}; }
  static NtVecD zero() { return {VecD::zero()}; }
  void store(double* p) const {
    if ((reinterpret_cast<std::uintptr_t>(p) &
         (sizeof(double) * width - 1)) == 0) {
      inner.store_nt(p);
    } else {
      inner.store(p);
    }
  }
  void store_aligned(double* p) const { inner.store_nt(p); }
  friend NtVecD operator+(NtVecD a, NtVecD b) { return {a.inner + b.inner}; }
  friend NtVecD operator-(NtVecD a, NtVecD b) { return {a.inner - b.inner}; }
  friend NtVecD operator*(NtVecD a, NtVecD b) { return {a.inner * b.inner}; }
  static NtVecD fma(NtVecD a, NtVecD b, NtVecD c) {
    return {VecD::fma(a.inner, b.inner, c.inner)};
  }
  double hsum() const { return inner.hsum(); }
};

}  // namespace cats::simd
