#pragma once
// Double-precision SIMD vector wrapper.
//
// The paper hand-vectorizes the inner stencil loop with SSE2 so that the
// kernel keeps up with L2 bandwidth ("the vectorization ensures that the
// kernel remains memory-bound but cannot accelerate the execution beyond
// that"). We wrap the widest vector the compile target offers (SSE2 is the
// guaranteed x86-64 baseline, AVX2/AVX-512 when -march allows) behind one
// type so kernels are written once.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__)
#include <immintrin.h>
#elif defined(__AVX2__) || defined(__AVX__)
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__)
#include <emmintrin.h>
#define CATS_SSE2_ONLY 1
#else
#define CATS_SCALAR_ONLY 1
#endif

namespace cats::simd {

/// Read-prefetch hint with low temporal locality (kernel prefetch_front
/// implementations use it on the leading wavefront edge); no-op where the
/// builtin is unavailable.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}

/// Order non-temporal (write-combining) stores before subsequent stores.
/// Streaming stores bypass the cache and are NOT ordered by an ordinary
/// release store, so every NT write-back path must fence before publishing
/// progress (wave engine: once per slab/tile boundary, never per row).
inline void store_fence() {
#if !defined(CATS_SCALAR_ONLY)
  _mm_sfence();
#else
  // order: seq_cst — scalar fallback has no WC stores; a full fence is the
  // conservative stand-in so the wave engine's contract holds everywhere.
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

#if defined(__AVX512F__)

inline constexpr int kWidth = 8;
struct VecD {
  static constexpr int width = 8;
  using elem_t = double;
  __m512d v;
  static VecD load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static VecD load_aligned(const double* p) { return {_mm512_load_pd(p)}; }
  static VecD broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static VecD zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm512_store_pd(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 64-byte aligned.
  void store_nt(double* p) const { _mm512_stream_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm512_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  /// Lane-concatenating extract: lane i of the result is lane i+K of the
  /// 2*width-lane concatenation a:b (K in [0, width]). This is the register
  /// shift-combine the temporal-vectorized micro-kernels build every
  /// x-neighborhood from — two aligned loads plus one shuffle replace each
  /// unaligned reload.
  template <int K>
  static VecD shuffle(VecD a, VecD b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == width) {
      return b;
    } else {
      return {_mm512_castsi512_pd(_mm512_alignr_epi64(
          _mm512_castpd_si512(b.v), _mm512_castpd_si512(a.v), K))};
    }
  }
  double hsum() const { return _mm512_reduce_add_pd(v); }
};
inline constexpr const char* kIsaName = "AVX-512F";

#elif defined(__AVX2__) || defined(__AVX__)

inline constexpr int kWidth = 4;
struct VecD {
  static constexpr int width = 4;
  using elem_t = double;
  __m256d v;
  static VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecD load_aligned(const double* p) { return {_mm256_load_pd(p)}; }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm256_store_pd(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 32-byte aligned.
  void store_nt(double* p) const { _mm256_stream_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) {
#if defined(__FMA__)
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
    return a * b + c;
#endif
  }
  /// See the AVX-512 overload: lane i of the result = lane i+K of a:b.
  template <int K>
  static VecD shuffle(VecD a, VecD b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == width) {
      return b;
    } else if constexpr (K == 2) {
      return {_mm256_permute2f128_pd(a.v, b.v, 0x21)};
    } else if constexpr (K == 1) {
      const __m256d t = _mm256_permute2f128_pd(a.v, b.v, 0x21);  // a2 a3 b0 b1
      return {_mm256_shuffle_pd(a.v, t, 0b0101)};                // a1 a2 a3 b0
    } else {  // K == 3
      const __m256d t = _mm256_permute2f128_pd(a.v, b.v, 0x21);  // a2 a3 b0 b1
      return {_mm256_shuffle_pd(t, b.v, 0b0101)};                // a3 b0 b1 b2
    }
  }
  double hsum() const {
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  }
};
inline constexpr const char* kIsaName = "AVX2";

#elif defined(CATS_SSE2_ONLY)

inline constexpr int kWidth = 2;
struct VecD {
  static constexpr int width = 2;
  using elem_t = double;
  __m128d v;
  static VecD load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecD load_aligned(const double* p) { return {_mm_load_pd(p)}; }
  static VecD broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecD zero() { return {_mm_setzero_pd()}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm_store_pd(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 16-byte aligned.
  void store_nt(double* p) const { _mm_stream_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
  static VecD fma(VecD a, VecD b, VecD c) { return a * b + c; }
  /// See the AVX-512 overload: lane i of the result = lane i+K of a:b.
  template <int K>
  static VecD shuffle(VecD a, VecD b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == width) {
      return b;
    } else {  // K == 1
      return {_mm_shuffle_pd(a.v, b.v, 1)};  // a1 b0
    }
  }
  double hsum() const {
    return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
  }
};
inline constexpr const char* kIsaName = "SSE2";

#else  // portable fallback

inline constexpr int kWidth = 1;
struct VecD {
  static constexpr int width = 1;
  using elem_t = double;
  double v;
  static VecD load(const double* p) { return {*p}; }
  static VecD load_aligned(const double* p) { return {*p}; }
  static VecD broadcast(double x) { return {x}; }
  static VecD zero() { return {0.0}; }
  void store(double* p) const { *p = v; }
  void store_aligned(double* p) const { *p = v; }
  void store_nt(double* p) const { *p = v; }  ///< no NT stores without SIMD
  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  static VecD fma(VecD a, VecD b, VecD c) { return {a.v * b.v + c.v}; }
  /// Degenerate width-1 shuffle: K == 0 selects a, K == 1 (== width) b.
  template <int K>
  static VecD shuffle(VecD a, VecD b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) return a;
    else return b;
  }
  double hsum() const { return v; }
};
inline constexpr const char* kIsaName = "scalar";

#endif

// Single-precision vector with the same interface (CATS takes "the memory
// size of a data type" as a parameter — float doubles every wavefront's
// reach, which Eq. 1/2 account for via the kernel's element_bytes()).
#if defined(__AVX512F__)

struct VecF {
  static constexpr int width = 16;
  using elem_t = float;
  __m512 v;
  static VecF load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static VecF load_aligned(const float* p) { return {_mm512_load_ps(p)}; }
  static VecF broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static VecF zero() { return {_mm512_setzero_ps()}; }
  void store(float* p) const { _mm512_storeu_ps(p, v); }
  void store_aligned(float* p) const { _mm512_store_ps(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 64-byte aligned.
  void store_nt(float* p) const { _mm512_stream_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm512_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm512_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm512_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
    return {_mm512_fmadd_ps(a.v, b.v, c.v)};
  }
  /// See VecD::shuffle: lane i of the result = lane i+K of a:b.
  template <int K>
  static VecF shuffle(VecF a, VecF b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == width) {
      return b;
    } else {
      return {_mm512_castsi512_ps(_mm512_alignr_epi32(
          _mm512_castps_si512(b.v), _mm512_castps_si512(a.v), K))};
    }
  }
};

#elif defined(__AVX2__) || defined(__AVX__)

struct VecF {
  static constexpr int width = 8;
  using elem_t = float;
  __m256 v;
  static VecF load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static VecF load_aligned(const float* p) { return {_mm256_load_ps(p)}; }
  static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecF zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  void store_aligned(float* p) const { _mm256_store_ps(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 32-byte aligned.
  void store_nt(float* p) const { _mm256_stream_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) {
#if defined(__FMA__)
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
    return a * b + c;
#endif
  }
  /// See VecD::shuffle: lane i of the result = lane i+K of a:b. With AVX2 a
  /// pair of cross-lane permutes plus a blend does it in-register; plain AVX
  /// has no 32-bit cross-lane permute, so it round-trips through a stack
  /// buffer (still branch-free and correct, just slower).
  template <int K>
  static VecF shuffle(VecF a, VecF b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == width) {
      return b;
    } else {
#if defined(__AVX2__)
      const __m256i idx = _mm256_setr_epi32(
          (0 + K) & 7, (1 + K) & 7, (2 + K) & 7, (3 + K) & 7, (4 + K) & 7,
          (5 + K) & 7, (6 + K) & 7, (7 + K) & 7);
      const __m256 pa = _mm256_permutevar8x32_ps(a.v, idx);
      const __m256 pb = _mm256_permutevar8x32_ps(b.v, idx);
      return {_mm256_blend_ps(pa, pb, (0xFF << (8 - K)) & 0xFF)};
#else
      alignas(32) float tmp[16];
      a.store_aligned(tmp);
      b.store_aligned(tmp + 8);
      return load(tmp + K);
#endif
    }
  }
};

#elif defined(CATS_SSE2_ONLY)

struct VecF {
  static constexpr int width = 4;
  using elem_t = float;
  __m128 v;
  static VecF load(const float* p) { return {_mm_loadu_ps(p)}; }
  static VecF load_aligned(const float* p) { return {_mm_load_ps(p)}; }
  static VecF broadcast(float x) { return {_mm_set1_ps(x)}; }
  static VecF zero() { return {_mm_setzero_ps()}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  void store_aligned(float* p) const { _mm_store_ps(p, v); }
  /// Non-temporal (cache-bypassing) store; p must be 16-byte aligned.
  void store_nt(float* p) const { _mm_stream_ps(p, v); }
  friend VecF operator+(VecF a, VecF b) { return {_mm_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm_mul_ps(a.v, b.v)}; }
  static VecF fma(VecF a, VecF b, VecF c) { return a * b + c; }
  /// See VecD::shuffle: lane i of the result = lane i+K of a:b.
  template <int K>
  static VecF shuffle(VecF a, VecF b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) {
      return a;
    } else if constexpr (K == width) {
      return b;
    } else if constexpr (K == 2) {
      return {_mm_shuffle_ps(a.v, b.v, _MM_SHUFFLE(1, 0, 3, 2))};  // a2 a3 b0 b1
    } else if constexpr (K == 1) {
      const __m128 t = _mm_shuffle_ps(a.v, b.v, _MM_SHUFFLE(0, 0, 3, 3));
      return {_mm_shuffle_ps(a.v, t, _MM_SHUFFLE(2, 0, 2, 1))};  // a1 a2 a3 b0
    } else {  // K == 3
      const __m128 t = _mm_shuffle_ps(a.v, b.v, _MM_SHUFFLE(0, 0, 3, 3));
      return {_mm_shuffle_ps(t, b.v, _MM_SHUFFLE(2, 1, 2, 0))};  // a3 b0 b1 b2
    }
  }
};

#else

struct VecF {
  static constexpr int width = 1;
  using elem_t = float;
  float v;
  static VecF load(const float* p) { return {*p}; }
  static VecF load_aligned(const float* p) { return {*p}; }
  static VecF broadcast(float x) { return {x}; }
  static VecF zero() { return {0.0f}; }
  void store(float* p) const { *p = v; }
  void store_aligned(float* p) const { *p = v; }
  void store_nt(float* p) const { *p = v; }  ///< no NT stores without SIMD
  friend VecF operator+(VecF a, VecF b) { return {a.v + b.v}; }
  friend VecF operator-(VecF a, VecF b) { return {a.v - b.v}; }
  friend VecF operator*(VecF a, VecF b) { return {a.v * b.v}; }
  static VecF fma(VecF a, VecF b, VecF c) { return {a.v * b.v + c.v}; }
  /// Degenerate width-1 shuffle: K == 0 selects a, K == 1 (== width) b.
  template <int K>
  static VecF shuffle(VecF a, VecF b) {
    static_assert(K >= 0 && K <= width);
    if constexpr (K == 0) return a;
    else return b;
  }
};

#endif

/// In-register lane rotation: lane i of the result is lane (i+K) mod width of
/// v. rotate<K>(v) == shuffle<K>(v, v); the temporal-vectorized kernels use
/// shuffle directly (two source registers), rotate is the single-register
/// convenience form.
template <int K, class V>
inline V rotate(V v) {
  return V::template shuffle<K>(v, v);
}

#if defined(__AVX2__) || defined(__AVX__)
#if !defined(__AVX512F__)
/// In-register 4x4 transpose of four width-4 double vectors (classic
/// unpack + 128-bit-lane permute ladder).
inline void transpose4x4(VecD& r0, VecD& r1, VecD& r2, VecD& r3) {
  const __m256d t0 = _mm256_unpacklo_pd(r0.v, r1.v);  // r00 r10 r02 r12
  const __m256d t1 = _mm256_unpackhi_pd(r0.v, r1.v);  // r01 r11 r03 r13
  const __m256d t2 = _mm256_unpacklo_pd(r2.v, r3.v);  // r20 r30 r22 r32
  const __m256d t3 = _mm256_unpackhi_pd(r2.v, r3.v);  // r21 r31 r23 r33
  r0.v = _mm256_permute2f128_pd(t0, t2, 0x20);
  r1.v = _mm256_permute2f128_pd(t1, t3, 0x20);
  r2.v = _mm256_permute2f128_pd(t0, t2, 0x31);
  r3.v = _mm256_permute2f128_pd(t1, t3, 0x31);
}
#endif
#elif defined(CATS_SSE2_ONLY)
/// In-register 4x4 transpose of four width-4 float vectors.
inline void transpose4x4(VecF& r0, VecF& r1, VecF& r2, VecF& r3) {
  _MM_TRANSPOSE4_PS(r0.v, r1.v, r2.v, r3.v);
}
#endif

/// Generic 4x4 transpose of the leading 4x4 lane block of four vectors;
/// lanes >= 4 pass through unchanged. Dedicated in-register overloads above
/// take precedence where the ISA has a cheap ladder; this fallback
/// round-trips through an aligned stack tile, which is fine off the hot path
/// (the temporal-vectorization scheme advances state with shuffle/rotate and
/// only needs transposes for layout packing/unpacking at chain boundaries).
template <class V>
  requires(V::width >= 4)
inline void transpose4x4(V& r0, V& r1, V& r2, V& r3) {
  using T = typename V::elem_t;
  alignas(64) T m[4][V::width];
  r0.store_aligned(m[0]);
  r1.store_aligned(m[1]);
  r2.store_aligned(m[2]);
  r3.store_aligned(m[3]);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const T t = m[i][j];
      m[i][j] = m[j][i];
      m[j][i] = t;
    }
  }
  r0 = V::load_aligned(m[0]);
  r1 = V::load_aligned(m[1]);
  r2 = V::load_aligned(m[2]);
  r3 = V::load_aligned(m[3]);
}

/// Scalar 4x4 tile transpose — the width-agnostic form narrow builds (SSE2
/// VecD, scalar fallback) can always use.
template <class T>
inline void transpose4x4(T (&m)[4][4]) {
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const T t = m[i][j];
      m[i][j] = m[j][i];
      m[j][i] = t;
    }
  }
}

/// Scalar float twin of VecF (see ScalarD below for the rationale).
struct ScalarF {
  static constexpr int width = 1;
  float v;
  static ScalarF load(const float* p) { return {*p}; }
  static ScalarF load_aligned(const float* p) { return {*p}; }
  static ScalarF broadcast(float x) { return {x}; }
  static ScalarF zero() { return {0.0f}; }
  void store(float* p) const { *p = v; }
  void store_aligned(float* p) const { *p = v; }
  friend ScalarF operator+(ScalarF a, ScalarF b) { return {a.v + b.v}; }
  friend ScalarF operator-(ScalarF a, ScalarF b) { return {a.v - b.v}; }
  friend ScalarF operator*(ScalarF a, ScalarF b) { return {a.v * b.v}; }
  static ScalarF fma(ScalarF a, ScalarF b, ScalarF c) {
#if defined(__FMA__) || defined(__AVX512F__)
    return {std::fmaf(a.v, b.v, c.v)};
#else
    return {a.v * b.v + c.v};
#endif
  }
};

/// Scalar twin of VecD with the identical interface. Kernels implement their
/// inner loop once, templated on the vector type; instantiating with ScalarD
/// yields the scalar path. Because both instantiations execute the same
/// operation tree per lane (and the build disables FP contraction), the SIMD
/// and scalar paths produce bit-identical results — the basis of the
/// bit-exact verification tests.
///
/// fma() preserves that pairing: exactly when the active VecD fuses
/// (hardware FMA present: __FMA__ or AVX-512), ScalarD uses std::fma, whose
/// single correctly-rounded step is bitwise identical to each vfmadd lane.
/// Otherwise both sides fall back to the same unfused multiply-add. Either
/// way the two paths stay bit-identical in every build configuration.
struct ScalarD {
  static constexpr int width = 1;
  double v;
  static ScalarD load(const double* p) { return {*p}; }
  static ScalarD load_aligned(const double* p) { return {*p}; }
  static ScalarD broadcast(double x) { return {x}; }
  static ScalarD zero() { return {0.0}; }
  void store(double* p) const { *p = v; }
  void store_aligned(double* p) const { *p = v; }
  friend ScalarD operator+(ScalarD a, ScalarD b) { return {a.v + b.v}; }
  friend ScalarD operator-(ScalarD a, ScalarD b) { return {a.v - b.v}; }
  friend ScalarD operator*(ScalarD a, ScalarD b) { return {a.v * b.v}; }
  static ScalarD fma(ScalarD a, ScalarD b, ScalarD c) {
#if defined(__FMA__) || defined(__AVX512F__)
    return {std::fma(a.v, b.v, c.v)};
#else
    return {a.v * b.v + c.v};
#endif
  }
  double hsum() const { return v; }
};

/// Non-temporal twin of VecD: identical arithmetic, but store() streams past
/// the cache when the destination is naturally aligned (and falls back to a
/// plain unaligned store otherwise — x86 stream stores fault on misaligned
/// addresses). Kernels instantiate their one `span<V>` body with NtVecD to
/// get the cache-bypassing write-back path (process_row_nt) without a second
/// copy of the stencil math; the alignment test is loop-invariant in
/// practice (pointers advance by whole vectors), so the branch predicts
/// perfectly. Values written are bit-identical either way — NT only changes
/// *where* the line lands, never *what* is stored.
///
/// Callers MUST issue simd::store_fence() before any releasing publish that
/// makes NT-written data visible to another thread: WC stores are not
/// ordered by an ordinary release store.
struct NtVecD {
  static constexpr int width = VecD::width;
  VecD inner;
  static NtVecD load(const double* p) { return {VecD::load(p)}; }
  static NtVecD load_aligned(const double* p) { return {VecD::load_aligned(p)}; }
  static NtVecD broadcast(double x) { return {VecD::broadcast(x)}; }
  static NtVecD zero() { return {VecD::zero()}; }
  void store(double* p) const {
    if ((reinterpret_cast<std::uintptr_t>(p) &
         (sizeof(double) * width - 1)) == 0) {
      inner.store_nt(p);
    } else {
      inner.store(p);
    }
  }
  void store_aligned(double* p) const { inner.store_nt(p); }
  friend NtVecD operator+(NtVecD a, NtVecD b) { return {a.inner + b.inner}; }
  friend NtVecD operator-(NtVecD a, NtVecD b) { return {a.inner - b.inner}; }
  friend NtVecD operator*(NtVecD a, NtVecD b) { return {a.inner * b.inner}; }
  static NtVecD fma(NtVecD a, NtVecD b, NtVecD c) {
    return {VecD::fma(a.inner, b.inner, c.inner)};
  }
  double hsum() const { return inner.hsum(); }
};

/// Non-temporal twin of VecF — same contract as NtVecD (bit-identical
/// arithmetic, streaming store when naturally aligned, store_fence() required
/// before any releasing publish of NT-written data).
struct NtVecF {
  static constexpr int width = VecF::width;
  VecF inner;
  static NtVecF load(const float* p) { return {VecF::load(p)}; }
  static NtVecF load_aligned(const float* p) { return {VecF::load_aligned(p)}; }
  static NtVecF broadcast(float x) { return {VecF::broadcast(x)}; }
  static NtVecF zero() { return {VecF::zero()}; }
  void store(float* p) const {
    if ((reinterpret_cast<std::uintptr_t>(p) &
         (sizeof(float) * width - 1)) == 0) {
      inner.store_nt(p);
    } else {
      inner.store(p);
    }
  }
  void store_aligned(float* p) const { inner.store_nt(p); }
  friend NtVecF operator+(NtVecF a, NtVecF b) { return {a.inner + b.inner}; }
  friend NtVecF operator-(NtVecF a, NtVecF b) { return {a.inner - b.inner}; }
  friend NtVecF operator*(NtVecF a, NtVecF b) { return {a.inner * b.inner}; }
  static NtVecF fma(NtVecF a, NtVecF b, NtVecF c) {
    return {VecF::fma(a.inner, b.inner, c.inner)};
  }
};

/// Element-type -> vector-family map. Kernels templated on their element type
/// (ConstStar2D<S, T>) pull their wide, scalar-twin, and non-temporal vector
/// types from here so the one stencil body serves both precisions.
template <class T>
struct vec_traits;
template <>
struct vec_traits<double> {
  using Vec = VecD;
  using Scalar = ScalarD;
  using Nt = NtVecD;
};
template <>
struct vec_traits<float> {
  using Vec = VecF;
  using Scalar = ScalarF;
  using Nt = NtVecF;
};

}  // namespace cats::simd
