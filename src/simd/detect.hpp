#pragma once
// Runtime CPU feature report (for bench headers and sanity checks).

#include <string>

namespace cats::simd {

struct CpuFeatures {
  bool sse2 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Query CPUID for vector ISA support.
CpuFeatures detect_cpu_features();

/// Human-readable summary, e.g. "sse2 avx avx2 fma avx512f".
std::string cpu_features_string();

}  // namespace cats::simd
