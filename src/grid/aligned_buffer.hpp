#pragma once
// Aligned heap buffer for grid storage.
//
// Stencil kernels issue SIMD loads/stores on rows, so every row must start at
// a vector-friendly address. We align to 64 bytes (cache line, also the widest
// AVX-512 vector) and pad sizes up so the allocation itself is a whole number
// of lines.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "check/check.hpp"

namespace cats {

inline constexpr std::size_t kAlign = 64;

/// Tag for grid constructors that allocate WITHOUT writing the storage. On
/// Linux, physical pages are placed on the NUMA node of the thread that
/// first writes them (first-touch); a grid built with this tag defers that
/// placement to the kernel's init/parallel_init fill so pages can land near
/// the threads that will sweep them. The storage is indeterminate until the
/// first fill.
struct DeferFirstTouch {};
inline constexpr DeferFirstTouch kDeferFirstTouch{};

/// Round `n` up to a multiple of `m` (m > 0).
constexpr std::size_t round_up(std::size_t n, std::size_t m) noexcept {
  return (n + m - 1) / m * m;
}

namespace detail {
struct FreeDeleter {
  void operator()(void* p) const noexcept { std::free(p); }
};
}  // namespace detail

/// Fixed-size, 64-byte aligned array of T. Moves, never copies implicitly.
template <class T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T), kAlign);
    void* p = std::aligned_alloc(kAlign, bytes);
    if (!p) throw std::bad_alloc{};
    data_.reset(static_cast<T*>(p));
  }

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }

  T& operator[](std::size_t i) noexcept {
    CATS_CHECK(i < size_, "AlignedBuffer index %zu out of bounds (size %zu)",
               i, size_);
    return data_.get()[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    CATS_CHECK(i < size_, "AlignedBuffer index %zu out of bounds (size %zu)",
               i, size_);
    return data_.get()[i];
  }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

 private:
  std::unique_ptr<T, detail::FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace cats
