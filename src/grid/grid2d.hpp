#pragma once
// 2D grid with a ghost boundary ring.
//
// Interior coordinates are (x, y) in [0, width) x [0, height). The ghost ring
// of width `ghost` surrounds the interior and holds boundary values
// (Dirichlet data at dOmega x {0..T} in the paper's notation); kernels read
// it but schemes never write it. Rows are padded so that interior row starts
// are 64-byte aligned.

#include <algorithm>
#include <cstddef>

#include "check/check.hpp"
#include "grid/aligned_buffer.hpp"

namespace cats {

template <class T>
class Grid2D {
 public:
  Grid2D() = default;

  Grid2D(int width, int height, int ghost)
      : Grid2D(width, height, ghost, kDeferFirstTouch) {
    std::fill(buf_.begin(), buf_.end(), T{});
  }

  /// Allocate without touching the storage (see DeferFirstTouch); the first
  /// fill — e.g. a kernel's parallel_init — decides NUMA page placement.
  Grid2D(int width, int height, int ghost, DeferFirstTouch)
      : w_(width), h_(height), g_(ghost) {
    CATS_CHECK(width > 0 && height > 0 && ghost >= 0,
               "Grid2D dims must be positive with ghost >= 0, got %dx%d g=%d",
               width, height, ghost);
    const std::size_t elems_per_line = kAlign / sizeof(T);
    // Pad each row so (x=0, y) is 64-byte aligned: the row starts `ghost`
    // elements after an aligned boundary, so pre-pad the ghost up to a full
    // alignment block.
    lead_ = round_up(static_cast<std::size_t>(g_), elems_per_line);
    pitch_ = lead_ + round_up(static_cast<std::size_t>(w_) + g_, elems_per_line);
    buf_ = AlignedBuffer<T>(pitch_ * (static_cast<std::size_t>(h_) + 2 * g_));
  }

  int width() const noexcept { return w_; }
  int height() const noexcept { return h_; }
  int ghost() const noexcept { return g_; }
  std::size_t pitch() const noexcept { return pitch_; }
  std::size_t size() const noexcept { return buf_.size(); }

  /// Linear index of interior point (x, y); valid for
  /// x in [-ghost, width+ghost), y in [-ghost, height+ghost). Bounds are
  /// enforced (with a coordinate diagnostic) in Debug and CATS_VALIDATE
  /// builds; Release indexing stays branch-free.
  std::size_t index(int x, int y) const noexcept {
    CATS_CHECK(x >= -g_ && x < w_ + g_,
               "Grid2D x=%d out of [%d, %d) at (x=%d, y=%d)", x, -g_, w_ + g_,
               x, y);
    CATS_CHECK(y >= -g_ && y < h_ + g_,
               "Grid2D y=%d out of [%d, %d) at (x=%d, y=%d)", y, -g_, h_ + g_,
               x, y);
    return (static_cast<std::size_t>(y + g_)) * pitch_ + lead_ +
           static_cast<std::size_t>(x);
  }

  T& at(int x, int y) noexcept { return buf_[index(x, y)]; }
  const T& at(int x, int y) const noexcept { return buf_[index(x, y)]; }

  /// Pointer to interior point (0, y); row extends to at least width+ghost.
  T* row(int y) noexcept { return buf_.data() + index(0, y); }
  const T* row(int y) const noexcept { return buf_.data() + index(0, y); }

  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }

  /// Set every cell (interior + ghost) to `v`.
  void fill(T v) { std::fill(buf_.begin(), buf_.end(), v); }

  /// Set every cell of full storage rows y in [y0, y1) — including lead
  /// padding and x-ghost columns — to `v`. Valid for y in [-ghost,
  /// height+ghost]. This is the unit of parallel first-touch: a thread
  /// filling its slab of rows places those pages on its NUMA node.
  void fill_rows(int y0, int y1, T v) {
    CATS_CHECK(y0 >= -g_ && y1 <= h_ + g_ && y0 <= y1,
               "Grid2D fill_rows [%d, %d) outside [%d, %d]", y0, y1, -g_,
               h_ + g_);
    std::fill(buf_.data() + static_cast<std::size_t>(y0 + g_) * pitch_,
              buf_.data() + static_cast<std::size_t>(y1 + g_) * pitch_, v);
  }

  /// Set the ghost ring (all cells outside the interior) to `v`.
  void fill_ghost(T v) {
    for (int y = -g_; y < h_ + g_; ++y)
      for (int x = -g_; x < w_ + g_; ++x)
        if (x < 0 || x >= w_ || y < 0 || y >= h_) at(x, y) = v;
  }

  /// Apply f(x, y) -> T over the interior.
  template <class F>
  void fill_interior(F&& f) {
    for (int y = 0; y < h_; ++y)
      for (int x = 0; x < w_; ++x) at(x, y) = f(x, y);
  }

 private:
  int w_ = 0, h_ = 0, g_ = 0;
  std::size_t lead_ = 0, pitch_ = 0;
  AlignedBuffer<T> buf_;
};

}  // namespace cats
