#pragma once
// 3D grid with a ghost boundary shell; see grid2d.hpp for conventions.
// Interior coordinates (x, y, z) in [0,W) x [0,H) x [0,D); x is unit stride.

#include <algorithm>
#include <cstddef>

#include "check/check.hpp"
#include "grid/aligned_buffer.hpp"

namespace cats {

template <class T>
class Grid3D {
 public:
  Grid3D() = default;

  Grid3D(int width, int height, int depth, int ghost)
      : Grid3D(width, height, depth, ghost, kDeferFirstTouch) {
    std::fill(buf_.begin(), buf_.end(), T{});
  }

  /// Allocate without touching the storage (see DeferFirstTouch); the first
  /// fill — e.g. a kernel's parallel_init — decides NUMA page placement.
  Grid3D(int width, int height, int depth, int ghost, DeferFirstTouch)
      : w_(width), h_(height), d_(depth), g_(ghost) {
    CATS_CHECK(width > 0 && height > 0 && depth > 0 && ghost >= 0,
               "Grid3D dims must be positive with ghost >= 0, got %dx%dx%d "
               "g=%d",
               width, height, depth, ghost);
    const std::size_t elems_per_line = kAlign / sizeof(T);
    lead_ = round_up(static_cast<std::size_t>(g_), elems_per_line);
    pitch_ = lead_ + round_up(static_cast<std::size_t>(w_) + g_, elems_per_line);
    slice_ = pitch_ * (static_cast<std::size_t>(h_) + 2 * g_);
    buf_ = AlignedBuffer<T>(slice_ * (static_cast<std::size_t>(d_) + 2 * g_));
  }

  int width() const noexcept { return w_; }
  int height() const noexcept { return h_; }
  int depth() const noexcept { return d_; }
  int ghost() const noexcept { return g_; }
  std::size_t pitch() const noexcept { return pitch_; }
  std::size_t slice() const noexcept { return slice_; }
  std::size_t size() const noexcept { return buf_.size(); }

  /// Bounds enforced (with a coordinate diagnostic) in Debug and
  /// CATS_VALIDATE builds; Release indexing stays branch-free.
  std::size_t index(int x, int y, int z) const noexcept {
    CATS_CHECK(x >= -g_ && x < w_ + g_,
               "Grid3D x=%d out of [%d, %d) at (x=%d, y=%d, z=%d)", x, -g_,
               w_ + g_, x, y, z);
    CATS_CHECK(y >= -g_ && y < h_ + g_,
               "Grid3D y=%d out of [%d, %d) at (x=%d, y=%d, z=%d)", y, -g_,
               h_ + g_, x, y, z);
    CATS_CHECK(z >= -g_ && z < d_ + g_,
               "Grid3D z=%d out of [%d, %d) at (x=%d, y=%d, z=%d)", z, -g_,
               d_ + g_, x, y, z);
    return static_cast<std::size_t>(z + g_) * slice_ +
           static_cast<std::size_t>(y + g_) * pitch_ + lead_ +
           static_cast<std::size_t>(x);
  }

  T& at(int x, int y, int z) noexcept { return buf_[index(x, y, z)]; }
  const T& at(int x, int y, int z) const noexcept { return buf_[index(x, y, z)]; }

  T* row(int y, int z) noexcept { return buf_.data() + index(0, y, z); }
  const T* row(int y, int z) const noexcept { return buf_.data() + index(0, y, z); }

  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }

  void fill(T v) { std::fill(buf_.begin(), buf_.end(), v); }

  /// Set every cell of full storage slabs z in [z0, z1) — including y/x
  /// ghosts and padding — to `v`. Valid for z in [-ghost, depth+ghost]. The
  /// unit of parallel first-touch (see Grid2D::fill_rows).
  void fill_slabs(int z0, int z1, T v) {
    CATS_CHECK(z0 >= -g_ && z1 <= d_ + g_ && z0 <= z1,
               "Grid3D fill_slabs [%d, %d) outside [%d, %d]", z0, z1, -g_,
               d_ + g_);
    std::fill(buf_.data() + static_cast<std::size_t>(z0 + g_) * slice_,
              buf_.data() + static_cast<std::size_t>(z1 + g_) * slice_, v);
  }

  void fill_ghost(T v) {
    for (int z = -g_; z < d_ + g_; ++z)
      for (int y = -g_; y < h_ + g_; ++y)
        for (int x = -g_; x < w_ + g_; ++x)
          if (x < 0 || x >= w_ || y < 0 || y >= h_ || z < 0 || z >= d_)
            at(x, y, z) = v;
  }

  template <class F>
  void fill_interior(F&& f) {
    for (int z = 0; z < d_; ++z)
      for (int y = 0; y < h_; ++y)
        for (int x = 0; x < w_; ++x) at(x, y, z) = f(x, y, z);
  }

 private:
  int w_ = 0, h_ = 0, d_ = 0, g_ = 0;
  std::size_t lead_ = 0, pitch_ = 0, slice_ = 0;
  AlignedBuffer<T> buf_;
};

}  // namespace cats
