#pragma once
// Kernels matching the Section III-F literature comparison:
//   A: 3D Laplace, 8 flops  — u' = a*u + b*(sum of 6 neighbors)
//   B: 3D Jacobi,  8 flops  — same structure (weights differ)
//   C: 3D Jacobi,  6 flops  — u' = c*(sum of 6 neighbors), no center term
// All are slope-1 shared-weight star stencils; SumStar3D implements both
// shapes via the WithCenter flag. D (2D FDTD) is kernels/fdtd2d.hpp.

#include <cstdint>
#include <vector>

#include "grid/grid3d.hpp"
#include "simd/vecd.hpp"

namespace cats {

template <bool WithCenter>
class SumStar3D {
 public:
  SumStar3D(int width, int height, int depth, double center, double side)
      : wc_(center), ws_(side),
        buf_{Grid3D<double>(width, height, depth, 1),
             Grid3D<double>(width, height, depth, 1)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int depth() const { return buf_[0].depth(); }
  int slope() const { return 1; }
  /// 5 adds for the neighbor sum + 1 mul (+ mul/add for the center term).
  double flops_per_point() const { return WithCenter ? 8.0 : 6.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }

  template <class F>
  void init(F&& f, double bnd = 0.0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  const Grid3D<double>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid3D<double>& g = grid_at(T);
    out.clear();
    for (int z = 0; z < depth(); ++z)
      for (int y = 0; y < height(); ++y)
        for (int x = 0; x < width(); ++x) out.push_back(g.at(x, y, z));
  }

  void process_row(int t, int y, int z, int x0, int x1) {
    const int x = span<simd::VecD>(t, y, z, x0, x1);
    span<simd::ScalarD>(t, y, z, x, x1);
  }

  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    span<simd::ScalarD>(t, y, z, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int y, int z, int x0, int x1) {
    const Grid3D<double>& src = buf_[(t - 1) & 1];
    Grid3D<double>& dst = buf_[t & 1];
    const double* c = src.row(y, z);
    const double* ym = src.row(y - 1, z);
    const double* yp = src.row(y + 1, z);
    const double* zm = src.row(y, z - 1);
    const double* zp = src.row(y, z + 1);
    double* o = dst.row(y, z);
    const V ws = V::broadcast(ws_);
    const V wc = V::broadcast(wc_);
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V sum = V::load(c + x - 1) + V::load(c + x + 1);
      sum = sum + V::load(ym + x);
      sum = sum + V::load(yp + x);
      sum = sum + V::load(zm + x);
      sum = sum + V::load(zp + x);
      V acc = ws * sum;
      if constexpr (WithCenter) acc = V::fma(wc, V::load(c + x), acc);
      acc.store(o + x);
    }
    return x;
  }

  double wc_, ws_;
  Grid3D<double> buf_[2];
};

using Laplace3D = SumStar3D<true>;   ///< kernel A (and B with other weights)
using Jacobi3D6 = SumStar3D<false>;  ///< kernel C

}  // namespace cats
