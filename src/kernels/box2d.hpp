#pragma once
// Dense box (Moore-neighborhood) stencil in 2D: all (2S+1)^2 points carry a
// weight. CATS's dependency analysis covers box stencils of slope S (the
// geometry tests check the full |dx|,|dy| <= s box), so these drive the same
// schemes; the higher arithmetic intensity (2*(2S+1)^2 - 1 flops/point)
// makes them less memory-bound than star stencils.

#include <array>
#include <cstdint>
#include <vector>
#include <string>

#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"

namespace cats {

template <int S>
class Box2D {
  static_assert(S >= 1 && S <= 3);

 public:
  static constexpr int kSide = 2 * S + 1;
  static constexpr int kPoints = kSide * kSide;

  /// Row-major weights: w[(dy+S)*kSide + (dx+S)].
  using Weights = std::array<double, kPoints>;

  Box2D(int width, int height, const Weights& w)
      : w_(w), buf_{Grid2D<double>(width, height, S),
                    Grid2D<double>(width, height, S)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return S; }
  double flops_per_point() const { return 2.0 * kPoints - 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  std::string tune_id() const { return "box2d/s" + std::to_string(S); }

  template <class F>
  void init(F&& f, double bnd = 0.0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  const Grid2D<double>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid2D<double>& g = grid_at(T);
    out.clear();
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x) out.push_back(g.at(x, y));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<simd::VecD>(t, y, x0, x1);
    span<simd::ScalarD>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<simd::ScalarD>(t, y, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int y, int x0, int x1) {
    const Grid2D<double>& src = buf_[(t - 1) & 1];
    Grid2D<double>& dst = buf_[t & 1];
    const double* rows[kSide];
    for (int dy = -S; dy <= S; ++dy) rows[dy + S] = src.row(y + dy);
    double* o = dst.row(y);
    V wv[kPoints];
    for (int i = 0; i < kPoints; ++i)
      wv[i] = V::broadcast(w_[static_cast<std::size_t>(i)]);
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = V::zero();
      for (int dy = 0; dy < kSide; ++dy)
        for (int dx = 0; dx < kSide; ++dx)
          acc = V::fma(wv[dy * kSide + dx], V::load(rows[dy] + x + dx - S), acc);
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid2D<double> buf_[2];
};

/// Normalized smoothing weights with mild asymmetry (tests/examples).
template <int S>
typename Box2D<S>::Weights default_box2d_weights() {
  typename Box2D<S>::Weights w{};
  double sum = 0.0;
  for (int i = 0; i < Box2D<S>::kPoints; ++i) {
    w[static_cast<std::size_t>(i)] = 1.0 + 0.01 * i;
    sum += w[static_cast<std::size_t>(i)];
  }
  for (auto& v : w) v /= sum;
  return w;
}

}  // namespace cats
