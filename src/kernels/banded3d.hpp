#pragma once
// Variable-coefficient star stencil in 3D = banded-matrix vector product
// with NS = 6S+1 bands (7 bands for slope 1 — the paper's Figs. 11/12).
//
// Templated on the element type T like ConstStar3D: one stencil body serves
// fp64, fp32 and the footprint analyzer's recording elements via
// simd::vec_traits (src/analysis/record.hpp).

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "grid/grid3d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"
#include "wave/temporal_vec.hpp"

namespace cats {

template <int S, class T = double>
class Banded3D {
  static_assert(S >= 1 && S <= 4);
  // Any element type with a simd::vec_traits mapping is admissible.
  static_assert(requires { typename simd::vec_traits<T>::Vec; });

 public:
  static constexpr int kBands = 6 * S + 1;  // NS

  /// Engine-side temporal fusion is legal: value reads lie in the slope-S
  /// box at t-1 and band reads are time-invariant (wave/microkernel.hpp).
  static constexpr bool wave_fusable = true;
  /// The TV row body evaluates the identical operation tree as process_row
  /// (coefficients load same-x; only the value center row is shuffle-fed).
  static constexpr bool tv_bit_exact = true;

  Banded3D(int width, int height, int depth)
      : buf_{Grid3D<T>(width, height, depth, S, kDeferFirstTouch),
             Grid3D<T>(width, height, depth, S, kDeferFirstTouch)} {
    bands_.reserve(kBands);
    for (int b = 0; b < kBands; ++b)
      bands_.emplace_back(width, height, depth, S);
  }

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int depth() const { return buf_[0].depth(); }
  int slope() const { return S; }
  double flops_per_point() const { return 12.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return kBands; }
  /// Bytes per stored element — parameterizes Eq. 1/2 tile sizing.
  double element_bytes() const { return static_cast<double>(sizeof(T)); }
  std::string tune_id() const {
    if constexpr (std::is_same_v<T, float>) {
      return "banded3d_f32/s" + std::to_string(S);
    } else {
      return "banded3d/s" + std::to_string(S);
    }
  }

  /// Band order: 0 = center, then per k=1..S: x-k, x+k, y-k, y+k, z-k, z+k.
  Grid3D<T>& band(int b) { return bands_[static_cast<std::size_t>(b)]; }

  template <class F>
  void init(F&& f, T bnd = 0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  /// init() with NUMA-aware placement (see threads/first_touch.hpp). Band
  /// coefficient grids are placed by init_bands (serial, read-shared).
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f, T bnd = 0) {
    const int W = width(), H = height();
    first_touch_slabs(depth(), S, opt.threads, opt.affinity,
                      [&](int, int z0, int z1) {
                        buf_[0].fill_slabs(z0, z1, bnd);
                        buf_[1].fill_slabs(z0, z1, bnd);
                        for (int z = std::max(z0, 0);
                             z < std::min(z1, depth()); ++z)
                          for (int y = 0; y < H; ++y)
                            for (int x = 0; x < W; ++x)
                              buf_[0].at(x, y, z) = f(x, y, z);
                      });
  }

  /// Leading-edge hint: `lines` cache lines of the next source plane plus
  /// its center-band coefficients.
  void prefetch_front(int t, int p, int lines) const {
    const int z = std::min(p + S, depth() - 1 + S);
    const T* r = buf_[(t - 1) & 1].row(0, z);
    const T* b = bands_[0].row(0, z);
    constexpr int kPerLine = static_cast<int>(64 / sizeof(T));
    for (int i = 0; i < lines; ++i) {
      simd::prefetch_read(r + i * kPerLine);
      simd::prefetch_read(b + i * kPerLine);
    }
  }

  template <class G>
  void init_bands(G&& g) {
    for (int b = 0; b < kBands; ++b)
      bands_[static_cast<std::size_t>(b)].fill_interior(
          [&](int x, int y, int z) { return g(b, x, y, z); });
  }

  const Grid3D<T>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T_) const {
    const Grid3D<T>& g = grid_at(T_);
    out.clear();
    for (int z = 0; z < depth(); ++z)
      for (int y = 0; y < height(); ++y)
        for (int x = 0; x < width(); ++x)
          out.push_back(static_cast<double>(g.at(x, y, z)));
  }

  void process_row(int t, int y, int z, int x0, int x1) {
    const int x = span<Vec>(t, y, z, x0, x1);
    span<Sc>(t, y, z, x, x1);
  }

  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    span<Sc>(t, y, z, x0, x1);
  }

  /// Non-temporal write-back path (see ConstStar3D::process_row_nt).
  void process_row_nt(int t, int y, int z, int x0, int x1) {
    const int x = span<NtV>(t, y, z, x0, x1);
    span<Sc>(t, y, z, x, x1);
  }

  /// Temporally-vectorized row body (see ConstStar3D::process_row_tv): the
  /// value center row is fed from a sliding register window; coefficient
  /// bands and the y/z neighbor rows load same-x. Identical operation tree
  /// per point as process_row (tv_bit_exact).
  void process_row_tv(int t, int y, int z, int x0, int x1, bool nt) {
    if (nt) {
      row_tv<true>(t, y, z, x0, x1);
    } else {
      row_tv<false>(t, y, z, x0, x1);
    }
  }

 private:
  using Vec = typename simd::vec_traits<T>::Vec;
  using Sc = typename simd::vec_traits<T>::Scalar;
  using NtV = typename simd::vec_traits<T>::Nt;

  template <bool NT>
  void row_tv(int t, int y, int z, int x0, int x1) {
    using V = Vec;
    constexpr int W = V::width;
    constexpr int Q = (S + W - 1) / W;
    const Grid3D<T>& src = buf_[(t - 1) & 1];
    Grid3D<T>& dst = buf_[t & 1];
    const T* c = src.row(y, z);
    T* o = dst.row(y, z);
    const T *rym[S], *ryp[S], *rzm[S], *rzp[S];
    const T* bc = bands_[0].row(y, z);
    const T *bxm[S], *bxp[S], *bym[S], *byp[S], *bzm[S], *bzp[S];
    for (int k = 0; k < S; ++k) {
      rym[k] = src.row(y - (k + 1), z);
      ryp[k] = src.row(y + (k + 1), z);
      rzm[k] = src.row(y, z - (k + 1));
      rzp[k] = src.row(y, z + (k + 1));
      const std::size_t base = static_cast<std::size_t>(6 * k);
      bxm[k] = bands_[base + 1].row(y, z);
      bxp[k] = bands_[base + 2].row(y, z);
      bym[k] = bands_[base + 3].row(y, z);
      byp[k] = bands_[base + 4].row(y, z);
      bzm[k] = bands_[base + 5].row(y, z);
      bzp[k] = bands_[base + 6].row(y, z);
    }
    auto emit = [&](V acc, int x) {
      if constexpr (NT) {
        NtV{acc}.store(o + x);
      } else {
        acc.store(o + x);
      }
    };
    auto plain = [&](int x) {
      V acc = V::load(bc + x) * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(V::load(bxm[k] + x), V::load(c + x - (k + 1)), acc);
        acc = V::fma(V::load(bxp[k] + x), V::load(c + x + (k + 1)), acc);
        acc = V::fma(V::load(bym[k] + x), V::load(rym[k] + x), acc);
        acc = V::fma(V::load(byp[k] + x), V::load(ryp[k] + x), acc);
        acc = V::fma(V::load(bzm[k] + x), V::load(rzm[k] + x), acc);
        acc = V::fma(V::load(bzp[k] + x), V::load(rzp[k] + x), acc);
      }
      return acc;
    };
    wave::ShiftWindow<V, T, S> win;
    auto windowed = [&](int x) {
      V acc = V::load(bc + x) * win.template get<0>();
      [&]<std::size_t... K>(std::index_sequence<K...>) {
        ((acc = V::fma(V::load(bxm[K] + x),
                       win.template get<-(static_cast<int>(K) + 1)>(), acc),
          acc = V::fma(V::load(bxp[K] + x),
                       win.template get<static_cast<int>(K) + 1>(), acc),
          acc = V::fma(V::load(bym[K] + x), V::load(rym[K] + x), acc),
          acc = V::fma(V::load(byp[K] + x), V::load(ryp[K] + x), acc),
          acc = V::fma(V::load(bzm[K] + x), V::load(rzm[K] + x), acc),
          acc = V::fma(V::load(bzp[K] + x), V::load(rzp[K] + x), acc)),
         ...);
      }(std::make_index_sequence<S>{});
      return acc;
    };
    // Window legality: reads [x - Q*W, x + (Q+1)*W) within the plain body's
    // reach [x0 - S, x1 - 1 + S].
    const int lo = x0 + Q * W - S;
    const int hi = x1 + S - (Q + 1) * W;
    int x = x0;
    for (; x + W <= x1 && (x < lo || x > hi); x += W) emit(plain(x), x);
    if (x + W <= x1 && x >= lo && x <= hi) {
      win.prime(c, x);
      emit(windowed(x), x);
      x += W;
      for (; x + W <= x1 && x <= hi; x += W) {
        win.advance(c, x);
        emit(windowed(x), x);
      }
    }
    for (; x + W <= x1; x += W) emit(plain(x), x);
    span<Sc>(t, y, z, x, x1);
  }

  template <class V>
  int span(int t, int y, int z, int x0, int x1) {
    const Grid3D<T>& src = buf_[(t - 1) & 1];
    Grid3D<T>& dst = buf_[t & 1];
    const T* c = src.row(y, z);
    T* o = dst.row(y, z);
    const T *rym[S], *ryp[S], *rzm[S], *rzp[S];
    const T* bc = bands_[0].row(y, z);
    const T *bxm[S], *bxp[S], *bym[S], *byp[S], *bzm[S], *bzp[S];
    for (int k = 0; k < S; ++k) {
      rym[k] = src.row(y - (k + 1), z);
      ryp[k] = src.row(y + (k + 1), z);
      rzm[k] = src.row(y, z - (k + 1));
      rzp[k] = src.row(y, z + (k + 1));
      const std::size_t base = static_cast<std::size_t>(6 * k);
      bxm[k] = bands_[base + 1].row(y, z);
      bxp[k] = bands_[base + 2].row(y, z);
      bym[k] = bands_[base + 3].row(y, z);
      byp[k] = bands_[base + 4].row(y, z);
      bzm[k] = bands_[base + 5].row(y, z);
      bzp[k] = bands_[base + 6].row(y, z);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = V::load(bc + x) * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(V::load(bxm[k] + x), V::load(c + x - (k + 1)), acc);
        acc = V::fma(V::load(bxp[k] + x), V::load(c + x + (k + 1)), acc);
        acc = V::fma(V::load(bym[k] + x), V::load(rym[k] + x), acc);
        acc = V::fma(V::load(byp[k] + x), V::load(ryp[k] + x), acc);
        acc = V::fma(V::load(bzm[k] + x), V::load(rzm[k] + x), acc);
        acc = V::fma(V::load(bzp[k] + x), V::load(rzp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Grid3D<T> buf_[2];
  std::vector<Grid3D<T>> bands_;
};

}  // namespace cats
