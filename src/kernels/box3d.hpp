#pragma once
// Dense box stencil in 3D: all (2S+1)^3 points weighted (27-point for S=1).

#include <array>
#include <cstdint>
#include <vector>
#include <string>

#include "grid/grid3d.hpp"
#include "simd/vecd.hpp"

namespace cats {

template <int S>
class Box3D {
  static_assert(S == 1);  // 27-point; larger boxes are rarely used

 public:
  static constexpr int kSide = 2 * S + 1;
  static constexpr int kPoints = kSide * kSide * kSide;

  /// Weights: w[((dz+S)*kSide + (dy+S))*kSide + (dx+S)].
  using Weights = std::array<double, kPoints>;

  Box3D(int width, int height, int depth, const Weights& w)
      : w_(w), buf_{Grid3D<double>(width, height, depth, S),
                    Grid3D<double>(width, height, depth, S)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int depth() const { return buf_[0].depth(); }
  int slope() const { return S; }
  double flops_per_point() const { return 2.0 * kPoints - 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  std::string tune_id() const { return "box3d/s" + std::to_string(S); }

  template <class F>
  void init(F&& f, double bnd = 0.0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  const Grid3D<double>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid3D<double>& g = grid_at(T);
    out.clear();
    for (int z = 0; z < depth(); ++z)
      for (int y = 0; y < height(); ++y)
        for (int x = 0; x < width(); ++x) out.push_back(g.at(x, y, z));
  }

  void process_row(int t, int y, int z, int x0, int x1) {
    const int x = span<simd::VecD>(t, y, z, x0, x1);
    span<simd::ScalarD>(t, y, z, x, x1);
  }

  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    span<simd::ScalarD>(t, y, z, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int y, int z, int x0, int x1) {
    const Grid3D<double>& src = buf_[(t - 1) & 1];
    Grid3D<double>& dst = buf_[t & 1];
    const double* rows[kSide * kSide];
    for (int dz = -S; dz <= S; ++dz)
      for (int dy = -S; dy <= S; ++dy)
        rows[(dz + S) * kSide + (dy + S)] = src.row(y + dy, z + dz);
    double* o = dst.row(y, z);
    V wv[kPoints];
    for (int i = 0; i < kPoints; ++i)
      wv[i] = V::broadcast(w_[static_cast<std::size_t>(i)]);
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = V::zero();
      for (int p = 0; p < kSide * kSide; ++p)
        for (int dx = 0; dx < kSide; ++dx)
          acc = V::fma(wv[p * kSide + dx], V::load(rows[p] + x + dx - S), acc);
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid3D<double> buf_[2];
};

template <int S>
typename Box3D<S>::Weights default_box3d_weights() {
  typename Box3D<S>::Weights w{};
  double sum = 0.0;
  for (int i = 0; i < Box3D<S>::kPoints; ++i) {
    w[static_cast<std::size_t>(i)] = 1.0 + 0.005 * i;
    sum += w[static_cast<std::size_t>(i)];
  }
  for (auto& v : w) v /= sum;
  return w;
}

}  // namespace cats
