#pragma once
// Constant-weight star stencil in 1D (2S+1 points, 4S+1 flops). 1D domains
// always run CATS1 — the paper: "for 1D problems CATS0 is equivalent to the
// naive scheme so CATS1 is the better choice".

#include <array>
#include <cstdint>
#include <vector>
#include <string>

#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"

namespace cats {

template <int S>
class ConstStar1D {
  static_assert(S >= 1 && S <= 4);

 public:
  static constexpr int kPoints = 2 * S + 1;

  struct Weights {
    double center = 0.0;
    std::array<double, S> xm{}, xp{};
  };

  // A 1-row Grid2D provides the aligned, ghost-padded storage.
  ConstStar1D(int width, const Weights& w)
      : w_(w), buf_{Grid2D<double>(width, 1, S), Grid2D<double>(width, 1, S)} {}

  int width() const { return buf_[0].width(); }
  int slope() const { return S; }
  double flops_per_point() const { return 4.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  std::string tune_id() const { return "const1d/s" + std::to_string(S); }

  template <class F>
  void init(F&& f, double bnd = 0.0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    for (int x = 0; x < width(); ++x) buf_[0].at(x, 0) = f(x);
  }

  const Grid2D<double>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid2D<double>& g = grid_at(T);
    out.clear();
    for (int x = 0; x < width(); ++x) out.push_back(g.at(x, 0));
  }

  void process_row(int t, int x0, int x1) {
    const int x = span<simd::VecD>(t, x0, x1);
    span<simd::ScalarD>(t, x, x1);
  }

  void process_row_scalar(int t, int x0, int x1) {
    span<simd::ScalarD>(t, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int x0, int x1) {
    const double* c = buf_[(t - 1) & 1].row(0);
    double* o = buf_[t & 1].row(0);
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S];
    for (int k = 0; k < S; ++k) {
      wxm[k] = V::broadcast(w_.xm[static_cast<std::size_t>(k)]);
      wxp[k] = V::broadcast(w_.xp[static_cast<std::size_t>(k)]);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = wc * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(c + x + (k + 1)), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid2D<double> buf_[2];
};

}  // namespace cats
