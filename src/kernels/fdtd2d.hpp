#pragma once
// Fused 2D FDTD kernel (Section III-C).
//
// PluTo's fdtd-2d benchmark updates three fields per timestep:
//   ey(i,j) -= 0.5*(hz(i,j) - hz(i-1,j))
//   ex(i,j) -= 0.5*(hz(i,j) - hz(i,j-1))
//   hz(i,j) -= 0.7*(ex(i,j+1) - ex(i,j) + ey(i+1,j) - ey(i,j))
// where hz(t) reads ex/ey at timestep t with *forward* offsets. The paper
// fuses the three loops into one kernel for CATS. A literal in-place fusion
// carries same-timestep sequential dependencies that would serialize
// split-tiling in a general library, so we build the Jacobi-ized fusion
// (DESIGN.md §5): the two forward reads are expanded through their own update
// expressions, making every read a t-1 read of double-buffered fields:
//   eyN(a,b) = ey(a,b) - 0.5*(hz(a,b) - hz(a-1,b))        [t-1 values]
//   exN(a,b) = ex(a,b) - 0.5*(hz(a,b) - hz(a,b-1))
//   ey' = eyN(i,j);  ex' = exN(i,j)
//   hz' = hz(i,j) - 0.7*(exN(i,j+1) - ex' + eyN(i+1,j) - ey')
// 17 true flops per point (the unfused form does 11); slope 1; three field
// doubles per point live in the wavefront (state_doubles_per_point = 3),
// which shrinks TZ/BZ exactly as the paper describes for this test.

#include <algorithm>
#include <cstdint>
#include <vector>
#include <string>

#include "core/options.hpp"
#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"

namespace cats {

class Fdtd2D {
 public:
  Fdtd2D(int width, int height)
      : ex_{Grid2D<double>(width, height, 1, kDeferFirstTouch),
            Grid2D<double>(width, height, 1, kDeferFirstTouch)},
        ey_{Grid2D<double>(width, height, 1, kDeferFirstTouch),
            Grid2D<double>(width, height, 1, kDeferFirstTouch)},
        hz_{Grid2D<double>(width, height, 1, kDeferFirstTouch),
            Grid2D<double>(width, height, 1, kDeferFirstTouch)} {}

  int width() const { return hz_[0].width(); }
  int height() const { return hz_[0].height(); }
  int slope() const { return 1; }
  double flops_per_point() const { return 17.0; }
  double state_doubles_per_point() const { return 3.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  std::string tune_id() const { return "fdtd2d"; }

  /// f(x, y) -> (ex0, ey0, hz0) initial fields; ghosts are 0 (PEC-style).
  template <class F>
  void init(F&& f) {
    for (int p = 0; p < 2; ++p) {
      ex_[p].fill(0.0);
      ey_[p].fill(0.0);
      hz_[p].fill(0.0);
    }
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x) {
        const auto [e1, e2, h] = f(x, y);
        ex_[0].at(x, y) = e1;
        ey_[0].at(x, y) = e2;
        hz_[0].at(x, y) = h;
      }
  }

  /// init() with NUMA-aware placement: all six field buffers are
  /// first-touched in parallel with the same row-slab partition and pinning
  /// policy the schemes use, then seeded with f. The span itself stays on
  /// unfused sub/mul arithmetic: the Jacobi-ized update has no a*b+c
  /// subexpression whose fusion would be shared by scalar and vector paths,
  /// so contracting it would only perturb the documented expression tree.
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f) {
    const int W = width();
    first_touch_slabs(height(), 1, opt.threads, opt.affinity,
                      [&](int, int y0, int y1) {
                        for (int p = 0; p < 2; ++p) {
                          ex_[p].fill_rows(y0, y1, 0.0);
                          ey_[p].fill_rows(y0, y1, 0.0);
                          hz_[p].fill_rows(y0, y1, 0.0);
                        }
                        for (int y = std::max(y0, 0);
                             y < std::min(y1, height()); ++y)
                          for (int x = 0; x < W; ++x) {
                            const auto [e1, e2, h] = f(x, y);
                            ex_[0].at(x, y) = e1;
                            ey_[0].at(x, y) = e2;
                            hz_[0].at(x, y) = h;
                          }
                      });
  }

  const Grid2D<double>& ex_at(int t) const { return ex_[t & 1]; }
  const Grid2D<double>& ey_at(int t) const { return ey_[t & 1]; }
  const Grid2D<double>& hz_at(int t) const { return hz_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    out.clear();
    for (const Grid2D<double>* g : {&ex_[T & 1], &ey_[T & 1], &hz_[T & 1]})
      for (int y = 0; y < height(); ++y)
        for (int x = 0; x < width(); ++x) out.push_back(g->at(x, y));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<simd::VecD>(t, y, x0, x1);
    span<simd::ScalarD>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<simd::ScalarD>(t, y, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int y, int x0, int x1) {
    const int p = (t - 1) & 1, d = t & 1;
    const double* exc = ex_[p].row(y);
    const double* eyc = ey_[p].row(y);
    const double* eyp = ey_[p].row(y + 1);
    const double* hzc = hz_[p].row(y);
    const double* hzm = hz_[p].row(y - 1);
    const double* hzp = hz_[p].row(y + 1);
    double* exd = ex_[d].row(y);
    double* eyd = ey_[d].row(y);
    double* hzd = hz_[d].row(y);
    const V half = V::broadcast(0.5);
    const V cfl = V::broadcast(0.7);
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      const V hz0 = V::load(hzc + x);
      // ey' and ex' at (x, y)
      const V ey1 = V::load(eyc + x) - half * (hz0 - V::load(hzm + x));
      const V ex1 = V::load(exc + x) - half * (hz0 - V::load(hzc + x - 1));
      // exN at (x+1, y): ex - 0.5*(hz(x+1) - hz(x))
      const V hzr = V::load(hzc + x + 1);
      const V exr = V::load(exc + x + 1) - half * (hzr - hz0);
      // eyN at (x, y+1): ey - 0.5*(hz(y+1) - hz(y))
      const V hzu = V::load(hzp + x);
      const V eyu = V::load(eyp + x) - half * (hzu - hz0);
      const V hz1 = hz0 - cfl * ((exr - ex1) + (eyu - ey1));
      ey1.store(eyd + x);
      ex1.store(exd + x);
      hz1.store(hzd + x);
    }
    return x;
  }

  Grid2D<double> ex_[2], ey_[2], hz_[2];
};

}  // namespace cats
