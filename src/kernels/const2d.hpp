#pragma once
// Constant-weight star stencil in 2D (the paper's "general 5-point stencil"
// for slope 1; 4S+1 points, 8S+1 flops for slope S).
//
// Weight layout: center w0, then per distance k=1..S the four axis weights
// (x-k, x+k, y-k, y+k), all distinct ("general" stencil: one multiply per
// point, matching the paper's 5 muls + 4 adds in 2D).
//
// Templated on the element type T (double by default, float for the fp32
// precision path — FloatStar2D in const2d_f32.hpp is ConstStar2D<S, float>).
// One stencil body serves both precisions via simd::vec_traits;
// element_bytes() feeds sizeof(T) into the Eq. 1/2 cache sizing so fp32
// tiles get twice the points per cache byte.

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/stencil.hpp"  // WaveStage
#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"
#include "wave/temporal_vec.hpp"

namespace cats {

template <int S, class T = double>
class ConstStar2D {
  static_assert(S >= 1 && S <= 4);
  // Any element type with a simd::vec_traits mapping is admissible: double,
  // float, and the footprint analyzer's recording elements
  // (src/analysis/record.hpp).
  static_assert(requires { typename simd::vec_traits<T>::Vec; });

 public:
  static constexpr int kPoints = 4 * S + 1;
  /// TV chain body evaluates the identical operation tree as the plain path
  /// (see core/stencil.hpp kernel_tv_bit_exact).
  static constexpr bool tv_bit_exact = true;

  struct Weights {
    T center = 0;
    std::array<T, S> xm{}, xp{}, ym{}, yp{};
  };

  ConstStar2D(int width, int height, const Weights& w)
      : w_(w), buf_{Grid2D<T>(width, height, S, kDeferFirstTouch),
                    Grid2D<T>(width, height, S, kDeferFirstTouch)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return S; }
  double flops_per_point() const { return 8.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  /// Bytes per stored element — parameterizes Eq. 1/2 tile sizing (E in the
  /// paper's parameter list): 8 for double, 4 for float.
  double element_bytes() const { return static_cast<double>(sizeof(T)); }
  std::string tune_id() const {
    if constexpr (std::is_same_v<T, float>) {
      return "const2d_f32/s" + std::to_string(S);
    } else {
      return "const2d/s" + std::to_string(S);
    }
  }

  /// Set initial interior values u(x,y,t=0) and constant boundary `bnd`.
  template <class F>
  void init(F&& f, T bnd = 0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  /// init() with NUMA-aware placement: both buffers are first-touched in
  /// parallel with the same row-slab partition and pinning policy the
  /// schemes use (threads/first_touch.hpp), then seeded with f.
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f, T bnd = 0) {
    const int W = width();
    first_touch_slabs(
        height(), S, opt.threads, opt.affinity,
        [&](int, int y0, int y1) {
          buf_[0].fill_rows(y0, y1, bnd);
          buf_[1].fill_rows(y0, y1, bnd);
          for (int y = std::max(y0, 0); y < std::min(y1, height()); ++y)
            for (int x = 0; x < W; ++x) buf_[0].at(x, y) = f(x, y);
        },
        opt.pin_cpus);
  }

  /// Leading-edge hint (see kernel_has_prefetch_front): start `lines` cache
  /// lines of the source row the wavefront sweeps next; the hardware
  /// prefetcher continues the stream.
  void prefetch_front(int t, int p, int lines) const {
    const Grid2D<T>& src = buf_[(t - 1) & 1];
    const T* r = src.row(std::min(p + S, height() - 1 + S));
    constexpr int kPerLine = static_cast<int>(64 / sizeof(T));
    for (int i = 0; i < lines; ++i) simd::prefetch_read(r + i * kPerLine);
  }

  const Grid2D<T>& grid_at(int t) const { return buf_[t & 1]; }
  Grid2D<T>& grid_at(int t) { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T_) const {
    const Grid2D<T>& g = grid_at(T_);
    out.clear();
    out.reserve(static_cast<std::size_t>(width()) * height());
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x)
        out.push_back(static_cast<double>(g.at(x, y)));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<Vec>(t, y, x0, x1);
    span<Sc>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<Sc>(t, y, x0, x1);
  }

  /// Non-temporal write-back path: same arithmetic as process_row, stores
  /// stream past the cache (simd::vec_traits<T>::Nt). Caller must
  /// store_fence() before publishing (see wave engine).
  void process_row_nt(int t, int y, int x0, int x1) {
    const int x = span<NtV>(t, y, x0, x1);
    span<Sc>(t, y, x, x1);
  }

  /// Register-tiled temporal micro-kernel (src/wave): sweep n <= 4 rows at
  /// consecutive timesteps in x-staggered lockstep. Weights are broadcast
  /// and row pointers resolved once for the whole group; the chunked
  /// diagonal order below keeps stage g at least one chunk (>= S points)
  /// ahead of stage g+1, which covers both the flow dependence (stage g+1
  /// reads stage g's row at x +- S) and the WAR hazard (stage g+1 overwrites
  /// the t-1 parity row that stage g still reads) — see
  /// wave/microkernel.hpp for the stagger proof. Bit-exact with n separate
  /// process_row calls: every point sees the identical operation tree.
  void process_stages(const WaveStage* st, int n) {
    using V = Vec;
    // Chunk width: several vectors (amortizes the stage switch), and always
    // >= S so the diagonal stagger satisfies the slope-S dependences.
    constexpr int kChunk =
        kWaveChunkVecs * V::width >= S
            ? kWaveChunkVecs * V::width
            : ((S + V::width - 1) / V::width) * V::width;
    Stage sg[kMaxStages];
    int base = st[0].x0;
    int hi = st[0].x1;
    resolve_stages(st, n, sg, base, hi);
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S];
    broadcast_weights<V>(wxm, wxp, wym, wyp);
    const int chunks = (hi - base + kChunk - 1) / kChunk;
    for (int j = 0; j < chunks + n - 1; ++j) {
      for (int g = 0; g < n; ++g) {
        const int ci = j - g;
        if (ci < 0 || ci >= chunks) continue;
        const Stage& s = sg[g];
        const int a = std::max(s.x0, base + ci * kChunk);
        const int b = std::min(s.x1, base + (ci + 1) * kChunk);
        if (a >= b) continue;
        if (s.nt) {
          stage_chunk<true>(s, a, b, wc, wxm, wxp, wym, wyp);
        } else {
          stage_chunk<false>(s, a, b, wc, wxm, wxp, wym, wyp);
        }
      }
    }
  }

  /// Temporally-vectorized chain body (wave/temporal_vec.hpp): the same n
  /// fused timesteps, but interior vectors feed every center-row operand
  /// from a sliding register window — one aligned load + shuffles per
  /// vector instead of 2S+1 overlapping unaligned reloads. Identical
  /// operation tree per point as process_stages, hence bit-exact
  /// (tv_bit_exact).
  void process_stages_tv(const WaveStage* st, int n) {
    using V = Vec;
    Stage sg[kMaxStages];
    int base = st[0].x0;
    int hi = st[0].x1;
    resolve_stages(st, n, sg, base, hi);
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S];
    broadcast_weights<V>(wxm, wxp, wym, wyp);
    auto win_body = [&](const Stage& s, int x, const auto& win) {
      V acc = wc * win.template get<0>();
      [&]<std::size_t... K>(std::index_sequence<K...>) {
        ((acc = V::fma(wxm[K], win.template get<-(static_cast<int>(K) + 1)>(),
                       acc),
          acc = V::fma(wxp[K], win.template get<static_cast<int>(K) + 1>(),
                       acc),
          acc = V::fma(wym[K], V::load(s.rm[K] + x), acc),
          acc = V::fma(wyp[K], V::load(s.rp[K] + x), acc)),
         ...);
      }(std::make_index_sequence<S>{});
      return acc;
    };
    auto vec_body = [&](const Stage& s, int x) {
      V acc = wc * V::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(s.c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(s.c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(s.rm[k] + x), acc);
        acc = V::fma(wyp[k], V::load(s.rp[k] + x), acc);
      }
      return acc;
    };
    auto sc_body = [&](const Stage& s, int a, int b) { scalar_span(s, a, b); };
    wave::run_stages_tv<S, V, NtV, T>(sg, n, win_body, vec_body, sc_body);
  }

 private:
  static constexpr int kMaxStages = 4;
  using Vec = typename simd::vec_traits<T>::Vec;
  using Sc = typename simd::vec_traits<T>::Scalar;
  using NtV = typename simd::vec_traits<T>::Nt;

  struct Stage {
    const T* c;
    T* o;
    const T* rm[S];
    const T* rp[S];
    int x0, x1;
    bool nt;
  };

  void resolve_stages(const WaveStage* st, int n, Stage* sg, int& base,
                      int& hi) {
    for (int g = 0; g < n; ++g) {
      const Grid2D<T>& src = buf_[(st[g].t - 1) & 1];
      Grid2D<T>& dst = buf_[st[g].t & 1];
      Stage& s = sg[g];
      s.c = src.row(st[g].y);
      s.o = dst.row(st[g].y);
      for (int k = 0; k < S; ++k) {
        s.rm[k] = src.row(st[g].y - (k + 1));
        s.rp[k] = src.row(st[g].y + (k + 1));
      }
      s.x0 = st[g].x0;
      s.x1 = st[g].x1;
      s.nt = st[g].nt;
      base = std::min(base, st[g].x0);
      hi = std::max(hi, st[g].x1);
    }
  }

  template <class V>
  void broadcast_weights(V* wxm, V* wxp, V* wym, V* wyp) const {
    for (int k = 0; k < S; ++k) {
      wxm[k] = V::broadcast(w_.xm[static_cast<std::size_t>(k)]);
      wxp[k] = V::broadcast(w_.xp[static_cast<std::size_t>(k)]);
      wym[k] = V::broadcast(w_.ym[static_cast<std::size_t>(k)]);
      wyp[k] = V::broadcast(w_.yp[static_cast<std::size_t>(k)]);
    }
  }

  /// Scalar points [a, b) of one stage (plain stores — NT applies only to
  /// full vectors).
  void scalar_span(const Stage& s, int a, int b) {
    const Sc sc = Sc::broadcast(w_.center);
    for (int x = a; x < b; ++x) {
      Sc acc = sc * Sc::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        const auto i = static_cast<std::size_t>(k);
        acc = Sc::fma(Sc::broadcast(w_.xm[i]), Sc::load(s.c + x - (k + 1)), acc);
        acc = Sc::fma(Sc::broadcast(w_.xp[i]), Sc::load(s.c + x + (k + 1)), acc);
        acc = Sc::fma(Sc::broadcast(w_.ym[i]), Sc::load(s.rm[k] + x), acc);
        acc = Sc::fma(Sc::broadcast(w_.yp[i]), Sc::load(s.rp[k] + x), acc);
      }
      acc.store(s.o + x);
    }
  }

  /// One x-chunk of one stage: the vector body of span<Vec> with hoisted
  /// weights, plus the scalar tail for the chunk's ragged end. NT selects
  /// the streaming store (aligned fast path, plain store otherwise).
  template <bool NT>
  void stage_chunk(const Stage& s, int a, int b, Vec wc, const Vec* wxm,
                   const Vec* wxp, const Vec* wym, const Vec* wyp) {
    using V = Vec;
    int x = a;
    for (; x + V::width <= b; x += V::width) {
      V acc = wc * V::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(s.c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(s.c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(s.rm[k] + x), acc);
        acc = V::fma(wyp[k], V::load(s.rp[k] + x), acc);
      }
      if constexpr (NT) {
        NtV{acc}.store(s.o + x);
      } else {
        acc.store(s.o + x);
      }
    }
    scalar_span(s, x, b);
  }

  /// Process x in [x0, x1) in V-width steps; returns the first unprocessed x.
  template <class V>
  int span(int t, int y, int x0, int x1) {
    const Grid2D<T>& src = buf_[(t - 1) & 1];
    Grid2D<T>& dst = buf_[t & 1];
    const T* c = src.row(y);
    T* o = dst.row(y);
    const T* rm[S];
    const T* rp[S];
    for (int k = 0; k < S; ++k) {
      rm[k] = src.row(y - (k + 1));
      rp[k] = src.row(y + (k + 1));
    }
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S];
    broadcast_weights<V>(wxm, wxp, wym, wyp);
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = wc * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(rm[k] + x), acc);
        acc = V::fma(wyp[k], V::load(rp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid2D<T> buf_[2];
};

/// Standard heat-equation-flavored weights for examples and tests.
template <int S, class T = double>
typename ConstStar2D<S, T>::Weights default_star2d_weights() {
  typename ConstStar2D<S, T>::Weights w;
  w.center = static_cast<T>(0.5);
  for (int k = 0; k < S; ++k) {
    const double f = 0.5 / (4 * S) * (k == 0 ? 1.2 : 0.8);
    const auto i = static_cast<std::size_t>(k);
    // Slightly asymmetric so tests catch transposed/reflected indexing bugs.
    w.xm[i] = static_cast<T>(f * 1.01);
    w.xp[i] = static_cast<T>(f * 0.99);
    w.ym[i] = static_cast<T>(f * 1.02);
    w.yp[i] = static_cast<T>(f * 0.98);
  }
  return w;
}

}  // namespace cats
