#pragma once
// Constant-weight star stencil in 2D (the paper's "general 5-point stencil"
// for slope 1; 4S+1 points, 8S+1 flops for slope S).
//
// Weight layout: center w0, then per distance k=1..S the four axis weights
// (x-k, x+k, y-k, y+k), all distinct ("general" stencil: one multiply per
// point, matching the paper's 5 muls + 4 adds in 2D).

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>
#include <string>

#include "core/options.hpp"
#include "core/stencil.hpp"  // WaveStage
#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"

namespace cats {

template <int S>
class ConstStar2D {
  static_assert(S >= 1 && S <= 4);

 public:
  static constexpr int kPoints = 4 * S + 1;

  struct Weights {
    double center = 0.0;
    std::array<double, S> xm{}, xp{}, ym{}, yp{};
  };

  ConstStar2D(int width, int height, const Weights& w)
      : w_(w), buf_{Grid2D<double>(width, height, S, kDeferFirstTouch),
                    Grid2D<double>(width, height, S, kDeferFirstTouch)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return S; }
  double flops_per_point() const { return 8.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  std::string tune_id() const { return "const2d/s" + std::to_string(S); }

  /// Set initial interior values u(x,y,t=0) and constant boundary `bnd`.
  template <class F>
  void init(F&& f, double bnd = 0.0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  /// init() with NUMA-aware placement: both buffers are first-touched in
  /// parallel with the same row-slab partition and pinning policy the
  /// schemes use (threads/first_touch.hpp), then seeded with f.
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f, double bnd = 0.0) {
    const int W = width();
    first_touch_slabs(
        height(), S, opt.threads, opt.affinity,
        [&](int, int y0, int y1) {
          buf_[0].fill_rows(y0, y1, bnd);
          buf_[1].fill_rows(y0, y1, bnd);
          for (int y = std::max(y0, 0); y < std::min(y1, height()); ++y)
            for (int x = 0; x < W; ++x) buf_[0].at(x, y) = f(x, y);
        },
        opt.pin_cpus);
  }

  /// Leading-edge hint (see kernel_has_prefetch_front): start `lines` cache
  /// lines of the source row the wavefront sweeps next; the hardware
  /// prefetcher continues the stream.
  void prefetch_front(int t, int p, int lines) const {
    const Grid2D<double>& src = buf_[(t - 1) & 1];
    const double* r = src.row(std::min(p + S, height() - 1 + S));
    for (int i = 0; i < lines; ++i) simd::prefetch_read(r + i * 8);
  }

  const Grid2D<double>& grid_at(int t) const { return buf_[t & 1]; }
  Grid2D<double>& grid_at(int t) { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid2D<double>& g = grid_at(T);
    out.clear();
    out.reserve(static_cast<std::size_t>(width()) * height());
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x) out.push_back(g.at(x, y));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<simd::VecD>(t, y, x0, x1);
    span<simd::ScalarD>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<simd::ScalarD>(t, y, x0, x1);
  }

  /// Non-temporal write-back path: same arithmetic as process_row, stores
  /// stream past the cache (simd::NtVecD). Caller must store_fence() before
  /// publishing (see wave engine).
  void process_row_nt(int t, int y, int x0, int x1) {
    const int x = span<simd::NtVecD>(t, y, x0, x1);
    span<simd::ScalarD>(t, y, x, x1);
  }

  /// Register-tiled temporal micro-kernel (src/wave): sweep n <= 4 rows at
  /// consecutive timesteps in x-staggered lockstep. Weights are broadcast
  /// and row pointers resolved once for the whole group; the chunked
  /// diagonal order below keeps stage g at least one chunk (>= S points)
  /// ahead of stage g+1, which covers both the flow dependence (stage g+1
  /// reads stage g's row at x +- S) and the WAR hazard (stage g+1 overwrites
  /// the t-1 parity row that stage g still reads) — see
  /// wave/microkernel.hpp for the stagger proof. Bit-exact with n separate
  /// process_row calls: every point sees the identical operation tree.
  void process_stages(const WaveStage* st, int n) {
    using V = simd::VecD;
    // Chunk width: several vectors (amortizes the stage switch), and always
    // >= S so the diagonal stagger satisfies the slope-S dependences.
    constexpr int kChunk =
        kWaveChunkVecs * V::width >= S
            ? kWaveChunkVecs * V::width
            : ((S + V::width - 1) / V::width) * V::width;
    struct Stage {
      const double* c;
      double* o;
      const double* rm[S];
      const double* rp[S];
      int x0, x1;
      bool nt;
    };
    Stage sg[kMaxStages];
    int base = st[0].x0;
    int hi = st[0].x1;
    for (int g = 0; g < n; ++g) {
      const Grid2D<double>& src = buf_[(st[g].t - 1) & 1];
      Grid2D<double>& dst = buf_[st[g].t & 1];
      Stage& s = sg[g];
      s.c = src.row(st[g].y);
      s.o = dst.row(st[g].y);
      for (int k = 0; k < S; ++k) {
        s.rm[k] = src.row(st[g].y - (k + 1));
        s.rp[k] = src.row(st[g].y + (k + 1));
      }
      s.x0 = st[g].x0;
      s.x1 = st[g].x1;
      s.nt = st[g].nt;
      base = std::min(base, st[g].x0);
      hi = std::max(hi, st[g].x1);
    }
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S];
    for (int k = 0; k < S; ++k) {
      wxm[k] = V::broadcast(w_.xm[static_cast<std::size_t>(k)]);
      wxp[k] = V::broadcast(w_.xp[static_cast<std::size_t>(k)]);
      wym[k] = V::broadcast(w_.ym[static_cast<std::size_t>(k)]);
      wyp[k] = V::broadcast(w_.yp[static_cast<std::size_t>(k)]);
    }
    const int chunks = (hi - base + kChunk - 1) / kChunk;
    for (int j = 0; j < chunks + n - 1; ++j) {
      for (int g = 0; g < n; ++g) {
        const int ci = j - g;
        if (ci < 0 || ci >= chunks) continue;
        const Stage& s = sg[g];
        const int a = std::max(s.x0, base + ci * kChunk);
        const int b = std::min(s.x1, base + (ci + 1) * kChunk);
        if (a >= b) continue;
        if (s.nt) {
          stage_chunk<true>(s, a, b, wc, wxm, wxp, wym, wyp);
        } else {
          stage_chunk<false>(s, a, b, wc, wxm, wxp, wym, wyp);
        }
      }
    }
  }

 private:
  static constexpr int kMaxStages = 4;

  /// One x-chunk of one stage: the vector body of span<VecD> with hoisted
  /// weights, plus the ScalarD tail for the chunk's ragged end. NT selects
  /// the streaming store (aligned fast path, plain store otherwise).
  template <bool NT, class Stage>
  void stage_chunk(const Stage& s, int a, int b, simd::VecD wc,
                   const simd::VecD* wxm, const simd::VecD* wxp,
                   const simd::VecD* wym, const simd::VecD* wyp) {
    using V = simd::VecD;
    int x = a;
    for (; x + V::width <= b; x += V::width) {
      V acc = wc * V::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(s.c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(s.c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(s.rm[k] + x), acc);
        acc = V::fma(wyp[k], V::load(s.rp[k] + x), acc);
      }
      if constexpr (NT) {
        simd::NtVecD{acc}.store(s.o + x);
      } else {
        acc.store(s.o + x);
      }
    }
    using Sc = simd::ScalarD;
    const Sc sc = Sc::broadcast(w_.center);
    for (; x < b; ++x) {
      Sc acc = sc * Sc::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        const auto i = static_cast<std::size_t>(k);
        acc = Sc::fma(Sc::broadcast(w_.xm[i]), Sc::load(s.c + x - (k + 1)), acc);
        acc = Sc::fma(Sc::broadcast(w_.xp[i]), Sc::load(s.c + x + (k + 1)), acc);
        acc = Sc::fma(Sc::broadcast(w_.ym[i]), Sc::load(s.rm[k] + x), acc);
        acc = Sc::fma(Sc::broadcast(w_.yp[i]), Sc::load(s.rp[k] + x), acc);
      }
      acc.store(s.o + x);
    }
  }

  /// Process x in [x0, x1) in V-width steps; returns the first unprocessed x.
  template <class V>
  int span(int t, int y, int x0, int x1) {
    const Grid2D<double>& src = buf_[(t - 1) & 1];
    Grid2D<double>& dst = buf_[t & 1];
    const double* c = src.row(y);
    double* o = dst.row(y);
    const double* rm[S];
    const double* rp[S];
    for (int k = 0; k < S; ++k) {
      rm[k] = src.row(y - (k + 1));
      rp[k] = src.row(y + (k + 1));
    }
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S];
    for (int k = 0; k < S; ++k) {
      wxm[k] = V::broadcast(w_.xm[static_cast<std::size_t>(k)]);
      wxp[k] = V::broadcast(w_.xp[static_cast<std::size_t>(k)]);
      wym[k] = V::broadcast(w_.ym[static_cast<std::size_t>(k)]);
      wyp[k] = V::broadcast(w_.yp[static_cast<std::size_t>(k)]);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = wc * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(rm[k] + x), acc);
        acc = V::fma(wyp[k], V::load(rp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid2D<double> buf_[2];
};

/// Standard heat-equation-flavored weights for examples and tests.
template <int S>
typename ConstStar2D<S>::Weights default_star2d_weights() {
  typename ConstStar2D<S>::Weights w;
  w.center = 0.5;
  for (int k = 0; k < S; ++k) {
    const double f = 0.5 / (4 * S) * (k == 0 ? 1.2 : 0.8);
    const auto i = static_cast<std::size_t>(k);
    // Slightly asymmetric so tests catch transposed/reflected indexing bugs.
    w.xm[i] = f * 1.01;
    w.xp[i] = f * 0.99;
    w.ym[i] = f * 1.02;
    w.yp[i] = f * 0.98;
  }
  return w;
}

}  // namespace cats
