#pragma once
// Single-precision constant star stencil in 2D. Exercises CATS's
// "memory size of a data type" parameter: with 4-byte elements the same
// cache holds twice as many wavefront points, so Eq. 1/2 produce TZ/BZ
// roughly twice as deep as the double-precision kernels (element_bytes()).
//
// Since the fp32 precision path became first-class this is just the float
// instantiation of the shared ConstStar2D body (const2d.hpp): it carries the
// full kernel surface — NUMA-aware parallel_init, prefetch_front, NT-store
// write-back (NtVecF), the fused wave micro-kernel, and the
// temporally-vectorized chain body — not the read-only subset the kernel
// started with.

#include "kernels/const2d.hpp"

namespace cats {

template <int S>
using FloatStar2D = ConstStar2D<S, float>;

}  // namespace cats
