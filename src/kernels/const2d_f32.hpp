#pragma once
// Single-precision constant star stencil in 2D. Exercises CATS's
// "memory size of a data type" parameter: with 4-byte elements the same
// cache holds twice as many wavefront points, so Eq. 1/2 produce TZ/BZ
// roughly twice as deep as the double-precision kernels (element_bytes()).

#include <array>
#include <cstdint>
#include <vector>
#include <string>

#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"

namespace cats {

template <int S>
class FloatStar2D {
  static_assert(S >= 1 && S <= 4);

 public:
  static constexpr int kPoints = 4 * S + 1;

  struct Weights {
    float center = 0.0f;
    std::array<float, S> xm{}, xp{}, ym{}, yp{};
  };

  FloatStar2D(int width, int height, const Weights& w)
      : w_(w), buf_{Grid2D<float>(width, height, S),
                    Grid2D<float>(width, height, S)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return S; }
  double flops_per_point() const { return 8.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }  // state *elements*
  double extra_cache_doubles_per_point() const { return 0.0; }
  std::string tune_id() const { return "const2d_f32/s" + std::to_string(S); }
  double element_bytes() const { return 4.0; }

  template <class F>
  void init(F&& f, float bnd = 0.0f) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  const Grid2D<float>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid2D<float>& g = grid_at(T);
    out.clear();
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x)
        out.push_back(static_cast<double>(g.at(x, y)));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<simd::VecF>(t, y, x0, x1);
    span<simd::ScalarF>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<simd::ScalarF>(t, y, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int y, int x0, int x1) {
    const Grid2D<float>& src = buf_[(t - 1) & 1];
    Grid2D<float>& dst = buf_[t & 1];
    const float* c = src.row(y);
    float* o = dst.row(y);
    const float* rm[S];
    const float* rp[S];
    for (int k = 0; k < S; ++k) {
      rm[k] = src.row(y - (k + 1));
      rp[k] = src.row(y + (k + 1));
    }
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S];
    for (int k = 0; k < S; ++k) {
      const auto i = static_cast<std::size_t>(k);
      wxm[k] = V::broadcast(w_.xm[i]);
      wxp[k] = V::broadcast(w_.xp[i]);
      wym[k] = V::broadcast(w_.ym[i]);
      wyp[k] = V::broadcast(w_.yp[i]);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = wc * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(rm[k] + x), acc);
        acc = V::fma(wyp[k], V::load(rp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid2D<float> buf_[2];
};

}  // namespace cats
