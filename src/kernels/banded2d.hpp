#pragma once
// Variable-coefficient star stencil in 2D = banded-matrix vector product
// (Section III-B). Each of the NS = 4S+1 stencil positions has its own
// coefficient field (structure-of-arrays, so coefficient loads are
// unit-stride SIMD like the values). The matrix entries for the current
// wavefront must reside in cache too, so CS is augmented by NS (the paper
// replaces CS by CS + NS in Eqs. 1-2) — extra_cache_doubles_per_point().

#include <algorithm>
#include <cstdint>
#include <vector>
#include <string>

#include "core/options.hpp"
#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"

namespace cats {

template <int S>
class Banded2D {
  static_assert(S >= 1 && S <= 4);

 public:
  static constexpr int kBands = 4 * S + 1;  // NS

  Banded2D(int width, int height)
      : buf_{Grid2D<double>(width, height, S, kDeferFirstTouch),
             Grid2D<double>(width, height, S, kDeferFirstTouch)} {
    bands_.reserve(kBands);
    for (int b = 0; b < kBands; ++b) bands_.emplace_back(width, height, S);
  }

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return S; }
  double flops_per_point() const { return 8.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return kBands; }
  std::string tune_id() const { return "banded2d/s" + std::to_string(S); }

  /// Band order: 0 = center, then per k=1..S: x-k, x+k, y-k, y+k.
  Grid2D<double>& band(int b) { return bands_[static_cast<std::size_t>(b)]; }

  template <class F>
  void init(F&& f, double bnd = 0.0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  /// init() with NUMA-aware placement (see threads/first_touch.hpp). Band
  /// coefficient grids are placed by init_bands (serial, read-shared).
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f, double bnd = 0.0) {
    const int W = width();
    first_touch_slabs(height(), S, opt.threads, opt.affinity,
                      [&](int, int y0, int y1) {
                        buf_[0].fill_rows(y0, y1, bnd);
                        buf_[1].fill_rows(y0, y1, bnd);
                        for (int y = std::max(y0, 0);
                             y < std::min(y1, height()); ++y)
                          for (int x = 0; x < W; ++x)
                            buf_[0].at(x, y) = f(x, y);
                      });
  }

  /// Leading-edge hint: next source row plus its center-band coefficients
  /// (the matrix entries stream alongside the values).
  void prefetch_front(int t, int p) const {
    const int y = std::min(p + S, height() - 1 + S);
    const double* r = buf_[(t - 1) & 1].row(y);
    const double* b = bands_[0].row(std::min(y, height() - 1 + S));
    for (int i = 0; i < 4; ++i) {
      simd::prefetch_read(r + i * 8);
      simd::prefetch_read(b + i * 8);
    }
  }

  /// g(b, x, y) -> coefficient of band b at row position (x, y).
  template <class G>
  void init_bands(G&& g) {
    for (int b = 0; b < kBands; ++b)
      bands_[static_cast<std::size_t>(b)].fill_interior(
          [&](int x, int y) { return g(b, x, y); });
  }

  const Grid2D<double>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T) const {
    const Grid2D<double>& g = grid_at(T);
    out.clear();
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x) out.push_back(g.at(x, y));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<simd::VecD>(t, y, x0, x1);
    span<simd::ScalarD>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<simd::ScalarD>(t, y, x0, x1);
  }

 private:
  template <class V>
  int span(int t, int y, int x0, int x1) {
    const Grid2D<double>& src = buf_[(t - 1) & 1];
    Grid2D<double>& dst = buf_[t & 1];
    const double* c = src.row(y);
    double* o = dst.row(y);
    const double* rm[S];
    const double* rp[S];
    const double* bc = bands_[0].row(y);
    const double *bxm[S], *bxp[S], *bym[S], *byp[S];
    for (int k = 0; k < S; ++k) {
      rm[k] = src.row(y - (k + 1));
      rp[k] = src.row(y + (k + 1));
      const std::size_t base = static_cast<std::size_t>(4 * k);
      bxm[k] = bands_[base + 1].row(y);
      bxp[k] = bands_[base + 2].row(y);
      bym[k] = bands_[base + 3].row(y);
      byp[k] = bands_[base + 4].row(y);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = V::load(bc + x) * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(V::load(bxm[k] + x), V::load(c + x - (k + 1)), acc);
        acc = V::fma(V::load(bxp[k] + x), V::load(c + x + (k + 1)), acc);
        acc = V::fma(V::load(bym[k] + x), V::load(rm[k] + x), acc);
        acc = V::fma(V::load(byp[k] + x), V::load(rp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Grid2D<double> buf_[2];
  std::vector<Grid2D<double>> bands_;
};

}  // namespace cats
