#pragma once
// Variable-coefficient star stencil in 2D = banded-matrix vector product
// (Section III-B). Each of the NS = 4S+1 stencil positions has its own
// coefficient field (structure-of-arrays, so coefficient loads are
// unit-stride SIMD like the values). The matrix entries for the current
// wavefront must reside in cache too, so CS is augmented by NS (the paper
// replaces CS by CS + NS in Eqs. 1-2) — extra_cache_doubles_per_point().
//
// Templated on the element type T like ConstStar2D: one stencil body serves
// fp64, fp32 and the footprint analyzer's recording elements via
// simd::vec_traits (src/analysis/record.hpp).

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/stencil.hpp"  // WaveStage
#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"
#include "wave/temporal_vec.hpp"

namespace cats {

template <int S, class T = double>
class Banded2D {
  static_assert(S >= 1 && S <= 4);
  // Any element type with a simd::vec_traits mapping is admissible.
  static_assert(requires { typename simd::vec_traits<T>::Vec; });

 public:
  static constexpr int kBands = 4 * S + 1;  // NS
  /// The TV body evaluates the identical operation tree as the plain path
  /// (coefficients load same-x; only the value center row is shuffle-fed),
  /// so even the variable-coefficient kernel stays bit-exact.
  static constexpr bool tv_bit_exact = true;

  Banded2D(int width, int height)
      : buf_{Grid2D<T>(width, height, S, kDeferFirstTouch),
             Grid2D<T>(width, height, S, kDeferFirstTouch)} {
    bands_.reserve(kBands);
    for (int b = 0; b < kBands; ++b) bands_.emplace_back(width, height, S);
  }

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return S; }
  double flops_per_point() const { return 8.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return kBands; }
  /// Bytes per stored element — parameterizes Eq. 1/2 tile sizing.
  double element_bytes() const { return static_cast<double>(sizeof(T)); }
  std::string tune_id() const {
    if constexpr (std::is_same_v<T, float>) {
      return "banded2d_f32/s" + std::to_string(S);
    } else {
      return "banded2d/s" + std::to_string(S);
    }
  }

  /// Band order: 0 = center, then per k=1..S: x-k, x+k, y-k, y+k.
  Grid2D<T>& band(int b) { return bands_[static_cast<std::size_t>(b)]; }

  template <class F>
  void init(F&& f, T bnd = 0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  /// init() with NUMA-aware placement (see threads/first_touch.hpp). Band
  /// coefficient grids are placed by init_bands (serial, read-shared).
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f, T bnd = 0) {
    const int W = width();
    first_touch_slabs(height(), S, opt.threads, opt.affinity,
                      [&](int, int y0, int y1) {
                        buf_[0].fill_rows(y0, y1, bnd);
                        buf_[1].fill_rows(y0, y1, bnd);
                        for (int y = std::max(y0, 0);
                             y < std::min(y1, height()); ++y)
                          for (int x = 0; x < W; ++x)
                            buf_[0].at(x, y) = f(x, y);
                      });
  }

  /// Leading-edge hint: `lines` cache lines of the next source row plus its
  /// center-band coefficients (the matrix entries stream alongside the
  /// values).
  void prefetch_front(int t, int p, int lines) const {
    const int y = std::min(p + S, height() - 1 + S);
    const T* r = buf_[(t - 1) & 1].row(y);
    const T* b = bands_[0].row(std::min(y, height() - 1 + S));
    constexpr int kPerLine = static_cast<int>(64 / sizeof(T));
    for (int i = 0; i < lines; ++i) {
      simd::prefetch_read(r + i * kPerLine);
      simd::prefetch_read(b + i * kPerLine);
    }
  }

  /// g(b, x, y) -> coefficient of band b at row position (x, y).
  template <class G>
  void init_bands(G&& g) {
    for (int b = 0; b < kBands; ++b)
      bands_[static_cast<std::size_t>(b)].fill_interior(
          [&](int x, int y) { return g(b, x, y); });
  }

  const Grid2D<T>& grid_at(int t) const { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T_) const {
    const Grid2D<T>& g = grid_at(T_);
    out.clear();
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x)
        out.push_back(static_cast<double>(g.at(x, y)));
  }

  void process_row(int t, int y, int x0, int x1) {
    const int x = span<Vec>(t, y, x0, x1);
    span<Sc>(t, y, x, x1);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    span<Sc>(t, y, x0, x1);
  }

  /// Non-temporal write-back path (see ConstStar2D::process_row_nt).
  void process_row_nt(int t, int y, int x0, int x1) {
    const int x = span<NtV>(t, y, x0, x1);
    span<Sc>(t, y, x, x1);
  }

  /// Register-tiled temporal micro-kernel (see ConstStar2D::process_stages
  /// for the stagger contract). Banded stages additionally resolve the NS
  /// coefficient-band row pointers once per group — the matrix entries are
  /// time-invariant, so every fused timestep reads the same band rows while
  /// they are hot.
  void process_stages(const WaveStage* st, int n) {
    Stage sg[4];
    int base = st[0].x0;
    int hi = st[0].x1;
    resolve_stages(st, n, sg, base, hi);
    using V = Vec;
    constexpr int kChunk =
        kWaveChunkVecs * V::width >= S
            ? kWaveChunkVecs * V::width
            : ((S + V::width - 1) / V::width) * V::width;
    const int chunks = (hi - base + kChunk - 1) / kChunk;
    for (int j = 0; j < chunks + n - 1; ++j) {
      for (int g = 0; g < n; ++g) {
        const int ci = j - g;
        if (ci < 0 || ci >= chunks) continue;
        const Stage& s = sg[g];
        const int a = std::max(s.x0, base + ci * kChunk);
        const int b = std::min(s.x1, base + (ci + 1) * kChunk);
        if (a >= b) continue;
        if (s.nt) {
          stage_chunk<NtV>(s, a, b);
        } else {
          stage_chunk<Vec>(s, a, b);
        }
      }
    }
  }

  /// Temporally-vectorized chain body (wave/temporal_vec.hpp; see
  /// ConstStar2D::process_stages_tv). The value center row is fed from the
  /// sliding register window; every coefficient band loads same-x (unit
  /// stride, no shuffle needed). Identical operation tree per point as
  /// process_stages (tv_bit_exact).
  void process_stages_tv(const WaveStage* st, int n) {
    using V = Vec;
    Stage sg[4];
    int base = st[0].x0;
    int hi = st[0].x1;
    resolve_stages(st, n, sg, base, hi);
    auto win_body = [&](const Stage& s, int x, const auto& win) {
      V acc = V::load(s.bc + x) * win.template get<0>();
      [&]<std::size_t... K>(std::index_sequence<K...>) {
        ((acc = V::fma(V::load(s.bxm[K] + x),
                       win.template get<-(static_cast<int>(K) + 1)>(), acc),
          acc = V::fma(V::load(s.bxp[K] + x),
                       win.template get<static_cast<int>(K) + 1>(), acc),
          acc = V::fma(V::load(s.bym[K] + x), V::load(s.rm[K] + x), acc),
          acc = V::fma(V::load(s.byp[K] + x), V::load(s.rp[K] + x), acc)),
         ...);
      }(std::make_index_sequence<S>{});
      return acc;
    };
    auto vec_body = [&](const Stage& s, int x) {
      V acc = V::load(s.bc + x) * V::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(V::load(s.bxm[k] + x), V::load(s.c + x - (k + 1)), acc);
        acc = V::fma(V::load(s.bxp[k] + x), V::load(s.c + x + (k + 1)), acc);
        acc = V::fma(V::load(s.bym[k] + x), V::load(s.rm[k] + x), acc);
        acc = V::fma(V::load(s.byp[k] + x), V::load(s.rp[k] + x), acc);
      }
      return acc;
    };
    auto sc_body = [&](const Stage& s, int a, int b) {
      for (int x = a; x < b; ++x) {
        Sc acc = Sc::load(s.bc + x) * Sc::load(s.c + x);
        for (int k = 0; k < S; ++k) {
          acc = Sc::fma(Sc::load(s.bxm[k] + x), Sc::load(s.c + x - (k + 1)),
                        acc);
          acc = Sc::fma(Sc::load(s.bxp[k] + x), Sc::load(s.c + x + (k + 1)),
                        acc);
          acc = Sc::fma(Sc::load(s.bym[k] + x), Sc::load(s.rm[k] + x), acc);
          acc = Sc::fma(Sc::load(s.byp[k] + x), Sc::load(s.rp[k] + x), acc);
        }
        acc.store(s.o + x);
      }
    };
    wave::run_stages_tv<S, V, NtV, T>(sg, n, win_body, vec_body, sc_body);
  }

 private:
  using Vec = typename simd::vec_traits<T>::Vec;
  using Sc = typename simd::vec_traits<T>::Scalar;
  using NtV = typename simd::vec_traits<T>::Nt;

  struct Stage {
    const T* c;
    T* o;
    const T* rm[S];
    const T* rp[S];
    const T* bc;
    const T *bxm[S], *bxp[S], *bym[S], *byp[S];
    int x0, x1;
    bool nt;
  };

  void resolve_stages(const WaveStage* st, int n, Stage* sg, int& base,
                      int& hi) {
    for (int g = 0; g < n; ++g) {
      const Grid2D<T>& src = buf_[(st[g].t - 1) & 1];
      Grid2D<T>& dst = buf_[st[g].t & 1];
      const int y = st[g].y;
      Stage& s = sg[g];
      s.c = src.row(y);
      s.o = dst.row(y);
      s.bc = bands_[0].row(y);
      for (int k = 0; k < S; ++k) {
        s.rm[k] = src.row(y - (k + 1));
        s.rp[k] = src.row(y + (k + 1));
        const std::size_t bb = static_cast<std::size_t>(4 * k);
        s.bxm[k] = bands_[bb + 1].row(y);
        s.bxp[k] = bands_[bb + 2].row(y);
        s.bym[k] = bands_[bb + 3].row(y);
        s.byp[k] = bands_[bb + 4].row(y);
      }
      s.x0 = st[g].x0;
      s.x1 = st[g].x1;
      s.nt = st[g].nt;
      base = std::min(base, st[g].x0);
      hi = std::max(hi, st[g].x1);
    }
  }

  /// One x-chunk of one stage: vector body then scalar tail. All operands
  /// are loads (the banded stencil broadcasts nothing), so the generic
  /// vector body serves both store flavors directly.
  template <class V, class StageT>
  void stage_chunk(const StageT& s, int a, int b) {
    int x = a;
    for (; x + V::width <= b; x += V::width) {
      V acc = V::load(s.bc + x) * V::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(V::load(s.bxm[k] + x), V::load(s.c + x - (k + 1)), acc);
        acc = V::fma(V::load(s.bxp[k] + x), V::load(s.c + x + (k + 1)), acc);
        acc = V::fma(V::load(s.bym[k] + x), V::load(s.rm[k] + x), acc);
        acc = V::fma(V::load(s.byp[k] + x), V::load(s.rp[k] + x), acc);
      }
      acc.store(s.o + x);
    }
    for (; x < b; ++x) {
      Sc acc = Sc::load(s.bc + x) * Sc::load(s.c + x);
      for (int k = 0; k < S; ++k) {
        acc = Sc::fma(Sc::load(s.bxm[k] + x), Sc::load(s.c + x - (k + 1)), acc);
        acc = Sc::fma(Sc::load(s.bxp[k] + x), Sc::load(s.c + x + (k + 1)), acc);
        acc = Sc::fma(Sc::load(s.bym[k] + x), Sc::load(s.rm[k] + x), acc);
        acc = Sc::fma(Sc::load(s.byp[k] + x), Sc::load(s.rp[k] + x), acc);
      }
      acc.store(s.o + x);
    }
  }

  template <class V>
  int span(int t, int y, int x0, int x1) {
    const Grid2D<T>& src = buf_[(t - 1) & 1];
    Grid2D<T>& dst = buf_[t & 1];
    const T* c = src.row(y);
    T* o = dst.row(y);
    const T* rm[S];
    const T* rp[S];
    const T* bc = bands_[0].row(y);
    const T *bxm[S], *bxp[S], *bym[S], *byp[S];
    for (int k = 0; k < S; ++k) {
      rm[k] = src.row(y - (k + 1));
      rp[k] = src.row(y + (k + 1));
      const std::size_t base = static_cast<std::size_t>(4 * k);
      bxm[k] = bands_[base + 1].row(y);
      bxp[k] = bands_[base + 2].row(y);
      bym[k] = bands_[base + 3].row(y);
      byp[k] = bands_[base + 4].row(y);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = V::load(bc + x) * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(V::load(bxm[k] + x), V::load(c + x - (k + 1)), acc);
        acc = V::fma(V::load(bxp[k] + x), V::load(c + x + (k + 1)), acc);
        acc = V::fma(V::load(bym[k] + x), V::load(rm[k] + x), acc);
        acc = V::fma(V::load(byp[k] + x), V::load(rp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Grid2D<T> buf_[2];
  std::vector<Grid2D<T>> bands_;
};

}  // namespace cats
