#pragma once
// In-place Gauss-Seidel / SOR kernel (slope 1, 2D).
//
// The paper (Section II): "Some stencil computations like Gauss-Seidel, that
// use values from timestep t-1 and t while computing timestep t, can be
// performed inplace with just one copy of Omega." This kernel stores exactly
// one copy and updates it in place:
//
//   u(x,y) <- (1-w)*u(x,y) + w*( cxm*u(x-1,y) + cym*u(x,y-1)     [updated, t]
//                               + cxp*u(x+1,y) + cyp*u(x,y+1) )  [old, t-1]
//
// Its dependence vectors include SAME-timestep reads at (x-1, y) and
// (x, y-1), so it cannot be split-tiled or diamond-tiled in parallel: the
// left neighbor tile would have to finish before the right one starts.
// Under the *serial* CATS1 wavefront order (u = y + t ascending, t ascending
// within a wavefront, x ascending within a row) every dependence is
// satisfied, so CATS still delivers its full temporal-locality benefit —
// with one thread. The kernel advertises this via sequential_spatial_deps;
// run() then forces a single tile (see core/run.hpp).
//
// Because each point is computed exactly once per timestep from operands
// whose values are fixed by the dependence structure (not by the traversal),
// any legal order gives bit-identical results — the tests exploit this.

#include <cstdint>
#include <vector>

#include "grid/grid2d.hpp"
#include "simd/vecd.hpp"

namespace cats {

class GaussSeidel2D {
 public:
  static constexpr bool sequential_spatial_deps = true;

  struct Weights {
    double relax = 1.0;  ///< SOR omega (1.0 = plain Gauss-Seidel)
    double xm = 0.25, xp = 0.25, ym = 0.25, yp = 0.25;
  };

  GaussSeidel2D(int width, int height, const Weights& w)
      : w_(w), u_(width, height, 1) {}

  int width() const { return u_.width(); }
  int height() const { return u_.height(); }
  int slope() const { return 1; }
  /// 4 muls + 3 adds for the neighbor sum, + 2 muls + 1 add for relaxation.
  double flops_per_point() const { return 10.0; }
  /// One copy of the domain (the paper's in-place remark).
  double state_doubles_per_point() const { return 0.5; }
  double extra_cache_doubles_per_point() const { return 0.0; }

  template <class F>
  void init(F&& f, double bnd = 0.0) {
    u_.fill(bnd);
    u_.fill_interior(f);
  }

  const Grid2D<double>& grid() const { return u_; }

  void copy_result_to(std::vector<double>& out, int) const {
    out.clear();
    for (int y = 0; y < height(); ++y)
      for (int x = 0; x < width(); ++x) out.push_back(u_.at(x, y));
  }

  // In-place updates leave nothing to vectorize across x (u(x-1) feeds
  // u(x)); both paths are the sequential scalar recurrence.
  void process_row(int t, int y, int x0, int x1) {
    process_row_scalar(t, y, x0, x1);
  }

  void process_row_scalar(int /*t*/, int y, int x0, int x1) {
    const double* up = u_.row(y + 1);
    const double* dn = u_.row(y - 1);
    double* c = u_.row(y);
    const double omw = 1.0 - w_.relax;
    for (int x = x0; x < x1; ++x) {
      const double nb = w_.xm * c[x - 1] + w_.xp * c[x + 1] +
                        w_.ym * dn[x] + w_.yp * up[x];
      c[x] = omw * c[x] + w_.relax * nb;
    }
  }

 private:
  Weights w_;
  Grid2D<double> u_;
};

}  // namespace cats
