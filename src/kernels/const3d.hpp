#pragma once
// Constant-weight star stencil in 3D (7-point for slope 1, 13-point for
// slope 2, 19-point for slope 3 — the Section III-E sweep). 6S+1 points,
// 12S+1 flops.
//
// Templated on the element type T like ConstStar2D: one stencil body serves
// fp64, fp32 and the footprint analyzer's recording elements via
// simd::vec_traits (src/analysis/record.hpp).

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "grid/grid3d.hpp"
#include "simd/vecd.hpp"
#include "threads/first_touch.hpp"
#include "wave/temporal_vec.hpp"

namespace cats {

template <int S, class T = double>
class ConstStar3D {
  static_assert(S >= 1 && S <= 4);
  // Any element type with a simd::vec_traits mapping is admissible.
  static_assert(requires { typename simd::vec_traits<T>::Vec; });

 public:
  static constexpr int kPoints = 6 * S + 1;

  /// Engine-side temporal fusion is legal: all reads lie in the slope-S box
  /// at t-1 (wave/microkernel.hpp stagger proof).
  static constexpr bool wave_fusable = true;
  /// The TV row body evaluates the identical operation tree as process_row
  /// (see core/stencil.hpp kernel_tv_bit_exact).
  static constexpr bool tv_bit_exact = true;

  struct Weights {
    T center = 0;
    std::array<T, S> xm{}, xp{}, ym{}, yp{}, zm{}, zp{};
  };

  ConstStar3D(int width, int height, int depth, const Weights& w)
      : w_(w),
        buf_{Grid3D<T>(width, height, depth, S, kDeferFirstTouch),
             Grid3D<T>(width, height, depth, S, kDeferFirstTouch)} {}

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int depth() const { return buf_[0].depth(); }
  int slope() const { return S; }
  double flops_per_point() const { return 12.0 * S + 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  /// Bytes per stored element — parameterizes Eq. 1/2 tile sizing.
  double element_bytes() const { return static_cast<double>(sizeof(T)); }
  std::string tune_id() const {
    if constexpr (std::is_same_v<T, float>) {
      return "const3d_f32/s" + std::to_string(S);
    } else {
      return "const3d/s" + std::to_string(S);
    }
  }

  template <class F>
  void init(F&& f, T bnd = 0) {
    buf_[0].fill(bnd);
    buf_[1].fill(bnd);
    buf_[0].fill_interior(f);
  }

  /// init() with NUMA-aware placement: z-slab partitioned parallel first
  /// touch under the schemes' pinning policy (threads/first_touch.hpp).
  template <class F>
  void parallel_init(const RunOptions& opt, F&& f, T bnd = 0) {
    const int W = width(), H = height();
    first_touch_slabs(
        depth(), S, opt.threads, opt.affinity,
        [&](int, int z0, int z1) {
          buf_[0].fill_slabs(z0, z1, bnd);
          buf_[1].fill_slabs(z0, z1, bnd);
          for (int z = std::max(z0, 0); z < std::min(z1, depth()); ++z)
            for (int y = 0; y < H; ++y)
              for (int x = 0; x < W; ++x) buf_[0].at(x, y, z) = f(x, y, z);
        },
        opt.pin_cpus);
  }

  /// Leading-edge hint: start `lines` cache lines of the next source plane's
  /// first rows (the wavefront sweeps +z); the hardware prefetcher continues
  /// each stream.
  void prefetch_front(int t, int p, int lines) const {
    const Grid3D<T>& src = buf_[(t - 1) & 1];
    const T* r = src.row(0, std::min(p + S, depth() - 1 + S));
    constexpr int kPerLine = static_cast<int>(64 / sizeof(T));
    for (int i = 0; i < lines; ++i) simd::prefetch_read(r + i * kPerLine);
  }

  const Grid3D<T>& grid_at(int t) const { return buf_[t & 1]; }
  Grid3D<T>& grid_at(int t) { return buf_[t & 1]; }

  void copy_result_to(std::vector<double>& out, int T_) const {
    const Grid3D<T>& g = grid_at(T_);
    out.clear();
    out.reserve(static_cast<std::size_t>(width()) * height() * depth());
    for (int z = 0; z < depth(); ++z)
      for (int y = 0; y < height(); ++y)
        for (int x = 0; x < width(); ++x)
          out.push_back(static_cast<double>(g.at(x, y, z)));
  }

  void process_row(int t, int y, int z, int x0, int x1) {
    const int x = span<Vec>(t, y, z, x0, x1);
    span<Sc>(t, y, z, x, x1);
  }

  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    span<Sc>(t, y, z, x0, x1);
  }

  /// Non-temporal write-back path: same arithmetic as process_row, stores
  /// stream past the cache (the 3D micro-kernel specialization — 3D
  /// temporal fusion interleaves whole rows engine-side, so the NT store is
  /// the only per-kernel piece). Caller must store_fence() before
  /// publishing.
  void process_row_nt(int t, int y, int z, int x0, int x1) {
    const int x = span<NtV>(t, y, z, x0, x1);
    span<Sc>(t, y, z, x, x1);
  }

  /// Temporally-vectorized row body (wave/temporal_vec.hpp): the window-legal
  /// interior builds every center-row x-neighborhood from a sliding register
  /// window (one aligned load + shuffles per vector instead of 2S+1
  /// overlapping unaligned reloads); edge vectors and the scalar tail use the
  /// plain body. 3D chains interleave whole rows engine-side (run_fused_3d_tv
  /// drives this per row), so unlike 2D there is no cross-stage register
  /// forwarding — consumed rows were produced S row-steps earlier. `nt`
  /// selects the streaming store on full vectors. Identical operation tree
  /// per point as process_row (tv_bit_exact).
  void process_row_tv(int t, int y, int z, int x0, int x1, bool nt) {
    if (nt) {
      row_tv<true>(t, y, z, x0, x1);
    } else {
      row_tv<false>(t, y, z, x0, x1);
    }
  }

 private:
  using Vec = typename simd::vec_traits<T>::Vec;
  using Sc = typename simd::vec_traits<T>::Scalar;
  using NtV = typename simd::vec_traits<T>::Nt;

  template <bool NT>
  void row_tv(int t, int y, int z, int x0, int x1) {
    using V = Vec;
    constexpr int W = V::width;
    constexpr int Q = (S + W - 1) / W;
    const Grid3D<T>& src = buf_[(t - 1) & 1];
    Grid3D<T>& dst = buf_[t & 1];
    const T* c = src.row(y, z);
    T* o = dst.row(y, z);
    const T *rym[S], *ryp[S], *rzm[S], *rzp[S];
    for (int k = 0; k < S; ++k) {
      rym[k] = src.row(y - (k + 1), z);
      ryp[k] = src.row(y + (k + 1), z);
      rzm[k] = src.row(y, z - (k + 1));
      rzp[k] = src.row(y, z + (k + 1));
    }
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S], wzm[S], wzp[S];
    for (int k = 0; k < S; ++k) {
      const auto i = static_cast<std::size_t>(k);
      wxm[k] = V::broadcast(w_.xm[i]);
      wxp[k] = V::broadcast(w_.xp[i]);
      wym[k] = V::broadcast(w_.ym[i]);
      wyp[k] = V::broadcast(w_.yp[i]);
      wzm[k] = V::broadcast(w_.zm[i]);
      wzp[k] = V::broadcast(w_.zp[i]);
    }
    auto emit = [&](V acc, int x) {
      if constexpr (NT) {
        NtV{acc}.store(o + x);
      } else {
        acc.store(o + x);
      }
    };
    auto plain = [&](int x) {
      V acc = wc * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(rym[k] + x), acc);
        acc = V::fma(wyp[k], V::load(ryp[k] + x), acc);
        acc = V::fma(wzm[k], V::load(rzm[k] + x), acc);
        acc = V::fma(wzp[k], V::load(rzp[k] + x), acc);
      }
      return acc;
    };
    wave::ShiftWindow<V, T, S> win;
    auto windowed = [&](int x) {
      V acc = wc * win.template get<0>();
      [&]<std::size_t... K>(std::index_sequence<K...>) {
        ((acc = V::fma(wxm[K], win.template get<-(static_cast<int>(K) + 1)>(),
                       acc),
          acc = V::fma(wxp[K], win.template get<static_cast<int>(K) + 1>(),
                       acc),
          acc = V::fma(wym[K], V::load(rym[K] + x), acc),
          acc = V::fma(wyp[K], V::load(ryp[K] + x), acc),
          acc = V::fma(wzm[K], V::load(rzm[K] + x), acc),
          acc = V::fma(wzp[K], V::load(rzp[K] + x), acc)),
         ...);
      }(std::make_index_sequence<S>{});
      return acc;
    };
    // Window legality: reads [x - Q*W, x + (Q+1)*W) within the plain body's
    // reach [x0 - S, x1 - 1 + S].
    const int lo = x0 + Q * W - S;
    const int hi = x1 + S - (Q + 1) * W;
    int x = x0;
    for (; x + W <= x1 && (x < lo || x > hi); x += W) emit(plain(x), x);
    if (x + W <= x1 && x >= lo && x <= hi) {
      win.prime(c, x);
      emit(windowed(x), x);
      x += W;
      for (; x + W <= x1 && x <= hi; x += W) {
        win.advance(c, x);
        emit(windowed(x), x);
      }
    }
    for (; x + W <= x1; x += W) emit(plain(x), x);
    span<Sc>(t, y, z, x, x1);
  }

  template <class V>
  int span(int t, int y, int z, int x0, int x1) {
    const Grid3D<T>& src = buf_[(t - 1) & 1];
    Grid3D<T>& dst = buf_[t & 1];
    const T* c = src.row(y, z);
    T* o = dst.row(y, z);
    const T *rym[S], *ryp[S], *rzm[S], *rzp[S];
    for (int k = 0; k < S; ++k) {
      rym[k] = src.row(y - (k + 1), z);
      ryp[k] = src.row(y + (k + 1), z);
      rzm[k] = src.row(y, z - (k + 1));
      rzp[k] = src.row(y, z + (k + 1));
    }
    const V wc = V::broadcast(w_.center);
    V wxm[S], wxp[S], wym[S], wyp[S], wzm[S], wzp[S];
    for (int k = 0; k < S; ++k) {
      const auto i = static_cast<std::size_t>(k);
      wxm[k] = V::broadcast(w_.xm[i]);
      wxp[k] = V::broadcast(w_.xp[i]);
      wym[k] = V::broadcast(w_.ym[i]);
      wyp[k] = V::broadcast(w_.yp[i]);
      wzm[k] = V::broadcast(w_.zm[i]);
      wzp[k] = V::broadcast(w_.zp[i]);
    }
    int x = x0;
    for (; x + V::width <= x1; x += V::width) {
      V acc = wc * V::load(c + x);
      for (int k = 0; k < S; ++k) {
        acc = V::fma(wxm[k], V::load(c + x - (k + 1)), acc);
        acc = V::fma(wxp[k], V::load(c + x + (k + 1)), acc);
        acc = V::fma(wym[k], V::load(rym[k] + x), acc);
        acc = V::fma(wyp[k], V::load(ryp[k] + x), acc);
        acc = V::fma(wzm[k], V::load(rzm[k] + x), acc);
        acc = V::fma(wzp[k], V::load(rzp[k] + x), acc);
      }
      acc.store(o + x);
    }
    return x;
  }

  Weights w_;
  Grid3D<T> buf_[2];
};

template <int S, class T = double>
typename ConstStar3D<S, T>::Weights default_star3d_weights() {
  typename ConstStar3D<S, T>::Weights w;
  w.center = static_cast<T>(0.4);
  for (int k = 0; k < S; ++k) {
    const double f = 0.6 / (6 * S) * (k == 0 ? 1.2 : 0.8);
    const auto i = static_cast<std::size_t>(k);
    w.xm[i] = static_cast<T>(f * 1.01);
    w.xp[i] = static_cast<T>(f * 0.99);
    w.ym[i] = static_cast<T>(f * 1.02);
    w.yp[i] = static_cast<T>(f * 0.98);
    w.zm[i] = static_cast<T>(f * 1.03);
    w.zp[i] = static_cast<T>(f * 0.97);
  }
  return w;
}

}  // namespace cats
