#pragma once
// CPU/NUMA topology detection and thread placement orders.
//
// CATS's cache model (Eq. 1/2) budgets for the *private* cache of the core a
// thread runs on; a thread that migrates mid-chunk drags its wavefront
// working set across caches and the budget is void. The execution layer
// therefore needs to know which logical CPUs share a core (SMT siblings),
// which cores share a package, and which NUMA node each CPU's memory
// controller belongs to. Everything is parsed from the Linux sysfs tree; the
// parser takes the tree root as a parameter so tests can run it against
// canned fixture directories. On non-Linux systems (or a stripped /sys)
// detection reports `known == false` and every consumer degrades to the
// unpinned behavior.

#include <cstddef>
#include <string>
#include <vector>

namespace cats {

/// Thread-pinning policy for the persistent pool (RunOptions::affinity).
/// Both placement policies put one thread per physical core before using SMT
/// siblings — a sibling sharing the core's L1/L2 would halve the private
/// cache Eq. 1/2 size for.
enum class AffinityPolicy {
  None,     ///< no pinning; the OS scheduler places threads (default)
  Compact,  ///< consecutive cores of one node/package first (shared-L3 locality)
  Scatter,  ///< round-robin across NUMA nodes/packages (maximum memory bandwidth)
};

const char* affinity_policy_name(AffinityPolicy p);

/// One online logical CPU and where it lives.
struct CpuPlace {
  int cpu = 0;      ///< logical CPU id (the `cpuN` sysfs index)
  int core = 0;     ///< core id within the package (`topology/core_id`)
  int package = 0;  ///< physical package/socket (`topology/physical_package_id`)
  int node = 0;     ///< NUMA node owning this CPU's local memory
  bool smt_sibling = false;  ///< not the first logical CPU of its core
};

struct Topology {
  std::vector<CpuPlace> cpus;  ///< online CPUs, ascending cpu id
  int n_cores = 0;             ///< distinct (package, core) pairs
  int n_packages = 0;
  int n_nodes = 1;
  bool smt = false;   ///< any core carries more than one logical CPU
  bool known = false; ///< parse succeeded; false => consumers must not pin

  /// Logical-CPU pin order for `slots` threads under `policy`. Physical cores
  /// come first (Compact: grouped by node then package; Scatter: round-robin
  /// over nodes), SMT siblings only after every core has one thread. Empty
  /// when the topology is unknown or the policy is None.
  std::vector<int> pin_order(AffinityPolicy policy, int slots) const;
};

/// Parse a sysfs-shaped tree: `<root>/cpu/online`, `<root>/cpu/cpuN/topology/
/// {core_id,physical_package_id}` and `<root>/node/nodeM/cpulist`. Missing
/// node directories mean "one node"; a missing/unreadable cpu tree yields
/// `known == false`.
Topology parse_topology(const std::string& root);

/// Cached parse of /sys/devices/system (thread-safe, detected once).
const Topology& system_topology();

/// One-line summary for bench headers, e.g. "4 cores / 8 cpus, 1 node, SMT".
std::string topology_string(const Topology& t);

/// Parse a sysfs CPU list string like "0-3,8,10-11" into ids; tolerant of
/// trailing newlines/spaces. Exposed for tests.
std::vector<int> parse_cpu_list(const std::string& s);

}  // namespace cats
