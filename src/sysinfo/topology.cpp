#include "sysinfo/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

namespace cats {
namespace {

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  if (in) std::getline(in, s);
  return s;
}

int read_int(const std::string& path, int fallback) {
  const std::string s = read_line(path);
  if (s.empty() || (s[0] != '-' && (s[0] < '0' || s[0] > '9'))) return fallback;
  return std::atoi(s.c_str());
}

}  // namespace

const char* affinity_policy_name(AffinityPolicy p) {
  switch (p) {
    case AffinityPolicy::None: return "none";
    case AffinityPolicy::Compact: return "compact";
    case AffinityPolicy::Scatter: return "scatter";
  }
  return "?";
}

std::vector<int> parse_cpu_list(const std::string& s) {
  std::vector<int> out;
  std::size_t i = 0;
  auto digit = [&] { return i < s.size() && s[i] >= '0' && s[i] <= '9'; };
  auto number = [&] {
    int n = 0;
    while (digit()) n = n * 10 + (s[i++] - '0');
    return n;
  };
  while (i < s.size()) {
    if (!digit()) { ++i; continue; }
    const int lo = number();
    int hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (!digit()) break;  // malformed trailing dash
      hi = number();
    }
    for (int c = lo; c <= hi; ++c) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Topology parse_topology(const std::string& root) {
  Topology t;
  const std::string cpu_root = root + "/cpu";
  std::vector<int> online = parse_cpu_list(read_line(cpu_root + "/online"));
  if (online.empty()) return t;  // known == false

  // NUMA node of each CPU, from <root>/node/nodeM/cpulist. A machine with no
  // node directories (non-NUMA kernel, or our fixtures) is one node.
  std::map<int, int> node_of;
  int max_node = 0;
  for (int n = 0; n < 1024; ++n) {
    const std::string list =
        read_line(root + "/node/node" + std::to_string(n) + "/cpulist");
    if (list.empty()) {
      if (n > 0) break;  // node0 may legitimately be absent; stop at first gap
      continue;
    }
    for (int cpu : parse_cpu_list(list)) node_of[cpu] = n;
    max_node = n;
  }

  std::map<std::pair<int, int>, int> cpus_in_core;
  std::map<int, bool> packages;
  for (int cpu : online) {
    const std::string dir = cpu_root + "/cpu" + std::to_string(cpu) + "/topology/";
    CpuPlace p;
    p.cpu = cpu;
    p.core = read_int(dir + "core_id", cpu);
    p.package = read_int(dir + "physical_package_id", 0);
    auto it = node_of.find(cpu);
    p.node = it != node_of.end() ? it->second : 0;
    p.smt_sibling = cpus_in_core[{p.package, p.core}]++ > 0;
    packages[p.package] = true;
    t.cpus.push_back(p);
  }
  t.n_cores = static_cast<int>(cpus_in_core.size());
  t.n_packages = static_cast<int>(packages.size());
  t.n_nodes = node_of.empty() ? 1 : max_node + 1;
  for (const auto& [key, count] : cpus_in_core)
    if (count > 1) t.smt = true;
  t.known = true;
  return t;
}

std::vector<int> Topology::pin_order(AffinityPolicy policy, int slots) const {
  std::vector<int> order;
  if (!known || policy == AffinityPolicy::None || slots <= 0 || cpus.empty())
    return order;

  // Primary CPUs (one per physical core) first, SMT siblings as overflow: a
  // sibling shares its core's L1/L2 and would halve the private-cache budget
  // the Eq. 1/2 chunk sizes were derived from.
  std::vector<CpuPlace> primary, siblings;
  for (const CpuPlace& p : cpus) (p.smt_sibling ? siblings : primary).push_back(p);

  auto compact = [](const CpuPlace& a, const CpuPlace& b) {
    return std::tie(a.node, a.package, a.core, a.cpu) <
           std::tie(b.node, b.package, b.core, b.cpu);
  };
  std::sort(primary.begin(), primary.end(), compact);
  std::sort(siblings.begin(), siblings.end(), compact);

  auto emit = [&](std::vector<CpuPlace>& v) {
    if (policy == AffinityPolicy::Scatter && n_nodes > 1) {
      // Round-robin across nodes: take the next unused CPU of each node in
      // turn so `slots` threads spread over all memory controllers.
      std::vector<std::size_t> cursor(static_cast<std::size_t>(n_nodes), 0);
      std::vector<std::vector<const CpuPlace*>> by_node(
          static_cast<std::size_t>(n_nodes));
      for (const CpuPlace& p : v)
        if (p.node >= 0 && p.node < n_nodes)
          by_node[static_cast<std::size_t>(p.node)].push_back(&p);
      for (std::size_t taken = 0; taken < v.size();) {
        for (std::size_t n = 0; n < by_node.size(); ++n) {
          if (cursor[n] < by_node[n].size()) {
            order.push_back(by_node[n][cursor[n]++]->cpu);
            ++taken;
          }
        }
      }
    } else {
      for (const CpuPlace& p : v) order.push_back(p.cpu);
    }
  };
  emit(primary);
  emit(siblings);

  // More slots than CPUs: wrap around so every thread still gets a home.
  const std::size_t n = order.size();
  while (order.size() < static_cast<std::size_t>(slots))
    order.push_back(order[order.size() % n]);
  order.resize(static_cast<std::size_t>(slots));
  return order;
}

const Topology& system_topology() {
  static const Topology t = parse_topology("/sys/devices/system");
  return t;
}

std::string topology_string(const Topology& t) {
  if (!t.known) return "unknown";
  std::ostringstream os;
  os << t.n_cores << (t.n_cores == 1 ? " core / " : " cores / ")
     << t.cpus.size() << (t.cpus.size() == 1 ? " cpu" : " cpus") << ", "
     << t.n_nodes << (t.n_nodes == 1 ? " node" : " nodes")
     << (t.smt ? ", SMT" : "");
  return os.str();
}

}  // namespace cats
