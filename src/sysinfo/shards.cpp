#include "sysinfo/shards.hpp"

#include <algorithm>
#include <thread>

#include "check/check.hpp"

namespace cats {

namespace {

/// One physical core and every logical CPU on it (primary first).
struct CoreSlot {
  int node = 0;
  std::vector<int> cpus;
};

/// Physical cores ordered by node, each carrying its SMT siblings. This is
/// the unit shards are dealt in: a shard owns whole cores, never a lone
/// sibling of a core another shard works on.
std::vector<CoreSlot> core_slots(const Topology& topo) {
  std::vector<CoreSlot> slots;
  for (const CpuPlace& p : topo.cpus) {
    if (p.smt_sibling) continue;
    slots.push_back({p.node, {p.cpu}});
  }
  // Attach siblings to their core (same package/core pair).
  for (const CpuPlace& p : topo.cpus) {
    if (!p.smt_sibling) continue;
    for (const CpuPlace& q : topo.cpus) {
      if (q.smt_sibling || q.core != p.core || q.package != p.package) continue;
      for (CoreSlot& s : slots) {
        if (!s.cpus.empty() && s.cpus[0] == q.cpu) {
          s.cpus.push_back(p.cpu);
          break;
        }
      }
      break;
    }
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const CoreSlot& a, const CoreSlot& b) {
                     return a.node < b.node;
                   });
  return slots;
}

ShardSpec shard_from_slots(int id, const std::vector<CoreSlot>& slots,
                           std::size_t lo, std::size_t hi,
                           int threads_per_shard) {
  ShardSpec s;
  s.id = id;
  s.node = slots[lo].node;
  // Physical cores first, then the group's SMT siblings, matching
  // Topology::pin_order's placement discipline.
  for (std::size_t i = lo; i < hi; ++i) s.cpus.push_back(slots[i].cpus[0]);
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = 1; j < slots[i].cpus.size(); ++j) {
      s.cpus.push_back(slots[i].cpus[j]);
    }
  }
  s.threads = threads_per_shard > 0
                  ? threads_per_shard
                  : std::max(1, static_cast<int>(hi - lo));
  return s;
}

}  // namespace

ShardPlan derive_shards(const Topology& topo, int want, int threads_per_shard) {
  CATS_CHECK(want >= 0 && threads_per_shard >= 0,
             "derive_shards want=%d threads_per_shard=%d must be >= 0", want,
             threads_per_shard);
  ShardPlan plan;

  if (!topo.known || topo.cpus.empty()) {
    // No topology: equal unpinned thread groups. The scheduler still gets
    // its concurrency structure; only placement is lost.
    const int n = std::max(want, 1);
    const int hw = std::max(1u, std::thread::hardware_concurrency());
    for (int i = 0; i < n; ++i) {
      ShardSpec s;
      s.id = i;
      s.node = -1;
      s.threads = threads_per_shard > 0 ? threads_per_shard
                                        : std::max(1, hw / n);
      plan.shards.push_back(std::move(s));
    }
    return plan;
  }

  const std::vector<CoreSlot> slots = core_slots(topo);
  CATS_CHECK(!slots.empty(), "topology known but no physical cores parsed");

  if (want == 0) {
    // Natural layout: one shard per NUMA node (slots are node-ordered, so
    // each node is one contiguous run).
    std::size_t lo = 0;
    int id = 0;
    for (std::size_t i = 1; i <= slots.size(); ++i) {
      if (i == slots.size() || slots[i].node != slots[lo].node) {
        plan.shards.push_back(
            shard_from_slots(id++, slots, lo, i, threads_per_shard));
        lo = i;
      }
    }
  } else {
    // Forced count: contiguous groups of the node-ordered core list, sizes
    // differing by at most one. More shards than cores clamps to one core
    // per shard.
    const int n = std::min<int>(want, static_cast<int>(slots.size()));
    for (int i = 0; i < n; ++i) {
      const std::size_t lo = slots.size() * static_cast<std::size_t>(i) /
                             static_cast<std::size_t>(n);
      const std::size_t hi = slots.size() * (static_cast<std::size_t>(i) + 1) /
                             static_cast<std::size_t>(n);
      plan.shards.push_back(shard_from_slots(i, slots, lo, hi,
                                             threads_per_shard));
    }
  }
  plan.pinned = true;
  return plan;
}

std::string ShardPlan::describe() const {
  std::string out = std::to_string(shards.size()) + " shard(s)" +
                    (pinned ? " (pinned)" : " (unpinned)");
  for (const ShardSpec& s : shards) {
    out += "; #" + std::to_string(s.id) + " node" + std::to_string(s.node) +
           " threads=" + std::to_string(s.threads) + " cpus[";
    for (std::size_t i = 0; i < s.cpus.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(s.cpus[i]);
    }
    out += "]";
  }
  return out;
}

}  // namespace cats
