#include "sysinfo/cache_info.hpp"

#include <fstream>
#include <sstream>

namespace cats {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  if (in) std::getline(in, s);
  return s;
}

/// Parse "48K" / "2048K" / "1M" style sysfs size strings; 0 on failure.
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t n = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    n = n * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    if (s[i] == 'K' || s[i] == 'k') n *= 1024;
    if (s[i] == 'M' || s[i] == 'm') n *= 1024 * 1024;
    if (s[i] == 'G' || s[i] == 'g') n *= 1024ull * 1024 * 1024;
  }
  return n;
}

}  // namespace

CacheInfo detect_cache_info() {
  CacheInfo info;
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level_s = read_file(dir + "level");
    if (level_s.empty()) break;
    const std::string type = read_file(dir + "type");
    if (type == "Instruction") continue;
    const int level = std::atoi(level_s.c_str());
    const std::size_t bytes = parse_size(read_file(dir + "size"));
    if (bytes == 0) continue;
    if (level == 1) info.l1d_bytes = bytes;
    if (level == 2) {
      info.l2_bytes = bytes;
      const std::string ways = read_file(dir + "ways_of_associativity");
      if (!ways.empty()) info.l2_ways = std::atoi(ways.c_str());
    }
    if (level == 3) info.l3_bytes = bytes;
    const std::string line = read_file(dir + "coherency_line_size");
    if (!line.empty()) info.line_bytes = std::atoi(line.c_str());
  }
  return info;
}

std::string cache_info_string(const CacheInfo& info) {
  std::ostringstream os;
  os << "L1d=" << info.l1d_bytes / 1024 << "KiB"
     << " L2=" << info.l2_bytes / 1024 << "KiB";
  if (info.l3_bytes) os << " L3=" << info.l3_bytes / 1024 << "KiB";
  os << " line=" << info.line_bytes << "B";
  return os.str();
}

}  // namespace cats
