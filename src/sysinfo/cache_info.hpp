#pragma once
// Cache topology detection.
//
// CATS takes the size of the last private cache level as its central
// parameter (Z in Eqs. 1-2). We read the Linux sysfs topology and let callers
// override everything; the library never hard-codes a machine.

#include <cstddef>
#include <string>

namespace cats {

struct CacheLevel {
  int level = 0;
  std::size_t bytes = 0;
  int ways = 0;
  int line = 64;
  bool unified = true;  // false = data-only is still usable for us
};

struct CacheInfo {
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 256 * 1024;
  std::size_t l3_bytes = 0;  // 0 when absent
  int line_bytes = 64;
  int l2_ways = 8;

  /// Size of the last *private* cache level: what CATS should target.
  /// Heuristic: L2 on multi-level machines (L3 is shared), L1d otherwise.
  std::size_t last_private_bytes() const {
    return l2_bytes ? l2_bytes : l1d_bytes;
  }
};

/// Parse /sys/devices/system/cpu/cpu0/cache. Falls back to conservative
/// defaults when sysfs is unavailable.
CacheInfo detect_cache_info();

/// One-line summary for bench headers.
std::string cache_info_string(const CacheInfo& info);

}  // namespace cats
