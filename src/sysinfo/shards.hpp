#pragma once
// NUMA-node shard derivation for the stencil service (src/serve).
//
// A shard is the scheduling unit of the persistent server: a set of logical
// CPUs that share a NUMA node (and therefore a memory controller and — on
// most machines — a last-level cache), plus the worker-thread count backed
// by those CPUs. Jobs dispatched to one shard pin their pool to the shard's
// CPUs, first-touch their grids there, and never migrate, so a tenant's
// wavefront working set stays in one node's caches while other shards serve
// other tenants (Wittmann/Hager/Wellein: temporal blocking composes with
// node-level domain decomposition).
//
// Derivation mirrors Topology::pin_order's discipline: physical cores first
// (one thread per core keeps the full private L2 that Eq. 1/2 budget for),
// SMT siblings only after every core of the shard has one thread. When the
// topology is unknown (non-Linux, stripped sysfs), shards degrade to
// unpinned thread groups of equal size — correct, just without placement.

#include <cstddef>
#include <string>
#include <vector>

#include "sysinfo/topology.hpp"

namespace cats {

/// One NUMA-node shard: the CPUs a dispatched job may pin to, in pin order
/// (physical cores first, then SMT siblings).
struct ShardSpec {
  int id = 0;
  int node = 0;           ///< NUMA node the shard's CPUs live on (-1 unknown)
  std::vector<int> cpus;  ///< pin order; empty = run this shard unpinned
  int threads = 1;        ///< worker threads the shard schedules (>= 1)
};

struct ShardPlan {
  std::vector<ShardSpec> shards;
  bool pinned = false;  ///< shards carry real CPU lists (topology was known)

  int size() const { return static_cast<int>(shards.size()); }
  /// One-line summary for server logs, e.g. "2 shards: #0 node0 cpus 0-3 ...".
  std::string describe() const;
};

/// Partition the machine into shards. `want == 0` derives one shard per NUMA
/// node (the natural service layout); `want > 0` forces that many shards by
/// splitting the node-ordered core list into contiguous groups (a shard then
/// never straddles a node unless want exceeds the node count or a node's
/// cores don't divide evenly). `threads_per_shard == 0` gives every shard as
/// many workers as it has physical cores (minimum 1); > 0 overrides.
/// Unknown topology: `max(want, 1)` unpinned shards of
/// hardware_concurrency()/shards workers each.
ShardPlan derive_shards(const Topology& topo, int want = 0,
                        int threads_per_shard = 0);

}  // namespace cats
