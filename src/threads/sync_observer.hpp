#pragma once
// Observation hooks for the synchronization primitives (validation only).
//
// The dependence oracle (src/check) must see every happens-before edge the
// schedule actually establishes: a ProgressCell publish/wait_ge pair, a
// DoneFlag set/wait pair, or a barrier crossing. Rather than coupling the
// threading substrate to the checker, the primitives report each crossing
// through a thread-local SyncObserver. Null (the default) costs one
// thread-local load and a predictable branch per *synchronization*
// operation — never per stencil point — so measured runs are unaffected.
//
// Hook placement matters for soundness: the release hook fires BEFORE the
// releasing store (so the observer's clock state is recorded by the time a
// waiter can observe the value), and the acquire hook fires AFTER the wait
// condition is satisfied (including the fast path where no spin occurred —
// the happens-before edge is real either way).

#include <cstdint>

namespace cats {

class SyncObserver {
 public:
  SyncObserver() = default;
  SyncObserver(const SyncObserver&) = delete;
  SyncObserver& operator=(const SyncObserver&) = delete;
  virtual ~SyncObserver() = default;

  /// Release side: this thread is about to make `value` visible via `cell`.
  virtual void on_release(const void* cell, std::int64_t value) = 0;
  /// Acquire side: a wait on `cell` was satisfied at bound `value`.
  virtual void on_acquire(const void* cell, std::int64_t value) = 0;
  /// Barrier entry (release of everything this thread did so far).
  virtual void on_barrier_arrive(const void* barrier) = 0;
  /// Barrier exit (acquire of everything every participant did).
  virtual void on_barrier_leave(const void* barrier) = 0;
};

namespace detail {
inline thread_local SyncObserver* t_sync_observer = nullptr;
}  // namespace detail

inline SyncObserver* sync_observer() noexcept {
  return detail::t_sync_observer;
}
inline void set_sync_observer(SyncObserver* o) noexcept {
  detail::t_sync_observer = o;
}

}  // namespace cats
