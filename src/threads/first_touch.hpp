#pragma once
// NUMA first-touch initialization helper.
//
// Linux places a physical page on the NUMA node of the thread that first
// writes it. Serial init therefore lands every grid page on one node and
// every remote thread pays interconnect latency for its whole tile. The
// schemes partition the traversal dimension (y rows in 2D, z slabs in 3D)
// across threads, so initializing with the same slab partition — under the
// same pinning policy — places each page on the node of the thread that will
// sweep it. Kernels expose this as parallel_init (same signature as init plus
// RunOptions); grids allocate with kDeferFirstTouch so the init fill really
// is the first write.
//
// On machines with one NUMA node (or pinning unavailable) this degrades to a
// plain parallel fill: correct, just without a placement benefit.

#include <algorithm>
#include <cstdint>

#include "sysinfo/topology.hpp"
#include "threads/thread_pool.hpp"

namespace cats {

/// Run body(tid, lo, hi) on `threads` pool participants, where [lo, hi) is
/// tid's slab of [0, extent) extended by `ghost` at the domain ends (first
/// and last slab take the ghost rows/slabs, so the union covers the whole
/// allocation exactly once). `pin` is an explicit shard CPU list
/// (RunOptions::pin_cpus) overriding the policy when non-null.
template <class Body>
void first_touch_slabs(int extent, int ghost, int threads,
                       AffinityPolicy affinity, Body&& body,
                       const std::vector<int>* pin = nullptr) {
  const int P = std::clamp(threads, 1, std::max(1, extent));
  ThreadPool pool(P, affinity, nullptr, pin);
  pool.run([&](int tid) {
    std::int64_t lo = static_cast<std::int64_t>(extent) * tid / P;
    std::int64_t hi = static_cast<std::int64_t>(extent) * (tid + 1) / P;
    if (tid == 0) lo = -ghost;
    if (tid == P - 1) hi = extent + ghost;
    body(tid, static_cast<int>(lo), static_cast<int>(hi));
  });
}

}  // namespace cats
