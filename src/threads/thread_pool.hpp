#pragma once
// Persistent worker pool.
//
// The paper starts threads once and keeps them for the whole computation
// (Section II-B: "the threads are started once at the beginning and are
// persistent throughout the computation"). run() executes job(tid) on every
// participant; the calling thread acts as participant 0 so a 1-thread pool
// spawns nothing.

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

namespace cats {

class ThreadPool {
 public:
  /// Creates `threads - 1` workers; the caller is participant 0.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return n_; }

  /// Run job(tid) for tid in [0, size()); returns when all are finished.
  /// Exceptions thrown by workers are rethrown on the caller (first one wins).
  void run(const std::function<void(int)>& job);

 private:
  void worker_loop(int tid);

  int n_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace cats
