#pragma once
// Persistent worker pool.
//
// The paper starts threads once and keeps them for the whole computation
// (Section II-B: "the threads are started once at the beginning and are
// persistent throughout the computation"). run() executes job(tid) on every
// participant; the calling thread acts as participant 0 so a 1-thread pool
// spawns nothing.
//
// Pinning (opt-in, RunOptions::affinity): participant tid is bound to the
// tid-th CPU of Topology::pin_order(policy, threads), so the thread that
// sweeps a tile keeps its wavefront working set in one private cache and —
// together with first-touch init (threads/first_touch.hpp) — near its NUMA
// node. The caller is pinned too (its previous mask is restored on pool
// destruction). If the topology is unknown or the affinity syscall fails,
// the pool warns once per process and runs unpinned; results are unaffected.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "sysinfo/topology.hpp"
#include "threads/pin_latch.hpp"

namespace cats {

class ThreadPool {
 public:
  /// Creates `threads - 1` workers; the caller is participant 0. With a
  /// policy other than None, participants are pinned per `topology`
  /// (nullptr = the detected system_topology()). A non-empty `explicit_pin`
  /// (shard-constrained runs, src/serve) overrides the policy: participant
  /// tid is bound to explicit_pin[tid % size], so a pool larger than its
  /// shard's CPU set wraps around instead of spilling off-shard.
  explicit ThreadPool(int threads,
                      AffinityPolicy affinity = AffinityPolicy::None,
                      const Topology* topology = nullptr,
                      const std::vector<int>* explicit_pin = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return n_; }

  /// Participants successfully pinned (0 when unpinned or unsupported).
  /// Workers pin themselves on startup; join via run() before relying on a
  /// final value in tests — that join edge is what orders the reads (the
  /// latch itself is relaxed; see PinLatchProdOrders and cats_analyze).
  int pinned_count() const { return pinned_.count(); }

  /// Run job(tid) for tid in [0, size()); returns when all are finished.
  /// Exceptions thrown by workers are rethrown on the caller (first one wins).
  void run(const std::function<void(int)>& job);

 private:
  void worker_loop(int tid);
  /// Bind the calling thread to `cpu`; false if unsupported or refused.
  static bool pin_self(int cpu);

  int n_;
  std::vector<std::thread> workers_;

  std::vector<int> pin_order_;  ///< empty = unpinned
  PinLatch pinned_;
  bool caller_pinned_ = false;
  std::vector<unsigned char> saved_mask_;  ///< caller's pre-pin affinity mask

  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace cats
