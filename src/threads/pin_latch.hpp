#pragma once
// Pin-handshake latch: the thread pool's "how many participants actually got
// pinned" counter (threads/thread_pool.hpp). The caller and each worker
// note() after a successful sched_setaffinity; pinned_count() is documented
// to be read only after a run()/join edge.
//
// Extracted into a shim-templated primitive so the model checker
// (src/analysis) can explore the full handshake — increments racing a
// counting reader, with and without the join edge — end-to-end.

#include <atomic>

#include "threads/sync_shim.hpp"

namespace cats {

/// Orders of BasicPinLatch's two sites.
///
/// Historical note, kept because it is the checker's flagship minimality
/// finding: these sites shipped as acq_rel/acquire ("pairs with the workers'
/// acq_rel increments"). `cats_analyze --minimality` proves the strength
/// unnecessary — the only reads the pool documents are ordered after the
/// workers' increments by run()'s join (mutex + condition variable), which
/// already carries the happens-before edge, and the checker's pin-handshake
/// scenario passes with every site relaxed (while flagging the variant that
/// *removes* the join edge). Production therefore runs relaxed; the
/// acq_rel variant is still swept as a documented-safe strengthening.
struct PinLatchProdOrders {
  // order: relaxed — counting handshake only; the happens-before edge to
  // readers is run()'s join, proven sufficient by cats_analyze --minimality
  // (pin_handshake scenario), which also shows the former acq_rel here
  // bought nothing.
  static constexpr std::memory_order note() {
    return std::memory_order_relaxed;
  }
  // order: relaxed — see note(); readers are post-join by contract, and the
  // checker's counterexample for the no-join variant is what documents the
  // contract rather than the order carrying it.
  static constexpr std::memory_order read() {
    return std::memory_order_relaxed;
  }
};

template <class Shim, class O = PinLatchProdOrders>
class BasicPinLatch {
 public:
  /// Record one successfully pinned participant.
  void note() { count_.fetch_add(1, O::note()); }

  /// Participants noted so far; exact only after a join edge from every
  /// noting thread (ThreadPool::run returning, or pool destruction).
  int count() const { return count_.load(O::read()); }

 private:
  typename Shim::template Atomic<int> count_{0};
};

using PinLatch = BasicPinLatch<RealSyncShim>;

}  // namespace cats
