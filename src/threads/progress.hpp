#pragma once
// Tile-to-tile synchronization cells.
//
// CATS replaces global barriers inside a time chunk with point-to-point
// waits: a thread publishes the index of the last wavefront it completed and
// its neighbor waits for that counter to pass a bound (split-tiling in
// CATS1), or a diamond publishes a done flag that the two diamonds above it
// wait on (CATS2). Cells are padded to a cache line to avoid false sharing.

#include <atomic>
#include <cstdint>
#include <thread>

namespace cats {

/// Monotone progress counter: publish() with release, wait_ge() with acquire.
struct alignas(64) ProgressCell {
  std::atomic<std::int64_t> value{INT64_MIN};

  void reset() { value.store(INT64_MIN, std::memory_order_relaxed); }

  void publish(std::int64_t v) { value.store(v, std::memory_order_release); }

  std::int64_t load() const { return value.load(std::memory_order_acquire); }

  /// Blocks until the published value reaches `bound`; returns the number of
  /// spin/yield iterations (0 = the condition already held).
  std::int64_t wait_ge(std::int64_t bound) const {
    std::int64_t spins = 0;
    while (value.load(std::memory_order_acquire) < bound) {
      if (++spins > kSpinLimit) std::this_thread::yield();
    }
    return spins;
  }

  static constexpr int kSpinLimit = 1024;
};

/// One-shot done flag (per diamond tile).
struct DoneFlag {
  std::atomic<uint8_t> done{0};

  void set() { done.store(1, std::memory_order_release); }
  bool test() const { return done.load(std::memory_order_acquire) != 0; }

  /// Blocks until set; returns the spin/yield iteration count (0 = no wait).
  std::int64_t wait() const {
    std::int64_t spins = 0;
    while (!test()) {
      if (++spins > ProgressCell::kSpinLimit) std::this_thread::yield();
    }
    return spins;
  }
};

}  // namespace cats
