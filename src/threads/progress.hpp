#pragma once
// Tile-to-tile synchronization cells.
//
// CATS replaces global barriers inside a time chunk with point-to-point
// waits: a thread publishes the index of the last wavefront it completed and
// its neighbor waits for that counter to pass a bound (split-tiling in
// CATS1), or a diamond publishes a done flag that the two diamonds above it
// wait on (CATS2). Cells are padded to a cache line to avoid false sharing.
//
// Waits are adaptive: probes back off with exponentially many PAUSEs (see
// threads/cpu_pause.hpp) before escalating to yield at kSpinLimit, and the
// slow path measures its own wall-clock cost so RunStats can report wait
// *time*, not just an iteration count. The fast path (condition already
// satisfied) touches no clock.
//
// Validation: every release (publish/set) and every satisfied wait reports a
// happens-before edge through the thread-local SyncObserver so the
// dependence oracle (src/check) can reconstruct the ordering the schedule
// actually established. The release hook fires before the releasing store;
// the acquire hook fires after the wait condition holds — including the
// fast path, where the edge is just as real.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "threads/cpu_pause.hpp"
#include "threads/sync_observer.hpp"

namespace cats {

/// Outcome of one wait: probe iterations and wall-clock nanoseconds spent.
/// Both are 0 when the condition already held on the first probe.
struct WaitResult {
  std::int64_t spins = 0;
  std::int64_t ns = 0;
};

namespace detail {

/// Shared adaptive-wait loop: probes `satisfied()` with exponential PAUSE
/// backoff, escalating to yield after ProgressCell::kSpinLimit probes. The
/// clock starts only once the first probe fails, so uncontended waits cost
/// one load.
template <class Satisfied>
WaitResult adaptive_wait(Satisfied&& satisfied, int spin_limit) {
  WaitResult r;
  if (satisfied()) return r;
  const auto start = std::chrono::steady_clock::now();
  int exponent = 0;
  do {
    if (++r.spins > spin_limit) {
      std::this_thread::yield();
    } else {
      backoff_pause(exponent);
    }
  } while (!satisfied());
  r.ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count();
  return r;
}

}  // namespace detail

/// Monotone progress counter: publish() with release, wait_ge() with acquire.
struct alignas(64) ProgressCell {
  std::atomic<std::int64_t> value{INT64_MIN};

  // order: relaxed — reset happens only between phases, under a barrier.
  void reset() { value.store(INT64_MIN, std::memory_order_relaxed); }

  void publish(std::int64_t v) {
    if (SyncObserver* o = sync_observer()) o->on_release(this, v);
    // order: release — pairs with wait_ge's acquire; waiters see all writes
    // up to the published wavefront.
    value.store(v, std::memory_order_release);
  }

  // order: acquire — pairs with publish's release.
  std::int64_t load() const { return value.load(std::memory_order_acquire); }

  /// Blocks until the published value reaches `bound`.
  WaitResult wait_ge(std::int64_t bound) const {
    const WaitResult r = detail::adaptive_wait(
        // order: acquire — pairs with publish's release.
        [&] { return value.load(std::memory_order_acquire) >= bound; },
        kSpinLimit);
    if (SyncObserver* o = sync_observer()) o->on_acquire(this, bound);
    return r;
  }

  static constexpr int kSpinLimit = 1024;
};

/// One-shot done flag (per diamond tile).
struct DoneFlag {
  std::atomic<uint8_t> done{0};

  void set() {
    if (SyncObserver* o = sync_observer()) o->on_release(this, 1);
    // order: release — pairs with test's acquire; the tile's writes are
    // visible before the flag reads set.
    done.store(1, std::memory_order_release);
  }
  // order: acquire — pairs with set's release.
  bool test() const { return done.load(std::memory_order_acquire) != 0; }

  /// Blocks until set.
  WaitResult wait() const {
    const WaitResult r = detail::adaptive_wait([&] { return test(); },
                                               ProgressCell::kSpinLimit);
    if (SyncObserver* o = sync_observer()) o->on_acquire(this, 1);
    return r;
  }
};

}  // namespace cats
