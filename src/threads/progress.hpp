#pragma once
// Tile-to-tile synchronization cells.
//
// CATS replaces global barriers inside a time chunk with point-to-point
// waits: a thread publishes the index of the last wavefront it completed and
// its neighbor waits for that counter to pass a bound (split-tiling in
// CATS1), or a diamond publishes a done flag that the two diamonds above it
// wait on (CATS2). Cells are padded to a cache line to avoid false sharing.
//
// Waits are adaptive: probes back off with exponentially many PAUSEs (see
// threads/cpu_pause.hpp) before escalating to yield at kSpinLimit, and the
// slow path measures its own wall-clock cost so RunStats can report wait
// *time*, not just an iteration count. The fast path (condition already
// satisfied) touches no clock.
//
// Validation: every release (publish/set) and every satisfied wait reports a
// happens-before edge through the thread-local SyncObserver so the
// dependence oracle (src/check) can reconstruct the ordering the schedule
// actually established. The release hook fires before the releasing store;
// the acquire hook fires after the wait condition holds — including the
// fast path, where the edge is just as real.
//
// Both cells are shim-templated (threads/sync_shim.hpp): the model checker
// (src/analysis) explores publish/wait_ge and set/test end-to-end under the
// weak-memory interpreter and proves each order below minimal.

#include <atomic>
#include <cstdint>
#include <utility>

#include "threads/sync_shim.hpp"

namespace cats {

/// Outcome of one wait: probe iterations and wall-clock nanoseconds spent.
/// Both are 0 when the condition already held on the first probe.
struct WaitResult {
  std::int64_t spins = 0;
  std::int64_t ns = 0;
};

namespace detail {

/// Shared adaptive-wait loop: probes `satisfied()` with exponential PAUSE
/// backoff, escalating to yield after ProgressCell::kSpinLimit probes. The
/// clock starts only once the first probe fails, so uncontended waits cost
/// one load. Templated on the shim so simulated runs neither spin nor touch
/// a real clock (SimShim::pause parks the thread; now_ns() returns 0).
template <class Shim, class Satisfied>
WaitResult basic_adaptive_wait(Satisfied&& satisfied, int spin_limit) {
  WaitResult r;
  if (satisfied()) return r;
  const std::int64_t start = Shim::now_ns();
  int exponent = 0;
  do {
    if (++r.spins > spin_limit) {
      Shim::yield();
    } else {
      Shim::pause(exponent);
    }
  } while (!satisfied());
  r.ns = Shim::now_ns() - start;
  return r;
}

template <class Satisfied>
WaitResult adaptive_wait(Satisfied&& satisfied, int spin_limit) {
  return basic_adaptive_wait<RealSyncShim>(std::forward<Satisfied>(satisfied),
                                           spin_limit);
}

}  // namespace detail

/// Orders of BasicProgressCell's sites, verified minimal by the checker:
/// weakening publish or either acquire load loses the happens-before edge a
/// SyncEdge{ProgressGE} assumes, and the checker's consumer scenario then
/// reads the producer's tile data racily (counterexample trace).
struct ProgressCellProdOrders {
  // order: relaxed — reset happens only between phases, under a barrier.
  static constexpr std::memory_order reset() {
    return std::memory_order_relaxed;
  }
  // order: release — pairs with wait_ge's acquire; waiters see all writes
  // up to the published wavefront.
  static constexpr std::memory_order publish() {
    return std::memory_order_release;
  }
  // order: acquire — pairs with publish's release.
  static constexpr std::memory_order load() {
    return std::memory_order_acquire;
  }
  // order: acquire — pairs with publish's release.
  static constexpr std::memory_order wait() {
    return std::memory_order_acquire;
  }
};

/// Monotone progress counter: publish() with release, wait_ge() with acquire.
template <class Shim, class O = ProgressCellProdOrders>
struct alignas(64) BasicProgressCell {
  typename Shim::template Atomic<std::int64_t> value{INT64_MIN};

  void reset() { value.store(INT64_MIN, O::reset()); }

  void publish(std::int64_t v) {
    if (SyncObserver* o = Shim::observer()) o->on_release(this, v);
    value.store(v, O::publish());
  }

  std::int64_t load() const { return value.load(O::load()); }

  /// Blocks until the published value reaches `bound`.
  WaitResult wait_ge(std::int64_t bound) const {
    const WaitResult r = detail::basic_adaptive_wait<Shim>(
        [&] { return value.load(O::wait()) >= bound; }, kSpinLimit);
    if (SyncObserver* o = Shim::observer()) o->on_acquire(this, bound);
    return r;
  }

  static constexpr int kSpinLimit = 1024;
};

using ProgressCell = BasicProgressCell<RealSyncShim>;

/// Orders of BasicDoneFlag's two sites; checker-minimal (set→test is the
/// entire Done SyncEdge, so either weakening races the published tile).
struct DoneFlagProdOrders {
  // order: release — pairs with test's acquire; the tile's writes are
  // visible before the flag reads set.
  static constexpr std::memory_order set() {
    return std::memory_order_release;
  }
  // order: acquire — pairs with set's release.
  static constexpr std::memory_order test() {
    return std::memory_order_acquire;
  }
};

/// One-shot done flag (per diamond tile).
template <class Shim, class O = DoneFlagProdOrders>
struct BasicDoneFlag {
  typename Shim::template Atomic<std::uint8_t> done{0};

  void set() {
    if (SyncObserver* o = Shim::observer()) o->on_release(this, 1);
    done.store(1, O::set());
  }
  bool test() const { return done.load(O::test()) != 0; }

  /// Blocks until set.
  WaitResult wait() const {
    const WaitResult r = detail::basic_adaptive_wait<Shim>(
        [&] { return test(); }, BasicProgressCell<Shim>::kSpinLimit);
    if (SyncObserver* o = Shim::observer()) o->on_acquire(this, 1);
    return r;
  }
};

using DoneFlag = BasicDoneFlag<RealSyncShim>;

}  // namespace cats
