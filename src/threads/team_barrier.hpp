#pragma once
// Sense-reversing barrier for one intra-tile *team* (wave engine).
//
// CATS1/CATS2 3-D tiles can be wide enough in y that one thread per tile
// leaves the wavefront's cache-resident working set underused. The wave
// engine (src/wave) splits such a tile's slabs across a small team of m
// workers; the team crosses this barrier at every slab boundary so that a
// member never starts slab k+1 before every member has finished slab k —
// exactly the happens-before the single-threaded slab order provided.
//
// Differences from SpinBarrier (threads/barrier.hpp):
//   * Instantiated per team and crossed once per *slab*, not once per chunk,
//     so the hot fields are cache-line padded against false sharing between
//     neighbouring teams in a vector of barriers.
//   * m == 1 degenerates to a no-op (no atomics, no observer edges): a
//     one-member team is the classic per-tile executor and needs no intra-
//     tile ordering beyond program order.
//
// The observer hooks make the barrier SyncEdge-compatible for the
// dependence oracle (src/check): a crossing is an all-to-all edge among the
// team's members, reported exactly like SpinBarrier's phase barrier, so
// oracle runs see every intra-team happens-before edge the schedule relies
// on.
//
// Like SpinBarrier, the body is shim-templated so the model checker
// (src/analysis) explores this exact algorithm — including the n_ <= 1
// degenerate early-out — under the weak-memory interpreter.

#include <atomic>

#include "threads/progress.hpp"  // WaitResult
#include "threads/sync_shim.hpp"

namespace cats {

/// Orders of BasicTeamBarrier's sites; the algorithm and the minimality
/// argument are identical to SpinBarrierProdOrders (the checker sweeps both
/// primitives independently since they are distinct template bodies).
struct TeamBarrierProdOrders {
  // order: relaxed — own thread observed sense_ last round; ordering comes
  // from the acq_rel arrival below and the release/acquire on sense_.
  static constexpr std::memory_order sense_peek() {
    return std::memory_order_relaxed;
  }
  // order: acq_rel — every arrival joins the prior arrivals' writes so the
  // last arriver's sense_ release publishes all pre-barrier effects.
  static constexpr std::memory_order arrive() {
    return std::memory_order_acq_rel;
  }
  // order: relaxed — only the last arriver writes; next round's arrivals
  // are ordered behind the sense_ release below.
  static constexpr std::memory_order count_reset() {
    return std::memory_order_relaxed;
  }
  // order: release — pairs with the acquire spin; departing waiters see
  // all pre-barrier writes.
  static constexpr std::memory_order sense_publish() {
    return std::memory_order_release;
  }
  // order: acquire — pairs with the last arriver's release of sense_.
  static constexpr std::memory_order sense_wait() {
    return std::memory_order_acquire;
  }
};

template <class Shim, class O = TeamBarrierProdOrders>
class BasicTeamBarrier {
 public:
  explicit BasicTeamBarrier(int participants) : n_(participants) {}

  BasicTeamBarrier(const BasicTeamBarrier&) = delete;
  BasicTeamBarrier& operator=(const BasicTeamBarrier&) = delete;

  int participants() const noexcept { return n_; }

  /// Returns the idle-spin cost of this crossing (spins/ns both 0 for the
  /// last arriver and for uncontended waits), structured like
  /// detail::basic_adaptive_wait: the clock starts only after the first
  /// failed sense check, so a member that never waits never touches it.
  WaitResult arrive_and_wait() {
    WaitResult r;
    if (n_ <= 1) return r;  // degenerate team: program order suffices
    SyncObserver* const obs = Shim::observer();
    if (obs) obs->on_barrier_arrive(this);
    const bool my_sense = !sense_.load(O::sense_peek());
    if (count_.fetch_add(1, O::arrive()) == n_ - 1) {
      count_.store(0, O::count_reset());
      sense_.store(my_sense, O::sense_publish());
      if (obs) obs->on_barrier_leave(this);
      return r;
    }
    if (sense_.load(O::sense_wait()) != my_sense) {
      const std::int64_t start = Shim::now_ns();
      int exponent = 0;
      do {
        if (++r.spins > kSpinLimit) {
          Shim::yield();
        } else {
          Shim::pause(exponent);
        }
      } while (sense_.load(O::sense_wait()) != my_sense);
      r.ns = Shim::now_ns() - start;
    }
    if (obs) obs->on_barrier_leave(this);
    return r;
  }

 private:
  // Slab barriers are crossed orders of magnitude more often than phase
  // barriers; keep the spin short — a team's members finish their row spans
  // within a few microseconds of each other by construction.
  static constexpr int kSpinLimit = 1024;
  const int n_;
  alignas(64) typename Shim::template Atomic<int> count_{0};
  alignas(64) typename Shim::template Atomic<bool> sense_{false};
};

using TeamBarrier = BasicTeamBarrier<RealSyncShim>;

}  // namespace cats
