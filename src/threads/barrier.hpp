#pragma once
// Sense-reversing barrier for a fixed set of persistent worker threads.
//
// The paper synchronizes all threads only between time chunks ("synchronize
// threads" in Alg. 1/2), so the barrier is not on the critical path; we spin
// briefly for the common fast case and yield afterwards so oversubscribed
// runs (more threads than cores) still make progress.
//
// The body is templated on a substrate shim (threads/sync_shim.hpp) and an
// orders provider so the model checker (src/analysis) can run this exact
// algorithm under a simulated weak-memory interpreter and re-check every
// order one weakening step down. Production uses the aliases at the bottom;
// the orders are `static constexpr`, so codegen is unchanged.

#include <atomic>

#include "threads/sync_shim.hpp"

namespace cats {

/// Memory orders of BasicSpinBarrier's five annotated sites, as verified
/// and proven minimal by `cats_analyze --minimality` (src/analysis): every
/// one-step weakening of arrive/sense_publish/sense_wait yields a
/// counterexample interleaving with a post-barrier data race.
struct SpinBarrierProdOrders {
  // order: relaxed — own thread observed sense_ last round; read-read
  // coherence pins the peek at/after that observation, and ordering comes
  // from the acq_rel arrival below and the release/acquire on sense_.
  static constexpr std::memory_order sense_peek() {
    return std::memory_order_relaxed;
  }
  // order: acq_rel — every arrival joins the prior arrivals' writes so the
  // last arriver's sense_ release publishes all pre-barrier effects.
  // Checker-minimal: acquire-only loses the release-sequence link between
  // arrivals, release-only leaves the last arriver blind to them.
  static constexpr std::memory_order arrive() {
    return std::memory_order_acq_rel;
  }
  // order: relaxed — only the last arriver writes; next round's arrivals
  // are ordered behind the sense_ release below.
  static constexpr std::memory_order count_reset() {
    return std::memory_order_relaxed;
  }
  // order: release — pairs with the acquire spin; departing waiters see
  // all pre-barrier writes.
  static constexpr std::memory_order sense_publish() {
    return std::memory_order_release;
  }
  // order: acquire — pairs with the last arriver's release of sense_.
  static constexpr std::memory_order sense_wait() {
    return std::memory_order_acquire;
  }
};

template <class Shim, class O = SpinBarrierProdOrders>
class BasicSpinBarrier {
 public:
  explicit BasicSpinBarrier(int participants) : n_(participants) {}

  BasicSpinBarrier(const BasicSpinBarrier&) = delete;
  BasicSpinBarrier& operator=(const BasicSpinBarrier&) = delete;

  void arrive_and_wait() {
    // Validation: a barrier is an all-to-all edge — every participant's
    // arrival happens-before every participant's departure.
    SyncObserver* const obs = Shim::observer();
    if (obs) obs->on_barrier_arrive(this);
    const bool my_sense = !sense_.load(O::sense_peek());
    if (count_.fetch_add(1, O::arrive()) == n_ - 1) {
      count_.store(0, O::count_reset());
      sense_.store(my_sense, O::sense_publish());
      if (obs) obs->on_barrier_leave(this);
      return;
    }
    int spins = 0, exponent = 0;
    while (sense_.load(O::sense_wait()) != my_sense) {
      if (++spins > kSpinLimit) {
        Shim::yield();
      } else {
        Shim::pause(exponent);
      }
    }
    if (obs) obs->on_barrier_leave(this);
  }

 private:
  static constexpr int kSpinLimit = 1024;
  const int n_;
  typename Shim::template Atomic<int> count_{0};
  typename Shim::template Atomic<bool> sense_{false};
};

using SpinBarrier = BasicSpinBarrier<RealSyncShim>;

}  // namespace cats
