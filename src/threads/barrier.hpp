#pragma once
// Sense-reversing barrier for a fixed set of persistent worker threads.
//
// The paper synchronizes all threads only between time chunks ("synchronize
// threads" in Alg. 1/2), so the barrier is not on the critical path; we spin
// briefly for the common fast case and yield afterwards so oversubscribed
// runs (more threads than cores) still make progress.

#include <atomic>
#include <cstdint>
#include <thread>

#include "threads/cpu_pause.hpp"
#include "threads/sync_observer.hpp"

namespace cats {

class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) : n_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() {
    // Validation: a barrier is an all-to-all edge — every participant's
    // arrival happens-before every participant's departure.
    SyncObserver* const obs = sync_observer();
    if (obs) obs->on_barrier_arrive(this);
    // order: relaxed — own thread flipped sense_ last; ordering comes from
    // the acq_rel arrival below and the release/acquire on sense_.
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    // order: acq_rel — every arrival joins the prior arrivals' writes so the
    // last arriver's sense_ release publishes all pre-barrier effects.
    if (count_.fetch_add(1, std::memory_order_acq_rel) == n_ - 1) {
      // order: relaxed — only the last arriver writes; next round's arrivals
      // are ordered behind the sense_ release below.
      count_.store(0, std::memory_order_relaxed);
      // order: release — pairs with the acquire spin; departing waiters see
      // all pre-barrier writes.
      sense_.store(my_sense, std::memory_order_release);
      if (obs) obs->on_barrier_leave(this);
      return;
    }
    int spins = 0, exponent = 0;
    // order: acquire — pairs with the last arriver's release of sense_.
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (++spins > kSpinLimit) {
        std::this_thread::yield();
      } else {
        backoff_pause(exponent);
      }
    }
    if (obs) obs->on_barrier_leave(this);
  }

 private:
  static constexpr int kSpinLimit = 1024;
  const int n_;
  std::atomic<int> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace cats
