#pragma once
// Spin-wait pause primitive and exponential backoff policy.
//
// A tight atomic-load loop saturates the core's load ports and — on SMT —
// steals issue slots from the sibling hyperthread doing useful stencil work.
// `_mm_pause` (x86 PAUSE) de-pipelines the spin and hints the memory-order
// machinery; on other ISAs we fall back to a compiler barrier. Waiters back
// off exponentially (1, 2, 4, ... pauses per probe) so short waits stay in
// user space at full reactivity while long waits consume almost no issue
// bandwidth before escalating to yield.

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cats {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Pause 2^k times, saturating at `cap` pauses per call.
inline void backoff_pause(int& exponent, int cap = 64) {
  int n = 1 << exponent;
  if (n > cap) n = cap;
  for (int i = 0; i < n; ++i) cpu_pause();
  if ((1 << exponent) < cap) ++exponent;
}

}  // namespace cats
