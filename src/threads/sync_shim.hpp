#pragma once
// Substrate shim for the synchronization primitives.
//
// Every primitive in src/threads is written against a small policy type
// rather than against std::atomic directly:
//
//   Shim::Atomic<T>   the atomic cell type (std::atomic<T> in production)
//   Shim::pause(e)    one backoff step of a spin loop (exponential PAUSE)
//   Shim::yield()     scheduler escalation after kSpinLimit probes
//   Shim::observer()  the thread-local SyncObserver (validation hooks)
//   Shim::now_ns()    monotonic clock for WaitResult accounting
//
// Production instantiates each primitive with RealSyncShim below; the
// aliases (SpinBarrier, ProgressCell, ...) are unchanged, and because every
// memory order is a `static constexpr` of the default orders provider, the
// generated code is identical to the pre-shim hand-written primitives.
//
// The point of the indirection is src/analysis: the model checker
// re-instantiates the *same* primitive bodies over a simulated atomic type
// (analysis/sim_shim.hpp) whose loads enumerate every value the C++11
// memory model permits, and over a runtime orders provider so each
// annotated order can be weakened one step and re-checked. What the checker
// proves is therefore a statement about this exact code, not about a
// transliteration of it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "threads/cpu_pause.hpp"
#include "threads/sync_observer.hpp"

namespace cats {

struct RealSyncShim {
  template <class T>
  using Atomic = std::atomic<T>;

  static void pause(int& exponent) { backoff_pause(exponent); }
  static void yield() { std::this_thread::yield(); }
  static SyncObserver* observer() noexcept { return sync_observer(); }
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace cats
