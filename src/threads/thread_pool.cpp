#include "threads/thread_pool.hpp"

#include <cstdio>
#include <cstring>

#include "check/check.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cats {
namespace {

/// Pinning failures degrade to the unpinned scheduler; say so once per
/// process so benchmarks are not silently unpinned.
void warn_unpinned_once(const char* why) {
  static std::atomic<bool> warned{false};
  // order: relaxed — one-shot flag; nothing is published through it.
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, "cats: thread pinning unavailable (%s); running unpinned\n",
                 why);
  }
}

}  // namespace

bool ThreadPool::pin_self(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ThreadPool::ThreadPool(int threads, AffinityPolicy affinity,
                       const Topology* topology,
                       const std::vector<int>* explicit_pin)
    : n_(threads) {
  CATS_CHECK(threads >= 1, "ThreadPool threads=%d must be >= 1", threads);

  const bool explicit_requested =
      explicit_pin != nullptr && !explicit_pin->empty();
  if (explicit_requested) {
    // Shard-constrained run (src/serve): wrap the shard's CPU list over the
    // participants, overriding the policy path.
    pin_order_.resize(static_cast<std::size_t>(n_));
    for (int tid = 0; tid < n_; ++tid) {
      pin_order_[static_cast<std::size_t>(tid)] =
          (*explicit_pin)[static_cast<std::size_t>(tid) % explicit_pin->size()];
    }
  } else if (affinity != AffinityPolicy::None) {
    const Topology& topo = topology ? *topology : system_topology();
    pin_order_ = topo.pin_order(affinity, n_);
  }

  if (explicit_requested || affinity != AffinityPolicy::None) {
    if (pin_order_.empty()) {
      warn_unpinned_once("topology unknown");
    } else {
#if defined(__linux__)
      // Save the caller's mask so destruction leaves the thread as found.
      cpu_set_t prev;
      CPU_ZERO(&prev);
      if (pthread_getaffinity_np(pthread_self(), sizeof(prev), &prev) == 0) {
        saved_mask_.assign(reinterpret_cast<unsigned char*>(&prev),
                           reinterpret_cast<unsigned char*>(&prev) + sizeof(prev));
      }
#endif
      if (pin_self(pin_order_[0])) {
        caller_pinned_ = true;
        pinned_.note();
      } else {
        warn_unpinned_once("sched_setaffinity failed");
        pin_order_.clear();
        saved_mask_.clear();
      }
    }
  }

  workers_.reserve(static_cast<std::size_t>(n_ - 1));
  for (int tid = 1; tid < n_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();

#if defined(__linux__)
  if (caller_pinned_ && saved_mask_.size() == sizeof(cpu_set_t)) {
    cpu_set_t prev;
    std::memcpy(&prev, saved_mask_.data(), sizeof(prev));
    pthread_setaffinity_np(pthread_self(), sizeof(prev), &prev);
  }
#endif
}

void ThreadPool::run(const std::function<void(int)>& job) {
  if (n_ == 1) {
    job(0);
    return;
  }
  {
    std::lock_guard lock(m_);
    job_ = &job;
    remaining_ = n_ - 1;
    error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();

  try {
    job(0);
  } catch (...) {
    // Keep the pool consistent: wait for workers even if participant 0 threw.
    std::unique_lock lock(m_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    throw;
  }

  std::unique_lock lock(m_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::worker_loop(int tid) {
  if (static_cast<std::size_t>(tid) < pin_order_.size()) {
    if (pin_self(pin_order_[static_cast<std::size_t>(tid)])) {
      pinned_.note();
    } else {
      warn_unpinned_once("sched_setaffinity failed");
    }
  }
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock lock(m_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      std::lock_guard lock(m_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(m_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace cats
