#include "threads/thread_pool.hpp"

#include <cassert>

namespace cats {

ThreadPool::ThreadPool(int threads) : n_(threads) {
  assert(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(n_ - 1));
  for (int tid = 1; tid < n_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(int)>& job) {
  if (n_ == 1) {
    job(0);
    return;
  }
  {
    std::lock_guard lock(m_);
    job_ = &job;
    remaining_ = n_ - 1;
    error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();

  try {
    job(0);
  } catch (...) {
    // Keep the pool consistent: wait for workers even if participant 0 threw.
    std::unique_lock lock(m_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    throw;
  }

  std::unique_lock lock(m_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void ThreadPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock lock(m_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    try {
      (*job)(tid);
    } catch (...) {
      std::lock_guard lock(m_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(m_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace cats
