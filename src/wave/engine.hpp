#pragma once
// In-cache wavefront engine: per-worker slab walkers that turn the plan
// executor's slab stream into fused temporal micro-kernel groups, streaming
// (non-temporal) write-backs, and leading-edge prefetch hints.
//
// The executor (plan/execute.hpp) copies one walker per worker thread, so
// chain state below is thread-private, and calls end_tile() after each
// tile's slab enumeration, before the tile's progress/done publish — which
// is where pending groups flush and pending NT stores are fenced.
//
// Chain detection: a slab extends the current group iff it is the next link
// of the same wavefront chain — same Slab::wavefront, timestep exactly one
// up, traversal position exactly s down. That matches a CATS1 column's tau
// walk and a CATS2/3 tube's per-w time run; naive/PluTo SkewedBlock slabs
// carry wavefront = t and never chain. Groups cap at the resolved unroll
// (<= 4) and flush on any break, so reordering never crosses a tile's entry
// waits or its publish.
//
// Fusion is resolved off when it cannot be proven equivalent or observed
// soundly: under an attached dependence oracle (note_row would stamp whole
// rows out of the oracle's expected order), for team-split tiles (members
// see partial slabs), for kernels not opting in (wave/microkernel.hpp), and
// for the scalar baseline path (measured as plain C on purpose).
//
// NT stores apply only to *trailing* slabs (Slab::trailing: the tile's top
// timestep in a wavefront scheme) of NT-eligible plans
// (plan/verify.hpp nt_store_eligible) and require one store_fence() before
// the owning tile publishes: WC stores are not ordered by the publish's
// release store alone. The walker tracks whether any NT store was issued
// since the last fence and end_tile() fences exactly then.

#include <cstdint>

#include "check/oracle.hpp"
#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/plan.hpp"
#include "plan/verify.hpp"
#include "simd/vecd.hpp"
#include "wave/microkernel.hpp"

namespace cats::wave {

/// Largest fused group: 4 timesteps — past that, live rows and the register
/// working set outgrow what the micro-kernels can hold (core/options.hpp
/// unroll_t).
inline constexpr int kMaxUnroll = 4;
// core/selector.cpp sanitize_unroll_t hardcodes this bound (the selector
// layer does not include the wave engine); keep them in sync.
static_assert(kMaxUnroll == 4);

namespace detail {

inline int clamp_unroll(int u) {
  return u < 1 ? 1 : (u > kMaxUnroll ? kMaxUnroll : u);
}

/// Shared gate for both walkers: fusion needs no oracle attached, no
/// explicit off switch, and a one-member team (members see y-partial slabs
/// whose chain links would not cover the stagger proof's full rows). MWD
/// groups are exempt from the team-width bail: members receive *full-width*
/// wavefront slabs (whole chain links, wave/mwd.hpp), so the stagger proof
/// applies unchanged.
inline int resolve_unroll(const plan_ir::TilePlan& p, const RunOptions& opt) {
  if (opt.oracle != nullptr || opt.unroll_t == 1) return 1;
  if (p.scheme != Scheme::Mwd &&
      wave_team_width(p.dims, p.scheme, opt) != 1) {
    return 1;
  }
  return clamp_unroll(opt.unroll_t == 0 ? kMaxUnroll : opt.unroll_t);
}

}  // namespace detail

template <bool Scalar, class K>
class WaveWalker2D {
 public:
  WaveWalker2D(K& k, const plan_ir::TilePlan& p, const RunOptions& opt)
      : k_(&k), slope_(p.slope) {
    if constexpr (!Scalar) {
      pf_ = opt.prefetch_dist > 0 ? opt.prefetch_dist : 0;
      if constexpr (kernel_has_row_nt_2d<K>) {
        nt_ = opt.nt_stores && plan_ir::nt_store_eligible(p);
      }
      if constexpr (kernel_has_process_stages<K>) {
        unroll_ = detail::resolve_unroll(p, opt);
      }
      if constexpr (kernel_has_process_stages_tv<K>) {
        tv_ = opt.temporal_vec;
      }
    }
  }

  void operator()(const plan_ir::Slab& sl) {
    if constexpr (!Scalar) {
      if constexpr (kernel_has_prefetch_front<K>) {
        if (sl.front && pf_ > 0) {
          k_->prefetch_front(sl.t, static_cast<int>(sl.box.ylo) + 1, pf_);
        }
      }
    }
    const int x0 = static_cast<int>(sl.box.xlo);
    const int x1 = static_cast<int>(sl.box.xhi) + 1;
    if constexpr (!Scalar && kernel_has_process_stages<K>) {
      if (unroll_ > 1 && sl.box.ylo == sl.box.yhi) {
        const int y = static_cast<int>(sl.box.ylo);
        if (n_ > 0 &&
            (n_ == unroll_ || sl.wavefront != wave_ ||
             sl.t != buf_[n_ - 1].t + 1 || y != buf_[n_ - 1].y - slope_)) {
          flush();
        }
        if (n_ == 0) wave_ = sl.wavefront;
        buf_[n_++] = WaveStage{sl.t, y, x0, x1, nt_ && sl.trailing};
        return;
      }
    }
    flush();
    for (std::int64_t y = sl.box.ylo; y <= sl.box.yhi; ++y) {
      row(sl, static_cast<int>(y), x0, x1);
    }
  }

  /// Flush the pending group and fence pending NT stores; the executor calls
  /// this after each tile's slabs, before the tile publishes.
  void end_tile() {
    flush();
    if constexpr (!Scalar) {
      if (fence_pending_) {
        simd::store_fence();
        fence_pending_ = false;
      }
    }
  }

 private:
  void row(const plan_ir::Slab& sl, int y, int x0, int x1) {
    check::note_row(sl.t, y, 0, x0, x1);
    if constexpr (Scalar) {
      k_->process_row_scalar(sl.t, y, x0, x1);
    } else {
      if constexpr (kernel_has_row_nt_2d<K>) {
        if (nt_ && sl.trailing) {
          k_->process_row_nt(sl.t, y, x0, x1);
          fence_pending_ = true;
          return;
        }
      }
      k_->process_row(sl.t, y, x0, x1);
    }
  }

  void flush() {
    if constexpr (!Scalar && kernel_has_process_stages<K>) {
      if (n_ == 0) return;
      if (n_ == 1) {
        // Degenerate chain: the plain row path, no stagger needed.
        const WaveStage& s = buf_[0];
        if constexpr (kernel_has_row_nt_2d<K>) {
          if (s.nt) {
            k_->process_row_nt(s.t, s.y, s.x0, s.x1);
            fence_pending_ = true;
            n_ = 0;
            return;
          }
        }
        k_->process_row(s.t, s.y, s.x0, s.x1);
      } else {
        if constexpr (kernel_has_process_stages_tv<K>) {
          if (tv_) {
            k_->process_stages_tv(buf_, n_);
            for (int g = 0; g < n_; ++g) fence_pending_ |= buf_[g].nt;
            n_ = 0;
            return;
          }
        }
        k_->process_stages(buf_, n_);
        for (int g = 0; g < n_; ++g) fence_pending_ |= buf_[g].nt;
      }
      n_ = 0;
    }
  }

  K* k_;
  int slope_;
  int unroll_ = 1;
  int pf_ = 0;
  bool nt_ = false;
  bool tv_ = false;
  bool fence_pending_ = false;
  std::int64_t wave_ = 0;
  int n_ = 0;
  WaveStage buf_[kMaxUnroll];
};

template <bool Scalar, class K>
class WaveWalker3D {
 public:
  WaveWalker3D(K& k, const plan_ir::TilePlan& p, const RunOptions& opt)
      : k_(&k), slope_(p.slope) {
    if constexpr (!Scalar) {
      pf_ = opt.prefetch_dist > 0 ? opt.prefetch_dist : 0;
      if constexpr (kernel_has_row_nt_3d<K>) {
        nt_ = opt.nt_stores && plan_ir::nt_store_eligible(p);
      }
      if constexpr (wave_fusable_v<K>) {
        unroll_ = detail::resolve_unroll(p, opt);
      }
      if constexpr (kernel_has_row_tv_3d<K>) {
        tv_ = opt.temporal_vec;
      }
    }
  }

  void operator()(const plan_ir::Slab& sl) {
    if constexpr (!Scalar) {
      if constexpr (kernel_has_prefetch_front<K>) {
        if (sl.front && pf_ > 0) {
          k_->prefetch_front(sl.t, static_cast<int>(sl.box.zlo) + 1, pf_);
        }
      }
    }
    const int x0 = static_cast<int>(sl.box.xlo);
    const int x1 = static_cast<int>(sl.box.xhi) + 1;
    if constexpr (!Scalar && wave_fusable_v<K>) {
      if (unroll_ > 1 && sl.box.zlo == sl.box.zhi) {
        const int z = static_cast<int>(sl.box.zlo);
        if (n_ > 0 &&
            (n_ == unroll_ || sl.wavefront != wave_ ||
             sl.t != buf_[n_ - 1].t + 1 || z != buf_[n_ - 1].z - slope_)) {
          flush();
        }
        if (n_ == 0) wave_ = sl.wavefront;
        buf_[n_++] = Stage3{sl.t,
                            z,
                            static_cast<int>(sl.box.ylo),
                            static_cast<int>(sl.box.yhi),
                            x0,
                            x1,
                            nt_ && sl.trailing};
        return;
      }
    }
    flush();
    for (std::int64_t z = sl.box.zlo; z <= sl.box.zhi; ++z) {
      for (std::int64_t y = sl.box.ylo; y <= sl.box.yhi; ++y) {
        row(sl, static_cast<int>(y), static_cast<int>(z), x0, x1);
      }
    }
  }

  void end_tile() {
    flush();
    if constexpr (!Scalar) {
      if (fence_pending_) {
        simd::store_fence();
        fence_pending_ = false;
      }
    }
  }

 private:
  void row(const plan_ir::Slab& sl, int y, int z, int x0, int x1) {
    check::note_row(sl.t, y, z, x0, x1);
    if constexpr (Scalar) {
      k_->process_row_scalar(sl.t, y, z, x0, x1);
    } else {
      if constexpr (kernel_has_row_nt_3d<K>) {
        if (nt_ && sl.trailing) {
          k_->process_row_nt(sl.t, y, z, x0, x1);
          fence_pending_ = true;
          return;
        }
      }
      k_->process_row(sl.t, y, z, x0, x1);
    }
  }

  void flush() {
    if constexpr (!Scalar && wave_fusable_v<K>) {
      if (n_ == 0) return;
      if (n_ == 1) {
        const Stage3& s = buf_[0];
        for (int y = s.ylo; y <= s.yhi; ++y) {
          if constexpr (kernel_has_row_nt_3d<K>) {
            if (s.nt) {
              k_->process_row_nt(s.t, y, s.z, s.x0, s.x1);
              continue;
            }
          }
          k_->process_row(s.t, y, s.z, s.x0, s.x1);
        }
        fence_pending_ |= s.nt;
      } else {
        if constexpr (kernel_has_row_tv_3d<K>) {
          if (tv_) {
            run_fused_3d_tv(*k_, buf_, n_, slope_);
            for (int g = 0; g < n_; ++g) fence_pending_ |= buf_[g].nt;
            n_ = 0;
            return;
          }
        }
        run_fused_3d(*k_, buf_, n_, slope_);
        for (int g = 0; g < n_; ++g) fence_pending_ |= buf_[g].nt;
      }
      n_ = 0;
    }
  }

  K* k_;
  int slope_;
  int unroll_ = 1;
  int pf_ = 0;
  bool nt_ = false;
  bool tv_ = false;
  bool fence_pending_ = false;
  std::int64_t wave_ = 0;
  int n_ = 0;
  Stage3 buf_[kMaxUnroll];
};

}  // namespace cats::wave
