#pragma once
// Temporal micro-kernel drivers: dependence-legal staggered sweeps over a
// *wavefront chain* — the maximal run of consecutive slabs (t, p), (t+1,
// p-s), ..., (t+u-1, p-(u-1)s) that a CATS tile keeps cache-resident along
// one wavefront (a CATS1 column, a CATS2 tube's per-w time run). The engine
// (wave/engine.hpp) detects chains; this header holds the stagger rules and
// the generic row-granularity driver.
//
// Stagger proof (both drivers; stage g = the chain's g-th slab, u <= 4):
//
//  * Flow dependence. Stage g+1 computes points at timestep t+g+1 reading
//    the slope-s box at t+g. Within the chain, the only t+g data not already
//    complete is stage g's own output (earlier wavefronts were computed by
//    earlier chains/tiles; data *outside* stage g's space range belongs to
//    neighbor tiles whose done/progress edges were waited out before this
//    tile started — the group never reorders across a tile's entry waits).
//    Stage g+1 at position q reads stage g's output at positions q-s..q+s,
//    so it may run as soon as stage g has completed through q+s.
//
//  * WAR hazard. Stage g+1 writes the (t+g+1) & 1 buffer parity — the same
//    parity stage g *reads* as its (t+g-1) input. The aliased plane/row is
//    stage g's input at offset -s (stage g+1's position is s below stage
//    g's), and stage g's last read of aliased position q happens while
//    computing its own position q+s. Hence the same bound: stage g+1 may
//    overwrite position q once stage g has completed through q+s.
//
//  * Non-adjacent stages alias nothing: stage g+2 writes parity (t+g) & 1 at
//    positions 2s below stage g's writes of the same parity, and its reads of
//    stage g+1's parity are the adjacent-pair cases above relabeled. So
//    pairwise-adjacent safety implies group safety for any u.
//
// Both obligations reduce to "stage g stays >= s positions ahead of stage
// g+1, counting a position complete only when fully computed". The 2D driver
// (kernel process_stages, e.g. kernels/const2d.hpp) staggers stages by
// x-chunks of >= s points along the fused rows; the 3D driver below staggers
// whole x-rows by exactly s rows in y, running stages in ascending order
// within a step so stage g's row r+s finishes before stage g+1 touches row
// r. Every point still sees the identical operation tree as the unfused
// walk, so fusion is bit-exact (simd/vecd.hpp lane contract).

#include <algorithm>

#include "core/stencil.hpp"

namespace cats::wave {

/// Opt-in marker for engine-side temporal fusion: the kernel's process_row
/// accesses are contained in the slope-s box at t-1 (star or box shaped),
/// with no same-timestep or multi-field coupling the stagger proof above
/// does not cover. Kernels declare `static constexpr bool wave_fusable =
/// true`; everything else (Gauss-Seidel, FDTD's three coupled fields) runs
/// unfused.
template <class K>
constexpr bool wave_fusable_v = requires {
  requires K::wave_fusable;
};

/// One slab of a 3D fused group: the z-plane at timestep t, rows
/// [ylo, yhi] x [x0, x1).
struct Stage3 {
  int t = 0;
  int z = 0;
  int ylo = 0, yhi = 0;
  int x0 = 0, x1 = 0;
  bool nt = false;  ///< stream this stage's stores (trailing wavefront)
};

/// Row-staggered 3D group sweep: at step r, stage g computes row r - g*s of
/// its own plane (skipped outside the stage's y-range — per-stage ranges
/// differ in CATS2 diamonds and at domain edges; out-of-range rows are
/// neighbor tiles' work, complete before this tile began). Ascending g
/// within a step makes the stagger exactly s rows, the minimum the proof
/// needs.
template <class K>
void run_fused_3d(K& k, const Stage3* st, int n, int s) {
  int rlo = st[0].ylo;
  int rhi = st[0].yhi;
  for (int g = 1; g < n; ++g) {
    rlo = std::min(rlo, st[g].ylo + g * s);
    rhi = std::max(rhi, st[g].yhi + g * s);
  }
  for (int r = rlo; r <= rhi; ++r) {
    for (int g = 0; g < n; ++g) {
      const int y = r - g * s;
      if (y < st[g].ylo || y > st[g].yhi) continue;
      if constexpr (kernel_has_row_nt_3d<K>) {
        if (st[g].nt) {
          k.process_row_nt(st[g].t, y, st[g].z, st[g].x0, st[g].x1);
          continue;
        }
      }
      k.process_row(st[g].t, y, st[g].z, st[g].x0, st[g].x1);
    }
  }
}

/// run_fused_3d with every row driven through the kernel's temporally-
/// vectorized body (process_row_tv, see wave/temporal_vec.hpp): same
/// row-staggered schedule, same stagger proof, identical per-point operation
/// tree; the per-stage `nt` flag is threaded through instead of the
/// process_row/process_row_nt split.
template <class K>
void run_fused_3d_tv(K& k, const Stage3* st, int n, int s) {
  int rlo = st[0].ylo;
  int rhi = st[0].yhi;
  for (int g = 1; g < n; ++g) {
    rlo = std::min(rlo, st[g].ylo + g * s);
    rhi = std::max(rhi, st[g].yhi + g * s);
  }
  for (int r = rlo; r <= rhi; ++r) {
    for (int g = 0; g < n; ++g) {
      const int y = r - g * s;
      if (y < st[g].ylo || y > st[g].yhi) continue;
      k.process_row_tv(st[g].t, y, st[g].z, st[g].x0, st[g].x1, st[g].nt);
    }
  }
}

}  // namespace cats::wave
