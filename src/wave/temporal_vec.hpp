#pragma once
// Temporal vectorization of the wave micro-kernel (Yuan et al., "Temporal
// Vectorization for Stencils"; Li et al., "An Efficient Vectorization Scheme
// for Stencil Computation" — see PAPERS.md).
//
// The spatially-vectorized chain body (kernel process_stages /
// run_fused_3d) reloads every x-neighborhood operand from cache: 4s+1 (2D
// star) unaligned loads per output vector, most of them overlapping the
// loads of the previous vector — and on 512-bit builds every x+-k load
// straddles a cache line (a split load, ~2x the cost of an aligned one).
// The TV mode replaces that overlapping traffic with in-register data
// movement:
//
//  1. ShiftWindow — a ring of aligned vector registers covering
//     [x - Q*W, x + (Q+1)*W) of one row. Advancing the window costs ONE
//     aligned load; every x-offset operand in [-S, S] is then materialized
//     by a register shuffle (V::shuffle<K>, an in-register lane-concatenating
//     extract) instead of a split-load reload.
//
//  2. run_stages_tv — the chain-group driver: each of the N fused timesteps
//     sweeps its row through the window in one tight pass (unaligned edge
//     vector, plain-vector edge cells, windowed interior, plain-vector edge
//     cells, unaligned edge vector). Stages run to completion in timestep
//     order, which satisfies
//     both chain hazards trivially — stage g's output row is fully written
//     before stage g+1 reads it (flow), and stage g has finished reading the
//     t-1 parity row before stage g+1 overwrites it (WAR); this is the
//     degenerate case of the stagger proof in microkernel.hpp (producer
//     arbitrarily far ahead). The just-retired row is cache-resident when
//     the next stage consumes it: the chain forwards through cache, the
//     x-neighborhood forwards through registers.
//
// Two other forms of this driver measured slower on the bench suite and are
// documented in DESIGN.md §14: a cell-granular software pipeline with a
// validity-tagged cross-stage forwarding ring lost ~2x (per-cell scheduling
// cost rivaled the stencil arithmetic; the forwarded operand only replaced
// an L1-resident load), and a chunk-interleaved pipeline that staggered the
// stages at process_stages granularity lost ~10-20% (the per-chunk window
// spill/reload and range-intersection bookkeeping outweighed the L1 reuse
// it bought). Milder hybrids — next-stage stream prefetch and vertical
// panel interleave (equal split points, for-panel/for-stage order, which is
// hazard-free by the same argument) — also measured at or below the
// sequential driver, so the plain order stands.
//
// Correctness containment: every arithmetic body invoked by the driver
// evaluates the IDENTICAL per-point operation tree as the plain span body
// (same FMA order, same operand values — shuffles move exact bits). The TV
// path is therefore bit-exact against the serial reference whenever the
// plain wave path is; kernels advertise that with `tv_bit_exact` (see
// core/stencil.hpp).
//
// Memory-safety containment: windowed (shuffle-fed) cells are restricted to
// x where the window stays inside [x0 - S, x1 - 1 + S] — exactly the plain
// body's read reach, which the tile schedule guarantees is data-race free.
// Edge cells outside that region fall back to the plain unaligned-load
// body; the ragged range ends are covered by one unaligned vector each
// (reads within [x0 - S, x1 - 1 + S], stores within [x0, x1)), overlapping
// the adjacent aligned cell with bit-identical values; ranges narrower than
// one vector run scalar.

#include <algorithm>
#include <type_traits>

namespace cats::wave {

/// Sliding register window over one row of values. V is the vector type, T
/// its element type, S the stencil slope (max |x-offset| read). The window
/// holds 2*Q+1 aligned vectors where Q = ceil(S / W): w[i] covers
/// [x + (i-Q)*W, x + (i-Q+1)*W) for the current anchor x (itself W-aligned
/// relative to the walk, not necessarily absolutely aligned — only relative
/// W-strides matter).
template <class V, class T, int S>
struct ShiftWindow {
  static constexpr int W = V::width;
  static constexpr int Q = (S + W - 1) / W;
  static constexpr int kVecs = 2 * Q + 1;

  V w[kVecs];

  /// Load the full window around anchor x of row c.
  void prime(const T* c, int x) {
    for (int i = 0; i < kVecs; ++i) w[i] = V::load(c + x + (i - Q) * W);
  }

  /// Slide the anchor from x-W to x: shift the ring down one vector and load
  /// only the new leading edge.
  void advance(const T* c, int x) {
    for (int i = 0; i + 1 < kVecs; ++i) w[i] = w[i + 1];
    w[kVecs - 1] = V::load(c + x + Q * W);
  }

  /// The vector covering [x + O, x + O + W) for a compile-time offset
  /// O in [-S, S]: either a window vector directly (O a multiple of W) or
  /// one shuffle of two adjacent window vectors.
  template <int O>
  V get() const {
    constexpr int q = O >= 0 ? O / W : -((-O + W - 1) / W);
    constexpr int r = O - q * W;
    static_assert(q >= -Q && q + (r != 0 ? 1 : 0) <= Q, "offset exceeds window");
    if constexpr (r == 0) {
      return w[Q + q];
    } else {
      return V::template shuffle<r>(w[Q + q], w[Q + q + 1]);
    }
  }
};

/// Windowed driver for one chain group of n fused timesteps (n <= 4; n == 1
/// never reaches the TV path).
///
/// Stage is the kernel's resolved per-timestep descriptor and must expose
/// `.c` (center input row), `.o` (output row), `.x0`/`.x1` (the stage's
/// x-range), and `.nt` (stream the output past the cache). The three bodies
/// supply the arithmetic:
///   win_body(stage, x, window) -> V   windowed interior vector at x; all
///                                     center-row operands come from the
///                                     ShiftWindow.
///   vec_body(stage, x)         -> V   plain unaligned-load vector
///                                     (window-illegal edge cells).
///   sc_body(stage, a, b)              scalar points [a, b) incl. store.
///
/// Cells live on the absolute W-grid (cell bi covers [bi*W, (bi+1)*W)), so
/// window loads and full-cell stores are aligned whenever the row base is
/// (Grid2D pads the interior origin to the vector width). Each stage runs
/// to completion before the next starts — see the header comment for why
/// that order is hazard-free and why it beat both pipelined drivers.
template <int S, class V, class NtV, class T, class Stage, class WinBody,
          class VecBody, class ScBody>
void run_stages_tv(const Stage* sg, int n, WinBody&& win_body,
                   VecBody&& vec_body, ScBody&& sc_body) {
  constexpr int W = V::width;
  constexpr int Q = (S + W - 1) / W;  // window reach in cells
  for (int g = 0; g < n; ++g) {
    const Stage& s = sg[g];
    if (s.x1 - s.x0 < W) {
      sc_body(s, s.x0, s.x1);  // range narrower than one vector
      continue;
    }
    // Ragged edges: one unaligned vector flush against each end of the
    // range instead of scalar head/tail points. The overlap with the first/
    // last aligned cell is harmless — both write the identical value (same
    // operation tree, bit-exact), so the double store is a rewrite, and
    // stages never read their own output row. This matters because diamond
    // slices put x0 anywhere mod W: a scalar head+tail averages W-1 serial
    // stencil points per stage, which measured as the entire TV deficit on
    // narrow slices (DESIGN.md §14).
    const auto edge = [&](int x) { vec_body(s, x).store(s.o + x); };
    // Full cells of stage g: [ceil(x0/W), floor(x1/W)). Windowed (interior)
    // cells additionally keep the window's read reach [x-Q*W, x+(Q+1)*W)
    // inside the legal [x0-S, x1-1+S]; both ceil numerators are
    // non-negative here (x0 >= 0, Q*W >= S).
    const int fl = (s.x0 + W - 1) / W;
    const int fh = s.x1 / W;
    if (fl >= fh) {
      // Range >= W but straddles a cell boundary without covering a full
      // cell: two overlapping unaligned vectors span it exactly.
      edge(s.x0);
      if (s.x1 - W > s.x0) edge(s.x1 - W);
      continue;
    }
    const int il = std::max(fl, (s.x0 + Q * W - S + W - 1) / W);
    const int top = s.x1 + S - (Q + 1) * W;
    const int ih = std::max(il, std::min(fh, top >= 0 ? top / W + 1 : 0));
    if (s.x0 < fl * W) edge(s.x0);
    const auto cells = [&](auto nt_flag) {
      const auto put = [&](int x, V v) {
        if constexpr (decltype(nt_flag)::value) {
          NtV{v}.store(s.o + x);
        } else {
          v.store(s.o + x);
        }
      };
      for (int bi = fl; bi < il; ++bi) put(bi * W, vec_body(s, bi * W));
      if (il < ih) {
        ShiftWindow<V, T, S> win;
        win.prime(s.c, il * W);
        put(il * W, win_body(s, il * W, win));
        for (int bi = il + 1; bi < ih; ++bi) {
          win.advance(s.c, bi * W);
          put(bi * W, win_body(s, bi * W, win));
        }
      }
      for (int bi = ih; bi < fh; ++bi) put(bi * W, vec_body(s, bi * W));
    };
    if (s.nt) {
      cells(std::true_type{});
    } else {
      cells(std::false_type{});
    }
    if (fh * W < s.x1) edge(s.x1 - W);
  }
}

}  // namespace cats::wave
