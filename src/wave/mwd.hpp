#pragma once
// Multicore wavefront-diamond (MWD) group walker.
//
// An MWD plan (plan/emit.cpp emit_mwd) is a CATS2 diamond-tube schedule
// whose owners are thread *groups*: the diamond is sized against the pooled
// cache Z*m, and the m members of a group cooperate on each tube. This
// header is the cooperation schedule — a refinement of the tile's serial
// slab walk that the plan executor runs when wave_team_width() resolves
// m > 1 for a Scheme::Mwd plan (plan/execute.hpp).
//
// Schedule. Each tube's timestep range [t0, t1] is cut into m contiguous
// *bands*, one per member, balanced by diamond cross-section area (the
// per-timestep |p_range| is independent of the wavefront, so equal-area
// bands equalize member work across the whole tube). Members then pipeline
// the tube's wavefronts with a one-wavefront stagger: in window W (all
// members run the identical window range [w_lo, w_hi + m - 1]), member k
// computes its band's slabs of wavefront w = W - k, every window opening
// with one team-barrier crossing and closing with the member's walker flush
// (end_tile) — flushed *before* the next barrier, so no lazily buffered
// fused group or unfenced NT store can leak past the ordering the barrier
// establishes. One final crossing after the last window orders all members'
// work before the group lead publishes the tile's DoneFlag.
//
// Why every intra-tube dependence is ordered. A slab (w, t) reads (and
// WAR-overwrites against) positions pos' in [pos - s, pos + s] at t - 1,
// i.e. producer slabs (w', t-1) with w' = pos' + s(t-1) in [w - 2s, w].
// Let k = band(t) and k' = band(t-1); bands are contiguous and ascending in
// t, so k' <= k. Two cases:
//   * k' < k: the producer runs in window w' + k' <= w + k - 1 < w + k, a
//     strictly earlier window, and the consumer's window-opening barrier
//     orders it (the producer's flush ran before that barrier).
//   * k' = k: same member. Either w' < w (an earlier window of the same
//     member: program order) or w' = w and the member walks its band's
//     timesteps ascending, so t - 1 precedes t in program order.
// Inter-tube dependences are the plan's Done edges, untouched: the lead
// acquires them before the first window and the first window's barrier
// propagates the acquisition to every member.
//
// Why fusion/TV/NT compose unchanged. A member's slabs are *full-width*
// chain links (the same boxes the serial walk produces, merely partitioned
// by timestep), walked at ascending t within one wavefront — exactly the
// chain shape WaveWalker2D/3D fuses (same wavefront, t one up, position s
// down). A chain never spans windows (the wavefront changes), so the
// per-window flush costs no fusion. Trailing (t == t1) slabs live in the
// last band only; their NT stores are fenced by that member's window flush
// before the final barrier and the lead's publish.
//
// Rejected alternatives (measured/proved during design): splitting each
// wavefront *spatially* across members breaks the temporal-fusion stagger
// proof in both shift directions; per-wavefront plan tiles explode the IR
// by orders of magnitude; tile-granular Done edges between member bands
// serialize the tube; a relative-position block partition of each
// wavefront's t-range violates the k' <= k band monotonicity the ordering
// argument needs.

#include <cstdint>
#include <vector>

#include "core/geometry.hpp"
#include "plan/plan.hpp"

namespace cats::wave {

/// Equal-area contiguous band partition of [tile.t0, tile.t1] over m
/// members: band[i] is the member owning timestep t0 + i, ascending in i.
/// Weights are diamond cross-sections |p_range(t)| (wavefront-independent),
/// greedily cut at the area quantiles total*k/m.
inline std::vector<int> mwd_band_partition(const DiamondTiling& dt,
                                           const plan_ir::Tile& tile, int m) {
  const int len = std::max(tile.t1 - tile.t0 + 1, 0);
  std::vector<int> band(static_cast<std::size_t>(len), 0);
  std::vector<std::int64_t> wts(static_cast<std::size_t>(len), 0);
  std::int64_t total = 0;
  for (int i = 0; i < len; ++i) {
    const Range pr = dt.p_range(tile.di, tile.dj, tile.t0 + i);
    wts[static_cast<std::size_t>(i)] = pr.empty() ? 0 : pr.hi - pr.lo + 1;
    total += wts[static_cast<std::size_t>(i)];
  }
  int k = 0;
  std::int64_t run = 0;
  for (int i = 0; i < len; ++i) {
    band[static_cast<std::size_t>(i)] = k;
    run += wts[static_cast<std::size_t>(i)];
    while (k + 1 < m && run * m >= total * (k + 1)) ++k;
  }
  return band;
}

/// Run member `member` of an m-wide group over one Scheme::Mwd DiamondTube
/// tile. `barrier()` must cross the group's TeamBarrier (and account the
/// crossing); `fn` is the member's private slab walker. Every member invokes
/// this with the identical tile, so barrier counts always match. The slab
/// stream replicates for_each_slab's DiamondTube enumeration exactly
/// (geometry, front hints at each wavefront's unclipped first timestep,
/// trailing at t1) restricted to the member's band — the union over members
/// is the verified serial walk, reordered only where the proof above orders
/// it. The final barrier is crossed here; the caller publishes after.
template <class Barrier, class F>
CATS_PLAN_NO_UNSWITCH inline void mwd_walk_tile(const plan_ir::TilePlan& p,
                                                const plan_ir::Tile& tile,
                                                int member, int m,
                                                Barrier&& barrier, F& fn) {
  const std::int64_t s = p.slope;
  const std::int64_t tiled = (p.dims == 2) ? p.nx : p.ny;
  const std::int64_t trav = (p.dims == 2) ? p.ny : p.nz;
  const DiamondTiling dt{static_cast<int>(s), p.bz, tiled, tile.t0, tile.t1};
  const Range tr{tile.t0, tile.t1};
  const std::vector<int> band = mwd_band_partition(dt, tile, m);
  const std::int64_t w_lo = s * tr.lo;
  const std::int64_t w_hi = trav - 1 + s * tr.hi;
  for (std::int64_t W = w_lo; W <= w_hi + m - 1; ++W) {
    barrier();
    const std::int64_t w = W - member;
    if (w >= w_lo && w <= w_hi) {
      const Range ts = intersect(tr, {ceil_div(w - trav + 1, s),
                                      floor_div(w, s)});
      for (std::int64_t t = ts.lo; t <= ts.hi; ++t) {
        if (band[static_cast<std::size_t>(t - tr.lo)] != member) continue;
        const Range pr = dt.p_range(tile.di, tile.dj, t);
        if (pr.empty()) continue;
        const std::int64_t pos = w - s * t;
        plan_ir::Box b;
        if (p.dims == 2) {
          b.xlo = pr.lo;
          b.xhi = pr.hi;
          b.ylo = b.yhi = pos;
        } else {
          b.ylo = pr.lo;
          b.yhi = pr.hi;
          b.zlo = b.zhi = pos;
          b.xlo = 0;
          b.xhi = p.nx - 1;
        }
        fn(plan_ir::Slab{static_cast<int>(t), b,
                         tile.front_hints && t == ts.lo, w,
                         static_cast<int>(t) == tile.t1});
      }
    }
    // Window flush BEFORE the next barrier: a fused group buffered across
    // it would execute after readers the barrier already released.
    if constexpr (requires { fn.end_tile(); }) fn.end_tile();
  }
  barrier();  // every member's work ordered before the lead's publish
}

}  // namespace cats::wave
