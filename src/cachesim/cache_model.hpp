#pragma once
// Set-associative LRU cache model.
//
// Used to *verify* the paper's central claim rather than take it on faith:
// replaying a scheme's address stream through this model shows CATS incurring
// close to compulsory misses per time chunk while the naive scheme misses the
// whole domain every sweep, and validates that the Eq. 1/2 sizing really
// keeps CS wavefronts resident (tests/ and bench/ablation_misses).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cats {

class CacheModel {
 public:
  /// bytes must be a multiple of ways * line; line a power of two.
  CacheModel(std::size_t bytes, int ways, int line_bytes);

  /// Touch one byte address; returns true on hit. Loads and stores are
  /// treated alike (allocate-on-write, as on the paper's machines).
  bool access(std::uint64_t addr);

  /// Touch every line overlapping [addr, addr + len).
  void access_range(std::uint64_t addr, std::size_t len);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  std::uint64_t miss_bytes() const { return misses_ * static_cast<std::uint64_t>(line_); }

  std::size_t size_bytes() const { return sets_ * static_cast<std::size_t>(ways_) * line_; }
  int ways() const { return ways_; }
  int line_bytes() const { return line_; }

  void reset_counters() { hits_ = misses_ = 0; }
  void flush();  ///< invalidate all lines and reset counters

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  std::size_t sets_;
  int ways_;
  int line_;
  int line_shift_;
  std::vector<Way> entries_;  // sets_ * ways_
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0;
};

}  // namespace cats
