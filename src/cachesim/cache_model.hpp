#pragma once
// Set-associative LRU cache model.
//
// Used to *verify* the paper's central claim rather than take it on faith:
// replaying a scheme's address stream through this model shows CATS incurring
// close to compulsory misses per time chunk while the naive scheme misses the
// whole domain every sweep, and validates that the Eq. 1/2 sizing really
// keeps CS wavefronts resident (tests/ and bench/ablation_misses).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cats {

class CacheModel {
 public:
  /// bytes must be a multiple of ways * line; line a power of two.
  CacheModel(std::size_t bytes, int ways, int line_bytes);

  /// Touch one byte address; returns true on hit. Loads and stores are
  /// treated alike (allocate-on-write, as on the paper's machines).
  bool access(std::uint64_t addr);

  /// Touch every line overlapping [addr, addr + len).
  void access_range(std::uint64_t addr, std::size_t len);

  /// Classic (write-allocate) store: identical line behavior and hit/miss
  /// counting to access(), but a miss is additionally recorded as an RFO
  /// (read-for-ownership line fill) and the bytes as eventually
  /// written back — the DRAM cost the wave engine's NT path avoids.
  bool write(std::uint64_t addr);
  void write_range(std::uint64_t addr, std::size_t len);

  /// Non-temporal store: bytes stream to memory without a fill — no hit or
  /// miss is counted, no RFO happens, and any cached copy of the line is
  /// invalidated (matching MOVNT semantics). Counted in stored/nt bytes.
  void write_nt_range(std::uint64_t addr, std::size_t len);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  std::uint64_t miss_bytes() const { return misses_ * static_cast<std::uint64_t>(line_); }

  /// Write misses among misses(): line fills performed only for ownership.
  std::uint64_t write_misses() const { return write_misses_; }
  std::uint64_t rfo_bytes() const { return write_misses_ * static_cast<std::uint64_t>(line_); }
  /// Every byte stored through write_range / write_nt_range (all reach DRAM
  /// eventually, as a dirty write-back or an NT stream).
  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::uint64_t nt_bytes() const { return nt_bytes_; }

  /// Modeled DRAM transfer: line fills (read misses + RFOs) plus every
  /// stored byte. NT stores skip the fill, which is exactly the one-third
  /// saving on a pure read-modify-write stream (3 -> 2 transfers/point).
  std::uint64_t dram_bytes() const { return miss_bytes() + stored_bytes_; }

  std::size_t size_bytes() const { return sets_ * static_cast<std::size_t>(ways_) * line_; }
  int ways() const { return ways_; }
  int line_bytes() const { return line_; }

  void reset_counters() {
    hits_ = misses_ = 0;
    write_misses_ = stored_bytes_ = nt_bytes_ = 0;
  }
  void flush();  ///< invalidate all lines and reset counters

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  std::size_t sets_;
  int ways_;
  int line_;
  int line_shift_;
  std::vector<Way> entries_;  // sets_ * ways_
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0;
  std::uint64_t write_misses_ = 0;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t nt_bytes_ = 0;
};

}  // namespace cats
