#pragma once
// Analytic DRAM-traffic model for each scheme.
//
// These closed forms predict the main-memory bytes a scheme moves for a
// domain far larger than the cache; the test suite cross-checks them against
// the LRU cache simulator, and EXPERIMENTS.md uses them to explain the
// measured speedups. All counts follow the paper's Section II accounting:
// per output point a constant stencil reads NS values and writes one; the
// values themselves are reused out of cache, so steady-state DRAM traffic is
// "read each input domain once, write each output domain once" per *reload*
// of the domain, plus NS coefficient streams for banded matrices.

#include <cmath>
#include <cstdint>

namespace cats {

struct TrafficInput {
  double n = 0;          ///< domain points N
  int t_steps = 0;       ///< T
  double bands = 0;      ///< NS coefficient streams (0 for constant stencils)
  double state = 1.0;    ///< field elements per point (3 for FDTD)
  int slope = 1;
  double wmax = 0;       ///< traversal extent (CATS1 border term)
  int tiles = 1;         ///< parallel tiles (CATS1 border term)
  double elem_bytes = 8; ///< storage bytes per element (4 for float)
};

/// Naive scheme: the full domain streams through memory every sweep.
inline double naive_traffic_bytes(const TrafficInput& in) {
  return in.t_steps * (2.0 * in.state + in.bands) * in.n * in.elem_bytes;
}

/// CATS1: one domain read+write (plus coefficients) per TZ-chunk, plus the
/// skewed tile borders that are reloaded because the traversing wavefronts
/// constantly overwrite the cache (Section II-B: "basically no data reuse at
/// the tile borders"). Border volume per chunk ~ tiles * 2s * TZ * N / Wmax.
inline double cats1_traffic_bytes(const TrafficInput& in, int tz) {
  const double chunks = std::ceil(static_cast<double>(in.t_steps) / tz);
  const double per_chunk =
      (2.0 * in.state + in.bands) * in.n +
      (in.state + in.bands) * in.tiles * 2.0 * in.slope * tz * in.n / in.wmax;
  return chunks * per_chunk * in.elem_bytes;
}

/// CATS2: diamond rows advance the whole domain by BZ/(2s) timesteps per
/// sweep of the tiling dimension, so the domain streams ~ 2sT/BZ times, and
/// each diamond additionally reloads its skewed borders.
inline double cats2_traffic_bytes(const TrafficInput& in, std::int64_t bz) {
  const double rows = std::max(1.0, 2.0 * in.slope * in.t_steps /
                                        static_cast<double>(bz));
  // Border overhead: a diamond of width BZ shares ~2s-deep skewed edges with
  // its neighbors; the relative overhead per row is ~4s/BZ.
  const double border = 1.0 + 4.0 * in.slope / static_cast<double>(bz);
  return rows * (2.0 * in.state + in.bands) * in.n * in.elem_bytes * border;
}

/// Upper bound on achievable CATS speedup over naive for a bandwidth-bound
/// stencil: the ratio of their traffic (the paper's memory-wall argument).
inline double traffic_speedup_bound(double naive_bytes, double cats_bytes) {
  return naive_bytes / cats_bytes;
}

/// Write-allocate correction for the scheme formulas above. The closed forms
/// count "read each input once + write each output once", but a classic
/// store to a non-resident line first *reads* it for ownership (RFO), so the
/// write stream costs two DRAM transfers, not one. Of a scheme's modeled
/// bytes, the written fraction is state / (2*state + bands); doubling it
/// scales total traffic by (1 + that fraction). NT stores (RunOptions::
/// nt_stores, src/wave) eliminate the RFO, i.e. keep the uncorrected figure:
/// for a constant stencil (state=1, bands=0) that is 3 vs 2 transfers per
/// point per pass — the one-third saving the cachesim ablation checks.
inline double with_rfo_bytes(const TrafficInput& in, double scheme_bytes) {
  const double write_fraction = in.state / (2.0 * in.state + in.bands);
  return scheme_bytes * (1.0 + write_fraction);
}

/// Normalize a traffic estimate to DRAM bytes per point *update* (N*T
/// updates total) — the scalar bench reports next to MLUP/s.
inline double dram_bytes_per_point(const TrafficInput& in, double scheme_bytes) {
  return scheme_bytes / (in.n * in.t_steps);
}

}  // namespace cats
