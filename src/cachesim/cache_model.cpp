#include "cachesim/cache_model.hpp"

#include "check/check.hpp"

namespace cats {
namespace {

int log2_exact(std::size_t v) {
  int s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  return s;
}

}  // namespace

CacheModel::CacheModel(std::size_t bytes, int ways, int line_bytes)
    : sets_(bytes / (static_cast<std::size_t>(ways) * line_bytes)),
      ways_(ways),
      line_(line_bytes),
      line_shift_(log2_exact(static_cast<std::size_t>(line_bytes))) {
  CATS_CHECK(ways >= 1 && line_bytes >= 8,
             "CacheModel ways=%d line_bytes=%d", ways, line_bytes);
  CATS_CHECK((std::size_t{1} << line_shift_) ==
                 static_cast<std::size_t>(line_bytes),
             "CacheModel line_bytes=%d must be a power of two", line_bytes);
  CATS_CHECK(sets_ >= 1, "CacheModel %zu bytes yields no sets", bytes);
  entries_.assign(sets_ * static_cast<std::size_t>(ways_), Way{});
}

bool CacheModel::access(std::uint64_t addr) {
  const std::uint64_t line_addr = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line_addr) % sets_;
  Way* base = entries_.data() + set * static_cast<std::size_t>(ways_);
  ++clock_;

  for (int w = 0; w < ways_; ++w) {
    Way& e = base[w];
    if (e.valid && e.tag == line_addr) {
      e.stamp = clock_;
      ++hits_;
      return true;
    }
  }
  Way* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Way& e = base[w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  victim->valid = true;
  victim->tag = line_addr;
  victim->stamp = clock_;
  ++misses_;
  return false;
}

void CacheModel::access_range(std::uint64_t addr, std::size_t len) {
  if (len == 0) return;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + len - 1) >> line_shift_;
  for (std::uint64_t l = first; l <= last; ++l) {
    access(l << line_shift_);
  }
}

bool CacheModel::write(std::uint64_t addr) {
  const bool hit = access(addr);
  if (!hit) ++write_misses_;  // the fill existed only to gain ownership
  return hit;
}

void CacheModel::write_range(std::uint64_t addr, std::size_t len) {
  if (len == 0) return;
  stored_bytes_ += len;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + len - 1) >> line_shift_;
  for (std::uint64_t l = first; l <= last; ++l) {
    write(l << line_shift_);
  }
}

void CacheModel::write_nt_range(std::uint64_t addr, std::size_t len) {
  if (len == 0) return;
  stored_bytes_ += len;
  nt_bytes_ += len;
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + len - 1) >> line_shift_;
  for (std::uint64_t l = first; l <= last; ++l) {
    // MOVNT evicts any cached copy; the stream itself allocates nothing and
    // is not a hit or a miss, so LRU stamps and fill counters stay untouched.
    const std::size_t set = static_cast<std::size_t>(l) % sets_;
    Way* base = entries_.data() + set * static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == l) {
        base[w] = Way{};
        break;
      }
    }
  }
}

void CacheModel::flush() {
  entries_.assign(entries_.size(), Way{});
  clock_ = 0;
  reset_counters();
}

}  // namespace cats
