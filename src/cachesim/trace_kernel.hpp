#pragma once
// Trace kernels: RowKernel-conforming wrappers that replay a stencil's
// memory footprint into a CacheModel instead of doing arithmetic. Running a
// scheme (single-threaded) over a trace kernel yields the scheme's simulated
// miss count, which the tests compare against the analytic traffic model
// (traffic_model.hpp) and against other schemes.

#include <cstdint>
#include <vector>

#include "cachesim/cache_model.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"

namespace cats {

/// Slope-S star-stencil footprint in 2D: reads rows y, y+-k of the source
/// buffer over [x0-S, x1+S) plus optional per-band coefficient rows, writes
/// the destination row. Buffer layout mirrors the real kernels (two parity
/// buffers with ghost rings) so addresses behave identically.
class TraceStar2D {
 public:
  TraceStar2D(int width, int height, int slope, int bands, CacheModel* cache)
      : s_(slope), bands_(bands), cache_(cache),
        buf_{Grid2D<double>(width, height, slope),
             Grid2D<double>(width, height, slope)} {
    coeff_.reserve(static_cast<std::size_t>(bands));
    for (int b = 0; b < bands; ++b) coeff_.emplace_back(width, height, slope);
  }

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return bands_; }

  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }

  void process_row(int t, int y, int x0, int x1) {
    const Grid2D<double>& src = buf_[(t - 1) & 1];
    Grid2D<double>& dst = buf_[t & 1];
    const std::size_t len = static_cast<std::size_t>(x1 - x0 + 2 * s_) * 8;
    // Center row and the 2S neighbor rows of the source.
    touch(addr_of(src, x0 - s_, y), len);
    for (int k = 1; k <= s_; ++k) {
      touch(addr_of(src, x0 - s_, y - k), len);
      touch(addr_of(src, x0 - s_, y + k), len);
    }
    for (int b = 0; b < bands_; ++b) {
      touch(addr_of(coeff_[static_cast<std::size_t>(b)], x0, y),
            static_cast<std::size_t>(x1 - x0) * 8);
    }
    cache_->write_range(addr_of(dst, x0, y),
                        static_cast<std::size_t>(x1 - x0) * 8);
  }

  void process_row_scalar(int t, int y, int x0, int x1) {
    process_row(t, y, x0, x1);
  }

  /// NT-store variant (driven by the wave engine on trailing wavefronts):
  /// same read footprint, destination row streamed past the cache.
  void process_row_nt(int t, int y, int x0, int x1) {
    const Grid2D<double>& src = buf_[(t - 1) & 1];
    Grid2D<double>& dst = buf_[t & 1];
    const std::size_t len = static_cast<std::size_t>(x1 - x0 + 2 * s_) * 8;
    touch(addr_of(src, x0 - s_, y), len);
    for (int k = 1; k <= s_; ++k) {
      touch(addr_of(src, x0 - s_, y - k), len);
      touch(addr_of(src, x0 - s_, y + k), len);
    }
    for (int b = 0; b < bands_; ++b) {
      touch(addr_of(coeff_[static_cast<std::size_t>(b)], x0, y),
            static_cast<std::size_t>(x1 - x0) * 8);
    }
    cache_->write_nt_range(addr_of(dst, x0, y),
                           static_cast<std::size_t>(x1 - x0) * 8);
  }

 private:
  static std::uint64_t addr_of(const Grid2D<double>& g, int x, int y) {
    return reinterpret_cast<std::uint64_t>(g.data()) + g.index(x, y) * 8;
  }
  void touch(std::uint64_t addr, std::size_t len) {
    cache_->access_range(addr, len);
  }

  int s_, bands_;
  CacheModel* cache_;
  Grid2D<double> buf_[2];
  std::vector<Grid2D<double>> coeff_;
};

/// 3D analogue of TraceStar2D.
class TraceStar3D {
 public:
  TraceStar3D(int width, int height, int depth, int slope, int bands,
              CacheModel* cache)
      : s_(slope), bands_(bands), cache_(cache),
        buf_{Grid3D<double>(width, height, depth, slope),
             Grid3D<double>(width, height, depth, slope)} {
    coeff_.reserve(static_cast<std::size_t>(bands));
    for (int b = 0; b < bands; ++b) coeff_.emplace_back(width, height, depth, slope);
  }

  int width() const { return buf_[0].width(); }
  int height() const { return buf_[0].height(); }
  int depth() const { return buf_[0].depth(); }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return bands_; }

  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }

  void process_row(int t, int y, int z, int x0, int x1) {
    const Grid3D<double>& src = buf_[(t - 1) & 1];
    Grid3D<double>& dst = buf_[t & 1];
    const std::size_t len = static_cast<std::size_t>(x1 - x0 + 2 * s_) * 8;
    touch(addr_of(src, x0 - s_, y, z), len);
    for (int k = 1; k <= s_; ++k) {
      touch(addr_of(src, x0 - s_, y - k, z), len);
      touch(addr_of(src, x0 - s_, y + k, z), len);
      touch(addr_of(src, x0 - s_, y, z - k), len);
      touch(addr_of(src, x0 - s_, y, z + k), len);
    }
    for (int b = 0; b < bands_; ++b) {
      touch(addr_of(coeff_[static_cast<std::size_t>(b)], x0, y, z),
            static_cast<std::size_t>(x1 - x0) * 8);
    }
    cache_->write_range(addr_of(dst, x0, y, z),
                        static_cast<std::size_t>(x1 - x0) * 8);
  }

  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    process_row(t, y, z, x0, x1);
  }

  /// NT-store variant; see TraceStar2D::process_row_nt.
  void process_row_nt(int t, int y, int z, int x0, int x1) {
    const Grid3D<double>& src = buf_[(t - 1) & 1];
    Grid3D<double>& dst = buf_[t & 1];
    const std::size_t len = static_cast<std::size_t>(x1 - x0 + 2 * s_) * 8;
    touch(addr_of(src, x0 - s_, y, z), len);
    for (int k = 1; k <= s_; ++k) {
      touch(addr_of(src, x0 - s_, y - k, z), len);
      touch(addr_of(src, x0 - s_, y + k, z), len);
      touch(addr_of(src, x0 - s_, y, z - k), len);
      touch(addr_of(src, x0 - s_, y, z + k), len);
    }
    for (int b = 0; b < bands_; ++b) {
      touch(addr_of(coeff_[static_cast<std::size_t>(b)], x0, y, z),
            static_cast<std::size_t>(x1 - x0) * 8);
    }
    cache_->write_nt_range(addr_of(dst, x0, y, z),
                           static_cast<std::size_t>(x1 - x0) * 8);
  }

 private:
  static std::uint64_t addr_of(const Grid3D<double>& g, int x, int y, int z) {
    return reinterpret_cast<std::uint64_t>(g.data()) + g.index(x, y, z) * 8;
  }
  void touch(std::uint64_t addr, std::size_t len) {
    cache_->access_range(addr, len);
  }

  int s_, bands_;
  CacheModel* cache_;
  Grid3D<double> buf_[2];
  std::vector<Grid3D<double>> coeff_;
};

}  // namespace cats
