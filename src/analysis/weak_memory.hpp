#pragma once
// Operational C++11 weak-memory model: the value layer of the sync-protocol
// model checker (src/analysis, DESIGN.md §15).
//
// The interpreter executes one interleaving at a time under the explorer's
// strict handoff (analysis/explore.hpp). Per atomic location it keeps the
// full *modification order* as the append order of executed stores; per
// thread it keeps a vector clock. The rules, per executed operation:
//
//  * store(mo): appends a StoreRec stamped with the storing thread's clock.
//    If mo includes release, the store heads a release sequence and carries
//    a *message* clock (msg) = the thread's clock; a relaxed plain store
//    carries none (C++20 release sequences: a non-RMW store by any thread
//    breaks the sequence and starts none of its own).
//  * RMW: atomically reads the modification-order tail (no read choice —
//    atomicity pins it) and appends. An RMW *continues* every release
//    sequence containing its predecessor, so it inherits the predecessor's
//    msg and, if itself releasing, joins its own clock in.
//  * load(mo): the explorer enumerates every readable store — at/after the
//    thread's per-location coherence floor (the newest store it has read or
//    written there) and not *hidden* (no modification-order-later store
//    that happens-before the load; this is write-read coherence, and it is
//    what makes e.g. the executor's barrier-reset-barrier phase sound). If
//    mo includes acquire and the chosen store carries a msg, the reader
//    joins it (synchronizes-with the heads of every release sequence
//    containing that store).
//  * seq_cst is interpreted as acq_rel: the single total order S is not
//    modeled. That is conservative for the properties checked here (missing
//    happens-before edges can only be *more* likely without S); none of the
//    shipped primitives rely on seq_cst.
//  * non-atomic (data) accesses are not scheduling points; they are checked
//    for races directly: two accesses to the same data variable, at least
//    one a write, neither's clock ≤ the other's — exactly the "missing
//    happens-before edge" a weakened annotation produces.

#include <atomic>
#include <cstdint>
#include <vector>

namespace cats {
namespace analysis {

/// Vector clock over scenario threads plus one trailing component for the
/// setup context (world construction happens-before every thread start).
using Clock = std::vector<std::uint64_t>;

inline bool clock_leq(const Clock& a, const Clock& b) {
  if (a.size() > b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

inline void clock_join(Clock& a, const Clock& b) {
  if (a.size() < b.size()) a.resize(b.size(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] > a[i]) a[i] = b[i];
  }
}

inline bool mo_is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

inline bool mo_is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}

inline const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

/// One store in a location's modification order (index = position).
struct StoreRec {
  int idx = 0;
  int thread = 0;  ///< storing thread; n = setup context
  long long value = 0;
  std::memory_order order = std::memory_order_relaxed;
  bool is_rmw = false;
  Clock vc;        ///< storing thread's clock at the store
  Clock msg;       ///< join of the clocks of all release-sequence heads
  bool has_msg = false;  ///< some release sequence contains this store
};

/// What a simulated thread is about to do (announced to the explorer).
enum class SimOpKind : std::uint8_t {
  None,
  Load,
  Store,
  RmwAdd,
  RmwXchg,
  Park,  ///< Shim::pause/yield inside a spin loop: block until a fresh
         ///< store lands on a location read since the last park
};

struct PendingOp {
  SimOpKind kind = SimOpKind::None;
  int loc = -1;
  std::memory_order mo = std::memory_order_relaxed;
  long long operand = 0;
};

}  // namespace analysis
}  // namespace cats
