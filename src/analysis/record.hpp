#pragma once
// Recording element/vector types for the symbolic footprint analyzer
// (src/analysis/footprint.hpp; DESIGN.md §15).
//
// The kernels are templated on their element type and pull all SIMD types
// from simd::vec_traits<T>, so instantiating a kernel with RecElem64 /
// RecElem32 swaps every vector load/store for a *recording* operation: the
// address, width and access kind flow to the installed AccessHook, no real
// arithmetic happens, and the instantiated body is otherwise the untouched
// production source — same loop structure, same span/chunk/window logic,
// same store-flavor selection. RecElem64 has sizeof(double) and RecVec64
// the production VecD width (RecElem32 likewise mirrors float/VecF), so
// grid pitches, alignment and vector coverage are bit-for-bit the
// production layout.
//
// RecNtVec mirrors simd::NtVecD's runtime dispatch exactly: store() streams
// only when the destination is naturally vector-aligned and falls back to a
// plain store otherwise; store_aligned() streams unconditionally (which is
// what makes a misaligned stream store *observable* as a hard alignment
// diagnostic downstream).

#include <cstddef>
#include <cstdint>

#include "simd/vecd.hpp"

namespace cats {
namespace analysis {

enum class AccessKind : std::uint8_t {
  Load,             ///< unaligned-capable vector/scalar load
  LoadAligned,      ///< load_aligned: must be naturally vector-aligned
  Store,            ///< plain (cached) store
  StoreAligned,     ///< store_aligned: must be naturally vector-aligned
  StoreNt,          ///< non-temporal stream store: aligned + cache-bypassing
  StoreNtFallback,  ///< NtVec::store that fell back to a plain store
};

/// Per-thread access sink. The footprint checker installs itself here for
/// the duration of a drive; with no hook installed, recording types are
/// inert (so recording kernels can be constructed/initialized freely).
struct AccessHook {
  void* ctx = nullptr;
  void (*fn)(void* ctx, const void* p, int bytes, AccessKind k) = nullptr;
};
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
extern thread_local AccessHook g_access_hook;

inline void record_access(const void* p, int bytes, AccessKind k) {
  if (g_access_hook.fn != nullptr) g_access_hook.fn(g_access_hook.ctx, p, bytes, k);
}

/// 8-byte recording element (fp64 layout twin). The payload keeps sizeof
/// identical to double — grid pitch/lead/alignment math is unchanged — and
/// the double conversions let untouched init/copy_result_to code compile.
struct RecElem64 {
  double v = 0.0;
  RecElem64() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) — mirrors double's implicit role
  RecElem64(double d) : v(d) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator double() const { return v; }
};
static_assert(sizeof(RecElem64) == sizeof(double));

/// 4-byte recording element (fp32 layout twin): half the element stride,
/// double the lanes — the precision axis of the footprint matrix.
struct RecElem32 {
  float v = 0.0F;
  RecElem32() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  RecElem32(double d) : v(static_cast<float>(d)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator double() const { return static_cast<double>(v); }
};
static_assert(sizeof(RecElem32) == sizeof(float));

/// Recording twin of VecD/VecF at the production lane width W. Carries no
/// value; every memory operation reports its exact address span.
template <class E, int W>
struct RecVec {
  static constexpr int width = W;
  using elem_t = E;

  static RecVec load(const E* p) {
    record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::Load);
    return {};
  }
  static RecVec load_aligned(const E* p) {
    record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::LoadAligned);
    return {};
  }
  static RecVec broadcast(E) { return {}; }
  static RecVec zero() { return {}; }
  void store(E* p) const {
    record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::Store);
  }
  void store_aligned(E* p) const {
    record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::StoreAligned);
  }
  void store_nt(E* p) const {
    record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::StoreNt);
  }
  friend RecVec operator+(RecVec, RecVec) { return {}; }
  friend RecVec operator-(RecVec, RecVec) { return {}; }
  friend RecVec operator*(RecVec, RecVec) { return {}; }
  static RecVec fma(RecVec, RecVec, RecVec) { return {}; }
  /// In-register lane extract — moves no memory, records nothing.
  template <int K>
  static RecVec shuffle(RecVec, RecVec) {
    static_assert(K >= 0 && K <= width);
    return {};
  }
  double hsum() const { return 0.0; }
};

/// Recording twin of ScalarD/ScalarF (width-1 loads/stores).
template <class E>
using RecScalar = RecVec<E, 1>;

/// Recording twin of NtVecD/NtVecF. store() replicates the production
/// runtime alignment dispatch (stream iff naturally aligned, else plain
/// store — reported as StoreNtFallback so the checker can count edge
/// fallbacks separately); store_aligned() streams unconditionally.
template <class E, int W>
struct RecNtVec {
  static constexpr int width = W;
  RecVec<E, W> inner;

  static RecNtVec load(const E* p) { return {RecVec<E, W>::load(p)}; }
  static RecNtVec load_aligned(const E* p) {
    return {RecVec<E, W>::load_aligned(p)};
  }
  static RecNtVec broadcast(E e) { return {RecVec<E, W>::broadcast(e)}; }
  static RecNtVec zero() { return {RecVec<E, W>::zero()}; }
  void store(E* p) const {
    if ((reinterpret_cast<std::uintptr_t>(p) & (sizeof(E) * W - 1)) == 0) {
      record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::StoreNt);
    } else {
      record_access(p, W * static_cast<int>(sizeof(E)),
                    AccessKind::StoreNtFallback);
    }
  }
  void store_aligned(E* p) const {
    record_access(p, W * static_cast<int>(sizeof(E)), AccessKind::StoreNt);
  }
  friend RecNtVec operator+(RecNtVec, RecNtVec) { return {}; }
  friend RecNtVec operator-(RecNtVec, RecNtVec) { return {}; }
  friend RecNtVec operator*(RecNtVec, RecNtVec) { return {}; }
  static RecNtVec fma(RecNtVec, RecNtVec, RecNtVec) { return {}; }
  double hsum() const { return 0.0; }
};

using RecVec64 = RecVec<RecElem64, simd::VecD::width>;
using RecScalar64 = RecScalar<RecElem64>;
using RecNtVec64 = RecNtVec<RecElem64, simd::VecD::width>;
using RecVec32 = RecVec<RecElem32, simd::VecF::width>;
using RecScalar32 = RecScalar<RecElem32>;
using RecNtVec32 = RecNtVec<RecElem32, simd::VecF::width>;

}  // namespace analysis
}  // namespace cats

namespace cats::simd {

/// Kernels instantiated with a recording element type pull recording SIMD
/// types through the same traits the production types come from — the
/// kernel source is untouched; only this mapping changes.
template <>
struct vec_traits<cats::analysis::RecElem64> {
  using Vec = cats::analysis::RecVec64;
  using Scalar = cats::analysis::RecScalar64;
  using Nt = cats::analysis::RecNtVec64;
};
template <>
struct vec_traits<cats::analysis::RecElem32> {
  using Vec = cats::analysis::RecVec32;
  using Scalar = cats::analysis::RecScalar32;
  using Nt = cats::analysis::RecNtVec32;
};

}  // namespace cats::simd
