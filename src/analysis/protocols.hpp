#pragma once
// Sync-protocol checks: the five production primitives — SpinBarrier,
// TeamBarrier, ProgressCell, DoneFlag, and the thread pool's pin-handshake
// latch — re-instantiated over SimShim and explored exhaustively
// (analysis/explore.hpp). Each scenario encodes the happens-before contract
// the plan verifier's SyncEdge semantics assume (publish → observe, barrier
// all-to-all, reset under barrier-reset-barrier) as non-atomic data
// handoffs, so a missing edge surfaces as a data race with a full
// interleaving trace.
//
// Minimality: every annotated order site (site_table) is re-run one
// weakening step down (seq_cst→acq_rel→acquire/release→relaxed); the sweep
// reports which weakenings are safe (order over-strong: a finding) vs.
// which produce counterexamples (order proven minimal).

#include <atomic>
#include <string>
#include <vector>

#include "analysis/explore.hpp"

namespace cats {
namespace analysis {

/// Every `// order:` site of the shim-templated primitives, one runtime
/// slot each (the Dyn* order providers in protocols.cpp read this table).
enum SiteId : int {
  kSbSensePeek,
  kSbArrive,
  kSbCountReset,
  kSbSensePublish,
  kSbSenseWait,
  kTbSensePeek,
  kTbArrive,
  kTbCountReset,
  kTbSensePublish,
  kTbSenseWait,
  kPcReset,
  kPcPublish,
  kPcLoad,
  kPcWait,
  kDfSet,
  kDfTest,
  kPlNote,
  kPlRead,
  kNumSites
};

struct SiteInfo {
  SiteId id;
  const char* prim;  ///< "SpinBarrier", ...
  const char* site;  ///< "arrive", ...
  std::memory_order prod;  ///< production default (the *ProdOrders value)
  char op;  ///< 'l' load, 's' store, 'r' read-modify-write
};

const std::vector<SiteInfo>& site_table();

/// Runtime order of one site (what the Dyn providers consult).
std::memory_order& site_order(SiteId id);
/// Restore every site to its production order.
void reset_site_orders();

/// One-step weakenings of `mo` for an op of kind `op`.
std::vector<std::memory_order> order_weakenings(std::memory_order mo, char op);

/// Scenarios exercising one primitive. `thorough` adds the larger
/// configurations (3-thread barrier) used for base verification only.
std::vector<Scenario> scenarios_for_primitive(const char* prim,
                                              bool thorough = false);

struct PrimCheck {
  std::string scenario;
  ExploreResult result;
};

/// Base verification: production orders, all primitives, all scenarios.
std::vector<PrimCheck> check_all_primitives(const ExploreLimits& lim = {});

struct MinFinding {
  const char* prim = "";
  const char* site = "";
  std::memory_order prod = std::memory_order_relaxed;
  std::memory_order varied = std::memory_order_relaxed;
  bool strengthening = false;  ///< historical-strength audit, not a weakening
  bool safe = false;           ///< all scenarios still pass under `varied`
  std::string error;           ///< exploration error (cap); distinct from cex
  std::string cex_reason;
  std::vector<std::string> cex_trace;
  long long executions = 0;
};

/// Weaken each site one step and re-verify; also re-runs the pin handshake
/// at its historical acq_rel/acquire strength (the documented downgrade:
/// thread_pool's pinned counter, see threads/pin_latch.hpp).
std::vector<MinFinding> minimality_sweep(const ExploreLimits& lim = {});

/// Re-verify one primitive with a single site forced to `mo` (negative
/// tests: a weakened barrier release must produce a counterexample trace).
ExploreResult check_with_site_order(SiteId site, std::memory_order mo,
                                    const ExploreLimits& lim = {});

}  // namespace analysis
}  // namespace cats
