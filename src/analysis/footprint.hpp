#pragma once
// Symbolic footprint analyzer (DESIGN.md §15): drive the *real* wave engine
// (wave/engine.hpp walkers, the production chain/NT/TV dispatch) over the
// *real* emitted TilePlans with kernels instantiated on recording element
// types (analysis/record.hpp), and check every recorded load/store address
// online against what the plan says the kernel may touch:
//
//  * halo containment — a store lands exactly in the slab's row segment of
//    the timestep-parity destination buffer; a load stays inside the
//    slope-S star reach of some active stage (center row [x0-S, x1-1+S],
//    off-axis rows/planes [x0, x1), coefficient bands same-row) and inside
//    the grid's legal ghost range;
//  * alignment — every load_aligned / store_aligned / stream store is
//    naturally vector-aligned (RecNtVec mirrors the production runtime
//    fallback, so only *required* alignment is a hard failure);
//  * NT-store eligibility — stream stores occur only in trailing-wavefront
//    stages, and no line streamed within a tile is reloaded before the
//    tile ends (streaming a line the tile still needs would be a
//    certification bug);
//  * write versioning — each element carries the timestep of its last
//    write; a load of timestep-t data must observe version t-1 (catches
//    both stale reads and WAR violations of the fused-chain stagger,
//    end-to-end through the engine's group building), and a store must
//    overwrite the t-2 parity value (or re-store its own t value — the TV
//    ragged-edge vectors intentionally rewrite identical values);
//  * buffer-parity non-aliasing — loads resolve only against the (t-1)&1
//    buffer, stores only against t&1, and coefficient bands are
//    read-only.
//
// Cross-tile ordering (who waits for whom) is the plan verifier's theorem
// (plan/verify.hpp); this analyzer drives tiles sequentially in a
// sync-edge-respecting topological order and checks what the verifier
// cannot see: the actual kernel/engine address streams between those sync
// points.

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/record.hpp"
#include "core/options.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"
#include "plan/plan.hpp"
#include "wave/engine.hpp"
#include "wave/mwd.hpp"

namespace cats {
namespace analysis {

struct FpDiag {
  std::string message;
};

/// One certified configuration's result (see footprint_sweep).
struct FpReport {
  std::string config;
  std::vector<FpDiag> diags;
  long long loads = 0;
  long long stores = 0;
  long long nt_stores = 0;
  long long nt_fallback = 0;
  bool ok() const { return diags.empty(); }
};

enum class GridRole : std::uint8_t { State, Band };

/// Layout descriptor of one registered grid (recovered from the grid's own
/// accessors, so the address->coordinate map is the production one).
struct GridView {
  const void* base = nullptr;
  std::size_t total_elems = 0;
  std::size_t pitch = 0;  ///< elements per storage row
  std::size_t slice = 0;  ///< elements per z-slice (0 for 2D grids)
  std::size_t lead = 0;   ///< elements before interior x=0 in each row
  int w = 0, h = 0, d = 1, ghost = 0;
  int elem_bytes = 0;
  int dims = 2;
  GridRole role = GridRole::State;
  int parity = 0;  ///< double-buffer parity (t & 1) this grid holds
  std::string name;
};

/// One active kernel-call stage: the row segment some process_row* /
/// process_stages* call is entitled to compute. 2D stages use z = 0.
struct FpStage {
  int t = 0;
  int y = 0;
  int z = 0;
  int x0 = 0, x1 = 0;
  bool nt = false;
};

class FootprintChecker {
 public:
  FootprintChecker(int dims, int slope) : dims_(dims), slope_(slope) {}

  template <class T>
  void add_state_grid_2d(const Grid2D<T>& g, int parity, const char* name) {
    GridView v;
    v.base = g.data();
    v.total_elems = g.size();
    v.pitch = g.pitch();
    v.slice = 0;
    v.lead = static_cast<std::size_t>(g.row(0) - g.data()) -
             static_cast<std::size_t>(g.ghost()) * g.pitch();
    v.w = g.width();
    v.h = g.height();
    v.d = 1;
    v.ghost = g.ghost();
    v.elem_bytes = static_cast<int>(sizeof(T));
    v.dims = 2;
    v.role = GridRole::State;
    v.parity = parity;
    v.name = name;
    add_grid(v);
  }

  template <class T>
  void add_band_grid_2d(const Grid2D<T>& g, int band, const char* family) {
    GridView v;
    v.base = g.data();
    v.total_elems = g.size();
    v.pitch = g.pitch();
    v.slice = 0;
    v.lead = static_cast<std::size_t>(g.row(0) - g.data()) -
             static_cast<std::size_t>(g.ghost()) * g.pitch();
    v.w = g.width();
    v.h = g.height();
    v.d = 1;
    v.ghost = g.ghost();
    v.elem_bytes = static_cast<int>(sizeof(T));
    v.dims = 2;
    v.role = GridRole::Band;
    v.name = std::string(family) + "/band" + std::to_string(band);
    add_grid(v);
  }

  template <class T>
  void add_state_grid_3d(const Grid3D<T>& g, int parity, const char* name) {
    GridView v;
    v.base = g.data();
    v.total_elems = g.size();
    v.pitch = g.pitch();
    v.slice = g.slice();
    v.lead = static_cast<std::size_t>(g.row(0, 0) - g.data()) -
             static_cast<std::size_t>(g.ghost()) * g.slice() -
             static_cast<std::size_t>(g.ghost()) * g.pitch();
    v.w = g.width();
    v.h = g.height();
    v.d = g.depth();
    v.ghost = g.ghost();
    v.elem_bytes = static_cast<int>(sizeof(T));
    v.dims = 3;
    v.role = GridRole::State;
    v.parity = parity;
    v.name = name;
    add_grid(v);
  }

  template <class T>
  void add_band_grid_3d(const Grid3D<T>& g, int band, const char* family) {
    GridView v;
    v.base = g.data();
    v.total_elems = g.size();
    v.pitch = g.pitch();
    v.slice = g.slice();
    v.lead = static_cast<std::size_t>(g.row(0, 0) - g.data()) -
             static_cast<std::size_t>(g.ghost()) * g.slice() -
             static_cast<std::size_t>(g.ghost()) * g.pitch();
    v.w = g.width();
    v.h = g.height();
    v.d = g.depth();
    v.ghost = g.ghost();
    v.elem_bytes = static_cast<int>(sizeof(T));
    v.dims = 3;
    v.role = GridRole::Band;
    v.name = std::string(family) + "/band" + std::to_string(band);
    add_grid(v);
  }

  /// Install this checker as the thread's access sink. Uninstall before it
  /// goes out of scope.
  void install() {
    g_access_hook.ctx = this;
    g_access_hook.fn = &FootprintChecker::trampoline;
  }
  static void uninstall() {
    g_access_hook.ctx = nullptr;
    g_access_hook.fn = nullptr;
  }

  void begin_call(const FpStage* st, int n) { stages_.assign(st, st + n); }
  void end_call() { stages_.clear(); }

  void begin_tile() { streamed_lines_.clear(); }
  void end_tile() { streamed_lines_.clear(); }

  const std::vector<FpDiag>& diags() const { return diags_; }
  long long loads() const { return loads_; }
  long long stores() const { return stores_; }
  long long nt_stores() const { return nt_stores_; }
  long long nt_fallback() const { return nt_fallback_; }

  void add_diag(std::string msg) {
    if (diags_.size() < kMaxDiags) diags_.push_back({std::move(msg)});
  }

  void on_access(const void* p, int bytes, AccessKind k) {
    const bool is_store = k == AccessKind::Store ||
                          k == AccessKind::StoreAligned ||
                          k == AccessKind::StoreNt ||
                          k == AccessKind::StoreNtFallback;
    if (is_store) {
      ++stores_;
      if (k == AccessKind::StoreNt) ++nt_stores_;
      if (k == AccessKind::StoreNtFallback) ++nt_fallback_;
    } else {
      ++loads_;
    }
    if (diags_.size() >= kMaxDiags) return;

    const GridView* gv = nullptr;
    std::size_t off = 0;
    if (!resolve(p, &gv, &off)) {
      add_diag(fmt("%s of %d bytes at %p hits no registered grid",
                   kind_name(k), bytes, p));
      return;
    }
    const int elems = bytes / gv->elem_bytes;
    int x = 0, y = 0, z = 0;
    to_coords(*gv, off, &x, &y, &z);

    // Required-alignment kinds must be naturally aligned to the full span.
    if ((k == AccessKind::LoadAligned || k == AccessKind::StoreAligned ||
         k == AccessKind::StoreNt) &&
        elems > 1 &&
        (reinterpret_cast<std::uintptr_t>(p) &
         (static_cast<std::uintptr_t>(bytes) - 1)) != 0) {
      add_diag(fmt("misaligned %s at %p (grid %s, x=%d y=%d z=%d, span %d "
                   "bytes): stream/aligned access requires natural alignment%s",
                   kind_name(k), p, gv->name.c_str(), x, y, z, bytes,
                   stage_ctx().c_str()));
      return;
    }

    // Legal ghost range of the grid itself.
    const int g = gv->ghost;
    if (x < -g || x + elems > gv->w + g || y < -g || y >= gv->h + g ||
        z < -g || z >= gv->d + g) {
      add_diag(fmt("%s outside legal ghost range: grid %s x=[%d,%d) y=%d "
                   "z=%d, legal x=[-%d,%d)%s",
                   kind_name(k), gv->name.c_str(), x, x + elems, y, z, g,
                   gv->w + g, stage_ctx().c_str()));
      return;
    }

    if (is_store) {
      check_store(*gv, off, x, y, z, elems, k);
    } else {
      check_load(*gv, off, x, y, z, elems, k);
    }
  }

 private:
  static constexpr std::size_t kMaxDiags = 32;

  static void trampoline(void* ctx, const void* p, int bytes, AccessKind k) {
    static_cast<FootprintChecker*>(ctx)->on_access(p, bytes, k);
  }

  static const char* kind_name(AccessKind k) {
    switch (k) {
      case AccessKind::Load: return "load";
      case AccessKind::LoadAligned: return "aligned load";
      case AccessKind::Store: return "store";
      case AccessKind::StoreAligned: return "aligned store";
      case AccessKind::StoreNt: return "stream store";
      case AccessKind::StoreNtFallback: return "stream-fallback store";
    }
    return "?";
  }

  static std::string fmt(const char* f, ...)
      __attribute__((format(printf, 1, 2))) {
    char buf[512];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
  }

  std::string stage_ctx() const {
    std::string s = "; active stages:";
    if (stages_.empty()) return s + " (none)";
    for (const FpStage& st : stages_) {
      s += fmt(" {t=%d y=%d z=%d x=[%d,%d)%s}", st.t, st.y, st.z, st.x0,
               st.x1, st.nt ? " nt" : "");
    }
    return s;
  }

  void add_grid(GridView v) {
    version_.emplace_back(v.role == GridRole::State ? v.total_elems : 0, 0);
    grids_.push_back(std::move(v));
  }

  bool resolve(const void* p, const GridView** out, std::size_t* off) {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    for (std::size_t i = 0; i < grids_.size(); ++i) {
      const GridView& g = grids_[i];
      const auto b = reinterpret_cast<std::uintptr_t>(g.base);
      const std::uintptr_t sz =
          g.total_elems * static_cast<std::uintptr_t>(g.elem_bytes);
      if (a >= b && a < b + sz) {
        *out = &grids_[i];
        *off = (a - b) / static_cast<std::uintptr_t>(g.elem_bytes);
        grid_idx_ = i;
        return true;
      }
    }
    return false;
  }

  void to_coords(const GridView& g, std::size_t off, int* x, int* y,
                 int* z) const {
    std::size_t rem = off;
    if (g.dims == 3) {
      *z = static_cast<int>(rem / g.slice) - g.ghost;
      rem %= g.slice;
    } else {
      *z = 0;
    }
    *y = static_cast<int>(rem / g.pitch) - g.ghost;
    rem %= g.pitch;
    *x = static_cast<int>(rem) - static_cast<int>(g.lead);
  }

  bool interior(const GridView& g, int x, int y, int z) const {
    return x >= 0 && x < g.w && y >= 0 && y < g.h && z >= 0 && z < g.d;
  }

  void check_store(const GridView& g, std::size_t off, int x, int y, int z,
                   int elems, AccessKind k) {
    if (g.role == GridRole::Band) {
      add_diag(fmt("store to read-only coefficient band %s at x=%d y=%d "
                   "z=%d%s",
                   g.name.c_str(), x, y, z, stage_ctx().c_str()));
      return;
    }
    const FpStage* match = nullptr;
    bool nt_ok = false;
    for (const FpStage& st : stages_) {
      if (g.parity != (st.t & 1)) continue;
      if (y != st.y || z != st.z) continue;
      if (x < st.x0 || x + elems > st.x1) continue;
      match = &st;
      nt_ok = nt_ok || st.nt;
    }
    if (match == nullptr) {
      add_diag(fmt("%s outside any stage's output segment: grid %s "
                   "(parity %d) x=[%d,%d) y=%d z=%d%s",
                   kind_name(k), g.name.c_str(), g.parity, x, x + elems, y, z,
                   stage_ctx().c_str()));
      return;
    }
    if (k == AccessKind::StoreNt && !nt_ok) {
      add_diag(fmt("stream store in a non-trailing stage: grid %s x=[%d,%d) "
                   "y=%d z=%d%s",
                   g.name.c_str(), x, x + elems, y, z, stage_ctx().c_str()));
      return;
    }
    if (k == AccessKind::StoreNt) {
      const auto a = reinterpret_cast<std::uintptr_t>(g.base) +
                     off * static_cast<std::uintptr_t>(g.elem_bytes);
      const std::uintptr_t last =
          a + static_cast<std::uintptr_t>(elems * g.elem_bytes) - 1;
      for (std::uintptr_t line = a >> 6; line <= (last >> 6); ++line) {
        streamed_lines_.insert(line);
      }
    }
    // Version update: the destination held the t-2 parity value (0 = the
    // initial condition), or t itself (the TV ragged-edge rewrite of an
    // identical value).
    const int t = match->t;
    std::vector<std::int32_t>& ver = version_[grid_idx_];
    const std::int32_t expect = t >= 2 ? t - 2 : 0;
    for (int i = 0; i < elems; ++i) {
      const std::int32_t old = ver[off + static_cast<std::size_t>(i)];
      if (old != expect && old != t) {
        add_diag(fmt("WAR/version violation on store: grid %s x=%d y=%d z=%d "
                     "holds t=%d data, stage t=%d expected t=%d (stagger "
                     "broken?)%s",
                     g.name.c_str(), x + i, y, z, old, t, expect,
                     stage_ctx().c_str()));
        return;
      }
      ver[off + static_cast<std::size_t>(i)] = t;
    }
  }

  void check_load(const GridView& g, std::size_t off, int x, int y, int z,
                  int elems, AccessKind k) {
    // A line streamed past the cache earlier in this tile must not be
    // reloaded before the tile ends — that would defeat (and falsify) the
    // NT residency certification.
    if (!streamed_lines_.empty()) {
      const auto a = reinterpret_cast<std::uintptr_t>(g.base) +
                     off * static_cast<std::uintptr_t>(g.elem_bytes);
      const std::uintptr_t last =
          a + static_cast<std::uintptr_t>(elems * g.elem_bytes) - 1;
      for (std::uintptr_t line = a >> 6; line <= (last >> 6); ++line) {
        if (streamed_lines_.count(line) != 0) {
          add_diag(fmt("reload of a line streamed within this tile: grid %s "
                       "x=[%d,%d) y=%d z=%d%s",
                       g.name.c_str(), x, x + elems, y, z,
                       stage_ctx().c_str()));
          return;
        }
      }
    }
    const int S = slope_;
    const FpStage* matches[8];
    int nm = 0;
    for (const FpStage& st : stages_) {
      if (nm == 8) break;
      if (g.role == GridRole::Band) {
        if (y == st.y && z == st.z && x >= st.x0 && x + elems <= st.x1) {
          matches[nm++] = &st;
        }
        continue;
      }
      if (g.parity != ((st.t - 1) & 1)) continue;
      const int dy = y - st.y;
      const int dz = z - st.z;
      if (dy == 0 && dz == 0) {
        // Center row: x reach extends S beyond the segment on both sides.
        if (x >= st.x0 - S && x + elems <= st.x1 + S) matches[nm++] = &st;
      } else if ((dz == 0 && dy >= -S && dy <= S) ||
                 (dy == 0 && dz >= -S && dz <= S)) {
        // Off-axis star arm: same x segment as the outputs.
        if (x >= st.x0 && x + elems <= st.x1) matches[nm++] = &st;
      }
    }
    if (nm == 0) {
      add_diag(fmt("halo violation: %s of grid %s (%s) x=[%d,%d) y=%d z=%d "
                   "outside the slope-%d reach of every active stage%s",
                   kind_name(k), g.name.c_str(),
                   g.role == GridRole::Band ? "band" : "state", x, x + elems,
                   y, z, S, stage_ctx().c_str()));
      return;
    }
    if (g.role == GridRole::Band) return;
    // Version check: interior elements must hold exactly the t-1 value of
    // some geometrically matching stage (ghost cells hold time-invariant
    // boundary data and are exempt).
    const std::vector<std::int32_t>& ver = version_[grid_idx_];
    for (int i = 0; i < elems; ++i) {
      if (!interior(g, x + i, y, z)) continue;
      const std::int32_t v = ver[off + static_cast<std::size_t>(i)];
      bool ok = false;
      for (int m = 0; m < nm; ++m) {
        if (v == matches[m]->t - 1) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        add_diag(fmt("stale read: grid %s x=%d y=%d z=%d holds t=%d data; "
                     "no matching stage expects it (stage t-1 values "
                     "differ)%s",
                     g.name.c_str(), x + i, y, z, v, stage_ctx().c_str()));
        return;
      }
    }
  }

  int dims_;
  int slope_;
  std::vector<GridView> grids_;
  std::vector<std::vector<std::int32_t>> version_;
  std::size_t grid_idx_ = 0;  ///< set by resolve(), indexes version_
  std::vector<FpStage> stages_;
  std::unordered_set<std::uintptr_t> streamed_lines_;
  std::vector<FpDiag> diags_;
  long long loads_ = 0;
  long long stores_ = 0;
  long long nt_stores_ = 0;
  long long nt_fallback_ = 0;
};

/// RAII stage context for one kernel call.
class FpCallScope {
 public:
  FpCallScope(FootprintChecker& c, const FpStage* st, int n) : c_(&c) {
    c_->begin_call(st, n);
  }
  ~FpCallScope() { c_->end_call(); }
  FpCallScope(const FpCallScope&) = delete;
  FpCallScope& operator=(const FpCallScope&) = delete;

 private:
  FootprintChecker* c_;
};

/// Transparent 2D kernel wrapper: forwards every engine-facing entry point
/// to the recording-instantiated kernel, bracketing each call with its
/// stage context so the checker can attribute every address. Requires the
/// full-featured kernel interface (process_row/_nt/process_stages/_tv) —
/// which all analyzed families provide.
template <class K>
class RecWrap2D {
 public:
  RecWrap2D(K& k, FootprintChecker& c) : k_(&k), c_(&c) {}

  void process_row(int t, int y, int x0, int x1) {
    const FpStage s{t, y, 0, x0, x1, false};
    FpCallScope scope(*c_, &s, 1);
    k_->process_row(t, y, x0, x1);
  }
  void process_row_scalar(int t, int y, int x0, int x1) {
    const FpStage s{t, y, 0, x0, x1, false};
    FpCallScope scope(*c_, &s, 1);
    k_->process_row_scalar(t, y, x0, x1);
  }
  void process_row_nt(int t, int y, int x0, int x1) {
    const FpStage s{t, y, 0, x0, x1, true};
    FpCallScope scope(*c_, &s, 1);
    k_->process_row_nt(t, y, x0, x1);
  }
  void process_stages(const WaveStage* st, int n) {
    FpStage s[4];
    for (int i = 0; i < n; ++i) {
      s[i] = FpStage{st[i].t, st[i].y, 0, st[i].x0, st[i].x1, st[i].nt};
    }
    FpCallScope scope(*c_, s, n);
    ++stages_calls;
    k_->process_stages(st, n);
  }
  void process_stages_tv(const WaveStage* st, int n) {
    FpStage s[4];
    for (int i = 0; i < n; ++i) {
      s[i] = FpStage{st[i].t, st[i].y, 0, st[i].x0, st[i].x1, st[i].nt};
    }
    FpCallScope scope(*c_, s, n);
    ++tv_calls;
    k_->process_stages_tv(st, n);
  }

  long long stages_calls = 0;  ///< fused-group invocations observed
  long long tv_calls = 0;      ///< temporally-vectorized group invocations

 private:
  K* k_;
  FootprintChecker* c_;
};

/// Transparent 3D kernel wrapper (see RecWrap2D).
template <class K>
class RecWrap3D {
 public:
  static constexpr bool wave_fusable = true;  ///< engine-side fusion opt-in

  RecWrap3D(K& k, FootprintChecker& c) : k_(&k), c_(&c) {}

  void process_row(int t, int y, int z, int x0, int x1) {
    const FpStage s{t, y, z, x0, x1, false};
    FpCallScope scope(*c_, &s, 1);
    k_->process_row(t, y, z, x0, x1);
  }
  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    const FpStage s{t, y, z, x0, x1, false};
    FpCallScope scope(*c_, &s, 1);
    k_->process_row_scalar(t, y, z, x0, x1);
  }
  void process_row_nt(int t, int y, int z, int x0, int x1) {
    const FpStage s{t, y, z, x0, x1, true};
    FpCallScope scope(*c_, &s, 1);
    k_->process_row_nt(t, y, z, x0, x1);
  }
  void process_row_tv(int t, int y, int z, int x0, int x1, bool nt) {
    const FpStage s{t, y, z, x0, x1, nt};
    FpCallScope scope(*c_, &s, 1);
    ++tv_rows;
    k_->process_row_tv(t, y, z, x0, x1, nt);
  }

  long long tv_rows = 0;  ///< temporally-vectorized row invocations

 private:
  K* k_;
  FootprintChecker* c_;
};

/// Sequential tile order respecting the plan's phases and sync edges
/// (Kahn; stable by tile index within a phase). The plan verifier proves
/// the edges sufficient for the parallel execution; any edge-respecting
/// sequential order therefore produces the dependence-legal address
/// streams this analyzer checks.
inline std::vector<int> plan_topo_order(const plan_ir::TilePlan& p) {
  const int n = static_cast<int>(p.tiles.size());
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  for (const plan_ir::SyncEdge& e : p.edges) {
    out[static_cast<std::size_t>(e.from)].push_back(e.to);
    ++indeg[static_cast<std::size_t>(e.to)];
  }
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(order.size()) < n) {
    int pick = -1;
    for (int i = 0; i < n; ++i) {
      if (done[static_cast<std::size_t>(i)] != 0 ||
          indeg[static_cast<std::size_t>(i)] != 0) {
        continue;
      }
      if (pick == -1 ||
          p.tiles[static_cast<std::size_t>(i)].phase <
              p.tiles[static_cast<std::size_t>(pick)].phase) {
        pick = i;
      }
    }
    if (pick == -1) break;  // cycle: the verifier's problem, not ours
    done[static_cast<std::size_t>(pick)] = 1;
    order.push_back(pick);
    for (int to : out[static_cast<std::size_t>(pick)]) {
      --indeg[static_cast<std::size_t>(to)];
    }
  }
  return order;
}

/// Drive one 2D recording kernel through the production wave walker over
/// every tile of the plan, in topological order, with per-tile NT line
/// tracking.
template <class RecK>
void drive_plan_2d(RecK& rk, const plan_ir::TilePlan& p,
                   const RunOptions& opt, FootprintChecker& chk) {
  wave::WaveWalker2D<false, RecK> walker(rk, p, opt);
  chk.install();
  for (int ti : plan_topo_order(p)) {
    chk.begin_tile();
    plan_ir::for_each_slab(p, p.tiles[static_cast<std::size_t>(ti)],
                           [&](const plan_ir::Slab& sl) { walker(sl); });
    walker.end_tile();
    chk.end_tile();
  }
  FootprintChecker::uninstall();
}

/// 3D twin of drive_plan_2d.
template <class RecK>
void drive_plan_3d(RecK& rk, const plan_ir::TilePlan& p,
                   const RunOptions& opt, FootprintChecker& chk) {
  wave::WaveWalker3D<false, RecK> walker(rk, p, opt);
  chk.install();
  for (int ti : plan_topo_order(p)) {
    chk.begin_tile();
    plan_ir::for_each_slab(p, p.tiles[static_cast<std::size_t>(ti)],
                           [&](const plan_ir::Slab& sl) { walker(sl); });
    walker.end_tile();
    chk.end_tile();
  }
  FootprintChecker::uninstall();
}

/// Grouped (MWD) drivers: emulate each tile's m-member window pipeline
/// sequentially, member-major. That is a dependence-legal linearization of
/// the barrier schedule — every producer's time band (hence member index)
/// is <= its consumer's (wave/mwd.hpp), so running member k fully before
/// member k+1 preserves every ordering the barriers enforce. The per-window
/// walker flushes run inside mwd_walk_tile, exactly as in production, so
/// fused-group shapes and NT/fence points match the parallel execution.
template <class RecK>
void drive_plan_2d_mwd(RecK& rk, const plan_ir::TilePlan& p,
                       const RunOptions& opt, FootprintChecker& chk) {
  const int m = std::max(1, p.mwd_group);
  wave::WaveWalker2D<false, RecK> walker(rk, p, opt);
  chk.install();
  for (int ti : plan_topo_order(p)) {
    chk.begin_tile();
    for (int member = 0; member < m; ++member) {
      wave::mwd_walk_tile(p, p.tiles[static_cast<std::size_t>(ti)], member, m,
                          [] {}, walker);
    }
    chk.end_tile();
  }
  FootprintChecker::uninstall();
}

/// 3D twin of drive_plan_2d_mwd.
template <class RecK>
void drive_plan_3d_mwd(RecK& rk, const plan_ir::TilePlan& p,
                       const RunOptions& opt, FootprintChecker& chk) {
  const int m = std::max(1, p.mwd_group);
  wave::WaveWalker3D<false, RecK> walker(rk, p, opt);
  chk.install();
  for (int ti : plan_topo_order(p)) {
    chk.begin_tile();
    for (int member = 0; member < m; ++member) {
      wave::mwd_walk_tile(p, p.tiles[static_cast<std::size_t>(ti)], member, m,
                          [] {}, walker);
    }
    chk.end_tile();
  }
  FootprintChecker::uninstall();
}

/// The CI matrix: every kernel family x scheme x {unroll_t 0..4} x
/// {nt_stores} x {temporal_vec} (x {fp64, fp32} for the const2d family),
/// each driven over a small emitted plan and certified clean. Exercise
/// assertions (streams observed when armed, TV groups formed when enabled)
/// are reported as diagnostics too — a vacuous certification is a failure.
std::vector<FpReport> footprint_sweep();

}  // namespace analysis
}  // namespace cats
