#pragma once
// Simulated substrate for the sync primitives (src/analysis model checker).
//
// SimShim satisfies the same policy contract as RealSyncShim
// (threads/sync_shim.hpp), so BasicSpinBarrier<SimShim>,
// BasicProgressCell<SimShim>, ... are the *production algorithm bodies*
// executing against the weak-memory interpreter: every atomic operation
// announces itself to the explorer (analysis/explore.hpp), which picks the
// interleaving and — for loads — the store read, per
// analysis/weak_memory.hpp. pause()/yield() park the thread: a parked
// thread is schedulable only once a fresh store lands on a location it
// read since the last park, which is what makes spin loops finite to
// explore (each wake consumes a new store, and the first probe of every
// wait is still free to read stale values).
//
// All sim_* entry points require an active exploration on this thread
// (they are called from scenario bodies running under explore()); they are
// implemented in analysis/explore.cpp.

#include <atomic>
#include <cstdint>

#include "threads/sync_observer.hpp"

namespace cats {
namespace analysis {

/// Label the next locations registered via SimAtomic construction, in
/// order. Call immediately before constructing a primitive so
/// counterexample traces name its cells ("count_", "sense_", ...).
void sim_name_locs(std::initializer_list<const char*> names);

int sim_new_loc(long long init);
long long sim_load(int loc, std::memory_order mo);
void sim_store(int loc, long long v, std::memory_order mo);
long long sim_rmw_add(int loc, long long delta, std::memory_order mo);
long long sim_rmw_xchg(int loc, long long v, std::memory_order mo);
void sim_park();

int sim_data_new(const char* name);
long long sim_data_read(int id);
void sim_data_write(int id, long long v);

/// Scenario assertion: a false condition is a counterexample (the trace is
/// attached by the explorer).
void sim_check(bool cond, const char* what);

/// Atomic cell facade with the std::atomic member signatures the
/// primitives use (load/store/fetch_add/exchange with explicit orders).
template <class T>
class SimAtomic {
 public:
  SimAtomic(T v = T{}) : loc_(sim_new_loc(static_cast<long long>(v))) {}
  SimAtomic(const SimAtomic&) = delete;
  SimAtomic& operator=(const SimAtomic&) = delete;

  T load(std::memory_order mo) const {
    return static_cast<T>(sim_load(loc_, mo));
  }
  void store(T v, std::memory_order mo) {
    sim_store(loc_, static_cast<long long>(v), mo);
  }
  T fetch_add(T v, std::memory_order mo) {
    return static_cast<T>(sim_rmw_add(loc_, static_cast<long long>(v), mo));
  }
  T exchange(T v, std::memory_order mo) {
    return static_cast<T>(sim_rmw_xchg(loc_, static_cast<long long>(v), mo));
  }

 private:
  int loc_;
};

struct SimShim {
  template <class T>
  using Atomic = SimAtomic<T>;

  static void pause(int& /*exponent*/) { sim_park(); }
  static void yield() { sim_park(); }
  static SyncObserver* observer() noexcept { return nullptr; }
  static std::int64_t now_ns() { return 0; }
};

/// Non-atomic shared variable: accesses are *not* scheduling points; the
/// interpreter race-checks them with vector clocks (TSan-style, order
/// independent), so a weakened annotation shows up as a data race here.
class SimData {
 public:
  explicit SimData(const char* name) : id_(sim_data_new(name)) {}
  SimData(const SimData&) = delete;
  SimData& operator=(const SimData&) = delete;

  long long read() const { return sim_data_read(id_); }
  void write(long long v) { sim_data_write(id_, v); }

 private:
  int id_;
};

}  // namespace analysis
}  // namespace cats
