#include "analysis/explore.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/sim_shim.hpp"
#include "analysis/weak_memory.hpp"
#include "check/check.hpp"

namespace cats {
namespace analysis {
namespace {

/// Thrown through a scenario body (and the primitive code inside it) to
/// unwind a worker when the explorer abandons the current execution.
struct AbortExecution {};

enum class Phase : std::uint8_t { Idle, Running, Announced, Parked, Finished };

struct Sim;

struct ThreadSlot {
  int tid = -1;
  Sim* sim = nullptr;

  // Handoff protocol (guarded by Sim::m).
  Phase phase = Phase::Idle;
  bool start = false;
  bool abort = false;
  PendingOp pending{};
  long long result = 0;

  // Memory-model state (touched only by the slot's thread while Running or
  // by the explorer while the slot is quiescent — strict handoff).
  Clock clock;
  std::vector<int> last_idx;     ///< per-location coherence floor
  std::vector<int> reads_since;  ///< locs loaded since last park/write
  std::vector<int> spin_set;     ///< valid while Parked
  std::vector<int> forced;       ///< wake-read locations (must read fresh)
};

struct LocState {
  std::string name;
  std::vector<StoreRec> hist;  ///< modification order = append order
};

struct DataState {
  std::string name;
  bool has_write = false;
  int writer = -1;
  Clock wvc;
  long long val = 0;
  std::vector<Clock> read_vc;  ///< per thread; empty clock = no read yet
};

struct DecisionPoint {
  char kind = 'S';  ///< 'S' thread choice, 'R' read-from choice
  int cur = 0;
  std::vector<int> options;  ///< tids ('S') or store indices ('R')
};

struct Sim {
  int n = 0;
  ExploreLimits lim;

  std::vector<LocState> locs;
  std::vector<DataState> data;
  std::vector<std::string> pending_names;
  std::vector<ThreadSlot> slots;
  ThreadSlot setup;

  std::vector<std::string> trace;
  int step = 0;
  bool cex_flag = false;
  std::string cex_reason;
  std::string run_error;

  std::vector<DecisionPoint> stack;
  std::size_t depth = 0;
  std::vector<char> asleep;
  long long pruned = 0;

  std::vector<std::function<void()>> bodies;
  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv;
  bool shutting_down = false;

  void trace_op(int tid, const std::string& text) {
    std::ostringstream os;
    os << "#" << step << " T" << tid << "  " << text;
    trace.push_back(os.str());
  }
  void fail(const std::string& reason) {
    if (!cex_flag) {
      cex_flag = true;
      cex_reason = reason;
    }
  }
  const std::string& loc_name(int loc) const { return locs[(std::size_t)loc].name; }
  int ensure_loc_size(ThreadSlot& s) {
    if (s.last_idx.size() < locs.size()) s.last_idx.resize(locs.size(), 0);
    return 0;
  }
};

thread_local ThreadSlot* t_slot = nullptr;

// ---------------------------------------------------------------------------
// Worker side

long long announce_and_wait(ThreadSlot* s, const PendingOp& op) {
  Sim* sim = s->sim;
  std::unique_lock<std::mutex> lk(sim->m);
  s->pending = op;
  s->phase = Phase::Announced;
  sim->cv.notify_all();
  sim->cv.wait(lk, [&] { return s->phase == Phase::Running || s->abort; });
  if (s->abort) throw AbortExecution{};
  return s->result;
}

void worker_entry(Sim* sim, int tid) {
  ThreadSlot& s = sim->slots[(std::size_t)tid];
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(sim->m);
      sim->cv.wait(lk, [&] { return s.start || sim->shutting_down; });
      if (sim->shutting_down) return;
      s.start = false;
    }
    t_slot = &s;
    try {
      sim->bodies[(std::size_t)tid]();
    } catch (const AbortExecution&) {
    }
    t_slot = nullptr;
    {
      std::lock_guard<std::mutex> lk(sim->m);
      s.phase = Phase::Finished;
      sim->cv.notify_all();
    }
  }
}

/// Fail from inside a running body (data race / failed check): record the
/// counterexample, then unwind this thread. The explorer regains control
/// when the unwind reaches the worker loop (phase -> Finished).
[[noreturn]] void body_fail(Sim* sim, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(sim->m);
    sim->fail(reason);
  }
  throw AbortExecution{};
}

// ---------------------------------------------------------------------------
// Explorer side (all slots quiescent while these run)

bool store_hidden(const LocState& L, int idx, const Clock& reader) {
  for (int j = idx + 1; j < (int)L.hist.size(); ++j) {
    if (clock_leq(L.hist[(std::size_t)j].vc, reader)) return true;
  }
  return false;
}

/// Readable stores for a load by slot s: at/after the coherence floor
/// (strictly after, for a forced wake-read) and not hidden by a
/// happens-before-later store.
std::vector<int> read_candidates(Sim& sim, ThreadSlot& s, int loc, bool forced) {
  sim.ensure_loc_size(s);
  const LocState& L = sim.locs[(std::size_t)loc];
  const int lo = forced ? s.last_idx[(std::size_t)loc] + 1 : s.last_idx[(std::size_t)loc];
  std::vector<int> out;
  for (int i = lo; i < (int)L.hist.size(); ++i) {
    if (!store_hidden(L, i, s.clock)) out.push_back(i);
  }
  return out;
}

bool parked_enabled(Sim& sim, ThreadSlot& s) {
  sim.ensure_loc_size(s);
  for (int loc : s.spin_set) {
    const LocState& L = sim.locs[(std::size_t)loc];
    if ((int)L.hist.size() - 1 > s.last_idx[(std::size_t)loc]) return true;
  }
  return false;
}

bool is_write_kind(SimOpKind k) {
  return k == SimOpKind::Store || k == SimOpKind::RmwAdd ||
         k == SimOpKind::RmwXchg;
}

/// Dependence for sleep-set wakeups: the executed op (loc `eloc`, write or
/// not) vs a sleeping thread's pending op. Same location with at least one
/// write; a parked thread's pending counts as reads of its spin set.
bool dependent_with(const ThreadSlot& u, int eloc, bool ewrite) {
  if (u.phase == Phase::Parked) {
    if (!ewrite) return false;
    return std::find(u.spin_set.begin(), u.spin_set.end(), eloc) !=
           u.spin_set.end();
  }
  if (u.phase != Phase::Announced) return false;
  if (u.pending.loc != eloc) return false;
  return ewrite || is_write_kind(u.pending.kind);
}

void wake_sleepers(Sim& sim, int eloc, bool ewrite) {
  for (int tid = 0; tid < sim.n; ++tid) {
    if (sim.asleep[(std::size_t)tid] &&
        dependent_with(sim.slots[(std::size_t)tid], eloc, ewrite)) {
      sim.asleep[(std::size_t)tid] = false;
    }
  }
}

/// Pick the next value at the current decision depth, storing the options
/// on first visit. Returns -1 when options is empty (pruned subtree).
int decide(Sim& sim, char kind, std::vector<int> options) {
  if (sim.depth == sim.stack.size()) {
    DecisionPoint dp;
    dp.kind = kind;
    dp.options = std::move(options);
    sim.stack.push_back(std::move(dp));
  }
  DecisionPoint& dp = sim.stack[sim.depth];
  CATS_CHECK(dp.kind == kind, "analysis explorer: replay divergence at depth %d",
             (int)sim.depth);
  sim.depth++;
  if (dp.options.empty()) return -1;
  return dp.options[(std::size_t)dp.cur];
}

void grant(Sim& sim, ThreadSlot& s, long long result) {
  std::lock_guard<std::mutex> lk(sim.m);
  s.result = result;
  s.phase = Phase::Running;
  sim.cv.notify_all();
}

/// Block until no slot is Running, then convert Park announcements into the
/// Parked state (a park is not a visible memory action — no decision).
void wait_quiescent(Sim& sim) {
  std::unique_lock<std::mutex> lk(sim.m);
  sim.cv.wait(lk, [&] {
    for (const ThreadSlot& s : sim.slots) {
      if (s.phase == Phase::Running) return false;
    }
    return true;
  });
  for (ThreadSlot& s : sim.slots) {
    if (s.phase == Phase::Announced && s.pending.kind == SimOpKind::Park) {
      s.phase = Phase::Parked;
      s.spin_set = s.reads_since;
      s.reads_since.clear();
      s.forced.clear();
      sim.trace_op(s.tid, [&] {
        std::string t = "park {";
        for (std::size_t i = 0; i < s.spin_set.size(); ++i) {
          if (i) t += ",";
          t += sim.loc_name(s.spin_set[i]);
        }
        return t + "}";
      }());
    }
  }
}

void abort_all(Sim& sim) {
  {
    std::lock_guard<std::mutex> lk(sim.m);
    for (ThreadSlot& s : sim.slots) {
      if (s.phase != Phase::Finished && s.phase != Phase::Idle) s.abort = true;
    }
    sim.cv.notify_all();
  }
  std::unique_lock<std::mutex> lk(sim.m);
  sim.cv.wait(lk, [&] {
    for (const ThreadSlot& s : sim.slots) {
      if (s.phase != Phase::Finished && s.phase != Phase::Idle) return false;
    }
    return true;
  });
}

/// Execute slot s's announced load (read-from decision included) and grant
/// the value. Returns false when the read decision hit a pruned subtree.
bool exec_load(Sim& sim, ThreadSlot& s) {
  const PendingOp op = s.pending;
  const bool forced =
      std::find(s.forced.begin(), s.forced.end(), op.loc) != s.forced.end();
  std::vector<int> cands = read_candidates(sim, s, op.loc, forced);
  s.forced.clear();  // one fresh read per wake; round-2 stale peeks stay legal
  CATS_CHECK(!cands.empty(),
             "analysis explorer: load of %s has no readable store",
             sim.loc_name(op.loc).c_str());
  const int idx = decide(sim, 'R', std::move(cands));
  if (idx < 0) return false;
  LocState& L = sim.locs[(std::size_t)op.loc];
  const StoreRec& st = L.hist[(std::size_t)idx];
  s.last_idx[(std::size_t)op.loc] =
      std::max(s.last_idx[(std::size_t)op.loc], idx);
  s.clock[(std::size_t)s.tid]++;
  if (mo_is_acquire(op.mo) && st.has_msg) clock_join(s.clock, st.msg);
  if (std::find(s.reads_since.begin(), s.reads_since.end(), op.loc) ==
      s.reads_since.end()) {
    s.reads_since.push_back(op.loc);
  }
  std::ostringstream os;
  os << "load " << L.name << " (" << mo_name(op.mo) << ") = " << st.value
     << " [mo#" << idx << (forced ? ", wake-read" : "") << "]";
  sim.trace_op(s.tid, os.str());
  wake_sleepers(sim, op.loc, /*ewrite=*/false);
  grant(sim, s, st.value);
  return true;
}

void exec_store(Sim& sim, ThreadSlot& s) {
  const PendingOp op = s.pending;
  sim.ensure_loc_size(s);
  LocState& L = sim.locs[(std::size_t)op.loc];
  s.clock[(std::size_t)s.tid]++;
  StoreRec st;
  st.idx = (int)L.hist.size();
  st.thread = s.tid;
  st.value = op.operand;
  st.order = op.mo;
  st.vc = s.clock;
  st.has_msg = mo_is_release(op.mo);
  if (st.has_msg) st.msg = s.clock;
  L.hist.push_back(std::move(st));
  s.last_idx[(std::size_t)op.loc] = (int)L.hist.size() - 1;
  s.reads_since.clear();
  std::ostringstream os;
  os << "store " << L.name << " = " << op.operand << " (" << mo_name(op.mo)
     << ")";
  sim.trace_op(s.tid, os.str());
  wake_sleepers(sim, op.loc, /*ewrite=*/true);
  grant(sim, s, 0);
}

void exec_rmw(Sim& sim, ThreadSlot& s) {
  const PendingOp op = s.pending;
  sim.ensure_loc_size(s);
  LocState& L = sim.locs[(std::size_t)op.loc];
  const StoreRec& prev = L.hist.back();  // atomicity: read the tail
  s.clock[(std::size_t)s.tid]++;
  if (mo_is_acquire(op.mo) && prev.has_msg) clock_join(s.clock, prev.msg);
  const long long oldv = prev.value;
  const long long newv =
      op.kind == SimOpKind::RmwAdd ? oldv + op.operand : op.operand;
  StoreRec st;
  st.idx = (int)L.hist.size();
  st.thread = s.tid;
  st.value = newv;
  st.order = op.mo;
  st.is_rmw = true;
  st.vc = s.clock;
  // An RMW continues every release sequence containing its predecessor.
  st.has_msg = prev.has_msg || mo_is_release(op.mo);
  if (prev.has_msg) st.msg = prev.msg;
  if (mo_is_release(op.mo)) clock_join(st.msg, s.clock);
  L.hist.push_back(std::move(st));
  s.last_idx[(std::size_t)op.loc] = (int)L.hist.size() - 1;
  s.reads_since.clear();
  std::ostringstream os;
  os << (op.kind == SimOpKind::RmwAdd ? "fetch_add " : "exchange ") << L.name
     << " (" << mo_name(op.mo) << ") " << oldv << " -> " << newv;
  sim.trace_op(s.tid, os.str());
  wake_sleepers(sim, op.loc, /*ewrite=*/true);
  grant(sim, s, oldv);
}

enum class ExecStatus { Ok, Cex, Pruned, Error };

ExecStatus run_one_execution(Sim& sim, const Scenario& sc) {
  // Reset per-execution state.
  sim.locs.clear();
  sim.data.clear();
  sim.pending_names.clear();
  sim.trace.clear();
  sim.step = 0;
  sim.cex_flag = false;
  sim.cex_reason.clear();
  sim.depth = 0;
  sim.asleep.assign((std::size_t)sim.n, 0);
  for (ThreadSlot& s : sim.slots) {
    s.phase = Phase::Idle;
    s.start = false;
    s.abort = false;
    s.pending = PendingOp{};
    s.clock.assign((std::size_t)sim.n + 1, 0);
    s.last_idx.clear();
    s.reads_since.clear();
    s.spin_set.clear();
    s.forced.clear();
  }
  sim.setup.clock.assign((std::size_t)sim.n + 1, 0);
  sim.setup.clock[(std::size_t)sim.n] = 1;

  // World construction on the explorer thread (setup context): initial
  // stores land with the setup clock, which every thread inherits.
  t_slot = &sim.setup;
  sim.bodies = sc.make();
  t_slot = nullptr;
  CATS_CHECK((int)sim.bodies.size() == sim.n,
             "scenario %s: %d bodies for %d threads", sc.name.c_str(),
             (int)sim.bodies.size(), sim.n);
  for (ThreadSlot& s : sim.slots) s.clock = sim.setup.clock;

  {
    std::lock_guard<std::mutex> lk(sim.m);
    for (ThreadSlot& s : sim.slots) {
      s.start = true;
      s.phase = Phase::Running;
    }
    sim.cv.notify_all();
  }

  for (;;) {
    wait_quiescent(sim);
    if (sim.cex_flag) {
      abort_all(sim);
      return ExecStatus::Cex;
    }
    bool all_finished = true;
    for (const ThreadSlot& s : sim.slots) {
      if (s.phase != Phase::Finished) all_finished = false;
    }
    if (all_finished) return ExecStatus::Ok;
    if (++sim.step > sim.lim.max_steps) {
      sim.run_error = "per-execution step cap exceeded (scenario " + sc.name +
                      "): spin loop not converging under park semantics?";
      abort_all(sim);
      return ExecStatus::Error;
    }

    // Enabled = announced ops (always executable) + parked threads with a
    // fresh store on some spin location.
    std::vector<int> enabled;
    for (int tid = 0; tid < sim.n; ++tid) {
      ThreadSlot& s = sim.slots[(std::size_t)tid];
      if (s.phase == Phase::Announced) enabled.push_back(tid);
      if (s.phase == Phase::Parked && parked_enabled(sim, s)) {
        enabled.push_back(tid);
      }
    }
    if (enabled.empty()) {
      std::ostringstream os;
      os << "deadlock: no enabled thread;";
      for (const ThreadSlot& s : sim.slots) {
        if (s.phase == Phase::Parked) {
          os << " T" << s.tid << " parked on {";
          for (std::size_t i = 0; i < s.spin_set.size(); ++i) {
            if (i) os << ",";
            os << sim.loc_name(s.spin_set[i]);
          }
          os << "}";
        }
      }
      sim.fail(os.str());
      abort_all(sim);
      return ExecStatus::Cex;
    }

    std::vector<int> cands;
    if (sim.depth == sim.stack.size()) {
      for (int tid : enabled) {
        if (!sim.asleep[(std::size_t)tid]) cands.push_back(tid);
      }
    }
    const int chosen = decide(sim, 'S', std::move(cands));
    {
      // Threads explored in earlier sibling subtrees sleep here.
      const DecisionPoint& dp = sim.stack[sim.depth - 1];
      for (int i = 0; i < dp.cur; ++i) {
        sim.asleep[(std::size_t)dp.options[(std::size_t)i]] = 1;
      }
    }
    if (chosen < 0) {
      sim.pruned++;
      abort_all(sim);
      return ExecStatus::Pruned;
    }

    ThreadSlot& s = sim.slots[(std::size_t)chosen];
    if (s.phase == Phase::Parked) {
      // Wake: resume from pause(); the spin loop's next probe must read a
      // fresh store (that is the wake reason), collapsed into this same
      // scheduling action so a wake is never a separate silent decision.
      sim.ensure_loc_size(s);
      s.forced.clear();
      for (int loc : s.spin_set) {
        if ((int)sim.locs[(std::size_t)loc].hist.size() - 1 >
            s.last_idx[(std::size_t)loc]) {
          s.forced.push_back(loc);
        }
      }
      sim.trace_op(s.tid, "wake");
      {
        std::lock_guard<std::mutex> lk(sim.m);
        s.phase = Phase::Running;
        sim.cv.notify_all();
      }
      wait_quiescent(sim);
      if (sim.cex_flag) {
        abort_all(sim);
        return ExecStatus::Cex;
      }
      if (s.phase != Phase::Announced) continue;  // finished during wake
    }
    switch (s.pending.kind) {
      case SimOpKind::Load:
        if (!exec_load(sim, s)) {
          sim.pruned++;
          abort_all(sim);
          return ExecStatus::Pruned;
        }
        break;
      case SimOpKind::Store:
        exec_store(sim, s);
        break;
      case SimOpKind::RmwAdd:
      case SimOpKind::RmwXchg:
        exec_rmw(sim, s);
        break;
      default:
        sim.run_error = "analysis explorer: unexpected pending op";
        abort_all(sim);
        return ExecStatus::Error;
    }
  }
}

Sim* g_active_sim = nullptr;  // one exploration at a time per process

ThreadSlot* require_slot() {
  CATS_CHECK(t_slot != nullptr,
             "analysis: sim_* called outside an active exploration");
  return t_slot;
}

}  // namespace

// ---------------------------------------------------------------------------
// sim_* entry points (analysis/sim_shim.hpp)

void sim_name_locs(std::initializer_list<const char*> names) {
  ThreadSlot* s = require_slot();
  for (const char* n : names) s->sim->pending_names.push_back(n);
}

int sim_new_loc(long long init) {
  ThreadSlot* s = require_slot();
  Sim* sim = s->sim;
  CATS_CHECK(s == &sim->setup,
             "analysis: atomic cells must be constructed in Scenario::make");
  LocState L;
  if (!sim->pending_names.empty()) {
    L.name = sim->pending_names.front();
    sim->pending_names.erase(sim->pending_names.begin());
  } else {
    L.name = "loc" + std::to_string(sim->locs.size());
  }
  sim->setup.clock[(std::size_t)sim->n]++;
  StoreRec st;
  st.idx = 0;
  st.thread = sim->n;
  st.value = init;
  st.vc = sim->setup.clock;
  L.hist.push_back(std::move(st));
  sim->locs.push_back(std::move(L));
  return (int)sim->locs.size() - 1;
}

long long sim_load(int loc, std::memory_order mo) {
  ThreadSlot* s = require_slot();
  if (s == &s->sim->setup) {
    return s->sim->locs[(std::size_t)loc].hist.back().value;
  }
  PendingOp op;
  op.kind = SimOpKind::Load;
  op.loc = loc;
  op.mo = mo;
  return announce_and_wait(s, op);
}

void sim_store(int loc, long long v, std::memory_order mo) {
  ThreadSlot* s = require_slot();
  PendingOp op;
  op.kind = SimOpKind::Store;
  op.loc = loc;
  op.mo = mo;
  op.operand = v;
  announce_and_wait(s, op);
}

long long sim_rmw_add(int loc, long long delta, std::memory_order mo) {
  ThreadSlot* s = require_slot();
  PendingOp op;
  op.kind = SimOpKind::RmwAdd;
  op.loc = loc;
  op.mo = mo;
  op.operand = delta;
  return announce_and_wait(s, op);
}

long long sim_rmw_xchg(int loc, long long v, std::memory_order mo) {
  ThreadSlot* s = require_slot();
  PendingOp op;
  op.kind = SimOpKind::RmwXchg;
  op.loc = loc;
  op.mo = mo;
  op.operand = v;
  return announce_and_wait(s, op);
}

void sim_park() {
  ThreadSlot* s = require_slot();
  PendingOp op;
  op.kind = SimOpKind::Park;
  announce_and_wait(s, op);
}

int sim_data_new(const char* name) {
  ThreadSlot* s = require_slot();
  Sim* sim = s->sim;
  CATS_CHECK(s == &sim->setup,
             "analysis: data vars must be constructed in Scenario::make");
  DataState d;
  d.name = name;
  d.read_vc.resize((std::size_t)sim->n);
  sim->data.push_back(std::move(d));
  return (int)sim->data.size() - 1;
}

long long sim_data_read(int id) {
  ThreadSlot* s = require_slot();
  Sim* sim = s->sim;
  DataState& d = sim->data[(std::size_t)id];
  if (s == &sim->setup) return d.val;
  s->clock[(std::size_t)s->tid]++;
  if (d.has_write && !clock_leq(d.wvc, s->clock)) {
    std::ostringstream os;
    os << "data race on " << d.name << ": T" << s->tid
       << " reads without happens-before edge from T" << d.writer
       << "'s write (=" << d.val << ")";
    sim->trace_op(s->tid, "RACE read " + d.name);
    body_fail(sim, os.str());
  }
  d.read_vc[(std::size_t)s->tid] = s->clock;
  sim->trace_op(s->tid, "read " + d.name + " = " + std::to_string(d.val));
  return d.val;
}

void sim_data_write(int id, long long v) {
  ThreadSlot* s = require_slot();
  Sim* sim = s->sim;
  DataState& d = sim->data[(std::size_t)id];
  if (s == &sim->setup) {
    d.has_write = true;
    d.writer = sim->n;
    sim->setup.clock[(std::size_t)sim->n]++;
    d.wvc = sim->setup.clock;
    d.val = v;
    return;
  }
  s->clock[(std::size_t)s->tid]++;
  if (d.has_write && !clock_leq(d.wvc, s->clock)) {
    std::ostringstream os;
    os << "data race on " << d.name << ": T" << s->tid
       << " writes without happens-before edge from T" << d.writer
       << "'s write";
    sim->trace_op(s->tid, "RACE write " + d.name);
    body_fail(sim, os.str());
  }
  for (int tid = 0; tid < sim->n; ++tid) {
    const Clock& rc = d.read_vc[(std::size_t)tid];
    if (!rc.empty() && !clock_leq(rc, s->clock)) {
      std::ostringstream os;
      os << "data race on " << d.name << ": T" << s->tid
         << " writes without happens-before edge from T" << tid << "'s read";
      sim->trace_op(s->tid, "RACE write " + d.name);
      body_fail(sim, os.str());
    }
  }
  d.has_write = true;
  d.writer = s->tid;
  d.wvc = s->clock;
  d.val = v;
  for (Clock& rc : d.read_vc) rc.clear();
  sim->trace_op(s->tid, "write " + d.name + " = " + std::to_string(v));
}

void sim_check(bool cond, const char* what) {
  ThreadSlot* s = require_slot();
  if (cond) return;
  Sim* sim = s->sim;
  sim->trace_op(s->tid, std::string("CHECK FAILED: ") + what);
  body_fail(sim, std::string("assertion failed: ") + what);
}

// ---------------------------------------------------------------------------

ExploreResult explore(const Scenario& sc, const ExploreLimits& lim) {
  CATS_CHECK(g_active_sim == nullptr,
             "analysis: nested explore() is not supported");
  Sim sim;
  g_active_sim = &sim;
  sim.n = sc.nthreads;
  sim.lim = lim;
  sim.slots.resize((std::size_t)sim.n);
  for (int tid = 0; tid < sim.n; ++tid) {
    sim.slots[(std::size_t)tid].tid = tid;
    sim.slots[(std::size_t)tid].sim = &sim;
  }
  sim.setup.tid = sim.n;
  sim.setup.sim = &sim;
  sim.workers.reserve((std::size_t)sim.n);
  for (int tid = 0; tid < sim.n; ++tid) {
    sim.workers.emplace_back(worker_entry, &sim, tid);
  }

  ExploreResult res;
  for (;;) {
    const ExecStatus st = run_one_execution(sim, sc);
    res.executions++;
    res.max_depth = std::max(res.max_depth, (int)sim.stack.size());
    if (st == ExecStatus::Cex) {
      Counterexample cx;
      cx.reason = "[" + sc.name + "] " + sim.cex_reason;
      cx.trace = sim.trace;
      res.cex.push_back(std::move(cx));
      break;
    }
    if (st == ExecStatus::Error) {
      res.error = sim.run_error;
      break;
    }
    // Backtrack: drop exhausted suffix, advance the deepest open choice.
    while (!sim.stack.empty() &&
           sim.stack.back().cur + 1 >= (int)sim.stack.back().options.size()) {
      sim.stack.pop_back();
    }
    if (sim.stack.empty()) break;
    sim.stack.back().cur++;
    if (res.executions >= lim.max_executions) {
      res.error = "execution cap exceeded (scenario " + sc.name + ", cap " +
                  std::to_string(lim.max_executions) +
                  "): state space not exhausted — refusing to call it verified";
      break;
    }
  }
  res.pruned = sim.pruned;
  res.ok = res.error.empty() && res.cex.empty();

  {
    std::lock_guard<std::mutex> lk(sim.m);
    sim.shutting_down = true;
    sim.cv.notify_all();
  }
  for (std::thread& w : sim.workers) w.join();
  g_active_sim = nullptr;
  return res;
}

}  // namespace analysis
}  // namespace cats
