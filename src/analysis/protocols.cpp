#include "analysis/protocols.hpp"

#include <memory>

#include "analysis/sim_shim.hpp"
#include "check/check.hpp"
#include "threads/barrier.hpp"
#include "threads/pin_latch.hpp"
#include "threads/progress.hpp"
#include "threads/team_barrier.hpp"

namespace cats {
namespace analysis {
namespace {

std::memory_order g_orders[kNumSites];

// Runtime order providers: same static-member-function contract as the
// *ProdOrders types, but reading the sweep's table, so one instantiation of
// each primitive covers every order configuration.
struct DynSb {
  static std::memory_order sense_peek() { return g_orders[kSbSensePeek]; }
  static std::memory_order arrive() { return g_orders[kSbArrive]; }
  static std::memory_order count_reset() { return g_orders[kSbCountReset]; }
  static std::memory_order sense_publish() { return g_orders[kSbSensePublish]; }
  static std::memory_order sense_wait() { return g_orders[kSbSenseWait]; }
};
struct DynTb {
  static std::memory_order sense_peek() { return g_orders[kTbSensePeek]; }
  static std::memory_order arrive() { return g_orders[kTbArrive]; }
  static std::memory_order count_reset() { return g_orders[kTbCountReset]; }
  static std::memory_order sense_publish() { return g_orders[kTbSensePublish]; }
  static std::memory_order sense_wait() { return g_orders[kTbSenseWait]; }
};
struct DynPc {
  static std::memory_order reset() { return g_orders[kPcReset]; }
  static std::memory_order publish() { return g_orders[kPcPublish]; }
  static std::memory_order load() { return g_orders[kPcLoad]; }
  static std::memory_order wait() { return g_orders[kPcWait]; }
};
struct DynDf {
  static std::memory_order set() { return g_orders[kDfSet]; }
  static std::memory_order test() { return g_orders[kDfTest]; }
};
struct DynPl {
  static std::memory_order note() { return g_orders[kPlNote]; }
  static std::memory_order read() { return g_orders[kPlRead]; }
};

using SimSpinBarrier = BasicSpinBarrier<SimShim, DynSb>;
using SimTeamBarrier = BasicTeamBarrier<SimShim, DynTb>;
using SimProgressCell = BasicProgressCell<SimShim, DynPc>;
using SimDoneFlag = BasicDoneFlag<SimShim, DynDf>;
using SimPinLatch = BasicPinLatch<SimShim, DynPl>;

// ---------------------------------------------------------------------------
// Scenarios. Data handoffs use one fresh SimData per crossing so checks
// after barrier k never race the writes for barrier k+1.

Scenario barrier_scenario(const char* prim, int n, int crossings) {
  Scenario sc;
  sc.name = std::string(prim) + "/n" + std::to_string(n) + "x" +
            std::to_string(crossings);
  sc.nthreads = n;
  const bool team = std::string(prim) == "TeamBarrier";
  sc.make = [n, crossings, team]() {
    struct World {
      explicit World(int nn, bool tm) {
        sim_name_locs({"count_", "sense_"});
        if (tm) {
          tb = std::make_unique<SimTeamBarrier>(nn);
        } else {
          sb = std::make_unique<SimSpinBarrier>(nn);
        }
      }
      std::unique_ptr<SimSpinBarrier> sb;
      std::unique_ptr<SimTeamBarrier> tb;
      std::vector<std::unique_ptr<SimData>> d;
    };
    auto w = std::make_shared<World>(n, team);
    for (int c = 0; c < crossings; ++c) {
      for (int i = 0; i < n; ++i) {
        const std::string name =
            "d" + std::to_string(c) + "_" + std::to_string(i);
        w->d.push_back(std::make_unique<SimData>(name.c_str()));
      }
    }
    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < n; ++i) {
      bodies.push_back([w, i, n, crossings, team] {
        for (int c = 0; c < crossings; ++c) {
          w->d[(std::size_t)(c * n + i)]->write(100 * c + i);
          if (team) {
            w->tb->arrive_and_wait();
          } else {
            w->sb->arrive_and_wait();
          }
          for (int j = 0; j < n; ++j) {
            sim_check(w->d[(std::size_t)(c * n + j)]->read() == 100 * c + j,
                      "post-barrier read sees every participant's pre-barrier "
                      "write");
          }
        }
      });
    }
    return bodies;
  };
  return sc;
}

Scenario team_barrier_degenerate() {
  Scenario sc;
  sc.name = "TeamBarrier/n1-degenerate";
  sc.nthreads = 1;
  sc.make = []() {
    struct World {
      World() {
        sim_name_locs({"count_", "sense_"});
        tb = std::make_unique<SimTeamBarrier>(1);
      }
      std::unique_ptr<SimTeamBarrier> tb;
    };
    auto w = std::make_shared<World>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([w] {
      w->tb->arrive_and_wait();
      w->tb->arrive_and_wait();
      sim_check(true, "degenerate team barrier returns");
    });
    return bodies;
  };
  return sc;
}

/// SyncEdge{ProgressGE}: producer publishes wavefront indices, the consumer
/// wait_ge's and reads the tile data published before each index.
Scenario progress_wait_scenario() {
  Scenario sc;
  sc.name = "ProgressCell/publish-wait_ge";
  sc.nthreads = 2;
  sc.make = []() {
    struct World {
      World() : d1("tile1"), d2("tile2") {
        sim_name_locs({"value"});
        cell = std::make_unique<SimProgressCell>();
      }
      std::unique_ptr<SimProgressCell> cell;
      SimData d1, d2;
    };
    auto w = std::make_shared<World>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([w] {
      w->d1.write(41);
      w->cell->publish(1);
      w->d2.write(42);
      w->cell->publish(2);
    });
    bodies.push_back([w] {
      w->cell->wait_ge(1);
      sim_check(w->d1.read() == 41, "wait_ge(1) orders tile1's data");
      w->cell->wait_ge(2);
      sim_check(w->d2.read() == 42, "wait_ge(2) orders tile2's data");
    });
    return bodies;
  };
  return sc;
}

/// The executor's lead-worker edge poll: consumer spins on load() itself.
Scenario progress_poll_scenario() {
  Scenario sc;
  sc.name = "ProgressCell/load-poll";
  sc.nthreads = 2;
  sc.make = []() {
    struct World {
      World() : d("tile") {
        sim_name_locs({"value"});
        cell = std::make_unique<SimProgressCell>();
      }
      std::unique_ptr<SimProgressCell> cell;
      SimData d;
    };
    auto w = std::make_shared<World>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([w] {
      w->d.write(7);
      w->cell->publish(3);
    });
    bodies.push_back([w] {
      while (w->cell->load() < 3) sim_park();
      sim_check(w->d.read() == 7, "load() poll orders the published data");
    });
    return bodies;
  };
  return sc;
}

/// The executor's BarrierResetBarrier: relaxed reset is safe *because* it
/// sits between two barrier crossings — and the interpreter's write-read
/// coherence (hidden stores) is what forbids post-reset waits from being
/// satisfied by pre-reset values.
Scenario progress_reset_scenario() {
  Scenario sc;
  sc.name = "ProgressCell/barrier-reset-barrier";
  sc.nthreads = 2;
  sc.make = []() {
    struct World {
      World() : dA("phase1"), dB("phase2") {
        sim_name_locs({"value"});
        cell = std::make_unique<SimProgressCell>();
        sim_name_locs({"count_", "sense_"});
        bar = std::make_unique<SimSpinBarrier>(2);
      }
      std::unique_ptr<SimProgressCell> cell;
      std::unique_ptr<SimSpinBarrier> bar;
      SimData dA, dB;
    };
    auto w = std::make_shared<World>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([w] {
      w->dA.write(1);
      w->cell->publish(7);
      w->bar->arrive_and_wait();
      w->cell->reset();
      w->bar->arrive_and_wait();
      w->dB.write(2);
      w->cell->publish(1);
    });
    bodies.push_back([w] {
      w->cell->wait_ge(7);
      sim_check(w->dA.read() == 1, "phase-1 wait orders phase-1 data");
      w->bar->arrive_and_wait();
      w->bar->arrive_and_wait();
      w->cell->wait_ge(1);
      sim_check(w->dB.read() == 2,
                "post-reset wait must not be satisfied by the pre-reset value");
    });
    return bodies;
  };
  return sc;
}

Scenario done_flag_scenario(bool poll) {
  Scenario sc;
  sc.name = poll ? "DoneFlag/test-poll" : "DoneFlag/set-wait";
  sc.nthreads = 2;
  sc.make = [poll]() {
    struct World {
      World() : d("tile") {
        sim_name_locs({"done"});
        flag = std::make_unique<SimDoneFlag>();
      }
      std::unique_ptr<SimDoneFlag> flag;
      SimData d;
    };
    auto w = std::make_shared<World>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([w] {
      w->d.write(9);
      w->flag->set();
    });
    bodies.push_back([w, poll] {
      if (poll) {
        while (!w->flag->test()) sim_park();
      } else {
        w->flag->wait();
      }
      sim_check(w->d.read() == 9, "done flag orders the tile's writes");
    });
    return bodies;
  };
  return sc;
}

/// The thread pool's pin handshake: caller + workers note() after pinning;
/// the caller reads count() only after a join edge from every worker
/// (modeled as DoneFlags at production orders — the same release/acquire
/// shape as thread join). Relaxed note/read must still force count()==3.
Scenario pin_handshake_scenario() {
  Scenario sc;
  sc.name = "PinLatch/pin-handshake";
  sc.nthreads = 3;
  sc.make = []() {
    struct World {
      World() : dw1("w1pin"), dw2("w2pin") {
        sim_name_locs({"pinned_"});
        latch = std::make_unique<SimPinLatch>();
        sim_name_locs({"join1"});
        j1 = std::make_unique<BasicDoneFlag<SimShim>>();
        sim_name_locs({"join2"});
        j2 = std::make_unique<BasicDoneFlag<SimShim>>();
      }
      std::unique_ptr<SimPinLatch> latch;
      std::unique_ptr<BasicDoneFlag<SimShim>> j1, j2;
      SimData dw1, dw2;
    };
    auto w = std::make_shared<World>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([w] {
      w->latch->note();
      w->j1->wait();
      w->j2->wait();
      sim_check(w->latch->count() == 3,
                "post-join count() sees every pinned participant");
      sim_check(w->dw1.read() == 1, "join orders worker 1's writes");
      sim_check(w->dw2.read() == 2, "join orders worker 2's writes");
    });
    bodies.push_back([w] {
      w->dw1.write(1);
      w->latch->note();
      w->j1->set();
    });
    bodies.push_back([w] {
      w->dw2.write(2);
      w->latch->note();
      w->j2->set();
    });
    return bodies;
  };
  return sc;
}

}  // namespace

// ---------------------------------------------------------------------------

const std::vector<SiteInfo>& site_table() {
  static const std::vector<SiteInfo> t = {
      {kSbSensePeek, "SpinBarrier", "sense_peek",
       SpinBarrierProdOrders::sense_peek(), 'l'},
      {kSbArrive, "SpinBarrier", "arrive", SpinBarrierProdOrders::arrive(),
       'r'},
      {kSbCountReset, "SpinBarrier", "count_reset",
       SpinBarrierProdOrders::count_reset(), 's'},
      {kSbSensePublish, "SpinBarrier", "sense_publish",
       SpinBarrierProdOrders::sense_publish(), 's'},
      {kSbSenseWait, "SpinBarrier", "sense_wait",
       SpinBarrierProdOrders::sense_wait(), 'l'},
      {kTbSensePeek, "TeamBarrier", "sense_peek",
       TeamBarrierProdOrders::sense_peek(), 'l'},
      {kTbArrive, "TeamBarrier", "arrive", TeamBarrierProdOrders::arrive(),
       'r'},
      {kTbCountReset, "TeamBarrier", "count_reset",
       TeamBarrierProdOrders::count_reset(), 's'},
      {kTbSensePublish, "TeamBarrier", "sense_publish",
       TeamBarrierProdOrders::sense_publish(), 's'},
      {kTbSenseWait, "TeamBarrier", "sense_wait",
       TeamBarrierProdOrders::sense_wait(), 'l'},
      {kPcReset, "ProgressCell", "reset", ProgressCellProdOrders::reset(),
       's'},
      {kPcPublish, "ProgressCell", "publish",
       ProgressCellProdOrders::publish(), 's'},
      {kPcLoad, "ProgressCell", "load", ProgressCellProdOrders::load(), 'l'},
      {kPcWait, "ProgressCell", "wait", ProgressCellProdOrders::wait(), 'l'},
      {kDfSet, "DoneFlag", "set", DoneFlagProdOrders::set(), 's'},
      {kDfTest, "DoneFlag", "test", DoneFlagProdOrders::test(), 'l'},
      {kPlNote, "PinLatch", "note", PinLatchProdOrders::note(), 'r'},
      {kPlRead, "PinLatch", "read", PinLatchProdOrders::read(), 'l'},
  };
  return t;
}

std::memory_order& site_order(SiteId id) { return g_orders[id]; }

void reset_site_orders() {
  for (const SiteInfo& si : site_table()) g_orders[si.id] = si.prod;
}

std::vector<std::memory_order> order_weakenings(std::memory_order mo,
                                                char op) {
  switch (mo) {
    case std::memory_order_seq_cst:
      return {op == 'r' ? std::memory_order_acq_rel
              : op == 'l' ? std::memory_order_acquire
                          : std::memory_order_release};
    case std::memory_order_acq_rel:
      return {std::memory_order_acquire, std::memory_order_release};
    case std::memory_order_acquire:
    case std::memory_order_release:
      return {std::memory_order_relaxed};
    default:
      return {};
  }
}

std::vector<Scenario> scenarios_for_primitive(const char* prim,
                                              bool thorough) {
  const std::string p = prim;
  std::vector<Scenario> out;
  if (p == "SpinBarrier") {
    out.push_back(barrier_scenario("SpinBarrier", 2, 2));
    if (thorough) out.push_back(barrier_scenario("SpinBarrier", 3, 1));
  } else if (p == "TeamBarrier") {
    out.push_back(team_barrier_degenerate());
    out.push_back(barrier_scenario("TeamBarrier", 2, 2));
  } else if (p == "ProgressCell") {
    out.push_back(progress_wait_scenario());
    out.push_back(progress_poll_scenario());
    out.push_back(progress_reset_scenario());
  } else if (p == "DoneFlag") {
    out.push_back(done_flag_scenario(false));
    out.push_back(done_flag_scenario(true));
  } else if (p == "PinLatch") {
    out.push_back(pin_handshake_scenario());
  } else {
    CATS_CHECK(false, "unknown primitive %s", prim);
  }
  return out;
}

std::vector<PrimCheck> check_all_primitives(const ExploreLimits& lim) {
  reset_site_orders();
  std::vector<PrimCheck> out;
  for (const char* prim : {"SpinBarrier", "TeamBarrier", "ProgressCell",
                           "DoneFlag", "PinLatch"}) {
    for (Scenario& sc : scenarios_for_primitive(prim, /*thorough=*/true)) {
      PrimCheck pc;
      pc.scenario = sc.name;
      pc.result = explore(sc, lim);
      out.push_back(std::move(pc));
    }
  }
  return out;
}

namespace {

/// Run every scenario of `prim` under the current g_orders.
void run_prim_into(const char* prim, MinFinding& f, const ExploreLimits& lim) {
  f.safe = true;
  for (Scenario& sc : scenarios_for_primitive(prim, /*thorough=*/false)) {
    ExploreResult r = explore(sc, lim);
    f.executions += r.executions;
    if (!r.error.empty()) {
      f.safe = false;
      f.error = r.error;
      return;
    }
    if (r.has_cex()) {
      f.safe = false;
      f.cex_reason = r.cex[0].reason;
      f.cex_trace = r.cex[0].trace;
      return;
    }
  }
}

}  // namespace

std::vector<MinFinding> minimality_sweep(const ExploreLimits& lim) {
  std::vector<MinFinding> out;
  for (const SiteInfo& si : site_table()) {
    for (std::memory_order weak : order_weakenings(si.prod, si.op)) {
      reset_site_orders();
      g_orders[si.id] = weak;
      MinFinding f;
      f.prim = si.prim;
      f.site = si.site;
      f.prod = si.prod;
      f.varied = weak;
      run_prim_into(si.prim, f, lim);
      out.push_back(std::move(f));
    }
  }
  // Historical-strength audit: the pin latch shipped acq_rel/acquire; the
  // relaxed production orders are the checker-justified downgrade. Verify
  // the strengthened variant still passes (it must — strengthening is
  // monotone) so the report can state "acq_rel bought nothing".
  {
    reset_site_orders();
    g_orders[kPlNote] = std::memory_order_acq_rel;
    g_orders[kPlRead] = std::memory_order_acquire;
    MinFinding f;
    f.prim = "PinLatch";
    f.site = "note+read (historical acq_rel/acquire)";
    f.prod = std::memory_order_relaxed;
    f.varied = std::memory_order_acq_rel;
    f.strengthening = true;
    run_prim_into("PinLatch", f, lim);
    out.push_back(std::move(f));
  }
  reset_site_orders();
  return out;
}

ExploreResult check_with_site_order(SiteId site, std::memory_order mo,
                                    const ExploreLimits& lim) {
  reset_site_orders();
  g_orders[site] = mo;
  const SiteInfo* info = nullptr;
  for (const SiteInfo& si : site_table()) {
    if (si.id == site) info = &si;
  }
  CATS_CHECK(info != nullptr, "unknown site id %d", (int)site);
  ExploreResult merged;
  merged.ok = true;
  for (Scenario& sc : scenarios_for_primitive(info->prim, false)) {
    ExploreResult r = explore(sc, lim);
    merged.executions += r.executions;
    merged.pruned += r.pruned;
    merged.max_depth = std::max(merged.max_depth, r.max_depth);
    if (!r.error.empty() && merged.error.empty()) merged.error = r.error;
    for (Counterexample& cx : r.cex) merged.cex.push_back(std::move(cx));
    if (!merged.cex.empty() || !merged.error.empty()) break;
  }
  merged.ok = merged.error.empty() && merged.cex.empty();
  reset_site_orders();
  return merged;
}

}  // namespace analysis
}  // namespace cats
