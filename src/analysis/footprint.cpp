// Symbolic footprint analyzer: the CI sweep matrix (DESIGN.md §15).
//
// Each config instantiates a production kernel family on a recording
// element type, emits the production plan for a small domain, and drives
// the production wave walker over it. The checker certifies every recorded
// address; on top, each run asserts it *exercised* what it claims to cover
// (stream stores observed when NT is armed, TV groups formed when enabled)
// — a vacuous certification is reported as a failure, not a pass.

#include "analysis/footprint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "plan/emit.hpp"

namespace cats {
namespace analysis {

// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
thread_local AccessHook g_access_hook;

namespace {

struct Cfg {
  int u;
  bool nt;
  bool tv;
};

/// Full option cross for the CATS schemes. Naive plans neither chain nor
/// arm NT (nt_store_eligible excludes them), so they get two configs: the
/// plain baseline and an everything-on run that must degrade to the plain
/// paths (asserted via the nt_stores == 0 exercise check).
std::vector<Cfg> cats_cfgs() {
  std::vector<Cfg> v;
  for (int u = 0; u <= 4; ++u)
    for (int nt = 0; nt < 2; ++nt)
      for (int tv = 0; tv < 2; ++tv) v.push_back({u, nt != 0, tv != 0});
  return v;
}
std::vector<Cfg> naive_cfgs() { return {{0, false, false}, {4, true, true}}; }

RunOptions make_opt(const plan_ir::TilePlan& p, const Cfg& c) {
  RunOptions o;
  o.threads = p.threads;
  o.unroll_t = c.u;
  o.nt_stores = c.nt;
  o.temporal_vec = c.tv;
  o.prefetch_dist = 0;
  o.mwd_group = std::max(1, p.mwd_group);
  return o;
}

/// MWD plans are walked through the member-partitioned window pipeline
/// (drive_plan_*_mwd) so the checker certifies the addresses each member
/// actually touches under the band split, not just the tile union.
template <class RecK>
void drive_2d(RecK& wrap, const plan_ir::TilePlan& p, const RunOptions& o,
              FootprintChecker& chk) {
  if (p.mwd_group > 1) {
    drive_plan_2d_mwd(wrap, p, o, chk);
  } else {
    drive_plan_2d(wrap, p, o, chk);
  }
}
template <class RecK>
void drive_3d(RecK& wrap, const plan_ir::TilePlan& p, const RunOptions& o,
              FootprintChecker& chk) {
  if (p.mwd_group > 1) {
    drive_plan_3d_mwd(wrap, p, o, chk);
  } else {
    drive_plan_3d(wrap, p, o, chk);
  }
}

/// The sweep's toy domains sit far below any real cache bound; force the
/// residency certificate so nt_store_eligible arms and the NT paths are
/// exercised and checked. Whether the certificate itself is ever granted
/// wrongly is cats_plan_check's theorem, not this analyzer's.
void arm_nt(plan_ir::TilePlan& p) {
  p.certify_residency = true;
  p.clamped = false;
}

std::string cfg_label(const char* family, const char* prec, const char* sch,
                      const Cfg& c) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s %s %s u=%d nt=%d tv=%d", family, prec,
                sch, c.u, c.nt ? 1 : 0, c.tv ? 1 : 0);
  return buf;
}

struct SchemeCase {
  const char* name;
  plan_ir::TilePlan plan;
  bool cats;  ///< NT-eligible wavefront scheme (chains, trailing slabs)
};

void finish(FpReport& rep, const FootprintChecker& chk) {
  for (const auto& d : chk.diags()) rep.diags.push_back(d);
  rep.loads = chk.loads();
  rep.stores = chk.stores();
  rep.nt_stores = chk.nt_stores();
  rep.nt_fallback = chk.nt_fallback();
}

void exercise_nt(FpReport& rep, const FootprintChecker& chk,
                 const SchemeCase& sc, const Cfg& c) {
  if (sc.cats && c.nt && chk.nt_stores() + chk.nt_fallback() == 0) {
    rep.diags.push_back(
        {"exercise: NT armed on an eligible plan but no stream store was "
         "recorded (vacuous certification)"});
  }
  if (!sc.cats && chk.nt_stores() + chk.nt_fallback() != 0) {
    rep.diags.push_back(
        {"exercise: stream store recorded under a non-eligible (naive) "
         "plan"});
  }
}

// ---- 2D families -----------------------------------------------------------

template <class T>
void sweep_const2d(const char* prec, std::vector<FpReport>& out) {
  constexpr int S = 2;
  const int nx = 64, ny = 20, nt_steps = 6, threads = 2;
  std::vector<SchemeCase> cases;
  cases.push_back(
      {"naive", plan_ir::emit_naive(2, nx, ny, 1, nt_steps, S, threads),
       false});
  cases.push_back(
      {"cats1", plan_ir::emit_cats1(2, nx, ny, 1, nt_steps, S, 3, threads),
       true});
  // bz must exceed the widest vector (16 fp32 lanes on AVX-512) or diamond
  // slabs stay scalar-only and the NT/TV exercise checks turn vacuous.
  cases.push_back(
      {"cats2", plan_ir::emit_cats2(2, nx, ny, 1, nt_steps, S, 24, threads),
       true});
  // Same diamond geometry, walked through the 2-member window pipeline.
  cases.push_back(
      {"mwd", plan_ir::emit_mwd(2, nx, ny, 1, nt_steps, S, 24, 1, 2), true});
  for (auto& sc : cases) arm_nt(sc.plan);
  for (const auto& sc : cases) {
    for (const Cfg& c : sc.cats ? cats_cfgs() : naive_cfgs()) {
      ConstStar2D<S, T> k(nx, ny, default_star2d_weights<S, T>());
      FootprintChecker chk(2, S);
      chk.add_state_grid_2d(k.grid_at(0), 0, "const2d/buf0");
      chk.add_state_grid_2d(k.grid_at(1), 1, "const2d/buf1");
      RecWrap2D<ConstStar2D<S, T>> wrap(k, chk);
      drive_2d(wrap, sc.plan, make_opt(sc.plan, c), chk);
      FpReport rep;
      rep.config = cfg_label("const2d/s2", prec, sc.name, c);
      finish(rep, chk);
      exercise_nt(rep, chk, sc, c);
      // CATS1 columns (and MWD member bands) produce single-row chain
      // links; with fusion enabled the TV (or plain fused) body must
      // actually run.
      if ((std::strcmp(sc.name, "cats1") == 0 ||
           std::strcmp(sc.name, "mwd") == 0) &&
          c.u != 1) {
        if (c.tv && wrap.tv_calls == 0) {
          rep.diags.push_back(
              {"exercise: temporal_vec enabled but no TV group ran"});
        }
        if (!c.tv && wrap.stages_calls == 0) {
          rep.diags.push_back(
              {"exercise: fusion enabled but no fused group ran"});
        }
      }
      out.push_back(std::move(rep));
    }
  }
}

void sweep_banded2d(std::vector<FpReport>& out) {
  constexpr int S = 1;
  const int nx = 64, ny = 20, nt_steps = 6, threads = 2;
  using K = Banded2D<S, RecElem64>;
  std::vector<SchemeCase> cases;
  cases.push_back(
      {"naive", plan_ir::emit_naive(2, nx, ny, 1, nt_steps, S, threads),
       false});
  cases.push_back(
      {"cats1", plan_ir::emit_cats1(2, nx, ny, 1, nt_steps, S, 3, threads),
       true});
  cases.push_back(
      {"cats2", plan_ir::emit_cats2(2, nx, ny, 1, nt_steps, S, 24, threads),
       true});
  cases.push_back(
      {"mwd", plan_ir::emit_mwd(2, nx, ny, 1, nt_steps, S, 24, 1, 2), true});
  for (auto& sc : cases) arm_nt(sc.plan);
  for (const auto& sc : cases) {
    for (const Cfg& c : sc.cats ? cats_cfgs() : naive_cfgs()) {
      K k(nx, ny);
      FootprintChecker chk(2, S);
      chk.add_state_grid_2d(k.grid_at(0), 0, "banded2d/buf0");
      chk.add_state_grid_2d(k.grid_at(1), 1, "banded2d/buf1");
      for (int b = 0; b < K::kBands; ++b) {
        chk.add_band_grid_2d(k.band(b), b, "banded2d");
      }
      RecWrap2D<K> wrap(k, chk);
      drive_2d(wrap, sc.plan, make_opt(sc.plan, c), chk);
      FpReport rep;
      rep.config = cfg_label("banded2d/s1", "fp64", sc.name, c);
      finish(rep, chk);
      exercise_nt(rep, chk, sc, c);
      if ((std::strcmp(sc.name, "cats1") == 0 ||
           std::strcmp(sc.name, "mwd") == 0) &&
          c.u != 1 && c.tv && wrap.tv_calls == 0) {
        rep.diags.push_back(
            {"exercise: temporal_vec enabled but no TV group ran"});
      }
      out.push_back(std::move(rep));
    }
  }
}

// ---- 3D families -----------------------------------------------------------

std::vector<SchemeCase> cases_3d(int nx, int ny, int nz, int nt_steps, int S,
                                 int threads) {
  std::vector<SchemeCase> cases;
  cases.push_back(
      {"naive", plan_ir::emit_naive(3, nx, ny, nz, nt_steps, S, threads),
       false});
  cases.push_back(
      {"cats1", plan_ir::emit_cats1(3, nx, ny, nz, nt_steps, S, 2, threads),
       true});
  cases.push_back(
      {"cats2", plan_ir::emit_cats2(3, nx, ny, nz, nt_steps, S, 4, threads),
       true});
  cases.push_back({"cats3", plan_ir::emit_cats3(nx, ny, nz, nt_steps, S, 4, 8,
                                                threads),
                   true});
  cases.push_back(
      {"mwd", plan_ir::emit_mwd(3, nx, ny, nz, nt_steps, S, 4, 1, 2), true});
  for (auto& sc : cases) arm_nt(sc.plan);
  return cases;
}

template <class K>
void drive_3d_case(K& k, const SchemeCase& sc, const Cfg& c,
                   FootprintChecker& chk, FpReport& rep) {
  RecWrap3D<K> wrap(k, chk);
  drive_3d(wrap, sc.plan, make_opt(sc.plan, c), chk);
  finish(rep, chk);
  exercise_nt(rep, chk, sc, c);
  // CATS1 3D tiles (and MWD member bands) chain single-z slabs; with
  // fusion + TV on, the TV row body must actually run.
  if ((std::strcmp(sc.name, "cats1") == 0 ||
       std::strcmp(sc.name, "mwd") == 0) &&
      c.u != 1 && c.tv && wrap.tv_rows == 0) {
    rep.diags.push_back(
        {"exercise: temporal_vec enabled but no TV row ran"});
  }
}

void sweep_const3d(std::vector<FpReport>& out) {
  constexpr int S = 1;
  const int nx = 24, ny = 12, nz = 12, nt_steps = 4, threads = 2;
  using K = ConstStar3D<S, RecElem64>;
  for (const auto& sc : cases_3d(nx, ny, nz, nt_steps, S, threads)) {
    for (const Cfg& c : sc.cats ? cats_cfgs() : naive_cfgs()) {
      K k(nx, ny, nz, default_star3d_weights<S, RecElem64>());
      FootprintChecker chk(3, S);
      chk.add_state_grid_3d(k.grid_at(0), 0, "const3d/buf0");
      chk.add_state_grid_3d(k.grid_at(1), 1, "const3d/buf1");
      FpReport rep;
      rep.config = cfg_label("const3d/s1", "fp64", sc.name, c);
      drive_3d_case(k, sc, c, chk, rep);
      out.push_back(std::move(rep));
    }
  }
}

void sweep_banded3d(std::vector<FpReport>& out) {
  constexpr int S = 1;
  const int nx = 24, ny = 12, nz = 12, nt_steps = 4, threads = 2;
  using K = Banded3D<S, RecElem64>;
  for (const auto& sc : cases_3d(nx, ny, nz, nt_steps, S, threads)) {
    for (const Cfg& c : sc.cats ? cats_cfgs() : naive_cfgs()) {
      K k(nx, ny, nz);
      FootprintChecker chk(3, S);
      chk.add_state_grid_3d(k.grid_at(0), 0, "banded3d/buf0");
      chk.add_state_grid_3d(k.grid_at(1), 1, "banded3d/buf1");
      for (int b = 0; b < K::kBands; ++b) {
        chk.add_band_grid_3d(k.band(b), b, "banded3d");
      }
      FpReport rep;
      rep.config = cfg_label("banded3d/s1", "fp64", sc.name, c);
      drive_3d_case(k, sc, c, chk, rep);
      out.push_back(std::move(rep));
    }
  }
}

}  // namespace

std::vector<FpReport> footprint_sweep() {
  std::vector<FpReport> out;
  sweep_const2d<RecElem64>("fp64", out);
  sweep_const2d<RecElem32>("fp32", out);
  sweep_banded2d(out);
  sweep_const3d(out);
  sweep_banded3d(out);
  return out;
}

}  // namespace analysis
}  // namespace cats
