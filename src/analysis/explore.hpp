#pragma once
// Exhaustive interleaving explorer for the sync-protocol model checker
// (src/analysis; DESIGN.md §15).
//
// explore() runs a Scenario — a fixed set of thread bodies exercising
// shim-templated primitives over SimShim (analysis/sim_shim.hpp) — under
// *stateless* depth-first search: each execution replays a stack of
// decisions (which thread steps next; which store a load reads) and
// extends it at the first fresh decision point; backtracking advances the
// deepest non-exhausted choice. Real std::threads run the bodies under a
// strict handoff (exactly one runnable at a time), so the production
// primitive code executes unmodified.
//
// Reduction is DPOR-style via sleep sets: after a thread's subtree is
// explored at a scheduling point, the thread sleeps in the sibling
// subtrees until some executed operation is *dependent* with its pending
// one (same location, at least one write; a parked thread's pending reads
// are its spin set). Executions whose candidate set empties out are pruned
// as redundant. Spin loops stay finite: pause()/yield() park the thread,
// a parked thread is schedulable only when a fresh store lands on a spin
// location, and the forced wake-read consumes it.
//
// A counterexample — data race, failed sim_check, or deadlock (all
// unfinished threads parked with nothing fresh to read) — aborts the
// search and carries the full interleaving trace. Exceeding the execution
// or step caps is a hard error, never a silent pass.

#include <functional>
#include <string>
#include <vector>

namespace cats {
namespace analysis {

struct Scenario {
  std::string name;
  int nthreads = 2;
  /// Called once per execution on the explorer thread: construct the world
  /// (primitives register their cells with the active simulation) and
  /// return one body per thread; the closures own the world.
  std::function<std::vector<std::function<void()>>()> make;
};

struct ExploreLimits {
  long long max_executions = 2'000'000;
  int max_steps = 20'000;  ///< per-execution scheduled operations
};

struct Counterexample {
  std::string reason;
  std::vector<std::string> trace;  ///< full interleaving, one op per line
};

struct ExploreResult {
  bool ok = false;             ///< every interleaving passed
  std::string error;           ///< nonempty: cap exceeded / internal error
  std::vector<Counterexample> cex;  ///< first counterexample found
  long long executions = 0;
  long long pruned = 0;        ///< sleep-set-redundant executions
  int max_depth = 0;

  bool has_cex() const { return !cex.empty(); }
};

ExploreResult explore(const Scenario& sc, const ExploreLimits& lim = {});

}  // namespace analysis
}  // namespace cats
