#pragma once
// Wall-clock timing and basic statistics for the benchmark harness.

#include <chrono>
#include <cstdint>
#include <vector>

namespace cats::bench {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

struct Stats {
  double min = 0.0, median = 0.0, mean = 0.0, max = 0.0;
};

/// Order statistics of a sample set (copies and sorts internally).
Stats summarize(std::vector<double> samples);

/// Run `fn` `reps` times, returning per-run seconds.
template <class F>
std::vector<double> time_repeated(int reps, F&& fn) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    out.push_back(t.seconds());
  }
  return out;
}

}  // namespace cats::bench
