#include "bench_harness/machine.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_harness/timing.hpp"
#include "grid/aligned_buffer.hpp"
#include "simd/vecd.hpp"
#include "sysinfo/cache_info.hpp"

namespace cats::bench {
namespace {

using simd::VecD;

// Sink that the optimizer cannot see through.
volatile double g_sink = 0.0;

std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::string name = line.substr(colon + 1);
      const auto b = name.find_first_not_of(" \t");
      if (b != std::string::npos) name = name.substr(b);
      return name;
    }
  }
  return "unknown-cpu";
}

}  // namespace

std::string machine_fingerprint() {
  const CacheInfo ci = detect_cache_info();
  std::ostringstream os;
  os << cpu_model_name() << "|l1d=" << ci.l1d_bytes << "|l2=" << ci.l2_bytes
     << "|l3=" << ci.l3_bytes << "|hw=" << std::thread::hardware_concurrency()
     << "|" << simd::kIsaName << "x" << simd::kWidth;
  return os.str();
}

double measure_copy_bandwidth(std::size_t working_set_bytes, double seconds_budget) {
  // Two arrays that together occupy the working set.
  const std::size_t n =
      std::max<std::size_t>(working_set_bytes / (2 * sizeof(double)),
                            static_cast<std::size_t>(4 * VecD::width));
  AlignedBuffer<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i & 1023) * 0.5;

  auto copy_pass = [&] {
    const double* src = b.data();
    double* dst = a.data();
    std::size_t i = 0;
    for (; i + 4 * VecD::width <= n; i += 4 * VecD::width) {
      VecD::load_aligned(src + i).store_aligned(dst + i);
      VecD::load_aligned(src + i + VecD::width).store_aligned(dst + i + VecD::width);
      VecD::load_aligned(src + i + 2 * VecD::width).store_aligned(dst + i + 2 * VecD::width);
      VecD::load_aligned(src + i + 3 * VecD::width).store_aligned(dst + i + 3 * VecD::width);
    }
    for (; i < n; ++i) dst[i] = src[i];
  };

  // Warm both arrays (and the caches, when they fit).
  copy_pass();
  copy_pass();

  std::size_t passes = 0;
  Timer t;
  do {
    copy_pass();
    ++passes;
  } while (t.seconds() < seconds_budget);
  const double secs = t.seconds();
  g_sink = a[n / 2];
  const double bytes = static_cast<double>(passes) * 2.0 *
                       static_cast<double>(n) * sizeof(double);
  return bytes / secs / 1e9;
}

double measure_peak_dp(double seconds_budget) {
  // 8 independent accumulator chains of fused multiply-adds on registers.
  VecD acc0 = VecD::broadcast(0.001), acc1 = VecD::broadcast(0.002);
  VecD acc2 = VecD::broadcast(0.003), acc3 = VecD::broadcast(0.004);
  VecD acc4 = VecD::broadcast(0.005), acc5 = VecD::broadcast(0.006);
  VecD acc6 = VecD::broadcast(0.007), acc7 = VecD::broadcast(0.008);
  const VecD m = VecD::broadcast(1.0000001);
  const VecD c = VecD::broadcast(1e-9);

  const std::size_t inner = 4096;
  std::size_t iters = 0;
  Timer t;
  do {
    for (std::size_t i = 0; i < inner; ++i) {
      acc0 = VecD::fma(acc0, m, c);
      acc1 = VecD::fma(acc1, m, c);
      acc2 = VecD::fma(acc2, m, c);
      acc3 = VecD::fma(acc3, m, c);
      acc4 = VecD::fma(acc4, m, c);
      acc5 = VecD::fma(acc5, m, c);
      acc6 = VecD::fma(acc6, m, c);
      acc7 = VecD::fma(acc7, m, c);
    }
    iters += inner;
  } while (t.seconds() < seconds_budget);
  const double secs = t.seconds();
  g_sink = (acc0 + acc1 + acc2 + acc3 + acc4 + acc5 + acc6 + acc7).hsum();
  // 8 chains x width lanes x 2 flops per FMA.
  const double flops = static_cast<double>(iters) * 8.0 * VecD::width * 2.0;
  return flops / secs / 1e9;
}

double measure_stencil_dp(double seconds_budget) {
  // The inner 5-point stencil computation on registers: 5 products
  // accumulated into one value. The accumulation chain has read-after-write
  // dependencies (which is why this lands below peak DP), but like the
  // unrolled kernel x-loop several evaluations are in flight at once.
  VecD v0 = VecD::broadcast(0.11), v1 = VecD::broadcast(0.22);
  VecD v2 = VecD::broadcast(0.33), v3 = VecD::broadcast(0.44);
  VecD v4 = VecD::broadcast(0.55), v5 = VecD::broadcast(0.66);
  VecD v6 = VecD::broadcast(0.77), v7 = VecD::broadcast(0.88);
  const VecD w0 = VecD::broadcast(0.5), w1 = VecD::broadcast(0.1251);
  const VecD w2 = VecD::broadcast(0.1249), w3 = VecD::broadcast(0.1252);
  const VecD w4 = VecD::broadcast(0.1248);

  const std::size_t inner = 4096;
  std::size_t iters = 0;
  Timer t;
  do {
    for (std::size_t i = 0; i < inner; ++i) {
      // Eight independent stencil evaluations (the kernel unrolls the x loop).
      VecD a = w0 * v0;
      VecD b = w0 * v1;
      VecD c = w0 * v2;
      VecD d = w0 * v3;
      VecD e = w0 * v4;
      VecD f = w0 * v5;
      VecD g = w0 * v6;
      VecD h = w0 * v7;
      a = a + w1 * v1;  b = b + w1 * v2;  c = c + w1 * v3;  d = d + w1 * v4;
      e = e + w1 * v5;  f = f + w1 * v6;  g = g + w1 * v7;  h = h + w1 * v0;
      a = a + w2 * v2;  b = b + w2 * v3;  c = c + w2 * v4;  d = d + w2 * v5;
      e = e + w2 * v6;  f = f + w2 * v7;  g = g + w2 * v0;  h = h + w2 * v1;
      a = a + w3 * v3;  b = b + w3 * v4;  c = c + w3 * v5;  d = d + w3 * v6;
      e = e + w3 * v7;  f = f + w3 * v0;  g = g + w3 * v1;  h = h + w3 * v2;
      a = a + w4 * v4;  b = b + w4 * v5;  c = c + w4 * v6;  d = d + w4 * v7;
      e = e + w4 * v0;  f = f + w4 * v1;  g = g + w4 * v2;  h = h + w4 * v3;
      // Feed results back: the next iteration depends on these outputs, like
      // the time loop feeding the next stencil application.
      v0 = a; v1 = b; v2 = c; v3 = d; v4 = e; v5 = f; v6 = g; v7 = h;
    }
    iters += inner;
  } while (t.seconds() < seconds_budget);
  const double secs = t.seconds();
  g_sink = (v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7).hsum();
  // 8 evaluations x (5 mul + 4 add) x width lanes per inner step.
  const double flops = static_cast<double>(iters) * 8.0 * 9.0 * VecD::width;
  return flops / secs / 1e9;
}

MachineProfile profile_machine(double seconds_per_point) {
  const CacheInfo ci = detect_cache_info();
  MachineProfile p;
  p.l1_bw_gbps = measure_copy_bandwidth(ci.l1d_bytes / 2, seconds_per_point);
  p.l2_bw_gbps = measure_copy_bandwidth(ci.l2_bytes / 2, seconds_per_point);
  const std::size_t llc = std::max(ci.l3_bytes, ci.l2_bytes);
  p.sys_bw_gbps = measure_copy_bandwidth(llc * 8, seconds_per_point);
  p.peak_dp_gflops = measure_peak_dp(seconds_per_point);
  p.stencil_dp_gflops = measure_stencil_dp(seconds_per_point);
  return p;
}

}  // namespace cats::bench
