#include "bench_harness/timing.hpp"

#include <algorithm>
#include <numeric>

namespace cats::bench {

Stats summarize(std::vector<double> samples) {
  Stats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  return s;
}

}  // namespace cats::bench
