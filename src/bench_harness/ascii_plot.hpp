#pragma once
// ASCII log-log series plot — renders the paper's figures (execution time vs.
// element count, both axes logarithmic) directly in the bench output.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace cats::bench {

class SeriesPlot {
 public:
  /// `mark` is the single character plotted for this series.
  void add_series(std::string name, char mark,
                  std::vector<std::pair<double, double>> points);

  /// Render a log-log grid (both axes log10) with an axis legend. Points
  /// with non-positive coordinates are skipped.
  void render(std::ostream& os, int width = 64, int height = 18) const;

 private:
  struct Series {
    std::string name;
    char mark;
    std::vector<std::pair<double, double>> points;
  };
  std::vector<Series> series_;
};

}  // namespace cats::bench
