#include "bench_harness/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

#include "simd/detect.hpp"
#include "simd/vecd.hpp"
#include "sysinfo/cache_info.hpp"

namespace cats::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < w.size(); ++c)
      w[c] = std::max(w[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < w.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(w[c]))
         << (c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < w.size(); ++c) rule += "  " + std::string(w[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_mib(std::size_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << static_cast<double>(bytes) / (1024.0 * 1024.0) << "MiB";
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "== " << title << " ==\n";
  os << "cpu: " << simd::cpu_features_string()
     << " | simd width used: " << simd::kWidth << " doubles (" << simd::kIsaName
     << ")\n";
  os << "caches: " << cache_info_string(detect_cache_info())
     << " | hw threads: " << std::thread::hardware_concurrency() << "\n";
}

}  // namespace cats::bench
