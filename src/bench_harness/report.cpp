#include "bench_harness/report.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>

#include "bench_harness/machine.hpp"
#include "simd/detect.hpp"
#include "simd/vecd.hpp"
#include "sysinfo/cache_info.hpp"
#include "sysinfo/topology.hpp"
#include "tune/json.hpp"

namespace cats::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < w.size(); ++c)
      w[c] = std::max(w[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < w.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(w[c]))
         << (c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < w.size(); ++c) rule += "  " + std::string(w[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) line(row);

  if (json_log().enabled()) json_log().add_table({}, *this);
}

void JsonLog::enable(std::string path) {
  const bool was_enabled = enabled();
  path_ = std::move(path);
  if (!was_enabled && enabled()) {
    std::atexit([] {
      if (!json_log().flush())
        std::cerr << "warning: could not write JSON report to "
                  << json_log().path() << "\n";
    });
  }
}

void JsonLog::set_title(std::string title) { title_ = std::move(title); }

void JsonLog::add_table(std::string caption, const Table& t) {
  tables_.push_back({std::move(caption), t.headers(), t.rows()});
}

void JsonLog::add_scalar(std::string key, double value) {
  scalars_.emplace_back(std::move(key), value);
}

void JsonLog::bump_scalar(const std::string& key, double delta) {
  for (auto& kv : scalars_) {
    if (kv.first == key) {
      kv.second += delta;
      return;
    }
  }
  scalars_.emplace_back(key, delta);
}

void JsonLog::add_context(std::string key, std::string value) {
  for (auto& kv : context_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  context_.emplace_back(std::move(key), std::move(value));
}

std::string JsonLog::to_json() const {
  using tune::json_number;
  using tune::json_quote;
  std::ostringstream os;
  os << "{\n  \"title\": " << json_quote(title_) << ",\n  \"machine\": {"
     << "\"fingerprint\": " << json_quote(machine_fingerprint()) << ", "
     << "\"caches\": " << json_quote(cache_info_string(detect_cache_info()))
     << ", \"simd\": " << json_quote(simd::kIsaName)
     << ", \"topology\": "
     << json_quote(topology_string(system_topology()))
     << ", \"hw_threads\": " << std::thread::hardware_concurrency() << "},\n";
  os << "  \"context\": {";
  for (std::size_t i = 0; i < context_.size(); ++i)
    os << (i ? ", " : "") << json_quote(context_[i].first) << ": "
       << json_quote(context_[i].second);
  os << "},\n  \"tables\": [";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const Recorded& t = tables_[i];
    os << (i ? "," : "") << "\n    {\"caption\": " << json_quote(t.caption)
       << ", \"headers\": [";
    for (std::size_t c = 0; c < t.headers.size(); ++c)
      os << (c ? ", " : "") << json_quote(t.headers[c]);
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      os << (r ? ", " : "") << "[";
      for (std::size_t c = 0; c < t.rows[r].size(); ++c)
        os << (c ? ", " : "") << json_quote(t.rows[r][c]);
      os << "]";
    }
    os << "]}";
  }
  os << "\n  ],\n  \"scalars\": {";
  for (std::size_t i = 0; i < scalars_.size(); ++i)
    os << (i ? ", " : "") << json_quote(scalars_[i].first) << ": "
       << json_number(scalars_[i].second);
  os << "}\n}\n";
  return os.str();
}

bool JsonLog::flush() const {
  if (!enabled()) return false;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out.flush());
}

JsonLog& json_log() {
  static JsonLog log;
  return log;
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_mib(std::size_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << static_cast<double>(bytes) / (1024.0 * 1024.0) << "MiB";
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  if (json_log().enabled()) json_log().set_title(title);
  os << "== " << title << " ==\n";
  os << "cpu: " << simd::cpu_features_string()
     << " | simd width used: " << simd::kWidth << " doubles (" << simd::kIsaName
     << ")\n";
  os << "caches: " << cache_info_string(detect_cache_info())
     << " | hw threads: " << std::thread::hardware_concurrency() << "\n";
  os << "topology: " << topology_string(system_topology()) << "\n";
}

}  // namespace cats::bench
