#include "bench_harness/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

namespace cats::bench {

void SeriesPlot::add_series(std::string name, char mark,
                            std::vector<std::pair<double, double>> points) {
  series_.push_back({std::move(name), mark, std::move(points)});
}

void SeriesPlot::render(std::ostream& os, int width, int height) const {
  double x_lo = std::numeric_limits<double>::max(), x_hi = 0.0;
  double y_lo = std::numeric_limits<double>::max(), y_hi = 0.0;
  for (const auto& s : series_)
    for (const auto& [x, y] : s.points) {
      if (x <= 0.0 || y <= 0.0) continue;
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  if (x_hi <= 0.0 || y_hi <= 0.0) {
    os << "(no positive data to plot)\n";
    return;
  }
  // Pad the log ranges a little so extreme points stay inside the frame.
  const double lx0 = std::log10(x_lo) - 0.05, lx1 = std::log10(x_hi) + 0.05;
  const double ly0 = std::log10(y_lo) - 0.1, ly1 = std::log10(y_hi) + 0.1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto put = [&](double x, double y, char c) {
    const int col = static_cast<int>((std::log10(x) - lx0) / (lx1 - lx0) *
                                     (width - 1) + 0.5);
    const int row = static_cast<int>((std::log10(y) - ly0) / (ly1 - ly0) *
                                     (height - 1) + 0.5);
    if (col < 0 || col >= width || row < 0 || row >= height) return;
    // Row 0 is the bottom of the plot.
    char& cell = grid[static_cast<std::size_t>(height - 1 - row)]
                     [static_cast<std::size_t>(col)];
    cell = (cell == ' ' || cell == c) ? c : '*';  // '*' marks overlaps
  };
  for (const auto& s : series_)
    for (const auto& [x, y] : s.points)
      if (x > 0.0 && y > 0.0) put(x, y, s.mark);

  os << std::setprecision(3);
  os << "  y: " << y_lo << " .. " << y_hi << " (log)\n";
  for (const auto& line : grid) os << "  |" << line << "|\n";
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  os << "  x: " << x_lo << " .. " << x_hi << " (log)   ";
  for (const auto& s : series_) os << s.mark << "=" << s.name << "  ";
  os << "('*' = overlap)\n";
}

}  // namespace cats::bench
