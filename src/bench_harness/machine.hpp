#pragma once
// Machine characterization (reproduces Table I).
//
// * Bandwidth at sized working sets (RAMspeed-style copy sweep): arrays that
//   fit L1 / L2 / nothing give the three bandwidth rows.
// * Peak DP: independent multiply-add chains on registers.
// * Stencil peak DP: the inner stencil computation (products + accumulation)
//   executing on registers — lower than peak because of read-after-write
//   dependencies; this is the roofline CATS is compared against ("at least
//   50% of stencil peak").

#include <cstddef>
#include <string>

namespace cats::bench {

/// Stable identity string for the executing machine: CPU model, cache
/// topology, hardware thread count and the SIMD ISA the binary selected.
/// Keys the persistent tuning database — tuned parameters from one machine
/// must never be applied on another (or on the same machine after a rebuild
/// that changes the vector width).
std::string machine_fingerprint();

/// Streaming copy bandwidth over a working set (GB/s, counting read+write).
double measure_copy_bandwidth(std::size_t working_set_bytes,
                              double seconds_budget = 0.3);

/// Peak double-precision GFLOPS (independent mul+add / FMA chains).
double measure_peak_dp(double seconds_budget = 0.3);

/// Register-resident 5-point stencil GFLOPS (dependent accumulation).
double measure_stencil_dp(double seconds_budget = 0.3);

struct MachineProfile {
  double l1_bw_gbps = 0.0;
  double l2_bw_gbps = 0.0;
  double sys_bw_gbps = 0.0;
  double peak_dp_gflops = 0.0;
  double stencil_dp_gflops = 0.0;

  double l2_over_sys() const { return l2_bw_gbps / sys_bw_gbps; }
  /// Flops needed per main-memory double access to balance compute and
  /// bandwidth (the paper's "balanced arithmetic/stencil intensity").
  double balanced_intensity_sys() const {
    return peak_dp_gflops / (sys_bw_gbps / 8.0);
  }
  double balanced_stencil_intensity_sys() const {
    return stencil_dp_gflops / (sys_bw_gbps / 8.0);
  }
  double balanced_stencil_intensity_l2() const {
    return stencil_dp_gflops / (l2_bw_gbps / 8.0);
  }
};

/// Full Table I characterization (uses detected cache sizes for the L1/L2
/// working sets; the "system" point is far larger than the last-level cache).
MachineProfile profile_machine(double seconds_per_point = 0.3);

}  // namespace cats::bench
