#pragma once
// Plain-text table/series printing for the benchmark binaries. Each figure
// bench prints the same rows/series the paper plots (size, seconds, GFLOPS
// per scheme) plus a machine header so runs are self-describing.

#include <iosfwd>
#include <string>
#include <vector>

namespace cats::bench {

/// Fixed-width text table. print() also records the table into the global
/// JsonLog when --json output is enabled, so every bench table lands in the
/// machine-readable log without per-bench wiring.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable run log for the perf trajectory. Enabled by
/// `--json <path>` on the bench binaries (see bench/common.hpp) or the
/// CATS_BENCH_JSON env var; every printed Table plus the banner metadata is
/// written as one JSON document on flush() (registered atexit on enable()).
class JsonLog {
 public:
  void enable(std::string path);
  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  void set_title(std::string title);
  void add_table(std::string caption, const Table& t);
  void add_scalar(std::string key, double value);
  /// add_scalar that accumulates: repeated bumps of one key sum into a
  /// single entry (used for wait-time totals across timed runs).
  void bump_scalar(const std::string& key, double delta);
  /// String-valued run context ("affinity", ...); last value per key wins.
  void add_context(std::string key, std::string value);
  /// Serialize the document (exposed for tests).
  std::string to_json() const;
  /// Write to the enabled path; false on IO failure or when disabled.
  bool flush() const;

 private:
  struct Recorded {
    std::string caption;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::string path_;
  std::string title_;
  std::vector<Recorded> tables_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> context_;
};

/// The process-wide log Table::print and print_banner feed.
JsonLog& json_log();

std::string fmt_fixed(double v, int precision);
std::string fmt_sci(double v, int precision);
std::string fmt_mib(std::size_t bytes);

/// Bench banner: title + CPU features + cache sizes + thread note.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace cats::bench
