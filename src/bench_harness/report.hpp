#pragma once
// Plain-text table/series printing for the benchmark binaries. Each figure
// bench prints the same rows/series the paper plots (size, seconds, GFLOPS
// per scheme) plus a machine header so runs are self-describing.

#include <iosfwd>
#include <string>
#include <vector>

namespace cats::bench {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_fixed(double v, int precision);
std::string fmt_sci(double v, int precision);
std::string fmt_mib(std::size_t bytes);

/// Bench banner: title + CPU features + cache sizes + thread note.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace cats::bench
