#include "serve/protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "tune/json.hpp"

namespace cats::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

JobStatus parse_status(const std::string& s) {
  if (s == "done") return JobStatus::Done;
  if (s == "rejected") return JobStatus::Rejected;
  if (s == "cancelled") return JobStatus::Cancelled;
  return JobStatus::Failed;
}

}  // namespace

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::Done: return "done";
    case JobStatus::Rejected: return "rejected";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::Failed: return "failed";
  }
  return "?";
}

const char* scheme_wire_name(Scheme s) {
  switch (s) {
    case Scheme::Auto: return "auto";
    case Scheme::Naive: return "naive";
    case Scheme::Cats1: return "cats1";
    case Scheme::Cats2: return "cats2";
    case Scheme::Cats3: return "cats3";
    case Scheme::Mwd: return "mwd";
    case Scheme::PlutoLike: return "pluto";
  }
  return "?";
}

bool parse_scheme(const std::string& s, Scheme* out) {
  if (s.empty() || s == "auto") { *out = Scheme::Auto; return true; }
  if (s == "naive") { *out = Scheme::Naive; return true; }
  if (s == "cats1") { *out = Scheme::Cats1; return true; }
  if (s == "cats2") { *out = Scheme::Cats2; return true; }
  if (s == "cats3") { *out = Scheme::Cats3; return true; }
  if (s == "mwd") { *out = Scheme::Mwd; return true; }
  if (s == "pluto") { *out = Scheme::PlutoLike; return true; }
  return false;
}

bool validate_job(const JobRequest& rq, std::string* err) {
  const auto fail = [&](const char* msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  if (!kernel_known(rq.kernel)) return fail("unknown kernel family");
  if (rq.nx < 1 || rq.ny < 1) return fail("nx and ny must be >= 1");
  if (rq.kernel == "const3d" && rq.nz < 1)
    return fail("const3d requires nz >= 1");
  if ((rq.kernel == "const2d" || rq.kernel == "const2d_f32") && rq.nz > 0)
    return fail("2D kernel families do not take nz");
  if (rq.nx > kMaxExtent || rq.ny > kMaxExtent || rq.nz > kMaxExtent)
    return fail("extent exceeds per-dimension cap");
  if (job_points(rq) > kMaxPoints) return fail("domain exceeds point cap");
  if (rq.t_steps < 0 || rq.t_steps > kMaxTimesteps)
    return fail("timestep count out of range");
  if (rq.threads < 0) return fail("threads must be >= 0");
  if (rq.unroll_t < 0 || rq.unroll_t > 4)
    return fail("unroll_t out of range");
  if (rq.mwd_group < 0 || rq.mwd_group > 256)
    return fail("mwd_group out of range");
  return true;
}

bool parse_request(const std::string& line, Request* out, std::string* err) {
  tune::JsonValue v;
  if (!tune::json_parse(line, v) ||
      v.kind != tune::JsonValue::Kind::Object) {
    if (err != nullptr) *err = "malformed JSON request";
    return false;
  }
  const std::string op = v.get_string("op");
  Request rq;
  if (op == "ping") {
    rq.op = Request::Op::Ping;
  } else if (op == "stats") {
    rq.op = Request::Op::Stats;
  } else if (op == "shutdown") {
    rq.op = Request::Op::Shutdown;
    if (const tune::JsonValue* c = v.get("cancel"))
      rq.cancel = c->kind == tune::JsonValue::Kind::Bool && c->boolean;
  } else if (op == "submit") {
    rq.op = Request::Op::Submit;
    JobRequest& j = rq.job;
    j.tenant = v.get_string("tenant", "default");
    if (j.tenant.empty()) j.tenant = "default";
    j.kernel = v.get_string("kernel", "const2d");
    j.nx = v.get_int("nx");
    j.ny = v.get_int("ny");
    j.nz = v.get_int("nz");
    j.t_steps = static_cast<int>(v.get_int("t", 1));
    j.seed = static_cast<std::uint64_t>(v.get_int("seed", 1));
    j.threads = static_cast<int>(v.get_int("threads"));
    j.cache_bytes = static_cast<std::size_t>(v.get_int("cache_bytes"));
    if (const tune::JsonValue* nt = v.get("nt_stores"))
      j.nt_stores = nt->kind == tune::JsonValue::Kind::Bool && nt->boolean;
    j.unroll_t = static_cast<int>(v.get_int("unroll_t"));
    j.mwd_group = static_cast<int>(v.get_int("mwd_group"));
    if (!parse_scheme(v.get_string("scheme", "auto"), &j.scheme)) {
      if (err != nullptr) *err = "unknown scheme";
      return false;
    }
    const std::string split = v.get_string("split", "auto");
    if (split == "auto") {
      j.split = JobRequest::Split::Auto;
    } else if (split == "never") {
      j.split = JobRequest::Split::Never;
    } else if (split == "force") {
      j.split = JobRequest::Split::Force;
    } else {
      if (err != nullptr) *err = "unknown split policy";
      return false;
    }
    if (!validate_job(j, err)) return false;
  } else {
    if (err != nullptr) *err = "unknown op";
    return false;
  }
  *out = rq;
  return true;
}

std::string encode_request(const Request& rq) {
  using tune::json_number;
  using tune::json_quote;
  switch (rq.op) {
    case Request::Op::Ping: return R"({"op":"ping"})";
    case Request::Op::Stats: return R"({"op":"stats"})";
    case Request::Op::Shutdown:
      return rq.cancel ? R"({"op":"shutdown","cancel":true})"
                       : R"({"op":"shutdown"})";
    case Request::Op::Submit: break;
  }
  const JobRequest& j = rq.job;
  std::string s = R"({"op":"submit","tenant":)" + json_quote(j.tenant) +
                  ",\"kernel\":" + json_quote(j.kernel) +
                  ",\"nx\":" + std::to_string(j.nx) +
                  ",\"ny\":" + std::to_string(j.ny);
  if (j.nz > 0) s += ",\"nz\":" + std::to_string(j.nz);
  s += ",\"t\":" + std::to_string(j.t_steps) +
       ",\"seed\":" + std::to_string(j.seed);
  if (j.threads > 0) s += ",\"threads\":" + std::to_string(j.threads);
  if (j.cache_bytes != 0)
    s += ",\"cache_bytes\":" + std::to_string(j.cache_bytes);
  if (j.scheme != Scheme::Auto)
    s += std::string(",\"scheme\":") + json_quote(scheme_wire_name(j.scheme));
  if (j.nt_stores) s += ",\"nt_stores\":true";
  if (j.unroll_t != 0) s += ",\"unroll_t\":" + std::to_string(j.unroll_t);
  if (j.mwd_group != 0) s += ",\"mwd_group\":" + std::to_string(j.mwd_group);
  if (j.split == JobRequest::Split::Never) s += R"(,"split":"never")";
  if (j.split == JobRequest::Split::Force) s += R"(,"split":"force")";
  s += "}";
  return s;
}

std::string encode_result(const JobResult& r) {
  using tune::json_number;
  using tune::json_quote;
  std::string s = std::string("{\"ok\":") +
                  (r.status == JobStatus::Done ? "true" : "false") +
                  ",\"status\":" + json_quote(job_status_name(r.status));
  if (!r.error.empty()) s += ",\"error\":" + json_quote(r.error);
  if (r.status == JobStatus::Done) {
    s += ",\"scheme\":" + json_quote(r.scheme) +
         ",\"tz\":" + std::to_string(r.tz) +
         ",\"bz\":" + std::to_string(r.bz) +
         ",\"bx\":" + std::to_string(r.bx) +
         ",\"shards\":" + std::to_string(r.shards_used) +
         ",\"threads\":" + std::to_string(r.threads) +
         ",\"cache_tenants\":" + std::to_string(r.cache_tenants) +
         ",\"seconds\":" + json_number(r.seconds) +
         ",\"mlups\":" + json_number(r.mlups) +
         ",\"model_dram_bytes\":" + json_number(r.model_dram_bytes) +
         ",\"checksum\":" + json_quote(hex64(r.checksum)) +
         ",\"sample\":" + json_number(r.sample);
  }
  s += "}";
  return s;
}

bool parse_result(const std::string& line, JobResult* out, std::string* err) {
  tune::JsonValue v;
  if (!tune::json_parse(line, v) ||
      v.kind != tune::JsonValue::Kind::Object) {
    if (err != nullptr) *err = "malformed JSON response";
    return false;
  }
  JobResult r;
  r.status = parse_status(v.get_string("status", "failed"));
  r.error = v.get_string("error");
  r.scheme = v.get_string("scheme");
  r.tz = static_cast<int>(v.get_int("tz"));
  r.bz = v.get_int("bz");
  r.bx = v.get_int("bx");
  r.shards_used = static_cast<int>(v.get_int("shards", 1));
  r.threads = static_cast<int>(v.get_int("threads"));
  r.cache_tenants = static_cast<int>(v.get_int("cache_tenants", 1));
  r.seconds = v.get_number("seconds");
  r.mlups = v.get_number("mlups");
  r.model_dram_bytes = v.get_number("model_dram_bytes");
  r.checksum = parse_hex64(v.get_string("checksum", "0"));
  r.sample = v.get_number("sample");
  *out = r;
  return true;
}

}  // namespace cats::serve
