#pragma once
// Cross-shard halo execution: one large job split over several NUMA shards.
//
// The executor walks a verified plan_ir::ShardSchedule (src/plan/shard.hpp)
// literally: one std::thread per shard builds the shard's extended subgrid
// (owned slices of the outermost dimension plus `halo` rows of overlap into
// each interior neighbor), then alternates Compute steps — a full cats::run
// of the block's timesteps on the subgrid, tiles sized by Eq. 1/2 against
// the shard's own cache — with Exchange steps that refresh the halo from the
// neighbors' owned rows. Every wait recorded in the schedule maps onto a
// ProgressCell::wait_ge and every step completion onto a publish — the same
// tile-to-tile ProgressGE cells CATS1 uses for split-tiling, now spanning
// shard boundaries.
//
// Bit-exactness (asserted in tests/test_serve.cpp): the overlap rows are
// *recomputed* by both neighbors with identical arithmetic (deep halo), the
// initial condition is a function of global coordinates, and blocks are even
// so every exchange happens at buffer parity 0; the owned rows therefore
// match an unsharded run bit for bit, and the assembled grid's checksum
// equals the single-shard one.

#include <vector>

#include "plan/shard.hpp"
#include "serve/exec.hpp"
#include "serve/job.hpp"

namespace cats::serve {

/// Per-shard placement a split run dispatches onto (one entry per schedule
/// shard, index-aligned). `cpus` empty = run the shard unpinned.
struct ShardSlot {
  std::vector<int> cpus;
  int threads = 1;
};

/// Execute `rq` split across sched.shards() subgrids. The schedule must have
/// passed verify_shard_schedule (the executor re-checks and fails the job
/// otherwise — "verified = executed"). `slots.size()` must equal the shard
/// count. `out_grid`, when non-null, receives the assembled global grid.
JobResult run_split_job(const JobRequest& rq,
                        const plan_ir::ShardSchedule& sched,
                        const std::vector<ShardSlot>& slots,
                        const ExecEnv& env,
                        std::vector<double>* out_grid = nullptr);

}  // namespace cats::serve
