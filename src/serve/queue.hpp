#pragma once
// Bounded fair-share admission queue for the stencil service.
//
// Plain data structure, deliberately NOT thread-safe: the scheduler owns the
// lock, so admission policy (backpressure, fair-share ordering, batching
// filters) is unit-testable single-threaded (tests/test_serve.cpp).
//
// Fairness is deficit-style: every tenant accumulates the cost (point
// updates, job_cost) of the work popped on its behalf, and pop() always
// serves the queued tenant with the LEAST accumulated cost — so a tenant
// streaming huge jobs cannot starve one submitting small ones, while a lone
// tenant still gets the whole machine. Within a tenant, jobs stay FIFO.
// Capacity is the backpressure bound: push() refuses when full and the
// server answers the client with a typed Rejected status instead of queueing
// unboundedly.

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace cats::serve {

/// One admitted job: the request plus the promise the executor resolves.
struct QueuedJob {
  JobRequest req;
  std::promise<JobResult> promise;
  std::int64_t cost = 0;  ///< job_cost(req), accounted to the tenant on pop
};

class FairQueue {
 public:
  explicit FairQueue(std::size_t capacity) : cap_(capacity) {}

  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= cap_; }
  std::size_t size() const { return q_.size(); }
  std::size_t capacity() const { return cap_; }

  /// Admit a job; false when the queue is at capacity (backpressure).
  bool push(QueuedJob j);

  /// Fair-share pop: earliest job of the queued tenant with the least
  /// accumulated served cost. Accounts the job's cost to its tenant.
  std::optional<QueuedJob> pop();

  /// pop() restricted to jobs `eligible` accepts (batch assembly: same
  /// kernel family, non-split). Skips ineligible jobs without reordering.
  std::optional<QueuedJob> pop_if(
      const std::function<bool(const JobRequest&)>& eligible);

  /// Remove every queued job (shutdown-with-cancel); the caller resolves
  /// their promises as Cancelled.
  std::vector<QueuedJob> drain_all();

  struct TenantShare {
    std::string tenant;
    double served_cost = 0.0;     ///< point updates popped for this tenant
    std::int64_t jobs_served = 0;
    std::int64_t queued = 0;
  };
  /// Accounting snapshot over every tenant ever served or currently queued.
  std::vector<TenantShare> shares() const;

 private:
  struct Served {
    double cost = 0.0;
    std::int64_t jobs = 0;
  };

  std::size_t cap_;
  std::deque<QueuedJob> q_;  ///< arrival order (FIFO within each tenant)
  std::vector<std::pair<std::string, Served>> served_;

  Served& served_for(const std::string& tenant);
  double served_cost(const std::string& tenant) const;
};

}  // namespace cats::serve
