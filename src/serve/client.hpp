#pragma once
// Thin client for the stencil service: connect to the server's Unix-domain
// socket, exchange one JSON line per request (serve/protocol.hpp). Used by
// tools/cats_submit and the end-to-end tests; embedding programs can link it
// directly instead of shelling out.

#include <optional>
#include <string>

#include "serve/job.hpp"

namespace cats::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the server socket. False (with `err`) when the socket is
  /// absent or refuses — e.g. no server running.
  bool connect(const std::string& socket_path, std::string* err);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Raw round-trip: send one line, read one response line.
  bool request(const std::string& line, std::string* response,
               std::string* err);

  /// Submit a job and block for its terminal result. nullopt only on
  /// transport errors; rejected/cancelled/failed jobs come back as a
  /// JobResult with that status.
  std::optional<JobResult> submit(const JobRequest& job, std::string* err);

  bool ping(std::string* err);
  bool stats(std::string* json_out, std::string* err);
  /// Ask the server to drain (cancel=false) or cancel+drain (cancel=true).
  bool shutdown_server(bool cancel, std::string* err);

 private:
  int fd_ = -1;
  std::string buf_;  ///< partial-line carry between reads
};

}  // namespace cats::serve
