#pragma once
// Wire protocol of the stencil service: one JSON object per line over a
// Unix-domain stream socket.
//
// Requests:
//   {"op":"submit","tenant":"a","kernel":"const2d","nx":256,"ny":256,
//    "t":32,"seed":7,...}                        -> job result object
//   {"op":"stats"}                               -> scheduler stats object
//   {"op":"ping"}                                -> {"ok":true,"op":"pong"}
//   {"op":"shutdown"}                            -> drain, then exit
//   {"op":"shutdown","cancel":true}              -> cancel queued jobs too
//
// Responses always carry "ok" plus, for submits, the JobResult fields
// ("status" is "done"/"rejected"/"cancelled"/"failed"). The grid checksum
// travels as a 16-digit hex *string* — JSON numbers are doubles and cannot
// round-trip 64 bits. Parsing reuses the dependency-free tune JSON reader;
// a malformed line yields a typed error response, never a dropped
// connection.

#include <string>

#include "serve/job.hpp"

namespace cats::serve {

struct Request {
  enum class Op : std::uint8_t { Submit, Stats, Ping, Shutdown };
  Op op = Op::Ping;
  bool cancel = false;  ///< Shutdown only: cancel queued jobs instead of draining
  JobRequest job;       ///< Submit only
};

/// Parse one request line. Returns false and sets `err` on malformed JSON,
/// unknown op/kernel/scheme, or cap violations (validate_job).
bool parse_request(const std::string& line, Request* out, std::string* err);

/// Encode a request as a single line (no trailing newline).
std::string encode_request(const Request& rq);

/// Encode a submit response (no trailing newline).
std::string encode_result(const JobResult& r);

/// Parse a submit response line back into a JobResult (client side).
bool parse_result(const std::string& line, JobResult* out, std::string* err);

/// Scheme wire names ("auto", "naive", "cats1", ...).
const char* scheme_wire_name(Scheme s);
bool parse_scheme(const std::string& s, Scheme* out);

}  // namespace cats::serve
