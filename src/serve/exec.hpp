#pragma once
// Single-shard job execution for the stencil service.
//
// execute_job() materializes a JobRequest as a concrete kernel (const2d ->
// ConstStar2D<1>, const3d -> ConstStar3D<1> with the default test weights),
// seeds it deterministically from global coordinates, runs cats::run under
// the shard's placement constraints, and reports scheme, timing, the
// analytic DRAM-traffic estimate (cachesim/traffic_model.hpp) and an FNV-1a
// checksum of the final grid. Because the initial condition is a pure
// function of (seed, x, y, z), any two executions of the same request — on
// one shard, batched with other tenants, or halo-split across shards
// (serve/halo.hpp) — must produce bit-identical grids, and the checksum
// makes that verifiable over the wire.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/selector.hpp"
#include "core/stats.hpp"
#include "serve/job.hpp"

namespace cats::serve {

/// Shard-side execution context the scheduler resolves per dispatch.
struct ExecEnv {
  /// Explicit pin order (the shard's CPU slice); nullptr/empty = unpinned.
  const std::vector<int>* pin_cpus = nullptr;
  int threads = 1;        ///< default worker count for this dispatch
  int cache_tenants = 1;  ///< co-resident jobs sharing the shard's cache
  Tuning tuning = Tuning::Off;
  const char* tune_db = nullptr;  ///< absolute DB path; nullptr = default
  RunStats* stats = nullptr;      ///< shard-wide sync counters (optional)
};

/// Deterministic initial condition in [0, 1): splitmix64-style hash of the
/// seed and the *global* point coordinates. Identical across sharded and
/// unsharded executions by construction.
inline double init_value(std::uint64_t seed, std::int64_t x, std::int64_t y,
                         std::int64_t z) {
  std::uint64_t h = seed + 0x9E3779B97F4A7C15ULL;
  h += static_cast<std::uint64_t>(x) * 0xBF58476D1CE4E5B9ULL;
  h += static_cast<std::uint64_t>(y) * 0x94D049BB133111EBULL;
  h += static_cast<std::uint64_t>(z) * 0xD6E8FEB86659FD93ULL;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// FNV-1a 64 over the raw bytes of a double vector (bit-exactness hash).
std::uint64_t fnv1a(const std::vector<double>& v);

/// RunOptions a job resolves to under `env` (threads clamp, pinning, tenant
/// cache share, tuning DB). Shared with the split executor (serve/halo.hpp)
/// so a per-shard block run uses exactly the single-shard option surface.
RunOptions job_run_options(const JobRequest& rq, const ExecEnv& env);

/// Analytic DRAM-traffic estimate for what a run chose (mirrors the bench
/// harness accounting): naive/CATS1/CATS2 closed forms from
/// cachesim/traffic_model.hpp, CATS3 approximated by the CATS2 form,
/// PlutoLike by naive, plus the RFO write-allocate correction unless NT
/// stores were requested. `elem_bytes` is the storage size per point (4 for
/// the fp32 families).
double model_bytes_for(const SchemeChoice& choice, std::int64_t n,
                       std::int64_t wmax, int t_steps, int tiles,
                       bool nt_stores, double elem_bytes = 8.0);

/// Run one job on one shard. `out_grid`, when non-null, receives the final
/// grid (x fastest) for bit-exactness tests. Never throws: allocation or
/// verification failures come back as JobStatus::Failed.
JobResult execute_job(const JobRequest& rq, const ExecEnv& env,
                      std::vector<double>* out_grid = nullptr);

}  // namespace cats::serve
