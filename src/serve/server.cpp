#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "serve/protocol.hpp"
#include "tune/json.hpp"

namespace cats::serve {

namespace {

/// Read one '\n'-terminated line from fd into `line` (without the
/// terminator), carrying partial data in `buf` across calls. False on
/// EOF/error with nothing decodable left.
bool read_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf, 0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_line(int fd, const std::string& s) {
  std::string out = s;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig cfg, const Topology* topo)
    : cfg_(std::move(cfg)), sched_(cfg_.sched, topo) {}

Server::~Server() {
  request_cancel();
  wait();
}

bool Server::start(std::string* err) {
  const auto fail = [&](const char* what) {
    if (err != nullptr)
      *err = std::string(what) + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  };
  if (cfg_.socket_path.empty() ||
      cfg_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (err != nullptr) *err = "socket path empty or too long";
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(cfg_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    return fail("bind");
  if (::listen(listen_fd_, 16) < 0) return fail("listen");
  if (::pipe(wake_fds_) < 0) return fail("pipe");
  accept_thread_ = std::thread(&Server::accept_loop, this);
  started_ = true;
  if (cfg_.verbose) {
    std::fprintf(stderr, "cats_served: listening on %s; %s\n",
                 cfg_.socket_path.c_str(),
                 sched_.shard_plan().describe().c_str());
  }
  return true;
}

void Server::wake() {
  if (wake_fds_[1] >= 0) {
    const char b = 1;
    // A full pipe already guarantees a pending wakeup; the result only
    // matters for that no-op case.
    (void)!::write(wake_fds_[1], &b, 1);
  }
}

void Server::request_drain() {
  // order: relaxed — the scheduler's own lock orders the actual drain.
  draining_.store(true, std::memory_order_relaxed);
  sched_.drain();
  wake();
}

void Server::request_cancel() {
  // order: relaxed — see request_drain.
  cancel_.store(true, std::memory_order_relaxed);
  request_drain();
  sched_.cancel_queued();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&Server::serve_connection, this, fd);
  }
  // Drain sweep: connections the kernel completed into the backlog before
  // the wake landed would otherwise hang until the listener closes. Accept
  // them so their requests get a typed "draining" rejection instead.
  for (;;) {
    pollfd pending = {listen_fd_, POLLIN, 0};
    if (::poll(&pending, 1, 0) <= 0 || (pending.revents & POLLIN) == 0) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&Server::serve_connection, this, fd);
  }
}

void Server::serve_connection(int fd) {
  std::string buf, line;
  while (read_line(fd, buf, line)) {
    if (line.empty()) continue;
    Request rq;
    std::string err;
    if (!parse_request(line, &rq, &err)) {
      JobResult r;
      r.status = JobStatus::Rejected;
      r.error = err;
      if (!write_line(fd, encode_result(r))) break;
      continue;
    }
    switch (rq.op) {
      case Request::Op::Ping:
        if (!write_line(fd, R"({"ok":true,"op":"pong"})")) return;
        break;
      case Request::Op::Stats:
        if (!write_line(fd, stats_json())) return;
        break;
      case Request::Op::Shutdown: {
        if (!write_line(fd, R"({"ok":true,"op":"shutdown"})")) return;
        if (rq.cancel) {
          request_cancel();
        } else {
          request_drain();
        }
        break;
      }
      case Request::Op::Submit: {
        if (cfg_.verbose) {
          std::fprintf(stderr, "cats_served: job %s %lldx%lldx%lld T=%d\n",
                       rq.job.kernel.c_str(),
                       static_cast<long long>(rq.job.nx),
                       static_cast<long long>(rq.job.ny),
                       static_cast<long long>(rq.job.nz), rq.job.t_steps);
        }
        std::future<JobResult> fut = sched_.submit(std::move(rq.job));
        const JobResult r = fut.get();
        if (!write_line(fd, encode_result(r))) return;
        break;
      }
    }
  }
}

void Server::wait() {
  if (!started_) return;
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Serve out the queue (or what cancel left of it), then stop executors.
  sched_.stop();
  // Connections past this point can only be idle readers; shut them down so
  // their threads see EOF and exit.
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      threads.swap(conn_threads_);
    }
    if (threads.empty()) break;
    for (std::thread& t : threads) t.join();
  }
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::unlink(cfg_.socket_path.c_str());
  started_ = false;
}

std::string Server::stats_json() {
  using tune::json_number;
  using tune::json_quote;
  const SchedulerStats s = sched_.stats();
  std::string out = std::string("{\"ok\":true,\"queue_depth\":") +
                    std::to_string(s.queue_depth) +
                    ",\"queue_capacity\":" + std::to_string(s.queue_capacity) +
                    ",\"draining\":" + (s.draining ? "true" : "false") +
                    ",\"rejected\":" + std::to_string(s.rejected) +
                    ",\"wait_events\":" + std::to_string(s.wait_events) +
                    ",\"wait_ns\":" + std::to_string(s.wait_ns) +
                    ",\"shards\":[";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardExecStats& sh = s.shards[i];
    if (i != 0) out += ",";
    const double mlups =
        sh.busy_seconds > 0.0 ? sh.lups / sh.busy_seconds / 1e6 : 0.0;
    out += "{\"id\":" + std::to_string(sh.id) +
           ",\"node\":" + std::to_string(sh.node) +
           ",\"threads\":" + std::to_string(sh.threads) +
           ",\"jobs\":" + std::to_string(sh.jobs) +
           ",\"batches\":" + std::to_string(sh.batches) +
           ",\"splits\":" + std::to_string(sh.splits) +
           ",\"busy_seconds\":" + json_number(sh.busy_seconds) +
           ",\"mlups\":" + json_number(mlups) +
           ",\"model_dram_bytes\":" + json_number(sh.model_dram_bytes) + "}";
  }
  out += "],\"tenants\":[";
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    const FairQueue::TenantShare& t = s.tenants[i];
    if (i != 0) out += ",";
    out += "{\"tenant\":" + json_quote(t.tenant) +
           ",\"served_cost\":" + json_number(t.served_cost) +
           ",\"jobs_served\":" + std::to_string(t.jobs_served) +
           ",\"queued\":" + std::to_string(t.queued) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace cats::serve
