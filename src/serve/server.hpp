#pragma once
// Unix-domain-socket front end of the stencil service.
//
// One accept thread multiplexes the listening socket against a self-pipe
// (poll); each accepted connection gets a reader thread that parses
// line-delimited JSON requests (serve/protocol.hpp), forwards submits to the
// scheduler and writes one response line per request. Submits block the
// connection (not the server) until the job's future resolves, so a client
// sees exactly one terminal status per job.
//
// Shutdown is two-stage, matching the daemon's signal discipline
// (tools/cats_served.cpp): request_drain() stops accepting connections and
// new jobs while queued and in-flight work completes; request_cancel()
// additionally evicts queued jobs (their clients get a typed Cancelled).
// wait() blocks until the drain finishes, then force-closes idle
// connections, joins every thread and unlinks the socket path.

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"

namespace cats::serve {

struct ServerConfig {
  std::string socket_path;
  SchedulerConfig sched;
  bool verbose = false;  ///< log accepts/jobs to stderr
};

class Server {
 public:
  explicit Server(ServerConfig cfg, const Topology* topo = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept thread. False (with `err`) on any
  /// socket failure; a stale socket file at the path is replaced.
  bool start(std::string* err);

  /// Stage 1: stop accepting, drain the queue. Callable from any thread
  /// (signal-safe enough: writes one byte to the self-pipe). Idempotent.
  void request_drain();
  /// Stage 2: drain + evict queued jobs as Cancelled. Idempotent.
  void request_cancel();

  bool draining() const {
    // order: relaxed — advisory flag for status reporting only.
    return draining_.load(std::memory_order_relaxed);
  }

  /// Block until a requested drain completes, then tear everything down.
  /// Returns immediately if start() failed or was never called.
  void wait();

  Scheduler& scheduler() { return sched_; }
  const std::string& socket_path() const { return cfg_.socket_path; }

  /// Scheduler stats encoded as one JSON line (also served for "stats").
  std::string stats_json();

 private:
  void accept_loop();
  void serve_connection(int fd);
  void wake();

  ServerConfig cfg_;
  Scheduler sched_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::thread accept_thread_;
  bool started_ = false;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> cancel_{false};
};

}  // namespace cats::serve
