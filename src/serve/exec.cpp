#include "serve/exec.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <new>

#include "cachesim/traffic_model.hpp"
#include "core/run.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"
#include "kernels/const3d.hpp"
#include "serve/protocol.hpp"

namespace cats::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RunOptions job_run_options(const JobRequest& rq, const ExecEnv& env) {
  RunOptions opt;
  opt.threads = rq.threads > 0 ? std::min(rq.threads, env.threads)
                               : env.threads;
  opt.threads = std::max(opt.threads, 1);
  opt.cache_bytes = rq.cache_bytes;
  opt.scheme = rq.scheme;
  opt.nt_stores = rq.nt_stores;
  opt.unroll_t = rq.unroll_t;
  opt.mwd_group = rq.mwd_group;
  opt.cache_tenants = env.cache_tenants;
  if (env.pin_cpus != nullptr && !env.pin_cpus->empty())
    opt.pin_cpus = env.pin_cpus;
  opt.tuning = env.tuning;
  opt.tuning_db_path = env.tune_db;
  opt.stats = env.stats;
  return opt;
}

namespace {

template <class K>
JobResult run_kernel(K& k, const JobRequest& rq, const RunOptions& opt,
                     std::int64_t wmax, std::vector<double>* out_grid) {
  JobResult r;
  const Clock::time_point t0 = Clock::now();
  const SchemeChoice choice = cats::run(k, rq.t_steps, opt);
  r.seconds = seconds_since(t0);

  const SchemeChoice exec =
      resolve_dispatch(choice, job_is_3d(rq) ? 3 : 2);
  r.scheme = scheme_name(exec.scheme);
  r.tz = exec.tz;
  r.bz = exec.bz;
  r.bx = exec.bx;
  r.threads = opt.threads;
  r.cache_tenants = opt.cache_tenants;

  const std::int64_t n = job_points(rq);
  r.mlups = r.seconds > 0.0
                ? static_cast<double>(n) * rq.t_steps / r.seconds / 1e6
                : 0.0;
  r.model_dram_bytes =
      model_bytes_for(exec, n, wmax, rq.t_steps, opt.threads, opt.nt_stores,
                      kernel_element_bytes(k));

  std::vector<double> grid;
  k.copy_result_to(grid, rq.t_steps);
  r.checksum = fnv1a(grid);
  r.sample = grid[grid.size() / 2];
  if (out_grid != nullptr) *out_grid = std::move(grid);
  r.status = JobStatus::Done;
  return r;
}

}  // namespace

std::uint64_t fnv1a(const std::vector<double>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double d : v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

double model_bytes_for(const SchemeChoice& choice, std::int64_t n,
                       std::int64_t wmax, int t_steps, int tiles,
                       bool nt_stores, double elem_bytes) {
  if (t_steps <= 0 || n <= 0) return 0.0;
  TrafficInput in;
  in.n = static_cast<double>(n);
  in.t_steps = t_steps;
  in.bands = 0.0;
  in.state = 1.0;
  in.slope = 1;
  in.wmax = static_cast<double>(std::max<std::int64_t>(wmax, 1));
  in.tiles = std::max(tiles, 1);
  in.elem_bytes = elem_bytes;
  double bytes = 0.0;
  switch (choice.scheme) {
    case Scheme::Cats1:
      bytes = cats1_traffic_bytes(in, std::max(choice.tz, 1));
      break;
    case Scheme::Cats2:
    case Scheme::Cats3:
    case Scheme::Mwd:  // choice.bz is already sized at the pooled budget Z*g
      bytes = cats2_traffic_bytes(in, std::max<std::int64_t>(choice.bz, 2));
      break;
    case Scheme::Naive:
    case Scheme::PlutoLike:
    case Scheme::Auto:
      bytes = naive_traffic_bytes(in);
      break;
  }
  return nt_stores ? bytes : with_rfo_bytes(in, bytes);
}

JobResult execute_job(const JobRequest& rq, const ExecEnv& env,
                      std::vector<double>* out_grid) {
  JobResult r;
  std::string err;
  if (!validate_job(rq, &err)) {
    r.status = JobStatus::Rejected;
    r.error = err;
    return r;
  }
  const RunOptions opt = job_run_options(rq, env);
  try {
    if (job_is_3d(rq)) {
      ConstStar3D<1> k(static_cast<int>(rq.nx), static_cast<int>(rq.ny),
                       static_cast<int>(rq.nz),
                       default_star3d_weights<1>());
      k.parallel_init(opt, [&](int x, int y, int z) {
        return init_value(rq.seed, x, y, z);
      });
      return run_kernel(k, rq, opt, rq.nz, out_grid);
    }
    if (rq.kernel == "const2d_f32") {
      // Same deterministic seeding, rounded once to storage precision — the
      // checksum still verifies bit-exactness between any two fp32 runs.
      FloatStar2D<1> k(static_cast<int>(rq.nx), static_cast<int>(rq.ny),
                       default_star2d_weights<1, float>());
      k.parallel_init(opt, [&](int x, int y) {
        return static_cast<float>(init_value(rq.seed, x, y, 0));
      });
      return run_kernel(k, rq, opt, rq.ny, out_grid);
    }
    ConstStar2D<1> k(static_cast<int>(rq.nx), static_cast<int>(rq.ny),
                     default_star2d_weights<1>());
    k.parallel_init(opt, [&](int x, int y) {
      return init_value(rq.seed, x, y, 0);
    });
    return run_kernel(k, rq, opt, rq.ny, out_grid);
  } catch (const std::bad_alloc&) {
    r.status = JobStatus::Failed;
    r.error = "allocation failed";
    return r;
  }
}

}  // namespace cats::serve
