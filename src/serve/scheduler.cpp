#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "plan/shard.hpp"
#include "serve/exec.hpp"
#include "serve/halo.hpp"
#include "tune/db.hpp"

namespace cats::serve {

namespace {

using Clock = std::chrono::steady_clock;

JobResult immediate(JobStatus status, std::string error) {
  JobResult r;
  r.status = status;
  r.error = std::move(error);
  return r;
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig cfg, const Topology* topo)
    : cfg_(std::move(cfg)),
      plan_(derive_shards(topo != nullptr ? *topo : system_topology(),
                          cfg_.shards, cfg_.threads_per_shard)),
      tune_db_(cfg_.tune_db.empty() ? tune::TuneDb::default_path()
                                    : cfg_.tune_db),
      queue_(cfg_.queue_capacity) {
  cfg_.coresident = std::max(cfg_.coresident, 1);
  shard_stats_.resize(static_cast<std::size_t>(plan_.size()));
  for (int i = 0; i < plan_.size(); ++i) {
    const ShardSpec& s = plan_.shards[static_cast<std::size_t>(i)];
    shard_stats_[static_cast<std::size_t>(i)] = {s.id,   s.node, s.threads,
                                                 0,      0,      0,
                                                 0.0,    0.0,    0.0};
  }
  executors_.reserve(static_cast<std::size_t>(plan_.size()));
  for (int i = 0; i < plan_.size(); ++i) {
    executors_.emplace_back(&Scheduler::executor, this, i);
  }
}

Scheduler::~Scheduler() { stop(); }

bool Scheduler::would_split(const JobRequest& rq) const {
  if (plan_.size() < 2) return false;
  if (rq.split == JobRequest::Split::Never) return false;
  const std::int64_t extent = job_is_3d(rq) ? rq.nz : rq.ny;
  if (plan_ir::max_feasible_shards(extent, 1) < 2) return false;
  if (rq.split == JobRequest::Split::Force) return true;
  return job_points(rq) >= cfg_.split_min_points;
}

std::future<JobResult> Scheduler::submit(JobRequest rq) {
  std::promise<JobResult> prom;
  std::future<JobResult> fut = prom.get_future();
  std::string err;
  if (!validate_job(rq, &err)) {
    prom.set_value(immediate(JobStatus::Rejected, std::move(err)));
    return fut;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) {
      ++rejected_;
      prom.set_value(immediate(JobStatus::Rejected, "server is draining"));
      return fut;
    }
    if (queue_.full()) {
      ++rejected_;
      prom.set_value(
          immediate(JobStatus::Rejected, "queue full (backpressure)"));
      return fut;
    }
    QueuedJob j;
    j.cost = job_cost(rq);
    j.req = std::move(rq);
    j.promise = std::move(prom);
    queue_.push(std::move(j));
  }
  work_cv_.notify_all();
  return fut;
}

void Scheduler::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  work_cv_.notify_all();
}

void Scheduler::cancel_queued() {
  std::vector<QueuedJob> evicted;
  {
    std::lock_guard<std::mutex> lk(mu_);
    evicted = queue_.drain_all();
  }
  for (QueuedJob& j : evicted) {
    j.promise.set_value(
        immediate(JobStatus::Cancelled, "evicted from queue at shutdown"));
  }
  work_cv_.notify_all();
}

void Scheduler::stop() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (joined_) return;
    stopping_ = true;
    joined_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  SchedulerStats s;
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.draining = draining_;
  s.rejected = rejected_;
  s.shards = shard_stats_;
  s.tenants = queue_.shares();
  // order: relaxed — monotone counters; a stats snapshot needs no ordering.
  s.wait_events = run_stats_.wait_events.load(std::memory_order_relaxed);
  s.wait_ns = run_stats_.wait_ns.load(std::memory_order_relaxed);
  return s;
}

void Scheduler::executor(int shard) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      // Either a dispatch is poppable (no split holds the machine) or the
      // scheduler is stopping with nothing left to serve.
      return (!split_pending_ && !queue_.empty()) ||
             (stopping_ && queue_.empty());
    });
    if (queue_.empty()) return;  // only reachable when stopping_

    std::optional<QueuedJob> first = queue_.pop();
    if (!first.has_value()) continue;

    if (would_split(first->req)) {
      run_split(shard, std::move(*first), lk);
      continue;
    }

    // Batch assembly: co-schedule further same-family, non-split jobs on
    // this shard. The fair-share pop order still picks WHICH jobs ride
    // along, so batching never bypasses tenant fairness.
    std::vector<QueuedJob> batch;
    batch.push_back(std::move(*first));
    while (static_cast<int>(batch.size()) < cfg_.coresident) {
      const std::string& family = batch.front().req.kernel;
      std::optional<QueuedJob> more =
          queue_.pop_if([&](const JobRequest& q) {
            return q.kernel == family && !would_split(q);
          });
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    run_batch(shard, std::move(batch), lk);
  }
}

void Scheduler::run_batch(int shard, std::vector<QueuedJob> batch,
                          std::unique_lock<std::mutex>& lk) {
  const ShardSpec& spec = plan_.shards[static_cast<std::size_t>(shard)];
  const int tenants = static_cast<int>(batch.size());
  ++running_;
  lk.unlock();

  // Slice the shard's CPU list among the co-resident jobs; every tenant's
  // Eq. 1/2 then budget Z/tenants (ExecEnv::cache_tenants), matching the
  // cache they can actually keep while the others run beside them.
  const int per = std::max(spec.threads / tenants, 1);
  std::vector<std::vector<int>> slices(static_cast<std::size_t>(tenants));
  for (int j = 0; j < tenants && !spec.cpus.empty(); ++j) {
    for (int t = 0; t < per; ++t) {
      const std::size_t idx = static_cast<std::size_t>(j * per + t);
      slices[static_cast<std::size_t>(j)].push_back(
          spec.cpus[idx % spec.cpus.size()]);
    }
  }

  std::vector<JobResult> results(static_cast<std::size_t>(tenants));
  const Clock::time_point t0 = Clock::now();
  auto body = [&](int j) {
    ExecEnv env;
    env.pin_cpus = slices[static_cast<std::size_t>(j)].empty()
                       ? nullptr
                       : &slices[static_cast<std::size_t>(j)];
    env.threads = per;
    env.cache_tenants = tenants;
    env.tuning = cfg_.tuning;
    env.tune_db = tune_db_.c_str();
    env.stats = &run_stats_;
    results[static_cast<std::size_t>(j)] =
        execute_job(batch[static_cast<std::size_t>(j)].req, env);
  };
  std::vector<std::thread> riders;
  riders.reserve(static_cast<std::size_t>(tenants - 1));
  for (int j = 1; j < tenants; ++j) riders.emplace_back(body, j);
  body(0);
  for (std::thread& t : riders) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  for (int j = 0; j < tenants; ++j) {
    batch[static_cast<std::size_t>(j)].promise.set_value(
        std::move(results[static_cast<std::size_t>(j)]));
  }

  lk.lock();
  ShardExecStats& st = shard_stats_[static_cast<std::size_t>(shard)];
  st.jobs += tenants;
  if (tenants > 1) ++st.batches;
  st.busy_seconds += seconds;
  for (int j = 0; j < tenants; ++j) {
    const JobResult& r = results[static_cast<std::size_t>(j)];
    if (r.status != JobStatus::Done) continue;
    st.lups += static_cast<double>(
        batch[static_cast<std::size_t>(j)].cost);
    st.model_dram_bytes += r.model_dram_bytes;
  }
  --running_;
  idle_cv_.notify_all();
  work_cv_.notify_all();
}

void Scheduler::run_split(int shard, QueuedJob job,
                          std::unique_lock<std::mutex>& lk) {
  // Rendezvous: a split borrows every shard's CPUs, so hold further pops
  // (split_pending_) and wait until the other executors' dispatches finish.
  split_pending_ = true;
  idle_cv_.wait(lk, [&] { return running_ == 0; });
  ++running_;
  lk.unlock();

  const JobRequest& rq = job.req;
  const std::int64_t extent = job_is_3d(rq) ? rq.nz : rq.ny;
  const int want = std::min(plan_.size(),
                            plan_ir::max_feasible_shards(extent, 1));
  const plan_ir::ShardSchedule sched = plan_ir::emit_shard_schedule(
      extent, want, rq.t_steps, 1, cfg_.max_block);

  std::vector<ShardSlot> slots;
  slots.reserve(static_cast<std::size_t>(sched.shards()));
  for (int i = 0; i < sched.shards(); ++i) {
    const ShardSpec& s = plan_.shards[static_cast<std::size_t>(i)];
    slots.push_back({s.cpus, s.threads});
  }
  ExecEnv env;
  env.threads = plan_.shards[0].threads;
  env.tuning = cfg_.tuning;
  env.tune_db = tune_db_.c_str();
  env.stats = &run_stats_;

  const Clock::time_point t0 = Clock::now();
  JobResult r = run_split_job(rq, sched, slots, env);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const bool done = r.status == JobStatus::Done;
  const double bytes = r.model_dram_bytes;
  job.promise.set_value(std::move(r));

  lk.lock();
  ShardExecStats& st = shard_stats_[static_cast<std::size_t>(shard)];
  st.jobs += 1;
  st.splits += 1;
  st.busy_seconds += seconds;
  if (done) {
    st.lups += static_cast<double>(job.cost);
    st.model_dram_bytes += bytes;
  }
  --running_;
  split_pending_ = false;
  idle_cv_.notify_all();
  work_cv_.notify_all();
}

}  // namespace cats::serve
