#include "serve/queue.hpp"

#include <algorithm>
#include <limits>

namespace cats::serve {

FairQueue::Served& FairQueue::served_for(const std::string& tenant) {
  for (auto& [name, s] : served_) {
    if (name == tenant) return s;
  }
  served_.emplace_back(tenant, Served{});
  return served_.back().second;
}

double FairQueue::served_cost(const std::string& tenant) const {
  for (const auto& [name, s] : served_) {
    if (name == tenant) return s.cost;
  }
  return 0.0;
}

bool FairQueue::push(QueuedJob j) {
  if (full()) return false;
  q_.push_back(std::move(j));
  return true;
}

std::optional<QueuedJob> FairQueue::pop() {
  return pop_if([](const JobRequest&) { return true; });
}

std::optional<QueuedJob> FairQueue::pop_if(
    const std::function<bool(const JobRequest&)>& eligible) {
  // Earliest eligible job per tenant, then the tenant with the least served
  // cost wins; ties go to the earlier arrival (stable: strict <).
  std::size_t best = q_.size();
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<const std::string*> seen;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const std::string& tenant = q_[i].req.tenant;
    const auto is_seen = [&](const std::string* t) { return *t == tenant; };
    if (std::any_of(seen.begin(), seen.end(), is_seen)) continue;
    if (!eligible(q_[i].req)) continue;
    seen.push_back(&tenant);
    const double c = served_cost(tenant);
    if (c < best_cost) {
      best_cost = c;
      best = i;
    }
  }
  if (best == q_.size()) return std::nullopt;
  QueuedJob j = std::move(q_[best]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(best));
  Served& s = served_for(j.req.tenant);
  s.cost += static_cast<double>(j.cost);
  s.jobs += 1;
  return j;
}

std::vector<QueuedJob> FairQueue::drain_all() {
  std::vector<QueuedJob> out;
  out.reserve(q_.size());
  for (QueuedJob& j : q_) out.push_back(std::move(j));
  q_.clear();
  return out;
}

std::vector<FairQueue::TenantShare> FairQueue::shares() const {
  std::vector<TenantShare> out;
  const auto row = [&](const std::string& tenant) -> TenantShare& {
    for (TenantShare& t : out) {
      if (t.tenant == tenant) return t;
    }
    out.push_back({tenant, 0.0, 0, 0});
    return out.back();
  };
  for (const auto& [name, s] : served_) {
    TenantShare& t = row(name);
    t.served_cost = s.cost;
    t.jobs_served = s.jobs;
  }
  for (const QueuedJob& j : q_) row(j.req.tenant).queued += 1;
  return out;
}

}  // namespace cats::serve
