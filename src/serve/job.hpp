#pragma once
// Job model of the stencil service (src/serve).
//
// A job is one complete stencil run — kernel family, domain, timestep count
// and the RunOptions surface a remote tenant may set — submitted over the
// wire (serve/protocol.hpp), admitted by the scheduler (serve/scheduler.hpp)
// and executed on a NUMA shard (serve/exec.hpp). The result carries the
// terminal status, the scheme the selector picked, performance figures and a
// checksum of the final grid so clients can verify bit-exactness against a
// local run of the same job.

#include <cstdint>
#include <string>

#include "core/options.hpp"

namespace cats::serve {

/// Terminal job states reported to the client.
enum class JobStatus : std::uint8_t {
  Done,       ///< ran to completion; result fields are valid
  Rejected,   ///< never admitted (queue full, draining, invalid request)
  Cancelled,  ///< admitted but evicted from the queue before starting
  Failed,     ///< started but could not complete (schedule verifier, OOM)
};

const char* job_status_name(JobStatus s);

struct JobRequest {
  /// Fair-share accounting key; independent tenants get proportional service.
  std::string tenant = "default";

  /// Kernel family: "const2d" (5-point star), "const2d_f32" (its
  /// single-precision instantiation — half the bytes per point, so Eq. 1/2
  /// size tiles twice as deep) or "const3d" (7-point star), all slope 1 with
  /// the default test weights — enough to exercise every scheme while
  /// keeping the wire format closed over known kernels.
  std::string kernel = "const2d";

  std::int64_t nx = 0, ny = 0, nz = 0;  ///< nz == 0 selects the 2D family
  int t_steps = 1;

  /// Deterministic initial condition: u(x,y,z,0) = init_value(seed, x,y,z)
  /// (serve/exec.hpp), a function of *global* coordinates so a domain split
  /// across shards seeds identically to an unsharded run.
  std::uint64_t seed = 1;

  int threads = 0;  ///< worker threads; 0 = the executing shard's default
  Scheme scheme = Scheme::Auto;
  std::size_t cache_bytes = 0;  ///< Z override; 0 = detect on the shard
  bool nt_stores = false;
  int unroll_t = 0;
  int mwd_group = 0;  ///< MWD group width; 0/1 = ungrouped (core/options.hpp)

  /// Cross-shard domain decomposition policy.
  enum class Split : std::uint8_t {
    Auto,   ///< split when the job is large and several shards exist
    Never,  ///< always run on a single shard
    Force,  ///< split whenever more than one shard exists
  };
  Split split = Split::Auto;
};

struct JobResult {
  JobStatus status = JobStatus::Failed;
  std::string error;  ///< human-readable cause for non-Done statuses

  std::string scheme;       ///< scheme_name() of what actually ran
  int tz = 0;               ///< CATS1 chunk height (0 when unused)
  std::int64_t bz = 0, bx = 0;
  int shards_used = 1;      ///< > 1 when the domain was halo-split
  int threads = 0;          ///< workers the run actually used (per shard)
  int cache_tenants = 1;    ///< co-resident jobs Eq. 1/2 budgeted for

  double seconds = 0.0;
  double mlups = 0.0;             ///< nx*ny*nz*T / seconds / 1e6
  double model_dram_bytes = 0.0;  ///< cachesim/traffic_model.hpp estimate
  std::uint64_t checksum = 0;     ///< FNV-1a over the final grid's doubles
  double sample = 0.0;            ///< center-point value (human sanity check)
};

inline bool job_is_3d(const JobRequest& rq) { return rq.nz > 0; }

inline std::int64_t job_points(const JobRequest& rq) {
  return rq.nx * rq.ny * (job_is_3d(rq) ? rq.nz : 1);
}

/// Total point updates — the fair-share cost unit.
inline std::int64_t job_cost(const JobRequest& rq) {
  return job_points(rq) * (rq.t_steps > 0 ? rq.t_steps : 1);
}

inline bool kernel_known(const std::string& k) {
  return k == "const2d" || k == "const2d_f32" || k == "const3d";
}

/// Per-dimension and total-size caps the server enforces at admission. The
/// point cap bounds a job's two grid buffers to ~1 GiB.
inline constexpr std::int64_t kMaxExtent = 1 << 20;
inline constexpr std::int64_t kMaxPoints = std::int64_t{1} << 26;
inline constexpr int kMaxTimesteps = 1 << 20;

/// Admission-time validation shared by client and server: dimensions match
/// the kernel family, caps hold, scheme is runnable. Returns false and sets
/// `err` on the first violation.
bool validate_job(const JobRequest& rq, std::string* err);

}  // namespace cats::serve
