#pragma once
// NUMA-sharded job scheduler of the stencil service.
//
// The machine is partitioned into shards (sysinfo/shards.hpp — one per NUMA
// node by default), each served by one executor thread that pops work from a
// shared bounded fair-share queue (serve/queue.hpp). Three dispatch shapes:
//
//  - Single job: runs on the popping executor's shard, pinned to its CPUs,
//    tiles sized against the shard's private cache (Eq. 1/2).
//  - Batch: up to `coresident` queued jobs of the same kernel family run
//    concurrently on ONE shard, each on a slice of the shard's CPUs and with
//    RunOptions::cache_tenants = batch size, so Eq. 1/2 size every tenant's
//    tiles against the PARTITIONED cache share Z/tenants and the plan
//    verifier's residency certificate holds under contention.
//  - Split: a large domain is decomposed across ALL shards via the verified
//    block-halo schedule (plan/shard.hpp + serve/halo.hpp). The popping
//    executor rendezvouses — no other dispatch may start while a split runs,
//    since it borrows every shard's CPUs — then drives one thread per shard.
//
// Lifecycle: drain() stops admission (submits come back Rejected),
// cancel_queued() resolves queued-but-unstarted jobs as Cancelled, stop()
// drains and joins the executors after in-flight jobs complete. Every
// admitted job's future resolves exactly once with a terminal status.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.hpp"
#include "core/stats.hpp"
#include "serve/job.hpp"
#include "serve/queue.hpp"
#include "sysinfo/shards.hpp"

namespace cats::serve {

struct SchedulerConfig {
  int shards = 0;             ///< 0 = one shard per NUMA node
  int threads_per_shard = 0;  ///< 0 = the shard's physical-core count
  int coresident = 2;         ///< max batched tenants per shard (>= 1)
  std::size_t queue_capacity = 64;  ///< admission bound (backpressure)
  /// Jobs with at least this many points are split across shards under
  /// Split::Auto (when > 1 shard exists and the geometry admits it).
  std::int64_t split_min_points = std::int64_t{1} << 21;
  int max_block = 8;          ///< halo-split block-depth cap (even)
  Tuning tuning = Tuning::Off;
  std::string tune_db;        ///< absolute path; empty = TuneDb::default_path()
};

struct ShardExecStats {
  int id = 0, node = -1, threads = 1;
  std::int64_t jobs = 0;     ///< jobs completed on this shard
  std::int64_t batches = 0;  ///< multi-tenant batches among them
  std::int64_t splits = 0;   ///< split jobs this executor coordinated
  double busy_seconds = 0.0;
  double lups = 0.0;              ///< point updates served (for MLUP/s)
  double model_dram_bytes = 0.0;  ///< summed analytic traffic estimates
};

struct SchedulerStats {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  bool draining = false;
  std::int64_t rejected = 0;  ///< submissions refused (full or draining)
  std::vector<ShardExecStats> shards;
  std::vector<FairQueue::TenantShare> tenants;
  /// Library sync counters accumulated across every run (RunStats).
  std::int64_t wait_events = 0, wait_ns = 0;
};

class Scheduler {
 public:
  /// `topo` defaults to the live system topology; tests pass a canned one.
  explicit Scheduler(SchedulerConfig cfg, const Topology* topo = nullptr);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit a job. The future always resolves: Rejected immediately when the
  /// queue is full or the scheduler is draining, a terminal status from the
  /// executor otherwise.
  std::future<JobResult> submit(JobRequest rq);

  /// Stop admitting; queued and in-flight jobs still complete.
  void drain();
  /// Resolve every queued-but-unstarted job as Cancelled.
  void cancel_queued();
  /// drain() + join the executors once the queue is empty and in-flight
  /// work finished. Idempotent.
  void stop();

  SchedulerStats stats() const;
  const ShardPlan& shard_plan() const { return plan_; }
  /// True when this request would be halo-split across shards.
  bool would_split(const JobRequest& rq) const;

 private:
  void executor(int shard);
  void run_batch(int shard, std::vector<QueuedJob> batch,
                 std::unique_lock<std::mutex>& lk);
  void run_split(int shard, QueuedJob job, std::unique_lock<std::mutex>& lk);

  SchedulerConfig cfg_;
  ShardPlan plan_;
  std::string tune_db_;  ///< resolved absolute DB path

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< executors: queue/state changed
  std::condition_variable idle_cv_;  ///< split rendezvous / stop()
  FairQueue queue_;
  bool draining_ = false;
  bool stopping_ = false;
  bool split_pending_ = false;  ///< a split holds the machine; no new pops
  int running_ = 0;             ///< executors currently running a dispatch
  std::int64_t rejected_ = 0;
  std::vector<ShardExecStats> shard_stats_;
  RunStats run_stats_;
  bool joined_ = false;

  std::vector<std::thread> executors_;
};

}  // namespace cats::serve
