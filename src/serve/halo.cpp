#include "serve/halo.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "check/check.hpp"
#include "core/run.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"
#include "kernels/const3d.hpp"

namespace cats::serve {

namespace {

using plan_ir::ShardCell;
using plan_ir::ShardDomain;
using plan_ir::ShardSchedule;
using plan_ir::ShardStep;
using plan_ir::ShardStepKind;
using plan_ir::ShardWait;

using Clock = std::chrono::steady_clock;

/// Adapter over the 2D kernel: the split dimension is y, a slice is one row.
struct Split2D {
  using Kernel = ConstStar2D<1>;
  static constexpr int kGhost = 1;

  static Kernel make(const JobRequest& rq, std::int64_t slices) {
    return Kernel(static_cast<int>(rq.nx), static_cast<int>(slices),
                  default_star2d_weights<1>());
  }
  static void init(Kernel& k, const RunOptions& opt, const JobRequest& rq,
                   std::int64_t lo) {
    k.parallel_init(opt, [&](int x, int y) {
      return init_value(rq.seed, x, lo + y, 0);
    });
  }
  /// Copy slice `sy` of src's parity-0 buffer into slice `dy` of dst,
  /// including the x ghost columns (both subgrids share the x extent).
  static void copy_slice(Kernel& dst, std::int64_t dy, const Kernel& src,
                         std::int64_t sy) {
    const Grid2D<double>& s = src.grid_at(0);
    Grid2D<double>& d = dst.grid_at(0);
    std::memcpy(d.row(static_cast<int>(dy)) - kGhost,
                s.row(static_cast<int>(sy)) - kGhost,
                (static_cast<std::size_t>(dst.width()) + 2 * kGhost) *
                    sizeof(double));
  }
  static void gather(const Kernel& k, int t, std::int64_t lo,
                     std::int64_t n, std::vector<double>& out) {
    const Grid2D<double>& g = k.grid_at(t);
    for (std::int64_t y = lo; y < lo + n; ++y)
      for (int x = 0; x < k.width(); ++x)
        out.push_back(g.at(x, static_cast<int>(y)));
  }
  static std::int64_t slice_points(const JobRequest& rq) { return rq.nx; }
};

/// Split2D's single-precision sibling: identical split geometry, float
/// storage (4-byte slices; init rounds the shared deterministic seed to
/// storage precision exactly like the single-shard executor, so sharded and
/// unsharded fp32 runs stay bit-identical).
struct Split2DF32 {
  using Kernel = FloatStar2D<1>;
  static constexpr int kGhost = 1;

  static Kernel make(const JobRequest& rq, std::int64_t slices) {
    return Kernel(static_cast<int>(rq.nx), static_cast<int>(slices),
                  default_star2d_weights<1, float>());
  }
  static void init(Kernel& k, const RunOptions& opt, const JobRequest& rq,
                   std::int64_t lo) {
    k.parallel_init(opt, [&](int x, int y) {
      return static_cast<float>(init_value(rq.seed, x, lo + y, 0));
    });
  }
  static void copy_slice(Kernel& dst, std::int64_t dy, const Kernel& src,
                         std::int64_t sy) {
    const Grid2D<float>& s = src.grid_at(0);
    Grid2D<float>& d = dst.grid_at(0);
    std::memcpy(d.row(static_cast<int>(dy)) - kGhost,
                s.row(static_cast<int>(sy)) - kGhost,
                (static_cast<std::size_t>(dst.width()) + 2 * kGhost) *
                    sizeof(float));
  }
  static void gather(const Kernel& k, int t, std::int64_t lo,
                     std::int64_t n, std::vector<double>& out) {
    const Grid2D<float>& g = k.grid_at(t);
    for (std::int64_t y = lo; y < lo + n; ++y)
      for (int x = 0; x < k.width(); ++x)
        out.push_back(static_cast<double>(g.at(x, static_cast<int>(y))));
  }
  static std::int64_t slice_points(const JobRequest& rq) { return rq.nx; }
};

/// Adapter over the 3D kernel: the split dimension is z, a slice is one
/// (x, y) plane.
struct Split3D {
  using Kernel = ConstStar3D<1>;
  static constexpr int kGhost = 1;

  static Kernel make(const JobRequest& rq, std::int64_t slices) {
    return Kernel(static_cast<int>(rq.nx), static_cast<int>(rq.ny),
                  static_cast<int>(slices), default_star3d_weights<1>());
  }
  static void init(Kernel& k, const RunOptions& opt, const JobRequest& rq,
                   std::int64_t lo) {
    k.parallel_init(opt, [&](int x, int y, int z) {
      return init_value(rq.seed, x, y, lo + z);
    });
  }
  static void copy_slice(Kernel& dst, std::int64_t dz, const Kernel& src,
                         std::int64_t sz) {
    const Grid3D<double>& s = src.grid_at(0);
    Grid3D<double>& d = dst.grid_at(0);
    const std::size_t row_bytes =
        (static_cast<std::size_t>(dst.width()) + 2 * kGhost) * sizeof(double);
    // A plane copy includes the y ghost rows: the neighbor's plane carries
    // the authoritative boundary values there too.
    for (int y = -kGhost; y < dst.height() + kGhost; ++y) {
      std::memcpy(d.row(y, static_cast<int>(dz)) - kGhost,
                  s.row(y, static_cast<int>(sz)) - kGhost, row_bytes);
    }
  }
  static void gather(const Kernel& k, int t, std::int64_t lo,
                     std::int64_t n, std::vector<double>& out) {
    const Grid3D<double>& g = k.grid_at(t);
    for (std::int64_t z = lo; z < lo + n; ++z)
      for (int y = 0; y < k.height(); ++y)
        for (int x = 0; x < k.width(); ++x)
          out.push_back(g.at(x, y, static_cast<int>(z)));
  }
  static std::int64_t slice_points(const JobRequest& rq) {
    return rq.nx * rq.ny;
  }
};

/// Everything one shard thread records for the coordinator.
struct ShardOutcome {
  SchemeChoice choice;      ///< last resolved per-block scheme
  double model_bytes = 0.0;
  bool failed = false;
  std::string error;
};

template <class A>
JobResult run_split_impl(const JobRequest& rq, const ShardSchedule& sched,
                         const std::vector<ShardSlot>& slots,
                         const ExecEnv& env, std::vector<double>* out_grid) {
  const int S = sched.shards();
  CATS_CHECK(static_cast<int>(slots.size()) == S,
             "run_split_job: %d slots for %d schedule shards",
             static_cast<int>(slots.size()), S);

  // One Computed and one Copied cell per shard — the schedule's ProgressGE
  // bounds land on these via wait_ge/publish, exactly like CATS1's
  // tile-to-tile cells but across shard boundaries.
  std::vector<plan_ir::ShardDomain> owned = sched.owned;
  auto computed = std::make_unique<ProgressCell[]>(static_cast<std::size_t>(S));
  auto copied = std::make_unique<ProgressCell[]>(static_cast<std::size_t>(S));

  std::vector<std::unique_ptr<typename A::Kernel>> kernels(
      static_cast<std::size_t>(S));
  std::vector<ShardOutcome> outcomes(static_cast<std::size_t>(S));

  const Clock::time_point t0 = Clock::now();

  auto shard_body = [&](int i) {
    ShardOutcome& oc = outcomes[static_cast<std::size_t>(i)];
    try {
      const ShardDomain& own = owned[static_cast<std::size_t>(i)];
      const std::int64_t h_lo = i > 0 ? sched.halo : 0;
      const std::int64_t h_hi = i + 1 < S ? sched.halo : 0;
      const std::int64_t lo_ext = own.lo - h_lo;
      const std::int64_t n_loc = own.rows() + h_lo + h_hi;

      ExecEnv shard_env = env;
      shard_env.pin_cpus = slots[static_cast<std::size_t>(i)].cpus.empty()
                               ? nullptr
                               : &slots[static_cast<std::size_t>(i)].cpus;
      shard_env.threads = slots[static_cast<std::size_t>(i)].threads;
      shard_env.cache_tenants = 1;  // a split job owns its whole shard
      RunOptions opt = job_run_options(rq, shard_env);

      kernels[static_cast<std::size_t>(i)] =
          std::make_unique<typename A::Kernel>(A::make(rq, n_loc));
      typename A::Kernel& k = *kernels[static_cast<std::size_t>(i)];
      A::init(k, opt, rq, lo_ext);

      for (const ShardStep& st : sched.program[static_cast<std::size_t>(i)]) {
        for (const ShardWait& w : st.waits) {
          const ProgressCell& cell = w.cell == ShardCell::Computed
                                         ? computed[w.shard]
                                         : copied[w.shard];
          const WaitResult wr = cell.wait_ge(w.bound);
          if (env.stats != nullptr) env.stats->add_wait(wr);
        }
        if (st.kind == ShardStepKind::Compute) {
          const SchemeChoice choice = cats::run(k, st.tb, opt);
          oc.choice = resolve_dispatch(choice, job_is_3d(rq) ? 3 : 2);
          oc.model_bytes += model_bytes_for(
              oc.choice, A::slice_points(rq) * n_loc, n_loc, st.tb,
              opt.threads, opt.nt_stores, kernel_element_bytes(k));
          computed[i].publish(st.block + 1);
        } else {
          // Refresh this shard's halo slices from the neighbors' parity-0
          // owned slices (every non-final block is even, so the live buffer
          // is parity 0 here). Local slice l maps to global lo_ext + l.
          if (i > 0) {
            const ShardDomain& nb = owned[static_cast<std::size_t>(i - 1)];
            const std::int64_t nb_lo = nb.lo - (i - 1 > 0 ? sched.halo : 0);
            for (std::int64_t l = 0; l < h_lo; ++l) {
              const std::int64_t global = lo_ext + l;
              A::copy_slice(k, l, *kernels[static_cast<std::size_t>(i - 1)],
                            global - nb_lo);
            }
          }
          if (i + 1 < S) {
            const ShardDomain& nb = owned[static_cast<std::size_t>(i + 1)];
            const std::int64_t nb_lo = nb.lo - sched.halo;
            for (std::int64_t l = n_loc - h_hi; l < n_loc; ++l) {
              const std::int64_t global = lo_ext + l;
              A::copy_slice(k, l, *kernels[static_cast<std::size_t>(i + 1)],
                            global - nb_lo);
            }
          }
          copied[i].publish(st.block + 1);
        }
      }
    } catch (const std::bad_alloc&) {
      oc.failed = true;
      oc.error = "allocation failed on shard " + std::to_string(i);
      // Unblock the neighbors unconditionally so they cannot deadlock on a
      // dead shard; the coordinator discards the poisoned result.
      computed[i].publish(INT64_MAX);
      copied[i].publish(INT64_MAX);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(S - 1));
  for (int i = 1; i < S; ++i) workers.emplace_back(shard_body, i);
  shard_body(0);
  for (std::thread& w : workers) w.join();

  JobResult r;
  for (const ShardOutcome& oc : outcomes) {
    if (oc.failed) {
      r.status = JobStatus::Failed;
      r.error = oc.error;
      return r;
    }
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  // Assemble the global grid shard by shard (ascending split dimension, so
  // the element order matches copy_result_to of an unsharded kernel). The
  // final block may be odd; grid_at follows its parity.
  const int t_final = sched.block_steps.back();
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(job_points(rq)));
  for (int i = 0; i < S; ++i) {
    const ShardDomain& own = owned[static_cast<std::size_t>(i)];
    const std::int64_t h_lo = i > 0 ? sched.halo : 0;
    A::gather(*kernels[static_cast<std::size_t>(i)], t_final, h_lo,
              own.rows(), grid);
  }

  const SchemeChoice& choice = outcomes[0].choice;
  r.scheme = scheme_name(choice.scheme);
  r.tz = choice.tz;
  r.bz = choice.bz;
  r.bx = choice.bx;
  r.shards_used = S;
  r.threads = slots[0].threads;
  r.cache_tenants = 1;
  const std::int64_t n = job_points(rq);
  r.mlups = r.seconds > 0.0
                ? static_cast<double>(n) * rq.t_steps / r.seconds / 1e6
                : 0.0;
  for (const ShardOutcome& oc : outcomes) r.model_dram_bytes += oc.model_bytes;
  r.checksum = fnv1a(grid);
  r.sample = grid[grid.size() / 2];
  if (out_grid != nullptr) *out_grid = std::move(grid);
  r.status = JobStatus::Done;
  return r;
}

}  // namespace

JobResult run_split_job(const JobRequest& rq, const ShardSchedule& sched,
                        const std::vector<ShardSlot>& slots,
                        const ExecEnv& env, std::vector<double>* out_grid) {
  JobResult r;
  std::string err;
  if (!validate_job(rq, &err)) {
    r.status = JobStatus::Rejected;
    r.error = err;
    return r;
  }
  // "Verified = executed": refuse any schedule the execution-free verifier
  // rejects, with the first diagnostic as the typed error.
  const plan_ir::VerifyReport rep = plan_ir::verify_shard_schedule(sched);
  if (!rep.ok()) {
    r.status = JobStatus::Failed;
    r.error = "shard schedule failed verification: " +
              (rep.diags.empty() ? std::string("(no diagnostic)")
                                 : rep.diags.front().detail);
    return r;
  }
  const std::int64_t extent = job_is_3d(rq) ? rq.nz : rq.ny;
  if (sched.extent != extent || sched.T != rq.t_steps) {
    r.status = JobStatus::Failed;
    r.error = "shard schedule does not match the job's domain";
    return r;
  }
  if (job_is_3d(rq)) {
    return run_split_impl<Split3D>(rq, sched, slots, env, out_grid);
  }
  if (rq.kernel == "const2d_f32") {
    return run_split_impl<Split2DF32>(rq, sched, slots, env, out_grid);
  }
  return run_split_impl<Split2D>(rq, sched, slots, env, out_grid);
}

}  // namespace cats::serve
