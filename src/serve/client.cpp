#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/protocol.hpp"

namespace cats::serve {

namespace {

void set_err(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

bool Client::connect(const std::string& socket_path, std::string* err) {
  close();
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    if (err != nullptr) *err = "socket path empty or too long";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_err(err, "socket");
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    set_err(err, "connect " + socket_path);
    close();
    return false;
  }
  return true;
}

bool Client::request(const std::string& line, std::string* response,
                     std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_err(err, "send");
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      response->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (err != nullptr) *err = "server closed the connection";
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<JobResult> Client::submit(const JobRequest& job,
                                        std::string* err) {
  Request rq;
  rq.op = Request::Op::Submit;
  rq.job = job;
  std::string resp;
  if (!request(encode_request(rq), &resp, err)) return std::nullopt;
  JobResult r;
  if (!parse_result(resp, &r, err)) return std::nullopt;
  return r;
}

bool Client::ping(std::string* err) {
  std::string resp;
  if (!request(R"({"op":"ping"})", &resp, err)) return false;
  if (resp.find("pong") == std::string::npos) {
    if (err != nullptr) *err = "unexpected ping response: " + resp;
    return false;
  }
  return true;
}

bool Client::stats(std::string* json_out, std::string* err) {
  return request(R"({"op":"stats"})", json_out, err);
}

bool Client::shutdown_server(bool cancel, std::string* err) {
  std::string resp;
  const char* line = cancel ? R"({"op":"shutdown","cancel":true})"
                            : R"({"op":"shutdown"})";
  return request(line, &resp, err);
}

}  // namespace cats::serve
