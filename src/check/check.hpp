#pragma once
// CATS_CHECK — the debug/validation assertion layer.
//
// A drop-in replacement for bare `assert` that prints a formatted message
// (typically the offending coordinates) before aborting, so a failed grid
// bounds check or oracle precondition is diagnosable from the log of a CI
// run. Checks are active when NDEBUG is not defined (Debug builds) OR when
// CATS_VALIDATE is defined (cmake -DCATS_VALIDATE=ON), so a Release
// validation build keeps full-speed codegen everywhere except the guarded
// conditions themselves. In plain Release builds the macro compiles to
// nothing.
//
//   CATS_CHECK(x >= -g && x < w + g, "Grid2D x=%d out of [%d, %d)", x, -g, w + g);

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cats::check {

/// Print "CATS_CHECK failed" with location, condition and formatted detail,
/// then abort. Out-of-line formatting keeps the macro's inlined footprint to
/// one compare-and-branch per check site.
[[noreturn]] inline void fail(const char* file, int line, const char* cond,
                              const char* fmt, ...) {
  std::fprintf(stderr, "CATS_CHECK failed: %s\n  at %s:%d\n  ", cond, file,
               line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace cats::check

#if !defined(NDEBUG) || defined(CATS_VALIDATE)
#define CATS_CHECKS_ENABLED 1
#else
#define CATS_CHECKS_ENABLED 0
#endif

#if CATS_CHECKS_ENABLED
#define CATS_CHECK(cond, ...)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::cats::check::fail(__FILE__, __LINE__, #cond, __VA_ARGS__);    \
    }                                                                 \
  } while (0)
#else
#define CATS_CHECK(cond, ...) ((void)0)
#endif
