#include "check/oracle.hpp"

#include <cstdlib>
#include <cstring>

namespace cats::check {

namespace {

/// c |= other, componentwise max (vector-clock join).
void join(std::vector<std::uint32_t>& c, const std::vector<std::uint32_t>& o) {
  if (c.size() < o.size()) c.resize(o.size(), 0);
  for (std::size_t i = 0; i < o.size(); ++i) {
    if (o[i] > c[i]) c[i] = o[i];
  }
}

}  // namespace

const char* kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::OutOfDomain: return "out-of-domain";
    case ViolationKind::NotAdvanced: return "not-advanced";
    case ViolationKind::DoubleCompute: return "double-compute";
    case ViolationKind::MissingDep: return "missing-dep";
    case ViolationKind::FutureOverwrite: return "future-overwrite";
    case ViolationKind::UnorderedRead: return "unordered-read";
    case ViolationKind::Incomplete: return "incomplete";
  }
  return "?";
}

std::string Violation::to_string() const {
  char buf[256];
  if (nx == x && ny == y && nz == z) {
    std::snprintf(buf, sizeof(buf),
                  "%s: point (%d,%d,%d) computing t=%d expected own stamp %d, "
                  "found %d (writer thread %d, reader thread %d)",
                  kind_name(kind), x, y, z, t, expected_t, found_t, writer_tid,
                  reader_tid);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s: point (%d,%d,%d) computing t=%d requires neighbor "
                  "(%d,%d,%d) at t=%d, found %d (writer thread %d, reader "
                  "thread %d)",
                  kind_name(kind), x, y, z, t, nx, ny, nz, expected_t, found_t,
                  writer_tid, reader_tid);
  }
  return buf;
}

DepOracle::DepOracle(int width, int height, int depth, int slope, int threads)
    : w_(width),
      h_(height),
      d_(depth),
      s_(slope),
      p_(threads < 1 ? 1 : threads),
      slots_(static_cast<std::size_t>(width) * height * depth * 2) {
  CATS_CHECK(width >= 1 && height >= 1 && depth >= 1,
             "DepOracle domain %dx%dx%d must be positive", width, height,
             depth);
  CATS_CHECK(slope >= 1, "DepOracle slope %d must be >= 1", slope);
  CATS_CHECK(p_ <= kMaxThreads, "DepOracle threads %d exceeds %d", p_,
             kMaxThreads);
  vc_.assign(static_cast<std::size_t>(p_),
             std::vector<std::uint32_t>(static_cast<std::size_t>(p_), 0));
  for (int i = 0; i < p_; ++i) {
    // Epoch 0 is reserved for initial data; real writes carry epoch >= 1.
    vc_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }
  const std::uint64_t even = pack(0, -1, 0);   // t=0 initial data
  const std::uint64_t odd = pack(-1, -1, 0);   // odd parity never written
  for (std::size_t i = 0; i < slots_.size(); i += 2) {
    // order: relaxed — construction precedes any worker; the run's thread
    // creation publishes the shadow grid.
    slots_[i].store(even, std::memory_order_relaxed);
    slots_[i + 1].store(odd, std::memory_order_relaxed);
  }
}

int DepOracle::bound_tid() const {
  return detail::t_oracle_binding.tid;
}

void DepOracle::add_violation(const Violation& v) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_violations_;
  if (violations_.size() < kMaxViolations) violations_.push_back(v);
}

void DepOracle::log_edge(SyncEdge::Kind kind, int tid, const void* cell,
                         std::int64_t value) {
  // Caller holds mu_.
  if (edges_.size() < kMaxEdges) edges_.push_back({kind, tid, cell, value});
}

void DepOracle::on_row(int tid, int t, int y, int z, int x0, int x1) {
  CATS_CHECK(tid >= 0 && tid < p_, "oracle row from unknown thread %d (of %d)",
             tid, p_);
  CATS_CHECK(t + 1 < (1 << 22), "oracle timestep %d exceeds the packed range",
             t);
  if (t < 1 || y < 0 || y >= h_ || z < 0 || z >= d_ || x0 < 0 || x1 > w_) {
    Violation v;
    v.kind = ViolationKind::OutOfDomain;
    v.x = x0;
    v.y = y;
    v.z = z;
    v.t = t;
    v.nx = x1;  // report the row span in the neighbor fields
    v.ny = y;
    v.nz = z;
    v.reader_tid = tid;
    add_violation(v);
    if (t < 1 || y < 0 || y >= h_ || z < 0 || z >= d_) return;
    if (x0 < 0) x0 = 0;
    if (x1 > w_) x1 = w_;
  }
  if (x0 >= x1) return;

  const std::uint32_t my_epoch =
      vc_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(tid)];
  const std::vector<std::uint32_t>& my_vc = vc_[static_cast<std::size_t>(tid)];
  const int prev_parity = (t - 1) & 1;
  const int cur_parity = t & 1;

  for (int x = x0; x < x1; ++x) {
    Violation v;
    v.x = x;
    v.y = y;
    v.z = z;
    v.t = t;
    v.reader_tid = tid;

    // Own history: the opposite-parity slot must hold exactly t-1 ...
    // order: acquire — pairs with the writer's release of the slot.
    const std::uint64_t prev =
        slot(x, y, z, prev_parity).load(std::memory_order_acquire);
    if (stamp_of(prev) != t - 1) {
      v.kind = ViolationKind::NotAdvanced;
      v.nx = x;
      v.ny = y;
      v.nz = z;
      v.expected_t = t - 1;
      v.found_t = stamp_of(prev);
      v.writer_tid = writer_of(prev);
      add_violation(v);
    } else {
      const int w = writer_of(prev);
      if (w >= 0 && w != tid &&
          my_vc[static_cast<std::size_t>(w)] < epoch_of(prev)) {
        v.kind = ViolationKind::UnorderedRead;
        v.nx = x;
        v.ny = y;
        v.nz = z;
        v.expected_t = t - 1;
        v.found_t = t - 1;
        v.writer_tid = w;
        add_violation(v);
      }
    }
    // ... and the same-parity slot exactly t-2 (-1 sentinel when t == 1).
    // order: acquire — pairs with the writer's release below.
    const std::uint64_t cur =
        slot(x, y, z, cur_parity).load(std::memory_order_acquire);
    if (stamp_of(cur) != t - 2) {
      v.kind = stamp_of(cur) == t ? ViolationKind::DoubleCompute
                                  : ViolationKind::NotAdvanced;
      v.nx = x;
      v.ny = y;
      v.nz = z;
      v.expected_t = t - 2;
      v.found_t = stamp_of(cur);
      v.writer_tid = writer_of(cur);
      add_violation(v);
    }

    // Every slope-s box neighbor must sit at exactly t-1: behind means the
    // dependence is unsatisfied, ahead (t+1 shares the slot parity) means a
    // consumer already overwrote the double-buffered input we need.
    for (int dz = -s_; dz <= s_; ++dz) {
      const int nz = z + dz;
      if (nz < 0 || nz >= d_) continue;  // ghost: boundary data, always valid
      for (int dy = -s_; dy <= s_; ++dy) {
        const int ny = y + dy;
        if (ny < 0 || ny >= h_) continue;
        for (int dx = -s_; dx <= s_; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const int nx = x + dx;
          if (nx < 0 || nx >= w_) continue;
          // order: acquire — pairs with the neighbor writer's release.
          const std::uint64_t nv =
              slot(nx, ny, nz, prev_parity).load(std::memory_order_acquire);
          const int nt = stamp_of(nv);
          if (nt == t - 1) {
            const int w = writer_of(nv);
            if (w >= 0 && w != tid &&
                my_vc[static_cast<std::size_t>(w)] < epoch_of(nv)) {
              v.kind = ViolationKind::UnorderedRead;
              v.nx = nx;
              v.ny = ny;
              v.nz = nz;
              v.expected_t = t - 1;
              v.found_t = nt;
              v.writer_tid = w;
              add_violation(v);
            }
            continue;
          }
          v.kind = nt > t - 1 ? ViolationKind::FutureOverwrite
                              : ViolationKind::MissingDep;
          v.nx = nx;
          v.ny = ny;
          v.nz = nz;
          v.expected_t = t - 1;
          v.found_t = nt;
          v.writer_tid = writer_of(nv);
          add_violation(v);
        }
      }
    }

    // order: release — pairs with the acquire loads of this slot.
    slot(x, y, z, cur_parity)
        .store(pack(t, tid, my_epoch), std::memory_order_release);
  }
  // order: relaxed — statistics counter; read after the run completes.
  points_checked_.fetch_add(x1 - x0, std::memory_order_relaxed);
}

void DepOracle::on_release(const void* cell, std::int64_t value) {
  const int tid = bound_tid();
  {
    std::lock_guard<std::mutex> lock(mu_);
    join(cell_clocks_[cell], vc_[static_cast<std::size_t>(tid)]);
    ++releases_;
    log_edge(SyncEdge::Kind::Release, tid, cell, value);
  }
  ++vc_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(tid)];
}

void DepOracle::on_acquire(const void* cell, std::int64_t value) {
  const int tid = bound_tid();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cell_clocks_.find(cell);
  if (it != cell_clocks_.end()) {
    join(vc_[static_cast<std::size_t>(tid)], it->second);
  }
  ++acquires_;
  log_edge(SyncEdge::Kind::Acquire, tid, cell, value);
}

void DepOracle::on_barrier_arrive(const void* barrier) {
  const int tid = bound_tid();
  {
    std::lock_guard<std::mutex> lock(mu_);
    join(cell_clocks_[barrier], vc_[static_cast<std::size_t>(tid)]);
    ++barriers_;
    log_edge(SyncEdge::Kind::BarrierArrive, tid, barrier, 0);
  }
  ++vc_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(tid)];
}

void DepOracle::on_barrier_leave(const void* barrier) {
  const int tid = bound_tid();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cell_clocks_.find(barrier);
  if (it != cell_clocks_.end()) {
    join(vc_[static_cast<std::size_t>(tid)], it->second);
  }
  log_edge(SyncEdge::Kind::BarrierLeave, tid, barrier, 0);
}

std::int64_t DepOracle::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_violations_;
}

std::vector<Violation> DepOracle::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::int64_t DepOracle::release_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return releases_;
}

std::int64_t DepOracle::acquire_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquires_;
}

std::int64_t DepOracle::barrier_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return barriers_;
}

std::vector<SyncEdge> DepOracle::edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_;
}

void DepOracle::check_complete(int T) {
  for (int z = 0; z < d_; ++z) {
    for (int y = 0; y < h_; ++y) {
      for (int x = 0; x < w_; ++x) {
        // order: acquire — pairs with the workers' releases of the slot.
        const std::uint64_t last =
            slot(x, y, z, T & 1).load(std::memory_order_acquire);
        if (stamp_of(last) != T) {
          Violation v;
          v.kind = ViolationKind::Incomplete;
          v.x = x;
          v.y = y;
          v.z = z;
          v.t = T;
          v.nx = x;
          v.ny = y;
          v.nz = z;
          v.expected_t = T;
          v.found_t = stamp_of(last);
          v.writer_tid = writer_of(last);
          add_violation(v);
        }
      }
    }
  }
}

void DepOracle::print_report(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out,
               "cats dependence oracle: %lld point updates, %lld releases, "
               "%lld acquires, %lld barrier crossings, %lld violation(s)\n",
               static_cast<long long>(
                   // order: relaxed — statistics counter.
                   points_checked_.load(std::memory_order_relaxed)),
               static_cast<long long>(releases_),
               static_cast<long long>(acquires_),
               static_cast<long long>(barriers_),
               static_cast<long long>(total_violations_));
  for (const Violation& v : violations_) {
    std::fprintf(out, "  %s\n", v.to_string().c_str());
  }
  if (total_violations_ > static_cast<std::int64_t>(violations_.size())) {
    std::fprintf(out, "  ... %lld more suppressed\n",
                 static_cast<long long>(
                     total_violations_ -
                     static_cast<std::int64_t>(violations_.size())));
  }
}

bool validate_env_enabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("CATS_VALIDATE");
    return e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0;
  }();
  return enabled;
}

}  // namespace cats::check
