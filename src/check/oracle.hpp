#pragma once
// Dynamic dependence oracle: a stencil-specific logical race detector.
//
// CATS reorders the space-time iteration domain aggressively (skewed
// wavefronts, split parallelogram tiles, diamond towers); every one of those
// schedules is correct iff each point update at timestep t happens-after all
// of its slope-s box neighbors at t-1 — including across the tile-to-tile
// ProgressCell/DoneFlag hand-offs that replaced barriers. The oracle checks
// that rule directly, per point, against the synchronization the schedule
// *actually performed*:
//
//  * Shadow clock grid: per point, TWO packed slots indexed by timestep
//    parity (mirroring the double buffer) record (last timestep written,
//    writing thread, writer epoch) in one 64-bit atomic.
//  * Happens-before edges: every ProgressCell::publish/wait_ge, DoneFlag
//    set/wait and SpinBarrier crossing is reported through SyncObserver
//    (threads/sync_observer.hpp) and folded into per-thread vector clocks —
//    the FastTrack representation: a write is the epoch (tid, c); a read by
//    thread r is ordered iff VC_r[tid] >= c.
//  * Each update of (p, t) then checks: own history advanced exactly through
//    t-1, (p, t) not computed before, every slope-s neighbor written at
//    exactly t-1 (behind = missing dependence, ahead = the double-buffered
//    input was already overwritten by a t+1 consumer), and every cross-thread
//    read ordered by a *recorded* publish/wait edge.
//
// This is far cheaper and more precise than TSan for schedule bugs: real
// thread-creation ordering does not mask a missing publish (the oracle only
// believes edges the schedule recorded), and a violation is reported as the
// exact (point, t, missing dependence, thread pair) instead of a raw memory
// race. Validation mode only: ~16 shadow bytes per point and a
// (2s+1)^d-load check per update.
//
// Known (documented) approximation: a wait_ge joins the cell's accumulated
// publisher clock, so publishes that land between the satisfying publish and
// the join may be credited early. This can only *suppress* reports for
// schedules that already synchronize through the same cell, never create
// false positives; schedules that skip the wait entirely are always caught.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "threads/sync_observer.hpp"

namespace cats::check {

enum class ViolationKind : std::uint8_t {
  OutOfDomain,      ///< scheme asked for a point outside the grid interior
  NotAdvanced,      ///< own history is not exactly at t-1 when computing t
  DoubleCompute,    ///< (p, t) computed a second time
  MissingDep,       ///< a slope-s neighbor has not reached t-1
  FutureOverwrite,  ///< a neighbor already ran t+1: the t-1 input is gone
  UnorderedRead,    ///< dependence value exists but no recorded HB edge
  Incomplete,       ///< final check: point never reached timestep T
};

const char* kind_name(ViolationKind k);

/// One violated dependence, precise enough to reproduce: the point being
/// computed, the offending neighbor (== the point itself for own-history
/// kinds), the stamp expected vs. found, and the thread pair involved.
struct Violation {
  ViolationKind kind{};
  int x = 0, y = 0, z = 0;     ///< point being computed
  int t = 0;                   ///< timestep being computed
  int nx = 0, ny = 0, nz = 0;  ///< offending neighbor
  int expected_t = 0;          ///< stamp the dependence rule requires
  int found_t = 0;             ///< stamp actually found
  int reader_tid = 0;          ///< thread performing the update
  int writer_tid = -1;         ///< thread that wrote found_t; -1 = initial data
  std::string to_string() const;
};

/// One recorded happens-before event (bounded log, for diagnostics/tests).
struct SyncEdge {
  enum class Kind : std::uint8_t { Release, Acquire, BarrierArrive, BarrierLeave };
  Kind kind{};
  int tid = 0;
  const void* cell = nullptr;
  std::int64_t value = 0;
};

class DepOracle final : public SyncObserver {
 public:
  /// Shadow a width x height x depth interior (height/depth 1 for lower
  /// dimensions) swept by up to `threads` workers with a slope-`slope`
  /// stencil. t must stay below 2^22 - 1 and threads below kMaxThreads.
  DepOracle(int width, int height, int depth, int slope, int threads);

  // --- instrumentation entry points ---------------------------------------

  /// Thread `tid` computes row [x0, x1) x {y} x {z} at timestep t. Checks the
  /// full dependence rule for every point, then stamps the points as written
  /// at t with this thread's current epoch.
  void on_row(int tid, int t, int y, int z, int x0, int x1);

  // SyncObserver: called on the bound thread (see ScopedOracleThread).
  void on_release(const void* cell, std::int64_t value) override;
  void on_acquire(const void* cell, std::int64_t value) override;
  void on_barrier_arrive(const void* barrier) override;
  void on_barrier_leave(const void* barrier) override;

  // --- results -------------------------------------------------------------

  bool ok() const { return violation_count() == 0; }
  std::int64_t violation_count() const;
  /// First kMaxViolations violations in detection order.
  std::vector<Violation> violations() const;
  std::int64_t points_checked() const {
    // order: relaxed — statistics counter; read after the run completes.
    return points_checked_.load(std::memory_order_relaxed);
  }
  std::int64_t release_count() const;
  std::int64_t acquire_count() const;
  std::int64_t barrier_count() const;
  /// Bounded happens-before event log (first kMaxEdges events).
  std::vector<SyncEdge> edges() const;

  /// Final sweep: every interior point must have reached timestep T exactly.
  /// Call once after the run; adds an Incomplete violation per point behind.
  void check_complete(int T);

  void print_report(std::FILE* out) const;

  static constexpr int kMaxThreads = 1022;
  static constexpr std::size_t kMaxViolations = 64;
  static constexpr std::size_t kMaxEdges = 1 << 16;

 private:
  // Packed shadow slot: bits [42,64) = stamp+1, [32,42) = writer+1 (0 =
  // initial data), [0,32) = writer's epoch at the write.
  static std::uint64_t pack(int t, int writer, std::uint32_t epoch) noexcept {
    return (static_cast<std::uint64_t>(t + 1) << 42) |
           (static_cast<std::uint64_t>(writer + 1) << 32) | epoch;
  }
  static int stamp_of(std::uint64_t v) noexcept {
    return static_cast<int>(v >> 42) - 1;
  }
  static int writer_of(std::uint64_t v) noexcept {
    return static_cast<int>((v >> 32) & 0x3ff) - 1;
  }
  static std::uint32_t epoch_of(std::uint64_t v) noexcept {
    return static_cast<std::uint32_t>(v);
  }

  std::atomic<std::uint64_t>& slot(int x, int y, int z, int parity) {
    return slots_[(((static_cast<std::size_t>(z) * h_ + y) * w_) + x) * 2 +
                  parity];
  }

  void add_violation(const Violation& v);
  void log_edge(SyncEdge::Kind kind, int tid, const void* cell,
                std::int64_t value);
  int bound_tid() const;

  int w_, h_, d_, s_, p_;
  std::vector<std::atomic<std::uint64_t>> slots_;  ///< 2 parity slots per point

  /// vc_[tid] is only ever touched by thread tid (reads in on_row, joins in
  /// on_acquire, increments in on_release) — no locking needed for access,
  /// the mutex below only guards the shared cell-clock map and the logs.
  std::vector<std::vector<std::uint32_t>> vc_;

  mutable std::mutex mu_;
  std::unordered_map<const void*, std::vector<std::uint32_t>> cell_clocks_;
  std::vector<Violation> violations_;
  std::int64_t total_violations_ = 0;
  std::vector<SyncEdge> edges_;
  std::int64_t releases_ = 0, acquires_ = 0, barriers_ = 0;
  std::atomic<std::int64_t> points_checked_{0};
};

/// True when the environment requests validation (CATS_VALIDATE set to
/// anything but "" or "0"); cached on first call. run() then wraps every
/// dispatch in a temporary oracle and aborts with a report on violation.
bool validate_env_enabled();

// ---------------------------------------------------------------------------
// Per-thread binding used by the schemes
// ---------------------------------------------------------------------------

struct OracleBinding {
  DepOracle* oracle = nullptr;
  int tid = 0;
};

namespace detail {
inline thread_local OracleBinding t_oracle_binding{};
}  // namespace detail

/// RAII: bind this thread to `oracle` as worker `tid` — routes note_row()
/// and the SyncObserver hooks to it. A null oracle is a no-op bind, so the
/// schemes install it unconditionally. Restores the previous binding (and
/// observer) on destruction, which keeps nested run() calls well-formed.
class ScopedOracleThread {
 public:
  ScopedOracleThread(DepOracle* oracle, int tid)
      : prev_(detail::t_oracle_binding), prev_observer_(sync_observer()) {
    detail::t_oracle_binding = {oracle, tid};
    set_sync_observer(oracle);
  }
  ScopedOracleThread(const ScopedOracleThread&) = delete;
  ScopedOracleThread& operator=(const ScopedOracleThread&) = delete;
  ~ScopedOracleThread() {
    detail::t_oracle_binding = prev_;
    set_sync_observer(prev_observer_);
  }

 private:
  OracleBinding prev_;
  SyncObserver* prev_observer_;
};

/// Schemes call this immediately before each kernel row invocation. Lower
/// dimensions pass 0 for the missing coordinates (1D: y = z = 0). One
/// thread-local load and branch when no oracle is bound.
inline void note_row(int t, int y, int z, int x0, int x1) {
  const OracleBinding& b = detail::t_oracle_binding;
  if (b.oracle != nullptr) b.oracle->on_row(b.tid, t, y, z, x0, x1);
}

}  // namespace cats::check
