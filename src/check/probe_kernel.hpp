#pragma once
// Schedule probe kernels: no-op RowKernels for driving a scheme through the
// dependence oracle without any arithmetic. The schemes report every row
// they would compute via check::note_row, so a probe run validates the
// *schedule* (visit order, tile hand-offs, barriers) at full precision while
// the kernel body does nothing. Used by tools/cats_validate and the oracle
// tests; also handy for quickly checking a new scheme variant.

#include <vector>

#include "core/stencil.hpp"

namespace cats::check {

class ProbeKernel1D {
 public:
  ProbeKernel1D(int w, int slope) : w_(w), s_(slope) {}
  int width() const { return w_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }
  void process_row(int, int, int) {}
  void process_row_scalar(int, int, int) {}

 private:
  int w_, s_;
};

class ProbeKernel2D {
 public:
  ProbeKernel2D(int w, int h, int slope) : w_(w), h_(h), s_(slope) {}
  int width() const { return w_; }
  int height() const { return h_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }
  void process_row(int, int, int, int) {}
  void process_row_scalar(int, int, int, int) {}

 private:
  int w_, h_, s_;
};

class ProbeKernel3D {
 public:
  ProbeKernel3D(int w, int h, int d, int slope)
      : w_(w), h_(h), d_(d), s_(slope) {}
  int width() const { return w_; }
  int height() const { return h_; }
  int depth() const { return d_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }
  void process_row(int, int, int, int, int) {}
  void process_row_scalar(int, int, int, int, int) {}

 private:
  int w_, h_, d_, s_;
};

static_assert(RowKernel1D<ProbeKernel1D>);
static_assert(RowKernel2D<ProbeKernel2D>);
static_assert(RowKernel3D<ProbeKernel3D>);

}  // namespace cats::check
