#pragma once
// Plan emitters: one per scheme, mirroring the loop structure the schemes
// historically executed directly. Emission is pure geometry — no kernel, no
// threads — so a plan can be built and verified for any (dims, N, T, s,
// threads, TZ/BZ/BX) combination without running anything (tools/
// cats_plan_check sweeps thousands). The scheme entry points (core/*.hpp,
// baseline/pluto_like.hpp) call these same emitters and then walk the result
// (plan/kernel_walk.hpp), which is what keeps plan and execution identical.
//
// Extent arguments follow the kernel accessors: nx = width, ny = height,
// nz = depth; unused extents are 1. All emitters apply the same parameter
// clamps the schemes always applied (CATS1 tz in [1, T], thread count
// limited by tile width; CATS2/3 bz/bx floored at 2s; naive P capped by the
// outer extent), so the emitted plan records what would truly run.

#include <cstdint>

#include "core/selector.hpp"
#include "plan/plan.hpp"

namespace cats::plan_ir {

TilePlan emit_naive(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, int threads);

TilePlan emit_cats1(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, int tz, int threads);

TilePlan emit_cats2(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, std::int64_t bz,
                    int threads);

/// 3D only (the selector clamps CATS3 to CATS2 below three dimensions).
TilePlan emit_cats3(std::int64_t nx, std::int64_t ny, std::int64_t nz, int T,
                    int slope, std::int64_t bz, std::int64_t bx, int threads);

/// Multicore wavefront-diamond (2D/3D; 1D dispatches to CATS1): the same
/// diamond-tube tiling and Done-edge structure as CATS2, but owners are
/// thread *groups* — `groups` of them, each `group` members wide — and BZ is
/// expected to be sized against the pooled cache Z*group (Eq. 2). The plan
/// records the group width (TilePlan::mwd_group); the executor pipelines a
/// tube's wavefronts across the group's members behind a team barrier
/// (wave/mwd.hpp), a pure refinement of the tile-serial walk the verifier
/// certifies.
TilePlan emit_mwd(int dims, std::int64_t nx, std::int64_t ny, std::int64_t nz,
                  int T, int slope, std::int64_t bz, int groups, int group);

TilePlan emit_pluto(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, int threads);

/// Everything select_scheme needs, without a kernel: the geometry plus the
/// kernel cost model (slope via `slope`, CS' via `cs_eff`, element size).
struct PlanRequest {
  int dims = 2;
  std::int64_t nx = 0, ny = 1, nz = 1;
  int T = 0;
  int slope = 1;
  double cs_eff = 2.8;     ///< effective_cs(kernel, opt.cs_slack)
  double elem_bytes = 8.0;
  RunOptions opt;          ///< scheme, threads, cache_bytes, overrides, ...
};

/// Run the full selection pipeline (select_scheme + resolve_dispatch, the
/// same path run() takes) and emit the plan of the scheme that would
/// actually execute — including the degenerate-cache fallback to naive and
/// the dimensional clamps (CATS3 in 2D -> CATS2, CATS2 in 1D -> CATS1).
/// Fills the residency-certification fields (cache model, certify flag,
/// `clamped` when a selector floor was hit).
TilePlan emit_plan(const PlanRequest& rq);

/// Fill a freshly emitted plan's cache-model / residency-certification
/// fields: the partitioned cache share (resolve_cache_bytes already divides
/// by opt.cache_tenants), the per-point cost model (CS', element bytes), and
/// per-scheme certify/clamped flags (certified only when the tile parameter
/// came from Eq. 1/2, `clamped` when the selector floor inflated it past the
/// cache bound). Shared by emit_plan and the executing schemes
/// (core/cats*.hpp) so run()-path plans carry the same certificate the
/// static pipeline produces — which is what arms nt_store_eligible for
/// direct run() calls.
void apply_cache_model(TilePlan& p, Scheme scheme, const DomainShape& d,
                       const KernelCosts& costs, const RunOptions& opt);

}  // namespace cats::plan_ir
