#pragma once
// TilePlan: the static schedule IR.
//
// Every scheme (naive, CATS1/2/3, PluTo-like) first *emits* its schedule as
// data — a list of tiles (space-time boxes with a thread owner and a fixed
// intra-tile traversal order) plus the synchronization the schedule performs
// (point-to-point ProgressCell / DoneFlag edges and global barrier phases) —
// and execution is then a walk of the emitted plan (plan/execute.hpp). The
// verifier (plan/verify.hpp) walks the *same* tiles through the *same* slab
// enumeration below, so what is checked is exactly what runs: the IR cannot
// drift from reality because reality is produced from the IR.
//
// Tiles are stored as compact geometry descriptors, not materialized point
// sets: a plan for a benchmark-sized run is a few thousand tiles regardless
// of the domain volume. `for_each_slab` expands a tile on demand into its
// ordered sequence of *slabs* — maximal boxes of points computed at one
// timestep with no intervening synchronization — which is the granularity at
// which kernels are invoked and dependences are checked.
//
// Coordinate conventions (matching core/geometry.hpp):
//   1D: x is both the compute row and the traversal dimension.
//   2D: x = unit-stride rows, y = traversal; CATS2 tiles x with diamonds.
//   3D: x = unit-stride rows, z = traversal; CATS2/3 tile y with diamonds,
//       CATS3 additionally tiles x with (x, t) parallelograms.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/geometry.hpp"
#include "core/options.hpp"

namespace cats::plan_ir {

/// Inclusive space box; unused dimensions are the degenerate range [0, 0].
struct Box {
  std::int64_t xlo = 0, xhi = -1;
  std::int64_t ylo = 0, yhi = 0;
  std::int64_t zlo = 0, zhi = 0;

  bool empty() const noexcept { return xhi < xlo || yhi < ylo || zhi < zlo; }
  std::int64_t cells() const noexcept {
    return empty() ? 0
                   : (xhi - xlo + 1) * (yhi - ylo + 1) * (zhi - zlo + 1);
  }
};

/// One kernel-granularity unit: the box of points computed at timestep t in
/// one uninterrupted stretch of a tile walk. `wavefront` groups the slabs
/// that the scheme keeps cache-resident together (u for CATS1 columns, w for
/// CATS2/3 tubes, t for rectangular tiles); `front` marks the wavefront's
/// leading edge, where schemes issue prefetch hints.
struct Slab {
  int t = 0;
  Box box;
  bool front = false;
  std::int64_t wavefront = 0;
  /// This slab's output provably leaves cache before its next reader: it is
  /// the tile's top timestep (t == tile.t1) of a wavefront scheme, so its
  /// consumers run in the next chunk/diamond row after a full domain sweep.
  /// The wave engine streams such slabs' stores past the cache when
  /// RunOptions::nt_stores is set and the plan is NT-eligible
  /// (plan/verify.hpp nt_store_eligible). Never set for SkewedBlock tiles.
  bool trailing = false;
};

enum class TileKind : std::uint8_t {
  SkewedBlock,      ///< rectangular tile, optionally skewed by -s*t (naive, PluTo)
  WavefrontColumn,  ///< one CATS1 wavefront u inside a parallelogram tile
  DiamondTube,      ///< one CATS2 diamond tube / one CATS3 (diamond, q) tile
};

struct Tile {
  std::int32_t owner = 0;  ///< executing thread in [0, plan.threads)
  std::int32_t phase = 0;  ///< barrier phase in [0, plan.phases)
  /// Stats grouping: RunStats::tiles_processed increments once per group, on
  /// the tile with first_in_group set (a CATS1 chunk-tile spans many
  /// wavefront columns; a CATS3 diamond spans many q-tiles). A group of -1
  /// with first_in_group false contributes nothing (naive/PluTo blocks).
  std::int32_t group = -1;
  bool first_in_group = false;
  bool publishes_progress = false;  ///< owner's ProgressCell.publish(u) after the tile
  bool publishes_done = false;      ///< this tile's DoneFlag.set() after the tile
  bool front_hints = false;         ///< emit Slab::front on wavefront leading edges
  TileKind kind = TileKind::SkewedBlock;

  int t0 = 1, t1 = 0;  ///< inclusive timestep range (t0 = chunk base for columns)

  // WavefrontColumn: wavefront index u, local time range [tau_lo, tau_hi]
  // (timestep t0 + tau, traversal position u - s*tau). May be empty — the
  // column still publishes u.
  std::int64_t u = 0;
  std::int64_t tau_lo = 0, tau_hi = -1;

  // DiamondTube: diamond coordinates (di, dj) in the DiamondTiling over the
  // tiled dimension; [t0, t1] is the diamond's clipped t-range. CATS3 tiles
  // additionally carry the x-parallelogram index q (has_q set).
  std::int64_t di = 0, dj = 0;
  std::int64_t q = 0;
  bool has_q = false;

  // SkewedBlock: pre-skew box `base`; slab at t is base shifted by -s*t in
  // every spatial dimension when `skew` is set (PluTo), unshifted otherwise
  // (naive), clipped to the domain.
  Box base;
  bool skew = false;
};

/// A recorded point-to-point synchronization: before running tile `to`, its
/// owner waits until `from` is complete. Done waits on the producer tile's
/// DoneFlag; ProgressGE waits until the producer's *owner thread* has
/// published a wavefront >= value (`from` identifies the same-phase column
/// whose publish satisfies the wait — the verifier resolves the bound
/// against the producer thread's program order, exactly like the executor's
/// ProgressCell observes it).
struct SyncEdge {
  std::int32_t from = 0;
  std::int32_t to = 0;
  enum class Kind : std::uint8_t { Done, ProgressGE } kind = Kind::Done;
  std::int64_t value = 0;  ///< ProgressGE bound; unused for Done
};

/// Global synchronization performed after every phase (including the last,
/// matching the schemes: naive barriers after each timestep, CATS1 runs the
/// barrier/reset/barrier sequence after each chunk).
enum class PhaseSync : std::uint8_t {
  None,                 ///< no global sync (CATS2/3: done-flags only)
  Barrier,              ///< one barrier (naive / PluTo hyperplanes)
  BarrierResetBarrier,  ///< barrier, ProgressCell reset, barrier (CATS1 chunks)
};

struct TilePlan {
  // Problem geometry.
  int dims = 2;
  std::int64_t nx = 0, ny = 1, nz = 1;  ///< extents; unused dims are 1
  int T = 0;
  int slope = 1;

  // Schedule shape.
  Scheme scheme = Scheme::Naive;
  int threads = 1;  ///< worker count P after the scheme's own clamps
  int phases = 0;
  PhaseSync phase_sync = PhaseSync::None;

  // Tile parameters the emitter actually used (post-clamp).
  int tz = 0;
  std::int64_t bz = 0, bx = 0;
  /// MWD (Scheme::Mwd) group width g: `threads` above counts the diamond
  /// *groups*; the executor runs threads*g workers, g members pipelining the
  /// wavefronts of each shared tube. The residency certificate is granted
  /// against the pooled budget cache_bytes*g (Eq. 2 with Z*g). 1 elsewhere.
  int mwd_group = 1;

  // Cache model for residency certification (plan/verify.hpp). cache_bytes
  // is Z; cs_eff and elem_bytes follow core/selector.hpp. certify_residency
  // is set when the parameters came from Eq. 1 / Eq. 2 (not overrides);
  // `clamped` records that the selector hit its documented floor (TZ < 1 or
  // raw BZ < 2s) and the wavefront is allowed to exceed Z (warning, not
  // error).
  std::size_t cache_bytes = 0;
  double cs_eff = 0.0;
  double elem_bytes = 8.0;
  bool certify_residency = false;
  bool clamped = false;
  /// Tenants co-resident on the cache this plan was sized for (src/serve
  /// batching): cache_bytes above is already the *partitioned* share
  /// Z_full/cache_tenants, so the residency certificate holds under
  /// contention. 1 = the run owns the whole private cache.
  int cache_tenants = 1;

  std::vector<Tile> tiles;
  std::vector<SyncEdge> edges;

  std::int64_t domain_cells() const noexcept { return nx * ny * nz; }
};

namespace detail {

inline Box full_domain(const TilePlan& p) noexcept {
  return {0, p.nx - 1, 0, p.ny - 1, 0, p.nz - 1};
}

}  // namespace detail

/// Expand `tile` into its ordered slab sequence, invoking f(const Slab&) for
/// each. This enumeration *is* the tile's intra-tile traversal order: the
/// executor feeds it to the kernel in this order, and the verifier treats
/// earlier slabs as happening-before later slabs of the same tile.
///
/// GCC 12's loop unswitching emits wrong code for this function when it is
/// inlined into a caller whose callback conditionally stores (slabs are
/// silently skipped at -O3; UBSan-clean, disappears with
/// -fno-unswitch-loops). Keep the pass off here — correctness of both the
/// executor and the verifier rides on this enumeration.
#if defined(__GNUC__) && !defined(__clang__)
#define CATS_PLAN_NO_UNSWITCH __attribute__((optimize("no-unswitch-loops")))
#else
#define CATS_PLAN_NO_UNSWITCH
#endif
template <class F>
CATS_PLAN_NO_UNSWITCH inline void for_each_slab(const TilePlan& p,
                                                const Tile& tile, F&& f) {
  const std::int64_t s = p.slope;
  switch (tile.kind) {
    case TileKind::SkewedBlock: {
      for (int t = tile.t0; t <= tile.t1; ++t) {
        const std::int64_t st = tile.skew ? s * t : 0;
        Box b;
        b.xlo = std::max<std::int64_t>(tile.base.xlo - st, 0);
        b.xhi = std::min<std::int64_t>(tile.base.xhi - st, p.nx - 1);
        if (p.dims >= 2) {
          b.ylo = std::max<std::int64_t>(tile.base.ylo - st, 0);
          b.yhi = std::min<std::int64_t>(tile.base.yhi - st, p.ny - 1);
        }
        if (p.dims >= 3) {
          b.zlo = std::max<std::int64_t>(tile.base.zlo - st, 0);
          b.zhi = std::min<std::int64_t>(tile.base.zhi - st, p.nz - 1);
        }
        if (b.empty()) continue;
        f(Slab{t, b, false, t});
      }
      break;
    }

    case TileKind::WavefrontColumn: {
      for (std::int64_t tau = tile.tau_lo; tau <= tile.tau_hi; ++tau) {
        const int t = tile.t0 + static_cast<int>(tau);
        const std::int64_t pos = tile.u - s * tau;
        Box b = detail::full_domain(p);
        if (p.dims == 1) {
          b.xlo = b.xhi = pos;
        } else if (p.dims == 2) {
          b.ylo = b.yhi = pos;
        } else {
          b.zlo = b.zhi = pos;
        }
        f(Slab{t, b, tile.front_hints && tau == tile.tau_lo, tile.u,
               t == tile.t1});
      }
      break;
    }

    case TileKind::DiamondTube: {
      const std::int64_t tiled = (p.dims == 2) ? p.nx : p.ny;
      const std::int64_t trav = (p.dims == 2) ? p.ny : p.nz;
      const DiamondTiling dt{static_cast<int>(s), p.bz, tiled, tile.t0,
                             tile.t1};
      const Range tr{tile.t0, tile.t1};
      const std::int64_t w_lo = s * tr.lo;
      const std::int64_t w_hi = trav - 1 + s * tr.hi;
      for (std::int64_t w = w_lo; w <= w_hi; ++w) {
        const Range ts = intersect(tr, {ceil_div(w - trav + 1, s),
                                        floor_div(w, s)});
        for (std::int64_t t = ts.lo; t <= ts.hi; ++t) {
          const Range pr = dt.p_range(tile.di, tile.dj, t);
          if (pr.empty()) continue;
          const std::int64_t pos = w - s * t;
          Box b;
          if (p.dims == 2) {
            b.xlo = pr.lo;
            b.xhi = pr.hi;
            b.ylo = b.yhi = pos;
          } else {
            b.ylo = pr.lo;
            b.yhi = pr.hi;
            b.zlo = b.zhi = pos;
            b.xlo = 0;
            b.xhi = p.nx - 1;
            if (tile.has_q) {
              b.xlo = std::max<std::int64_t>(tile.q * p.bx + s * t, 0);
              b.xhi = std::min<std::int64_t>((tile.q + 1) * p.bx + s * t,
                                             p.nx) - 1;
              if (b.xhi < b.xlo) continue;
            }
          }
          f(Slab{static_cast<int>(t), b, tile.front_hints && t == ts.lo, w,
                 static_cast<int>(t) == tile.t1});
        }
      }
      break;
    }
  }
}

}  // namespace cats::plan_ir
