#include "plan/shard.hpp"

#include <algorithm>
#include <string>

#include "check/check.hpp"

namespace cats::plan_ir {

namespace {

/// Append the standard neighbor waits of one step. `bound` is block + 1.
void wait_neighbors(std::vector<ShardWait>& out, ShardCell cell, int shard,
                    int shards, std::int64_t bound) {
  if (shard > 0) out.push_back({cell, shard - 1, bound});
  if (shard + 1 < shards) out.push_back({cell, shard + 1, bound});
}

}  // namespace

int max_feasible_shards(std::int64_t extent, int slope) {
  CATS_CHECK(extent >= 1 && slope >= 1,
             "max_feasible_shards extent=%lld slope=%d",
             static_cast<long long>(extent), slope);
  // Every shard must own >= 2*slope rows so even the minimum block (tb = 2)
  // finds its halo inside the immediate neighbor.
  const std::int64_t cap = extent / std::max<std::int64_t>(2 * slope, 1);
  return static_cast<int>(std::max<std::int64_t>(1, cap));
}

ShardSchedule emit_shard_schedule(std::int64_t extent, int shards, int T,
                                  int slope, int max_block) {
  CATS_CHECK(extent >= 1 && T >= 0 && slope >= 1 && shards >= 1,
             "emit_shard_schedule extent=%lld shards=%d T=%d slope=%d",
             static_cast<long long>(extent), shards, T, slope);
  ShardSchedule s;
  s.extent = extent;
  s.T = T;
  s.slope = slope;

  const int S = std::min(shards, max_feasible_shards(extent, slope));
  for (int i = 0; i < S; ++i) {
    s.owned.push_back({extent * i / S, extent * (i + 1) / S});
  }

  // Block depth: even (each block's run() starts and ends on buffer parity
  // 0) and small enough that the halo fits the smallest shard. The last
  // block absorbs any odd remainder of T.
  std::int64_t min_rows = extent;
  for (const ShardDomain& d : s.owned) min_rows = std::min(min_rows, d.rows());
  int tb = max_block > 0 ? max_block : 8;
  tb -= tb & 1;
  tb = std::max(tb, 2);
  while (tb > 2 && static_cast<std::int64_t>(slope) * tb > min_rows) tb -= 2;
  if (S == 1) tb = std::max(T, 1);  // single shard: one block, no halo

  int left = T;
  while (left > 0) {
    const int step = std::min(left, tb);
    // All blocks but the last must be even; `tb` is even, so only a final
    // odd remainder can produce an odd block — which is exactly the
    // permitted place for it.
    s.block_steps.push_back(step);
    left -= step;
  }
  if (s.block_steps.empty()) s.block_steps.push_back(0);  // T == 0: no-op run

  int tb_max = 0;
  for (int b : s.block_steps) tb_max = std::max(tb_max, b);
  s.halo = S > 1 ? slope * tb_max : 0;

  const int B = s.blocks();
  s.program.resize(static_cast<std::size_t>(S));
  for (int i = 0; i < S; ++i) {
    for (int b = 0; b < B; ++b) {
      ShardStep compute;
      compute.kind = ShardStepKind::Compute;
      compute.block = b;
      compute.tb = s.block_steps[static_cast<std::size_t>(b)];
      if (b > 0) {
        // Anti-dependence: the neighbors read this shard's owned rows while
        // exchanging block b-1; they must be done before this block
        // overwrites them.
        wait_neighbors(compute.waits, ShardCell::Copied, i, S, b);
      }
      s.program[static_cast<std::size_t>(i)].push_back(std::move(compute));

      if (b + 1 < B) {
        ShardStep exch;
        exch.kind = ShardStepKind::Exchange;
        exch.block = b;
        // Flow dependence: the halo rows this shard refreshes are the
        // neighbors' owned rows as of the end of block b.
        wait_neighbors(exch.waits, ShardCell::Computed, i, S, b + 1);
        s.program[static_cast<std::size_t>(i)].push_back(std::move(exch));
      }
    }
  }
  return s;
}

namespace {

struct Sink {
  VerifyReport& rep;
  std::size_t max_diags;

  void emit(Diag d) {
    if (rep.diags.size() >= max_diags) {
      ++rep.suppressed;
      return;
    }
    rep.diags.push_back(std::move(d));
  }
  void error(DiagKind kind, std::string detail, int shard = -1,
             int block = -1) {
    Diag d;
    d.kind = kind;
    d.tile_a = shard;
    d.t = block;
    d.detail = std::move(detail);
    emit(std::move(d));
  }
};

bool has_wait(const ShardStep& step, ShardCell cell, int shard,
              std::int64_t bound) {
  for (const ShardWait& w : step.waits) {
    if (w.cell == cell && w.shard == shard && w.bound >= bound) return true;
  }
  return false;
}

}  // namespace

VerifyReport verify_shard_schedule(const ShardSchedule& s,
                                   const VerifyOptions& opt) {
  VerifyReport rep;
  Sink sink{rep, opt.max_diags};
  const int S = s.shards();
  const int B = s.blocks();

  // --- Structure -----------------------------------------------------------
  if (S < 1 || B < 1 || s.extent < 1 || s.slope < 1 ||
      s.program.size() != static_cast<std::size_t>(S)) {
    sink.error(DiagKind::MalformedPlan,
               "shards/blocks/extent/program size inconsistent");
    return rep;
  }
  std::int64_t cursor = 0;
  for (int i = 0; i < S; ++i) {
    const ShardDomain& d = s.owned[static_cast<std::size_t>(i)];
    if (d.lo != cursor || d.hi <= d.lo) {
      sink.error(DiagKind::CoverageGap,
                 "owned intervals do not partition [0, extent): shard " +
                     std::to_string(i) + " = [" + std::to_string(d.lo) + ", " +
                     std::to_string(d.hi) + ")",
                 i);
      return rep;
    }
    cursor = d.hi;
  }
  if (cursor != s.extent) {
    sink.error(DiagKind::CoverageGap,
               "owned intervals stop at " + std::to_string(cursor) +
                   " of extent " + std::to_string(s.extent));
    return rep;
  }

  int sum = 0, tb_max = 0;
  for (int b = 0; b < B; ++b) {
    const int tb = s.block_steps[static_cast<std::size_t>(b)];
    if (tb < 0 || (b + 1 < B && (tb == 0 || (tb & 1) != 0))) {
      sink.error(DiagKind::MalformedPlan,
                 "block " + std::to_string(b) + " has " + std::to_string(tb) +
                     " timesteps; every block but the last must be even and "
                     "non-empty (the double buffer must re-land on parity 0)",
                 -1, b);
    }
    sum += tb;
    tb_max = std::max(tb_max, tb);
  }
  if (sum != s.T) {
    sink.error(DiagKind::MalformedPlan,
               "block timesteps sum to " + std::to_string(sum) + ", T = " +
                   std::to_string(s.T));
  }
  if (S > 1 && s.halo < s.slope * tb_max) {
    sink.error(DiagKind::WavefrontOverflow,
               "halo " + std::to_string(s.halo) +
                   " rows cannot absorb slope*tb = " +
                   std::to_string(s.slope * tb_max) +
                   " rows of exactness erosion per block");
  }
  if (S > 1) {
    std::int64_t min_rows = s.extent;
    for (const ShardDomain& d : s.owned) {
      min_rows = std::min(min_rows, d.rows());
    }
    if (min_rows < s.halo) {
      sink.error(DiagKind::MalformedPlan,
                 "smallest shard owns " + std::to_string(min_rows) +
                     " rows, less than the halo depth " +
                     std::to_string(s.halo) +
                     ": a halo would reach past the immediate neighbor");
    }
  }

  // --- Program shape + dependence coverage ---------------------------------
  for (int i = 0; i < S; ++i) {
    const std::vector<ShardStep>& prog = s.program[static_cast<std::size_t>(i)];
    const std::size_t expect = static_cast<std::size_t>(B) +
                               static_cast<std::size_t>(S > 1 ? B - 1 : 0);
    if (prog.size() != expect) {
      sink.error(DiagKind::MalformedPlan,
                 "shard " + std::to_string(i) + " program has " +
                     std::to_string(prog.size()) + " steps, expected " +
                     std::to_string(expect),
                 i);
      continue;
    }
    for (int b = 0; b < B; ++b) {
      const std::size_t ci = static_cast<std::size_t>(S > 1 ? 2 * b : b);
      const ShardStep& compute = prog[ci];
      if (compute.kind != ShardStepKind::Compute || compute.block != b ||
          compute.tb != s.block_steps[static_cast<std::size_t>(b)]) {
        sink.error(DiagKind::MalformedPlan,
                   "shard " + std::to_string(i) + " step " +
                       std::to_string(ci) + " is not compute(block=" +
                       std::to_string(b) + ")",
                   i, b);
        continue;
      }
      // Anti-dependence: block b > 0 overwrites rows the neighbors read
      // when exchanging block b-1.
      if (b > 0) {
        for (int j : {i - 1, i + 1}) {
          if (j < 0 || j >= S) continue;
          if (!has_wait(compute, ShardCell::Copied, j, b)) {
            Diag d;
            d.kind = DiagKind::DepUncovered;
            d.tile_a = i;
            d.tile_b = j;
            d.t = b;
            d.detail = "compute(block " + std::to_string(b) + ") of shard " +
                       std::to_string(i) +
                       " overwrites rows shard " + std::to_string(j) +
                       " reads for its block-" + std::to_string(b - 1) +
                       " exchange, but waits for no Copied[" +
                       std::to_string(j) + "] >= " + std::to_string(b);
            sink.emit(std::move(d));
          }
        }
      }
      if (S > 1 && b + 1 < B) {
        const ShardStep& exch = prog[ci + 1];
        if (exch.kind != ShardStepKind::Exchange || exch.block != b) {
          sink.error(DiagKind::MalformedPlan,
                     "shard " + std::to_string(i) + " step " +
                         std::to_string(ci + 1) + " is not exchange(block=" +
                         std::to_string(b) + ")",
                     i, b);
          continue;
        }
        // Flow dependence: the refreshed halo rows are the neighbors' owned
        // rows as of the end of block b.
        for (int j : {i - 1, i + 1}) {
          if (j < 0 || j >= S) continue;
          if (!has_wait(exch, ShardCell::Computed, j, b + 1)) {
            Diag d;
            d.kind = DiagKind::DepUncovered;
            d.tile_a = i;
            d.tile_b = j;
            d.t = b;
            d.detail = "exchange(block " + std::to_string(b) + ") of shard " +
                       std::to_string(i) + " copies rows of shard " +
                       std::to_string(j) +
                       " but waits for no Computed[" + std::to_string(j) +
                       "] >= " + std::to_string(b + 1);
            sink.emit(std::move(d));
          }
        }
      }
    }
  }

  // --- Progress: simulate the wait/publish protocol ------------------------
  // Cells start at 0; a shard's next step runs once all its waits are
  // satisfied, then publishes its own cell = block + 1. If no step can run
  // and some remain, the protocol deadlocks.
  {
    std::vector<std::int64_t> computed(static_cast<std::size_t>(S), 0);
    std::vector<std::int64_t> copied(static_cast<std::size_t>(S), 0);
    std::vector<std::size_t> next(static_cast<std::size_t>(S), 0);
    std::int64_t executed = 0, total = 0;
    for (const auto& prog : s.program) {
      total += static_cast<std::int64_t>(prog.size());
    }
    bool advanced = true;
    while (advanced) {
      advanced = false;
      for (int i = 0; i < S; ++i) {
        const auto& prog = s.program[static_cast<std::size_t>(i)];
        while (next[static_cast<std::size_t>(i)] < prog.size()) {
          const ShardStep& st = prog[next[static_cast<std::size_t>(i)]];
          bool ready = true;
          for (const ShardWait& w : st.waits) {
            if (w.shard < 0 || w.shard >= S) {
              ready = false;
              break;
            }
            const std::int64_t have =
                w.cell == ShardCell::Computed
                    ? computed[static_cast<std::size_t>(w.shard)]
                    : copied[static_cast<std::size_t>(w.shard)];
            if (have < w.bound) {
              ready = false;
              break;
            }
          }
          if (!ready) break;
          if (st.kind == ShardStepKind::Compute) {
            computed[static_cast<std::size_t>(i)] = st.block + 1;
          } else {
            copied[static_cast<std::size_t>(i)] = st.block + 1;
          }
          ++next[static_cast<std::size_t>(i)];
          ++executed;
          advanced = true;
        }
      }
    }
    if (executed != total) {
      for (int i = 0; i < S; ++i) {
        const auto& prog = s.program[static_cast<std::size_t>(i)];
        if (next[static_cast<std::size_t>(i)] >= prog.size()) continue;
        const ShardStep& st = prog[next[static_cast<std::size_t>(i)]];
        Diag d;
        d.kind = DiagKind::StuckWait;
        d.tile_a = i;
        d.t = st.block;
        d.detail = "shard " + std::to_string(i) + " stuck at " +
                   (st.kind == ShardStepKind::Compute ? "compute" : "exchange") +
                   "(block " + std::to_string(st.block) +
                   "): a wait can never be satisfied";
        sink.emit(std::move(d));
      }
    }
  }

  rep.stats.tiles = static_cast<std::int64_t>(S) * B;
  for (const auto& prog : s.program) {
    for (const ShardStep& st : prog) {
      rep.stats.edges += static_cast<std::int64_t>(st.waits.size());
    }
  }
  return rep;
}

}  // namespace cats::plan_ir
