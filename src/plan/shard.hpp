#pragma once
// Cross-shard schedule IR: block-granular halo exchange between NUMA shards.
//
// One large domain can span several shards (src/serve): the outermost
// traversal dimension (y in 2D, z in 3D) is block-partitioned into per-shard
// subgrids, each extended by `halo` rows of *overlap* into its neighbors'
// territory. A shard computes `tb` timesteps of a block on the extended
// subgrid (deep-halo / overlapped tiling: exactness erodes inward from the
// extension edge at slope s per step, so after tb <= halo/s steps the owned
// rows are still bit-exact), then refreshes its halo rows from the
// neighbors' owned rows and proceeds to the next block. Inside a block each
// shard runs the full CATS machinery unchanged — temporal blocking composes
// with domain decomposition (Wittmann/Hager/Wellein, PAPERS.md).
//
// Mirroring the tile-plan philosophy (plan/plan.hpp), the whole cross-shard
// protocol is emitted as *data* first: per shard a program-order step list
// (Compute / Exchange) whose waits are ProgressGE bounds on the two
// per-shard monotone counters
//
//   Computed[i] >= b+1  — shard i finished computing block b
//   Copied[i]   >= b+1  — shard i finished reading its neighbors for block b
//
// and the executor (serve/halo.hpp) walks exactly these steps, mapping each
// wait onto a threads/progress.hpp ProgressCell::wait_ge and each publish
// onto ProgressCell::publish — the same tile-to-tile sync cells CATS1 uses
// for split-tiling, now at shard boundaries. verify_shard_schedule checks
// the emitted protocol with no execution: both cross-shard dependence
// directions (flow: a halo refresh must wait for the producing neighbor's
// block; anti: a neighbor must not overwrite rows before this shard copied
// them), halo-width sufficiency, block parity, and deadlock freedom.

#include <cstdint>
#include <vector>

#include "plan/verify.hpp"

namespace cats::plan_ir {

/// Owned interval [lo, hi) of the split dimension (shard-ascending,
/// partitioning [0, extent)).
struct ShardDomain {
  std::int64_t lo = 0, hi = 0;

  std::int64_t rows() const { return hi - lo; }
};

/// The two per-shard progress counters of the halo protocol.
enum class ShardCell : std::uint8_t { Computed, Copied };

/// One ProgressGE wait: block until `cell` of `shard` reaches `bound`.
struct ShardWait {
  ShardCell cell = ShardCell::Computed;
  std::int32_t shard = 0;
  std::int64_t bound = 0;
};

enum class ShardStepKind : std::uint8_t {
  Compute,   ///< run `tb` timesteps of the block on the extended subgrid
  Exchange,  ///< refresh halo rows from the neighbors' owned rows
};

/// One step of a shard's program order. After the step completes, the
/// shard's own cell (Computed for Compute, Copied for Exchange) is published
/// as block + 1.
struct ShardStep {
  ShardStepKind kind = ShardStepKind::Compute;
  std::int32_t block = 0;
  int tb = 0;                    ///< Compute only: timesteps in this block
  std::vector<ShardWait> waits;  ///< satisfied before the step runs
};

struct ShardSchedule {
  std::int64_t extent = 0;  ///< split-dimension extent (ny in 2D, nz in 3D)
  int T = 0;
  int slope = 1;
  int halo = 0;    ///< overlap rows per interior side; >= slope * max block
  std::vector<ShardDomain> owned;
  std::vector<int> block_steps;  ///< per block; all but the last even
  std::vector<std::vector<ShardStep>> program;  ///< per shard, program order

  int shards() const { return static_cast<int>(owned.size()); }
  int blocks() const { return static_cast<int>(block_steps.size()); }
};

/// Largest shard count the halo protocol admits for this domain: every
/// shard must own at least 2*slope rows (the minimum even block's halo), and
/// at least one row each.
int max_feasible_shards(std::int64_t extent, int slope);

/// Emit the block schedule for `shards` subgrids of [0, extent) over T
/// timesteps. `max_block` caps the per-block timestep count (0 = default 8);
/// blocks are even (run()'s double buffer must land back on parity 0 before
/// the next block) except possibly the last, and the cap is lowered until
/// the halo fits the smallest shard. Shard counts beyond
/// max_feasible_shards are clamped; shards == 1 emits a single halo-free
/// compute step per the trivial protocol.
ShardSchedule emit_shard_schedule(std::int64_t extent, int shards, int T,
                                  int slope, int max_block = 0);

/// Execution-free verification of an emitted (or hand-altered) schedule:
/// structure (owned partitions the extent, block parity, halo sufficiency),
/// cross-shard dependence coverage in both directions via the recorded
/// waits, and deadlock freedom by simulating the wait/publish protocol.
/// Reuses the tile-plan Diag vocabulary: MalformedPlan, CoverageGap,
/// DepUncovered, StuckWait.
VerifyReport verify_shard_schedule(const ShardSchedule& s,
                                   const VerifyOptions& opt = {});

}  // namespace cats::plan_ir
