#include "plan/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/selector.hpp"

namespace cats::plan_ir {

const char* diag_kind_name(DiagKind k) {
  switch (k) {
    case DiagKind::MalformedPlan: return "MalformedPlan";
    case DiagKind::OutOfDomain: return "OutOfDomain";
    case DiagKind::TileOverlap: return "TileOverlap";
    case DiagKind::CoverageGap: return "CoverageGap";
    case DiagKind::DepUncovered: return "DepUncovered";
    case DiagKind::StuckWait: return "StuckWait";
    case DiagKind::SyncCycle: return "SyncCycle";
    case DiagKind::WavefrontOverflow: return "WavefrontOverflow";
    case DiagKind::TzExceedsEq1: return "TzExceedsEq1";
    case DiagKind::BzExceedsEq2: return "BzExceedsEq2";
  }
  return "?";
}

std::string Diag::to_string() const {
  char buf[512];
  const auto ll = [](std::int64_t v) { return static_cast<long long>(v); };
  switch (kind) {
    case DiagKind::DepUncovered:
      std::snprintf(buf, sizeof buf,
                    "tile %d point (t=%d, %lld,%lld,%lld) depends on tile %d "
                    "point (t=%d, %lld,%lld,%lld) with no happens-before "
                    "order",
                    tile_a, t, ll(x), ll(y), ll(z), tile_b, t - 1, ll(nx),
                    ll(ny), ll(nz));
      break;
    case DiagKind::TileOverlap:
      std::snprintf(buf, sizeof buf,
                    "tiles %d and %d both compute (t=%d, %lld,%lld,%lld)",
                    tile_a, tile_b, t, ll(x), ll(y), ll(z));
      break;
    case DiagKind::CoverageGap:
      std::snprintf(buf, sizeof buf,
                    "timestep %d computes %lld of %lld domain cells", t,
                    ll(bytes), ll(limit));
      break;
    case DiagKind::OutOfDomain:
      std::snprintf(buf, sizeof buf,
                    "tile %d slab at t=%d reaches (%lld,%lld,%lld) outside "
                    "the domain",
                    tile_a, t, ll(x), ll(y), ll(z));
      break;
    case DiagKind::WavefrontOverflow:
      std::snprintf(buf, sizeof buf,
                    "tile %d wavefront working set %lld B exceeds cache %lld "
                    "B%s",
                    tile_a, ll(bytes), ll(limit),
                    warning ? " (selector clamp floor; advisory)" : "");
      break;
    case DiagKind::TzExceedsEq1:
      std::snprintf(buf, sizeof buf, "plan TZ=%lld exceeds Eq. 1 bound %lld",
                    ll(bytes), ll(limit));
      break;
    case DiagKind::BzExceedsEq2:
      std::snprintf(buf, sizeof buf,
                    "plan BZ/BX=%lld exceeds diamond sizing bound %lld",
                    ll(bytes), ll(limit));
      break;
    case DiagKind::StuckWait:
      std::snprintf(buf, sizeof buf, "tile %d wait on tile %d can never be "
                    "satisfied", tile_a, tile_b);
      break;
    case DiagKind::SyncCycle:
      std::snprintf(buf, sizeof buf,
                    "sync graph cycle (e.g. through tiles %d and %d)", tile_a,
                    tile_b);
      break;
    case DiagKind::MalformedPlan:
      std::snprintf(buf, sizeof buf, "malformed plan");
      break;
  }
  std::string out = std::string(diag_kind_name(kind)) + ": " + buf;
  if (!detail.empty()) out += " [" + detail + "]";
  return out;
}

std::size_t VerifyReport::errors() const {
  std::size_t c = 0;
  for (const Diag& d : diags) c += d.warning ? 0u : 1u;
  return c;
}

std::size_t VerifyReport::warnings() const {
  return diags.size() - errors();
}

std::string VerifyReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%lld tiles, %lld slabs, %lld edges, %lld dep pairs -> %zu "
                "error(s), %zu warning(s)%s",
                static_cast<long long>(stats.tiles),
                static_cast<long long>(stats.slabs),
                static_cast<long long>(stats.edges),
                static_cast<long long>(stats.dep_pairs_checked), errors(),
                warnings(),
                suppressed > 0 ? " (further diagnostics suppressed)" : "");
  return buf;
}

namespace {

/// One expanded slab, tagged with its tile and intra-tile position.
struct SlabRec {
  std::int32_t tile = 0;
  std::int32_t seq = 0;  ///< slab index within the tile's traversal order
  Box box;
  std::int64_t wavefront = 0;
};

std::int64_t key_lo(const Box& b, int dims) {
  return dims == 1 ? b.xlo : dims == 2 ? b.ylo : b.zlo;
}

std::int64_t key_hi(const Box& b, int dims) {
  return dims == 1 ? b.xhi : dims == 2 ? b.yhi : b.zhi;
}

bool boxes_intersect(const Box& a, const Box& b) {
  return a.xlo <= b.xhi && b.xlo <= a.xhi && a.ylo <= b.yhi &&
         b.ylo <= a.yhi && a.zlo <= b.zhi && b.zlo <= a.zhi;
}

Box intersect_box(const Box& a, const Box& b) {
  return {std::max(a.xlo, b.xlo), std::min(a.xhi, b.xhi),
          std::max(a.ylo, b.ylo), std::min(a.yhi, b.yhi),
          std::max(a.zlo, b.zlo), std::min(a.zhi, b.zhi)};
}

/// Diagnostic collector with a soft cap: beyond max_diags, diags are counted
/// but dropped — except the first of each kind, which is always recorded so
/// ok() cannot be fooled by a flood of one kind masking another.
class DiagSink {
 public:
  DiagSink(VerifyReport& rep, const VerifyOptions& opt)
      : rep_(rep), opt_(opt) {}

  void emit(Diag d) {
    const std::uint32_t bit = 1u << static_cast<unsigned>(d.kind);
    if (rep_.diags.size() < opt_.max_diags || (seen_ & bit) == 0) {
      seen_ |= bit;
      rep_.diags.push_back(std::move(d));
    } else {
      ++rep_.suppressed;
    }
  }

 private:
  VerifyReport& rep_;
  const VerifyOptions& opt_;
  std::uint32_t seen_ = 0;
};

}  // namespace

VerifyReport verify_plan(const TilePlan& p, const VerifyOptions& opt) {
  VerifyReport rep;
  DiagSink sink(rep, opt);
  const auto n = static_cast<std::int32_t>(p.tiles.size());
  rep.stats.tiles = n;
  rep.stats.edges = static_cast<std::int64_t>(p.edges.size());

  // ---- Structural invariants. Range violations abort early: every later
  // pass indexes by owner/phase/tile id.
  auto malformed = [&](std::int32_t tile, std::string msg) {
    Diag d;
    d.kind = DiagKind::MalformedPlan;
    d.tile_a = tile;
    d.detail = std::move(msg);
    sink.emit(std::move(d));
  };
  bool ranges_ok = true;
  if (p.dims < 1 || p.dims > 3) {
    malformed(-1, "dims must be 1, 2 or 3");
    ranges_ok = false;
  }
  if (p.threads < 1) {
    malformed(-1, "threads < 1");
    ranges_ok = false;
  }
  if (p.nx < 1 || p.ny < 1 || p.nz < 1) {
    malformed(-1, "non-positive domain extent");
    ranges_ok = false;
  }
  if (ranges_ok) {
    for (std::int32_t i = 0; i < n; ++i) {
      const Tile& t = p.tiles[i];
      if (t.owner < 0 || t.owner >= p.threads) {
        malformed(i, "tile owner outside [0, threads)");
        ranges_ok = false;
      }
      if (t.phase < 0 || t.phase >= std::max(p.phases, 1)) {
        malformed(i, "tile phase outside [0, phases)");
        ranges_ok = false;
      }
    }
  }
  for (const SyncEdge& e : p.edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      malformed(-1, "sync edge endpoint outside the tile list");
      ranges_ok = false;
    }
  }
  if (!ranges_ok) return rep;

  // Per-owner program order; phases must be non-decreasing along it (a
  // worker never returns to an earlier barrier phase).
  const int threads = p.threads;
  std::vector<std::vector<std::int32_t>> order(
      static_cast<std::size_t>(threads));
  std::vector<std::int32_t> seq(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    auto& ord = order[static_cast<std::size_t>(p.tiles[i].owner)];
    if (!ord.empty() && p.tiles[ord.back()].phase > p.tiles[i].phase) {
      malformed(i, "owner's program order revisits an earlier phase");
    }
    ord.push_back(i);
    seq[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(ord.size());
  }

  // ---- Sync-edge resolution (progress check, part 1).
  // Done edges need a producer that publishes its flag. A ProgressGE wait on
  // thread R's cell is satisfied by the earliest tile in R's program order
  // that publishes a wavefront >= value and is visible to the waiter's
  // phase: with BarrierResetBarrier the cell is cleared between phases, so
  // only the waiter's own phase counts; otherwise earlier phases persist.
  std::vector<std::pair<std::int32_t, std::int32_t>> redges;
  redges.reserve(p.edges.size());
  for (const SyncEdge& e : p.edges) {
    if (e.kind == SyncEdge::Kind::Done) {
      if (!p.tiles[e.from].publishes_done) {
        Diag d;
        d.kind = DiagKind::StuckWait;
        d.tile_a = e.to;
        d.tile_b = e.from;
        d.detail = "Done wait on a tile that never publishes its done flag";
        sink.emit(std::move(d));
        continue;
      }
      redges.emplace_back(e.from, e.to);
      continue;
    }
    const std::int32_t powner = p.tiles[e.from].owner;
    const std::int32_t wphase = p.tiles[e.to].phase;
    std::int32_t resolved = -1;
    for (std::int32_t cand : order[static_cast<std::size_t>(powner)]) {
      const Tile& c = p.tiles[cand];
      const bool visible = p.phase_sync == PhaseSync::BarrierResetBarrier
                               ? c.phase == wphase
                               : c.phase <= wphase;
      if (visible && c.publishes_progress && c.u >= e.value) {
        resolved = cand;
        break;
      }
    }
    if (resolved < 0) {
      Diag d;
      d.kind = DiagKind::StuckWait;
      d.tile_a = e.to;
      d.tile_b = e.from;
      d.bytes = e.value;
      d.detail = "no publish by the producer thread reaches the waited "
                 "progress bound in the waiter's phase";
      sink.emit(std::move(d));
      continue;
    }
    redges.emplace_back(resolved, e.to);
  }

  // ---- Happens-before graph: per-owner program order + resolved sync edges
  // + virtual barrier nodes between phases. Kahn toposort doubles as the
  // deadlock check (progress check, part 2) and drives the vector-clock
  // computation used for symbolic dependence coverage.
  const std::int32_t nbar =
      (p.phase_sync != PhaseSync::None && p.phases > 1)
          ? static_cast<std::int32_t>(p.phases - 1)
          : 0;
  const std::int32_t total = n + nbar;
  std::vector<std::vector<std::int32_t>> adj(
      static_cast<std::size_t>(total));
  std::vector<std::int32_t> indeg(static_cast<std::size_t>(total), 0);
  auto add_edge = [&](std::int32_t a, std::int32_t b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    ++indeg[static_cast<std::size_t>(b)];
  };
  for (const auto& ord : order) {
    for (std::size_t i = 1; i < ord.size(); ++i) {
      add_edge(ord[i - 1], ord[i]);
    }
  }
  for (const auto& [from, to] : redges) add_edge(from, to);
  if (nbar > 0) {
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t ph = p.tiles[i].phase;
      if (ph < p.phases - 1) add_edge(i, n + ph);
      if (ph > 0) add_edge(n + ph - 1, i);
    }
    for (std::int32_t b = 1; b < nbar; ++b) add_edge(n + b - 1, n + b);
  }

  // Vector clocks, flat [node][owner]: vc[a][o] is the largest per-owner
  // sequence number of an o-owned tile that happens-before a (inclusive of a
  // itself). hb(b, a) is then the O(1) test vc[a][owner(b)] >= seq(b).
  std::vector<std::int32_t> vc(
      static_cast<std::size_t>(total) * static_cast<std::size_t>(threads), 0);
  std::vector<std::int32_t> ready;
  for (std::int32_t i = 0; i < total; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  std::int64_t processed = 0;
  while (!ready.empty()) {
    const std::int32_t a = ready.back();
    ready.pop_back();
    ++processed;
    auto* va = &vc[static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(threads)];
    if (a < n) {
      auto& own = va[p.tiles[a].owner];
      own = std::max(own, seq[static_cast<std::size_t>(a)]);
    }
    for (const std::int32_t b : adj[static_cast<std::size_t>(a)]) {
      auto* vb = &vc[static_cast<std::size_t>(b) *
                     static_cast<std::size_t>(threads)];
      for (int o = 0; o < threads; ++o) vb[o] = std::max(vb[o], va[o]);
      if (--indeg[static_cast<std::size_t>(b)] == 0) ready.push_back(b);
    }
  }
  const bool acyclic = processed == total;
  if (!acyclic) {
    Diag d;
    d.kind = DiagKind::SyncCycle;
    for (std::int32_t a = 0; a < total && d.tile_a < 0; ++a) {
      if (indeg[static_cast<std::size_t>(a)] == 0 &&
          std::find(ready.begin(), ready.end(), a) == ready.end()) {
        continue;  // processed
      }
      if (indeg[static_cast<std::size_t>(a)] == 0) continue;
      for (const std::int32_t b : adj[static_cast<std::size_t>(a)]) {
        if (indeg[static_cast<std::size_t>(b)] > 0) {
          d.tile_a = a < n ? a : -1;
          d.tile_b = b < n ? b : -1;
          break;
        }
      }
    }
    std::int64_t stuck = 0;
    for (std::int32_t i = 0; i < n; ++i) {
      if (indeg[static_cast<std::size_t>(i)] > 0) ++stuck;
    }
    d.detail = std::to_string(stuck) + " tile(s) unreachable";
    sink.emit(std::move(d));
  }
  auto hb = [&](std::int32_t b, std::int32_t a) {
    return vc[static_cast<std::size_t>(a) * static_cast<std::size_t>(threads) +
              static_cast<std::size_t>(p.tiles[b].owner)] >=
           seq[static_cast<std::size_t>(b)];
  };

  // ---- Slab materialization through the same enumeration the executor
  // walks, plus the residency accumulation: slabs of one tile sharing a
  // wavefront id form the working set the scheme keeps cache-resident.
  const Box dom = detail::full_domain(p);
  std::vector<std::vector<SlabRec>> bucket(
      static_cast<std::size_t>(std::max(p.T, 0)) + 1);
  std::int64_t max_ws_cells = 0;
  std::int32_t max_ws_tile = -1;
  std::int64_t max_ws_wavefront = 0;
  int max_ws_t = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    std::int32_t sseq = 0;
    std::int64_t cur_wf = 0, cur_cells = 0;
    bool have_wf = false;
    int cur_t = 0;
    auto flush_wf = [&]() {
      if (have_wf && cur_cells > max_ws_cells) {
        max_ws_cells = cur_cells;
        max_ws_tile = i;
        max_ws_wavefront = cur_wf;
        max_ws_t = cur_t;
      }
      cur_cells = 0;
    };
    for_each_slab(p, p.tiles[i], [&](const Slab& sl) {
      if (sl.t < 1 || sl.t > p.T) {
        Diag d;
        d.kind = DiagKind::MalformedPlan;
        d.tile_a = i;
        d.t = sl.t;
        d.detail = "slab timestep outside [1, T]";
        sink.emit(std::move(d));
        return;
      }
      if (!boxes_intersect(sl.box, dom) || sl.box.xlo < dom.xlo ||
          sl.box.xhi > dom.xhi || sl.box.ylo < dom.ylo ||
          sl.box.yhi > dom.yhi || sl.box.zlo < dom.zlo ||
          sl.box.zhi > dom.zhi) {
        Diag d;
        d.kind = DiagKind::OutOfDomain;
        d.tile_a = i;
        d.t = sl.t;
        d.x = sl.box.xlo < dom.xlo ? sl.box.xlo : sl.box.xhi;
        d.y = sl.box.ylo < dom.ylo ? sl.box.ylo : sl.box.yhi;
        d.z = sl.box.zlo < dom.zlo ? sl.box.zlo : sl.box.zhi;
        sink.emit(std::move(d));
      }
      if (!have_wf || sl.wavefront != cur_wf) {
        flush_wf();
        cur_wf = sl.wavefront;
        have_wf = true;
        cur_t = sl.t;
      }
      cur_cells += sl.box.cells();
      bucket[static_cast<std::size_t>(sl.t)].push_back(
          SlabRec{i, sseq++, sl.box, sl.wavefront});
    });
    flush_wf();
    rep.stats.slabs += sseq;
  }
  if (p.cs_eff > 0.0) {
    rep.stats.max_wavefront_bytes = static_cast<std::int64_t>(
        std::ceil(p.cs_eff * static_cast<double>(max_ws_cells) *
                  p.elem_bytes));
  }

  // ---- Per-timestep geometry: the slabs of each t must partition the
  // domain. Sorted sweep along the traversal dimension keeps the pairwise
  // overlap test near-linear for wavefront-style plans.
  const int dims = p.dims;
  for (int t = 1; t <= p.T; ++t) {
    auto& B = bucket[static_cast<std::size_t>(t)];
    std::sort(B.begin(), B.end(), [&](const SlabRec& a, const SlabRec& b) {
      return key_lo(a.box, dims) < key_lo(b.box, dims);
    });
    bool overlapped = false;
    std::int64_t cells = 0;
    for (const SlabRec& r : B) cells += r.box.cells();
    for (std::size_t i = 0; i < B.size(); ++i) {
      const std::int64_t hi = key_hi(B[i].box, dims);
      for (std::size_t j = i + 1;
           j < B.size() && key_lo(B[j].box, dims) <= hi; ++j) {
        if (!boxes_intersect(B[i].box, B[j].box)) continue;
        overlapped = true;
        const Box c = intersect_box(B[i].box, B[j].box);
        Diag d;
        d.kind = DiagKind::TileOverlap;
        d.tile_a = B[i].tile;
        d.tile_b = B[j].tile;
        d.t = t;
        d.x = c.xlo;
        d.y = c.ylo;
        d.z = c.zlo;
        sink.emit(std::move(d));
      }
    }
    if (!overlapped && cells != p.domain_cells()) {
      Diag d;
      d.kind = DiagKind::CoverageGap;
      d.t = t;
      d.bytes = cells;
      d.limit = p.domain_cells();
      sink.emit(std::move(d));
    }
  }

  // ---- Dependence coverage. For every slab at t, every slab at t-1 within
  // the slope-s halo must be ordered before it: intra-tile slab order for
  // the same tile, happens-before (vector clocks) across tiles. The rule is
  // symmetric in +-s, so it covers the flow reads and the double-buffer WAR
  // hazard at once. Verdicts and diagnostics are memoized per ordered tile
  // pair — coverage is a tile-level property, so one witness suffices.
  if (acyclic) {
    const std::int64_t s = p.slope;
    // Memoized per ordered tile pair. Large plans check hundreds of millions
    // of slab pairs against a few thousand tile pairs, so the memo is the
    // hot path: a dense n*n byte matrix when affordable, hashing otherwise.
    // Verdict encoding: 0 = unchecked, 1 = ordered, 2 = uncovered.
    const bool dense = n <= 8192;
    std::vector<std::uint8_t> mat(
        dense ? static_cast<std::size_t>(n) * static_cast<std::size_t>(n)
              : 0);
    std::unordered_map<std::uint64_t, std::uint8_t> sparse;
    std::unordered_set<std::uint64_t> diagnosed;
    auto pair_key = [](std::int32_t b, std::int32_t a) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(b))
              << 32) |
             static_cast<std::uint32_t>(a);
    };
    auto verdict = [&](std::int32_t b, std::int32_t a) -> std::uint8_t& {
      if (dense) {
        return mat[static_cast<std::size_t>(b) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(a)];
      }
      return sparse[pair_key(b, a)];
    };
    for (int t = 2; t <= p.T; ++t) {
      const auto& A = bucket[static_cast<std::size_t>(t)];
      const auto& B = bucket[static_cast<std::size_t>(t - 1)];
      if (A.empty() || B.empty()) continue;
      std::int64_t span = 0;
      for (const SlabRec& r : B) {
        span = std::max(span, key_hi(r.box, dims) - key_lo(r.box, dims));
      }
      for (const SlabRec& a : A) {
        Box e = a.box;
        e.xlo = std::max(e.xlo - s, dom.xlo);
        e.xhi = std::min(e.xhi + s, dom.xhi);
        if (dims >= 2) {
          e.ylo = std::max(e.ylo - s, dom.ylo);
          e.yhi = std::min(e.yhi + s, dom.yhi);
        }
        if (dims >= 3) {
          e.zlo = std::max(e.zlo - s, dom.zlo);
          e.zhi = std::min(e.zhi + s, dom.zhi);
        }
        const std::int64_t lo = key_lo(e, dims) - span;
        auto it = std::lower_bound(
            B.begin(), B.end(), lo, [&](const SlabRec& r, std::int64_t v) {
              return key_lo(r.box, dims) < v;
            });
        for (; it != B.end() && key_lo(it->box, dims) <= key_hi(e, dims);
             ++it) {
          const SlabRec& b = *it;
          if (!boxes_intersect(e, b.box)) continue;
          ++rep.stats.dep_pairs_checked;
          bool ordered;
          if (b.tile == a.tile) {
            ordered = b.seq < a.seq;
          } else {
            std::uint8_t& v = verdict(b.tile, a.tile);
            if (v == 0) v = hb(b.tile, a.tile) ? 1 : 2;
            ordered = v == 1;
          }
          if (ordered) continue;
          if (!diagnosed.insert(pair_key(b.tile, a.tile)).second) continue;
          const Box w = intersect_box(e, b.box);
          Diag d;
          d.kind = DiagKind::DepUncovered;
          d.tile_a = a.tile;
          d.tile_b = b.tile;
          d.t = t;
          d.nx = w.xlo;
          d.ny = w.ylo;
          d.nz = w.zlo;
          d.x = std::clamp(w.xlo, a.box.xlo, a.box.xhi);
          d.y = std::clamp(w.ylo, a.box.ylo, a.box.yhi);
          d.z = std::clamp(w.zlo, a.box.zlo, a.box.zhi);
          sink.emit(std::move(d));
        }
      }
    }
  }

  // ---- Cache-residency certification: the largest wavefront working set
  // (CS' bytes per cell) must fit in Z, and the emitted parameters must not
  // exceed Eq. 1 / Eq. 2 recomputed from the plan's own cache model. Eq. 2
  // is continuous: a lattice diamond's area exceeds bz^2/(2s) by at most bz
  // cells (the width profile is concave, so the integer sum is bounded by
  // integral + max), so that many extra rows are admitted before a diamond
  // wavefront counts as overflowing. Eq. 1 is exact — no allowance. A plan
  // whose parameter was clamp-floored by the selector is expected to exceed
  // Z — warning, not error.
  if (p.certify_residency && p.cache_bytes > 0 && p.cs_eff > 0.0) {
    // MWD shares one diamond across a g-member group: the budget its working
    // set must fit — and the Z Eq. 2 is recomputed against below — is the
    // pooled Z*g, not one member's private share.
    const std::size_t z_eff =
        p.scheme == Scheme::Mwd
            ? p.cache_bytes *
                  static_cast<std::size_t>(std::max(1, p.mwd_group))
            : p.cache_bytes;
    std::int64_t allow_cells = 0;
    if (p.scheme == Scheme::Cats2 || p.scheme == Scheme::Mwd) {
      allow_cells = p.bz * (p.dims == 2 ? 1 : p.nx);
    } else if (p.scheme == Scheme::Cats3) {
      allow_cells = p.bz * p.bx;
    }
    const auto allowed =
        static_cast<std::int64_t>(z_eff) +
        static_cast<std::int64_t>(
            std::ceil(p.cs_eff * static_cast<double>(allow_cells) *
                      p.elem_bytes));
    const std::int64_t ws = rep.stats.max_wavefront_bytes;
    if (ws > allowed) {
      Diag d;
      d.kind = DiagKind::WavefrontOverflow;
      d.warning = p.clamped;
      d.tile_a = max_ws_tile;
      d.t = max_ws_t;
      d.bytes = ws;
      d.limit = allowed;
      d.detail = "wavefront " + std::to_string(max_ws_wavefront) + ", " +
                 std::to_string(max_ws_cells) + " cells; Z=" +
                 std::to_string(z_eff) +
                 (p.scheme == Scheme::Mwd && p.mwd_group > 1
                      ? " (pooled x" + std::to_string(p.mwd_group) + ")"
                      : "") +
                 (p.cache_tenants > 1
                      ? " (1/" + std::to_string(p.cache_tenants) +
                            " tenant share)"
                      : "");
      sink.emit(std::move(d));
    }
    DomainShape dsh;
    if (p.dims == 1) {
      dsh = {p.nx, p.nx, 0, 1};
    } else if (p.dims == 2) {
      dsh = {p.nx * p.ny, p.ny, p.nx, 2};
    } else {
      dsh = {p.nx * p.ny * p.nz, p.nz, p.ny, 3};
    }
    const KernelCosts costs{p.slope, p.cs_eff, p.elem_bytes};
    if (p.scheme == Scheme::Cats1) {
      const int lim = std::max(
          1, std::min(compute_tz(p.cache_bytes, dsh, costs),
                      std::max(p.T, 1)));
      if (p.tz > lim) {
        Diag d;
        d.kind = DiagKind::TzExceedsEq1;
        d.bytes = p.tz;
        d.limit = lim;
        sink.emit(std::move(d));
      }
    } else if (p.scheme == Scheme::Cats2 || p.scheme == Scheme::Cats3 ||
               p.scheme == Scheme::Mwd) {
      const std::int64_t lim = p.scheme == Scheme::Cats3
                                   ? compute_bz3(p.cache_bytes, costs)
                                   : compute_bz(z_eff, dsh, costs);
      const std::int64_t got = std::max(p.bz, p.scheme == Scheme::Cats3
                                                  ? p.bx
                                                  : std::int64_t{0});
      if (got > lim) {
        Diag d;
        d.kind = DiagKind::BzExceedsEq2;
        d.bytes = got;
        d.limit = lim;
        sink.emit(std::move(d));
      }
    }
  }

  return rep;
}

}  // namespace cats::plan_ir
