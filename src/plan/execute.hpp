#pragma once
// Plan executor: runs an emitted TilePlan with real threads.
//
// The walk is completely generic — per thread, tiles in plan order grouped
// by phase; before each tile, wait out its incoming sync edges (all waits of
// one tile aggregate into at most one RunStats wait event, as the schemes
// always counted); expand the tile through the shared for_each_slab and hand
// each slab to the caller; publish the tile's ProgressCell value / DoneFlag;
// run the plan's global phase synchronization after every phase. Because the
// slab enumeration and the sync edges are the plan's, executing a plan is
// exactly what the verifier reasons about (plan/verify.hpp).
//
// Each worker runs a private *copy* of the slab callback, so stateful
// walkers (the wave engine's fusion/NT state, src/wave/engine.hpp) need no
// sharing discipline; callbacks exposing end_tile() are notified after each
// tile's slabs, before the tile publishes — the flush/fence point.
//
// Intra-tile teams (wave engine): when wave_team_width() resolves m > 1,
// every plan-level owner ("team") is backed by m workers. Members split each
// slab's y-rows and meet at a per-team barrier on every slab entry, so
// member k never starts slab j+1 before all members finished slab j — the
// same happens-before the single-owner slab order gave, which is why the
// plan (and its verifier) stay team-width-agnostic. Only the team lead
// (member 0) performs the tile's edge waits and publishes; the slab-entry
// barrier of the first slab propagates the acquired edges to the members,
// and one barrier after the tile's last slab (after end_tile, so members'
// NT stores are fenced) orders every member's work before the publish.
//
// Synchronization objects mirror the schemes: one ProgressCell per team
// (CATS1 split-tiling), one DoneFlag per tile (CATS2/3 diamonds), one
// SpinBarrier over all workers for phase boundaries, one TeamBarrier per
// team. All are created only when the plan uses them.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "check/oracle.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "plan/plan.hpp"
#include "threads/barrier.hpp"
#include "threads/progress.hpp"
#include "threads/team_barrier.hpp"
#include "threads/thread_pool.hpp"
#include "wave/mwd.hpp"

namespace cats::plan_ir {

namespace detail {

/// Incoming-edge index in CSR form: edges_in(t) lists the SyncEdge indices
/// targeting tile t, in plan edge order (the order the schemes waited in).
struct EdgeIndex {
  std::vector<std::int32_t> offsets;
  std::vector<std::int32_t> edge_ids;

  explicit EdgeIndex(const TilePlan& p) {
    offsets.assign(p.tiles.size() + 1, 0);
    for (const SyncEdge& e : p.edges) ++offsets[static_cast<std::size_t>(e.to) + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    edge_ids.resize(p.edges.size());
    std::vector<std::int32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < p.edges.size(); ++i) {
      edge_ids[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(p.edges[i].to)]++)] =
          static_cast<std::int32_t>(i);
    }
  }
};

/// Walkers with per-tile state (wave engine) flush it here; plain lambdas
/// need nothing.
template <class F>
inline void finish_tile(F& f) {
  if constexpr (requires { f.end_tile(); }) f.end_tile();
}

/// Member's share of a slab: rows [ylo, yhi] block-partitioned over the m
/// team members (first `rem` members get one extra row). Returns false for
/// an empty share.
inline bool member_slab(const Slab& sl, int member, int m, Slab& out) {
  const std::int64_t rows = sl.box.yhi - sl.box.ylo + 1;
  const std::int64_t per = rows / m;
  const std::int64_t rem = rows % m;
  const std::int64_t lo =
      sl.box.ylo + member * per + std::min<std::int64_t>(member, rem);
  const std::int64_t cnt = per + (member < rem ? 1 : 0);
  if (cnt <= 0) return false;
  out = sl;
  out.box.ylo = lo;
  out.box.yhi = lo + cnt - 1;
  return true;
}

}  // namespace detail

/// Execute `plan`, invoking a per-worker copy of slab_fn(const Slab&) for
/// every slab, on plan.threads teams of wave_team_width() workers each.
/// slab_fn runs on a worker thread with the dependence oracle (opt.oracle)
/// already bound, so kernels report rows the usual way via check::note_row.
template <class SlabFn>
void execute_plan(const TilePlan& plan, const RunOptions& opt,
                  SlabFn&& slab_fn) {
  const int P = plan.threads;
  const int m = wave_team_width(plan.dims, plan.scheme, opt);
  const int W = P * m;
  RunStats* stats = opt.stats;

  // Per-owner tile order: the plan's tile order restricted to one owner IS
  // that team's program order.
  std::vector<std::vector<std::int32_t>> order(static_cast<std::size_t>(P));
  bool any_done = false, any_progress = false;
  for (std::size_t i = 0; i < plan.tiles.size(); ++i) {
    order[static_cast<std::size_t>(plan.tiles[i].owner)].push_back(
        static_cast<std::int32_t>(i));
    any_done |= plan.tiles[i].publishes_done;
    any_progress |= plan.tiles[i].publishes_progress;
  }
  const detail::EdgeIndex in(plan);

  ThreadPool pool(W, opt.affinity, nullptr, opt.pin_cpus);
  SpinBarrier bar(W);
  std::deque<TeamBarrier> team_bar;
  for (int i = 0; m > 1 && i < P; ++i) team_bar.emplace_back(m);
  std::vector<ProgressCell> progress(any_progress ? static_cast<std::size_t>(P)
                                                  : 0);
  std::vector<DoneFlag> done(any_done ? plan.tiles.size() : 0);

  pool.run([&](int wid) {
    const int tid = wid / m;     // team == plan-level owner
    const int member = wid % m;  // 0 == team lead
    const check::ScopedOracleThread oracle_bind(opt.oracle, wid);
    auto fn = slab_fn;  // worker-private walker state (fusion buffers, ...)
    std::int64_t local_spins = 0, local_events = 0, local_ns = 0,
                 local_tiles = 0, local_barriers = 0;
    // TeamBarrier idle-spin accounting (RunStats team_wait_* breakdown,
    // also folded into the wait_* aggregates at the flush below).
    std::int64_t tw_spins = 0, tw_events = 0, tw_ns = 0;
    auto team_cross = [&](TeamBarrier& tb) {
      const WaitResult w = tb.arrive_and_wait();
      ++local_barriers;
      if (w.spins > 0) {
        ++tw_events;
        tw_spins += w.spins;
        tw_ns += w.ns;
      }
    };
    const std::vector<std::int32_t>& mine =
        order[static_cast<std::size_t>(tid)];
    std::size_t next = 0;
    for (int phase = 0; phase < plan.phases; ++phase) {
      while (next < mine.size() &&
             plan.tiles[static_cast<std::size_t>(mine[next])].phase == phase) {
        const std::int32_t idx = mine[next];
        const Tile& tile = plan.tiles[static_cast<std::size_t>(idx)];
        if (member == 0) {
          WaitResult w;
          for (std::int32_t ei = in.offsets[static_cast<std::size_t>(idx)];
               ei < in.offsets[static_cast<std::size_t>(idx) + 1]; ++ei) {
            const SyncEdge& e =
                plan.edges[static_cast<std::size_t>(in.edge_ids[static_cast<std::size_t>(ei)])];
            WaitResult a;
            if (e.kind == SyncEdge::Kind::Done) {
              a = done[static_cast<std::size_t>(e.from)].wait();
            } else {
              const std::int32_t from_owner =
                  plan.tiles[static_cast<std::size_t>(e.from)].owner;
              a = progress[static_cast<std::size_t>(from_owner)].wait_ge(e.value);
            }
            w.spins += a.spins;
            w.ns += a.ns;
          }
          if (w.spins > 0) {
            ++local_events;
            local_spins += w.spins;
            local_ns += w.ns;
          }
        }
        if (m == 1) {
          for_each_slab(plan, tile, fn);
          detail::finish_tile(fn);
        } else if (plan.scheme == Scheme::Mwd) {
          // MWD group: members pipeline the tube's wavefronts in contiguous
          // time bands behind per-window barriers (schedule + ordering proof
          // in wave/mwd.hpp). The walker flushes inside every window and the
          // walk ends with a barrier, so the members' work — NT stores
          // fenced — is ordered before the lead's publish below; the first
          // window's barrier releases the lead's acquired edge waits.
          TeamBarrier& tb = team_bar[static_cast<std::size_t>(tid)];
          wave::mwd_walk_tile(plan, tile, member, m,
                              [&] { team_cross(tb); }, fn);
        } else {
          // All members run the identical slab enumeration, so their
          // barrier counts always match (empty shares still arrive). The
          // first slab's barrier releases the lead's acquired edge waits to
          // the members.
          TeamBarrier& tb = team_bar[static_cast<std::size_t>(tid)];
          for_each_slab(plan, tile, [&](const Slab& sl) {
            team_cross(tb);
            Slab part;
            if (detail::member_slab(sl, member, m, part)) fn(part);
          });
          detail::finish_tile(fn);  // members fence own NT stores first
          team_cross(tb);           // every member done before the publish
        }
        if (member == 0) {
          if (tile.publishes_progress) {
            progress[static_cast<std::size_t>(tid)].publish(tile.u);
          }
          if (tile.publishes_done) done[static_cast<std::size_t>(idx)].set();
          if (tile.first_in_group) ++local_tiles;
        }
        ++next;
      }
      switch (plan.phase_sync) {
        case PhaseSync::None:
          break;
        case PhaseSync::Barrier:
          bar.arrive_and_wait();
          ++local_barriers;
          break;
        case PhaseSync::BarrierResetBarrier:
          // Everyone finishes, progress counters reset, then the next phase
          // starts (two barriers so no thread can observe a stale counter
          // from the previous phase).
          bar.arrive_and_wait();
          if (!progress.empty() && member == 0) {
            progress[static_cast<std::size_t>(tid)].reset();
          }
          bar.arrive_and_wait();
          local_barriers += 2;
          break;
      }
    }
    if (stats) {
      // Team-barrier stalls count in BOTH the wait_* aggregates and the
      // team_wait_* breakdown (core/stats.hpp).
      const std::int64_t ev = local_events + tw_events;
      const std::int64_t sp = local_spins + tw_spins;
      const std::int64_t ns = local_ns + tw_ns;
      // order: relaxed — independent counters, aggregated once per worker.
      stats->wait_events.fetch_add(ev, std::memory_order_relaxed);
      stats->wait_spins.fetch_add(sp, std::memory_order_relaxed);
      stats->wait_ns.fetch_add(ns, std::memory_order_relaxed);
      stats->tiles_processed.fetch_add(local_tiles, std::memory_order_relaxed);
      stats->barriers.fetch_add(local_barriers, std::memory_order_relaxed);
      stats->team_wait_events.fetch_add(tw_events, std::memory_order_relaxed);
      stats->team_wait_spins.fetch_add(tw_spins, std::memory_order_relaxed);
      stats->team_wait_ns.fetch_add(tw_ns, std::memory_order_relaxed);
    }
  });
}

}  // namespace cats::plan_ir
