#pragma once
// Static schedule verifier: checks an emitted TilePlan with no execution.
//
// Three certificate families (see DESIGN.md §11):
//
//  (a) Dependence coverage — every slope-s space-time dependence between
//      slabs at consecutive timesteps must be ordered: by the intra-tile
//      slab order, by the owner thread's program order, or by a recorded
//      sync edge / barrier phase. Happens-before is computed symbolically
//      over the tile DAG with per-owner vector clocks (O(tiles * threads)),
//      never per point. The rule is symmetric in the double-buffered field:
//      "every slab touching (x +- s, t-1) happens-before the slab computing
//      (x, t)" covers both the flow dependence (reads of t-1) and the WAR
//      hazard (the write at t overwrites the t-2 buffer that t-1 consumers
//      read).
//
//  (b) Cache-residency certification — the largest wavefront working set in
//      the plan (cells per wavefront * CS' * element bytes) must fit in Z,
//      and the emitted TZ/BZ must not exceed Eq. 1 / Eq. 2 recomputed from
//      the plan's own cache model. Eq. 2 being a continuous bound, diamond
//      schemes are granted the lattice-discretization slack of bz extra
//      cross-section cells (see verify.cpp). Plans whose parameters were
//      clamp-floored by the selector (TZ < 1, raw BZ < 2s) report warnings,
//      not errors.
//
//  (c) Progress — every sync edge is resolvable (a Done producer publishes,
//      a ProgressGE bound is eventually published by the producer thread in
//      the same phase) and the combined sync graph (program order + edges +
//      barrier phases) is acyclic, so every tile is reached.
//
// Additionally the slab geometry itself is audited: per timestep the slabs
// must partition the domain (no overlap, no gap, nothing outside).

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan.hpp"

namespace cats::plan_ir {

enum class DiagKind : std::uint8_t {
  MalformedPlan,    ///< structural invariant broken (owner/phase bounds, ...)
  OutOfDomain,      ///< a slab reaches outside [0,nx) x [0,ny) x [0,nz)
  TileOverlap,      ///< two slabs at one timestep share a point
  CoverageGap,      ///< a timestep's slabs do not cover the whole domain
  DepUncovered,     ///< a slope-s dependence with no happens-before order
  StuckWait,        ///< a sync edge no publish can ever satisfy (deadlock)
  SyncCycle,        ///< the sync graph has a cycle (deadlock)
  WavefrontOverflow,///< a wavefront working set exceeds Z
  TzExceedsEq1,     ///< plan TZ above Eq. 1 for the plan's cache model
  BzExceedsEq2,     ///< plan BZ/BX above Eq. 2 / the CATS3 sizing
};

const char* diag_kind_name(DiagKind k);

/// Non-temporal-store eligibility of a plan (wave engine): trailing-slab
/// output may bypass the cache only when the plan's residency certificate is
/// real — a wavefront scheme whose parameters came from Eq. 1 / Eq. 2
/// (certify_residency) and were not clamp-floored past the cache budget
/// (clamped), so the trailing wavefront's output provably leaves cache
/// before its next reader anyway and streaming it costs no hit the schedule
/// was counting on. Naive/PluTo plans revisit output within cache distance
/// and are never eligible.
inline bool nt_store_eligible(const TilePlan& p) {
  return p.certify_residency && !p.clamped &&
         (p.scheme == Scheme::Cats1 || p.scheme == Scheme::Cats2 ||
          p.scheme == Scheme::Cats3 || p.scheme == Scheme::Mwd);
}

struct Diag {
  DiagKind kind{};
  bool warning = false;  ///< true = advisory (clamped plans), false = error
  std::int32_t tile_a = -1;  ///< consumer / first tile involved
  std::int32_t tile_b = -1;  ///< producer / second tile involved
  int t = 0;                 ///< timestep of the witness (consumer side)
  std::int64_t x = 0, y = 0, z = 0;     ///< witness point (consumer/overlap)
  std::int64_t nx = 0, ny = 0, nz = 0;  ///< producer-side witness point
  std::int64_t bytes = 0;  ///< residency: working set; coverage: cells found
  std::int64_t limit = 0;  ///< residency: Z; coverage: cells expected
  std::string detail;      ///< human-readable specifics
  std::string to_string() const;
};

struct VerifyStats {
  std::int64_t tiles = 0;
  std::int64_t edges = 0;
  std::int64_t slabs = 0;
  std::int64_t dep_pairs_checked = 0;  ///< slab pairs tested for ordering
  std::int64_t max_wavefront_bytes = 0;
};

struct VerifyReport {
  std::vector<Diag> diags;  ///< errors first is NOT guaranteed; check kind
  VerifyStats stats;
  std::int64_t suppressed = 0;  ///< diags dropped beyond max_diags

  std::size_t errors() const;
  std::size_t warnings() const;
  bool ok() const { return errors() == 0; }
  std::string summary() const;
};

struct VerifyOptions {
  std::size_t max_diags = 64;
};

VerifyReport verify_plan(const TilePlan& plan, const VerifyOptions& opt = {});

}  // namespace cats::plan_ir
