#include "plan/emit.hpp"

#include <algorithm>
#include <vector>

#include "baseline/pluto_params.hpp"
#include "check/check.hpp"

namespace cats::plan_ir {

namespace {

/// Traversal-dimension extent: the dimension wavefronts sweep along.
std::int64_t traversal_extent(int dims, std::int64_t nx, std::int64_t ny,
                              std::int64_t nz) {
  return dims == 1 ? nx : dims == 2 ? ny : nz;
}

TilePlan plan_shell(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, Scheme scheme) {
  TilePlan p;
  p.dims = dims;
  p.nx = nx;
  p.ny = dims >= 2 ? ny : 1;
  p.nz = dims >= 3 ? nz : 1;
  p.T = T;
  p.slope = slope;
  p.scheme = scheme;
  return p;
}

}  // namespace

TilePlan emit_naive(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, int threads) {
  TilePlan p = plan_shell(dims, nx, ny, nz, T, slope, Scheme::Naive);
  const std::int64_t outer = traversal_extent(dims, nx, ny, nz);
  const int P = static_cast<int>(
      std::clamp<std::int64_t>(threads, 1, std::max<std::int64_t>(outer, 1)));
  p.threads = P;
  p.phases = std::max(T, 0);
  p.phase_sync = PhaseSync::Barrier;
  for (int t = 1; t <= T; ++t) {
    for (int tid = 0; tid < P; ++tid) {
      const std::int64_t b0 = outer * tid / P;
      const std::int64_t b1 = outer * (tid + 1) / P;
      if (b1 <= b0) continue;
      Tile tile;
      tile.kind = TileKind::SkewedBlock;
      tile.owner = tid;
      tile.phase = t - 1;
      tile.t0 = tile.t1 = t;
      tile.base = detail::full_domain(p);
      if (dims == 1) {
        tile.base.xlo = b0;
        tile.base.xhi = b1 - 1;
      } else if (dims == 2) {
        tile.base.ylo = b0;
        tile.base.yhi = b1 - 1;
      } else {
        tile.base.zlo = b0;
        tile.base.zhi = b1 - 1;
      }
      p.tiles.push_back(tile);
    }
  }
  return p;
}

TilePlan emit_cats1(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, int tz, int threads) {
  TilePlan p = plan_shell(dims, nx, ny, nz, T, slope, Scheme::Cats1);
  const std::int64_t extent = traversal_extent(dims, nx, ny, nz);
  const int tz_cap = std::max(1, std::min(tz, T));
  // Tiles narrower than 2s would let dependencies skip over a tile; clamp
  // the thread count exactly as the sweep always has.
  const std::int64_t span = extent + 2ll * slope * (tz_cap - 1);
  const int P = static_cast<int>(std::clamp<std::int64_t>(
      std::min<std::int64_t>(threads, span / std::max(1, 2 * slope)), 1,
      threads));
  p.threads = P;
  p.tz = tz_cap;
  p.phase_sync = PhaseSync::BarrierResetBarrier;

  std::int32_t next_group = 0;
  std::vector<Range> ur(static_cast<std::size_t>(P));
  std::vector<std::int32_t> base(static_cast<std::size_t>(P));
  int phase = 0;
  for (int t0 = 1; t0 <= T; t0 += tz_cap, ++phase) {
    const int tz_c = std::min(tz_cap, T - t0 + 1);
    const Cats1Chunk chunk{slope, tz_c, extent, P};
    for (int tid = 0; tid < P; ++tid) {
      ur[static_cast<std::size_t>(tid)] = chunk.tile_u_range(tid);
      base[static_cast<std::size_t>(tid)] =
          static_cast<std::int32_t>(p.tiles.size());
      const Range r = ur[static_cast<std::size_t>(tid)];
      const std::int32_t group = r.empty() ? -1 : next_group++;
      for (std::int64_t u = r.lo; u <= r.hi; ++u) {
        Tile tile;
        tile.kind = TileKind::WavefrontColumn;
        tile.owner = tid;
        tile.phase = phase;
        tile.group = group;
        tile.first_in_group = u == r.lo;
        tile.publishes_progress = true;
        tile.front_hints = true;
        tile.t0 = t0;
        tile.t1 = t0 + tz_c - 1;
        tile.u = u;
        const Range taus = chunk.tau_range(tid, u);
        tile.tau_lo = taus.lo;
        tile.tau_hi = taus.hi;
        p.tiles.push_back(tile);
      }
    }
    // Split-tiling waits: before computing wavefront u, tile tid needs its
    // right neighbor past min(u, right's last wavefront).
    for (int tid = 0; tid + 1 < P; ++tid) {
      const Range mine = ur[static_cast<std::size_t>(tid)];
      const Range right = ur[static_cast<std::size_t>(tid + 1)];
      if (right.empty()) continue;
      for (std::int64_t u = std::max(mine.lo, right.lo); u <= mine.hi; ++u) {
        const std::int64_t bound = std::min(u, right.hi);
        SyncEdge e;
        e.kind = SyncEdge::Kind::ProgressGE;
        e.value = bound;
        e.from = base[static_cast<std::size_t>(tid + 1)] +
                 static_cast<std::int32_t>(bound - right.lo);
        e.to = base[static_cast<std::size_t>(tid)] +
               static_cast<std::int32_t>(u - mine.lo);
        p.edges.push_back(e);
      }
    }
  }
  p.phases = phase;
  return p;
}

namespace {

/// Shared CATS2/CATS3 diamond enumeration. emit_tiles(i, j, tr, owner) emits
/// the tile(s) of one non-empty diamond and returns {first index, last
/// index}: incoming done-waits attach to the first, the done-flag publish to
/// the last (they differ only for CATS3's q-tile chains).
template <class EmitTiles>
void emit_diamonds(TilePlan& p, const DiamondTiling& dt, int threads,
                   EmitTiles&& emit_tiles) {
  const Range ir = dt.i_range();
  const Range jr = dt.j_range();
  const Range rr = dt.r_range();
  const std::int64_t nj = jr.hi - jr.lo + 1;
  const std::int64_t ni = ir.hi - ir.lo + 1;
  // Index of each non-empty diamond's *publishing* tile; -1 = empty/absent.
  std::vector<std::int32_t> done_idx(static_cast<std::size_t>(ni * nj), -1);
  auto slot = [&](std::int64_t i, std::int64_t j) -> std::int32_t& {
    return done_idx[static_cast<std::size_t>((i - ir.lo) * nj + (j - jr.lo))];
  };
  auto in_range = [&](std::int64_t i, std::int64_t j) {
    return i >= ir.lo && i <= ir.hi && j >= jr.lo && j <= jr.hi;
  };

  const int P = std::max(1, threads);
  p.threads = P;
  for (std::int64_t r = rr.lo; r <= rr.hi; ++r) {
    const std::int64_t ilo = std::max(ir.lo, jr.lo + r);
    const std::int64_t ihi = std::min(ir.hi, jr.hi + r);
    for (std::int64_t i = ilo; i <= ihi; ++i) {
      const auto owner = static_cast<std::int32_t>((i - ilo) % P);
      const std::int64_t j = i - r;
      if (!dt.nonempty(i, j)) continue;
      const Range tr = dt.t_range(i, j);
      const auto [first, last] = emit_tiles(i, j, tr, owner);
      // Wait on the two diamonds below (Fig. 3); absent or empty neighbors
      // carry no dependency. Both waits fold into one edge set on the
      // consumer's first tile, mirroring the single aggregated wait.
      for (const auto [pi, pj] :
           {std::pair{i - 1, j}, std::pair{i, j + 1}}) {
        if (!in_range(pi, pj)) continue;
        const std::int32_t from = slot(pi, pj);
        if (from < 0) continue;
        p.edges.push_back({from, first, SyncEdge::Kind::Done, 0});
      }
      slot(i, j) = last;
    }
  }
}

}  // namespace

TilePlan emit_cats2(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, std::int64_t bz,
                    int threads) {
  TilePlan p = plan_shell(dims, nx, ny, nz, T, slope, Scheme::Cats2);
  p.bz = std::max<std::int64_t>(bz, 2ll * slope);
  p.phases = T > 0 ? 1 : 0;
  p.phase_sync = PhaseSync::None;
  p.threads = std::max(1, threads);
  if (T <= 0) return p;

  const std::int64_t tiled = dims == 2 ? nx : ny;
  const DiamondTiling dt{slope, p.bz, tiled, 1, T};
  std::int32_t next_group = 0;
  emit_diamonds(p, dt, threads,
                [&](std::int64_t i, std::int64_t j, Range tr,
                    std::int32_t owner) -> std::pair<std::int32_t, std::int32_t> {
                  Tile tile;
                  tile.kind = TileKind::DiamondTube;
                  tile.owner = owner;
                  tile.phase = 0;
                  tile.group = next_group++;
                  tile.first_in_group = true;
                  tile.publishes_done = true;
                  tile.front_hints = true;
                  tile.t0 = static_cast<int>(tr.lo);
                  tile.t1 = static_cast<int>(tr.hi);
                  tile.di = i;
                  tile.dj = j;
                  const auto idx = static_cast<std::int32_t>(p.tiles.size());
                  p.tiles.push_back(tile);
                  return {idx, idx};
                });
  return p;
}

TilePlan emit_mwd(int dims, std::int64_t nx, std::int64_t ny, std::int64_t nz,
                  int T, int slope, std::int64_t bz, int groups, int group) {
  TilePlan p = plan_shell(dims, nx, ny, nz, T, slope, Scheme::Mwd);
  p.bz = std::max<std::int64_t>(bz, 2ll * slope);
  p.mwd_group = std::max(1, group);
  p.phases = T > 0 ? 1 : 0;
  p.phase_sync = PhaseSync::None;
  p.threads = std::max(1, groups);
  if (T <= 0) return p;

  // Identical diamond geometry and Done-edge structure to CATS2 with P =
  // groups owners; the member-level wavefront pipeline is an executor-side
  // refinement of each tile's serial slab walk (wave/mwd.hpp proves it), so
  // the tile-granular dependence/deadlock theorems carry over unchanged.
  const std::int64_t tiled = dims == 2 ? nx : ny;
  const DiamondTiling dt{slope, p.bz, tiled, 1, T};
  std::int32_t next_group = 0;
  emit_diamonds(p, dt, groups,
                [&](std::int64_t i, std::int64_t j, Range tr,
                    std::int32_t owner) -> std::pair<std::int32_t, std::int32_t> {
                  Tile tile;
                  tile.kind = TileKind::DiamondTube;
                  tile.owner = owner;
                  tile.phase = 0;
                  tile.group = next_group++;
                  tile.first_in_group = true;
                  tile.publishes_done = true;
                  tile.front_hints = true;
                  tile.t0 = static_cast<int>(tr.lo);
                  tile.t1 = static_cast<int>(tr.hi);
                  tile.di = i;
                  tile.dj = j;
                  const auto idx = static_cast<std::int32_t>(p.tiles.size());
                  p.tiles.push_back(tile);
                  return {idx, idx};
                });
  return p;
}

TilePlan emit_cats3(std::int64_t nx, std::int64_t ny, std::int64_t nz, int T,
                    int slope, std::int64_t bz, std::int64_t bx, int threads) {
  TilePlan p = plan_shell(3, nx, ny, nz, T, slope, Scheme::Cats3);
  p.bz = std::max<std::int64_t>(bz, 2ll * slope);
  p.bx = std::max<std::int64_t>(bx, 2ll * slope);
  p.phases = T > 0 ? 1 : 0;
  p.phase_sync = PhaseSync::None;
  p.threads = std::max(1, threads);
  if (T <= 0) return p;

  const DiamondTiling dt{slope, p.bz, ny, 1, T};
  std::int32_t next_group = 0;
  emit_diamonds(p, dt, threads,
                [&](std::int64_t i, std::int64_t j, Range tr,
                    std::int32_t owner) -> std::pair<std::int32_t, std::int32_t> {
                  // x-parallelograms vx = x - s*t relevant to this diamond's
                  // time range, processed right to left: slope-s reads in the
                  // (x, t) skew come from the same or the right parallelogram,
                  // so program order alone discharges them.
                  const std::int64_t q_lo = floor_div(0 - slope * tr.hi, p.bx);
                  const std::int64_t q_hi =
                      floor_div(nx - 1 - slope * tr.lo, p.bx);
                  const auto first = static_cast<std::int32_t>(p.tiles.size());
                  const std::int32_t group = next_group++;
                  for (std::int64_t q = q_hi; q >= q_lo; --q) {
                    Tile tile;
                    tile.kind = TileKind::DiamondTube;
                    tile.owner = owner;
                    tile.phase = 0;
                    tile.group = group;
                    tile.first_in_group = q == q_hi;
                    tile.publishes_done = q == q_lo;
                    tile.t0 = static_cast<int>(tr.lo);
                    tile.t1 = static_cast<int>(tr.hi);
                    tile.di = i;
                    tile.dj = j;
                    tile.q = q;
                    tile.has_q = true;
                    p.tiles.push_back(tile);
                  }
                  const auto last =
                      static_cast<std::int32_t>(p.tiles.size()) - 1;
                  return {first, last};
                });
  return p;
}

TilePlan emit_pluto(int dims, std::int64_t nx, std::int64_t ny,
                    std::int64_t nz, int T, int slope, int threads) {
  TilePlan p = plan_shell(dims, nx, ny, nz, T, slope, Scheme::PlutoLike);
  const PlutoParams prm = pluto_params();
  const std::int64_t s = slope;

  if (dims == 1) {
    // A 1D hyperplane holds a single tile: the transformed nest is a serial
    // pipeline, executed on the calling thread with no barriers.
    p.threads = 1;
    p.phases = T > 0 ? 1 : 0;
    p.phase_sync = PhaseSync::None;
    const int Bt = prm.bt2, Bj = prm.bx2;
    for (int tb = 0; tb * Bt < T; ++tb) {
      const int t_lo = tb * Bt + 1;
      const int t_hi = std::min((tb + 1) * Bt, T);
      const std::int64_t jp_lo = s * t_lo;
      const std::int64_t jp_hi = nx - 1 + s * t_hi;
      for (std::int64_t tj = floor_div(jp_lo, Bj); tj <= floor_div(jp_hi, Bj);
           ++tj) {
        Tile tile;
        tile.kind = TileKind::SkewedBlock;
        tile.skew = true;
        tile.owner = 0;
        tile.phase = 0;
        tile.t0 = t_lo;
        tile.t1 = t_hi;
        tile.base = {tj * Bj, (tj + 1) * Bj - 1, 0, 0, 0, 0};
        p.tiles.push_back(tile);
      }
    }
    return p;
  }

  const int P = std::max(1, threads);
  p.threads = P;
  p.phase_sync = PhaseSync::Barrier;
  int phase = 0;

  if (dims == 2) {
    const int Bt = prm.bt2, Bi = prm.by2, Bj = prm.bx2;
    for (int tb = 0; tb * Bt < T; ++tb) {
      const int t_lo = tb * Bt + 1;
      const int t_hi = std::min((tb + 1) * Bt, T);
      const std::int64_t ip_lo = s * t_lo, ip_hi = ny - 1 + s * t_hi;
      const std::int64_t jp_lo = s * t_lo, jp_hi = nx - 1 + s * t_hi;
      const std::int64_t ti_lo = floor_div(ip_lo, Bi),
                         ti_hi = floor_div(ip_hi, Bi);
      const std::int64_t tj_lo = floor_div(jp_lo, Bj),
                         tj_hi = floor_div(jp_hi, Bj);
      for (std::int64_t d = ti_lo + tj_lo; d <= ti_hi + tj_hi; ++d, ++phase) {
        std::int64_t slot = 0;
        for (std::int64_t ti = std::max(ti_lo, d - tj_hi);
             ti <= std::min(ti_hi, d - tj_lo); ++ti, ++slot) {
          const std::int64_t tj = d - ti;
          Tile tile;
          tile.kind = TileKind::SkewedBlock;
          tile.skew = true;
          tile.owner = static_cast<std::int32_t>(slot % P);
          tile.phase = phase;
          tile.t0 = t_lo;
          tile.t1 = t_hi;
          tile.base = {tj * Bj, (tj + 1) * Bj - 1, ti * Bi,
                       (ti + 1) * Bi - 1, 0, 0};
          p.tiles.push_back(tile);
        }
      }
    }
  } else {
    const int Bt = prm.bt3, Bz = prm.bz3, Bi = prm.by3, Bj = prm.bx3;
    for (int tb = 0; tb * Bt < T; ++tb) {
      const int t_lo = tb * Bt + 1;
      const int t_hi = std::min((tb + 1) * Bt, T);
      const std::int64_t sp_lo = s * t_lo;
      const std::int64_t zp_hi = nz - 1 + s * t_hi;
      const std::int64_t ip_hi = ny - 1 + s * t_hi;
      const std::int64_t jp_hi = nx - 1 + s * t_hi;
      const std::int64_t tz_lo = floor_div(sp_lo, Bz),
                         tz_hi = floor_div(zp_hi, Bz);
      const std::int64_t ti_lo = floor_div(sp_lo, Bi),
                         ti_hi = floor_div(ip_hi, Bi);
      const std::int64_t tj_lo = floor_div(sp_lo, Bj),
                         tj_hi = floor_div(jp_hi, Bj);
      for (std::int64_t d = tz_lo + ti_lo + tj_lo;
           d <= tz_hi + ti_hi + tj_hi; ++d, ++phase) {
        std::int64_t slot = 0;
        for (std::int64_t tz = tz_lo; tz <= tz_hi; ++tz) {
          for (std::int64_t ti = std::max(ti_lo, d - tz - tj_hi);
               ti <= std::min(ti_hi, d - tz - tj_lo); ++ti, ++slot) {
            const std::int64_t tj = d - tz - ti;
            Tile tile;
            tile.kind = TileKind::SkewedBlock;
            tile.skew = true;
            tile.owner = static_cast<std::int32_t>(slot % P);
            tile.phase = phase;
            tile.t0 = t_lo;
            tile.t1 = t_hi;
            tile.base = {tj * Bj, (tj + 1) * Bj - 1, ti * Bi,
                         (ti + 1) * Bi - 1, tz * Bz, (tz + 1) * Bz - 1};
            p.tiles.push_back(tile);
          }
        }
      }
    }
  }
  p.phases = phase;
  return p;
}

TilePlan emit_plan(const PlanRequest& rq) {
  DomainShape d;
  d.dims = rq.dims;
  if (rq.dims == 1) {
    d = {rq.nx, rq.nx, 0, 1};
  } else if (rq.dims == 2) {
    d = {rq.nx * rq.ny, rq.ny, rq.nx, 2};
  } else {
    d = {rq.nx * rq.ny * rq.nz, rq.nz, rq.ny, 3};
  }
  const KernelCosts costs{rq.slope, rq.cs_eff, rq.elem_bytes};
  const SchemeChoice choice =
      resolve_dispatch(select_scheme(d, costs, rq.opt, rq.T), rq.dims);

  TilePlan p;
  switch (choice.scheme) {
    case Scheme::Naive:
      p = emit_naive(rq.dims, rq.nx, rq.ny, rq.nz, rq.T, rq.slope,
                     rq.opt.threads);
      break;
    case Scheme::Cats1:
      p = emit_cats1(rq.dims, rq.nx, rq.ny, rq.nz, rq.T, rq.slope, choice.tz,
                     rq.opt.threads);
      break;
    case Scheme::Cats2:
      p = emit_cats2(rq.dims, rq.nx, rq.ny, rq.nz, rq.T, rq.slope, choice.bz,
                     rq.opt.threads);
      break;
    case Scheme::Cats3:
      p = emit_cats3(rq.nx, rq.ny, rq.nz, rq.T, rq.slope, choice.bz,
                     choice.bx, rq.opt.threads);
      break;
    case Scheme::Mwd: {
      // wave_team_width re-derives the same m at execution, so the emitted
      // group layout and the worker layout always agree.
      const int m = std::max(1, choice.group);
      const int groups =
          std::max(1, (rq.opt.threads > 0 ? rq.opt.threads : 1) / m);
      p = emit_mwd(rq.dims, rq.nx, rq.ny, rq.nz, rq.T, rq.slope, choice.bz,
                   groups, m);
      break;
    }
    case Scheme::PlutoLike:
      p = emit_pluto(rq.dims, rq.nx, rq.ny, rq.nz, rq.T, rq.slope,
                     rq.opt.threads);
      break;
    case Scheme::Auto:
      CATS_CHECK(false, "select_scheme never returns Auto");
      break;
  }

  apply_cache_model(p, choice.scheme, d, costs, rq.opt);
  return p;
}

void apply_cache_model(TilePlan& p, Scheme scheme, const DomainShape& d,
                       const KernelCosts& costs, const RunOptions& opt) {
  // resolve_cache_bytes already divides Z by opt.cache_tenants (multi-tenant
  // shard batching, src/serve); the plan records both the partitioned share
  // and the divisor so the residency certificate is explicit about the
  // contended budget it certifies.
  const std::size_t z = resolve_cache_bytes(opt);
  p.cache_bytes = z;
  p.cache_tenants = opt.cache_tenants > 1 ? opt.cache_tenants : 1;
  p.cs_eff = costs.cs_eff;
  p.elem_bytes = costs.elem_bytes;
  switch (scheme) {
    case Scheme::Cats1:
      p.certify_residency = opt.tz_override == 0;
      p.clamped = p.certify_residency && compute_tz(z, d, costs) < 1;
      break;
    case Scheme::Cats2:
      p.certify_residency = opt.bz_override == 0;
      p.clamped = p.certify_residency &&
                  eq2_bz_raw(z, d, costs) < 2.0 * costs.slope;
      break;
    case Scheme::Cats3:
      p.certify_residency = opt.bz_override == 0 && opt.bx_override == 0;
      p.clamped = p.certify_residency &&
                  cats3_bz_raw(z, costs) < 2.0 * costs.slope;
      break;
    case Scheme::Mwd: {
      // The diamond is shared by the whole group, so the budget Eq. 2 sized
      // it against — and the one the verifier certifies — is the pooled Z*g.
      const auto g = static_cast<std::size_t>(std::max(1, p.mwd_group));
      p.certify_residency = opt.bz_override == 0;
      p.clamped = p.certify_residency &&
                  eq2_bz_raw(z * g, d, costs) < 2.0 * costs.slope;
      break;
    }
    default:
      break;
  }
}

}  // namespace cats::plan_ir
