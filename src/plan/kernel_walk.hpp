#pragma once
// Kernel adapters over the plan executor: expand each slab into the kernel's
// row calls (with oracle note_row instrumentation and the wavefront
// leading-edge prefetch hint). These are the only place plans meet kernels;
// every scheme entry point is emit + run_plan.
//
// `Scalar` selects process_row_scalar (the PluTo-like baseline's plain-C
// path) instead of the hand-vectorized process_row.

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/execute.hpp"
#include "plan/plan.hpp"

namespace cats::plan_ir {

template <bool Scalar = false, RowKernel1D K>
void run_plan(K& k, const TilePlan& p, const RunOptions& opt) {
  execute_plan(p, opt, [&k](const Slab& sl) {
    const int x0 = static_cast<int>(sl.box.xlo);
    const int x1 = static_cast<int>(sl.box.xhi) + 1;
    check::note_row(sl.t, 0, 0, x0, x1);
    if constexpr (Scalar) {
      k.process_row_scalar(sl.t, x0, x1);
    } else {
      k.process_row(sl.t, x0, x1);
    }
  });
}

template <bool Scalar = false, RowKernel2D K>
void run_plan(K& k, const TilePlan& p, const RunOptions& opt) {
  execute_plan(p, opt, [&k](const Slab& sl) {
    // Leading wavefront edge: the row swept next (one traversal position
    // ahead at the same timestep) is cold; hint it into cache while this
    // slab computes.
    if constexpr (kernel_has_prefetch_front<K>) {
      if (sl.front) k.prefetch_front(sl.t, static_cast<int>(sl.box.ylo) + 1);
    }
    const int x0 = static_cast<int>(sl.box.xlo);
    const int x1 = static_cast<int>(sl.box.xhi) + 1;
    for (std::int64_t y = sl.box.ylo; y <= sl.box.yhi; ++y) {
      check::note_row(sl.t, static_cast<int>(y), 0, x0, x1);
      if constexpr (Scalar) {
        k.process_row_scalar(sl.t, static_cast<int>(y), x0, x1);
      } else {
        k.process_row(sl.t, static_cast<int>(y), x0, x1);
      }
    }
  });
}

template <bool Scalar = false, RowKernel3D K>
void run_plan(K& k, const TilePlan& p, const RunOptions& opt) {
  execute_plan(p, opt, [&k](const Slab& sl) {
    if constexpr (kernel_has_prefetch_front<K>) {
      if (sl.front) k.prefetch_front(sl.t, static_cast<int>(sl.box.zlo) + 1);
    }
    const int x0 = static_cast<int>(sl.box.xlo);
    const int x1 = static_cast<int>(sl.box.xhi) + 1;
    for (std::int64_t z = sl.box.zlo; z <= sl.box.zhi; ++z) {
      for (std::int64_t y = sl.box.ylo; y <= sl.box.yhi; ++y) {
        check::note_row(sl.t, static_cast<int>(y), static_cast<int>(z), x0,
                        x1);
        if constexpr (Scalar) {
          k.process_row_scalar(sl.t, static_cast<int>(y),
                               static_cast<int>(z), x0, x1);
        } else {
          k.process_row(sl.t, static_cast<int>(y), static_cast<int>(z), x0,
                        x1);
        }
      }
    }
  });
}

}  // namespace cats::plan_ir
