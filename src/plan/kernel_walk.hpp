#pragma once
// Kernel adapters over the plan executor: hand each plan slab to the wave
// engine's per-worker walker (src/wave/engine.hpp), which expands it into
// the kernel's row calls — fusing wavefront-chain slabs into temporal
// micro-kernel groups, streaming trailing-slab stores, and issuing the
// leading-edge prefetch hint — or, with every wave feature resolved off,
// degenerates to exactly the historical slab-to-rows loop (oracle note_row
// included). These are the only place plans meet kernels; every scheme
// entry point is emit + run_plan.
//
// `Scalar` selects process_row_scalar (the PluTo-like baseline's plain-C
// path) instead of the hand-vectorized process_row; the baseline also keeps
// fusion/NT/prefetch off so it stays the paper's auto-vectorized-only
// comparison point.

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/execute.hpp"
#include "plan/plan.hpp"
#include "wave/engine.hpp"

namespace cats::plan_ir {

template <bool Scalar = false, RowKernel1D K>
void run_plan(K& k, const TilePlan& p, const RunOptions& opt) {
  // 1D slabs are x-intervals: nothing to fuse or stream (a 1D wavefront is a
  // handful of points), so the direct row loop stays.
  execute_plan(p, opt, [&k](const Slab& sl) {
    const int x0 = static_cast<int>(sl.box.xlo);
    const int x1 = static_cast<int>(sl.box.xhi) + 1;
    check::note_row(sl.t, 0, 0, x0, x1);
    if constexpr (Scalar) {
      k.process_row_scalar(sl.t, x0, x1);
    } else {
      k.process_row(sl.t, x0, x1);
    }
  });
}

template <bool Scalar = false, RowKernel2D K>
void run_plan(K& k, const TilePlan& p, const RunOptions& opt) {
  execute_plan(p, opt, wave::WaveWalker2D<Scalar, K>(k, p, opt));
}

template <bool Scalar = false, RowKernel3D K>
void run_plan(K& k, const TilePlan& p, const RunOptions& opt) {
  execute_plan(p, opt, wave::WaveWalker3D<Scalar, K>(k, p, opt));
}

}  // namespace cats::plan_ir
