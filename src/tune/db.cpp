#include "tune/db.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "core/selector.hpp"
#include "tune/json.hpp"

namespace cats::tune {

namespace {
constexpr int kVersion = 1;
}

int log2_bucket(std::int64_t n) {
  int b = 0;
  while (n > 1) {
    n >>= 1;
    ++b;
  }
  return b;
}

std::string shape_bucket(const DomainShape& d) {
  std::ostringstream os;
  os << "d" << d.dims << "/n^" << log2_bucket(d.n) << "/w^"
     << log2_bucket(d.wmax);
  return os.str();
}

std::string TuneDb::default_path() {
  if (const char* p = std::getenv("CATS_TUNE_DB")) return p;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"))
    return std::string(xdg) + "/cats/tune.json";
  if (const char* home = std::getenv("HOME"))
    return std::string(home) + "/.cache/cats/tune.json";
  // Last resort was CWD-relative, which breaks daemons (cats_served may run
  // from / or chdir after startup): anchor it to the current directory at
  // first resolution instead of at every open.
  std::error_code ec;
  const std::filesystem::path cwd = std::filesystem::current_path(ec);
  if (!ec) return (cwd / "cats_tune.json").string();
  return "cats_tune.json";
}

bool TuneDb::load(const std::string& path) {
  rows_.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!json_parse(text, root)) return false;
  if (root.kind != JsonValue::Kind::Object) return false;
  if (root.get_int("version", -1) != kVersion) return false;
  const JsonValue* entries = root.get("entries");
  if (!entries || entries->kind != JsonValue::Kind::Array) return false;

  for (const JsonValue& e : entries->items) {
    if (e.kind != JsonValue::Kind::Object) continue;  // skip junk rows
    Row r;
    r.key.machine = e.get_string("machine");
    r.key.kernel = e.get_string("kernel");
    r.key.scheme_key = e.get_string("scheme_key", "auto");
    r.key.shape = e.get_string("shape");
    r.key.threads = static_cast<int>(e.get_int("threads", 1));
    r.entry.scheme = e.get_string("scheme");
    r.entry.tz = static_cast<int>(e.get_int("tz"));
    r.entry.bz = e.get_int("bz");
    r.entry.bx = e.get_int("bx");
    r.entry.run_threads = static_cast<int>(e.get_int("run_threads"));
    r.entry.affinity = e.get_string("affinity");  // absent in pre-affinity DBs
    // Wave knobs: absent in pre-wave DBs — the defaults mean "keep the
    // caller's value", so old files stay fully usable.
    r.entry.nt_stores = static_cast<int>(e.get_int("nt_stores", -1));
    r.entry.unroll_t = static_cast<int>(e.get_int("unroll_t", -1));
    r.entry.temporal_vec = static_cast<int>(e.get_int("temporal_vec", -1));
    r.entry.team_size = static_cast<int>(e.get_int("team_size", 0));
    r.entry.mwd_group = static_cast<int>(e.get_int("mwd_group", 0));
    r.entry.prefetch_dist = static_cast<int>(e.get_int("prefetch_dist", -1));
    r.entry.pilot_seconds = e.get_number("pilot_seconds");
    r.entry.analytic_seconds = e.get_number("analytic_seconds");
    r.entry.cache_bytes = static_cast<std::size_t>(e.get_int("cache_bytes"));
    r.entry.cs_slack = e.get_number("cs_slack");
    if (r.key.machine.empty() || r.key.kernel.empty() || r.entry.scheme.empty())
      continue;  // incomplete rows are ignored, not fatal
    rows_.push_back(std::move(r));
  }
  return true;
}

bool TuneDb::save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  std::ostringstream os;
  os << "{\n  \"version\": " << kVersion << ",\n  \"entries\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << (i ? "," : "") << "\n    {"
       << "\"machine\": " << json_quote(r.key.machine) << ", "
       << "\"kernel\": " << json_quote(r.key.kernel) << ", "
       << "\"scheme_key\": " << json_quote(r.key.scheme_key) << ", "
       << "\"shape\": " << json_quote(r.key.shape) << ", "
       << "\"threads\": " << r.key.threads << ", "
       << "\"scheme\": " << json_quote(r.entry.scheme) << ", "
       << "\"tz\": " << r.entry.tz << ", "
       << "\"bz\": " << r.entry.bz << ", "
       << "\"bx\": " << r.entry.bx << ", "
       << "\"run_threads\": " << r.entry.run_threads << ", "
       << "\"affinity\": " << json_quote(r.entry.affinity) << ", "
       << "\"nt_stores\": " << r.entry.nt_stores << ", "
       << "\"unroll_t\": " << r.entry.unroll_t << ", "
       << "\"temporal_vec\": " << r.entry.temporal_vec << ", "
       << "\"team_size\": " << r.entry.team_size << ", "
       << "\"mwd_group\": " << r.entry.mwd_group << ", "
       << "\"prefetch_dist\": " << r.entry.prefetch_dist << ", "
       << "\"pilot_seconds\": " << json_number(r.entry.pilot_seconds) << ", "
       << "\"analytic_seconds\": " << json_number(r.entry.analytic_seconds) << ", "
       << "\"cache_bytes\": " << r.entry.cache_bytes << ", "
       << "\"cs_slack\": " << json_number(r.entry.cs_slack) << "}";
  }
  os << "\n  ]\n}\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << os.str();
    if (!out.flush()) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

const DbEntry* TuneDb::find(const DbKey& key) const {
  for (const Row& r : rows_)
    if (r.key == key) return &r.entry;
  return nullptr;
}

void TuneDb::put(const DbKey& key, const DbEntry& entry) {
  for (Row& r : rows_) {
    if (r.key == key) {
      r.entry = entry;
      return;
    }
  }
  rows_.push_back({key, entry});
}

namespace {
std::mutex g_cache_mutex;
std::map<std::string, TuneDb>& cache() {
  static std::map<std::string, TuneDb> c;
  return c;
}
}  // namespace

std::optional<DbEntry> cached_lookup(const std::string& path, const DbKey& key) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache().find(path);
  if (it == cache().end()) {
    TuneDb db;
    db.load(path);  // a failed load caches an empty DB: misses are cheap
    it = cache().emplace(path, std::move(db)).first;
  }
  const DbEntry* e = it->second.find(key);
  if (!e) return std::nullopt;
  return *e;
}

void invalidate_cache() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  cache().clear();
}

}  // namespace cats::tune
