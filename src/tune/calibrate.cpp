#include "tune/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "bench_harness/machine.hpp"
#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/const2d.hpp"
#include "sysinfo/cache_info.hpp"

namespace cats::tune {

namespace {

// Fractions of the nominal last private level the bandwidth sweep probes.
constexpr double kFractions[] = {0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0, 1.25};

double time_slack_pilot(int side, int T, double slack) {
  ConstStar2D<1> k(side, side, default_star2d_weights<1>());
  k.init([](int x, int y) { return 0.01 * x + 0.02 * y; }, 0.0);
  RunOptions opt;
  opt.threads = 1;
  opt.cs_slack = slack;
  opt.scheme = Scheme::Auto;
  bench::Timer t;
  run(k, T, opt);
  return t.seconds();
}

}  // namespace

Calibration calibrate_machine(const CalibrationConfig& cfg) {
  Calibration c;
  const CacheInfo ci = detect_cache_info();
  c.nominal_cache_bytes = ci.last_private_bytes();
  c.effective_cache_bytes = c.nominal_cache_bytes;

  // --- Effective cache: copy-bandwidth knee ------------------------------
  // A working set that fits the (usable share of the) cache copies at cache
  // speed; past the usable share bandwidth falls toward memory speed. We call
  // a point "cached" while its bandwidth clears the geometric mean of the
  // fastest (surely cached) and the memory (surely uncached) measurements —
  // the midpoint of the knee on a log scale.
  c.memory_bw_gbps =
      bench::measure_copy_bandwidth(8 * c.nominal_cache_bytes,
                                    cfg.seconds_per_bw_point);
  double best_bw = 0.0;
  for (double f : kFractions) {
    const auto ws = static_cast<std::size_t>(f * static_cast<double>(c.nominal_cache_bytes));
    const double bw = bench::measure_copy_bandwidth(ws, cfg.seconds_per_bw_point);
    c.bw_curve.emplace_back(ws, bw);
    best_bw = std::max(best_bw, bw);
  }
  const double knee = std::sqrt(std::max(best_bw, 1e-9) *
                                std::max(c.memory_bw_gbps, 1e-9));
  std::size_t usable = 0;
  for (const auto& [ws, bw] : c.bw_curve)
    if (bw >= knee) usable = std::max(usable, ws);
  if (usable > 0) {
    // Never report more than the nominal level (the sweep's 1.25x point can
    // clear the knee on machines with a fast exclusive L3 victim path; CATS
    // should still size against the private level) nor less than a quarter
    // (noise floor: below that the sweep is measuring the L1, not the L2).
    usable = std::min(usable, c.nominal_cache_bytes);
    usable = std::max(usable, c.nominal_cache_bytes / 4);
    c.effective_cache_bytes = usable;
  }
  c.usable_fraction = static_cast<double>(c.effective_cache_bytes) /
                      static_cast<double>(c.nominal_cache_bytes);

  // --- Slack: CATS1 pilot sweep ------------------------------------------
  // Domain sized well past the cache so temporal blocking matters; the TZ
  // implied by each slack differs, and the fastest pilot tells us which CS'
  // this machine actually sustains.
  if (cfg.sweep_slack) {
    const double doubles = static_cast<double>(c.effective_cache_bytes) / 8.0;
    int side = static_cast<int>(std::sqrt(16.0 * doubles));
    side = std::clamp(side, 256, 4096);
    const int T = 24;
    // Warm-up run (page faults, frequency ramp) then one timed pilot per
    // slack; repeat while budget remains and keep the per-slack minimum.
    time_slack_pilot(side, 4, 0.8);
    const double slacks[] = {0.4, 0.8, 1.2, 1.6};
    double best = 1e300;
    for (double s : slacks) {
      double t_min = 1e300;
      bench::Timer budget;
      do {
        t_min = std::min(t_min, time_slack_pilot(side, T, s));
      } while (budget.seconds() < cfg.seconds_per_slack_point);
      if (t_min < best) {
        best = t_min;
        c.suggested_cs_slack = s;
      }
    }
  }
  return c;
}

}  // namespace cats::tune
