#pragma once
// Minimal JSON reader/writer for the tuning subsystem.
//
// The tuning database and the bench --json emitter need a dependency-free
// round-trip format. This is deliberately a small, tolerant subset parser:
// objects, arrays, strings (with \" \\ \/ \b \f \n \r \t \uXXXX escapes),
// numbers, true/false/null. Parse failures return false instead of throwing —
// a corrupted database file must never take down a run.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cats::tune {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // Kind::Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Kind::Object

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;

  /// Typed convenience getters with defaults (never throw).
  std::string get_string(std::string_view key, std::string dflt = {}) const;
  double get_number(std::string_view key, double dflt = 0.0) const;
  long long get_int(std::string_view key, long long dflt = 0) const;
};

/// Parse a complete JSON document. Returns false (out untouched beyond
/// partial state) on any syntax error or trailing garbage.
bool json_parse(std::string_view text, JsonValue& out);

/// Escape a string's content for embedding between double quotes.
std::string json_escape(std::string_view s);

/// `"s"` with escaping.
std::string json_quote(std::string_view s);

/// Shortest round-trip representation of a double (handles NaN/inf as null,
/// which JSON cannot represent).
std::string json_number(double v);

}  // namespace cats::tune
