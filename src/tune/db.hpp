#pragma once
// Persistent tuning database.
//
// Empirically tuned stencil parameters are keyed by machine fingerprint
// (bench_harness/machine.hpp) x kernel id x scheme key x bucketed domain
// shape x thread count, and stored as JSON on disk so one `cats_tune` run
// benefits every later `Scheme::Auto` run on the same machine. The file is
// advisory: a missing, corrupted or foreign-machine database never fails a
// run — lookups just miss and the analytic Eq. 1/2 path takes over.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cats {
struct DomainShape;  // core/selector.hpp
}

namespace cats::tune {

/// Lookup key. `scheme_key` is "auto" for general-CATS resolution (the only
/// key run() consults today); explicit-scheme tuning may add more later.
struct DbKey {
  std::string machine;     ///< bench::machine_fingerprint()
  std::string kernel;      ///< kernel_tuning_id(k)
  std::string scheme_key = "auto";
  std::string shape;       ///< shape_bucket(domain)
  int threads = 1;

  bool operator==(const DbKey&) const = default;
};

/// One tuned configuration (the winner of a neighborhood search).
struct DbEntry {
  std::string scheme;      ///< "Naive" | "CATS1" | "CATS2" | "CATS3" | "MWD"
  int tz = 0;
  std::int64_t bz = 0;
  std::int64_t bx = 0;
  int run_threads = 0;     ///< tuned worker count; 0 = keep the caller's
  std::string affinity;    ///< affinity_policy_name(); "" = keep the caller's
  // Wave-engine knobs (src/wave). Negative (0 for team_size) = not tuned:
  // keep the caller's RunOptions value, matching pre-wave DB files.
  int nt_stores = -1;      ///< -1 keep; 0 off; 1 on
  int unroll_t = -1;       ///< -1 keep; else RunOptions::unroll_t
  int temporal_vec = -1;   ///< -1 keep; 0 off; 1 on (RunOptions::temporal_vec)
  int team_size = 0;       ///< 0 keep; else RunOptions::team_size
  int mwd_group = 0;       ///< 0 keep; else RunOptions::mwd_group
  int prefetch_dist = -1;  ///< -1 keep; else RunOptions::prefetch_dist
  double pilot_seconds = 0.0;     ///< best pilot time
  double analytic_seconds = 0.0;  ///< analytic-seed pilot time (for the record)
  std::size_t cache_bytes = 0;    ///< Z the search ran with (0 = detected)
  double cs_slack = 0.0;          ///< slack the search ran with
};

/// Log2 bucket of a positive count (0 for n <= 1). Domain sizes within a
/// factor of 2 share tuned parameters — Eq. 1/2 scale smoothly, and pilot
/// timings are far noisier than the within-bucket parameter drift.
int log2_bucket(std::int64_t n);

/// "d2/n^22/w^11": dimensionality plus log2 buckets of N and Wmax.
std::string shape_bucket(const DomainShape& d);

class TuneDb {
 public:
  /// $CATS_TUNE_DB, else $XDG_CACHE_HOME/cats/tune.json, else
  /// $HOME/.cache/cats/tune.json, else ./cats_tune.json.
  static std::string default_path();

  /// Replace contents from `path`. Returns false (leaving the DB empty) when
  /// the file is missing, unreadable, malformed or has the wrong version —
  /// never throws.
  bool load(const std::string& path);

  /// Atomically (write + rename) persist to `path`, creating the parent
  /// directory when needed. Returns false on IO failure.
  bool save(const std::string& path) const;

  const DbEntry* find(const DbKey& key) const;

  /// Insert or overwrite the entry for `key`.
  void put(const DbKey& key, const DbEntry& entry);

  std::size_t size() const { return rows_.size(); }
  void clear() { rows_.clear(); }

 private:
  struct Row {
    DbKey key;
    DbEntry entry;
  };
  std::vector<Row> rows_;
};

/// Process-wide read cache for run()-time lookups: loads `path` once and
/// serves `find` from memory (run() may plan thousands of times). Returns
/// nullopt on miss. Thread-safe.
std::optional<DbEntry> cached_lookup(const std::string& path, const DbKey& key);

/// Drop the cached_lookup cache (tests; after cats_tune rewrites the file).
void invalidate_cache();

}  // namespace cats::tune
