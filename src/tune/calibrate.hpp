#pragma once
// Machine calibration for CATS sizing.
//
// Eq. 1/2 take the usable last-private-cache bytes Z and the slack term of
// CS' = 2s + slack as inputs. The paper fixes slack = 0.8 after a miss
// analysis and assumes most of the nominal cache is usable; on real machines
// prefetchers, SMT sharing and associativity conflicts change both. The
// calibrator measures instead of assuming:
//
//   * effective cache:  a copy-bandwidth sweep over working sets around the
//     nominal last private level; the largest working set that still runs at
//     cache (not memory) speed is the usable Z.
//   * slack:            short CATS1 pilot runs of a 5-point stencil on a
//     memory-resident domain across a small slack grid; fastest wins.
//
// Both are bounded-time micro-benchmarks (a second or two total by default).

#include <cstddef>
#include <vector>

namespace cats::tune {

struct CalibrationConfig {
  double seconds_per_bw_point = 0.06;  ///< copy-sweep budget per working set
  double seconds_per_slack_point = 0.25;  ///< pilot budget per slack value
  bool sweep_slack = true;  ///< false: keep the paper's 0.8 (cache sweep only)
};

struct Calibration {
  std::size_t nominal_cache_bytes = 0;    ///< detected last private level
  std::size_t effective_cache_bytes = 0;  ///< measured usable share
  double usable_fraction = 1.0;           ///< effective / nominal
  double suggested_cs_slack = 0.8;        ///< winner of the slack sweep
  double memory_bw_gbps = 0.0;            ///< far-from-cache copy bandwidth
  /// The sweep itself, for reporting: (working-set bytes, GB/s).
  std::vector<std::pair<std::size_t, double>> bw_curve;
};

/// Run the calibration micro-benchmarks on this machine.
Calibration calibrate_machine(const CalibrationConfig& cfg = {});

}  // namespace cats::tune
