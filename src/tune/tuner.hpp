#pragma once
// Empirical neighborhood search around the analytic CATS parameters.
//
// The analytic Eq. 1/2/CATS3 values from core/selector.cpp seed a bounded
// grid of candidate configurations (TZ / BZ / BX scaled by a few factors,
// plus cross-scheme alternatives); each candidate is timed on short pilot
// runs of a *fresh* kernel built by the caller's factory, and the fastest
// wins. Related work (Malas et al.; Wittmann et al.) reports 1.5-2x
// sensitivity around the analytic optimum, which a dozen pilots recover.
//
// search() needs a kernel factory because pilot runs advance a kernel's
// simulation state — the library never pilots on the caller's live kernel.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_harness/machine.hpp"
#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "sysinfo/topology.hpp"
#include "tune/db.hpp"

namespace cats::tune {

struct TuneConfig {
  int pilot_t = 16;      ///< minimum timesteps per pilot run
  int max_pilot_t = 48;  ///< pilot-length cap (pilots grow to fit 2x seed TZ)
  int reps = 2;          ///< pilots per candidate; minimum is kept
  double budget_seconds = 20.0;  ///< stop evaluating new candidates after this
  bool cross_scheme = true;      ///< also try the neighboring CATS scheme
  bool tune_threads = true;      ///< re-time the winner at threads/2
  bool tune_affinity = true;     ///< re-time the winner under each pin policy
  bool tune_wave = true;         ///< re-time the winner along the wave axes
                                 ///< (nt_stores / unroll_t / team_size /
                                 ///< mwd_group / prefetch_dist, src/wave)
};

/// One point of the search grid. `threads` 0 = the caller's thread count;
/// `affinity` -1 = the caller's policy, else an AffinityPolicy value. The
/// wave-engine axes follow the same convention: negative (or 0 for
/// team_size) = keep the caller's RunOptions value.
struct Candidate {
  Scheme scheme = Scheme::Auto;
  int tz = 0;
  std::int64_t bz = 0;
  std::int64_t bx = 0;
  int threads = 0;
  int affinity = -1;
  int nt_stores = -1;      ///< -1 caller's; 0 off; 1 on
  int unroll_t = -1;       ///< -1 caller's; else RunOptions::unroll_t
  int temporal_vec = -1;   ///< -1 caller's; 0 off; 1 on
  int team_size = 0;       ///< 0 caller's; else RunOptions::team_size
  int mwd_group = 0;       ///< 0 caller's; else RunOptions::mwd_group
  int prefetch_dist = -1;  ///< -1 caller's; else RunOptions::prefetch_dist
};

struct Measured {
  Candidate cand;
  double seconds = 0.0;
};

struct TuneResult {
  Candidate best;
  double best_seconds = 0.0;
  double analytic_seconds = 0.0;  ///< the seed configuration's pilot time
  std::vector<Measured> all;      ///< every evaluated candidate (for reports)
  DbEntry entry;                  ///< ready to put() into a TuneDb
  DbKey key;                      ///< under this key
};

/// Candidate grid around the analytic seed (seed itself is element 0).
/// Deduplicated, clamped to legal parameter ranges; bounded size (~a dozen).
std::vector<Candidate> neighborhood(const SchemeChoice& seed,
                                    const DomainShape& d, int slope, int T,
                                    const TuneConfig& cfg);

/// Options that force exactly `c` through select_scheme().
RunOptions options_for_candidate(const RunOptions& base, const Candidate& c);

const char* candidate_scheme_name(const Candidate& c);

/// Time pilots for every candidate and return the winner. `make` must return
/// a freshly initialized kernel by value each call.
template <class MakeKernel>
TuneResult search(MakeKernel&& make, int T, const RunOptions& base,
                  const TuneConfig& cfg = {}) {
  RunOptions opt = base;
  opt.tuning = Tuning::Off;  // the search itself must not consult the DB
  opt.scheme = Scheme::Auto;

  TuneResult res;
  {
    auto k0 = make();
    // Seed from the production T (so the analytic TZ is not capped by the
    // pilot length), then grow the pilot until the 2x-TZ candidate is
    // distinguishable from the seed — a pilot shorter than a candidate's
    // chunk height would silently time a clamped configuration.
    const SchemeChoice seed = plan(k0, T, opt);
    const int pilot_t =
        std::max(1, std::min({T, std::max(cfg.pilot_t, 2 * seed.tz),
                              std::max(cfg.pilot_t, cfg.max_pilot_t)}));
    const DomainShape d = domain_shape(k0);
    const std::vector<Candidate> cands =
        neighborhood(seed, d, k0.slope(), pilot_t, cfg);

    auto time_candidate = [&](const Candidate& c) {
      const RunOptions copt = options_for_candidate(opt, c);
      double secs = 1e300;
      for (int r = 0; r < std::max(1, cfg.reps); ++r) {
        auto k = make();
        bench::Timer t;
        run(k, pilot_t, copt);
        secs = std::min(secs, t.seconds());
      }
      return secs;
    };

    bench::Timer budget;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (i > 0 && budget.seconds() > cfg.budget_seconds) break;
      const double secs = time_candidate(cands[i]);
      res.all.push_back({cands[i], secs});
      if (i == 0) res.analytic_seconds = secs;
      if (res.all.size() == 1 || secs < res.best_seconds) {
        res.best = cands[i];
        res.best_seconds = secs;
      }
    }

    // Thread-count axis: time the winning tile configuration at half the
    // workers. Fewer threads can win when split tiles get too narrow or the
    // machine's shared cache is oversubscribed.
    if (cfg.tune_threads && opt.threads > 1 &&
        budget.seconds() <= cfg.budget_seconds) {
      Candidate half = res.best;
      half.threads = opt.threads / 2;
      const double secs = time_candidate(half);
      res.all.push_back({half, secs});
      if (secs < res.best_seconds) {
        res.best = half;
        res.best_seconds = secs;
      }
    }

    // Affinity axis: re-time the winning configuration under each pinning
    // policy. Only worth probing when the topology is known and has more
    // than one CPU — on unknown topologies pinning degrades to unpinned,
    // so every policy would time the same thing.
    if (cfg.tune_affinity && system_topology().known &&
        system_topology().cpus.size() > 1 &&
        budget.seconds() <= cfg.budget_seconds) {
      for (AffinityPolicy p :
           {AffinityPolicy::None, AffinityPolicy::Compact,
            AffinityPolicy::Scatter}) {
        if (p == base.affinity) continue;  // the grid already timed this one
        Candidate c = res.best;
        c.affinity = static_cast<int>(p);
        const double secs = time_candidate(c);
        res.all.push_back({c, secs});
        if (secs < res.best_seconds) {
          res.best = c;
          res.best_seconds = secs;
        }
      }
    }

    // Wave-engine axes (src/wave): re-time the winner with each knob moved
    // off its base value, one at a time — the axes are near-independent
    // (NT stores trade RFO traffic, temporal unroll trades loads, teams
    // trade tile-width parallelism), so a coordinate sweep recovers most of
    // the joint optimum at a fraction of the grid cost. Each probe sticks
    // only if it wins.
    if (cfg.tune_wave && budget.seconds() <= cfg.budget_seconds) {
      auto probe = [&](Candidate c) {
        if (budget.seconds() > cfg.budget_seconds) return;
        const double secs = time_candidate(c);
        res.all.push_back({c, secs});
        if (secs < res.best_seconds) {
          res.best = c;
          res.best_seconds = secs;
        }
      };
      {
        Candidate c = res.best;
        c.nt_stores = base.nt_stores ? 0 : 1;
        probe(c);
      }
      for (int u : {1, 2, 4}) {
        if (u == (base.unroll_t == 0 ? 4 : base.unroll_t)) continue;
        Candidate c = res.best;
        c.unroll_t = u;
        probe(c);
      }
      {
        // Temporal vectorization only matters where a fused chain forms, so
        // probe it after the unroll axis settled (it rides on the winner).
        Candidate c = res.best;
        c.temporal_vec = base.temporal_vec ? 0 : 1;
        probe(c);
      }
      if (d.dims == 3 && opt.threads > 1) {
        for (int ts : {2, 4}) {
          if (ts > opt.threads || ts == base.team_size) continue;
          Candidate c = res.best;
          c.team_size = ts;
          probe(c);
        }
      }
      // MWD group-width axis: pooling g threads on one diamond trades tube
      // parallelism for sqrt(g) wider diamonds (core/mwd.hpp). Only widths
      // that tile the worker pool are legal (mwd_group_width), and the knob
      // only matters when the candidate runs Scheme::Mwd — so probe it on
      // an explicit MWD switch of the winner.
      if (d.dims >= 2 && opt.threads > 1) {
        for (int gw : {2, 4}) {
          if (gw > opt.threads || opt.threads % gw != 0) continue;
          Candidate c = res.best;
          c.scheme = Scheme::Mwd;
          c.tz = 0;
          c.bx = 0;
          c.bz = 0;  // re-derive via Eq. 2 at the pooled budget Z*gw
          c.mwd_group = gw;
          probe(c);
        }
      }
      for (int pf : {0, 8}) {
        if (pf == base.prefetch_dist) continue;
        Candidate c = res.best;
        c.prefetch_dist = pf;
        probe(c);
      }
    }

    res.key.machine = bench::machine_fingerprint();
    res.key.kernel = kernel_tuning_id(k0);
    res.key.scheme_key = "auto";
    res.key.shape = shape_bucket(d);
    res.key.threads = opt.threads;
  }

  res.entry.scheme = candidate_scheme_name(res.best);
  res.entry.tz = res.best.tz;
  res.entry.bz = res.best.bz;
  res.entry.bx = res.best.bx;
  res.entry.run_threads = res.best.threads;
  res.entry.affinity =
      res.best.affinity < 0
          ? ""
          : affinity_policy_name(static_cast<AffinityPolicy>(res.best.affinity));
  res.entry.nt_stores = res.best.nt_stores;
  res.entry.unroll_t = res.best.unroll_t;
  res.entry.temporal_vec = res.best.temporal_vec;
  res.entry.team_size = res.best.team_size;
  res.entry.mwd_group = res.best.mwd_group;
  res.entry.prefetch_dist = res.best.prefetch_dist;
  res.entry.pilot_seconds = res.best_seconds;
  res.entry.analytic_seconds = res.analytic_seconds;
  res.entry.cache_bytes = base.cache_bytes;
  res.entry.cs_slack = base.cs_slack;
  return res;
}

/// search() + persist: stores the winner under its key in the DB at `path`
/// (default_path() when empty), saves the file and invalidates the run-time
/// lookup cache so the very next UseDb run sees it. Returns the result.
template <class MakeKernel>
TuneResult search_and_store(MakeKernel&& make, int T, const RunOptions& base,
                            std::string path = {}, const TuneConfig& cfg = {}) {
  if (path.empty())
    path = base.tuning_db_path ? base.tuning_db_path : TuneDb::default_path();
  TuneResult res = search(make, T, base, cfg);
  TuneDb db;
  db.load(path);  // merge with existing entries; a corrupt file starts fresh
  db.put(res.key, res.entry);
  db.save(path);
  invalidate_cache();
  return res;
}

}  // namespace cats::tune
