#include "tune/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cats::tune {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key, std::string dflt) const {
  const JsonValue* v = get(key);
  return v && v->kind == Kind::String ? v->str : dflt;
}

double JsonValue::get_number(std::string_view key, double dflt) const {
  const JsonValue* v = get(key);
  return v && v->kind == Kind::Number ? v->number : dflt;
}

long long JsonValue::get_int(std::string_view key, long long dflt) const {
  const JsonValue* v = get(key);
  return v && v->kind == Kind::Number ? static_cast<long long>(v->number) : dflt;
}

namespace {

// Recursive-descent parser over [p, end). Depth-limited so a malicious file
// cannot blow the stack.
struct Parser {
  const char* p;
  const char* end;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool literal(std::string_view lit) {
    if (static_cast<std::size_t>(end - p) < lit.size()) return false;
    if (std::string_view(p, lit.size()) != lit) return false;
    p += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p >= end) return false;
      char e = *p++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the BMP code point (surrogate pairs degrade to two
          // 3-byte sequences; the tuning DB only stores ASCII in practice).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (p >= end) return false;
    bool ok = false;
    switch (*p) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.kind = JsonValue::Kind::String;
        ok = parse_string(out.str);
        break;
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::Null;
        ok = literal("null");
        break;
      default: ok = parse_number(out); break;
    }
    --depth;
    return ok;
  }

  bool parse_number(JsonValue& out) {
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool digits = false;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' ||
                       *p == 'e' || *p == 'E' || *p == '-' || *p == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p));
      ++p;
    }
    if (!digits) return false;
    out.kind = JsonValue::Kind::Number;
    out.number = std::strtod(std::string(start, p).c_str(), nullptr);
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++p;  // '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++p;  // '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p >= end || *p != ':') return false;
      ++p;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  return parser.p == parser.end;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) { return '"' + json_escape(s) + '"'; }

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace cats::tune
