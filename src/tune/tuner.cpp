#include "tune/tuner.hpp"

#include <algorithm>

namespace cats::tune {

namespace {

// Scaling factors probed around each analytic parameter. Asymmetric toward
// smaller tiles: the analytic formulas assume the whole nominal cache is
// usable, so real machines more often want smaller, not larger, tiles.
constexpr double kFactors[] = {1.0, 0.5, 0.7, 1.4, 2.0};

void push_unique(std::vector<Candidate>& out, const Candidate& c) {
  for (const Candidate& e : out) {
    if (e.scheme == c.scheme && e.tz == c.tz && e.bz == c.bz &&
        e.bx == c.bx && e.affinity == c.affinity &&
        e.nt_stores == c.nt_stores && e.unroll_t == c.unroll_t &&
        e.temporal_vec == c.temporal_vec && e.team_size == c.team_size &&
        e.mwd_group == c.mwd_group && e.prefetch_dist == c.prefetch_dist)
      return;
  }
  out.push_back(c);
}

}  // namespace

std::vector<Candidate> neighborhood(const SchemeChoice& seed,
                                    const DomainShape& d, int slope, int T,
                                    const TuneConfig& cfg) {
  std::vector<Candidate> out;
  const std::int64_t min_bz = 2 * slope;

  switch (seed.scheme) {
    case Scheme::Cats1: {
      for (double f : kFactors) {
        const int tz = std::clamp(static_cast<int>(seed.tz * f + 0.5), 1, T);
        push_unique(out, {Scheme::Cats1, tz, 0, 0});
      }
      if (cfg.cross_scheme && d.dims >= 2) {
        // The rule of thumb picked CATS1; price the CATS2 diamond too.
        const std::int64_t bz =
            std::max<std::int64_t>(min_bz, 2ll * slope * seed.tz);
        push_unique(out, {Scheme::Cats2, 0, bz, 0});
      }
      break;
    }
    case Scheme::Cats2: {
      for (double f : kFactors) {
        const auto bz = std::max<std::int64_t>(
            min_bz, static_cast<std::int64_t>(seed.bz * f + 0.5));
        push_unique(out, {Scheme::Cats2, 0, bz, 0});
      }
      if (cfg.cross_scheme) {
        // A diamond spanning BZ/(2s) timesteps corresponds to a CATS1 chunk
        // of that height; cheap to check whether skipping the split tiling
        // pays on this shape.
        const int tz = std::clamp(
            static_cast<int>(seed.bz / std::max(1ll, 2ll * slope)), 1, T);
        push_unique(out, {Scheme::Cats1, tz, 0, 0});
      }
      break;
    }
    case Scheme::Cats3: {
      for (double f : kFactors) {
        const auto bz = std::max<std::int64_t>(
            min_bz, static_cast<std::int64_t>(seed.bz * f + 0.5));
        push_unique(out, {Scheme::Cats3, 0, bz, bz});
      }
      // Decouple BX from BZ around the balanced point.
      for (double f : {0.5, 2.0}) {
        const auto bx = std::max<std::int64_t>(
            min_bz, static_cast<std::int64_t>(seed.bx * f + 0.5));
        push_unique(out, {Scheme::Cats3, 0, seed.bz, bx});
      }
      if (cfg.cross_scheme) {
        push_unique(out,
                    {Scheme::Cats2, 0, std::max<std::int64_t>(min_bz, seed.bz), 0});
      }
      break;
    }
    case Scheme::Naive:
    default:
      // Degenerate seeds (tiny cache): try naive plus minimal tiles.
      push_unique(out, {Scheme::Naive, 0, 0, 0});
      push_unique(out, {Scheme::Cats1, std::min(2, T), 0, 0});
      if (d.dims >= 2) push_unique(out, {Scheme::Cats2, 0, min_bz, 0});
      break;
  }
  return out;
}

RunOptions options_for_candidate(const RunOptions& base, const Candidate& c) {
  RunOptions o = base;
  o.tuning = Tuning::Off;
  o.scheme = c.scheme;
  o.tz_override = c.tz;
  o.bz_override = static_cast<int>(c.bz);
  o.bx_override = static_cast<int>(c.bx);
  if (c.threads > 0) o.threads = c.threads;
  if (c.affinity >= 0) o.affinity = static_cast<AffinityPolicy>(c.affinity);
  if (c.nt_stores >= 0) o.nt_stores = c.nt_stores != 0;
  if (c.unroll_t >= 0) o.unroll_t = c.unroll_t;
  if (c.temporal_vec >= 0) o.temporal_vec = c.temporal_vec != 0;
  if (c.team_size > 0) o.team_size = c.team_size;
  if (c.mwd_group > 0) o.mwd_group = c.mwd_group;
  if (c.prefetch_dist >= 0) o.prefetch_dist = c.prefetch_dist;
  return o;
}

const char* candidate_scheme_name(const Candidate& c) {
  switch (c.scheme) {
    case Scheme::Naive: return "Naive";
    case Scheme::Cats1: return "CATS1";
    case Scheme::Cats2: return "CATS2";
    case Scheme::Cats3: return "CATS3";
    case Scheme::Mwd: return "MWD";
    default: return "?";
  }
}

}  // namespace cats::tune
