#pragma once
// Cache-oblivious baseline: Frigo-Strassen trapezoid decomposition.
//
// The paper's related work contrasts CATS against three optimizer families:
// multi-dimensional tiling (the PluTo-like baseline), wavefront schemes
// (CATS itself), and hierarchical *cache-oblivious* recursion. This is the
// third: the classic serial trapezoid walk applied to the traversal
// dimension (full unit-stride rows, like CATS), recursively space-cutting
// wide trapezoids along slope-s lines and time-cutting tall ones, so every
// level of the memory hierarchy is exploited without knowing its size.
//
// Serial by design — the point of comparison is locality, and the paper's
// CATS argument is exactly that the oblivious recursion's hierarchical
// sub-tiling is unnecessary when one sizes a single wavefront to the last
// private cache level.

#include <cstdint>

#include "check/oracle.hpp"
#include "core/stencil.hpp"

namespace cats {
namespace detail {

/// Walk the trapezoid {(p, t): t0 <= t < t1,
///   p0 + (t-t0)*dp0 <= p < p1 + (t-t0)*dp1} with |dp| <= s, calling
/// Slice(t, p) in an order that respects slope-s dependencies
/// (Frigo & Strassen's walk2).
template <class Slice>
void trapezoid_walk(std::int64_t t0, std::int64_t t1, std::int64_t p0,
                    std::int64_t dp0, std::int64_t p1, std::int64_t dp1,
                    int s, Slice&& slice) {
  const std::int64_t dt = t1 - t0;
  if (dt == 1) {
    for (std::int64_t p = p0; p < p1; ++p)
      slice(static_cast<int>(t0), static_cast<int>(p));
    return;
  }
  if (dt <= 0) return;
  if (2 * (p1 - p0) + (dp1 - dp0) * dt >= 4 * static_cast<std::int64_t>(s) * dt) {
    // Wide: space cut along a slope -s line through the center.
    const std::int64_t pm =
        (2 * (p0 + p1) + (2 * s + dp0 + dp1) * dt) / 4;
    trapezoid_walk(t0, t1, p0, dp0, pm, -s, s, slice);
    trapezoid_walk(t0, t1, pm, -s, p1, dp1, s, slice);
  } else {
    // Tall: time cut.
    const std::int64_t half = dt / 2;
    trapezoid_walk(t0, t0 + half, p0, dp0, p1, dp1, s, slice);
    trapezoid_walk(t0 + half, t1, p0 + dp0 * half, dp0, p1 + dp1 * half, dp1,
                   s, slice);
  }
}

}  // namespace detail

template <RowKernel1D K>
void run_cache_oblivious(K& k, int T, check::DepOracle* oracle = nullptr) {
  const check::ScopedOracleThread oracle_bind(oracle, 0);
  detail::trapezoid_walk(1, T + 1, 0, 0, k.width(), 0, k.slope(),
                         [&](int t, int x) {
                           check::note_row(t, 0, 0, x, x + 1);
                           k.process_row(t, x, x + 1);
                         });
}

template <RowKernel2D K>
void run_cache_oblivious(K& k, int T, check::DepOracle* oracle = nullptr) {
  const check::ScopedOracleThread oracle_bind(oracle, 0);
  const int W = k.width();
  detail::trapezoid_walk(1, T + 1, 0, 0, k.height(), 0, k.slope(),
                         [&](int t, int y) {
                           check::note_row(t, y, 0, 0, W);
                           k.process_row(t, y, 0, W);
                         });
}

template <RowKernel3D K>
void run_cache_oblivious(K& k, int T, check::DepOracle* oracle = nullptr) {
  const check::ScopedOracleThread oracle_bind(oracle, 0);
  const int W = k.width(), H = k.height();
  detail::trapezoid_walk(1, T + 1, 0, 0, k.depth(), 0, k.slope(),
                         [&](int t, int z) {
                           for (int y = 0; y < H; ++y) {
                             check::note_row(t, y, z, 0, W);
                             k.process_row(t, y, z, 0, W);
                           }
                         });
}

}  // namespace cats
