#pragma once
// PluTo-like baseline: classic multi-dimensional time skewing.
//
// Stand-in for the code PluTo 0.4.2 generates for these stencil nests (the
// real polyhedral tool is not available offline; see DESIGN.md §5). The
// transformation PluTo applies to a Jacobi nest is:
//   * skew every spatial dimension by s*t,
//   * tile all dimensions including time with rectangular tiles,
//   * run tiles on the same skewed hyperplane (sum of spatial tile indices)
//     in parallel, with a barrier between hyperplanes, time-tile bands
//     sequential.
// The inner loops stay scalar source (kernel process_row_scalar) and rely on
// compiler auto-vectorization, matching the paper's note that the generated
// code is not hand-vectorized.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baseline/pluto_params.hpp"
#include "check/oracle.hpp"
#include "core/geometry.hpp"
#include "core/options.hpp"
#include "core/stencil.hpp"
#include "threads/barrier.hpp"
#include "threads/thread_pool.hpp"

namespace cats {

/// 1D: skewed rectangular (t, x') tiles. Each hyperplane holds a single tile,
/// so the transformed 1D nest is effectively a serial pipeline — an honest
/// representation of what rectangular time tiling offers a 1D Jacobi nest.
template <RowKernel1D K>
void run_pluto_like(K& k, int T, const RunOptions& opt) {
  const check::ScopedOracleThread oracle_bind(opt.oracle, 0);
  const PlutoParams prm = pluto_params();
  const int W = k.width(), s = k.slope();
  const int Bt = prm.bt2, Bj = prm.bx2;
  for (int tb = 0; tb * Bt < T; ++tb) {
    const int t_lo = tb * Bt + 1;
    const int t_hi = std::min((tb + 1) * Bt, T);
    const std::int64_t jp_lo = static_cast<std::int64_t>(s) * t_lo;
    const std::int64_t jp_hi = W - 1 + static_cast<std::int64_t>(s) * t_hi;
    for (std::int64_t tj = floor_div(jp_lo, Bj); tj <= floor_div(jp_hi, Bj); ++tj) {
      for (int t = t_lo; t <= t_hi; ++t) {
        const std::int64_t st = static_cast<std::int64_t>(s) * t;
        const std::int64_t x0 = std::max<std::int64_t>(tj * Bj - st, 0);
        const std::int64_t x1 = std::min<std::int64_t>((tj + 1) * Bj - st, W);
        if (x0 < x1) {
          check::note_row(t, 0, 0, static_cast<int>(x0), static_cast<int>(x1));
          k.process_row_scalar(t, static_cast<int>(x0), static_cast<int>(x1));
        }
      }
    }
  }
}

template <RowKernel2D K>
void run_pluto_like(K& k, int T, const RunOptions& opt) {
  const PlutoParams prm = pluto_params();
  const int W = k.width(), H = k.height(), s = k.slope();
  const int Bt = prm.bt2, Bi = prm.by2, Bj = prm.bx2;
  const int P = std::max(1, opt.threads);
  ThreadPool pool(P, opt.affinity);
  SpinBarrier bar(P);

  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    for (int tb = 0; tb * Bt < T; ++tb) {
      const int t_lo = tb * Bt + 1;
      const int t_hi = std::min((tb + 1) * Bt, T);
      // Skewed coordinate ranges in this time band.
      const std::int64_t ip_lo = 0 + static_cast<std::int64_t>(s) * t_lo;
      const std::int64_t ip_hi = H - 1 + static_cast<std::int64_t>(s) * t_hi;
      const std::int64_t jp_lo = 0 + static_cast<std::int64_t>(s) * t_lo;
      const std::int64_t jp_hi = W - 1 + static_cast<std::int64_t>(s) * t_hi;
      const std::int64_t ti_lo = floor_div(ip_lo, Bi), ti_hi = floor_div(ip_hi, Bi);
      const std::int64_t tj_lo = floor_div(jp_lo, Bj), tj_hi = floor_div(jp_hi, Bj);

      for (std::int64_t d = ti_lo + tj_lo; d <= ti_hi + tj_hi; ++d) {
        // Tiles on this hyperplane run in parallel.
        std::int64_t slot = 0;
        for (std::int64_t ti = std::max(ti_lo, d - tj_hi);
             ti <= std::min(ti_hi, d - tj_lo); ++ti, ++slot) {
          if (slot % P != tid) continue;
          const std::int64_t tj = d - ti;
          for (int t = t_lo; t <= t_hi; ++t) {
            const std::int64_t st = static_cast<std::int64_t>(s) * t;
            const std::int64_t y0 = std::max<std::int64_t>(ti * Bi - st, 0);
            const std::int64_t y1 = std::min<std::int64_t>((ti + 1) * Bi - st, H);
            const std::int64_t x0 = std::max<std::int64_t>(tj * Bj - st, 0);
            const std::int64_t x1 = std::min<std::int64_t>((tj + 1) * Bj - st, W);
            if (x0 >= x1) continue;
            for (std::int64_t y = y0; y < y1; ++y) {
              check::note_row(t, static_cast<int>(y), 0, static_cast<int>(x0),
                              static_cast<int>(x1));
              k.process_row_scalar(t, static_cast<int>(y),
                                   static_cast<int>(x0), static_cast<int>(x1));
            }
          }
        }
        bar.arrive_and_wait();
      }
    }
  });
}

template <RowKernel3D K>
void run_pluto_like(K& k, int T, const RunOptions& opt) {
  const PlutoParams prm = pluto_params();
  const int W = k.width(), H = k.height(), D = k.depth(), s = k.slope();
  const int Bt = prm.bt3, Bz = prm.bz3, Bi = prm.by3, Bj = prm.bx3;
  const int P = std::max(1, opt.threads);
  ThreadPool pool(P, opt.affinity);
  SpinBarrier bar(P);

  pool.run([&](int tid) {
    const check::ScopedOracleThread oracle_bind(opt.oracle, tid);
    for (int tb = 0; tb * Bt < T; ++tb) {
      const int t_lo = tb * Bt + 1;
      const int t_hi = std::min((tb + 1) * Bt, T);
      const std::int64_t sp_lo = static_cast<std::int64_t>(s) * t_lo;
      const std::int64_t zp_lo = sp_lo, zp_hi = D - 1 + static_cast<std::int64_t>(s) * t_hi;
      const std::int64_t ip_lo = sp_lo, ip_hi = H - 1 + static_cast<std::int64_t>(s) * t_hi;
      const std::int64_t jp_lo = sp_lo, jp_hi = W - 1 + static_cast<std::int64_t>(s) * t_hi;
      const std::int64_t tz_lo = floor_div(zp_lo, Bz), tz_hi = floor_div(zp_hi, Bz);
      const std::int64_t ti_lo = floor_div(ip_lo, Bi), ti_hi = floor_div(ip_hi, Bi);
      const std::int64_t tj_lo = floor_div(jp_lo, Bj), tj_hi = floor_div(jp_hi, Bj);

      for (std::int64_t d = tz_lo + ti_lo + tj_lo; d <= tz_hi + ti_hi + tj_hi; ++d) {
        std::int64_t slot = 0;
        for (std::int64_t tz = tz_lo; tz <= tz_hi; ++tz) {
          for (std::int64_t ti = std::max(ti_lo, d - tz - tj_hi);
               ti <= std::min(ti_hi, d - tz - tj_lo); ++ti, ++slot) {
            if (slot % P != tid) continue;
            const std::int64_t tj = d - tz - ti;
            for (int t = t_lo; t <= t_hi; ++t) {
              const std::int64_t st = static_cast<std::int64_t>(s) * t;
              const std::int64_t z0 = std::max<std::int64_t>(tz * Bz - st, 0);
              const std::int64_t z1 = std::min<std::int64_t>((tz + 1) * Bz - st, D);
              const std::int64_t y0 = std::max<std::int64_t>(ti * Bi - st, 0);
              const std::int64_t y1 = std::min<std::int64_t>((ti + 1) * Bi - st, H);
              const std::int64_t x0 = std::max<std::int64_t>(tj * Bj - st, 0);
              const std::int64_t x1 = std::min<std::int64_t>((tj + 1) * Bj - st, W);
              if (x0 >= x1) continue;
              for (std::int64_t z = z0; z < z1; ++z)
                for (std::int64_t y = y0; y < y1; ++y) {
                  check::note_row(t, static_cast<int>(y), static_cast<int>(z),
                                  static_cast<int>(x0), static_cast<int>(x1));
                  k.process_row_scalar(t, static_cast<int>(y), static_cast<int>(z),
                                       static_cast<int>(x0), static_cast<int>(x1));
                }
            }
          }
        }
        bar.arrive_and_wait();
      }
    }
  });
}

}  // namespace cats
