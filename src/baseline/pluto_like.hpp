#pragma once
// PluTo-like baseline: classic multi-dimensional time skewing.
//
// Stand-in for the code PluTo 0.4.2 generates for these stencil nests (the
// real polyhedral tool is not available offline; see DESIGN.md §5). The
// transformation PluTo applies to a Jacobi nest is:
//   * skew every spatial dimension by s*t,
//   * tile all dimensions including time with rectangular tiles,
//   * run tiles on the same skewed hyperplane (sum of spatial tile indices)
//     in parallel, with a barrier between hyperplanes, time-tile bands
//     sequential.
// The inner loops stay scalar source (kernel process_row_scalar) and rely on
// compiler auto-vectorization, matching the paper's note that the generated
// code is not hand-vectorized.
//
// The skewed rectangular tiles, hyperplane phases and barriers are emitted
// as a TilePlan (plan/emit.cpp, emit_pluto) and walked with the scalar row
// path. The 1D nest emits a single-thread plan (each hyperplane holds one
// tile, so rectangular time tiling offers a 1D Jacobi nest no parallelism).

#include "core/options.hpp"
#include "core/stencil.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"

namespace cats {

template <RowKernel1D K>
void run_pluto_like(K& k, int T, const RunOptions& opt) {
  const plan_ir::TilePlan p =
      plan_ir::emit_pluto(1, k.width(), 1, 1, T, k.slope(), opt.threads);
  plan_ir::run_plan<true>(k, p, opt);
}

template <RowKernel2D K>
void run_pluto_like(K& k, int T, const RunOptions& opt) {
  const plan_ir::TilePlan p = plan_ir::emit_pluto(
      2, k.width(), k.height(), 1, T, k.slope(), opt.threads);
  plan_ir::run_plan<true>(k, p, opt);
}

template <RowKernel3D K>
void run_pluto_like(K& k, int T, const RunOptions& opt) {
  const plan_ir::TilePlan p = plan_ir::emit_pluto(
      3, k.width(), k.height(), k.depth(), T, k.slope(), opt.threads);
  plan_ir::run_plan<true>(k, p, opt);
}

}  // namespace cats
