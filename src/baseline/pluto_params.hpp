#pragma once
// Tile-size parameters for the PluTo-like baseline (see pluto_like.hpp).

namespace cats {

struct PlutoParams {
  // 2D: (time, y, x) tile sizes after skewing.
  int bt2 = 32, by2 = 32, bx2 = 64;
  // 3D: (time, z, y, x) tile sizes after skewing.
  int bt3 = 8, bz3 = 16, by3 = 16, bx3 = 64;
};

/// Defaults mirror PluTo 0.4.x conventions (32-ish tiles in every skewed
/// dimension, a wider unit-stride tile so auto-vectorization is not starved);
/// overridable via the environment variable CATS_PLUTO_TILES="bt,by,bx" /
/// "bt,bz,by,bx" for ablation runs.
PlutoParams pluto_params();

}  // namespace cats
