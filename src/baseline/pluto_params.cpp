#include "baseline/pluto_params.hpp"

#include <cstdlib>
#include <cstdio>

namespace cats {

PlutoParams pluto_params() {
  PlutoParams p;
  if (const char* env = std::getenv("CATS_PLUTO_TILES")) {
    int a = 0, b = 0, c = 0, d = 0;
    const int n = std::sscanf(env, "%d,%d,%d,%d", &a, &b, &c, &d);
    if (n == 3 && a > 0 && b > 0 && c > 0) {
      p.bt2 = a; p.by2 = b; p.bx2 = c;
    } else if (n == 4 && a > 0 && b > 0 && c > 0 && d > 0) {
      p.bt3 = a; p.bz3 = b; p.by3 = c; p.bx3 = d;
    }
  }
  return p;
}

}  // namespace cats
