// Master 3D integration tests: bit-exact equivalence with the serial
// reference for every scheme, including the CATS1->CATS2 fallback regime.

#include <gtest/gtest.h>

#include <tuple>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/literature.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

template <int S>
std::vector<double> reference_const3d(int W, int H, int D, int T) {
  ConstStar3D<S> k(W, H, D, default_star3d_weights<S>());
  k.init(cats::test::init3d, -0.125);
  run_reference(k, T);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

template <int S>
std::vector<double> scheme_const3d(int W, int H, int D, int T,
                                   const RunOptions& opt) {
  ConstStar3D<S> k(W, H, D, default_star3d_weights<S>());
  k.init(cats::test::init3d, -0.125);
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

using SweepParam = std::tuple<Scheme, int, std::tuple<int, int, int, int>, int>;

class Schemes3DSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Schemes3DSweep, BitExactVsReference) {
  const auto [scheme, threads, shape, cache_kib] = GetParam();
  const auto [W, H, D, T] = shape;
  RunOptions opt;
  opt.scheme = scheme;
  opt.threads = threads;
  opt.cache_bytes = static_cast<std::size_t>(cache_kib) * 1024;
  const auto want = reference_const3d<1>(W, H, D, T);
  const auto got = scheme_const3d<1>(W, H, D, T, opt);
  expect_bit_equal(got, want, scheme_name(scheme));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, Schemes3DSweep,
    ::testing::Combine(
        ::testing::Values(Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                          Scheme::PlutoLike, Scheme::Auto),
        ::testing::Values(1, 4),
        ::testing::Values(std::tuple{17, 13, 11, 6},   // odd everything
                          std::tuple{32, 32, 32, 12},  // cube
                          std::tuple{24, 9, 40, 9}),   // long traversal dim
        ::testing::Values(8, 128)));

TEST(Schemes3D, HigherSlopes) {
  RunOptions opt;
  opt.threads = 3;
  opt.cache_bytes = 64 * 1024;
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2, Scheme::PlutoLike}) {
    opt.scheme = s;
    expect_bit_equal(scheme_const3d<2>(21, 17, 15, 6, opt),
                     reference_const3d<2>(21, 17, 15, 6), "slope2-3d");
  }
}

TEST(Schemes3D, AutoLeavesCats1WhenSlicesExceedCache) {
  // 48x48 slices of doubles = 18KiB each; a 16KiB cache cannot hold a single
  // timestep of the CATS1 wavefront, so Auto must move past CATS1 — here all
  // the way to CATS3 (the CATS2 diamond would span < 10 timesteps too) — and
  // stay correct.
  RunOptions opt;
  opt.threads = 2;
  opt.cache_bytes = 16 * 1024;
  ConstStar3D<1> k(48, 48, 48, default_star3d_weights<1>());
  k.init(cats::test::init3d);
  const SchemeChoice c = plan(k, 20, opt);
  EXPECT_TRUE(c.scheme == Scheme::Cats2 || c.scheme == Scheme::Cats3);
  expect_bit_equal(scheme_const3d<1>(48, 48, 48, 20, opt),
                   reference_const3d<1>(48, 48, 48, 20), "auto-beyond-cats1");

  // With a roomier cache the CATS2 diamond is deep enough and Auto stops there.
  opt.cache_bytes = 256 * 1024;
  EXPECT_EQ(plan(k, 20, opt).scheme, Scheme::Cats2);
}

TEST(Schemes3D, Cats3BitExactAcrossTileWidths) {
  const auto want = reference_const3d<1>(26, 22, 24, 9);
  RunOptions opt;
  opt.scheme = Scheme::Cats3;
  for (int threads : {1, 4}) {
    opt.threads = threads;
    for (int bz : {4, 8, 64}) {
      for (int bx : {2, 6, 100}) {
        opt.bz_override = bz;
        opt.bx_override = bx;
        expect_bit_equal(scheme_const3d<1>(26, 22, 24, 9, opt), want, "cats3");
      }
    }
  }
}

TEST(Schemes3D, Cats3HigherSlopeAndBanded) {
  RunOptions opt;
  opt.scheme = Scheme::Cats3;
  opt.threads = 3;
  opt.cache_bytes = 8 * 1024;
  expect_bit_equal(scheme_const3d<2>(21, 17, 15, 6, opt),
                   reference_const3d<2>(21, 17, 15, 6), "cats3-slope2");

  Banded3D<1> ref(19, 15, 13);
  ref.init(cats::test::init3d, 0.0);
  ref.init_bands(cats::test::band_coeff3);
  run_reference(ref, 8);
  std::vector<double> want;
  ref.copy_result_to(want, 8);
  Banded3D<1> k(19, 15, 13);
  k.init(cats::test::init3d, 0.0);
  k.init_bands(cats::test::band_coeff3);
  run(k, 8, opt);
  std::vector<double> got;
  k.copy_result_to(got, 8);
  expect_bit_equal(got, want, "cats3-banded");
}

TEST(Schemes3D, BandedMatrixAllSchemes) {
  auto make = [](Banded3D<1>& k) {
    k.init(cats::test::init3d, 0.0);
    k.init_bands(cats::test::band_coeff3);
  };
  Banded3D<1> ref(19, 15, 13);
  make(ref);
  run_reference(ref, 8);
  std::vector<double> want;
  ref.copy_result_to(want, 8);

  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Auto}) {
    Banded3D<1> k(19, 15, 13);
    make(k);
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 4;
    opt.cache_bytes = 24 * 1024;
    run(k, 8, opt);
    std::vector<double> got;
    k.copy_result_to(got, 8);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

TEST(Schemes3D, LiteratureKernelsAllSchemes) {
  auto check = [](auto make_kernel, const char* label) {
    auto ref = make_kernel();
    run_reference(ref, 10);
    std::vector<double> want;
    ref.copy_result_to(want, 10);
    for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                     Scheme::PlutoLike}) {
      auto k = make_kernel();
      RunOptions opt;
      opt.scheme = s;
      opt.threads = 2;
      opt.cache_bytes = 32 * 1024;
      run(k, 10, opt);
      std::vector<double> got;
      k.copy_result_to(got, 10);
      expect_bit_equal(got, want, label);
    }
  };
  check([] {
    Laplace3D k(22, 18, 14, 0.4, 0.1);
    k.init(cats::test::init3d);
    return k;
  }, "laplace3d");
  check([] {
    Jacobi3D6 k(22, 18, 14, 0.0, 1.0 / 6.0);
    k.init(cats::test::init3d);
    return k;
  }, "jacobi3d6");
}

TEST(Schemes3D, DegenerateDiamondAndChunkSizes) {
  const auto want = reference_const3d<1>(20, 16, 18, 7);
  RunOptions opt;
  opt.threads = 2;
  opt.scheme = Scheme::Cats1;
  for (int tz : {1, 3, 7, 50}) {
    opt.tz_override = tz;
    expect_bit_equal(scheme_const3d<1>(20, 16, 18, 7, opt), want, "tz-3d");
  }
  opt.scheme = Scheme::Cats2;
  opt.tz_override = 0;
  for (int bz : {2, 5, 16, 400}) {
    opt.bz_override = bz;
    expect_bit_equal(scheme_const3d<1>(20, 16, 18, 7, opt), want, "bz-3d");
  }
}
