// 1D integration tests: naive / CATS1 / PluTo-like on 1D star stencils.
// The paper: 1D domains always use CATS1 (CATS0 would be the naive scheme).

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/const1d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

template <int S>
typename ConstStar1D<S>::Weights weights_1d() {
  typename ConstStar1D<S>::Weights w;
  w.center = 0.5;
  for (int k = 0; k < S; ++k) {
    const auto i = static_cast<std::size_t>(k);
    w.xm[i] = 0.25 / S * 1.01;
    w.xp[i] = 0.25 / S * 0.99;
  }
  return w;
}

template <int S>
std::vector<double> reference_1d(int W, int T) {
  ConstStar1D<S> k(W, weights_1d<S>());
  k.init([](int x) { return cats::test::init2d(x, 3); }, 0.5);
  run_reference(k, T);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

template <int S>
std::vector<double> scheme_1d(int W, int T, const RunOptions& opt) {
  ConstStar1D<S> k(W, weights_1d<S>());
  k.init([](int x) { return cats::test::init2d(x, 3); }, 0.5);
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

TEST(Schemes1D, AllSchemesBitExact) {
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::PlutoLike,
                   Scheme::Auto}) {
    for (int threads : {1, 4}) {
      RunOptions opt;
      opt.scheme = s;
      opt.threads = threads;
      opt.cache_bytes = 4 * 1024;
      expect_bit_equal(scheme_1d<1>(501, 37, opt), reference_1d<1>(501, 37),
                       scheme_name(s));
    }
  }
}

TEST(Schemes1D, HigherSlope) {
  RunOptions opt;
  opt.threads = 3;
  opt.cache_bytes = 2 * 1024;
  for (Scheme s : {Scheme::Cats1, Scheme::PlutoLike}) {
    opt.scheme = s;
    expect_bit_equal(scheme_1d<3>(257, 21, opt), reference_1d<3>(257, 21),
                     scheme_name(s));
  }
}

TEST(Schemes1D, AutoAlwaysPicksCats1) {
  ConstStar1D<1> k(1 << 16, weights_1d<1>());
  k.init([](int x) { return 0.001 * x; });
  RunOptions opt;
  opt.cache_bytes = 1024;  // tiny: TZ formula < 10, but 1D never falls through
  const SchemeChoice c = plan(k, 100, opt);
  EXPECT_EQ(c.scheme, Scheme::Cats1);
  EXPECT_GE(c.tz, 1);
}

TEST(Schemes1D, Cats2RequestFallsBackToCats1) {
  RunOptions opt;
  opt.scheme = Scheme::Cats2;
  opt.threads = 2;
  expect_bit_equal(scheme_1d<1>(300, 15, opt), reference_1d<1>(300, 15),
                   "cats2-on-1d");
}

TEST(Schemes1D, DegenerateSizes) {
  RunOptions opt;
  opt.scheme = Scheme::Cats1;
  opt.threads = 8;  // more threads than useful tiles
  opt.tz_override = 5;
  expect_bit_equal(scheme_1d<1>(17, 23, opt), reference_1d<1>(17, 23),
                   "tiny-1d");
  expect_bit_equal(scheme_1d<1>(17, 1, opt), reference_1d<1>(17, 1), "T1-1d");
}
