// Cache model tests: LRU eviction, set mapping, counters.

#include <gtest/gtest.h>

#include "cachesim/cache_model.hpp"

using cats::CacheModel;

TEST(CacheModel, GeometryDerivedFromSizes) {
  CacheModel c(64 * 1024, 8, 64);
  EXPECT_EQ(c.size_bytes(), 64u * 1024);
  EXPECT_EQ(c.ways(), 8);
  EXPECT_EQ(c.line_bytes(), 64);
}

TEST(CacheModel, ColdMissThenHit) {
  CacheModel c(4096, 4, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheModel, LruEvictsOldest) {
  // 1 set x 2 ways x 64B line: the set holds two lines.
  CacheModel c(128, 2, 64);
  c.access(0 * 64);    // miss, {0}
  c.access(1 * 64);    // miss, {0,1}
  c.access(0 * 64);    // hit, 0 is now most recent
  c.access(2 * 64);    // miss, evicts 1
  EXPECT_TRUE(c.access(0 * 64));
  EXPECT_FALSE(c.access(1 * 64));  // was evicted
}

TEST(CacheModel, SetMappingSeparatesConflicts) {
  // 2 sets x 1 way: even lines -> set 0, odd -> set 1.
  CacheModel c(128, 1, 64);
  c.access(0);        // set 0
  c.access(64);       // set 1
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));
  c.access(128);      // set 0, evicts line 0
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(64));  // set 1 untouched
}

TEST(CacheModel, AccessRangeTouchesEveryLine) {
  CacheModel c(1 << 20, 16, 64);
  c.access_range(10, 300);  // spans lines 0..4 (bytes 10..309)
  EXPECT_EQ(c.misses(), 5u);
  c.access_range(10, 300);
  EXPECT_EQ(c.hits(), 5u);
  c.access_range(100, 0);  // empty range: no accesses
  EXPECT_EQ(c.accesses(), 10u);
}

TEST(CacheModel, StreamingWorkingSetLargerThanCacheAlwaysMisses) {
  CacheModel c(4096, 4, 64);  // 64 lines
  const int lines = 256;
  for (int pass = 0; pass < 3; ++pass)
    for (int l = 0; l < lines; ++l) c.access(static_cast<std::uint64_t>(l) * 64);
  // LRU + sequential sweep larger than capacity: every access misses.
  EXPECT_EQ(c.misses(), 3u * lines);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheModel, WorkingSetFitsAfterWarmup) {
  CacheModel c(4096, 4, 64);  // 64 lines
  for (int pass = 0; pass < 4; ++pass)
    for (int l = 0; l < 32; ++l) c.access(static_cast<std::uint64_t>(l) * 64);
  EXPECT_EQ(c.misses(), 32u);        // compulsory only
  EXPECT_EQ(c.hits(), 3u * 32);
}

TEST(CacheModel, FlushClearsContentsAndCounters) {
  CacheModel c(4096, 4, 64);
  c.access(0);
  c.access(0);
  c.flush();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0));
}

TEST(CacheModel, MissBytesCountsLines) {
  CacheModel c(4096, 4, 64);
  c.access(0);
  c.access(64);
  EXPECT_EQ(c.miss_bytes(), 128u);
}
