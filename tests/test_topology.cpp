// Topology parser vs canned sysfs fixture trees, pin-order policies, and
// ThreadPool's graceful degradation when pinning cannot be applied.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "sysinfo/topology.hpp"
#include "threads/thread_pool.hpp"

using namespace cats;
namespace fs = std::filesystem;

namespace {

/// Builds a sysfs-shaped tree under a fresh temp directory; removed on
/// destruction. write("cpu/online", "0-3") creates parents as needed.
class FixtureTree {
 public:
  FixtureTree() {
    root_ = fs::temp_directory_path() /
            ("cats_topo_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~FixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  FixtureTree(const FixtureTree&) = delete;
  FixtureTree& operator=(const FixtureTree&) = delete;

  void write(const std::string& rel, const std::string& contents) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << contents << "\n";
  }

  std::string path() const { return root_.string(); }

  /// One cpuN with its topology files.
  void add_cpu(int cpu, int core, int package) {
    const std::string dir = "cpu/cpu" + std::to_string(cpu) + "/topology/";
    write(dir + "core_id", std::to_string(core));
    write(dir + "physical_package_id", std::to_string(package));
  }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

void fill_single_socket_4core(FixtureTree& t) {
  t.write("cpu/online", "0-3");
  for (int c = 0; c < 4; ++c) t.add_cpu(c, c, 0);
}

// Dual socket, 2 cores per socket, SMT: Linux's usual enumeration has the
// first logical CPU of every core first (0-3), then the siblings (4-7).
void fill_dual_socket_smt(FixtureTree& t) {
  t.write("cpu/online", "0-7");
  for (int c = 0; c < 8; ++c) t.add_cpu(c, c % 2, (c / 2) % 2);
  t.write("node/node0/cpulist", "0-1,4-5");
  t.write("node/node1/cpulist", "2-3,6-7");
}

}  // namespace

TEST(ParseCpuList, RangesCommasAndJunk) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11\n"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpu_list(""), std::vector<int>{});
  EXPECT_EQ(parse_cpu_list("  2 , 1 "), (std::vector<int>{1, 2}));
}

TEST(ParseTopology, SingleSocketNoSmt) {
  FixtureTree t;
  fill_single_socket_4core(t);
  const Topology topo = parse_topology(t.path());
  ASSERT_TRUE(topo.known);
  EXPECT_EQ(topo.cpus.size(), 4u);
  EXPECT_EQ(topo.n_cores, 4);
  EXPECT_EQ(topo.n_packages, 1);
  EXPECT_EQ(topo.n_nodes, 1);  // no node dirs = one node
  EXPECT_FALSE(topo.smt);
  for (const CpuPlace& p : topo.cpus) EXPECT_FALSE(p.smt_sibling);
}

TEST(ParseTopology, DualSocketSmt) {
  FixtureTree t;
  fill_dual_socket_smt(t);
  const Topology topo = parse_topology(t.path());
  ASSERT_TRUE(topo.known);
  EXPECT_EQ(topo.cpus.size(), 8u);
  EXPECT_EQ(topo.n_cores, 4);
  EXPECT_EQ(topo.n_packages, 2);
  EXPECT_EQ(topo.n_nodes, 2);
  EXPECT_TRUE(topo.smt);
  // cpus 0-3 hit each (package, core) first; 4-7 revisit them as siblings.
  for (int c = 0; c < 4; ++c) EXPECT_FALSE(topo.cpus[c].smt_sibling) << c;
  for (int c = 4; c < 8; ++c) EXPECT_TRUE(topo.cpus[c].smt_sibling) << c;
  EXPECT_EQ(topo.cpus[0].node, 0);
  EXPECT_EQ(topo.cpus[2].node, 1);
}

TEST(ParseTopology, SmtOffLeavesGaps) {
  // SMT disabled at boot: only the first logical CPU of each core is online;
  // sibling ids simply never appear in the online list.
  FixtureTree t;
  t.write("cpu/online", "0-1,4-5");
  t.add_cpu(0, 0, 0);
  t.add_cpu(1, 1, 0);
  t.add_cpu(4, 0, 1);
  t.add_cpu(5, 1, 1);
  const Topology topo = parse_topology(t.path());
  ASSERT_TRUE(topo.known);
  EXPECT_EQ(topo.cpus.size(), 4u);
  EXPECT_EQ(topo.n_cores, 4);
  EXPECT_EQ(topo.n_packages, 2);
  EXPECT_FALSE(topo.smt);
}

TEST(ParseTopology, MissingTreeIsUnknown) {
  const Topology topo = parse_topology("/nonexistent/cats/fixture");
  EXPECT_FALSE(topo.known);
  EXPECT_TRUE(topo.cpus.empty());
  EXPECT_TRUE(topo.pin_order(AffinityPolicy::Compact, 4).empty());
  EXPECT_EQ(topology_string(topo), "unknown");
}

TEST(PinOrder, NonePolicyPinsNothing) {
  FixtureTree t;
  fill_single_socket_4core(t);
  const Topology topo = parse_topology(t.path());
  EXPECT_TRUE(topo.pin_order(AffinityPolicy::None, 4).empty());
}

TEST(PinOrder, CompactFillsCoresBeforeSiblings) {
  FixtureTree t;
  fill_dual_socket_smt(t);
  const Topology topo = parse_topology(t.path());
  // Compact order: node0's physical cores (cpus 0,1), then node1's (2,3),
  // and only then the SMT siblings in the same node/core order (4,5,6,7).
  EXPECT_EQ(topo.pin_order(AffinityPolicy::Compact, 8),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(topo.pin_order(AffinityPolicy::Compact, 3),
            (std::vector<int>{0, 1, 2}));
}

TEST(PinOrder, ScatterRoundRobinsNodes) {
  FixtureTree t;
  fill_dual_socket_smt(t);
  const Topology topo = parse_topology(t.path());
  // Scatter alternates nodes per slot so 2 threads use both memory
  // controllers; physical cores still come before any SMT sibling.
  EXPECT_EQ(topo.pin_order(AffinityPolicy::Scatter, 4),
            (std::vector<int>{0, 2, 1, 3}));
  EXPECT_EQ(topo.pin_order(AffinityPolicy::Scatter, 2),
            (std::vector<int>{0, 2}));
}

TEST(PinOrder, OversubscriptionWrapsAround) {
  FixtureTree t;
  fill_single_socket_4core(t);
  const Topology topo = parse_topology(t.path());
  const std::vector<int> order = topo.pin_order(AffinityPolicy::Compact, 6);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[4], order[0]);
  EXPECT_EQ(order[5], order[1]);
}

TEST(ThreadPoolPinning, BogusCpusDegradeToUnpinned) {
  // A topology whose CPU ids do not exist on this machine: every
  // pthread_setaffinity_np fails, the pool warns once and runs unpinned.
  Topology fake;
  fake.known = true;
  for (int i = 0; i < 2; ++i) {
    CpuPlace p;
    p.cpu = 100000 + i;  // > CPU_SETSIZE, guaranteed unpinnable
    p.core = i;
    fake.cpus.push_back(p);
  }
  fake.n_cores = 2;
  fake.n_packages = 1;

  ThreadPool pool(2, AffinityPolicy::Compact, &fake);
  std::atomic<int> hits{0};
  pool.run([&](int) { hits++; });
  EXPECT_EQ(hits.load(), 2);
  EXPECT_EQ(pool.pinned_count(), 0);
}

TEST(ThreadPoolPinning, UnknownTopologyRunsUnpinned) {
  Topology unknown;  // known == false
  ThreadPool pool(3, AffinityPolicy::Scatter, &unknown);
  std::atomic<int> hits{0};
  pool.run([&](int) { hits++; });
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(pool.pinned_count(), 0);
}

TEST(ThreadPoolPinning, SystemTopologyPinsWhenPossible) {
  // On any Linux machine with a readable /sys this should pin; elsewhere it
  // must still run every tid. Only the run contract is asserted
  // unconditionally.
  ThreadPool pool(2, AffinityPolicy::Compact);
  std::atomic<int> hits{0};
  pool.run([&](int) { hits++; });
  EXPECT_EQ(hits.load(), 2);
  EXPECT_GE(pool.pinned_count(), 0);
  EXPECT_LE(pool.pinned_count(), 2);
}
