// Geometry unit tests: skew arithmetic, CATS1 parallelogram decomposition,
// CATS2 diamond partition. These check exact coverage (every space-time cell
// in exactly one tile/diamond) and the dependency claims the schemes rely on.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/geometry.hpp"

using namespace cats;

TEST(FloorDiv, MatchesMathematicalFloor) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(0, 5), 0);
  EXPECT_EQ(floor_div(-1, 5), -1);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(Range, IntersectAndEmpty) {
  EXPECT_TRUE((Range{3, 2}).empty());
  EXPECT_FALSE((Range{3, 3}).empty());
  const Range r = intersect({0, 10}, {5, 20});
  EXPECT_EQ(r.lo, 5);
  EXPECT_EQ(r.hi, 10);
  EXPECT_TRUE(intersect({0, 4}, {5, 9}).empty());
}

namespace {

/// Every (p, tau) cell of the chunk appears in exactly one (tile, wavefront).
void check_cats1_coverage(int s, int tz, std::int64_t extent, int tiles) {
  const Cats1Chunk c{s, tz, extent, tiles};
  std::map<std::pair<std::int64_t, std::int64_t>, int> seen;
  for (int i = 0; i < tiles; ++i) {
    const Range ur = c.tile_u_range(i);
    std::int64_t prev_u = INT64_MIN;
    for (std::int64_t u = ur.lo; u <= ur.hi; ++u) {
      EXPECT_GT(u, prev_u);
      prev_u = u;
      const Range taus = c.tau_range(i, u);
      for (std::int64_t tau = taus.lo; tau <= taus.hi; ++tau) {
        const std::int64_t p = u - s * tau;
        ASSERT_GE(p, 0);
        ASSERT_LT(p, extent);
        ASSERT_GE(tau, 0);
        ASSERT_LT(tau, tz);
        ++seen[{p, tau}];
      }
    }
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(extent) * tz);
  for (const auto& [cell, count] : seen) EXPECT_EQ(count, 1)
      << "cell p=" << cell.first << " tau=" << cell.second;
}

}  // namespace

TEST(Cats1Chunk, CoversEveryCellOnce) {
  check_cats1_coverage(1, 5, 40, 3);
  check_cats1_coverage(1, 1, 17, 2);
  check_cats1_coverage(2, 4, 33, 4);
  check_cats1_coverage(3, 7, 50, 1);
  check_cats1_coverage(1, 12, 13, 5);  // chunk taller than tiles are wide
}

TEST(Cats1Chunk, TileWidthsEqualWithinOne) {
  const Cats1Chunk c{1, 10, 1000, 7};
  const std::int64_t span = c.extent - c.v_min();
  for (int i = 0; i < c.tiles; ++i) {
    const std::int64_t w = c.tile_v_lo(i + 1) - c.tile_v_lo(i);
    EXPECT_LE(std::abs(w - span / c.tiles), 1);
  }
  EXPECT_EQ(c.tile_v_lo(0), c.v_min());
  EXPECT_EQ(c.tile_v_lo(c.tiles), c.extent);
}

TEST(Cats1Chunk, DependenciesStayWithinRightNeighbor) {
  // For every computed cell, each stencil input at tau-1 must lie in the same
  // tile or the right neighbor at a wavefront <= u (the split-tiling wait
  // condition), never in the left neighbor.
  const int s = 2;
  const Cats1Chunk c{s, 6, 64, 4};
  auto tile_of = [&](std::int64_t v) {
    for (int i = 0; i < c.tiles; ++i)
      if (v >= c.tile_v_lo(i) && v < c.tile_v_lo(i + 1)) return i;
    return -1;
  };
  for (int i = 0; i < c.tiles; ++i) {
    const Range ur = c.tile_u_range(i);
    for (std::int64_t u = ur.lo; u <= ur.hi; ++u) {
      const Range taus = c.tau_range(i, u);
      for (std::int64_t tau = taus.lo; tau <= taus.hi; ++tau) {
        if (tau == 0) continue;
        const std::int64_t p = u - s * tau;
        for (int d = -s; d <= s; ++d) {
          const std::int64_t pp = p + d;
          if (pp < 0 || pp >= c.extent) continue;  // boundary value
          const std::int64_t up = pp + s * (tau - 1);
          const std::int64_t vp = pp - s * (tau - 1);
          EXPECT_LE(up, u);
          const int owner = tile_of(vp);
          ASSERT_GE(owner, 0);
          EXPECT_GE(owner, i);      // never the left neighbor
          EXPECT_LE(owner, i + 1);  // at most the right neighbor
        }
      }
    }
  }
}

TEST(DiamondTiling, PartitionsPlaneExactly) {
  for (int s : {1, 2, 3}) {
    for (std::int64_t bz : {2ll * s, 6ll, 10ll}) {
      if (bz < 2 * s) continue;
      const DiamondTiling dt{s, bz, 37, 1, 23};
      std::map<std::pair<std::int64_t, std::int64_t>, int> owner_count;
      const Range ir = dt.i_range(), jr = dt.j_range();
      for (std::int64_t i = ir.lo; i <= ir.hi; ++i) {
        for (std::int64_t j = jr.lo; j <= jr.hi; ++j) {
          const Range tr = dt.t_range(i, j);
          for (std::int64_t t = tr.lo; t <= tr.hi; ++t) {
            const Range pr = dt.p_range(i, j, t);
            for (std::int64_t p = pr.lo; p <= pr.hi; ++p) {
              ++owner_count[{p, t}];
              // The closed-form cell->diamond map agrees.
              EXPECT_EQ(dt.i_of(p, t), i);
              EXPECT_EQ(dt.j_of(p, t), j);
            }
          }
        }
      }
      ASSERT_EQ(owner_count.size(), static_cast<std::size_t>(37) * 23)
          << "s=" << s << " bz=" << bz;
      for (const auto& [cell, count] : owner_count) EXPECT_EQ(count, 1);
    }
  }
}

TEST(DiamondTiling, DependenciesGoToTheTwoDiamondsBelow) {
  const int s = 2;
  const DiamondTiling dt{s, 8, 50, 1, 20};
  for (std::int64_t p = 0; p < dt.extent; ++p) {
    for (std::int64_t t = dt.t_begin + 1; t <= dt.t_end; ++t) {
      const std::int64_t i = dt.i_of(p, t), j = dt.j_of(p, t);
      for (int d = -s; d <= s; ++d) {
        const std::int64_t pp = p + d;
        if (pp < 0 || pp >= dt.extent) continue;
        const std::int64_t id = dt.i_of(pp, t - 1), jd = dt.j_of(pp, t - 1);
        // Input lies in this diamond, (i-1, j), or (i, j+1) — nothing else.
        const bool same = (id == i && jd == j);
        const bool below_left = (id == i - 1 && jd == j);
        const bool below_right = (id == i && jd == j + 1);
        EXPECT_TRUE(same || below_left || below_right)
            << "p=" << p << " t=" << t << " d=" << d;
      }
    }
  }
}

TEST(DiamondTiling, RowIndexOrdersTime) {
  const DiamondTiling dt{1, 6, 30, 1, 18};
  // Cells in a higher diamond row never have a smaller t than every cell of
  // a lower row's diamond they depend on; sanity-check monotonicity of the
  // row -> min t mapping.
  std::map<std::int64_t, std::int64_t> row_min_t;
  const Range ir = dt.i_range(), jr = dt.j_range();
  for (std::int64_t i = ir.lo; i <= ir.hi; ++i)
    for (std::int64_t j = jr.lo; j <= jr.hi; ++j) {
      const Range tr = dt.t_range(i, j);
      if (tr.empty()) continue;
      const std::int64_t r = DiamondTiling::row_of(i, j);
      auto it = row_min_t.find(r);
      if (it == row_min_t.end() || tr.lo < it->second) row_min_t[r] = tr.lo;
    }
  std::int64_t prev = INT64_MIN;
  for (const auto& [r, tmin] : row_min_t) {
    EXPECT_GE(tmin, prev);
    prev = tmin;
  }
}

TEST(DiamondTiling, NonemptyMatchesEnumeration) {
  const DiamondTiling dt{1, 4, 9, 1, 7};
  const Range ir = dt.i_range(), jr = dt.j_range();
  for (std::int64_t i = ir.lo; i <= ir.hi; ++i)
    for (std::int64_t j = jr.lo; j <= jr.hi; ++j) {
      bool any = false;
      const Range tr = dt.t_range(i, j);
      for (std::int64_t t = tr.lo; t <= tr.hi; ++t)
        if (!dt.p_range(i, j, t).empty()) any = true;
      EXPECT_EQ(dt.nonempty(i, j), any);
    }
}
