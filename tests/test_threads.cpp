// Threading substrate tests: pool dispatch, barrier, progress cells.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "threads/barrier.hpp"
#include "threads/progress.hpp"
#include "threads/thread_pool.hpp"

using namespace cats;

TEST(ThreadPool, RunsEveryTidExactlyOnce) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int r = 0; r < 50; ++r) {
    pool.run([&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run([](int tid) {
        if (tid == 2) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPool, PropagatesCallerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run([](int tid) {
        if (tid == 0) throw std::logic_error("caller");
      }),
      std::logic_error);
  std::atomic<int> n{0};
  pool.run([&](int) { n++; });
  EXPECT_EQ(n.load(), 2);
}

TEST(SpinBarrier, OrdersPhases) {
  const int n = 4, rounds = 200;
  ThreadPool pool(n);
  SpinBarrier bar(n);
  std::vector<std::atomic<int>> counters(rounds);
  std::atomic<bool> violation{false};
  pool.run([&](int) {
    for (int r = 0; r < rounds; ++r) {
      counters[static_cast<std::size_t>(r)]++;
      bar.arrive_and_wait();
      // After the barrier every participant must have incremented round r.
      if (counters[static_cast<std::size_t>(r)].load() != n) violation = true;
      bar.arrive_and_wait();
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(ProgressCell, WaitSeesPublishedValue) {
  ProgressCell cell;
  EXPECT_EQ(cell.load(), INT64_MIN);
  cell.publish(41);
  cell.wait_ge(41);  // must not block
  EXPECT_EQ(cell.load(), 41);
  cell.reset();
  EXPECT_EQ(cell.load(), INT64_MIN);
}

TEST(ProgressCell, ProducerConsumerOrdering) {
  ThreadPool pool(2);
  ProgressCell cell;
  std::vector<int> data(1000, 0);
  std::atomic<bool> ok{true};
  pool.run([&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < 1000; ++i) {
        data[static_cast<std::size_t>(i)] = i + 1;
        cell.publish(i);
      }
    } else {
      for (int i = 0; i < 1000; ++i) {
        cell.wait_ge(i);
        if (data[static_cast<std::size_t>(i)] != i + 1) ok = false;
      }
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(DoneFlag, SetAndWait) {
  DoneFlag f;
  EXPECT_FALSE(f.test());
  f.set();
  EXPECT_TRUE(f.test());
  f.wait();  // must not block
}

TEST(DoneFlag, CrossThreadRelease) {
  ThreadPool pool(2);
  DoneFlag f;
  int payload = 0;
  pool.run([&](int tid) {
    if (tid == 0) {
      payload = 99;
      f.set();
    } else {
      f.wait();
      EXPECT_EQ(payload, 99);
    }
  });
}
