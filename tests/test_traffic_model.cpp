// Cross-validation of the analytic traffic model against the LRU cache
// simulator: the closed forms must predict simulated DRAM traffic within a
// modest factor, for constant and banded stencils, CATS1 and CATS2.

#include <gtest/gtest.h>

#include <cmath>

#include "cachesim/cache_model.hpp"
#include "cachesim/trace_kernel.hpp"
#include "cachesim/traffic_model.hpp"
#include "core/run.hpp"

using namespace cats;

namespace {

std::uint64_t sim2d(Scheme s, int side, int T, std::size_t z, int bands,
                    int tz = 0, int bz = 0) {
  CacheModel cm(z, 8, 64);
  TraceStar2D k(side, side, 1, bands, &cm);
  RunOptions opt;
  opt.scheme = s;
  opt.threads = 1;
  opt.cache_bytes = z;
  opt.tz_override = tz;
  opt.bz_override = bz;
  run(k, T, opt);
  return cm.miss_bytes();
}

void expect_within_factor(double model, double simulated, double factor,
                          const char* label) {
  EXPECT_LE(model / factor, simulated) << label << " model=" << model
                                       << " sim=" << simulated;
  EXPECT_GE(model * factor, simulated) << label << " model=" << model
                                       << " sim=" << simulated;
}

}  // namespace

TEST(TrafficModel, NaiveConstant2D) {
  const int side = 512, T = 12;
  const TrafficInput in{static_cast<double>(side) * side, T, 0, 1.0, 1,
                        side, 1};
  const double model = naive_traffic_bytes(in);
  const double sim = static_cast<double>(
      sim2d(Scheme::Naive, side, T, 128 * 1024, 0));
  expect_within_factor(model, sim, 1.3, "naive-const");
}

TEST(TrafficModel, NaiveBanded2D) {
  const int side = 384, T = 8, NS = 5;
  const TrafficInput in{static_cast<double>(side) * side, T, NS, 1.0, 1,
                        side, 1};
  const double model = naive_traffic_bytes(in);
  const double sim = static_cast<double>(
      sim2d(Scheme::Naive, side, T, 64 * 1024, NS));
  expect_within_factor(model, sim, 1.3, "naive-banded");
}

TEST(TrafficModel, Cats1Constant2D) {
  const int side = 512, T = 24;
  const std::size_t z = 128 * 1024;
  const DomainShape d{static_cast<std::int64_t>(side) * side, side, side, 2};
  const int tz = compute_tz(z, d, {1, 2.8});
  ASSERT_GT(tz, 0);
  const TrafficInput in{static_cast<double>(side) * side, T, 0, 1.0, 1,
                        side, 1};
  const double model = cats1_traffic_bytes(in, tz);
  const double sim =
      static_cast<double>(sim2d(Scheme::Cats1, side, T, z, 0, tz));
  expect_within_factor(model, sim, 1.6, "cats1-const");
}

TEST(TrafficModel, Cats2Constant2D) {
  const int side = 512, T = 32;
  const std::size_t z = 128 * 1024;
  const DomainShape d{static_cast<std::int64_t>(side) * side, side, side, 2};
  const std::int64_t bz = compute_bz(z, d, {1, 2.8});
  const TrafficInput in{static_cast<double>(side) * side, T, 0, 1.0, 1,
                        side, 1};
  const double model = cats2_traffic_bytes(in, bz);
  const double sim = static_cast<double>(
      sim2d(Scheme::Cats2, side, T, z, 0, 0, static_cast<int>(bz)));
  expect_within_factor(model, sim, 2.0, "cats2-const");
}

TEST(TrafficModel, SpeedupBoundTracksChunkDepth) {
  // The model's headline: CATS1's advantage grows ~ linearly with TZ until
  // border terms bite.
  const TrafficInput in{1e6, 100, 0, 1.0, 1, 1000, 4};
  const double naive = naive_traffic_bytes(in);
  const double s10 = traffic_speedup_bound(naive, cats1_traffic_bytes(in, 10));
  const double s25 = traffic_speedup_bound(naive, cats1_traffic_bytes(in, 25));
  EXPECT_GT(s25, s10);
  EXPECT_GT(s10, 5.0);
  EXPECT_LT(s25, 100.0);
}

TEST(TrafficModel, BandedCapsTheGain) {
  // With NS coefficient streams the achievable reduction saturates near
  // (2 + NS) / ((2 + NS)/chunks + border) — far below the constant-stencil
  // bound (the paper's Section III-B observation).
  const TrafficInput cst{1e6, 100, 0, 1.0, 1, 1000, 1};
  const TrafficInput bnd{1e6, 100, 5, 1.0, 1, 1000, 1};
  const double g_const = traffic_speedup_bound(naive_traffic_bytes(cst),
                                               cats1_traffic_bytes(cst, 20));
  const double g_band = traffic_speedup_bound(naive_traffic_bytes(bnd),
                                              cats1_traffic_bytes(bnd, 20));
  EXPECT_LT(g_band, g_const);
}
