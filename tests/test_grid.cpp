// Grid substrate tests: alignment, indexing, ghost handling.

#include <gtest/gtest.h>

#include <cstdint>

#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"

using namespace cats;

TEST(AlignedBuffer, IsAlignedAndSized) {
  AlignedBuffer<double> b(1001);
  EXPECT_EQ(b.size(), 1001u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kAlign, 0u);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<double> b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Grid2D, RowStartsAligned) {
  for (int ghost : {0, 1, 2, 3}) {
    Grid2D<double> g(37, 11, ghost);
    for (int y = -ghost; y < g.height() + ghost; ++y) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(y)) % kAlign, 0u)
          << "ghost=" << ghost << " y=" << y;
    }
  }
}

TEST(Grid2D, IndexingRoundTrips) {
  Grid2D<double> g(13, 7, 2);
  double v = 0.0;
  for (int y = -2; y < 9; ++y)
    for (int x = -2; x < 15; ++x) g.at(x, y) = v += 1.0;
  v = 0.0;
  for (int y = -2; y < 9; ++y)
    for (int x = -2; x < 15; ++x) EXPECT_EQ(g.at(x, y), v += 1.0);
}

TEST(Grid2D, GhostFillLeavesInterior) {
  Grid2D<double> g(8, 5, 2);
  g.fill_interior([](int x, int y) { return x * 100.0 + y; });
  g.fill_ghost(-1.0);
  for (int y = -2; y < 7; ++y)
    for (int x = -2; x < 10; ++x) {
      if (x >= 0 && x < 8 && y >= 0 && y < 5)
        EXPECT_EQ(g.at(x, y), x * 100.0 + y);
      else
        EXPECT_EQ(g.at(x, y), -1.0);
    }
}

TEST(Grid2D, RowPointerMatchesAt) {
  Grid2D<double> g(16, 4, 1);
  g.fill_interior([](int x, int y) { return x + 1000.0 * y; });
  for (int y = 0; y < 4; ++y) {
    const double* r = g.row(y);
    for (int x = -1; x < 17; ++x) EXPECT_EQ(r[x], g.at(x, y));
  }
}

TEST(Grid3D, RowStartsAlignedAndIndexed) {
  Grid3D<double> g(19, 5, 4, 2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(0, 0)) % kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(3, 2)) % kAlign, 0u);
  g.fill_interior([](int x, int y, int z) { return x + 100.0 * y + 10000.0 * z; });
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 19; ++x)
        EXPECT_EQ(g.row(y, z)[x], x + 100.0 * y + 10000.0 * z);
}

TEST(Grid3D, GhostShell) {
  Grid3D<double> g(4, 3, 2, 1);
  g.fill(7.0);
  g.fill_ghost(0.0);
  EXPECT_EQ(g.at(0, 0, 0), 7.0);
  EXPECT_EQ(g.at(-1, 0, 0), 0.0);
  EXPECT_EQ(g.at(4, 2, 1), 0.0);
  EXPECT_EQ(g.at(0, -1, 0), 0.0);
  EXPECT_EQ(g.at(0, 0, 2), 0.0);
  EXPECT_EQ(g.at(3, 2, 1), 7.0);
}

TEST(Grid2D, FloatStorageAlignedAndIndexed) {
  Grid2D<float> g(21, 6, 2);
  for (int y = -2; y < 8; ++y) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(y)) % kAlign, 0u);
  }
  g.fill_interior([](int x, int y) { return static_cast<float>(x - y); });
  EXPECT_EQ(g.at(20, 5), 15.0f);
  EXPECT_EQ(g.at(0, 0), 0.0f);
}

TEST(Grid2D, InitialZero) {
  Grid2D<double> g(5, 5, 1);
  for (int y = -1; y < 6; ++y)
    for (int x = -1; x < 6; ++x) EXPECT_EQ(g.at(x, y), 0.0);
}
