// MWD (multicore wavefront-diamond) integration and verifier tests.
//
// Positive: MWD reproduces the serial reference bit-exactly across kernel
// families, group widths, unroll factors, NT stores and temporal
// vectorization; a full run under the dependence oracle is clean with every
// point checked exactly once; every emitted MWD plan verifies clean at the
// pooled group budget. Negative: severing one wavefront Done edge from an
// MWD plan yields the exact DepUncovered pair, and an oversized shared
// diamond yields the residency diagnostics with the pooled Z*g limit.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "check/oracle.hpp"
#include "core/reference.hpp"
#include "core/run.hpp"
#include "core/selector.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"
#include "plan/emit.hpp"
#include "plan/verify.hpp"
#include "wave/mwd.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

template <int S>
std::vector<double> reference_const2d(int W, int H, int T) {
  ConstStar2D<S> k(W, H, default_star2d_weights<S>());
  k.init(cats::test::init2d, 0.25);
  run_reference(k, T);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

template <int S>
std::vector<double> mwd_const2d(int W, int H, int T, const RunOptions& opt) {
  ConstStar2D<S> k(W, H, default_star2d_weights<S>());
  k.init(cats::test::init2d, 0.25);
  const SchemeChoice c = run(k, T, opt);
  EXPECT_EQ(c.scheme, Scheme::Mwd);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

RunOptions mwd_options(int threads, int group, std::size_t cache_bytes) {
  RunOptions opt;
  opt.scheme = Scheme::Mwd;
  opt.threads = threads;
  opt.mwd_group = group;
  opt.cache_bytes = cache_bytes;
  return opt;
}

const plan_ir::Diag* find_kind(const plan_ir::VerifyReport& r,
                               plan_ir::DiagKind k) {
  for (const plan_ir::Diag& d : r.diags) {
    if (d.kind == k) return &d;
  }
  return nullptr;
}

std::string dump(const plan_ir::VerifyReport& r) {
  std::string out = r.summary();
  for (const plan_ir::Diag& d : r.diags) out += "\n  " + d.to_string();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bit-exactness: group widths x threads x shapes x cache sizes
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<int, int, std::tuple<int, int, int>, int>;

class MwdSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MwdSweep, BitExactVsReference) {
  const auto [group, threads, shape, cache_kib] = GetParam();
  const auto [W, H, T] = shape;
  const RunOptions opt = mwd_options(
      threads, group, static_cast<std::size_t>(cache_kib) * 1024);
  expect_bit_equal(mwd_const2d<1>(W, H, T, opt), reference_const2d<1>(W, H, T),
                   "mwd");
}

INSTANTIATE_TEST_SUITE_P(
    GroupWidths, MwdSweep,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),  // 3 does not divide 4: clamps to 2
        ::testing::Values(4),
        ::testing::Values(std::tuple{37, 23, 7},    // odd sizes
                          std::tuple{64, 64, 20},   // powers of two
                          std::tuple{16, 128, 11}), // tall & narrow
        ::testing::Values(8, 64)));                 // tiny + small cache

// ---------------------------------------------------------------------------
// Option cross: unroll x NT stores x temporal vectorization
// ---------------------------------------------------------------------------

TEST(Mwd, WaveOptionCross) {
  const auto want = reference_const2d<1>(48, 40, 12);
  for (int u : {0, 1, 3}) {
    for (bool nt : {false, true}) {
      for (bool tv : {false, true}) {
        RunOptions opt = mwd_options(4, 2, 32 * 1024);
        opt.unroll_t = u;
        opt.nt_stores = nt;
        opt.temporal_vec = tv;
        const std::string label = "u=" + std::to_string(u) +
                                  " nt=" + std::to_string(nt) +
                                  " tv=" + std::to_string(tv);
        expect_bit_equal(mwd_const2d<1>(48, 40, 12, opt), want, label.c_str());
      }
    }
  }
}

TEST(Mwd, HigherSlopes) {
  RunOptions opt = mwd_options(4, 2, 32 * 1024);
  ConstStar2D<2> k2(61, 47, default_star2d_weights<2>());
  k2.init(cats::test::init2d, 0.25);
  run(k2, 13, opt);
  ConstStar2D<2> ref2(61, 47, default_star2d_weights<2>());
  ref2.init(cats::test::init2d, 0.25);
  run_reference(ref2, 13);
  std::vector<double> got, want;
  k2.copy_result_to(got, 13);
  ref2.copy_result_to(want, 13);
  expect_bit_equal(got, want, "slope2");
}

TEST(Mwd, DegenerateDiamondSizes) {
  const auto want = reference_const2d<1>(40, 30, 12);
  for (int bz : {2, 3, 7, 64, 1000}) {  // min diamond .. one covers the domain
    RunOptions opt = mwd_options(4, 2, 32 * 1024);
    opt.bz_override = bz;
    expect_bit_equal(mwd_const2d<1>(40, 30, 12, opt), want, "bz");
  }
}

// ---------------------------------------------------------------------------
// Kernel families
// ---------------------------------------------------------------------------

TEST(Mwd, Banded2D) {
  auto make = [](Banded2D<1>& k) {
    k.init(cats::test::init2d, 0.1);
    k.init_bands(cats::test::band_coeff);
  };
  Banded2D<1> ref(49, 35);
  make(ref);
  run_reference(ref, 14);
  std::vector<double> want;
  ref.copy_result_to(want, 14);

  for (int group : {2, 4}) {
    Banded2D<1> k(49, 35);
    make(k);
    run(k, 14, mwd_options(4, group, 48 * 1024));
    std::vector<double> got;
    k.copy_result_to(got, 14);
    expect_bit_equal(got, want, "banded2d");
  }
}

TEST(Mwd, Fdtd2D) {
  auto fields = [](int x, int y) {
    return std::tuple{cats::test::init2d(x, y), cats::test::init2d(y, x),
                      std::cos(0.11 * x - 0.07 * y)};
  };
  Fdtd2D ref(44, 31);
  ref.init(fields);
  run_reference(ref, 12);
  std::vector<double> want;
  ref.copy_result_to(want, 12);

  Fdtd2D k(44, 31);
  k.init(fields);
  run(k, 12, mwd_options(4, 2, 32 * 1024));
  std::vector<double> got;
  k.copy_result_to(got, 12);
  expect_bit_equal(got, want, "fdtd2d");
}

TEST(Mwd, Const3D) {
  ConstStar3D<1> ref(18, 14, 22, default_star3d_weights<1>());
  ref.init(cats::test::init3d, 0.25);
  run_reference(ref, 9);
  std::vector<double> want;
  ref.copy_result_to(want, 9);

  for (int group : {2, 4}) {
    ConstStar3D<1> k(18, 14, 22, default_star3d_weights<1>());
    k.init(cats::test::init3d, 0.25);
    const SchemeChoice c = run(k, 9, mwd_options(4, group, 32 * 1024));
    EXPECT_EQ(c.scheme, Scheme::Mwd);
    std::vector<double> got;
    k.copy_result_to(got, 9);
    expect_bit_equal(got, want, "const3d");
  }
}

TEST(Mwd, Banded3D) {
  auto make = [](Banded3D<1>& k) {
    k.init(cats::test::init3d, 0.1);
    k.init_bands(cats::test::band_coeff3);
  };
  Banded3D<1> ref(16, 12, 20);
  make(ref);
  run_reference(ref, 8);
  std::vector<double> want;
  ref.copy_result_to(want, 8);

  Banded3D<1> k(16, 12, 20);
  make(k);
  run(k, 8, mwd_options(4, 2, 32 * 1024));
  std::vector<double> got;
  k.copy_result_to(got, 8);
  expect_bit_equal(got, want, "banded3d");
}

// ---------------------------------------------------------------------------
// Group-width clamping (RunOptions::mwd_group sanitizer)
// ---------------------------------------------------------------------------

TEST(Mwd, GroupWidthIsLargestDivisorOfPool) {
  EXPECT_EQ(mwd_group_width(0, 4), 1);
  EXPECT_EQ(mwd_group_width(1, 4), 1);
  EXPECT_EQ(mwd_group_width(2, 4), 2);
  EXPECT_EQ(mwd_group_width(3, 4), 2);   // 3 does not divide 4
  EXPECT_EQ(mwd_group_width(4, 4), 4);
  EXPECT_EQ(mwd_group_width(16, 4), 4);  // capped at the pool
  EXPECT_EQ(mwd_group_width(5, 6), 3);   // largest divisor below the request
  EXPECT_EQ(mwd_group_width(2, 1), 1);
  EXPECT_EQ(mwd_group_width(2, 0), 1);
}

TEST(Mwd, SanitizerRejectsGroupOnOtherSchemes) {
  // Schemes that ignore the knob run ungrouped (one-time stderr note).
  EXPECT_EQ(sanitize_mwd_group(2, 4, Scheme::Cats2), 1);
  EXPECT_EQ(sanitize_mwd_group(4, 4, Scheme::Naive), 1);
  // Mwd and Auto keep (clamped) widths: Auto may pick MWD.
  EXPECT_EQ(sanitize_mwd_group(2, 4, Scheme::Mwd), 2);
  EXPECT_EQ(sanitize_mwd_group(3, 4, Scheme::Mwd), 2);
  EXPECT_EQ(sanitize_mwd_group(2, 4, Scheme::Auto), 2);
}

// ---------------------------------------------------------------------------
// Member band partition properties (wave/mwd.hpp)
// ---------------------------------------------------------------------------

TEST(Mwd, BandPartitionCoversMonotonically) {
  const plan_ir::TilePlan p =
      plan_ir::emit_mwd(2, 64, 40, 1, 9, 1, /*bz=*/8, /*groups=*/2,
                        /*group=*/4);
  ASSERT_FALSE(p.tiles.empty());
  for (const plan_ir::Tile& tile : p.tiles) {
    const DiamondTiling dt{static_cast<int>(p.slope), p.bz, p.nx,
                           tile.t0, tile.t1};
    for (int m : {1, 2, 4}) {
      const std::vector<int> band = wave::mwd_band_partition(dt, tile, m);
      ASSERT_EQ(band.size(), static_cast<std::size_t>(tile.t1 - tile.t0 + 1));
      int prev = 0;
      for (const int b : band) {
        // In range and non-decreasing with t: the monotonicity the window
        // pipeline's ordering proof rests on.
        EXPECT_GE(b, prev);
        EXPECT_LT(b, m);
        prev = b;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dependence oracle: every point computed once, all edges honored
// ---------------------------------------------------------------------------

TEST(Mwd, OracleClean2D) {
  const int W = 56, H = 40, T = 10;
  for (int group : {2, 4}) {
    ConstStar2D<1> k(W, H, default_star2d_weights<1>());
    k.init(cats::test::init2d);
    check::DepOracle oracle(W, H, 1, k.slope(), 4);
    RunOptions opt = mwd_options(4, group, 16 * 1024);
    opt.oracle = &oracle;
    run(k, T, opt);
    oracle.check_complete(T);
    EXPECT_TRUE(oracle.ok()) << "group=" << group;
    EXPECT_EQ(oracle.points_checked(), static_cast<std::int64_t>(W) * H * T);
    // The member handoff rides the same Done flags as tile-to-tile sync.
    EXPECT_GT(oracle.release_count(), 0);
    EXPECT_GT(oracle.acquire_count(), 0);
  }
}

TEST(Mwd, OracleClean3D) {
  const int W = 14, H = 10, D = 18, T = 6;
  ConstStar3D<1> k(W, H, D, default_star3d_weights<1>());
  k.init(cats::test::init3d);
  check::DepOracle oracle(W, H, D, k.slope(), 4);
  RunOptions opt = mwd_options(4, 2, 16 * 1024);
  opt.oracle = &oracle;
  run(k, T, opt);
  oracle.check_complete(T);
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.points_checked(),
            static_cast<std::int64_t>(W) * H * D * T);
}

// ---------------------------------------------------------------------------
// Static verifier: positive and negative
// ---------------------------------------------------------------------------

TEST(Mwd, EmittedPlansVerifyClean) {
  for (int dims : {2, 3}) {
    for (int group : {1, 2, 4}) {
      for (int threads : {2, 4}) {
        for (const std::size_t z : {std::size_t{256}, std::size_t{32768}}) {
          plan_ir::PlanRequest rq;
          rq.dims = dims;
          rq.nx = dims == 2 ? 32 : 14;
          rq.ny = dims == 2 ? 24 : 10;
          rq.nz = dims == 3 ? 12 : 1;
          rq.T = 7;
          rq.slope = 1;
          rq.opt.scheme = Scheme::Mwd;
          rq.opt.threads = threads;
          rq.opt.mwd_group = group;
          rq.opt.cache_bytes = z;
          const plan_ir::TilePlan p = plan_ir::emit_plan(rq);
          const plan_ir::VerifyReport rep = plan_ir::verify_plan(p);
          EXPECT_TRUE(rep.ok())
              << "dims=" << dims << " group=" << group
              << " threads=" << threads << " Z=" << z << "\n" << dump(rep);
        }
      }
    }
  }
}

TEST(Mwd, SeveredDoneEdgeYieldsDepUncovered) {
  plan_ir::TilePlan p =
      plan_ir::emit_mwd(2, 32, 24, 1, 6, 1, /*bz=*/8, /*groups=*/2,
                        /*group=*/2);
  ASSERT_FALSE(p.edges.empty());
  EXPECT_TRUE(plan_ir::verify_plan(p).ok()) << dump(plan_ir::verify_plan(p));
  // Sever every wait of the first group-1 tile that waits on a group-0
  // producer. Its same-owner program-order predecessors are base diamonds
  // with no waits of their own, so no transitive happens-before path to the
  // cross-group producer survives and the diamond dependence must surface
  // as uncovered.
  int victim = -1;
  for (const plan_ir::SyncEdge& e : p.edges) {
    if (p.tiles[static_cast<std::size_t>(e.to)].owner == 1 &&
        p.tiles[static_cast<std::size_t>(e.from)].owner == 0 &&
        (victim < 0 || e.to < victim)) {
      victim = e.to;
    }
  }
  ASSERT_GE(victim, 0);
  std::vector<plan_ir::SyncEdge> kept;
  for (const plan_ir::SyncEdge& e : p.edges) {
    if (e.to != victim) kept.push_back(e);
  }
  ASSERT_LT(kept.size(), p.edges.size());
  p.edges = std::move(kept);
  const plan_ir::VerifyReport rep = plan_ir::verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const plan_ir::Diag* d = find_kind(rep, plan_ir::DiagKind::DepUncovered);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, victim);  // consumer: the tile whose waits were cut
}

TEST(Mwd, OversizedSharedDiamondReportsPooledBudget) {
  // Diamonds sized for a far larger cache: the residency certificate must
  // fail against the *pooled* Z*g budget and say so in the diagnostic.
  plan_ir::TilePlan p =
      plan_ir::emit_mwd(2, 32, 24, 1, 8, 1, /*bz=*/8, /*groups=*/2,
                        /*group=*/2);
  p.cache_bytes = 64;
  p.cs_eff = 2.8;
  p.elem_bytes = 8.0;
  p.certify_residency = true;

  const plan_ir::VerifyReport rep = plan_ir::verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const plan_ir::Diag* d =
      find_kind(rep, plan_ir::DiagKind::WavefrontOverflow);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_FALSE(d->warning);
  EXPECT_NE(d->detail.find("pooled x2"), std::string::npos) << d->detail;
  // Pooling doubles the allowance vs the same plan verified as CATS2 —
  // the limit embeds Z*g = 128, not 64.
  EXPECT_GT(d->limit, 128);
  EXPECT_GT(d->bytes, d->limit);
  EXPECT_NE(find_kind(rep, plan_ir::DiagKind::BzExceedsEq2), nullptr)
      << dump(rep);
}
