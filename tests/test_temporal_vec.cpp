// Temporal-vectorization tests (wave/temporal_vec.hpp and the kernels' TV
// chain bodies): the register primitives (shuffle / rotate / transpose), the
// sliding window's operand materialization, the chain-group driver over
// ragged diamond slices, and end-to-end equivalence. Every in-tree family
// declares tv_bit_exact — the TV body evaluates the identical per-point
// operation tree as the plain walk — so all comparisons here are bit-exact
// (frame ULP bound 0), not tolerance-based.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "check/oracle.hpp"
#include "check/probe_kernel.hpp"
#include "core/run.hpp"
#include "core/stencil.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"
#include "kernels/const3d.hpp"
#include "simd/vecd.hpp"
#include "wave/temporal_vec.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

// ---------------------------------------------------------------------------
// Register primitives
// ---------------------------------------------------------------------------

/// shuffle<K>(a, b): lane i of the result is lane i+K of the concatenation
/// a:b, for every K in [0, width].
template <class V, class T>
void check_shuffle_all_k() {
  constexpr int W = V::width;
  alignas(64) T in[2 * W];
  for (int i = 0; i < 2 * W; ++i) in[i] = static_cast<T>(i + 1) * T(1.25);
  const V a = V::load(in);
  const V b = V::load(in + W);
  alignas(64) T out[W];
  [&]<std::size_t... K>(std::index_sequence<K...>) {
    ((
        [&] {
          V::template shuffle<static_cast<int>(K)>(a, b).store(out);
          for (int i = 0; i < W; ++i) {
            EXPECT_EQ(out[i], in[i + K]) << "K=" << K << " lane " << i;
          }
        }(),
        void()),
     ...);
  }(std::make_index_sequence<W + 1>{});
}

template <class V, class T>
void check_rotate_all_k() {
  constexpr int W = V::width;
  alignas(64) T in[W];
  for (int i = 0; i < W; ++i) in[i] = static_cast<T>(i) - T(2.5);
  const V a = V::load(in);
  alignas(64) T out[W];
  [&]<std::size_t... K>(std::index_sequence<K...>) {
    ((
        [&] {
          simd::rotate<static_cast<int>(K)>(a).store(out);
          for (int i = 0; i < W; ++i) {
            EXPECT_EQ(out[i], in[(i + K) % W]) << "K=" << K << " lane " << i;
          }
        }(),
        void()),
     ...);
  }(std::make_index_sequence<W>{});
}

}  // namespace

TEST(TvSimd, ShuffleConcatenatesLanesVecD) {
  check_shuffle_all_k<simd::VecD, double>();
}

TEST(TvSimd, ShuffleConcatenatesLanesVecF) {
  check_shuffle_all_k<simd::VecF, float>();
}

TEST(TvSimd, RotateIsSelfShuffle) {
  check_rotate_all_k<simd::VecD, double>();
  check_rotate_all_k<simd::VecF, float>();
}

TEST(TvSimd, Transpose4x4TransposesLeadingBlock) {
  // Contract (vecd.hpp): the leading 4x4 lane block is transposed, lanes >= 4
  // pass through unchanged. On narrow builds (width < 4) only the scalar
  // tile form exists, which the else-branch covers.
  if constexpr (simd::VecD::width >= 4) {
    constexpr int W = simd::VecD::width;
    alignas(64) double m[4][W];
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < W; ++c) m[r][c] = 10.0 * r + c;
    simd::VecD v0 = simd::VecD::load(m[0]), v1 = simd::VecD::load(m[1]),
               v2 = simd::VecD::load(m[2]), v3 = simd::VecD::load(m[3]);
    simd::transpose4x4(v0, v1, v2, v3);
    alignas(64) double t[4][W];
    v0.store(t[0]);
    v1.store(t[1]);
    v2.store(t[2]);
    v3.store(t[3]);
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < W; ++c)
        EXPECT_EQ(t[r][c], c < 4 ? m[c][r] : m[r][c]) << r << "," << c;
  } else {
    double m[4][4];
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) m[r][c] = 10.0 * r + c;
    simd::transpose4x4(m);
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) EXPECT_EQ(m[r][c], 10.0 * c + r);
  }
}

// ---------------------------------------------------------------------------
// Sliding window
// ---------------------------------------------------------------------------

namespace {

/// get<O>() must equal an unaligned load at x + O for every O in [-S, S],
/// after prime() and after each advance().
template <int S>
void check_window_offsets() {
  using V = simd::VecD;
  constexpr int W = V::width;
  std::vector<double> row(static_cast<std::size_t>(8 * W + 2 * S));
  for (std::size_t i = 0; i < row.size(); ++i)
    row[i] = 0.5 * static_cast<double>(i) - 3.0;
  const double* base = row.data() + S;  // keep x - S in bounds

  wave::ShiftWindow<V, double, S> win;
  const int first = ((S + W - 1) / W) * W;  // x - Q*W stays in bounds
  win.prime(base, first);
  alignas(64) double got[W], want[W];
  for (int x = first; x + (win.Q + 1) * W <= 7 * W; x += W) {
    if (x != first) win.advance(base, x);
    [&]<std::size_t... K>(std::index_sequence<K...>) {
      ((
          [&] {
            constexpr int O = static_cast<int>(K) - S;
            win.template get<O>().store(got);
            V::load(base + x + O).store(want);
            for (int i = 0; i < W; ++i) {
              EXPECT_EQ(got[i], want[i]) << "x=" << x << " O=" << O;
            }
          }(),
          void()),
       ...);
    }(std::make_index_sequence<2 * S + 1>{});
  }
}

}  // namespace

TEST(TvWindow, OffsetsMatchUnalignedLoads) {
  check_window_offsets<1>();
  check_window_offsets<2>();
  check_window_offsets<3>();
  check_window_offsets<4>();
}

// ---------------------------------------------------------------------------
// Chain body: TV vs chunked-diagonal walk over ragged diamond slices
// ---------------------------------------------------------------------------

namespace {

/// Drive process_stages and process_stages_tv over the same staggered chain
/// groups on twin kernels and require bit-identical grids after every group.
/// The (offset, length) sweep covers every x0 alignment mod W and the
/// driver's range classes: sub-vector (scalar fallback), >= W with no full
/// aligned cell (two overlapping edge vectors), and wide interiors.
template <class K, class MakeKernel>
void check_chain_bodies(MakeKernel&& make, int width, int height,
                        const char* label) {
  K a = make();
  K b = make();
  // Lengths straddle both in-tree vector widths (8 for double, 16 for float
  // on 512-bit builds): sub-vector scalar fallback, exactly one vector,
  // one-past, no-full-aligned-cell, and wide interiors. Offsets cover every
  // x0 alignment mod 16 (hence mod 8 too).
  const std::array<int, 12> lens = {1, 3, 7, 8, 9, 15, 16, 17, 21, 33, 47, 65};
  int ymid = height / 2;
  int t0 = 1;
  for (int off = 0; off <= 16; ++off) {
    for (const int len : lens) {
      for (const int n : {2, 3, 4}) {
        WaveStage st[4];
        int built = 0;
        for (int g = 0; g < n; ++g) {
          const int x0 = off + g;
          const int x1 = std::min(off + len - g, width);
          if (x0 >= x1) break;
          st[built++] = WaveStage{t0 + g, ymid - g, x0, x1,
                                  /*nt=*/(g == n - 1) && (len % 2 == 0)};
        }
        if (built < 2) continue;
        a.process_stages(st, built);
        b.process_stages_tv(st, built);
        // Advance t so buffer parities keep rotating; wrap y to stay interior.
        t0 = (t0 % 4) + 1;
        ymid = 2 * 4 + ((ymid + 3) % (height - 4 * 4));
      }
    }
  }
  std::vector<double> wa, wb;
  a.copy_result_to(wa, 0);
  b.copy_result_to(wb, 0);
  expect_bit_equal(wb, wa, (std::string(label) + " parity0").c_str());
  a.copy_result_to(wa, 1);
  b.copy_result_to(wb, 1);
  expect_bit_equal(wb, wa, (std::string(label) + " parity1").c_str());
}

}  // namespace

TEST(TvChainBody, Const2DRaggedSlicesBitExact) {
  check_chain_bodies<ConstStar2D<1>>(
      [] {
        ConstStar2D<1> k(90, 70, default_star2d_weights<1>());
        k.init(cats::test::init2d, 0.2);
        return k;
      },
      90, 70, "const2d");
}

TEST(TvChainBody, Const2DSlope2BitExact) {
  check_chain_bodies<ConstStar2D<2>>(
      [] {
        ConstStar2D<2> k(90, 70, default_star2d_weights<2>());
        k.init(cats::test::init2d, -0.4);
        return k;
      },
      90, 70, "const2d-s2");
}

TEST(TvChainBody, Banded2DRaggedSlicesBitExact) {
  check_chain_bodies<Banded2D<1>>(
      [] {
        Banded2D<1> k(90, 70);
        k.init(cats::test::init2d, 0.1);
        k.init_bands(cats::test::band_coeff);
        return k;
      },
      90, 70, "banded2d");
}

TEST(TvChainBody, Float2DRaggedSlicesBitExact) {
  check_chain_bodies<FloatStar2D<1>>(
      [] {
        FloatStar2D<1> k(90, 70, default_star2d_weights<1, float>());
        k.init(
            [](int x, int y) {
              return static_cast<float>(cats::test::init2d(x, y));
            },
            0.25f);
        return k;
      },
      90, 70, "const2d_f32");
}

// ---------------------------------------------------------------------------
// End-to-end: temporal_vec across schemes, unrolls, threads — bit-exact
// ---------------------------------------------------------------------------

namespace {

RunOptions tv_options(Scheme s, int threads = 2) {
  RunOptions opt;
  opt.scheme = s;
  opt.threads = threads;
  opt.cache_bytes = 32 * 1024;  // force multi-chunk / multi-tile plans
  opt.nt_stores = true;
  opt.temporal_vec = true;
  return opt;
}

RunOptions plain_options(Scheme s, int threads = 2) {
  RunOptions opt;
  opt.scheme = s;
  opt.threads = threads;
  opt.cache_bytes = 32 * 1024;
  opt.unroll_t = 1;
  return opt;
}

template <class MakeKernel>
std::vector<double> run_dump(MakeKernel&& make, int T, const RunOptions& opt) {
  auto k = make();
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

template <class MakeKernel>
void check_tv_unrolls(MakeKernel&& make, int T, const char* label) {
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    const std::vector<double> want = run_dump(make, T, plain_options(s));
    for (int u : {0, 2, 3, 4}) {  // 0 = auto (engine default)
      for (int threads : {1, 2}) {
        RunOptions opt = tv_options(s, threads);
        opt.unroll_t = u;
        expect_bit_equal(run_dump(make, T, opt), want,
                         (std::string(label) + " " + scheme_name(s) +
                          " tv unroll=" + std::to_string(u) + " p" +
                          std::to_string(threads))
                             .c_str());
      }
    }
  }
}

}  // namespace

TEST(TemporalVec, Const2DAllUnrollsBitExact) {
  check_tv_unrolls(
      [] {
        ConstStar2D<1> k(73, 59, default_star2d_weights<1>());
        k.init(cats::test::init2d, 0.2);
        return k;
      },
      14, "const2d");
}

TEST(TemporalVec, Const2DSlope2BitExact) {
  check_tv_unrolls(
      [] {
        ConstStar2D<2> k(81, 63, default_star2d_weights<2>());
        k.init(cats::test::init2d, -0.3);
        return k;
      },
      10, "const2d-s2");
}

TEST(TemporalVec, Banded2DAllUnrollsBitExact) {
  check_tv_unrolls(
      [] {
        Banded2D<1> k(61, 47);
        k.init(cats::test::init2d, 0.1);
        k.init_bands(cats::test::band_coeff);
        return k;
      },
      12, "banded2d");
}

TEST(TemporalVec, Const3DAllUnrollsBitExact) {
  check_tv_unrolls(
      [] {
        ConstStar3D<1> k(23, 19, 17, default_star3d_weights<1>());
        k.init(cats::test::init3d, -0.1);
        return k;
      },
      9, "const3d");
}

TEST(TemporalVec, Banded3DAllUnrollsBitExact) {
  check_tv_unrolls(
      [] {
        Banded3D<1> k(21, 17, 15);
        k.init(cats::test::init3d, 0.05);
        k.init_bands(cats::test::band_coeff3);
        return k;
      },
      8, "banded3d");
}

// ---------------------------------------------------------------------------
// Schedule validation under TV
// ---------------------------------------------------------------------------

TEST(TemporalVec, OracleCleanWithTvRequested) {
  // An attached DepOracle observes per-point order, so resolve_unroll drops
  // fusion to 1 and the TV chain body never engages (it exists only inside
  // fused groups). The point of this test is that contract: temporal_vec
  // composed with oracle-instrumented runs stays a no-op — the schedule
  // underneath TV is exactly the one validated here, and the flag neither
  // perturbs it nor crashes on the fused-path-free walk.
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    const int W = 17, H = 13, D = 11, T = 7;
    check::ProbeKernel3D k(W, H, D, 1);
    check::DepOracle oracle(W, H, D, k.slope(), 4);
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 4;
    opt.cache_bytes = 32 * 1024;
    opt.temporal_vec = true;
    opt.nt_stores = true;
    opt.oracle = &oracle;
    run(k, T, opt);
    oracle.check_complete(T);
    EXPECT_TRUE(oracle.ok()) << "tv oracle " << scheme_name(s);
  }
}
