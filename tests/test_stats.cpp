// Synchronization-statistics tests: the counters exist to check the paper's
// "threads practically never wait" claim, so verify they count sanely.

#include <gtest/gtest.h>

#include "core/run.hpp"
#include "core/stats.hpp"
#include "helpers.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"

using namespace cats;

TEST(RunStats, SingleThreadNeverWaits) {
  RunStats stats;
  ConstStar2D<1> k(64, 64, default_star2d_weights<1>());
  k.init(cats::test::init2d);
  RunOptions opt;
  opt.scheme = Scheme::Cats1;
  opt.threads = 1;
  opt.cache_bytes = 16 * 1024;
  opt.stats = &stats;
  run(k, 10, opt);
  EXPECT_EQ(stats.wait_events.load(), 0);  // no neighbor to wait on
  EXPECT_EQ(stats.wait_spins.load(), 0);
  EXPECT_GT(stats.tiles_processed.load(), 0);
  EXPECT_GT(stats.barriers.load(), 0);
}

TEST(RunStats, Cats2CountsDiamonds) {
  RunStats stats;
  ConstStar2D<1> k(80, 60, default_star2d_weights<1>());
  k.init(cats::test::init2d);
  RunOptions opt;
  opt.scheme = Scheme::Cats2;
  opt.threads = 1;
  opt.bz_override = 10;
  opt.stats = &stats;
  run(k, 10, opt);
  // Diamond count ~ (W + 2sT)/BZ per row x ~2sT/BZ rows; just sanity-bound.
  EXPECT_GT(stats.tiles_processed.load(), 4);
  EXPECT_EQ(stats.wait_events.load(), 0);  // serial: everything is ready
}

TEST(RunStats, MultiThreadWaitsAreBounded) {
  RunStats stats;
  ConstStar2D<1> k(96, 80, default_star2d_weights<1>());
  k.init(cats::test::init2d);
  RunOptions opt;
  opt.scheme = Scheme::Cats2;
  opt.threads = 4;
  opt.bz_override = 8;
  opt.stats = &stats;
  run(k, 12, opt);
  // Waits may fire (oversubscribed host), but never more than once per tile
  // pair — the counter cannot exceed the number of diamonds processed.
  EXPECT_LE(stats.wait_events.load(), stats.tiles_processed.load());
}

TEST(RunStats, AccumulatesAcrossRuns) {
  RunStats stats;
  for (int r = 0; r < 3; ++r) {
    ConstStar2D<1> k(64, 48, default_star2d_weights<1>());
    k.init(cats::test::init2d);
    RunOptions opt;
    opt.scheme = Scheme::Cats1;
    opt.threads = 1;
    opt.tz_override = 4;
    opt.stats = &stats;
    run(k, 8, opt);
  }
  EXPECT_EQ(stats.tiles_processed.load(), 3 * 2);  // ceil(8/4) chunks x 3 runs
  stats.reset();
  EXPECT_EQ(stats.tiles_processed.load(), 0);
}
