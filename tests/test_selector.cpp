// Selector tests: Eq. 1 / Eq. 2 arithmetic (including the paper's worked
// example) and the general-CATS rule of thumb.

#include <gtest/gtest.h>

#include <cmath>

#include "core/selector.hpp"
#include "core/stencil.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/fdtd2d.hpp"

using namespace cats;

TEST(Eq1, PaperWorkedExample) {
  // Section II-B: 128KiB cache, CS = 3, 500^2 doubles -> TZ = 10
  // (3 * 10 * 500 * 8B = 120KB < 128KiB).
  const DomainShape d{500 * 500, 500, 500, 2};
  const KernelCosts k{1, 3.0};
  EXPECT_EQ(compute_tz(128 * 1024, d, k), 10);
}

TEST(Eq1, ScalesLinearlyWithCache) {
  const DomainShape d{1000 * 1000, 1000, 1000, 2};
  const KernelCosts k{1, 2.8};
  const int tz1 = compute_tz(1 << 20, d, k);
  const int tz2 = compute_tz(1 << 21, d, k);
  EXPECT_NEAR(tz2, 2 * tz1, 1);
  EXPECT_EQ(compute_tz(0, d, k), 0);
}

TEST(Eq1, ZeroWhenWavefrontDoesNotFit) {
  // 3D-style shape: wavefront = W*H doubles per timestep, tiny cache.
  const DomainShape d{256ll * 256 * 256, 256, 256, 3};
  const KernelCosts k{1, 2.8};
  EXPECT_EQ(compute_tz(64 * 1024, d, k), 0);
}

TEST(Eq2, TwoDimensionalFormula) {
  // In 2D Wmax*Wmax2 = N, so BZ = floor(sqrt(2 s Zd / CS)).
  const DomainShape d{4000ll * 4000, 4000, 4000, 2};
  const KernelCosts k{1, 2.8};
  const std::size_t z = 2 * 1024 * 1024;
  const auto zd = static_cast<double>(z) / 8.0;
  const auto expect = static_cast<std::int64_t>(std::sqrt(2.0 * zd / 2.8));
  EXPECT_EQ(compute_bz(z, d, k), expect);
}

TEST(Eq2, ClampedToMinimumDiamond) {
  const DomainShape d{1 << 20, 1024, 1024, 2};
  const KernelCosts k{3, 6.8};
  EXPECT_EQ(compute_bz(1, d, k), 6);  // 2s
}

TEST(EffectiveCs, ConstBandedFdtd) {
  ConstStar2D<1> c(8, 8, default_star2d_weights<1>());
  EXPECT_DOUBLE_EQ(effective_cs(c, 0.8), 2.8);
  ConstStar2D<2> c2(8, 8, default_star2d_weights<2>());
  EXPECT_DOUBLE_EQ(effective_cs(c2, 0.8), 4.8);

  Banded2D<1> b(8, 8);
  // CS + NS: the paper's banded-matrix correction (NS = 5 bands in 2D).
  EXPECT_DOUBLE_EQ(effective_cs(b, 0.8), 2.8 + 5.0);

  Fdtd2D f(8, 8);
  // Three live fields scale the wavefront share.
  EXPECT_DOUBLE_EQ(effective_cs(f, 0.8), 3.0 * 2.8);
}

TEST(Selector, AutoPicksCats1WhenWavefrontDeepEnough) {
  const DomainShape d{500 * 500, 500, 500, 2};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 2 * 1024 * 1024;
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_EQ(c.scheme, Scheme::Cats1);
  EXPECT_GE(c.tz, opt.min_wavefront_timesteps);
  EXPECT_LE(c.tz, 100);
}

TEST(Selector, AutoSwitchesToCats2InLarge3D) {
  // 256^3: the CATS1 wavefront holds W*H*TZ doubles -> TZ < 10 for a 2MiB
  // cache, so the general scheme must pick CATS2 (Section II-C).
  const DomainShape d{256ll * 256 * 256, 256, 256, 3};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 2 * 1024 * 1024;
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_EQ(c.scheme, Scheme::Cats2);
  EXPECT_GE(c.bz, 2);
}

TEST(Selector, TzCappedByTotalTimesteps) {
  const DomainShape d{100 * 100, 100, 100, 2};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 64 * 1024 * 1024;  // huge: TZ formula >> T
  const SchemeChoice c = select_scheme(d, k, opt, 7);
  EXPECT_EQ(c.scheme, Scheme::Cats1);
  EXPECT_EQ(c.tz, 7);
}

TEST(Selector, OneDimensionalAlwaysCats1) {
  const DomainShape d{1 << 20, 1 << 20, 0, 1};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 4096;  // tiny: tz formula small
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_EQ(c.scheme, Scheme::Cats1);
  EXPECT_GE(c.tz, 1);
}

TEST(Selector, ExplicitSchemeAndOverridesRespected) {
  const DomainShape d{512 * 512, 512, 512, 2};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 1 << 20;

  opt.scheme = Scheme::Naive;
  EXPECT_EQ(select_scheme(d, k, opt, 10).scheme, Scheme::Naive);

  opt.scheme = Scheme::Cats1;
  opt.tz_override = 4;
  EXPECT_EQ(select_scheme(d, k, opt, 10).tz, 4);

  opt.scheme = Scheme::Cats2;
  opt.bz_override = 24;
  EXPECT_EQ(select_scheme(d, k, opt, 10).bz, 24);

  opt.scheme = Scheme::PlutoLike;
  EXPECT_EQ(select_scheme(d, k, opt, 10).scheme, Scheme::PlutoLike);
}

TEST(Selector, ResolveCacheBytes) {
  RunOptions opt;
  opt.cache_bytes = 12345;
  EXPECT_EQ(resolve_cache_bytes(opt), 12345u);
  opt.cache_bytes = 0;
  EXPECT_GT(resolve_cache_bytes(opt), 0u);  // detection always yields something
}

TEST(Selector, BandedMatrixShrinksTz) {
  const DomainShape d{1000 * 1000, 1000, 1000, 2};
  const std::size_t z = 2 * 1024 * 1024;
  const int tz_const = compute_tz(z, d, {1, 2.8});
  const int tz_banded = compute_tz(z, d, {1, 2.8 + 5.0});
  EXPECT_LT(tz_banded, tz_const);
  EXPECT_GT(tz_banded, 0);
}

TEST(Selector, DegenerateTinyCacheFallsBackToNaive) {
  // A cache too small for even a minimal 2s-wide diamond: compute_tz yields 0
  // and no CATS scheme can keep a wavefront resident, so Auto streams naively
  // instead of paying tile overhead for nothing.
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 16;  // two doubles
  EXPECT_EQ(compute_tz(opt.cache_bytes, d, k), 0);
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_EQ(c.scheme, Scheme::Naive);

  // Overrides disable the fallback: the caller asked for specific tiles.
  opt.bz_override = 8;
  EXPECT_EQ(select_scheme(d, k, opt, 100).scheme, Scheme::Cats2);
}

TEST(Selector, SmallButUsableCacheStillTimeSkews) {
  // Slightly above degenerate: TZ = 0 but a >= 2s diamond fits, so the
  // rule of thumb moves to CATS2 rather than Naive (unchanged behavior).
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  const KernelCosts k{1, 2.8};
  RunOptions opt;
  opt.cache_bytes = 1024;
  EXPECT_EQ(compute_tz(opt.cache_bytes, d, k), 0);
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_EQ(c.scheme, Scheme::Cats2);
  EXPECT_GE(c.bz, 2);
}

TEST(Selector, WmaxBelowTwoSlope) {
  // Thinner than one diamond in the traversal dimension (wmax < 2s): the
  // formulas must stay finite and the clamps keep every parameter legal.
  const DomainShape d{4 * 4096, 4, 4096, 2};  // wmax = 4 < 2s = 6
  const KernelCosts k{3, 6.8};
  const std::size_t z = 1 << 20;
  EXPECT_GE(compute_tz(z, d, k), 0);
  EXPECT_GE(compute_bz(z, d, k), 6);  // clamped at 2s
  RunOptions opt;
  opt.cache_bytes = z;
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_TRUE(c.scheme == Scheme::Cats1 || c.scheme == Scheme::Cats2);
  if (c.scheme == Scheme::Cats1) EXPECT_GE(c.tz, 1);
  if (c.scheme == Scheme::Cats2) EXPECT_GE(c.bz, 6);
}

TEST(Selector, Float32ElementBytesScaleEq1Eq2) {
  // elem_bytes = 4 doubles Zd, so TZ doubles and BZ scales by sqrt(2).
  const DomainShape d{1000 * 1000, 1000, 1000, 2};
  const std::size_t z = 2 * 1024 * 1024;
  const KernelCosts k64{1, 2.8, 8.0};
  const KernelCosts k32{1, 2.8, 4.0};
  EXPECT_NEAR(compute_tz(z, d, k32), 2 * compute_tz(z, d, k64), 1);
  EXPECT_NEAR(static_cast<double>(compute_bz(z, d, k32)),
              std::sqrt(2.0) * static_cast<double>(compute_bz(z, d, k64)), 2.0);
}

TEST(Selector, Cats3BzClampedBelowAtTwoSlope) {
  const KernelCosts k{2, 4.8};
  EXPECT_EQ(compute_bz3(1, k), 4);  // 2s floor with a 1-byte cache
  EXPECT_GT(compute_bz3(64 * 1024 * 1024, k), 4);

  // Explicit CATS3 selection in 3D honors the same clamp on both BZ and BX.
  const DomainShape d{256ll * 256 * 256, 256, 256, 3};
  RunOptions opt;
  opt.scheme = Scheme::Cats3;
  opt.cache_bytes = 1;
  const SchemeChoice c = select_scheme(d, k, opt, 100);
  EXPECT_EQ(c.scheme, Scheme::Cats3);
  EXPECT_EQ(c.bz, 4);
  EXPECT_EQ(c.bx, 4);
}
