// Determinism under concurrency: repeated multi-threaded runs of every
// scheme must produce bit-identical results even though thread interleaving
// differs run to run — the synchronization, not luck, must order the
// computation.

#include <gtest/gtest.h>

#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

template <class MakeKernel>
void check_repeatable(MakeKernel&& make, int T, Scheme s, const char* label) {
  std::vector<double> first;
  for (int rep = 0; rep < 6; ++rep) {
    auto k = make();
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 4;  // oversubscribed on this host: max interleaving churn
    opt.cache_bytes = 16 * 1024;
    run(k, T, opt);
    std::vector<double> got;
    k.copy_result_to(got, T);
    if (rep == 0)
      first = got;
    else
      expect_bit_equal(got, first, label);
  }
}

}  // namespace

TEST(Determinism, Const2DAllSchemes) {
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike}) {
    check_repeatable(
        [] {
          ConstStar2D<1> k(73, 59, default_star2d_weights<1>());
          k.init(cats::test::init2d, 0.2);
          return k;
        },
        14, s, scheme_name(s));
  }
}

TEST(Determinism, Const3DCatsSchemes) {
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2, Scheme::Cats3}) {
    check_repeatable(
        [] {
          ConstStar3D<1> k(21, 17, 19, default_star3d_weights<1>());
          k.init(cats::test::init3d, -0.1);
          return k;
        },
        9, s, scheme_name(s));
  }
}

TEST(Determinism, FdtdUnderCats2) {
  check_repeatable(
      [] {
        Fdtd2D k(47, 39);
        k.init([](int x, int y) {
          return std::tuple{0.01 * x, 0.02 * y, std::sin(0.2 * x - 0.1 * y)};
        });
        return k;
      },
      11, Scheme::Cats2, "fdtd");
}

TEST(Determinism, BackToBackRunsOnSameKernel) {
  // Consecutive run() calls continue the evolution exactly like one long run
  // when the intermediate T is even (buffer parity returns to 0).
  ConstStar2D<1> once(64, 48, default_star2d_weights<1>());
  once.init(cats::test::init2d);
  RunOptions opt;
  opt.threads = 2;
  opt.cache_bytes = 32 * 1024;
  run(once, 20, opt);
  std::vector<double> want;
  once.copy_result_to(want, 20);

  ConstStar2D<1> twice(64, 48, default_star2d_weights<1>());
  twice.init(cats::test::init2d);
  run(twice, 10, opt);  // even: result parity 0 = next run's t=0 buffer
  run(twice, 10, opt);
  std::vector<double> got;
  twice.copy_result_to(got, 10);
  expect_bit_equal(got, want, "split-run");
}
