// CATS_CHECK macro + bounds-checked grid accessors (src/check/check.hpp).
//
// The death tests only exist where checks are compiled in (Debug or
// -DCATS_VALIDATE=ON); in plain Release the macro must compile to nothing,
// which the NoOpInRelease test pins down.

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "grid/aligned_buffer.hpp"
#include "grid/grid2d.hpp"
#include "grid/grid3d.hpp"

using namespace cats;

TEST(CatsCheck, PassingConditionIsSilent) {
  CATS_CHECK(1 + 1 == 2, "never printed %d", 0);
  SUCCEED();
}

#if CATS_CHECKS_ENABLED

TEST(CatsCheckDeathTest, FailureReportsCondition) {
  EXPECT_DEATH(CATS_CHECK(2 < 1, "x=%d out of [%d, %d)", 7, 0, 4),
               "CATS_CHECK failed: 2 < 1");
}

TEST(CatsCheckDeathTest, FailureReportsFormattedDetail) {
  EXPECT_DEATH(CATS_CHECK(2 < 1, "x=%d out of [%d, %d)", 7, 0, 4),
               "x=7 out of \\[0, 4\\)");
}

TEST(CatsCheckDeathTest, Grid2DIndexOutOfBoundsPrintsCoordinates) {
  Grid2D<double> g(8, 6, 1);
  EXPECT_DEATH((void)g.at(9, 0), "Grid2D x=9 out of \\[-1, 9\\)");
  EXPECT_DEATH((void)g.at(0, -2), "Grid2D y=-2 out of \\[-1, 7\\)");
}

TEST(CatsCheckDeathTest, Grid3DIndexOutOfBoundsPrintsCoordinates) {
  Grid3D<double> g(4, 4, 4, 1);
  EXPECT_DEATH((void)g.at(0, 0, 5), "Grid3D z=5 out of \\[-1, 5\\)");
}

TEST(CatsCheckDeathTest, GridConstructorRejectsBadDims) {
  EXPECT_DEATH(Grid2D<double>(0, 4, 1), "Grid2D dims");
  EXPECT_DEATH(Grid3D<double>(4, 4, -1, 1), "Grid3D dims");
}

TEST(CatsCheckDeathTest, FillRangesAreChecked) {
  Grid2D<double> g2(8, 6, 1);
  EXPECT_DEATH(g2.fill_rows(0, 8, 0.0), "Grid2D fill_rows");
  Grid3D<double> g3(4, 4, 4, 1);
  EXPECT_DEATH(g3.fill_slabs(-2, 2, 0.0), "Grid3D fill_slabs");
}

TEST(CatsCheckDeathTest, AlignedBufferIndexIsChecked) {
  AlignedBuffer<int> b(4);
  EXPECT_DEATH((void)b[4], "AlignedBuffer index 4 out of bounds \\(size 4\\)");
}

#else  // !CATS_CHECKS_ENABLED

TEST(CatsCheck, NoOpInRelease) {
  // Must not evaluate cost, not abort, and compile with arbitrary condition.
  Grid2D<double> g(8, 6, 1);
  CATS_CHECK(false, "disabled check must not fire");
  (void)g.index(100, 100);  // unchecked in Release: just an address
  SUCCEED();
}

#endif

TEST(CatsCheck, InBoundsAccessorsWork) {
  Grid2D<double> g(8, 6, 2);
  g.at(-2, -2) = 1.5;
  g.at(9, 7) = 2.5;
  EXPECT_EQ(g.at(-2, -2), 1.5);
  EXPECT_EQ(g.at(9, 7), 2.5);
  Grid3D<float> h(4, 5, 6, 1);
  h.at(-1, 5, 6) = 3.0f;
  EXPECT_EQ(h.at(-1, 5, 6), 3.0f);
}
