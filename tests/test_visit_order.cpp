// Dependency-order property tests.
//
// A checking kernel stamps each cell with the last timestep computed for it
// and, before "computing" (x, y[, z], t), asserts that
//   * the cell itself has been advanced exactly through t-1, and
//   * every box-neighborhood input (|dx|,|dy|,|dz| <= s) has a stamp >= t-1.
// Running it under every scheme with multiple threads validates the whole
// synchronization design (split-tiling waits, diamond done-flags, barriers)
// and that each space-time point is computed exactly once.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/run.hpp"

using namespace cats;

namespace {

class OrderCheck2D {
 public:
  OrderCheck2D(int w, int h, int slope)
      : w_(w), h_(h), s_(slope),
        stamp_(static_cast<std::size_t>(w) * h) {
    for (auto& a : stamp_) a.store(0);
  }

  int width() const { return w_; }
  int height() const { return h_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }

  void process_row(int t, int y, int x0, int x1) {
    for (int x = x0; x < x1; ++x) {
      if (at(x, y).load(std::memory_order_acquire) != t - 1) own_bad_++;
      for (int dy = -s_; dy <= s_; ++dy)
        for (int dx = -s_; dx <= s_; ++dx) {
          const int nx = x + dx, ny = y + dy;
          if (nx < 0 || nx >= w_ || ny < 0 || ny >= h_) continue;
          if (at(nx, ny).load(std::memory_order_acquire) < t - 1) dep_bad_++;
        }
      at(x, y).store(t, std::memory_order_release);
      visits_++;
    }
  }
  void process_row_scalar(int t, int y, int x0, int x1) {
    process_row(t, y, x0, x1);
  }

  long own_violations() const { return own_bad_.load(); }
  long dep_violations() const { return dep_bad_.load(); }
  long visits() const { return visits_.load(); }

 private:
  std::atomic<int>& at(int x, int y) {
    return stamp_[static_cast<std::size_t>(y) * w_ + x];
  }

  int w_, h_, s_;
  std::vector<std::atomic<int>> stamp_;
  std::atomic<long> own_bad_{0}, dep_bad_{0}, visits_{0};
};

class OrderCheck3D {
 public:
  OrderCheck3D(int w, int h, int d, int slope)
      : w_(w), h_(h), d_(d), s_(slope),
        stamp_(static_cast<std::size_t>(w) * h * d) {
    for (auto& a : stamp_) a.store(0);
  }

  int width() const { return w_; }
  int height() const { return h_; }
  int depth() const { return d_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }

  void process_row(int t, int y, int z, int x0, int x1) {
    for (int x = x0; x < x1; ++x) {
      if (at(x, y, z).load(std::memory_order_acquire) != t - 1) own_bad_++;
      for (int dz = -s_; dz <= s_; ++dz)
        for (int dy = -s_; dy <= s_; ++dy)
          for (int dx = -s_; dx <= s_; ++dx) {
            const int nx = x + dx, ny = y + dy, nz = z + dz;
            if (nx < 0 || nx >= w_ || ny < 0 || ny >= h_ || nz < 0 || nz >= d_)
              continue;
            if (at(nx, ny, nz).load(std::memory_order_acquire) < t - 1)
              dep_bad_++;
          }
      at(x, y, z).store(t, std::memory_order_release);
      visits_++;
    }
  }
  void process_row_scalar(int t, int y, int z, int x0, int x1) {
    process_row(t, y, z, x0, x1);
  }

  long own_violations() const { return own_bad_.load(); }
  long dep_violations() const { return dep_bad_.load(); }
  long visits() const { return visits_.load(); }

 private:
  std::atomic<int>& at(int x, int y, int z) {
    return stamp_[(static_cast<std::size_t>(z) * h_ + y) * w_ + x];
  }

  int w_, h_, d_, s_;
  std::vector<std::atomic<int>> stamp_;
  std::atomic<long> own_bad_{0}, dep_bad_{0}, visits_{0};
};

static_assert(RowKernel2D<OrderCheck2D>);
static_assert(RowKernel3D<OrderCheck3D>);

}  // namespace

namespace {

class OrderCheck1D {
 public:
  OrderCheck1D(int w, int slope)
      : w_(w), s_(slope), stamp_(static_cast<std::size_t>(w)) {
    for (auto& a : stamp_) a.store(0);
  }

  int width() const { return w_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) const { out.clear(); }

  void process_row(int t, int x0, int x1) {
    for (int x = x0; x < x1; ++x) {
      if (stamp_[static_cast<std::size_t>(x)].load(std::memory_order_acquire) !=
          t - 1)
        own_bad_++;
      for (int dx = -s_; dx <= s_; ++dx) {
        const int nx = x + dx;
        if (nx < 0 || nx >= w_) continue;
        if (stamp_[static_cast<std::size_t>(nx)].load(
                std::memory_order_acquire) < t - 1)
          dep_bad_++;
      }
      stamp_[static_cast<std::size_t>(x)].store(t, std::memory_order_release);
      visits_++;
    }
  }
  void process_row_scalar(int t, int x0, int x1) { process_row(t, x0, x1); }

  long own_violations() const { return own_bad_.load(); }
  long dep_violations() const { return dep_bad_.load(); }
  long visits() const { return visits_.load(); }

 private:
  int w_, s_;
  std::vector<std::atomic<int>> stamp_;
  std::atomic<long> own_bad_{0}, dep_bad_{0}, visits_{0};
};

static_assert(RowKernel1D<OrderCheck1D>);

}  // namespace

TEST(VisitOrder1D, AllSchemesRespectDependencies) {
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::PlutoLike}) {
    for (int threads : {1, 4}) {
      const int W = 211, T = 15;
      OrderCheck1D k(W, 2);
      RunOptions opt;
      opt.scheme = s;
      opt.threads = threads;
      opt.cache_bytes = 2 * 1024;
      run(k, T, opt);
      EXPECT_EQ(k.own_violations(), 0) << scheme_name(s) << " t=" << threads;
      EXPECT_EQ(k.dep_violations(), 0) << scheme_name(s) << " t=" << threads;
      EXPECT_EQ(k.visits(), static_cast<long>(W) * T);
    }
  }
}

TEST(VisitOrder2D, AllSchemesRespectDependencies) {
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike}) {
    for (int threads : {1, 4}) {
      for (int slope : {1, 2}) {
        const int W = 53, H = 41, T = 12;
        OrderCheck2D k(W, H, slope);
        RunOptions opt;
        opt.scheme = s;
        opt.threads = threads;
        opt.cache_bytes = 8 * 1024;  // force many chunks / small diamonds
        run(k, T, opt);
        EXPECT_EQ(k.own_violations(), 0)
            << scheme_name(s) << " threads=" << threads << " s=" << slope;
        EXPECT_EQ(k.dep_violations(), 0)
            << scheme_name(s) << " threads=" << threads << " s=" << slope;
        EXPECT_EQ(k.visits(), static_cast<long>(W) * H * T);
      }
    }
  }
}

TEST(VisitOrder3D, AllSchemesRespectDependencies) {
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2, Scheme::Cats3,
                   Scheme::PlutoLike}) {
    for (int threads : {1, 4}) {
      const int W = 18, H = 15, D = 17, T = 8;
      OrderCheck3D k(W, H, D, 1);
      RunOptions opt;
      opt.scheme = s;
      opt.threads = threads;
      opt.cache_bytes = 8 * 1024;
      run(k, T, opt);
      EXPECT_EQ(k.own_violations(), 0) << scheme_name(s) << " t=" << threads;
      EXPECT_EQ(k.dep_violations(), 0) << scheme_name(s) << " t=" << threads;
      EXPECT_EQ(k.visits(), static_cast<long>(W) * H * D * T);
    }
  }
}

TEST(VisitOrder2D, ForcedTinyTilesStillOrdered) {
  const int W = 31, H = 29, T = 10;
  for (int tz : {1, 2, 3}) {
    OrderCheck2D k(W, H, 1);
    RunOptions opt;
    opt.scheme = Scheme::Cats1;
    opt.threads = 4;
    opt.tz_override = tz;
    run(k, T, opt);
    EXPECT_EQ(k.dep_violations(), 0) << "tz=" << tz;
    EXPECT_EQ(k.visits(), static_cast<long>(W) * H * T);
  }
  for (int bz : {2, 3, 5}) {
    OrderCheck2D k(W, H, 1);
    RunOptions opt;
    opt.scheme = Scheme::Cats2;
    opt.threads = 4;
    opt.bz_override = bz;
    run(k, T, opt);
    EXPECT_EQ(k.dep_violations(), 0) << "bz=" << bz;
    EXPECT_EQ(k.visits(), static_cast<long>(W) * H * T);
  }
}

TEST(VisitOrder3D, Cats3TinyTilesStillOrdered) {
  const int W = 14, H = 12, D = 13, T = 7;
  for (int bz : {2, 4}) {
    for (int bx : {2, 5}) {
      OrderCheck3D k(W, H, D, 1);
      RunOptions opt;
      opt.scheme = Scheme::Cats3;
      opt.threads = 4;
      opt.bz_override = bz;
      opt.bx_override = bx;
      run(k, T, opt);
      EXPECT_EQ(k.own_violations(), 0) << "bz=" << bz << " bx=" << bx;
      EXPECT_EQ(k.dep_violations(), 0) << "bz=" << bz << " bx=" << bx;
      EXPECT_EQ(k.visits(), static_cast<long>(W) * H * D * T);
    }
  }
}
