// SIMD wrapper tests: VecD lane semantics match ScalarD exactly.

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "simd/detect.hpp"
#include "simd/vecd.hpp"

using cats::simd::ScalarD;
using cats::simd::VecD;

namespace {
constexpr int W = VecD::width;
}

TEST(VecD, LoadStoreRoundTrip) {
  alignas(64) std::array<double, 16> in{};
  alignas(64) std::array<double, 16> out{};
  for (int i = 0; i < 16; ++i) in[static_cast<std::size_t>(i)] = i * 1.25 - 3.0;
  VecD::load(in.data()).store(out.data());
  for (int i = 0; i < W; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], in[static_cast<std::size_t>(i)]);
  VecD::load_aligned(in.data() + 8).store_aligned(out.data() + 8);
  for (int i = 0; i < W && i < 8; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(8 + i)], in[static_cast<std::size_t>(8 + i)]);
}

TEST(VecD, ArithmeticMatchesScalarBitExactly) {
  alignas(64) std::array<double, 8> a{0.1, -2.5, 3.75, 1e-17, 4.0, -0.0, 123.456, 2.0};
  alignas(64) std::array<double, 8> b{1.5, 0.25, -7.0, 2e17, 0.5, 3.0, -0.001, 9.0};
  alignas(64) std::array<double, 8> vres{};

  auto check = [&](auto vec_op, auto scal_op, const char* name) {
    vec_op().store(vres.data());
    for (int i = 0; i < W; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const double expect = scal_op(a[ii], b[ii]);
      EXPECT_EQ(std::memcmp(&vres[ii], &expect, 8), 0)
          << name << " lane " << i;
    }
  };
  check([&] { return VecD::load(a.data()) + VecD::load(b.data()); },
        [](double x, double y) { return x + y; }, "+");
  check([&] { return VecD::load(a.data()) - VecD::load(b.data()); },
        [](double x, double y) { return x - y; }, "-");
  check([&] { return VecD::load(a.data()) * VecD::load(b.data()); },
        [](double x, double y) { return x * y; }, "*");
}

TEST(VecD, BroadcastAndZero) {
  alignas(64) std::array<double, 8> out{};
  VecD::broadcast(3.5).store(out.data());
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 3.5);
  VecD::zero().store(out.data());
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 0.0);
}

TEST(VecD, HsumSumsAllLanes) {
  alignas(64) std::array<double, 8> a{};
  double expect = 0.0;
  for (int i = 0; i < W; ++i) {
    a[static_cast<std::size_t>(i)] = i + 1.0;
    expect += i + 1.0;
  }
  EXPECT_DOUBLE_EQ(VecD::load(a.data()).hsum(), expect);
}

TEST(ScalarD, MirrorsInterface) {
  double x = 0.0;
  (ScalarD::broadcast(2.0) * ScalarD::broadcast(3.0) + ScalarD::broadcast(1.0))
      .store(&x);
  EXPECT_EQ(x, 7.0);
  EXPECT_EQ(ScalarD::width, 1);
  EXPECT_EQ(ScalarD::fma(ScalarD{2.0}, ScalarD{3.0}, ScalarD{4.0}).v, 10.0);
}

TEST(Detect, BaselineFeaturesPresent) {
  const auto f = cats::simd::detect_cpu_features();
  EXPECT_TRUE(f.sse2);  // x86-64 guarantee
  EXPECT_FALSE(cats::simd::cpu_features_string().empty());
}

TEST(Detect, CompiledWidthSupportedAtRuntime) {
  const auto f = cats::simd::detect_cpu_features();
  if (W == 8) { EXPECT_TRUE(f.avx512f); }
  if (W == 4) { EXPECT_TRUE(f.avx2 || f.avx); }
  if (W >= 2) { EXPECT_TRUE(f.sse2); }
}
