// Ablation-variant correctness: the alternatives measured in
// bench/ablation_variants must be bit-exact too, or the comparison is void.

#include <gtest/gtest.h>

#include "baseline/cache_oblivious.hpp"
#include "core/reference.hpp"
#include "core/run.hpp"
#include "core/variants.hpp"
#include "helpers.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

template <int S>
std::vector<double> reference_2d(int W, int H, int T) {
  ConstStar2D<S> k(W, H, default_star2d_weights<S>());
  k.init(cats::test::init2d, 0.25);
  run_reference(k, T);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

TEST(DiagonalWavefront, BitExactAcrossChunkHeights) {
  const auto want = reference_2d<1>(47, 31, 13);
  for (int tz : {1, 4, 13, 50}) {
    ConstStar2D<1> k(47, 31, default_star2d_weights<1>());
    k.init(cats::test::init2d, 0.25);
    run_diagonal_wavefront_2d(k, 13, tz);
    std::vector<double> got;
    k.copy_result_to(got, 13);
    expect_bit_equal(got, want, "diagonal");
  }
}

TEST(DiagonalWavefront, HigherSlope) {
  const auto want = reference_2d<2>(33, 29, 7);
  ConstStar2D<2> k(33, 29, default_star2d_weights<2>());
  k.init(cats::test::init2d, 0.25);
  run_diagonal_wavefront_2d(k, 7, 3);
  std::vector<double> got;
  k.copy_result_to(got, 7);
  expect_bit_equal(got, want, "diagonal-s2");
}

TEST(Cats2Dynamic, BitExactAcrossThreadsAndDiamonds) {
  const auto want = reference_2d<1>(53, 37, 11);
  for (int threads : {1, 3, 4}) {
    for (int bz : {2, 5, 16, 200}) {
      ConstStar2D<1> k(53, 37, default_star2d_weights<1>());
      k.init(cats::test::init2d, 0.25);
      RunOptions opt;
      opt.threads = threads;
      run_cats2_dynamic(k, 11, opt, bz);
      std::vector<double> got;
      k.copy_result_to(got, 11);
      expect_bit_equal(got, want, "dynamic");
    }
  }
}

TEST(CacheOblivious, BitExact2D) {
  for (auto [W, H, T] : {std::tuple{37, 23, 7}, std::tuple{64, 64, 20},
                         std::tuple{101, 53, 33}}) {
    const auto want = reference_2d<1>(W, H, T);
    ConstStar2D<1> k(W, H, default_star2d_weights<1>());
    k.init(cats::test::init2d, 0.25);
    run_cache_oblivious(k, T);
    std::vector<double> got;
    k.copy_result_to(got, T);
    expect_bit_equal(got, want, "oblivious-2d");
  }
}

TEST(CacheOblivious, BitExact2DHigherSlope) {
  const auto want = reference_2d<2>(61, 47, 13);
  ConstStar2D<2> k(61, 47, default_star2d_weights<2>());
  k.init(cats::test::init2d, 0.25);
  run_cache_oblivious(k, 13);
  std::vector<double> got;
  k.copy_result_to(got, 13);
  expect_bit_equal(got, want, "oblivious-s2");
}

TEST(CacheOblivious, BitExact3D) {
  ConstStar3D<1> ref(18, 14, 16, default_star3d_weights<1>());
  ref.init(cats::test::init3d, 0.0);
  run_reference(ref, 11);
  std::vector<double> want;
  ref.copy_result_to(want, 11);

  ConstStar3D<1> k(18, 14, 16, default_star3d_weights<1>());
  k.init(cats::test::init3d, 0.0);
  run_cache_oblivious(k, 11);
  std::vector<double> got;
  k.copy_result_to(got, 11);
  expect_bit_equal(got, want, "oblivious-3d");
}

TEST(CacheOblivious, TallAndWideExtremes) {
  // Degenerate aspect ratios exercise both cut rules to their base cases.
  for (auto [W, H, T] : {std::tuple{16, 200, 3}, std::tuple{16, 4, 64}}) {
    const auto want = reference_2d<1>(W, H, T);
    ConstStar2D<1> k(W, H, default_star2d_weights<1>());
    k.init(cats::test::init2d, 0.25);
    run_cache_oblivious(k, T);
    std::vector<double> got;
    k.copy_result_to(got, T);
    expect_bit_equal(got, want, "oblivious-extreme");
  }
}

TEST(Cats2Dynamic, RepeatedRunsDeterministic) {
  // The dynamic schedule varies run to run; the numbers must not.
  std::vector<double> first;
  for (int rep = 0; rep < 5; ++rep) {
    ConstStar2D<1> k(41, 27, default_star2d_weights<1>());
    k.init(cats::test::init2d, 0.25);
    RunOptions opt;
    opt.threads = 4;
    run_cats2_dynamic(k, 9, opt, 6);
    std::vector<double> got;
    k.copy_result_to(got, 9);
    if (rep == 0)
      first = got;
    else
      expect_bit_equal(got, first, "rep");
  }
}
