// Static concurrency & footprint verifier (src/analysis): positive runs of
// both engines, plus the negative tests that prove the checkers actually
// detect what they claim to — a weakened barrier order must produce a
// counterexample trace, and a doctored kernel access must be flagged with
// its exact coordinates.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>

#include "analysis/footprint.hpp"
#include "analysis/protocols.hpp"
#include "analysis/record.hpp"
#include "analysis/weak_memory.hpp"
#include "grid/grid2d.hpp"
#include "kernels/const2d.hpp"
#include "plan/emit.hpp"

namespace {

using namespace cats;
using namespace cats::analysis;

// ---- model checker ---------------------------------------------------------

TEST(ModelCheck, AllPrimitivesVerifyAtProductionOrders) {
  for (const auto& pc : check_all_primitives()) {
    EXPECT_TRUE(pc.result.error.empty()) << pc.scenario << ": "
                                         << pc.result.error;
    EXPECT_FALSE(pc.result.has_cex())
        << pc.scenario << ": " << pc.result.cex.front().reason;
    EXPECT_GT(pc.result.executions, 0) << pc.scenario;
  }
}

TEST(ModelCheck, BarrierReleaseWeakeningYieldsCounterexample) {
  // The sense publish is the barrier's release edge; demoting it to relaxed
  // must produce a concrete interleaving whose data read races.
  const ExploreResult r =
      check_with_site_order(SiteId::kSbSensePublish, std::memory_order_relaxed);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.has_cex());
  EXPECT_NE(r.cex.front().reason.find("data race"), std::string::npos)
      << r.cex.front().reason;
  EXPECT_FALSE(r.cex.front().trace.empty());
}

TEST(ModelCheck, MinimalitySweepRefutesWeakeningsAndAuditsPinLatch) {
  bool saw_pin_audit = false;
  for (const auto& f : minimality_sweep()) {
    EXPECT_TRUE(f.error.empty()) << f.prim << "." << f.site << ": " << f.error;
    if (f.strengthening) {
      // The one historical-strength audit: pin latch at its pre-downgrade
      // acq_rel/acquire must still pass (documents the applied weakening).
      EXPECT_TRUE(f.safe) << f.prim << "." << f.site;
      if (std::strcmp(f.prim, "PinLatch") == 0) saw_pin_audit = true;
    } else {
      // Every production order is one-step minimal: each weakening refuted
      // with a counterexample.
      EXPECT_FALSE(f.safe) << f.prim << "." << f.site
                           << " weakens safely: production order over-strong";
      EXPECT_FALSE(f.cex_reason.empty()) << f.prim << "." << f.site;
    }
  }
  EXPECT_TRUE(saw_pin_audit);
}

// ---- footprint analyzer ----------------------------------------------------

TEST(Footprint, CleanKernelCertifiesOverCats1) {
  constexpr int S = 2;
  ConstStar2D<S, RecElem64> k(48, 16, default_star2d_weights<S, RecElem64>());
  plan_ir::TilePlan p = plan_ir::emit_cats1(2, 48, 16, 1, 4, S, 2, 2);
  p.certify_residency = true;
  p.clamped = false;
  FootprintChecker chk(2, S);
  chk.add_state_grid_2d(k.grid_at(0), 0, "buf0");
  chk.add_state_grid_2d(k.grid_at(1), 1, "buf1");
  RunOptions opt;
  opt.threads = p.threads;
  opt.nt_stores = true;
  opt.unroll_t = 0;
  opt.prefetch_dist = 0;
  RecWrap2D<ConstStar2D<S, RecElem64>> wrap(k, chk);
  drive_plan_2d(wrap, p, opt, chk);
  for (const auto& d : chk.diags()) ADD_FAILURE() << d.message;
  EXPECT_GT(chk.loads(), 0);
  EXPECT_GT(chk.stores(), 0);
}

TEST(Footprint, FullSweepCertifies) {
  for (const auto& rep : footprint_sweep()) {
    for (const auto& d : rep.diags)
      ADD_FAILURE() << rep.config << ": " << d.message;
  }
}

/// Doctored access #1: a load one row beyond the slope-S halo must be
/// flagged with its exact coordinates.
TEST(Footprint, OffByOneHaloReadFlagged) {
  constexpr int S = 2;
  Grid2D<RecElem64> src(32, 12, S);
  Grid2D<RecElem64> dst(32, 12, S);
  FootprintChecker chk(2, S);
  chk.add_state_grid_2d(src, 0, "buf0");
  chk.add_state_grid_2d(dst, 1, "buf1");
  chk.install();
  {
    const FpStage st{1, 5, 0, 0, 16, false};
    FpCallScope scope(chk, &st, 1);
    // Stage row y=5 at slope 2 may read rows 3..7; row 2 is one too far.
    (void)RecVec64::load(src.row(5 - S - 1) + 4);
  }
  FootprintChecker::uninstall();
  ASSERT_EQ(chk.diags().size(), 1U);
  const std::string& m = chk.diags().front().message;
  EXPECT_NE(m.find("halo violation"), std::string::npos) << m;
  EXPECT_NE(m.find("x=[4,"), std::string::npos) << m;
  EXPECT_NE(m.find("y=2"), std::string::npos) << m;
}

/// Doctored access #2: a misaligned stream store (store_aligned streams
/// unconditionally) must be a hard alignment diagnostic, again with exact
/// coordinates.
TEST(Footprint, MisalignedStreamStoreFlagged) {
  if constexpr (RecNtVec64::width > 1) {
    constexpr int S = 2;
    Grid2D<RecElem64> src(32, 12, S);
    Grid2D<RecElem64> dst(32, 12, S);
    FootprintChecker chk(2, S);
    chk.add_state_grid_2d(src, 0, "buf0");
    chk.add_state_grid_2d(dst, 1, "buf1");
    chk.install();
    {
      const FpStage st{1, 5, 0, 0, 32, true};
      FpCallScope scope(chk, &st, 1);
      // Geometrically legal, but one element off natural vector alignment.
      RecNtVec64 v{};
      v.store_aligned(dst.row(5) + 1);
    }
    FootprintChecker::uninstall();
    ASSERT_EQ(chk.diags().size(), 1U);
    const std::string& m = chk.diags().front().message;
    EXPECT_NE(m.find("misaligned stream store"), std::string::npos) << m;
    EXPECT_NE(m.find("x=1"), std::string::npos) << m;
    EXPECT_NE(m.find("y=5"), std::string::npos) << m;
  }
}

/// Doctored access #3: reloading a cache line that was streamed within the
/// same tile falsifies the NT residency certification.
TEST(Footprint, StreamedLineReloadFlagged) {
  constexpr int S = 1;
  Grid2D<RecElem64> src(32, 12, S);
  Grid2D<RecElem64> dst(32, 12, S);
  FootprintChecker chk(2, S);
  chk.add_state_grid_2d(src, 0, "buf0");
  chk.add_state_grid_2d(dst, 1, "buf1");
  chk.install();
  chk.begin_tile();
  {
    const FpStage st{1, 5, 0, 0, 32, true};
    FpCallScope scope(chk, &st, 1);
    RecNtVec64 v{};
    v.store_aligned(dst.row(5));  // rows are 64-byte aligned: streams
  }
  {
    const FpStage st{2, 5, 0, 0, 32, false};
    FpCallScope scope(chk, &st, 1);
    (void)RecVec64::load(dst.row(5));  // same line, same tile: flagged
  }
  chk.end_tile();
  FootprintChecker::uninstall();
  ASSERT_EQ(chk.diags().size(), 1U);
  EXPECT_NE(chk.diags().front().message.find("streamed within this tile"),
            std::string::npos)
      << chk.diags().front().message;
}

}  // namespace
