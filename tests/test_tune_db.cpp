// Tuning subsystem tests: JSON round-trip of the persistent DB, graceful
// handling of corrupt files, machine-fingerprint isolation, and the
// apply_tuning resolution order (DB hit -> explicit params; miss -> Eq. 1/2).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bench_harness/machine.hpp"
#include "core/run.hpp"
#include "core/selector.hpp"
#include "kernels/const2d.hpp"
#include "tune/db.hpp"
#include "tune/json.hpp"
#include "tune/tuner.hpp"

using namespace cats;
using namespace cats::tune;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cats_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

DbKey sample_key(std::string machine) {
  DbKey k;
  k.machine = std::move(machine);
  k.kernel = "const2d/s1";
  k.scheme_key = "auto";
  k.shape = "d2/n^20/w^10";
  k.threads = 2;
  return k;
}

DbEntry sample_entry() {
  DbEntry e;
  e.scheme = "CATS2";
  e.bz = 42;
  e.pilot_seconds = 0.125;
  e.analytic_seconds = 0.25;
  e.cache_bytes = 1 << 20;
  e.cs_slack = 1.2;
  return e;
}

}  // namespace

TEST(Json, ParsesScalarsArraysObjects) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\n"},
                             "t": true, "n": null})", v));
  EXPECT_EQ(v.get_number("a"), 1.5);
  ASSERT_NE(v.get("b"), nullptr);
  EXPECT_EQ(v.get("b")->items.size(), 3u);
  EXPECT_EQ(v.get("c")->get_string("d"), "x\n");
  EXPECT_TRUE(v.get("t")->boolean);
  EXPECT_EQ(v.get("n")->kind, JsonValue::Kind::Null);
}

TEST(Json, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(json_parse("{", v));
  EXPECT_FALSE(json_parse("{\"a\": }", v));
  EXPECT_FALSE(json_parse("[1, 2", v));
  EXPECT_FALSE(json_parse("{} trailing", v));
  EXPECT_FALSE(json_parse("", v));
}

TEST(Json, EscapeRoundTrips) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  JsonValue v;
  ASSERT_TRUE(json_parse("{\"k\": " + json_quote(nasty) + "}", v));
  EXPECT_EQ(v.get_string("k"), nasty);
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(1e300), "1e+300");
}

TEST(ShapeBucket, Log2BucketsAndFormat) {
  EXPECT_EQ(log2_bucket(1), 0);
  EXPECT_EQ(log2_bucket(2), 1);
  EXPECT_EQ(log2_bucket(1 << 20), 20);
  // Sizes within a factor of two share a bucket.
  EXPECT_EQ(log2_bucket((1 << 20) + 1), log2_bucket((1 << 21) - 1));
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  EXPECT_EQ(shape_bucket(d), "d2/n^20/w^10");
}

TEST(TuneDb, RoundTripSaveLoad) {
  const std::string path = temp_path("roundtrip.json");
  const DbKey key = sample_key("machine-A");
  DbEntry e = sample_entry();
  e.run_threads = 1;

  TuneDb db;
  db.put(key, e);
  db.put(sample_key("machine-B"), sample_entry());  // second row survives too
  ASSERT_TRUE(db.save(path));

  TuneDb loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 2u);
  const DbEntry* got = loaded.find(key);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->scheme, "CATS2");
  EXPECT_EQ(got->bz, 42);
  EXPECT_EQ(got->run_threads, 1);
  EXPECT_DOUBLE_EQ(got->pilot_seconds, 0.125);
  EXPECT_DOUBLE_EQ(got->cs_slack, 1.2);
  EXPECT_EQ(got->cache_bytes, std::size_t{1} << 20);
  std::remove(path.c_str());
}

TEST(TuneDb, PutOverwritesSameKey) {
  TuneDb db;
  db.put(sample_key("m"), sample_entry());
  DbEntry e2 = sample_entry();
  e2.bz = 99;
  db.put(sample_key("m"), e2);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find(sample_key("m"))->bz, 99);
}

TEST(TuneDb, CorruptedFileIsIgnoredGracefully) {
  const std::string path = temp_path("corrupt.json");
  for (const char* junk :
       {"{ this is not json", "", "[1,2,3]", "{\"version\": 999, \"entries\": []}",
        "{\"version\": 1, \"entries\": 7}"}) {
    write_file(path, junk);
    TuneDb db;
    EXPECT_FALSE(db.load(path)) << junk;
    EXPECT_EQ(db.size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(TuneDb, TruncatedFileIsIgnoredGracefully) {
  const std::string path = temp_path("truncated.json");
  TuneDb db;
  db.put(sample_key("m"), sample_entry());
  ASSERT_TRUE(db.save(path));
  std::ifstream in(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  write_file(path, full.substr(0, full.size() / 2));
  TuneDb loaded;
  EXPECT_FALSE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(TuneDb, IncompleteRowsAreSkippedNotFatal) {
  const std::string path = temp_path("partial.json");
  write_file(path, R"({"version": 1, "entries": [
    {"kernel": "x"},
    17,
    {"machine": "m", "kernel": "const2d/s1", "scheme_key": "auto",
     "shape": "d2/n^20/w^10", "threads": 2, "scheme": "CATS2", "bz": 42}
  ]})");
  TuneDb db;
  EXPECT_TRUE(db.load(path));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_NE(db.find(sample_key("m")), nullptr);
  std::remove(path.c_str());
}

TEST(TuneDb, MissingFileLoadsEmpty) {
  TuneDb db;
  EXPECT_FALSE(db.load(temp_path("does_not_exist.json")));
  EXPECT_EQ(db.size(), 0u);
}

TEST(ApplyTuning, HitFromThisMachineAppliesEntry) {
  const std::string path = temp_path("hit.json");
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  DbKey key = sample_key(bench::machine_fingerprint());
  key.shape = shape_bucket(d);
  TuneDb db;
  db.put(key, sample_entry());
  ASSERT_TRUE(db.save(path));
  invalidate_cache();

  RunOptions opt;
  opt.threads = 2;
  opt.tuning = Tuning::UseDb;
  opt.tuning_db_path = path.c_str();
  const RunOptions tuned = apply_tuning(opt, "const2d/s1", d);
  EXPECT_EQ(tuned.scheme, Scheme::Cats2);
  EXPECT_EQ(tuned.bz_override, 42);

  // select_scheme then executes the tuned diamond verbatim.
  const KernelCosts costs{1, 2.8};
  const SchemeChoice c = select_scheme(d, costs, tuned, 100);
  EXPECT_EQ(c.scheme, Scheme::Cats2);
  EXPECT_EQ(c.bz, 42);
  std::remove(path.c_str());
  invalidate_cache();
}

TEST(ApplyTuning, ForeignMachineEntryIsNotApplied) {
  const std::string path = temp_path("foreign.json");
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  DbKey key = sample_key("some-other-machine|l2=524288|hw=64");
  key.shape = shape_bucket(d);
  TuneDb db;
  db.put(key, sample_entry());
  ASSERT_TRUE(db.save(path));
  invalidate_cache();

  RunOptions opt;
  opt.threads = 2;
  opt.tuning = Tuning::UseDb;
  opt.tuning_db_path = path.c_str();
  const RunOptions tuned = apply_tuning(opt, "const2d/s1", d);
  EXPECT_EQ(tuned.scheme, Scheme::Auto);  // untouched: fall back to Eq. 1/2
  EXPECT_EQ(tuned.bz_override, 0);
  std::remove(path.c_str());
  invalidate_cache();
}

TEST(ApplyTuning, MissesOnDifferentThreadsShapeOrKernel) {
  const std::string path = temp_path("misskeys.json");
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  DbKey key = sample_key(bench::machine_fingerprint());
  key.shape = shape_bucket(d);
  TuneDb db;
  db.put(key, sample_entry());
  ASSERT_TRUE(db.save(path));
  invalidate_cache();

  RunOptions opt;
  opt.threads = 4;  // entry was tuned at 2 threads
  opt.tuning = Tuning::UseDb;
  opt.tuning_db_path = path.c_str();
  EXPECT_EQ(apply_tuning(opt, "const2d/s1", d).scheme, Scheme::Auto);

  opt.threads = 2;
  EXPECT_EQ(apply_tuning(opt, "const3d/s1", d).scheme, Scheme::Auto);

  const DomainShape other{1 << 22, 1 << 11, 1 << 11, 2};
  EXPECT_EQ(apply_tuning(opt, "const2d/s1", other).scheme, Scheme::Auto);
  std::remove(path.c_str());
  invalidate_cache();
}

TEST(ApplyTuning, TuningOffAndExplicitSchemesBypassDb) {
  const std::string path = temp_path("off.json");
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  DbKey key = sample_key(bench::machine_fingerprint());
  key.shape = shape_bucket(d);
  key.threads = 1;
  TuneDb db;
  db.put(key, sample_entry());
  ASSERT_TRUE(db.save(path));
  invalidate_cache();

  RunOptions opt;
  opt.tuning = Tuning::Off;
  opt.tuning_db_path = path.c_str();
  EXPECT_EQ(apply_tuning(opt, "const2d/s1", d).bz_override, 0);

  opt.tuning = Tuning::UseDb;
  opt.scheme = Scheme::Cats1;  // only Scheme::Auto consults the DB
  EXPECT_EQ(apply_tuning(opt, "const2d/s1", d).scheme, Scheme::Cats1);
  EXPECT_EQ(apply_tuning(opt, "const2d/s1", d).tz_override, 0);
  std::remove(path.c_str());
  invalidate_cache();
}

TEST(ApplyTuning, CorruptDbNeverBreaksARun) {
  const std::string path = temp_path("corrupt_run.json");
  write_file(path, "{\"version\": 1, \"entries\": [{]}");
  invalidate_cache();

  ConstStar2D<1> k(64, 64, default_star2d_weights<1>());
  k.init([](int x, int y) { return 0.1 * x + 0.2 * y; }, 0.0);
  RunOptions opt;
  opt.tuning = Tuning::UseDb;
  opt.tuning_db_path = path.c_str();
  opt.cache_bytes = 1 << 20;
  const SchemeChoice c = run(k, 8, opt);  // must behave exactly like Tuning::Off
  EXPECT_NE(c.scheme, Scheme::Auto);
  std::remove(path.c_str());
  invalidate_cache();
}

TEST(Tuner, NeighborhoodSeedFirstDedupedAndClamped) {
  const DomainShape d{1 << 20, 1 << 10, 1 << 10, 2};
  TuneConfig cfg;
  const SchemeChoice seed1{Scheme::Cats1, 10, 0, 0};
  const auto c1 = neighborhood(seed1, d, 1, 100, cfg);
  ASSERT_FALSE(c1.empty());
  EXPECT_EQ(c1[0].scheme, Scheme::Cats1);
  EXPECT_EQ(c1[0].tz, 10);  // element 0 is the analytic seed
  for (const auto& c : c1) {
    if (c.scheme == Scheme::Cats1) {
      EXPECT_GE(c.tz, 1);
      EXPECT_LE(c.tz, 100);
    } else {
      EXPECT_GE(c.bz, 2);
    }
  }
  // Dedup: no two identical candidates.
  for (std::size_t i = 0; i < c1.size(); ++i)
    for (std::size_t j = i + 1; j < c1.size(); ++j)
      EXPECT_FALSE(c1[i].scheme == c1[j].scheme && c1[i].tz == c1[j].tz &&
                   c1[i].bz == c1[j].bz && c1[i].bx == c1[j].bx);

  const SchemeChoice seed2{Scheme::Cats2, 0, 40, 0};
  const auto c2 = neighborhood(seed2, d, 2, 100, cfg);
  EXPECT_EQ(c2[0].bz, 40);
  for (const auto& c : c2)
    if (c.scheme == Scheme::Cats2) EXPECT_GE(c.bz, 4);  // 2s clamp
}

TEST(Tuner, SearchFindsAWinnerAndStoresIt) {
  const std::string path = temp_path("search.json");
  std::remove(path.c_str());
  invalidate_cache();

  auto make = [] {
    ConstStar2D<1> k(128, 128, default_star2d_weights<1>());
    k.init([](int x, int y) { return 0.01 * x + 0.02 * y; }, 0.0);
    return k;
  };
  RunOptions base;
  base.threads = 1;
  base.cache_bytes = 256 * 1024;
  TuneConfig cfg;
  cfg.pilot_t = 4;
  cfg.max_pilot_t = 8;
  cfg.reps = 1;
  const TuneResult res = search_and_store(make, 16, base, path, cfg);
  EXPECT_GT(res.all.size(), 1u);
  EXPECT_GT(res.best_seconds, 0.0);
  EXPECT_LE(res.best_seconds, res.analytic_seconds);
  EXPECT_EQ(res.key.kernel, "const2d/s1");

  // The persisted entry resolves on the very next UseDb plan.
  TuneDb db;
  ASSERT_TRUE(db.load(path));
  EXPECT_EQ(db.size(), 1u);
  RunOptions opt = base;
  opt.tuning = Tuning::UseDb;
  opt.tuning_db_path = path.c_str();
  auto k = make();
  const SchemeChoice planned = plan(k, 16, opt);
  EXPECT_EQ(scheme_name(planned.scheme), res.entry.scheme);
  std::remove(path.c_str());
  invalidate_cache();
}
