// Box (Moore-neighborhood) kernel tests: point semantics and scheme
// equivalence — these have dependencies on the full |dx|,|dy|,|dz| <= s box,
// the strongest shape the schemes guarantee.

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/box2d.hpp"
#include "kernels/box3d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

TEST(Box2D, SingleStepMatchesHandComputation) {
  const int W = 8, H = 6;
  const auto w = default_box2d_weights<1>();
  Box2D<1> k(W, H, w);
  const double bnd = 0.7;
  k.init(cats::test::init2d, bnd);
  auto u0 = [&](int x, int y) {
    if (x < 0 || x >= W || y < 0 || y >= H) return bnd;
    return cats::test::init2d(x, y);
  };
  for (int y = 0; y < H; ++y) k.process_row_scalar(1, y, 0, W);
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) {
      double e = 0.0;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
          e += w[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))] *
               u0(x + dx, y + dy);
      // 9 fused terms in the kernel vs this unfused reference.
      cats::test::expect_close_ulp(k.grid_at(1).at(x, y), e, 16);
    }
}

TEST(Box2D, AllSchemesBitExact) {
  auto make = [](int S_sel) {
    (void)S_sel;
    Box2D<2> k(41, 33, default_box2d_weights<2>());
    k.init(cats::test::init2d, 0.1);
    return k;
  };
  auto ref = make(0);
  run_reference(ref, 9);
  std::vector<double> want;
  ref.copy_result_to(want, 9);
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Auto}) {
    auto k = make(0);
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 4;
    opt.cache_bytes = 24 * 1024;
    run(k, 9, opt);
    std::vector<double> got;
    k.copy_result_to(got, 9);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

TEST(Box3D, AllSchemesBitExact) {
  auto make = [] {
    Box3D<1> k(17, 13, 15, default_box3d_weights<1>());
    k.init(cats::test::init3d, -0.2);
    return k;
  };
  auto ref = make();
  run_reference(ref, 6);
  std::vector<double> want;
  ref.copy_result_to(want, 6);
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2, Scheme::Cats3,
                   Scheme::PlutoLike}) {
    auto k = make();
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 3;
    opt.cache_bytes = 16 * 1024;
    run(k, 6, opt);
    std::vector<double> got;
    k.copy_result_to(got, 6);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

TEST(Box3D, Metadata) {
  EXPECT_EQ(Box3D<1>::kPoints, 27);
  Box3D<1> k(4, 4, 4, default_box3d_weights<1>());
  EXPECT_DOUBLE_EQ(k.flops_per_point(), 53.0);
  EXPECT_EQ(Box2D<2>::kPoints, 25);
}

TEST(Box2D, NormalizedWeightsConserveConstantField) {
  // A constant field with matching boundary is a fixed point of any
  // normalized smoothing stencil.
  Box2D<1> k(24, 18, default_box2d_weights<1>());
  k.init([](int, int) { return 3.25; }, 3.25);
  RunOptions opt;
  opt.threads = 2;
  run(k, 12, opt);
  for (int y = 0; y < 18; ++y)
    for (int x = 0; x < 24; ++x)
      EXPECT_NEAR(k.grid_at(12).at(x, y), 3.25, 1e-12);
}
