#pragma once
// Shared test utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cats::test {

/// Deterministic, non-trivial initial data (no symmetry, full mantissas).
inline double init2d(int x, int y) {
  return std::sin(0.37 * x + 0.21 * y) + 0.001 * x - 0.002 * y;
}

inline double init3d(int x, int y, int z) {
  return std::sin(0.31 * x + 0.23 * y + 0.17 * z) + 0.001 * (x - y + z);
}

/// Deterministic band coefficients (diagonally dominant-ish, nonsymmetric).
inline double band_coeff(int b, int x, int y) {
  return (b == 0 ? 0.5 : 0.1) * (1.0 + 0.01 * std::sin(0.13 * x + 0.29 * y + b));
}

inline double band_coeff3(int b, int x, int y, int z) {
  return (b == 0 ? 0.5 : 0.07) *
         (1.0 + 0.01 * std::sin(0.13 * x + 0.29 * y + 0.19 * z + b));
}

/// Bit-exact comparison of two result dumps.
inline void expect_bit_equal(const std::vector<double>& got,
                             const std::vector<double>& want,
                             const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  std::size_t mismatches = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0) {
      if (mismatches == 0) first = i;
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << label << ": first mismatch at " << first
                            << " got " << got[first] << " want " << want[first]
                            << " (" << mismatches << " total)";
}

/// Distance in units-in-the-last-place between two doubles (monotone integer
/// reinterpretation; inf for NaN or a sign change across non-zero values).
inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return UINT64_MAX;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(double));
  std::memcpy(&ib, &b, sizeof(double));
  // Map the two's-complement float ordering onto an unsigned number line.
  const auto key = [](std::int64_t i) {
    return static_cast<std::uint64_t>(i < 0 ? INT64_MIN - i : i) +
           (UINT64_MAX / 2 + 1);
  };
  const std::uint64_t ka = key(ia), kb = key(ib);
  return ka > kb ? ka - kb : kb - ka;
}

/// FMA-tolerant comparison for reference-vs-kernel checks. A fused a*b+c
/// skips one intermediate rounding, so a hand-computed unfused reference may
/// differ from the kernel by ~1 ULP per fused term; `max_ulp` bounds the
/// accumulated drift (default covers the widest kernel, the 27-point box).
inline void expect_close_ulp(double got, double want, std::uint64_t max_ulp = 64,
                             const char* label = "") {
  EXPECT_LE(ulp_distance(got, want), max_ulp)
      << label << ": got " << got << " want " << want;
}

}  // namespace cats::test
