#pragma once
// Shared test utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

namespace cats::test {

/// Deterministic, non-trivial initial data (no symmetry, full mantissas).
inline double init2d(int x, int y) {
  return std::sin(0.37 * x + 0.21 * y) + 0.001 * x - 0.002 * y;
}

inline double init3d(int x, int y, int z) {
  return std::sin(0.31 * x + 0.23 * y + 0.17 * z) + 0.001 * (x - y + z);
}

/// Deterministic band coefficients (diagonally dominant-ish, nonsymmetric).
inline double band_coeff(int b, int x, int y) {
  return (b == 0 ? 0.5 : 0.1) * (1.0 + 0.01 * std::sin(0.13 * x + 0.29 * y + b));
}

inline double band_coeff3(int b, int x, int y, int z) {
  return (b == 0 ? 0.5 : 0.07) *
         (1.0 + 0.01 * std::sin(0.13 * x + 0.29 * y + 0.19 * z + b));
}

/// Bit-exact comparison of two result dumps.
inline void expect_bit_equal(const std::vector<double>& got,
                             const std::vector<double>& want,
                             const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  std::size_t mismatches = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0) {
      if (mismatches == 0) first = i;
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << label << ": first mismatch at " << first
                            << " got " << got[first] << " want " << want[first]
                            << " (" << mismatches << " total)";
}

}  // namespace cats::test
