// "Cache accurate" verification: replay each scheme's address stream through
// the LRU cache model and check the paper's traffic claims quantitatively —
// the naive scheme streams the whole domain every sweep while CATS pays
// roughly one domain transfer per time chunk.

#include <gtest/gtest.h>

#include <cmath>

#include "cachesim/cache_model.hpp"
#include "cachesim/trace_kernel.hpp"
#include "core/run.hpp"

using namespace cats;

namespace {

/// Miss bytes of one scheme run over a W x H (x D) trace domain.
std::uint64_t simulate_2d(Scheme scheme, int W, int H, int T,
                          std::size_t cache_bytes, int bands = 0,
                          int tz_override = 0, int bz_override = 0) {
  CacheModel cache(cache_bytes, 8, 64);
  TraceStar2D k(W, H, 1, bands, &cache);
  RunOptions opt;
  opt.scheme = scheme;
  opt.threads = 1;  // the cache model is single-threaded by design
  opt.cache_bytes = cache_bytes;
  opt.tz_override = tz_override;
  opt.bz_override = bz_override;
  run(k, T, opt);
  return cache.miss_bytes();
}

std::uint64_t simulate_3d(Scheme scheme, int W, int H, int D, int T,
                          std::size_t cache_bytes, int bands = 0) {
  CacheModel cache(cache_bytes, 8, 64);
  TraceStar3D k(W, H, D, 1, bands, &cache);
  RunOptions opt;
  opt.scheme = scheme;
  opt.threads = 1;
  opt.cache_bytes = cache_bytes;
  run(k, T, opt);
  return cache.miss_bytes();
}

}  // namespace

TEST(CacheSim, NaiveStreamsDomainEverySweep) {
  // 512 x 512 doubles = 2 MiB per buffer >> 128 KiB cache.
  const int W = 512, H = 512, T = 10;
  const std::size_t Z = 128 * 1024;
  const std::uint64_t miss = simulate_2d(Scheme::Naive, W, H, T, Z);
  const double ideal = static_cast<double>(T) * 2.0 * W * H * 8.0;  // rd+wr
  EXPECT_GE(static_cast<double>(miss), 0.9 * ideal);
  EXPECT_LE(static_cast<double>(miss), 1.4 * ideal);
}

TEST(CacheSim, Cats1PaysOncePerChunk) {
  const int W = 512, H = 512, T = 20;
  const std::size_t Z = 128 * 1024;
  const DomainShape d{static_cast<std::int64_t>(W) * H, H, W, 2};
  const int tz = compute_tz(Z, d, {1, 2.8});
  ASSERT_GE(tz, 8) << "test assumes a deep chunk";

  const std::uint64_t naive = simulate_2d(Scheme::Naive, W, H, T, Z);
  const std::uint64_t cats1 = simulate_2d(Scheme::Cats1, W, H, T, Z);
  // Ideal CATS1 traffic: one read+write of the domain per chunk.
  const double chunks = std::ceil(static_cast<double>(T) / tz);
  const double ideal = chunks * 2.0 * W * H * 8.0;
  EXPECT_GE(static_cast<double>(cats1), 0.9 * ideal);
  EXPECT_LE(static_cast<double>(cats1), 2.0 * ideal);  // + skewed borders
  // And it must beat naive by a large factor (close to T / chunks).
  EXPECT_LT(static_cast<double>(cats1), static_cast<double>(naive) / 4.0);
}

TEST(CacheSim, Cats2ReducesTrafficIn2D) {
  const int W = 512, H = 512, T = 20;
  const std::size_t Z = 128 * 1024;
  const std::uint64_t naive = simulate_2d(Scheme::Naive, W, H, T, Z);
  const std::uint64_t cats2 = simulate_2d(Scheme::Cats2, W, H, T, Z);
  EXPECT_LT(static_cast<double>(cats2), static_cast<double>(naive) / 3.0);
}

TEST(CacheSim, Cats2ReducesTrafficIn3D) {
  // 64^3 doubles = 2 MiB per buffer >> 96 KiB cache; CATS1 would not fit a
  // single slice stack, CATS2 diamonds must still cut traffic.
  const int W = 64, H = 64, D = 64, T = 12;
  const std::size_t Z = 96 * 1024;
  const std::uint64_t naive = simulate_3d(Scheme::Naive, W, H, D, T, Z);
  const std::uint64_t cats2 = simulate_3d(Scheme::Cats2, W, H, D, T, Z);
  EXPECT_LT(static_cast<double>(cats2), static_cast<double>(naive) / 2.0);
}

TEST(CacheSim, BandedMatrixTrafficDominatedByCoefficients) {
  const int W = 256, H = 256, T = 8, NS = 5;
  const std::size_t Z = 64 * 1024;
  const std::uint64_t naive = simulate_2d(Scheme::Naive, W, H, T, Z, NS);
  // rd + wr + NS coefficient streams per sweep.
  const double ideal = static_cast<double>(T) * (2.0 + NS) * W * H * 8.0;
  EXPECT_GE(static_cast<double>(naive), 0.9 * ideal);
  EXPECT_LE(static_cast<double>(naive), 1.4 * ideal);
  // CATS still wins, but the coefficient streams cap the gain (Section III-B:
  // "the additional data transfers let the limitations of the system
  // bandwidth come into play again").
  const std::uint64_t cats = simulate_2d(Scheme::Auto, W, H, T, Z, NS);
  EXPECT_LT(cats, naive);
}

TEST(CacheSim, UndersizedChunkWastesTraffic) {
  // Ablation: forcing TZ far above the Eq. 1 value (wavefront no longer fits)
  // must cost extra misses vs. the formula's choice.
  const int W = 512, H = 512, T = 16;
  const std::size_t Z = 128 * 1024;
  const DomainShape d{static_cast<std::int64_t>(W) * H, H, W, 2};
  const int tz_formula = compute_tz(Z, d, {1, 2.8});
  const std::uint64_t at_formula =
      simulate_2d(Scheme::Cats1, W, H, T, Z, 0, tz_formula);
  const std::uint64_t oversized =
      simulate_2d(Scheme::Cats1, W, H, T, Z, 0, 4 * tz_formula);
  EXPECT_GT(static_cast<double>(oversized), 1.5 * static_cast<double>(at_formula));
}

TEST(CacheSim, SmallDomainFitsAndEveryoneIsCheap) {
  // Two buffers fit in cache: even the naive scheme only pays compulsory
  // misses (the paper's 0.5-million-element knee).
  const int W = 64, H = 64, T = 10;
  const std::size_t Z = 512 * 1024;
  const std::uint64_t naive = simulate_2d(Scheme::Naive, W, H, T, Z);
  const double compulsory = 2.0 * W * H * 8.0;
  EXPECT_LE(static_cast<double>(naive), 2.5 * compulsory);
}
