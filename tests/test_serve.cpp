// Stencil-service tests: wire protocol round-trip, fair-share queue
// semantics, NUMA shard derivation, the cross-shard halo schedule
// (emit + verify + bit-exact execution against an unsharded run), the
// multi-tenant reduced-Z residency certificate, and the full UDS server
// lifecycle including drain-under-load.

#include <gtest/gtest.h>

#include <unistd.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/selector.hpp"
#include "plan/emit.hpp"
#include "plan/shard.hpp"
#include "plan/verify.hpp"
#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/halo.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "sysinfo/shards.hpp"

namespace cats::serve {
namespace {

using plan_ir::DiagKind;
using plan_ir::ShardCell;
using plan_ir::ShardSchedule;
using plan_ir::VerifyReport;

bool has_diag(const VerifyReport& rep, DiagKind kind) {
  for (const auto& d : rep.diags) {
    if (d.kind == kind) return true;
  }
  return false;
}

JobRequest job2d(std::int64_t nx, std::int64_t ny, int t) {
  JobRequest rq;
  rq.kernel = "const2d";
  rq.nx = nx;
  rq.ny = ny;
  rq.t_steps = t;
  rq.seed = 42;
  return rq;
}

JobRequest job3d(std::int64_t nx, std::int64_t ny, std::int64_t nz, int t) {
  JobRequest rq;
  rq.kernel = "const3d";
  rq.nx = nx;
  rq.ny = ny;
  rq.nz = nz;
  rq.t_steps = t;
  rq.seed = 7;
  return rq;
}

// --- Protocol ---------------------------------------------------------------

TEST(ServeProtocol, SubmitRoundTrip) {
  Request rq;
  rq.op = Request::Op::Submit;
  rq.job = job3d(24, 16, 32, 9);
  rq.job.tenant = "alice \"quoted\"";
  rq.job.threads = 3;
  rq.job.scheme = Scheme::Cats2;
  rq.job.nt_stores = true;
  rq.job.split = JobRequest::Split::Force;

  Request back;
  std::string err;
  ASSERT_TRUE(parse_request(encode_request(rq), &back, &err)) << err;
  EXPECT_EQ(back.op, Request::Op::Submit);
  EXPECT_EQ(back.job.tenant, rq.job.tenant);
  EXPECT_EQ(back.job.kernel, "const3d");
  EXPECT_EQ(back.job.nx, 24);
  EXPECT_EQ(back.job.nz, 32);
  EXPECT_EQ(back.job.t_steps, 9);
  EXPECT_EQ(back.job.seed, 7u);
  EXPECT_EQ(back.job.threads, 3);
  EXPECT_EQ(back.job.scheme, Scheme::Cats2);
  EXPECT_TRUE(back.job.nt_stores);
  EXPECT_EQ(back.job.split, JobRequest::Split::Force);
}

TEST(ServeProtocol, ResultRoundTrip) {
  JobResult r;
  r.status = JobStatus::Done;
  r.scheme = "CATS1";
  r.tz = 12;
  r.shards_used = 2;
  r.threads = 4;
  r.cache_tenants = 2;
  r.seconds = 0.5;
  r.mlups = 123.25;
  r.model_dram_bytes = 1e9;
  r.checksum = 0xDEADBEEFCAFEF00DULL;
  r.sample = 0.25;

  JobResult back;
  std::string err;
  ASSERT_TRUE(parse_result(encode_result(r), &back, &err)) << err;
  EXPECT_EQ(back.status, JobStatus::Done);
  EXPECT_EQ(back.scheme, "CATS1");
  EXPECT_EQ(back.tz, 12);
  EXPECT_EQ(back.shards_used, 2);
  EXPECT_EQ(back.cache_tenants, 2);
  EXPECT_EQ(back.checksum, 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(back.mlups, 123.25);
}

TEST(ServeProtocol, RejectsMalformedAndOversized) {
  Request rq;
  std::string err;
  EXPECT_FALSE(parse_request("not json", &rq, &err));
  EXPECT_FALSE(parse_request(R"({"op":"warp"})", &rq, &err));
  EXPECT_FALSE(parse_request(
      R"({"op":"submit","kernel":"fdtd","nx":8,"ny":8})", &rq, &err));
  // Point cap: 2^13 * 2^13 * 2^13 = 2^39 points >> kMaxPoints.
  EXPECT_FALSE(parse_request(
      R"({"op":"submit","kernel":"const3d","nx":8192,"ny":8192,"nz":8192})",
      &rq, &err));
  EXPECT_NE(err.find("cap"), std::string::npos);
}

// --- Fair-share queue -------------------------------------------------------

TEST(ServeQueue, BackpressureAtCapacity) {
  FairQueue q(2);
  QueuedJob a;
  a.req = job2d(8, 8, 1);
  EXPECT_TRUE(q.push(std::move(a)));
  QueuedJob b;
  b.req = job2d(8, 8, 1);
  EXPECT_TRUE(q.push(std::move(b)));
  QueuedJob c;
  c.req = job2d(8, 8, 1);
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(std::move(c)));
  EXPECT_EQ(q.size(), 2u);
}

TEST(ServeQueue, FairShareServesLeastServedTenant) {
  FairQueue q(8);
  const auto push = [&](const char* tenant, std::int64_t cost) {
    QueuedJob j;
    j.req = job2d(8, 8, 1);
    j.req.tenant = tenant;
    j.cost = cost;
    ASSERT_TRUE(q.push(std::move(j)));
  };
  push("a", 100);
  push("a", 100);
  push("b", 1);
  push("b", 1);

  // Tie at zero served: earliest arrival (a). Then b is behind and is served
  // twice before a's second large job.
  EXPECT_EQ(q.pop()->req.tenant, "a");
  EXPECT_EQ(q.pop()->req.tenant, "b");
  EXPECT_EQ(q.pop()->req.tenant, "b");
  EXPECT_EQ(q.pop()->req.tenant, "a");
  EXPECT_FALSE(q.pop().has_value());

  const auto shares = q.shares();
  ASSERT_EQ(shares.size(), 2u);
  for (const auto& s : shares) {
    if (s.tenant == "a") EXPECT_DOUBLE_EQ(s.served_cost, 200.0);
    if (s.tenant == "b") EXPECT_EQ(s.jobs_served, 2);
  }
}

TEST(ServeQueue, PopIfSkipsIneligible) {
  FairQueue q(4);
  QueuedJob j1;
  j1.req = job2d(8, 8, 1);
  j1.req.kernel = "const2d";
  ASSERT_TRUE(q.push(std::move(j1)));
  QueuedJob j2;
  j2.req = job3d(8, 8, 8, 1);
  ASSERT_TRUE(q.push(std::move(j2)));

  auto got = q.pop_if(
      [](const JobRequest& r) { return r.kernel == "const3d"; });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->req.kernel, "const3d");
  EXPECT_EQ(q.size(), 1u);
}

// --- Shard derivation -------------------------------------------------------

TEST(ServeShards, TwoNodeTopologySplitsByNode) {
  Topology topo;
  topo.known = true;
  topo.smt = true;
  topo.n_nodes = 2;
  topo.n_cores = 4;
  topo.n_packages = 2;
  // cpu, core, package, node, smt_sibling: two nodes, two cores each, SMT.
  topo.cpus = {{0, 0, 0, 0, false}, {1, 1, 0, 0, false},
               {2, 0, 1, 1, false}, {3, 1, 1, 1, false},
               {4, 0, 0, 0, true},  {5, 1, 0, 0, true},
               {6, 0, 1, 1, true},  {7, 1, 1, 1, true}};

  const ShardPlan plan = derive_shards(topo);
  ASSERT_EQ(plan.size(), 2);
  EXPECT_TRUE(plan.pinned);
  EXPECT_EQ(plan.shards[0].node, 0);
  EXPECT_EQ(plan.shards[1].node, 1);
  // Physical cores first, the node's SMT siblings after.
  EXPECT_EQ(plan.shards[0].cpus, (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(plan.shards[1].cpus, (std::vector<int>{2, 3, 6, 7}));
  EXPECT_EQ(plan.shards[0].threads, 2);  // one per physical core

  // Forced split of one node's cores into two shards.
  const ShardPlan four = derive_shards(topo, 4, 1);
  ASSERT_EQ(four.size(), 4);
  EXPECT_EQ(four.shards[0].cpus, (std::vector<int>{0, 4}));
  EXPECT_EQ(four.shards[3].cpus, (std::vector<int>{3, 7}));
}

TEST(ServeShards, UnknownTopologyDegradesToUnpinned) {
  Topology topo;  // known == false
  const ShardPlan plan = derive_shards(topo, 3);
  ASSERT_EQ(plan.size(), 3);
  EXPECT_FALSE(plan.pinned);
  for (const ShardSpec& s : plan.shards) {
    EXPECT_TRUE(s.cpus.empty());
    EXPECT_GE(s.threads, 1);
  }
}

// --- Shard schedule: emit + verify ------------------------------------------

TEST(ShardSchedule, EmitVerifiesCleanAcrossShapes) {
  for (const int shards : {1, 2, 3, 4}) {
    for (const int t : {0, 1, 4, 11, 32}) {
      const ShardSchedule s =
          plan_ir::emit_shard_schedule(96, shards, t, 1, 8);
      const VerifyReport rep = plan_ir::verify_shard_schedule(s);
      EXPECT_TRUE(rep.ok()) << "shards=" << shards << " T=" << t << ": "
                            << rep.summary();
      EXPECT_EQ(s.shards(), shards);
      int sum = 0;
      for (const int b : s.block_steps) sum += b;
      EXPECT_EQ(sum, t);
    }
  }
  // Infeasible shard counts clamp instead of emitting a broken protocol.
  const ShardSchedule tiny = plan_ir::emit_shard_schedule(7, 8, 4, 1, 8);
  EXPECT_LE(tiny.shards(), plan_ir::max_feasible_shards(7, 1));
  EXPECT_TRUE(plan_ir::verify_shard_schedule(tiny).ok());
}

TEST(ShardSchedule, VerifierCatchesTampering) {
  const ShardSchedule good = plan_ir::emit_shard_schedule(64, 2, 12, 1, 4);
  ASSERT_TRUE(plan_ir::verify_shard_schedule(good).ok());
  ASSERT_EQ(good.blocks(), 3);

  {  // Dropped flow-dependence wait on an exchange step.
    ShardSchedule bad = good;
    bad.program[0][1].waits.clear();
    const VerifyReport rep = plan_ir::verify_shard_schedule(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_diag(rep, DiagKind::DepUncovered));
  }
  {  // Dropped anti-dependence wait on a compute step.
    ShardSchedule bad = good;
    bad.program[1][2].waits.clear();
    const VerifyReport rep = plan_ir::verify_shard_schedule(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_diag(rep, DiagKind::DepUncovered));
  }
  {  // Halo too shallow for the block depth.
    ShardSchedule bad = good;
    bad.halo = 1;
    const VerifyReport rep = plan_ir::verify_shard_schedule(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_diag(rep, DiagKind::WavefrontOverflow));
  }
  {  // Odd non-final block breaks the parity-0 exchange invariant.
    ShardSchedule bad = good;
    bad.block_steps[0] = 3;
    const VerifyReport rep = plan_ir::verify_shard_schedule(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_diag(rep, DiagKind::MalformedPlan));
  }
  {  // Owned intervals no longer partition the extent.
    ShardSchedule bad = good;
    bad.owned[1].lo += 1;
    const VerifyReport rep = plan_ir::verify_shard_schedule(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_diag(rep, DiagKind::CoverageGap));
  }
  {  // Unsatisfiable wait deadlocks the simulated protocol.
    ShardSchedule bad = good;
    bad.program[0][0].waits.push_back({ShardCell::Computed, 1, 100});
    const VerifyReport rep = plan_ir::verify_shard_schedule(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_diag(rep, DiagKind::StuckWait));
  }
}

// --- Halo-split execution: bit-exact vs unsharded ---------------------------

TEST(ServeHalo, Split2DBitExactAcrossShardCounts) {
  const JobRequest rq = job2d(52, 96, 11);
  ExecEnv env;
  env.threads = 2;
  std::vector<double> ref;
  const JobResult direct = execute_job(rq, env, &ref);
  ASSERT_EQ(direct.status, JobStatus::Done) << direct.error;

  for (const int shards : {2, 3}) {
    const ShardSchedule sched =
        plan_ir::emit_shard_schedule(rq.ny, shards, rq.t_steps, 1, 4);
    ASSERT_TRUE(plan_ir::verify_shard_schedule(sched).ok());
    ASSERT_EQ(sched.shards(), shards);
    const std::vector<ShardSlot> slots(
        static_cast<std::size_t>(shards), ShardSlot{{}, 1});
    std::vector<double> got;
    const JobResult split = run_split_job(rq, sched, slots, env, &got);
    ASSERT_EQ(split.status, JobStatus::Done) << split.error;
    EXPECT_EQ(split.shards_used, shards);
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_EQ(got, ref) << "sharded grid differs (shards=" << shards << ")";
    EXPECT_EQ(split.checksum, direct.checksum);
  }
}

TEST(ServeHalo, Split3DBitExactWithOddFinalBlock) {
  const JobRequest rq = job3d(20, 16, 48, 7);  // blocks 4 + 3 (odd tail)
  ExecEnv env;
  env.threads = 1;
  std::vector<double> ref;
  const JobResult direct = execute_job(rq, env, &ref);
  ASSERT_EQ(direct.status, JobStatus::Done) << direct.error;

  const ShardSchedule sched =
      plan_ir::emit_shard_schedule(rq.nz, 2, rq.t_steps, 1, 4);
  ASSERT_TRUE(plan_ir::verify_shard_schedule(sched).ok());
  const std::vector<ShardSlot> slots(2, ShardSlot{{}, 1});
  std::vector<double> got;
  const JobResult split = run_split_job(rq, sched, slots, env, &got);
  ASSERT_EQ(split.status, JobStatus::Done) << split.error;
  EXPECT_EQ(got, ref);
  EXPECT_EQ(split.checksum, direct.checksum);
}

TEST(ServeHalo, RefusesUnverifiableSchedule) {
  const JobRequest rq = job2d(16, 64, 8);
  ShardSchedule sched = plan_ir::emit_shard_schedule(64, 2, 8, 1, 4);
  sched.program[0][1].waits.clear();  // drop a flow dependence
  ExecEnv env;
  const std::vector<ShardSlot> slots(2, ShardSlot{{}, 1});
  const JobResult r = run_split_job(rq, sched, slots, env);
  EXPECT_EQ(r.status, JobStatus::Failed);
  EXPECT_NE(r.error.find("verification"), std::string::npos);
}

// --- Multi-tenant cache partitioning ----------------------------------------

TEST(ServeTenants, ReducedZCertifiedAndBitExact) {
  RunOptions opt;
  opt.cache_bytes = 1 << 20;
  opt.cache_tenants = 2;
  EXPECT_EQ(resolve_cache_bytes(opt), (1u << 20) / 2);

  // The emitted plan records the divisor, sizes Eq. 1/2 against Z/tenants,
  // and the verifier's residency certificate holds at the reduced Z.
  plan_ir::PlanRequest prq;
  prq.dims = 2;
  prq.nx = 512;
  prq.ny = 512;
  prq.T = 32;
  prq.opt.threads = 2;
  prq.opt.cache_bytes = 1 << 20;

  const plan_ir::TilePlan whole = plan_ir::emit_plan(prq);
  prq.opt.cache_tenants = 2;
  const plan_ir::TilePlan half = plan_ir::emit_plan(prq);

  EXPECT_EQ(half.cache_tenants, 2);
  EXPECT_EQ(half.cache_bytes, whole.cache_bytes / 2);
  EXPECT_TRUE(plan_ir::verify_plan(half).ok());
  if (whole.scheme == Scheme::Cats1 && half.scheme == Scheme::Cats1)
    EXPECT_LE(half.tz, whole.tz);

  // Partitioning the cache never changes values, only tile shapes.
  const JobRequest rq = job2d(48, 64, 6);
  ExecEnv one;
  one.threads = 1;
  ExecEnv two = one;
  two.cache_tenants = 2;
  const JobResult r1 = execute_job(rq, one);
  const JobResult r2 = execute_job(rq, two);
  ASSERT_EQ(r1.status, JobStatus::Done);
  ASSERT_EQ(r2.status, JobStatus::Done);
  EXPECT_EQ(r2.cache_tenants, 2);
  EXPECT_EQ(r1.checksum, r2.checksum);
}

// --- Scheduler --------------------------------------------------------------

// Scheduler tests run against a canned unknown topology: derive_shards then
// honors the requested shard count as unpinned groups regardless of how many
// cores the CI machine actually has.
const Topology kNoTopo;

TEST(ServeScheduler, CompletesJobsAndRecordsStats) {
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.threads_per_shard = 1;
  cfg.coresident = 2;
  Scheduler sched(cfg, &kNoTopo);

  const JobRequest rq = job2d(32, 40, 5);
  ExecEnv env;
  env.threads = 1;
  const JobResult direct = execute_job(rq, env);

  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 3; ++i) {
    JobRequest j = rq;
    j.tenant = i == 0 ? "alice" : "bob";
    futs.push_back(sched.submit(std::move(j)));
  }
  for (auto& f : futs) {
    const JobResult r = f.get();
    ASSERT_EQ(r.status, JobStatus::Done) << r.error;
    EXPECT_EQ(r.checksum, direct.checksum);
  }
  sched.stop();

  const SchedulerStats st = sched.stats();
  ASSERT_EQ(st.shards.size(), 1u);
  EXPECT_EQ(st.shards[0].jobs, 3);
  EXPECT_GT(st.shards[0].lups, 0.0);
  EXPECT_GT(st.shards[0].model_dram_bytes, 0.0);
  bool saw_bob = false;
  for (const auto& t : st.tenants) {
    if (t.tenant == "bob") {
      saw_bob = true;
      EXPECT_EQ(t.jobs_served, 2);
    }
  }
  EXPECT_TRUE(saw_bob);
}

TEST(ServeScheduler, SplitJobUsesAllShards) {
  SchedulerConfig cfg;
  cfg.shards = 2;  // unknown-per-test topology: unpinned thread groups
  cfg.threads_per_shard = 1;
  cfg.split_min_points = 1;
  Scheduler sched(cfg, &kNoTopo);
  ASSERT_EQ(sched.shard_plan().size(), 2);

  JobRequest rq = job2d(24, 64, 6);
  rq.split = JobRequest::Split::Force;
  EXPECT_TRUE(sched.would_split(rq));

  ExecEnv env;
  env.threads = 1;
  const JobResult direct = execute_job(rq, env);

  const JobResult r = sched.submit(rq).get();
  ASSERT_EQ(r.status, JobStatus::Done) << r.error;
  EXPECT_EQ(r.shards_used, 2);
  EXPECT_EQ(r.checksum, direct.checksum);

  sched.stop();  // join executors so the split is recorded in the stats
  const SchedulerStats st = sched.stats();
  std::int64_t splits = 0;
  for (const auto& s : st.shards) splits += s.splits;
  EXPECT_EQ(splits, 1);
}

TEST(ServeScheduler, ZeroCapacityRejectsWithBackpressure) {
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.threads_per_shard = 1;
  cfg.queue_capacity = 0;
  Scheduler sched(cfg, &kNoTopo);
  const JobResult r = sched.submit(job2d(8, 8, 1)).get();
  EXPECT_EQ(r.status, JobStatus::Rejected);
  EXPECT_NE(r.error.find("backpressure"), std::string::npos);
}

TEST(ServeScheduler, DrainUnderLoadCompletesQueuedJobs) {
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.threads_per_shard = 1;
  cfg.coresident = 1;
  Scheduler sched(cfg, &kNoTopo);

  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(sched.submit(job2d(32, 32, 4)));
  sched.drain();
  // Admission is closed immediately...
  const JobResult late = sched.submit(job2d(8, 8, 1)).get();
  EXPECT_EQ(late.status, JobStatus::Rejected);
  // ...but everything admitted before the drain still completes.
  for (auto& f : futs) EXPECT_EQ(f.get().status, JobStatus::Done);
  sched.stop();
}

TEST(ServeScheduler, CancelQueuedResolvesCancelled) {
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.threads_per_shard = 1;
  Scheduler sched(cfg, &kNoTopo);
  // A heavier head job keeps later submissions queued long enough that the
  // cancel usually catches some; every future must resolve terminally
  // either way.
  std::vector<std::future<JobResult>> futs;
  futs.push_back(sched.submit(job2d(128, 128, 24)));
  for (int i = 0; i < 6; ++i) futs.push_back(sched.submit(job2d(64, 64, 8)));
  sched.drain();
  sched.cancel_queued();
  sched.stop();
  for (auto& f : futs) {
    const JobStatus st = f.get().status;
    EXPECT_TRUE(st == JobStatus::Done || st == JobStatus::Cancelled);
  }
}

// --- End-to-end UDS server --------------------------------------------------

std::string test_socket_path() {
  return "/tmp/cats_test_serve_" + std::to_string(::getpid()) + ".sock";
}

TEST(ServeServer, EndToEndSubmitStatsShutdown) {
  ServerConfig cfg;
  cfg.socket_path = test_socket_path();
  cfg.sched.shards = 1;
  cfg.sched.threads_per_shard = 1;
  cfg.sched.coresident = 2;
  Server server(std::move(cfg));
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const JobRequest rq2 = job2d(40, 48, 6);
  const JobRequest rq3 = job3d(12, 10, 24, 4);
  ExecEnv env;
  env.threads = 1;
  const JobResult local2 = execute_job(rq2, env);
  const JobResult local3 = execute_job(rq3, env);

  // Two concurrent tenants, each on its own connection.
  auto tenant_run = [&](const char* name, const JobRequest& rq,
                        const JobResult& want) {
    Client c;
    std::string cerr;
    ASSERT_TRUE(c.connect(server.socket_path(), &cerr)) << cerr;
    ASSERT_TRUE(c.ping(&cerr)) << cerr;
    JobRequest mine = rq;
    mine.tenant = name;
    const auto r = c.submit(mine, &cerr);
    ASSERT_TRUE(r.has_value()) << cerr;
    ASSERT_EQ(r->status, JobStatus::Done) << r->error;
    EXPECT_EQ(r->checksum, want.checksum);
  };
  std::thread t2(tenant_run, "alice", rq2, local2);
  std::thread t3(tenant_run, "bob", rq3, local3);
  t2.join();
  t3.join();

  Client c;
  ASSERT_TRUE(c.connect(server.socket_path(), &err)) << err;
  std::string stats;
  ASSERT_TRUE(c.stats(&stats, &err)) << err;
  EXPECT_NE(stats.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(stats.find("\"mlups\""), std::string::npos);
  EXPECT_NE(stats.find("\"alice\""), std::string::npos);

  ASSERT_TRUE(c.shutdown_server(false, &err)) << err;
  server.wait();
  EXPECT_TRUE(server.draining());
}

TEST(ServeServer, DrainUnderLoadOverTheWire) {
  ServerConfig cfg;
  cfg.socket_path = test_socket_path() + ".drain";
  cfg.sched.shards = 1;
  cfg.sched.threads_per_shard = 1;
  Server server(std::move(cfg));
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  // All clients connect BEFORE the drain (draining stops the accept loop),
  // then submit concurrently while the drain lands. Jobs admitted before it
  // complete Done; those arriving after come back typed Rejected — either
  // way every client gets exactly one terminal answer and the server exits.
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    auto c = std::make_unique<Client>();
    ASSERT_TRUE(c->connect(server.socket_path(), &err)) << err;
    clients.push_back(std::move(c));
  }
  std::vector<std::thread> tenants;
  std::vector<JobStatus> statuses(4, JobStatus::Failed);
  for (int i = 0; i < 4; ++i) {
    tenants.emplace_back([&, i] {
      JobRequest rq = job2d(48, 48, 6);
      rq.tenant = "t" + std::to_string(i);
      std::string cerr;
      const auto r = clients[static_cast<std::size_t>(i)]->submit(rq, &cerr);
      ASSERT_TRUE(r.has_value()) << cerr;
      statuses[static_cast<std::size_t>(i)] = r->status;
    });
  }
  server.request_drain();
  for (auto& t : tenants) t.join();
  server.wait();
  for (const JobStatus st : statuses) {
    EXPECT_TRUE(st == JobStatus::Done || st == JobStatus::Rejected);
  }
}

}  // namespace
}  // namespace cats::serve
