// Cross-check: the static schedule verifier (plan/verify.hpp) against the
// dynamic dependence oracle (check/oracle.hpp) on the same plans.
//
// A statically-clean plan must run oracle-clean. For a tampered plan (one
// recorded sync edge deleted) every violation the oracle observes at runtime
// must map to a (consumer tile, producer tile) pair the verifier already
// flagged as DepUncovered — dynamic violations are a subset of the static
// prediction. The oracle only believes *recorded* happens-before edges
// (never timing), and its one approximation (progress publishes credited
// early) can only suppress violations, so containment is structural.

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "check/oracle.hpp"
#include "core/options.hpp"
#include "plan/emit.hpp"
#include "plan/kernel_walk.hpp"
#include "plan/verify.hpp"

namespace {

using cats::plan_ir::Slab;
using cats::plan_ir::TilePlan;
using cats::plan_ir::for_each_slab;

// A RowKernel2D that computes nothing: the oracle tracks the schedule via
// note_row / sync callbacks, so no field data is needed to cross-check.
class NoopKernel2D {
 public:
  NoopKernel2D(int w, int h, int s) : w_(w), h_(h), s_(s) {}
  int width() const { return w_; }
  int height() const { return h_; }
  int slope() const { return s_; }
  double flops_per_point() const { return 1.0; }
  double state_doubles_per_point() const { return 1.0; }
  double extra_cache_doubles_per_point() const { return 0.0; }
  void copy_result_to(std::vector<double>& out, int) {
    out.assign(static_cast<std::size_t>(w_) * h_, 0.0);
  }
  void process_row(int, int, int, int) {}
  void process_row_scalar(int, int, int, int) {}

 private:
  int w_, h_, s_;
};
static_assert(cats::RowKernel2D<NoopKernel2D>);

/// Tile whose slab set contains point (x, y) at timestep t; -1 if none.
std::int32_t tile_at(const TilePlan& p, int t, std::int64_t x,
                     std::int64_t y) {
  for (std::size_t i = 0; i < p.tiles.size(); ++i) {
    std::int32_t hit = -1;
    for_each_slab(p, p.tiles[i], [&](const Slab& sl) {
      if (sl.t == t && x >= sl.box.xlo && x <= sl.box.xhi &&
          y >= sl.box.ylo && y <= sl.box.yhi) {
        hit = static_cast<std::int32_t>(i);
      }
    });
    if (hit >= 0) return hit;
  }
  return -1;
}

/// Map a dynamic violation to the (consumer point, producer point) of the
/// dependence it breaks, in the static verifier's orientation: the consumer
/// computes at the later timestep.
struct DepWitness {
  int consumer_t, producer_t;
  std::int64_t cx, cy, px, py;
  bool is_pair;  ///< false for kinds that are not dependence pairs
};

DepWitness map_violation(const cats::check::Violation& v) {
  using cats::check::ViolationKind;
  switch (v.kind) {
    case ViolationKind::NotAdvanced:      // own history missing at t-1
    case ViolationKind::MissingDep:       // neighbor not yet at t-1
    case ViolationKind::UnorderedRead:    // neighbor at t-1 but no HB edge
      return {v.t, v.t - 1, v.x, v.y, v.nx, v.ny, true};
    case ViolationKind::FutureOverwrite:  // neighbor already ran found_t:
      // the *neighbor's* compute is the consumer that failed to wait.
      return {v.found_t, v.t, v.nx, v.ny, v.x, v.y, true};
    default:
      return {0, 0, 0, 0, 0, 0, false};
  }
}

}  // namespace

TEST(PlanCrossCheck, StaticallyCleanPlanRunsOracleClean) {
  const int W = 48, H = 36, T = 6, threads = 2;
  const TilePlan p =
      cats::plan_ir::emit_cats2(2, W, H, 1, T, 1, /*bz=*/6, threads);
  const cats::plan_ir::VerifyReport rep = cats::plan_ir::verify_plan(p);
  ASSERT_TRUE(rep.ok()) << rep.summary();

  NoopKernel2D k(W, H, 1);
  cats::check::DepOracle oracle(W, H, 1, 1, threads);
  cats::RunOptions opt;
  opt.threads = threads;
  opt.oracle = &oracle;
  cats::plan_ir::run_plan(k, p, opt);
  oracle.check_complete(T);

  EXPECT_TRUE(oracle.ok());
  if (!oracle.ok()) oracle.print_report(stderr);
  EXPECT_GT(oracle.points_checked(), 0);
  EXPECT_GT(oracle.release_count() + oracle.barrier_count(), 0);
}

TEST(PlanCrossCheck, DynamicViolationsAreSubsetOfStaticPrediction) {
  const int W = 40, H = 30, T = 6, threads = 2;
  const TilePlan clean =
      cats::plan_ir::emit_cats2(2, W, H, 1, T, 1, /*bz=*/6, threads);
  ASSERT_TRUE(cats::plan_ir::verify_plan(clean).ok());

  // Delete the first recorded sync edge whose removal the verifier can see:
  // cross-owner edges are load-bearing; same-owner ones are shadowed by
  // program order.
  TilePlan tampered = clean;
  cats::plan_ir::VerifyReport rep;
  bool found = false;
  for (std::size_t e = 0; e < clean.edges.size() && !found; ++e) {
    tampered.edges = clean.edges;
    tampered.edges.erase(tampered.edges.begin() +
                         static_cast<std::ptrdiff_t>(e));
    rep = cats::plan_ir::verify_plan(tampered);
    found = !rep.ok();
  }
  ASSERT_TRUE(found) << "no sync edge in the plan is load-bearing?";

  std::set<std::pair<std::int32_t, std::int32_t>> predicted;
  for (const cats::plan_ir::Diag& d : rep.diags) {
    if (d.kind == cats::plan_ir::DiagKind::DepUncovered) {
      predicted.insert({d.tile_a, d.tile_b});
    }
  }
  ASSERT_FALSE(predicted.empty());

  // Run the tampered plan: the executor simply skips the missing wait, so
  // the schedule really does race (logically — the kernel touches no data).
  NoopKernel2D k(W, H, 1);
  cats::check::DepOracle oracle(W, H, 1, 1, threads);
  cats::RunOptions opt;
  opt.threads = threads;
  opt.oracle = &oracle;
  cats::plan_ir::run_plan(k, tampered, opt);

  // The oracle trusts only recorded edges, so the deleted edge is invisible
  // to it no matter how the threads interleave: it must flag the pair.
  EXPECT_GT(oracle.violation_count(), 0);

  for (const cats::check::Violation& v : oracle.violations()) {
    const DepWitness w = map_violation(v);
    if (!w.is_pair) continue;
    const std::int32_t consumer =
        tile_at(tampered, w.consumer_t, w.cx, w.cy);
    const std::int32_t producer =
        tile_at(tampered, w.producer_t, w.px, w.py);
    ASSERT_GE(consumer, 0) << v.to_string();
    ASSERT_GE(producer, 0) << v.to_string();
    EXPECT_TRUE(predicted.count({consumer, producer}))
        << "dynamic violation outside the static prediction: "
        << v.to_string() << " -> tiles (" << consumer << ", " << producer
        << ")";
  }
}
