// Bench-harness utility tests: table formatting, stats, number formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_harness/ascii_plot.hpp"
#include "bench_harness/report.hpp"
#include "bench_harness/timing.hpp"
#include "tune/json.hpp"

using namespace cats::bench;

TEST(Table, AlignsColumnsAndPrintsAllRows) {
  Table t({"size", "naive", "cats"});
  t.add_row({"0.5M", "0.123", "0.045"});
  t.add_row({"128M", "99.5", "7.25"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("size"), std::string::npos);
  EXPECT_NE(s.find("128M"), std::string::npos);
  EXPECT_NE(s.find("7.25"), std::string::npos);
  // header + rule + 2 rows
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, ToleratesShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('1'), std::string::npos);
}

TEST(Fmt, FixedSciMib) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(fmt_mib(1024 * 1024), "1.0MiB");
  EXPECT_EQ(fmt_mib(1536 * 1024), "1.5MiB");
}

TEST(Stats, SummarizeOrderStatistics) {
  const Stats s = summarize({3.0, 1.0, 2.0, 10.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 10.0);
  EXPECT_EQ(s.median, 3.0);  // upper median of even-sized sample
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  const Stats e = summarize({});
  EXPECT_EQ(e.min, 0.0);
}

TEST(Stats, TimerMeasuresSomething) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(SeriesPlot, MarksLandMonotonically) {
  SeriesPlot p;
  p.add_series("up", 'U', {{1.0, 0.1}, {10.0, 1.0}, {100.0, 10.0}});
  std::ostringstream os;
  p.render(os, 30, 10);
  const std::string s = os.str();
  // Three marks, rising left-to-right means later lines (lower y) hold the
  // earlier (smaller) points: the first 'U' in the text is the largest point.
  EXPECT_EQ(std::count(s.begin(), s.end(), 'U'), 3 + 1);  // 3 marks + legend
  const auto first = s.find('U');
  const auto last = s.rfind('U', s.find("legend") == std::string::npos
                                     ? s.find('+')
                                     : s.size());
  EXPECT_NE(first, std::string::npos);
  EXPECT_LT(first, last);
  EXPECT_NE(s.find("x: 1 .. 100"), std::string::npos);
}

TEST(SeriesPlot, OverlapsMarkedAndEmptyHandled) {
  SeriesPlot p;
  p.add_series("a", 'A', {{5.0, 5.0}});
  p.add_series("b", 'B', {{5.0, 5.0}});
  std::ostringstream os;
  p.render(os, 20, 8);
  EXPECT_NE(os.str().find('*'), std::string::npos);  // overlap marker

  SeriesPlot empty;
  empty.add_series("none", 'N', {{-1.0, 2.0}});  // non-positive x skipped
  std::ostringstream os2;
  empty.render(os2, 20, 8);
  EXPECT_NE(os2.str().find("no positive data"), std::string::npos);
}

TEST(JsonLog, SerializesTablesAndScalars) {
  JsonLog log;
  log.set_title("unit bench");
  Table t({"size", "gflops"});
  t.add_row({"1M", "12.5"});
  t.add_row({"2M", "11.0"});
  log.add_table("fig", t);
  log.add_scalar("speedup", 2.5);

  cats::tune::JsonValue v;
  ASSERT_TRUE(cats::tune::json_parse(log.to_json(), v)) << log.to_json();
  EXPECT_EQ(v.get_string("title"), "unit bench");
  ASSERT_NE(v.get("machine"), nullptr);
  EXPECT_FALSE(v.get("machine")->get_string("fingerprint").empty());
  const auto* tables = v.get("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->items.size(), 1u);
  EXPECT_EQ(tables->items[0].get_string("caption"), "fig");
  const auto* rows = tables->items[0].get("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items.size(), 2u);
  EXPECT_EQ(rows->items[1].items[0].str, "2M");
  ASSERT_NE(v.get("scalars"), nullptr);
  EXPECT_EQ(v.get("scalars")->get_number("speedup"), 2.5);
}

TEST(JsonLog, GlobalLogCapturesPrintedTablesAndFlushes) {
  const std::string path = testing::TempDir() + "cats_benchlog.json";
  json_log().enable(path);
  std::ostringstream banner;
  print_banner(banner, "captured run");  // sets the JSON title

  Table t({"a", "b"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);  // auto-recorded into the enabled global log

  ASSERT_TRUE(json_log().flush());
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  cats::tune::JsonValue v;
  ASSERT_TRUE(cats::tune::json_parse(text, v));
  EXPECT_EQ(v.get_string("title"), "captured run");
  const auto* tables = v.get("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_GE(tables->items.size(), 1u);
  std::remove(path.c_str());
}

TEST(Banner, PrintsMachineInfo) {
  std::ostringstream os;
  print_banner(os, "unit test");
  const std::string s = os.str();
  EXPECT_NE(s.find("unit test"), std::string::npos);
  EXPECT_NE(s.find("caches:"), std::string::npos);
  EXPECT_NE(s.find("simd"), std::string::npos);
}
