// Single-precision kernel tests: bit-exact scheme equivalence in float
// (including the wave engine's fusion / NT-store / temporal-vectorization
// paths) and the element-size effect on Eq. 1/2 tile sizing and residency
// certification.

#include <gtest/gtest.h>

#include <cmath>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"
#include "plan/emit.hpp"
#include "plan/verify.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

FloatStar2D<1>::Weights weights_f32() {
  FloatStar2D<1>::Weights w;
  w.center = 0.5f;
  w.xm[0] = 0.13f;
  w.xp[0] = 0.12f;
  w.ym[0] = 0.14f;
  w.yp[0] = 0.11f;
  return w;
}

std::vector<double> run_f32(int W, int H, int T, Scheme s, int threads) {
  FloatStar2D<1> k(W, H, weights_f32());
  k.init([](int x, int y) { return static_cast<float>(cats::test::init2d(x, y)); },
         0.25f);
  RunOptions opt;
  opt.scheme = s;
  opt.threads = threads;
  opt.cache_bytes = 32 * 1024;
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

TEST(Float32, AllSchemesBitExactVsReference) {
  FloatStar2D<1> ref(57, 43, weights_f32());
  ref.init([](int x, int y) { return static_cast<float>(cats::test::init2d(x, y)); },
           0.25f);
  run_reference(ref, 15);
  std::vector<double> want;
  ref.copy_result_to(want, 15);
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Auto}) {
    for (int threads : {1, 4}) {
      expect_bit_equal(run_f32(57, 43, 15, s, threads), want, scheme_name(s));
    }
  }
}

TEST(Float32, WaveEngineBitExact) {
  // Fusion, NT stores and temporal vectorization are execution-order /
  // store-path changes only, so every composition must reproduce the plain
  // (unfused, plain-store) fp32 walk bit for bit — same contract as the fp64
  // wave tests, instantiated for the float element type (VecF width 2x).
  auto make = [] {
    FloatStar2D<1> k(73, 59, weights_f32());
    k.init(
        [](int x, int y) { return static_cast<float>(cats::test::init2d(x, y)); },
        0.25f);
    return k;
  };
  const int T = 14;
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    RunOptions plain;
    plain.scheme = s;
    plain.threads = 2;
    plain.cache_bytes = 32 * 1024;
    plain.unroll_t = 1;
    auto ref = make();
    run(ref, T, plain);
    std::vector<double> want;
    ref.copy_result_to(want, T);
    for (int u : {0, 4}) {
      for (bool tv : {false, true}) {
        RunOptions opt = plain;
        opt.unroll_t = u;
        opt.nt_stores = true;
        opt.temporal_vec = tv;
        auto k = make();
        run(k, T, opt);
        std::vector<double> got;
        k.copy_result_to(got, T);
        expect_bit_equal(got, want,
                         (std::string("f32 wave ") + scheme_name(s) +
                          " unroll=" + std::to_string(u) +
                          (tv ? " tv" : ""))
                             .c_str());
      }
    }
  }
}

TEST(Float32, ElementBytesTrait) {
  FloatStar2D<1> f(8, 8, weights_f32());
  EXPECT_DOUBLE_EQ(kernel_element_bytes(f), 4.0);
  ConstStar2D<1> d(8, 8, default_star2d_weights<1>());
  EXPECT_DOUBLE_EQ(kernel_element_bytes(d), 8.0);  // default trait
}

TEST(Float32, SmallerElementsDeepenTheChunk) {
  // Same domain and cache: float halves the bytes per wavefront point, so
  // Eq. 1 yields roughly twice the chunk height.
  const DomainShape d{1000 * 1000, 1000, 1000, 2};
  const std::size_t z = 1 << 20;
  const int tz_double = compute_tz(z, d, {1, 2.8, 8.0});
  const int tz_float = compute_tz(z, d, {1, 2.8, 4.0});
  EXPECT_NEAR(tz_float, 2 * tz_double, 1);
}

TEST(Float32, SmallerElementsWidenTheDiamond) {
  // Eq. 2 scales the diamond with sqrt(Zd): halving the element size doubles
  // the cache's point capacity, widening BZ by exactly sqrt(2).
  const DomainShape d{2000 * 2000, 2000, 2000, 2};
  const std::size_t z = 1 << 21;
  const double raw_d = eq2_bz_raw(z, d, {1, 2.8, 8.0});
  const double raw_f = eq2_bz_raw(z, d, {1, 2.8, 4.0});
  EXPECT_NEAR(raw_f, std::sqrt(2.0) * raw_d, 1e-9 * raw_d);
  EXPECT_GT(compute_bz(z, d, {1, 2.8, 4.0}), compute_bz(z, d, {1, 2.8, 8.0}));
}

TEST(Float32, ReducedElementSizeArmsResidencyCertification) {
  // A cache just below one minimal fp64 diamond's working set but above the
  // fp32 one: the fp64 plan hits the 2s floor (clamped -> no residency
  // certificate, NT stores refused) while the fp32 plan of the same domain
  // certifies and arms NT eligibility. Eq. 2 raw BZ is sqrt(2Z/(E*CS')), so
  // with s=1, CS'=2.8 the 2s floor sits at Z=44.8 bytes for E=8 and
  // Z=22.4 bytes for E=4; Z=40 lands between them.
  plan_ir::PlanRequest rq;
  rq.dims = 2;
  rq.nx = 57;
  rq.ny = 43;
  rq.T = 8;
  rq.slope = 1;
  rq.cs_eff = 2.8;
  rq.opt.scheme = Scheme::Cats2;
  rq.opt.threads = 2;
  rq.opt.cache_bytes = 40;
  rq.elem_bytes = 8.0;
  const plan_ir::TilePlan p64 = plan_ir::emit_plan(rq);
  rq.elem_bytes = 4.0;
  const plan_ir::TilePlan p32 = plan_ir::emit_plan(rq);
  EXPECT_DOUBLE_EQ(p64.elem_bytes, 8.0);
  EXPECT_DOUBLE_EQ(p32.elem_bytes, 4.0);
  EXPECT_TRUE(p64.certify_residency);
  EXPECT_TRUE(p32.certify_residency);
  EXPECT_TRUE(p64.clamped);
  EXPECT_FALSE(p32.clamped);
  EXPECT_FALSE(plan_ir::nt_store_eligible(p64));
  EXPECT_TRUE(plan_ir::nt_store_eligible(p32));
}

TEST(Float32, PlanUsesElementSize) {
  FloatStar2D<1> f(1000, 1000, weights_f32());
  ConstStar2D<1> dk(1000, 1000, default_star2d_weights<1>());
  RunOptions opt;
  opt.cache_bytes = 1 << 20;
  const SchemeChoice cf = plan(f, 1000, opt);
  const SchemeChoice cd = plan(dk, 1000, opt);
  ASSERT_EQ(cf.scheme, Scheme::Cats1);
  ASSERT_EQ(cd.scheme, Scheme::Cats1);
  EXPECT_NEAR(cf.tz, 2 * cd.tz, 2);
}
