// Single-precision kernel tests: bit-exact scheme equivalence in float and
// the element-size effect on Eq. 1/2.

#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

FloatStar2D<1>::Weights weights_f32() {
  FloatStar2D<1>::Weights w;
  w.center = 0.5f;
  w.xm[0] = 0.13f;
  w.xp[0] = 0.12f;
  w.ym[0] = 0.14f;
  w.yp[0] = 0.11f;
  return w;
}

std::vector<double> run_f32(int W, int H, int T, Scheme s, int threads) {
  FloatStar2D<1> k(W, H, weights_f32());
  k.init([](int x, int y) { return static_cast<float>(cats::test::init2d(x, y)); },
         0.25f);
  RunOptions opt;
  opt.scheme = s;
  opt.threads = threads;
  opt.cache_bytes = 32 * 1024;
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

TEST(Float32, AllSchemesBitExactVsReference) {
  FloatStar2D<1> ref(57, 43, weights_f32());
  ref.init([](int x, int y) { return static_cast<float>(cats::test::init2d(x, y)); },
           0.25f);
  run_reference(ref, 15);
  std::vector<double> want;
  ref.copy_result_to(want, 15);
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Auto}) {
    for (int threads : {1, 4}) {
      expect_bit_equal(run_f32(57, 43, 15, s, threads), want, scheme_name(s));
    }
  }
}

TEST(Float32, ElementBytesTrait) {
  FloatStar2D<1> f(8, 8, weights_f32());
  EXPECT_DOUBLE_EQ(kernel_element_bytes(f), 4.0);
  ConstStar2D<1> d(8, 8, default_star2d_weights<1>());
  EXPECT_DOUBLE_EQ(kernel_element_bytes(d), 8.0);  // default trait
}

TEST(Float32, SmallerElementsDeepenTheChunk) {
  // Same domain and cache: float halves the bytes per wavefront point, so
  // Eq. 1 yields roughly twice the chunk height.
  const DomainShape d{1000 * 1000, 1000, 1000, 2};
  const std::size_t z = 1 << 20;
  const int tz_double = compute_tz(z, d, {1, 2.8, 8.0});
  const int tz_float = compute_tz(z, d, {1, 2.8, 4.0});
  EXPECT_NEAR(tz_float, 2 * tz_double, 1);
}

TEST(Float32, PlanUsesElementSize) {
  FloatStar2D<1> f(1000, 1000, weights_f32());
  ConstStar2D<1> dk(1000, 1000, default_star2d_weights<1>());
  RunOptions opt;
  opt.cache_bytes = 1 << 20;
  const SchemeChoice cf = plan(f, 1000, opt);
  const SchemeChoice cd = plan(dk, 1000, opt);
  ASSERT_EQ(cf.scheme, Scheme::Cats1);
  ASSERT_EQ(cd.scheme, Scheme::Cats1);
  EXPECT_NEAR(cf.tz, 2 * cd.tz, 2);
}
