// Performance-model unit tests (pure arithmetic; no timing).

#include <gtest/gtest.h>

#include "core/perf_model.hpp"

using namespace cats;

namespace {

bench::MachineProfile paper_xeon() {
  bench::MachineProfile m;
  m.l1_bw_gbps = 194.6;
  m.l2_bw_gbps = 64.2;
  m.sys_bw_gbps = 6.20;
  m.peak_dp_gflops = 40.8;
  m.stencil_dp_gflops = 25.1;
  return m;
}

}  // namespace

TEST(PerfModel, NaiveIsDramBoundOnThePaperXeon) {
  // 128M-point 2D 5-pt stencil, T=100 — Fig. 6's largest case.
  const TrafficInput in{128e6, 100, 0, 1.0, 1, 11282, 4};
  const auto p = predict_runtime(paper_xeon(), naive_traffic_bytes(in),
                                 kernel_cache_bytes(in), 128e6 * 100 * 9.0);
  EXPECT_STREQ(p.bound(), "DRAM");
  // Predicted naive GFLOPS ~ flops / dram_seconds: the paper measured 1.9.
  const double gf = 128e6 * 100 * 9.0 / p.seconds() / 1e9;
  EXPECT_GT(gf, 1.0);
  EXPECT_LT(gf, 4.0);
}

TEST(PerfModel, CatsEscapesTheMemoryWallOnThePaperXeon) {
  const TrafficInput in{128e6, 100, 0, 1.0, 1, 11282, 4};
  // TZ ~ 16 on a 3MiB-class cache for this size.
  const auto p = predict_runtime(paper_xeon(), cats1_traffic_bytes(in, 16),
                                 kernel_cache_bytes(in), 128e6 * 100 * 9.0);
  EXPECT_STRNE(p.bound(), "DRAM");
  // Predicted CATS GFLOPS must land in the paper's measured ballpark (16.2).
  const double gf = 128e6 * 100 * 9.0 / p.seconds() / 1e9;
  EXPECT_GT(gf, 8.0);
  EXPECT_LT(gf, 30.0);
}

TEST(PerfModel, BandedPullsBackTowardDram) {
  const TrafficInput cst{32e6, 100, 0, 1.0, 1, 5657, 4};
  const TrafficInput bnd{32e6, 100, 5, 1.0, 1, 5657, 4};
  const auto m = paper_xeon();
  const auto pc = predict_runtime(m, cats1_traffic_bytes(cst, 16),
                                  kernel_cache_bytes(cst), 32e6 * 100 * 9.0);
  const auto pb = predict_runtime(m, cats1_traffic_bytes(bnd, 8),
                                  kernel_cache_bytes(bnd), 32e6 * 100 * 9.0);
  EXPECT_GT(pb.seconds(), pc.seconds());
  EXPECT_STREQ(pb.bound(), "DRAM");  // coefficients restore the memory wall
}

TEST(PerfModel, MaxOfThreeBounds) {
  bench::MachineProfile m;
  m.l2_bw_gbps = 10.0;
  m.sys_bw_gbps = 1.0;
  m.stencil_dp_gflops = 100.0;
  const auto p = predict_runtime(m, 1e9, 1e9, 1e9);
  EXPECT_DOUBLE_EQ(p.dram_seconds, 1.0);
  EXPECT_DOUBLE_EQ(p.cache_seconds, 0.1);
  EXPECT_DOUBLE_EQ(p.compute_seconds, 0.01);
  EXPECT_DOUBLE_EQ(p.seconds(), 1.0);
  EXPECT_STREQ(p.bound(), "DRAM");
}
