// Static schedule-verifier tests (plan/verify.hpp).
//
// Positive: every plan the emitters produce — all schemes, 1/2/3-D, serial
// and threaded, healthy and degenerate caches — verifies clean. Negative:
// hand-built broken plans (a dropped sync edge, overlapping tiles, an
// oversized wavefront, a sync cycle, unsatisfiable waits, Eq. 1 violations)
// each produce their precise diagnostic: the dependence pair, the tile ids,
// or the wavefront bytes against Z.

#include <gtest/gtest.h>

#include <cmath>

#include "plan/emit.hpp"
#include "plan/verify.hpp"

using namespace cats;
using namespace cats::plan_ir;

namespace {

Tile block(int owner, int phase, int t0, int t1, Box base) {
  Tile t;
  t.kind = TileKind::SkewedBlock;
  t.owner = owner;
  t.phase = phase;
  t.t0 = t0;
  t.t1 = t1;
  t.base = base;
  return t;
}

TilePlan shell_1d(std::int64_t nx, int T, int threads) {
  TilePlan p;
  p.dims = 1;
  p.nx = nx;
  p.T = T;
  p.slope = 1;
  p.threads = threads;
  p.phases = 1;
  p.phase_sync = PhaseSync::None;
  return p;
}

const Diag* find_kind(const VerifyReport& r, DiagKind k) {
  for (const Diag& d : r.diags) {
    if (d.kind == k) return &d;
  }
  return nullptr;
}

std::string dump(const VerifyReport& r) {
  std::string out = r.summary();
  for (const Diag& d : r.diags) out += "\n  " + d.to_string();
  return out;
}

}  // namespace

TEST(PlanVerify, EmittedPlansVerifyClean) {
  const Scheme schemes[] = {Scheme::Auto,  Scheme::Naive, Scheme::Cats1,
                            Scheme::Cats2, Scheme::Cats3, Scheme::PlutoLike};
  int checked = 0;
  for (int dims = 1; dims <= 3; ++dims) {
    for (const Scheme sc : schemes) {
      for (const int threads : {1, 3}) {
        for (const std::size_t z : {std::size_t{256}, std::size_t{32768}}) {
          PlanRequest rq;
          rq.dims = dims;
          rq.nx = dims == 1 ? 40 : dims == 2 ? 32 : 14;
          rq.ny = dims >= 2 ? (dims == 2 ? 24 : 10) : 1;
          rq.nz = dims == 3 ? 12 : 1;
          rq.T = 7;
          rq.slope = 1;
          rq.opt.scheme = sc;
          rq.opt.threads = threads;
          rq.opt.cache_bytes = z;
          const TilePlan p = emit_plan(rq);
          const VerifyReport rep = verify_plan(p);
          EXPECT_TRUE(rep.ok())
              << "scheme=" << static_cast<int>(sc) << " dims=" << dims
              << " threads=" << threads << " Z=" << z << "\n" << dump(rep);
          ++checked;
        }
      }
    }
  }
  EXPECT_EQ(checked, 3 * 6 * 2 * 2);
}

TEST(PlanVerify, DroppedSyncEdgeYieldsExactDependencePair) {
  // Two full-domain timestep tiles on different threads with no edge and no
  // barrier between them: t=2 may start before t=1 finished.
  TilePlan p = shell_1d(8, 2, 2);
  p.tiles.push_back(block(0, 0, 1, 1, {0, 7, 0, 0, 0, 0}));
  p.tiles.back().publishes_done = true;
  p.tiles.push_back(block(1, 0, 2, 2, {0, 7, 0, 0, 0, 0}));

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  EXPECT_EQ(rep.errors(), 1u) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::DepUncovered);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, 1);  // consumer: the t=2 tile
  EXPECT_EQ(d->tile_b, 0);  // producer: the t=1 tile
  EXPECT_EQ(d->t, 2);
  EXPECT_EQ(d->x, 0);  // first uncovered point
  EXPECT_EQ(d->nx, 0);

  // Recording the done edge the executor would wait on fixes it...
  p.edges.push_back({0, 1, SyncEdge::Kind::Done, 0});
  EXPECT_TRUE(verify_plan(p).ok()) << dump(verify_plan(p));

  // ...and so does splitting the tiles into barrier-separated phases.
  p.edges.clear();
  p.tiles[1].phase = 1;
  p.phases = 2;
  p.phase_sync = PhaseSync::Barrier;
  EXPECT_TRUE(verify_plan(p).ok()) << dump(verify_plan(p));
}

TEST(PlanVerify, OverlappingTilesYieldTileOverlap) {
  TilePlan p = shell_1d(8, 1, 1);
  p.tiles.push_back(block(0, 0, 1, 1, {0, 4, 0, 0, 0, 0}));
  p.tiles.push_back(block(0, 0, 1, 1, {3, 7, 0, 0, 0, 0}));

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::TileOverlap);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, 0);
  EXPECT_EQ(d->tile_b, 1);
  EXPECT_EQ(d->t, 1);
  EXPECT_EQ(d->x, 3);  // first shared point
  // Overlap already explains the cell-count mismatch; no gap diagnostic.
  EXPECT_EQ(find_kind(rep, DiagKind::CoverageGap), nullptr) << dump(rep);
}

TEST(PlanVerify, MissingCellsYieldCoverageGap) {
  TilePlan p = shell_1d(8, 1, 1);
  p.tiles.push_back(block(0, 0, 1, 1, {0, 5, 0, 0, 0, 0}));

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::CoverageGap);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->t, 1);
  EXPECT_EQ(d->bytes, 6);  // cells computed
  EXPECT_EQ(d->limit, 8);  // cells required
}

TEST(PlanVerify, WavefrontColumnOutsideDomain) {
  TilePlan p = shell_1d(8, 1, 1);
  Tile t;
  t.kind = TileKind::WavefrontColumn;
  t.t0 = 1;
  t.tau_lo = 0;
  t.tau_hi = 0;
  t.u = 9;  // traversal position 9 in a width-8 domain
  p.tiles.push_back(t);

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::OutOfDomain);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, 0);
  EXPECT_EQ(d->t, 1);
  EXPECT_EQ(d->x, 9);
}

TEST(PlanVerify, MutualDoneEdgesYieldSyncCycle) {
  TilePlan p = shell_1d(8, 1, 2);
  p.tiles.push_back(block(0, 0, 1, 1, {0, 3, 0, 0, 0, 0}));
  p.tiles.push_back(block(1, 0, 1, 1, {4, 7, 0, 0, 0, 0}));
  p.tiles[0].publishes_done = true;
  p.tiles[1].publishes_done = true;
  p.edges.push_back({0, 1, SyncEdge::Kind::Done, 0});
  p.edges.push_back({1, 0, SyncEdge::Kind::Done, 0});

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::SyncCycle);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_NE(d->tile_a, d->tile_b);
  EXPECT_TRUE(d->tile_a == 0 || d->tile_a == 1);
  EXPECT_TRUE(d->tile_b == 0 || d->tile_b == 1);
}

TEST(PlanVerify, UnpublishedDoneFlagYieldsStuckWait) {
  TilePlan p = shell_1d(8, 1, 2);
  p.tiles.push_back(block(0, 0, 1, 1, {0, 3, 0, 0, 0, 0}));
  p.tiles.push_back(block(1, 0, 1, 1, {4, 7, 0, 0, 0, 0}));
  p.edges.push_back({0, 1, SyncEdge::Kind::Done, 0});  // tile 0 never sets it

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::StuckWait);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, 1);
  EXPECT_EQ(d->tile_b, 0);
}

TEST(PlanVerify, UnreachableProgressBoundYieldsStuckWait) {
  TilePlan p = shell_1d(8, 1, 2);
  p.tiles.push_back(block(0, 0, 1, 1, {0, 3, 0, 0, 0, 0}));
  p.tiles.back().publishes_progress = true;
  p.tiles.back().u = 3;  // highest wavefront thread 0 ever publishes
  p.tiles.push_back(block(1, 0, 1, 1, {4, 7, 0, 0, 0, 0}));
  p.edges.push_back({0, 1, SyncEdge::Kind::ProgressGE, 5});

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::StuckWait);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, 1);
  EXPECT_EQ(d->tile_b, 0);
  EXPECT_EQ(d->bytes, 5);  // the unreachable bound
}

TEST(PlanVerify, OversizedWavefrontReportsBytesAgainstCache) {
  // A certified CATS2 plan whose diamonds were sized for a far larger cache:
  // the measured wavefront working set must be reported against Z plus the
  // documented bz-cell discretization allowance.
  TilePlan p = emit_cats2(2, 32, 24, 1, 8, 1, /*bz=*/8, 2);
  p.cache_bytes = 64;
  p.cs_eff = 2.8;
  p.elem_bytes = 8.0;
  p.certify_residency = true;

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::WavefrontOverflow);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_FALSE(d->warning);
  EXPECT_EQ(d->bytes, rep.stats.max_wavefront_bytes);
  const auto allowance =
      static_cast<std::int64_t>(std::ceil(2.8 * (8.0 * 1.0) * 8.0));
  EXPECT_EQ(d->limit, 64 + allowance);
  EXPECT_GT(d->bytes, d->limit);
  // Oversizing also violates Eq. 2 itself for this cache model.
  EXPECT_NE(find_kind(rep, DiagKind::BzExceedsEq2), nullptr) << dump(rep);

  // A selector-clamped plan downgrades the overflow to an advisory warning.
  p.clamped = true;
  const VerifyReport rep2 = verify_plan(p);
  const Diag* d2 = find_kind(rep2, DiagKind::WavefrontOverflow);
  ASSERT_NE(d2, nullptr) << dump(rep2);
  EXPECT_TRUE(d2->warning);
}

TEST(PlanVerify, TzAboveEq1IsFlagged) {
  TilePlan p = emit_cats1(1, 64, 1, 1, 8, 1, /*tz=*/8, 1);
  p.cache_bytes = 64;  // Zd = 8 doubles: Eq. 1 allows TZ = 2
  p.cs_eff = 2.8;
  p.elem_bytes = 8.0;
  p.certify_residency = true;

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::TzExceedsEq1);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->bytes, 8);  // plan TZ
  EXPECT_EQ(d->limit, 2);  // Eq. 1 bound for this cache model
}

TEST(PlanVerify, MalformedOwnerAborts) {
  TilePlan p = shell_1d(8, 1, 1);
  p.tiles.push_back(block(3, 0, 1, 1, {0, 7, 0, 0, 0, 0}));  // owner 3 of 1

  const VerifyReport rep = verify_plan(p);
  EXPECT_FALSE(rep.ok()) << dump(rep);
  const Diag* d = find_kind(rep, DiagKind::MalformedPlan);
  ASSERT_NE(d, nullptr) << dump(rep);
  EXPECT_EQ(d->tile_a, 0);
}
