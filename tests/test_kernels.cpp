// Kernel semantics tests: the math each kernel computes, checked point-wise
// against hand-written expressions, plus SIMD/scalar path equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/reference.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"
#include "kernels/literature.hpp"

using namespace cats;

TEST(ConstStar2D, SingleStepMatchesHandComputation) {
  const int W = 9, H = 7;
  auto w = default_star2d_weights<1>();
  ConstStar2D<1> k(W, H, w);
  const double bnd = 0.3;
  k.init(cats::test::init2d, bnd);

  // Keep an explicit copy of u(t=0) including boundary.
  auto u0 = [&](int x, int y) {
    if (x < 0 || x >= W || y < 0 || y >= H) return bnd;
    return cats::test::init2d(x, y);
  };

  for (int y = 0; y < H; ++y) k.process_row_scalar(1, y, 0, W);

  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) {
      double expect = w.center * u0(x, y);
      expect += w.xm[0] * u0(x - 1, y);
      expect += w.xp[0] * u0(x + 1, y);
      expect += w.ym[0] * u0(x, y - 1);
      expect += w.yp[0] * u0(x, y + 1);
      // The kernel fuses each w*u+acc (simd::ScalarD::fma); this unfused
      // reference may differ by ~1 ULP per term.
      cats::test::expect_close_ulp(k.grid_at(1).at(x, y), expect, 8);
    }
}

TEST(ConstStar2D, SimdPathBitEqualsScalarPath) {
  for (int W : {8, 9, 31}) {  // aligned, odd, prime widths
    const int H = 6, T = 5;
    ConstStar2D<2> a(W, H, default_star2d_weights<2>());
    ConstStar2D<2> b(W, H, default_star2d_weights<2>());
    a.init(cats::test::init2d);
    b.init(cats::test::init2d);
    for (int t = 1; t <= T; ++t)
      for (int y = 0; y < H; ++y) {
        a.process_row(t, y, 0, W);
        b.process_row_scalar(t, y, 0, W);
      }
    std::vector<double> ra, rb;
    a.copy_result_to(ra, T);
    b.copy_result_to(rb, T);
    cats::test::expect_bit_equal(ra, rb, "simd-vs-scalar");
  }
}

TEST(ConstStar2D, PartialRowRangesComposeToFullRow) {
  const int W = 40, H = 5;
  ConstStar2D<1> a(W, H, default_star2d_weights<1>());
  ConstStar2D<1> b(W, H, default_star2d_weights<1>());
  a.init(cats::test::init2d);
  b.init(cats::test::init2d);
  for (int y = 0; y < H; ++y) {
    a.process_row(1, y, 0, W);
    // Same timestep via ragged sub-ranges (as CATS2 diamond levels produce).
    b.process_row(1, y, 0, 7);
    b.process_row(1, y, 7, 11);
    b.process_row(1, y, 11, 40);
  }
  std::vector<double> ra, rb;
  a.copy_result_to(ra, 1);
  b.copy_result_to(rb, 1);
  cats::test::expect_bit_equal(ra, rb, "subranges");
}

TEST(ConstStar3D, SingleStepMatchesHandComputation) {
  const int W = 6, H = 5, D = 4;
  auto w = default_star3d_weights<1>();
  ConstStar3D<1> k(W, H, D, w);
  const double bnd = -0.2;
  k.init(cats::test::init3d, bnd);
  auto u0 = [&](int x, int y, int z) {
    if (x < 0 || x >= W || y < 0 || y >= H || z < 0 || z >= D) return bnd;
    return cats::test::init3d(x, y, z);
  };
  for (int z = 0; z < D; ++z)
    for (int y = 0; y < H; ++y) k.process_row_scalar(1, y, z, 0, W);
  for (int z = 0; z < D; ++z)
    for (int y = 0; y < H; ++y)
      for (int x = 0; x < W; ++x) {
        double e = w.center * u0(x, y, z);
        e += w.xm[0] * u0(x - 1, y, z);
        e += w.xp[0] * u0(x + 1, y, z);
        e += w.ym[0] * u0(x, y - 1, z);
        e += w.yp[0] * u0(x, y + 1, z);
        e += w.zm[0] * u0(x, y, z - 1);
        e += w.zp[0] * u0(x, y, z + 1);
        cats::test::expect_close_ulp(k.grid_at(1).at(x, y, z), e, 8);
      }
}

TEST(Banded2D, ConstantBandsReproduceConstStencil) {
  const int W = 23, H = 17, T = 6;
  auto w = default_star2d_weights<1>();
  ConstStar2D<1> c(W, H, w);
  c.init(cats::test::init2d, 0.0);
  run_reference(c, T);

  Banded2D<1> b(W, H);
  b.init(cats::test::init2d, 0.0);
  const double weights[5] = {w.center, w.xm[0], w.xp[0], w.ym[0], w.yp[0]};
  b.init_bands([&](int band, int, int) { return weights[band]; });
  run_reference(b, T);

  std::vector<double> rc, rb;
  c.copy_result_to(rc, T);
  b.copy_result_to(rb, T);
  cats::test::expect_bit_equal(rb, rc, "banded-vs-const");
}

TEST(Banded3D, ConstantBandsReproduceConstStencil) {
  const int W = 12, H = 10, D = 8, T = 4;
  auto w = default_star3d_weights<1>();
  ConstStar3D<1> c(W, H, D, w);
  c.init(cats::test::init3d, 0.0);
  run_reference(c, T);

  Banded3D<1> b(W, H, D);
  b.init(cats::test::init3d, 0.0);
  const double weights[7] = {w.center, w.xm[0], w.xp[0], w.ym[0],
                             w.yp[0],  w.zm[0], w.zp[0]};
  b.init_bands([&](int band, int, int, int) { return weights[band]; });
  run_reference(b, T);

  std::vector<double> rc, rb;
  c.copy_result_to(rc, T);
  b.copy_result_to(rb, T);
  cats::test::expect_bit_equal(rb, rc, "banded3d-vs-const");
}

TEST(Fdtd2D, MatchesUnfusedReferenceImplementation) {
  const int W = 13, H = 11, T = 9;
  auto fields = [](int x, int y) {
    return std::tuple{0.1 * x - 0.05 * y, std::sin(0.3 * x + 0.2 * y),
                      std::cos(0.15 * x - 0.25 * y)};
  };
  Fdtd2D k(W, H);
  k.init(fields);
  run_reference(k, T);

  // Unfused reference: full-array updates with explicit temporaries, the
  // Jacobi-ized semantics spelled out (every read from the previous arrays).
  auto idx = [&](int x, int y) { return (y + 1) * (W + 2) + (x + 1); };
  const int n = (W + 2) * (H + 2);
  std::vector<double> ex(n, 0.0), ey(n, 0.0), hz(n, 0.0);
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) {
      const auto [e1, e2, h] = fields(x, y);
      ex[idx(x, y)] = e1;
      ey[idx(x, y)] = e2;
      hz[idx(x, y)] = h;
    }
  for (int t = 1; t <= T; ++t) {
    std::vector<double> exn(n, 0.0), eyn(n, 0.0), hzn(n, 0.0);
    auto eyN = [&](int x, int y) {
      return ey[idx(x, y)] - 0.5 * (hz[idx(x, y)] - hz[idx(x, y - 1)]);
    };
    auto exN = [&](int x, int y) {
      return ex[idx(x, y)] - 0.5 * (hz[idx(x, y)] - hz[idx(x - 1, y)]);
    };
    for (int y = 0; y < H; ++y)
      for (int x = 0; x < W; ++x) {
        const double e2 = eyN(x, y);
        const double e1 = exN(x, y);
        const double er = (x + 1 < W) ? exN(x + 1, y)
                                      : ex[idx(x + 1, y)] -
                                            0.5 * (hz[idx(x + 1, y)] - hz[idx(x, y)]);
        const double eu = (y + 1 < H) ? eyN(x, y + 1)
                                      : ey[idx(x, y + 1)] -
                                            0.5 * (hz[idx(x, y + 1)] - hz[idx(x, y)]);
        eyn[idx(x, y)] = e2;
        exn[idx(x, y)] = e1;
        hzn[idx(x, y)] = hz[idx(x, y)] - 0.7 * ((er - e1) + (eu - e2));
      }
    ex.swap(exn);
    ey.swap(eyn);
    hz.swap(hzn);
  }

  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) {
      EXPECT_DOUBLE_EQ(k.ex_at(T).at(x, y), ex[idx(x, y)]) << x << "," << y;
      EXPECT_DOUBLE_EQ(k.ey_at(T).at(x, y), ey[idx(x, y)]) << x << "," << y;
      EXPECT_DOUBLE_EQ(k.hz_at(T).at(x, y), hz[idx(x, y)]) << x << "," << y;
    }
}

TEST(SumStar3D, PointSemantics) {
  const int W = 5, H = 4, D = 3;
  Laplace3D k(W, H, D, 0.25, 0.125);
  k.init(cats::test::init3d, 0.0);
  auto u0 = [&](int x, int y, int z) {
    if (x < 0 || x >= W || y < 0 || y >= H || z < 0 || z >= D) return 0.0;
    return cats::test::init3d(x, y, z);
  };
  for (int z = 0; z < D; ++z)
    for (int y = 0; y < H; ++y) k.process_row_scalar(1, y, z, 0, W);
  for (int z = 0; z < D; ++z)
    for (int y = 0; y < H; ++y)
      for (int x = 0; x < W; ++x) {
        const double sum = ((u0(x - 1, y, z) + u0(x + 1, y, z)) +
                            u0(x, y - 1, z)) + u0(x, y + 1, z) +
                           u0(x, y, z - 1) + u0(x, y, z + 1);
        cats::test::expect_close_ulp(k.grid_at(1).at(x, y, z),
                                     0.125 * sum + 0.25 * u0(x, y, z), 4);
      }
}

TEST(Kernels, MetadataConsistent) {
  ConstStar2D<1> c2(4, 4, default_star2d_weights<1>());
  EXPECT_EQ(c2.slope(), 1);
  EXPECT_DOUBLE_EQ(c2.flops_per_point(), 9.0);   // 5 muls + 4 adds
  ConstStar3D<1> c3(4, 4, 4, default_star3d_weights<1>());
  EXPECT_DOUBLE_EQ(c3.flops_per_point(), 13.0);  // 7 muls + 6 adds
  ConstStar3D<2> s2(8, 8, 8, default_star3d_weights<2>());
  EXPECT_EQ(s2.slope(), 2);
  EXPECT_EQ(ConstStar3D<2>::kPoints, 13);        // 13-point slope-2 stencil
  EXPECT_EQ(ConstStar3D<3>::kPoints, 19);        // 19-point slope-3 stencil
  Banded2D<1> b2(4, 4);
  EXPECT_EQ(Banded2D<1>::kBands, 5);
  EXPECT_DOUBLE_EQ(b2.extra_cache_doubles_per_point(), 5.0);
  Banded3D<1> b3(4, 4, 4);
  EXPECT_EQ(Banded3D<1>::kBands, 7);
  Fdtd2D f(4, 4);
  EXPECT_DOUBLE_EQ(f.flops_per_point(), 17.0);
  EXPECT_DOUBLE_EQ(f.state_doubles_per_point(), 3.0);
}

TEST(Kernels, CopyResultSizes) {
  ConstStar2D<1> c2(7, 5, default_star2d_weights<1>());
  c2.init(cats::test::init2d);
  std::vector<double> out;
  c2.copy_result_to(out, 0);
  EXPECT_EQ(out.size(), 35u);
  Fdtd2D f(6, 4);
  f.init([](int, int) { return std::tuple{0.0, 0.0, 0.0}; });
  f.copy_result_to(out, 0);
  EXPECT_EQ(out.size(), 3u * 24);
}
