// In-place Gauss-Seidel/SOR under time skewing (the paper's one-copy
// remark). GS results are fixed by the dependence structure, not the
// traversal, so the serial CATS1 wavefront must reproduce the row-major
// reference bit-exactly — and run() must refuse to parallelize such kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/const2d.hpp"
#include "kernels/gauss_seidel2d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

GaussSeidel2D::Weights sor_weights() {
  GaussSeidel2D::Weights w;
  w.relax = 1.3;
  w.xm = 0.26;
  w.xp = 0.24;
  w.ym = 0.27;
  w.yp = 0.23;
  return w;
}

std::vector<double> reference_gs(int W, int H, int T) {
  GaussSeidel2D k(W, H, sor_weights());
  k.init(cats::test::init2d, 0.5);
  run_reference(k, T);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

TEST(GaussSeidel, TraitDetected) {
  EXPECT_TRUE(kernel_sequential_deps<GaussSeidel2D>());
  EXPECT_FALSE(kernel_sequential_deps<ConstStar2D<1>>());
}

TEST(GaussSeidel, SerialCats1MatchesRowMajorReference) {
  const auto want = reference_gs(61, 47, 17);
  for (Scheme s : {Scheme::Auto, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Naive}) {
    GaussSeidel2D k(61, 47, sor_weights());
    k.init(cats::test::init2d, 0.5);
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 4;  // must be ignored: sequential-deps kernels serialize
    opt.cache_bytes = 16 * 1024;
    const SchemeChoice c = run(k, 17, opt);
    EXPECT_TRUE(c.scheme == Scheme::Cats1 || c.scheme == Scheme::Naive);
    std::vector<double> got;
    k.copy_result_to(got, 17);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

TEST(GaussSeidel, TinyChunksStillExact) {
  const auto want = reference_gs(40, 33, 11);
  for (int tz : {1, 2, 5, 11, 99}) {
    GaussSeidel2D k(40, 33, sor_weights());
    k.init(cats::test::init2d, 0.5);
    RunOptions opt;
    opt.tz_override = tz;
    run(k, 11, opt);
    std::vector<double> got;
    k.copy_result_to(got, 11);
    expect_bit_equal(got, want, "gs-tz");
  }
}

TEST(GaussSeidel, SorConvergesOnLaplace) {
  // Physical sanity: SOR on the Laplace equation contracts toward the
  // boundary value; after many sweeps the interior approaches 1.0.
  GaussSeidel2D::Weights w;  // symmetric Laplace stencil, omega = 1.5
  w.relax = 1.5;
  GaussSeidel2D k(33, 33, w);
  k.init([](int, int) { return 0.0; }, /*boundary=*/1.0);
  RunOptions opt;
  run(k, 600, opt);
  EXPECT_NEAR(k.grid().at(16, 16), 1.0, 1e-5);
  EXPECT_NEAR(k.grid().at(3, 28), 1.0, 1e-5);
}

TEST(GaussSeidel, SingleCopyStateDeclared) {
  GaussSeidel2D k(8, 8, sor_weights());
  EXPECT_DOUBLE_EQ(k.state_doubles_per_point(), 0.5);  // one copy, not two
  EXPECT_DOUBLE_EQ(k.flops_per_point(), 10.0);
}
