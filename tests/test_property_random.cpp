// Randomized property tests: many pseudo-random configurations (sizes,
// weights, slopes, schemes, thread counts, cache sizes, overrides), each
// checked bit-exactly against the serial reference. Deterministic seeds keep
// failures reproducible.

#include <gtest/gtest.h>

#include <random>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

Scheme pick_scheme(std::mt19937& rng, bool allow_cats3) {
  static constexpr Scheme kAll[] = {Scheme::Naive, Scheme::Cats1,
                                    Scheme::Cats2, Scheme::Cats3,
                                    Scheme::PlutoLike, Scheme::Auto};
  for (;;) {
    const Scheme s = kAll[rng() % 6];
    if (s != Scheme::Cats3 || allow_cats3) return s;
  }
}

RunOptions random_options(std::mt19937& rng, bool allow_cats3) {
  RunOptions opt;
  opt.scheme = pick_scheme(rng, allow_cats3);
  opt.threads = 1 + static_cast<int>(rng() % 5);
  opt.cache_bytes = (std::size_t{1} << (10 + rng() % 8));  // 1KiB..128KiB
  if (rng() % 3 == 0) opt.tz_override = 1 + static_cast<int>(rng() % 20);
  if (rng() % 3 == 0) opt.bz_override = 2 + static_cast<int>(rng() % 40);
  if (rng() % 4 == 0) opt.bx_override = 2 + static_cast<int>(rng() % 30);
  if (rng() % 4 == 0) opt.min_wavefront_timesteps = 1 + static_cast<int>(rng() % 20);
  return opt;
}

template <int S>
void random_case_2d(std::mt19937& rng) {
  const int W = 8 + static_cast<int>(rng() % 90);
  const int H = 8 + static_cast<int>(rng() % 70);
  const int T = 1 + static_cast<int>(rng() % 25);
  std::uniform_real_distribution<double> wdist(-0.3, 0.3);
  typename ConstStar2D<S>::Weights w;
  w.center = wdist(rng);
  for (int k = 0; k < S; ++k) {
    const auto i = static_cast<std::size_t>(k);
    w.xm[i] = wdist(rng);
    w.xp[i] = wdist(rng);
    w.ym[i] = wdist(rng);
    w.yp[i] = wdist(rng);
  }
  const double bnd = wdist(rng);

  ConstStar2D<S> ref(W, H, w);
  ref.init(cats::test::init2d, bnd);
  run_reference(ref, T);
  std::vector<double> want;
  ref.copy_result_to(want, T);

  const RunOptions opt = random_options(rng, /*allow_cats3=*/false);
  ConstStar2D<S> k(W, H, w);
  k.init(cats::test::init2d, bnd);
  run(k, T, opt);
  std::vector<double> got;
  k.copy_result_to(got, T);
  expect_bit_equal(got, want, scheme_name(opt.scheme));
  if (::testing::Test::HasFailure()) {
    ADD_FAILURE() << "config: W=" << W << " H=" << H << " T=" << T
                  << " scheme=" << scheme_name(opt.scheme)
                  << " threads=" << opt.threads
                  << " cache=" << opt.cache_bytes
                  << " tz=" << opt.tz_override << " bz=" << opt.bz_override;
  }
}

void random_case_3d(std::mt19937& rng) {
  const int W = 6 + static_cast<int>(rng() % 26);
  const int H = 6 + static_cast<int>(rng() % 22);
  const int D = 6 + static_cast<int>(rng() % 26);
  const int T = 1 + static_cast<int>(rng() % 12);

  ConstStar3D<1> ref(W, H, D, default_star3d_weights<1>());
  ref.init(cats::test::init3d, 0.1);
  run_reference(ref, T);
  std::vector<double> want;
  ref.copy_result_to(want, T);

  const RunOptions opt = random_options(rng, /*allow_cats3=*/true);
  ConstStar3D<1> k(W, H, D, default_star3d_weights<1>());
  k.init(cats::test::init3d, 0.1);
  run(k, T, opt);
  std::vector<double> got;
  k.copy_result_to(got, T);
  expect_bit_equal(got, want, scheme_name(opt.scheme));
  if (::testing::Test::HasFailure()) {
    ADD_FAILURE() << "config: W=" << W << " H=" << H << " D=" << D
                  << " T=" << T << " scheme=" << scheme_name(opt.scheme)
                  << " threads=" << opt.threads
                  << " cache=" << opt.cache_bytes
                  << " tz=" << opt.tz_override << " bz=" << opt.bz_override
                  << " bx=" << opt.bx_override;
  }
}

void random_case_banded(std::mt19937& rng) {
  const int W = 10 + static_cast<int>(rng() % 50);
  const int H = 10 + static_cast<int>(rng() % 40);
  const int T = 1 + static_cast<int>(rng() % 15);

  Banded2D<1> ref(W, H);
  ref.init(cats::test::init2d, 0.0);
  ref.init_bands(cats::test::band_coeff);
  run_reference(ref, T);
  std::vector<double> want;
  ref.copy_result_to(want, T);

  const RunOptions opt = random_options(rng, /*allow_cats3=*/false);
  Banded2D<1> k(W, H);
  k.init(cats::test::init2d, 0.0);
  k.init_bands(cats::test::band_coeff);
  run(k, T, opt);
  std::vector<double> got;
  k.copy_result_to(got, T);
  expect_bit_equal(got, want, scheme_name(opt.scheme));
}

}  // namespace

class RandomSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomSweep, Const2DSlope1) {
  std::mt19937 rng(GetParam());
  random_case_2d<1>(rng);
}

TEST_P(RandomSweep, Const2DSlope2) {
  std::mt19937 rng(GetParam() + 1000);
  random_case_2d<2>(rng);
}

TEST_P(RandomSweep, Const3D) {
  std::mt19937 rng(GetParam() + 2000);
  random_case_3d(rng);
}

TEST_P(RandomSweep, Banded2D) {
  std::mt19937 rng(GetParam() + 3000);
  random_case_banded(rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range(1u, 26u));
