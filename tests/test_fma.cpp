// FMA consistency tests. The vectorized kernel spans accumulate with
// V::fma; two invariants keep the bit-exact verification story sound:
//
//  1. ScalarD::fma / ScalarF::fma pair exactly with the active VecD / VecF
//     fma: std::fma when the target fuses in hardware (__FMA__/AVX-512),
//     the identical unfused multiply-add otherwise. The scalar remainder of
//     a row therefore stays bit-identical to the SIMD body in every build.
//  2. run_reference drives the same kernel spans, so scheme-vs-reference
//     comparisons remain bit-exact; only hand-written unfused references
//     need a ULP tolerance (expect_close_ulp).
//
// This file checks both invariants directly, then sweeps every kernel
// family through all applicable schemes against its reference. (Gauss-
// Seidel, whose in-place semantics need their own reference, is covered in
// test_gauss_seidel.cpp.)

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/box2d.hpp"
#include "kernels/box3d.hpp"
#include "kernels/const1d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"
#include "kernels/literature.hpp"
#include "simd/vecd.hpp"

using namespace cats;
using cats::test::expect_bit_equal;
using cats::test::expect_close_ulp;

namespace {

/// Deterministic operand soup: signs, magnitudes spanning ~2^40, and a
/// catastrophic-cancellation pair where fused and unfused results differ
/// (a*b rounds to exactly 1.0 unfused, keeps the -2^-58 tail fused).
std::vector<double> fma_operands(int n, int salt) {
  std::vector<double> v;
  for (int i = 0; i < n; ++i)
    v.push_back((i % 3 ? 1.0 : -1.0) *
                std::ldexp(cats::test::init2d(i, salt) + 1.5, (i * 7 + salt) % 40 - 20));
  v[0] = 1.0 + std::ldexp(1.0, -29);  // pairs with 1 - 2^-29 below
  return v;
}

}  // namespace

TEST(FmaPairing, ScalarDMatchesEveryVecDLane) {
  constexpr int W = simd::VecD::width;
  const int n = 8 * W;
  std::vector<double> a = fma_operands(n, 1);
  std::vector<double> b = fma_operands(n, 2);
  std::vector<double> c = fma_operands(n, 3);
  b[0] = 1.0 - std::ldexp(1.0, -29);
  c[0] = -1.0;
  double out[W];
  for (int i = 0; i < n; i += W) {
    simd::VecD::fma(simd::VecD::load(&a[i]), simd::VecD::load(&b[i]),
                    simd::VecD::load(&c[i]))
        .store(out);
    for (int l = 0; l < W; ++l) {
      const double s =
          simd::ScalarD::fma({a[i + l]}, {b[i + l]}, {c[i + l]}).v;
      EXPECT_EQ(std::memcmp(&out[l], &s, sizeof(double)), 0)
          << "lane " << l << " of chunk " << i << ": vec " << out[l]
          << " scalar " << s;
    }
  }
}

TEST(FmaPairing, ScalarFMatchesEveryVecFLane) {
  constexpr int W = simd::VecF::width;
  const int n = 8 * W;
  std::vector<float> a(static_cast<std::size_t>(n)), b(a), c(a);
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] =
        static_cast<float>((i % 2 ? 1.0 : -1.0) * (0.1 + 0.37 * i));
    b[static_cast<std::size_t>(i)] = static_cast<float>(1.7 - 0.23 * i);
    c[static_cast<std::size_t>(i)] = static_cast<float>(0.01 * i - 0.4);
  }
  a[0] = 1.0f + std::ldexp(1.0f, -12);  // float cancellation pair
  b[0] = 1.0f - std::ldexp(1.0f, -12);
  c[0] = -1.0f;
  float out[W];
  for (int i = 0; i < n; i += W) {
    simd::VecF::fma(simd::VecF::load(&a[static_cast<std::size_t>(i)]),
                    simd::VecF::load(&b[static_cast<std::size_t>(i)]),
                    simd::VecF::load(&c[static_cast<std::size_t>(i)]))
        .store(out);
    for (int l = 0; l < W; ++l) {
      const std::size_t j = static_cast<std::size_t>(i + l);
      const float s = simd::ScalarF::fma({a[j]}, {b[j]}, {c[j]}).v;
      EXPECT_EQ(std::memcmp(&out[l], &s, sizeof(float)), 0)
          << "lane " << l << " of chunk " << i;
    }
  }
}

TEST(FmaPairing, CancellationResultIsOneOfTheTwoLegalValues) {
  // 1+e times 1-e with e = 2^-29: the exact product is 1 - 2^-58, which an
  // unfused multiply rounds to 1.0 (result 0.0 after adding -1), while a
  // fused step keeps the tail (result -2^-58). Whichever the build picks,
  // scalar and vector must pick it together — the pairing test above — and
  // no third value is acceptable.
  const double e = std::ldexp(1.0, -29);
  const double r = simd::ScalarD::fma({1.0 + e}, {1.0 - e}, {-1.0}).v;
  EXPECT_TRUE(r == 0.0 || r == -std::ldexp(1.0, -58)) << r;
}

// ---------------------------------------------------------------------------
// SIMD span vs scalar span on the FMA'd variable-coefficient kernels (the
// const-coefficient ones are covered in test_kernels / test_box_kernels).
// Odd widths force a scalar remainder, so both code paths run per row.

TEST(FmaKernels, Banded2DSimdSpanBitEqualsScalarSpan) {
  const int W = 31, H = 9, T = 4;
  Banded2D<2> a(W, H), b(W, H);
  a.init(cats::test::init2d, 0.1);
  b.init(cats::test::init2d, 0.1);
  a.init_bands(cats::test::band_coeff);
  b.init_bands(cats::test::band_coeff);
  for (int t = 1; t <= T; ++t)
    for (int y = 0; y < H; ++y) {
      a.process_row(t, y, 0, W);
      b.process_row_scalar(t, y, 0, W);
    }
  std::vector<double> ra, rb;
  a.copy_result_to(ra, T);
  b.copy_result_to(rb, T);
  expect_bit_equal(ra, rb, "banded2d simd-vs-scalar");
}

TEST(FmaKernels, Banded3DSimdSpanBitEqualsScalarSpan) {
  const int W = 21, H = 7, D = 5, T = 3;
  Banded3D<1> a(W, H, D), b(W, H, D);
  a.init(cats::test::init3d, -0.3);
  b.init(cats::test::init3d, -0.3);
  a.init_bands(cats::test::band_coeff3);
  b.init_bands(cats::test::band_coeff3);
  for (int t = 1; t <= T; ++t)
    for (int z = 0; z < D; ++z)
      for (int y = 0; y < H; ++y) {
        a.process_row(t, y, z, 0, W);
        b.process_row_scalar(t, y, z, 0, W);
      }
  std::vector<double> ra, rb;
  a.copy_result_to(ra, T);
  b.copy_result_to(rb, T);
  expect_bit_equal(ra, rb, "banded3d simd-vs-scalar");
}

TEST(FmaKernels, Banded2DUnfusedReferenceWithinUlp) {
  const int W = 11, H = 8;
  Banded2D<1> k(W, H);
  const double bnd = 0.4;
  k.init(cats::test::init2d, bnd);
  k.init_bands(cats::test::band_coeff);
  auto u0 = [&](int x, int y) {
    if (x < 0 || x >= W || y < 0 || y >= H) return bnd;
    return cats::test::init2d(x, y);
  };
  for (int y = 0; y < H; ++y) k.process_row_scalar(1, y, 0, W);
  // Band order: 0 = center, then x-1, x+1, y-1, y+1 (out-of-domain band
  // coefficients are zero, so the boundary terms drop out exactly as in the
  // kernel). 5 fused terms vs this unfused sum.
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) {
      double e = cats::test::band_coeff(0, x, y) * u0(x, y);
      e += cats::test::band_coeff(1, x, y) * u0(x - 1, y);
      e += cats::test::band_coeff(2, x, y) * u0(x + 1, y);
      e += cats::test::band_coeff(3, x, y) * u0(x, y - 1);
      e += cats::test::band_coeff(4, x, y) * u0(x, y + 1);
      expect_close_ulp(k.grid_at(1).at(x, y), e, 8, "banded2d");
    }
}

// ---------------------------------------------------------------------------
// Every kernel family, all applicable schemes, bit-exact against its own
// reference sweep. `make` builds a freshly initialized kernel.

template <class Make>
void all_schemes_bit_exact(Make make, int T,
                           std::initializer_list<Scheme> schemes) {
  auto ref = make();
  run_reference(ref, T);
  std::vector<double> want;
  ref.copy_result_to(want, T);
  for (Scheme s : schemes) {
    auto k = make();
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 3;
    opt.cache_bytes = 24 * 1024;
    run(k, T, opt);
    std::vector<double> got;
    k.copy_result_to(got, T);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

constexpr std::initializer_list<Scheme> k2dSchemes = {
    Scheme::Naive, Scheme::Cats1, Scheme::Cats2, Scheme::PlutoLike,
    Scheme::Auto};
constexpr std::initializer_list<Scheme> k3dSchemes = {
    Scheme::Naive, Scheme::Cats1, Scheme::Cats2, Scheme::Cats3,
    Scheme::PlutoLike, Scheme::Auto};

TEST(AllFamilies, Const1D) {
  all_schemes_bit_exact(
      [] {
        typename ConstStar1D<2>::Weights w;
        w.center = 0.5;
        for (int i = 0; i < 2; ++i) {
          w.xm[static_cast<std::size_t>(i)] = 0.12;
          w.xp[static_cast<std::size_t>(i)] = 0.13;
        }
        ConstStar1D<2> k(301, w);
        k.init([](int x) { return cats::test::init2d(x, 5); }, 0.2);
        return k;
      },
      17, {Scheme::Naive, Scheme::Cats1, Scheme::PlutoLike, Scheme::Auto});
}

TEST(AllFamilies, Const2D) {
  all_schemes_bit_exact(
      [] {
        ConstStar2D<1> k(33, 27, default_star2d_weights<1>());
        k.init(cats::test::init2d, 0.25);
        return k;
      },
      8, k2dSchemes);
}

TEST(AllFamilies, Const2DFloat) {
  all_schemes_bit_exact(
      [] {
        FloatStar2D<1>::Weights w;
        w.center = 0.5f;
        w.xm[0] = 0.13f;
        w.xp[0] = 0.12f;
        w.ym[0] = 0.14f;
        w.yp[0] = 0.11f;
        FloatStar2D<1> k(33, 27, w);
        k.init(
            [](int x, int y) {
              return static_cast<float>(cats::test::init2d(x, y));
            },
            0.25f);
        return k;
      },
      8, k2dSchemes);
}

TEST(AllFamilies, Const3D) {
  all_schemes_bit_exact(
      [] {
        ConstStar3D<1> k(13, 11, 9, default_star3d_weights<1>());
        k.init(cats::test::init3d, -0.1);
        return k;
      },
      5, k3dSchemes);
}

TEST(AllFamilies, Banded2D) {
  all_schemes_bit_exact(
      [] {
        Banded2D<1> k(33, 27);
        k.init(cats::test::init2d, 0.0);
        k.init_bands(cats::test::band_coeff);
        return k;
      },
      8, k2dSchemes);
}

TEST(AllFamilies, Banded3D) {
  all_schemes_bit_exact(
      [] {
        Banded3D<1> k(13, 11, 9);
        k.init(cats::test::init3d, 0.0);
        k.init_bands(cats::test::band_coeff3);
        return k;
      },
      5, k3dSchemes);
}

TEST(AllFamilies, Box2D) {
  all_schemes_bit_exact(
      [] {
        Box2D<1> k(33, 27, default_box2d_weights<1>());
        k.init(cats::test::init2d, 0.1);
        return k;
      },
      8, k2dSchemes);
}

TEST(AllFamilies, Box3D) {
  all_schemes_bit_exact(
      [] {
        Box3D<1> k(13, 11, 9, default_box3d_weights<1>());
        k.init(cats::test::init3d, -0.2);
        return k;
      },
      5, k3dSchemes);
}

TEST(AllFamilies, SumStar3D) {
  all_schemes_bit_exact(
      [] {
        Laplace3D k(13, 11, 9, 0.25, 0.125);
        k.init(cats::test::init3d, 0.0);
        return k;
      },
      5, k3dSchemes);
}

TEST(AllFamilies, Fdtd2D) {
  all_schemes_bit_exact(
      [] {
        Fdtd2D k(25, 19);
        k.init([](int x, int y) {
          return std::tuple{0.05 * x - 0.02 * y, cats::test::init2d(x, y),
                            cats::test::init2d(y, x)};
        });
        return k;
      },
      7, k2dSchemes);
}
