// Master 2D integration tests: every scheme must reproduce the serial
// reference bit-exactly, across sizes, T, thread counts, slopes, cache sizes
// (forcing many/degenerate chunks and diamonds), and kernels.

#include <gtest/gtest.h>

#include <tuple>

#include "core/reference.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/fdtd2d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

template <int S>
std::vector<double> reference_const2d(int W, int H, int T) {
  ConstStar2D<S> k(W, H, default_star2d_weights<S>());
  k.init(cats::test::init2d, 0.25);
  run_reference(k, T);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

template <int S>
std::vector<double> scheme_const2d(int W, int H, int T, const RunOptions& opt) {
  ConstStar2D<S> k(W, H, default_star2d_weights<S>());
  k.init(cats::test::init2d, 0.25);
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parameterized sweep: scheme x threads x (W,H,T) x cache KiB
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<Scheme, int, std::tuple<int, int, int>, int>;

class Schemes2DSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Schemes2DSweep, BitExactVsReference) {
  const auto [scheme, threads, shape, cache_kib] = GetParam();
  const auto [W, H, T] = shape;
  RunOptions opt;
  opt.scheme = scheme;
  opt.threads = threads;
  opt.cache_bytes = static_cast<std::size_t>(cache_kib) * 1024;
  const auto want = reference_const2d<1>(W, H, T);
  const auto got = scheme_const2d<1>(W, H, T, opt);
  expect_bit_equal(got, want, scheme_name(scheme));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, Schemes2DSweep,
    ::testing::Combine(
        ::testing::Values(Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                          Scheme::PlutoLike, Scheme::Auto),
        ::testing::Values(1, 3, 4),
        ::testing::Values(std::tuple{37, 23, 7},   // odd sizes, T below chunk
                          std::tuple{64, 64, 20},  // powers of two
                          std::tuple{101, 53, 33}, // T not divisible by TZ
                          std::tuple{16, 128, 11}),// tall & narrow
        ::testing::Values(8, 64)));                // tiny + small cache

// ---------------------------------------------------------------------------
// Targeted cases
// ---------------------------------------------------------------------------

TEST(Schemes2D, HigherSlopes) {
  for (int threads : {1, 4}) {
    RunOptions opt;
    opt.threads = threads;
    opt.cache_bytes = 32 * 1024;
    for (Scheme s : {Scheme::Cats1, Scheme::Cats2, Scheme::PlutoLike}) {
      opt.scheme = s;
      expect_bit_equal(scheme_const2d<2>(61, 47, 13, opt),
                       reference_const2d<2>(61, 47, 13), "slope2");
      expect_bit_equal(scheme_const2d<3>(53, 41, 9, opt),
                       reference_const2d<3>(53, 41, 9), "slope3");
    }
  }
}

TEST(Schemes2D, DegenerateChunkAndDiamondSizes) {
  const auto want = reference_const2d<1>(40, 30, 12);
  RunOptions opt;
  opt.threads = 2;
  opt.scheme = Scheme::Cats1;
  for (int tz : {1, 2, 5, 12, 100}) {  // 1 = per-timestep; 100 > T
    opt.tz_override = tz;
    expect_bit_equal(scheme_const2d<1>(40, 30, 12, opt), want, "tz");
  }
  opt.scheme = Scheme::Cats2;
  opt.tz_override = 0;
  for (int bz : {2, 3, 7, 64, 1000}) {  // min diamond .. one diamond covers all
    opt.bz_override = bz;
    expect_bit_equal(scheme_const2d<1>(40, 30, 12, opt), want, "bz");
  }
}

TEST(Schemes2D, ExtremeAspectRatios) {
  // Wide-short and tall-thin domains stress the traversal/tiling dimension
  // choices (Section II-C discusses swapping them for small tiling extents).
  for (auto [W, H, T] : {std::tuple{512, 8, 9}, std::tuple{8, 512, 9},
                         std::tuple{256, 3, 5}}) {
    const auto want = reference_const2d<1>(W, H, T);
    for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                     Scheme::PlutoLike, Scheme::Auto}) {
      RunOptions opt;
      opt.scheme = s;
      opt.threads = 4;
      opt.cache_bytes = 8 * 1024;
      expect_bit_equal(scheme_const2d<1>(W, H, T, opt), want, scheme_name(s));
    }
  }
}

TEST(Schemes2D, MoreThreadsThanTilesOrRows) {
  RunOptions opt;
  opt.threads = 16;
  opt.cache_bytes = 16 * 1024;
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2}) {
    opt.scheme = s;
    expect_bit_equal(scheme_const2d<1>(12, 9, 5, opt),
                     reference_const2d<1>(12, 9, 5), scheme_name(s));
  }
}

TEST(Schemes2D, SingleTimestepAndZeroTimesteps) {
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike}) {
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 2;
    opt.cache_bytes = 32 * 1024;
    expect_bit_equal(scheme_const2d<1>(33, 21, 1, opt),
                     reference_const2d<1>(33, 21, 1), "T=1");
    expect_bit_equal(scheme_const2d<1>(33, 21, 0, opt),
                     reference_const2d<1>(33, 21, 0), "T=0");
  }
}

TEST(Schemes2D, BandedMatrixAllSchemes) {
  auto make = [](Banded2D<1>& k) {
    k.init(cats::test::init2d, 0.1);
    k.init_bands(cats::test::band_coeff);
  };
  Banded2D<1> ref(49, 35);
  make(ref);
  run_reference(ref, 14);
  std::vector<double> want;
  ref.copy_result_to(want, 14);

  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Auto}) {
    Banded2D<1> k(49, 35);
    make(k);
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 3;
    opt.cache_bytes = 48 * 1024;
    run(k, 14, opt);
    std::vector<double> got;
    k.copy_result_to(got, 14);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

TEST(Schemes2D, FdtdAllSchemes) {
  auto fields = [](int x, int y) {
    return std::tuple{cats::test::init2d(x, y), cats::test::init2d(y, x),
                      std::cos(0.11 * x - 0.07 * y)};
  };
  Fdtd2D ref(44, 31);
  ref.init(fields);
  run_reference(ref, 12);
  std::vector<double> want;
  ref.copy_result_to(want, 12);

  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2,
                   Scheme::PlutoLike, Scheme::Auto}) {
    Fdtd2D k(44, 31);
    k.init(fields);
    RunOptions opt;
    opt.scheme = s;
    opt.threads = 4;
    opt.cache_bytes = 32 * 1024;
    run(k, 12, opt);
    std::vector<double> got;
    k.copy_result_to(got, 12);
    expect_bit_equal(got, want, scheme_name(s));
  }
}

TEST(Schemes2D, AutoReportsWhatItRan) {
  ConstStar2D<1> k(64, 64, default_star2d_weights<1>());
  k.init(cats::test::init2d);
  RunOptions opt;
  opt.cache_bytes = 1 << 20;
  const SchemeChoice c = run(k, 5, opt);
  EXPECT_TRUE(c.scheme == Scheme::Cats1 || c.scheme == Scheme::Cats2);
  if (c.scheme == Scheme::Cats1) {
    EXPECT_GT(c.tz, 0);
  }
}
