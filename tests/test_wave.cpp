// Wave-engine tests (src/wave): the register-tiled temporal micro-kernels,
// the NT-store write-back path and the intra-tile teams are all pure
// execution-order changes, so every configuration must reproduce the
// unroll_t=1 / plain-store / team-of-one result bit for bit — the same
// per-lane arithmetic runs either way, only the schedule differs.

#include <gtest/gtest.h>

#include <vector>

#include "check/oracle.hpp"
#include "check/probe_kernel.hpp"
#include "core/run.hpp"
#include "helpers.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"

using namespace cats;
using cats::test::expect_bit_equal;

namespace {

// Small cache + overrides force multi-chunk/multi-tile plans on tiny
// domains, so trailing wavefronts, chunk seams and team splits all occur.
RunOptions wave_options(Scheme s, int threads = 2) {
  RunOptions opt;
  opt.scheme = s;
  opt.threads = threads;
  opt.cache_bytes = 32 * 1024;
  return opt;
}

template <class MakeKernel>
std::vector<double> run_dump(MakeKernel&& make, int T, const RunOptions& opt) {
  auto k = make();
  run(k, T, opt);
  std::vector<double> out;
  k.copy_result_to(out, T);
  return out;
}

// Reference = wave features off: no fusion, plain stores, no teams.
RunOptions plain_options(Scheme s, int threads = 2) {
  RunOptions opt = wave_options(s, threads);
  opt.unroll_t = 1;
  opt.nt_stores = false;
  opt.team_size = 1;
  return opt;
}

template <class MakeKernel>
void check_unrolls(MakeKernel&& make, int T, const char* label) {
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    const std::vector<double> want = run_dump(make, T, plain_options(s));
    for (int u : {0, 2, 3, 4}) {  // 0 = auto (engine default)
      RunOptions opt = wave_options(s);
      opt.unroll_t = u;
      expect_bit_equal(run_dump(make, T, opt), want,
                       (std::string(label) + " " + scheme_name(s) +
                        " unroll=" + std::to_string(u))
                           .c_str());
    }
  }
}

template <class MakeKernel>
void check_nt(MakeKernel&& make, int T, const char* label) {
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    for (int u : {1, 0}) {  // NT alone, and NT composed with fusion
      RunOptions ref = plain_options(s);
      ref.unroll_t = u;
      const std::vector<double> want = run_dump(make, T, ref);
      RunOptions opt = ref;
      opt.nt_stores = true;
      expect_bit_equal(run_dump(make, T, opt), want,
                       (std::string(label) + " " + scheme_name(s) +
                        " nt unroll=" + std::to_string(u))
                           .c_str());
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Temporal fusion: every unroll depth, every kernel family, bit-exact
// ---------------------------------------------------------------------------

TEST(WaveFusion, Const2DAllUnrolls) {
  check_unrolls(
      [] {
        ConstStar2D<1> k(73, 59, default_star2d_weights<1>());
        k.init(cats::test::init2d, 0.2);
        return k;
      },
      14, "const2d");
}

TEST(WaveFusion, Banded2DAllUnrolls) {
  check_unrolls(
      [] {
        Banded2D<1> k(61, 47);
        k.init(cats::test::init2d, 0.1);
        k.init_bands(cats::test::band_coeff);
        return k;
      },
      12, "banded2d");
}

TEST(WaveFusion, Const3DAllUnrolls) {
  check_unrolls(
      [] {
        ConstStar3D<1> k(23, 19, 17, default_star3d_weights<1>());
        k.init(cats::test::init3d, -0.1);
        return k;
      },
      9, "const3d");
}

TEST(WaveFusion, Banded3DAllUnrolls) {
  check_unrolls(
      [] {
        Banded3D<1> k(21, 17, 15);
        k.init(cats::test::init3d, 0.05);
        k.init_bands(cats::test::band_coeff3);
        return k;
      },
      8, "banded3d");
}

TEST(WaveFusion, Slope2KernelFuses) {
  // Wider stencils stress the stagger bound (s = 2 rows between stages).
  check_unrolls(
      [] {
        ConstStar2D<2> k(81, 63, default_star2d_weights<2>());
        k.init(cats::test::init2d, -0.3);
        return k;
      },
      10, "const2d-s2");
}

TEST(WaveFusion, NonFusableKernelUnaffected) {
  // Fdtd2D opts out of fusion (multi-field updates); unroll_t must be a
  // silent no-op for it, not a crash or a numeric change.
  auto make = [] {
    Fdtd2D k(47, 39);
    k.init([](int x, int y) {
      return std::tuple{0.01 * x, 0.02 * y, std::sin(0.2 * x - 0.1 * y)};
    });
    return k;
  };
  const std::vector<double> want = run_dump(make, 11, plain_options(Scheme::Cats2));
  RunOptions opt = wave_options(Scheme::Cats2);
  opt.unroll_t = 4;
  expect_bit_equal(run_dump(make, 11, opt), want, "fdtd unroll");
}

// ---------------------------------------------------------------------------
// NT stores: value-identical to plain stores, alone and with fusion
// ---------------------------------------------------------------------------

TEST(WaveNt, Const2DNtEquivalence) {
  check_nt(
      [] {
        ConstStar2D<1> k(73, 59, default_star2d_weights<1>());
        k.init(cats::test::init2d, 0.2);
        return k;
      },
      14, "const2d");
}

TEST(WaveNt, Banded3DNtEquivalence) {
  check_nt(
      [] {
        Banded3D<1> k(21, 17, 15);
        k.init(cats::test::init3d, 0.05);
        k.init_bands(cats::test::band_coeff3);
        return k;
      },
      8, "banded3d");
}

TEST(WaveNt, NaiveSchemeIgnoresNt) {
  // Naive plans are never NT-eligible (no residency certificate): the flag
  // must be inert rather than corrupting the streaming sweep.
  auto make = [] {
    ConstStar2D<1> k(64, 48, default_star2d_weights<1>());
    k.init(cats::test::init2d);
    return k;
  };
  const std::vector<double> want = run_dump(make, 10, plain_options(Scheme::Naive));
  RunOptions opt = plain_options(Scheme::Naive);
  opt.nt_stores = true;
  expect_bit_equal(run_dump(make, 10, opt), want, "naive nt");
}

// ---------------------------------------------------------------------------
// Intra-tile teams: deterministic, bit-equal to team-of-one, oracle-clean
// ---------------------------------------------------------------------------

TEST(WaveTeam, Const3DTeamsBitEqualAndRepeatable) {
  auto make = [] {
    ConstStar3D<1> k(23, 19, 17, default_star3d_weights<1>());
    k.init(cats::test::init3d, -0.1);
    return k;
  };
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    const std::vector<double> want = run_dump(make, 9, plain_options(s, 4));
    for (int rep = 0; rep < 4; ++rep) {
      RunOptions opt = wave_options(s, 4);
      opt.team_size = 2;
      expect_bit_equal(run_dump(make, 9, opt), want,
                       (std::string("team ") + scheme_name(s)).c_str());
    }
  }
}

TEST(WaveTeam, Banded3DTeamsWithNt) {
  // Teams + NT stores together: member stores are fenced before the lead's
  // publish, so the composition must still be bit-exact.
  auto make = [] {
    Banded3D<1> k(21, 17, 15);
    k.init(cats::test::init3d, 0.05);
    k.init_bands(cats::test::band_coeff3);
    return k;
  };
  const std::vector<double> want = run_dump(make, 8, plain_options(Scheme::Cats2, 4));
  RunOptions opt = wave_options(Scheme::Cats2, 4);
  opt.team_size = 2;
  opt.nt_stores = true;
  expect_bit_equal(run_dump(make, 8, opt), want, "team+nt banded3d");
}

TEST(WaveTeam, TeamWidthIgnoredOutsideCats3D) {
  // team_size must be inert for 2D domains and for non-wavefront schemes.
  auto make = [] {
    ConstStar2D<1> k(64, 48, default_star2d_weights<1>());
    k.init(cats::test::init2d);
    return k;
  };
  for (Scheme s : {Scheme::Naive, Scheme::Cats2}) {
    const std::vector<double> want = run_dump(make, 10, plain_options(s, 4));
    RunOptions opt = wave_options(s, 4);
    opt.team_size = 4;
    expect_bit_equal(run_dump(make, 10, opt), want,
                     (std::string("2d team ") + scheme_name(s)).c_str());
  }
}

TEST(WaveTeam, OracleCleanOverTeamSchedule) {
  // Every (t, point) must still be computed exactly once, after its
  // neighbors, under the team split of slab rows.
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    const int W = 17, H = 13, D = 11, T = 7;
    check::ProbeKernel3D k(W, H, D, 1);
    check::DepOracle oracle(W, H, D, k.slope(), 4);
    RunOptions opt = wave_options(s, 4);
    opt.team_size = 2;
    opt.tz_override = 3;
    opt.bz_override = 6;
    opt.bx_override = 6;
    opt.oracle = &oracle;
    run(k, T, opt);
    oracle.check_complete(T);
    EXPECT_TRUE(oracle.ok()) << "team oracle " << scheme_name(s);
  }
}
